#!/usr/bin/env bash
# Tier-1 verify line: configure, build, run every test via CTest.
#
#   ./ci.sh                 regular build + ctest (build/)
#   ./ci.sh --sanitize      ASan+UBSan build + ctest (build-asan/)
#   ./ci.sh --bench-smoke   regular build, then a short edge_throughput
#                           run emitting BENCH_edge_throughput.json
set -euo pipefail
cd "$(dirname "$0")"

MODE="default"
case "${1:-}" in
  --sanitize) MODE="sanitize" ;;
  --bench-smoke) MODE="bench-smoke" ;;
  "") ;;
  *) echo "usage: ci.sh [--sanitize|--bench-smoke]" >&2; exit 2 ;;
esac

if [[ "$MODE" == "sanitize" ]]; then
  BUILD_DIR=build-asan
  cmake -B "$BUILD_DIR" -S . -DVBT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
else
  BUILD_DIR=build
  cmake -B "$BUILD_DIR" -S .
fi

cmake --build "$BUILD_DIR" -j "$(nproc)"

if [[ "$MODE" == "bench-smoke" ]]; then
  # Short closed-loop pass; the JSON is the CI perf-trajectory artifact.
  VBT_BENCH_TUPLES="${VBT_BENCH_TUPLES:-2000}" \
    "./$BUILD_DIR/bench/edge_throughput" --json --seconds 1.5 \
    > BENCH_edge_throughput.json
  python3 -m json.tool BENCH_edge_throughput.json > /dev/null
  echo "wrote BENCH_edge_throughput.json"
  exit 0
fi

cd "$BUILD_DIR"
if [[ "$MODE" == "sanitize" ]]; then
  # halt_on_error keeps a sanitizer hit from hiding behind a pass;
  # detect_leaks stays on by default where supported.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:strict_string_checks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
fi
ctest --output-on-failure -j "$(nproc)"
