#!/usr/bin/env bash
# Tier-1 verify line: configure, build, run every test via CTest.
#
#   ./ci.sh                   regular build + ctest (build/)
#   ./ci.sh --sanitize        ASan+UBSan build + ctest (build-asan/)
#   ./ci.sh --sanitize=thread TSan build + the concurrency-focused test
#                             subset (build-tsan/) — the OLC race job
#   ./ci.sh --bench-smoke     regular build, then a short edge_throughput
#                             run emitting BENCH_edge_throughput.json
#                             (+ the shards=4 and --trust-mode=lazy
#                             variants, each with their own gates)
#   ./ci.sh --chaos           regular build, then the chaos failover
#                             suite + two short --fault-profile bench
#                             passes (liar, lossy) with quarantine /
#                             failover gates; emits
#                             BENCH_edge_throughput_chaos.json
#   ./ci.sh --docs-check      no build: verify every local markdown link
#                             and #section-anchor in README.md, DESIGN.md
#                             and docs/ resolves (anchor-drift gate)
set -euo pipefail
cd "$(dirname "$0")"

MODE="default"
case "${1:-}" in
  --sanitize|--sanitize=address) MODE="sanitize" ;;
  --sanitize=thread) MODE="tsan" ;;
  --bench-smoke) MODE="bench-smoke" ;;
  --chaos) MODE="chaos" ;;
  --docs-check) MODE="docs-check" ;;
  "") ;;
  *) echo "usage: ci.sh [--sanitize[=address|thread]|--bench-smoke|--chaos|--docs-check]" >&2
     exit 2 ;;
esac

if [[ "$MODE" == "docs-check" ]]; then
  # Docs drift gate: every relative markdown link from the indexed docs
  # must point at an existing file, and every #fragment must match a
  # heading in the target (GitHub slug rules). Catches the classic
  # failure mode of this repo's docs split: DESIGN.md renumbers a
  # section and docs/TRUST_MODEL.md keeps citing the old anchor.
  python3 - <<'PY'
import os, re, sys

DOCS = ["README.md", "DESIGN.md"] + sorted(
    os.path.join("docs", f) for f in os.listdir("docs") if f.endswith(".md"))

def slugify(heading):
    # GitHub anchor rules: lowercase, drop punctuation, spaces -> dashes.
    s = heading.strip().lower()
    s = re.sub(r"[^\w\- ]", "", s, flags=re.UNICODE)
    return s.replace(" ", "-")

def anchors(path):
    out = set()
    counts = {}
    for line in open(path, encoding="utf-8"):
        m = re.match(r"^(#{1,6})\s+(.*)$", line)
        if not m:
            continue
        slug = slugify(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        out.add(slug if n == 0 else "%s-%d" % (slug, n))
    return out

errors = []
link_re = re.compile(r"\]\(([^)\s]+)\)")
for doc in DOCS:
    base = os.path.dirname(doc)
    for ln, line in enumerate(open(doc, encoding="utf-8"), 1):
        for target in link_re.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, frag = target.partition("#")
            full = os.path.normpath(os.path.join(base, path)) if path else doc
            if not os.path.exists(full):
                errors.append("%s:%d: broken link %s" % (doc, ln, target))
                continue
            if frag and full.endswith(".md") and frag not in anchors(full):
                errors.append("%s:%d: dead anchor %s (no such heading in %s)"
                              % (doc, ln, target, full))
for e in errors:
    print("FAIL:", e)
if errors:
    sys.exit(1)
print("docs-check: %d files, all links and anchors resolve" % len(DOCS))
PY
  exit 0
fi

if [[ "$MODE" == "sanitize" ]]; then
  BUILD_DIR=build-asan
  cmake -B "$BUILD_DIR" -S . -DVBT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
elif [[ "$MODE" == "tsan" ]]; then
  BUILD_DIR=build-tsan
  cmake -B "$BUILD_DIR" -S . -DVBT_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
else
  BUILD_DIR=build
  cmake -B "$BUILD_DIR" -S .
fi

cmake --build "$BUILD_DIR" -j "$(nproc)"

if [[ "$MODE" == "bench-smoke" ]]; then
  # Short closed-loop pass; the JSON is the CI perf-trajectory artifact.
  # The committed artifact is the VO-wire-cost baseline: take it from
  # HEAD so neither the fresh run below nor a stale working-tree copy
  # can masquerade as the baseline.
  BASELINE="$(mktemp)"
  git show HEAD:BENCH_edge_throughput.json > "$BASELINE" 2>/dev/null \
    || cp BENCH_edge_throughput.json "$BASELINE" 2>/dev/null \
    || echo '{}' > "$BASELINE"
  VBT_BENCH_TUPLES="${VBT_BENCH_TUPLES:-2000}" \
    "./$BUILD_DIR/bench/edge_throughput" --json --seconds 1.5 \
    > BENCH_edge_throughput.json
  python3 -m json.tool BENCH_edge_throughput.json > /dev/null
  # Gates:
  #  * vo_bytes_per_query present and <= baseline * 1.10 (wire cost);
  #  * verify_coverage == 1.0 — the driver authenticates EVERY query, the
  #    paper's actual client contract (silent undercounting broke this
  #    once: the old driver sampled 1-in-4 and the JSON hid it);
  #  * verify_failures == 0 across all runs;
  #  * recover_calls_per_query <= baseline * 1.10 — the deterministic
  #    Cost_s gate: the fast path's whole point is paying fewer
  #    signature recoveries, and the count is workload-, not
  #    host-dependent;
  #  * verify_cost_us_per_query <= baseline * 1.25 (when the baseline
  #    carries the field — bootstrap runs only assert presence). This
  #    one is wall-clock and therefore host-sensitive: the committed
  #    baseline must be regenerated (./ci.sh --bench-smoke, commit the
  #    JSON) whenever the reference host changes. The 25% band reflects
  #    measured run-to-run variance on the reference host (single-CPU
  #    container; six identical back-to-back runs spanned 121–168 us/q,
  #    and an interleaved A/B of two builds overlapped completely —
  #    126/135/184 vs 135/164/137), so a 10% band was pure noise. The
  #    deterministic recover_calls_per_query gate above is the tight
  #    one — a real fast-path regression moves the operation count, not
  #    just the wall clock.
  python3 - "$BASELINE" <<'PY'
import json, sys
new = json.load(open("BENCH_edge_throughput.json"))
base = json.load(open(sys.argv[1]))

if "vo_bytes_per_query" not in new:
    sys.exit("FAIL: vo_bytes_per_query missing from BENCH_edge_throughput.json")
cur = float(new["vo_bytes_per_query"])
if cur <= 0:
    sys.exit("FAIL: vo_bytes_per_query is %r (no wire batches completed?)" % cur)
b = base.get("vo_bytes_per_query")
if b is None:
    print("vo_bytes_per_query=%.1f (no baseline; presence check only)" % cur)
elif cur > float(b) * 1.10:
    sys.exit("FAIL: vo_bytes_per_query regressed: %.1f vs baseline %.1f (+%.1f%%)"
             % (cur, float(b), 100.0 * (cur / float(b) - 1.0)))
else:
    print("vo_bytes_per_query=%.1f vs baseline %.1f: OK" % (cur, float(b)))

cov = new.get("verify_coverage")
if cov is None:
    sys.exit("FAIL: verify_coverage missing from BENCH_edge_throughput.json")
# Integer comparison, not the %.3f-rounded ratio: 1-in-5000 unverified
# queries would still print as 1.000.
q = sum(int(r.get("queries", 0)) for r in new.get("runs", []))
vq = sum(int(r.get("verified_queries", 0)) for r in new.get("runs", []))
if q == 0 or vq != q:
    sys.exit("FAIL: verify_coverage %d/%d (every query must be authenticated)"
             % (vq, q))
print("verify_coverage=%d/%d: OK" % (vq, q))

fails = sum(int(r.get("verify_failures", 0)) for r in new.get("runs", []))
if fails:
    sys.exit("FAIL: %d verification failures in the smoke run" % fails)

rc = new.get("recover_calls_per_query")
if rc is None:
    sys.exit("FAIL: recover_calls_per_query missing from JSON")
brc = base.get("recover_calls_per_query")
if brc is None or float(brc) <= 0:
    print("recover_calls_per_query=%.2f (no baseline; presence check only)"
          % float(rc))
elif float(rc) > float(brc) * 1.10:
    sys.exit("FAIL: recover_calls_per_query regressed: %.2f vs baseline %.2f "
             "(+%.1f%%)" % (float(rc), float(brc),
                            100.0 * (float(rc) / float(brc) - 1.0)))
else:
    print("recover_calls_per_query=%.2f vs baseline %.2f: OK"
          % (float(rc), float(brc)))

vc = new.get("verify_cost_us_per_query")
if vc is None:
    sys.exit("FAIL: verify_cost_us_per_query missing from JSON")
bvc = base.get("verify_cost_us_per_query")
if bvc is None or float(bvc) <= 0:
    print("verify_cost_us_per_query=%.1f (no baseline; presence check only)"
          % float(vc))
elif float(vc) > float(bvc) * 1.25:
    sys.exit("FAIL: verify_cost_us_per_query regressed: %.1f vs baseline %.1f "
             "(+%.1f%%)" % (float(vc), float(bvc),
                            100.0 * (float(vc) / float(bvc) - 1.0)))
else:
    print("verify_cost_us_per_query=%.1f vs baseline %.1f: OK"
          % (float(vc), float(bvc)))

# OLC scaling gate: exec_avg_us at workers=8 is the latch-contention
# signal the optimistic-lock-coupling tree exists to shrink — if a
# change re-serializes readers, execution time under a full pool moves
# long before qps does (the modeled stall hides small shifts in qps).
# 10% band: exec_avg_us is batch-work CPU time, far less noisy than the
# wall-clock verify costs above. Telemetry fields must also be present
# so the artifact keeps carrying the restart-rate trajectory.
def run_at(doc, w):
    for r in doc.get("runs", []):
        if int(r.get("workers", -1)) == w:
            return r
    return None

r8 = run_at(new, 8)
if r8 is None:
    sys.exit("FAIL: no workers=8 run in BENCH_edge_throughput.json")
for fld in ("olc_restarts_per_query", "latch_wait_avg_us", "exec_avg_us"):
    if fld not in r8:
        sys.exit("FAIL: %s missing from the workers=8 run" % fld)
cur8 = float(r8["exec_avg_us"])
b8 = run_at(base, 8)
base8 = float(b8.get("exec_avg_us", 0)) if b8 is not None else 0.0
if base8 <= 0:
    print("exec_avg_us@8=%.1f (no baseline; presence check only)" % cur8)
elif cur8 > base8 * 1.10:
    sys.exit("FAIL: exec_avg_us@workers=8 regressed: %.1f vs baseline %.1f "
             "(+%.1f%%)" % (cur8, base8, 100.0 * (cur8 / base8 - 1.0)))
else:
    print("exec_avg_us@8=%.1f vs baseline %.1f: OK (olc_restarts/q=%.4f, "
          "latch_wait=%.2fus/b)" % (cur8, base8,
                                    float(r8["olc_restarts_per_query"]),
                                    float(r8["latch_wait_avg_us"])))

# Batch tuple-fetch memo gate: the representative batch each run
# re-issues must actually walk the tree and share fetches — both
# counters sat at zero for a release because VO-cache hits skipped the
# walk and nothing noticed.
for r in new.get("runs", []):
    tf = int(r.get("tuple_fetches", 0))
    sh = int(r.get("shared_fetch_hits", 0))
    if tf <= 0 or sh <= 0:
        sys.exit("FAIL: dead batch fetch memo at workers=%s: "
                 "tuple_fetches=%d shared_fetch_hits=%d"
                 % (r.get("workers"), tf, sh))
print("batch fetch memo live in every run: OK")
PY
  rm -f "$BASELINE"
  echo "wrote BENCH_edge_throughput.json"
  # Scatter-gather smoke: the same closed loop at 4 key-range shards.
  # Gates (same host, same configuration — so the comparison is fair):
  #  * verify_failures == 0 and verify_coverage == 1.0 at shards=4 —
  #    every scattered answer authenticates per shard against the signed
  #    PartitionMap;
  #  * sharded qps >= 90% of the fresh single-shard run above (the
  #    scatter layer must not tax throughput; 10% slack absorbs
  #    closed-loop noise).
  VBT_BENCH_TUPLES="${VBT_BENCH_TUPLES:-2000}" \
    "./$BUILD_DIR/bench/edge_throughput" --json --seconds 1.5 --shards 4 \
    > BENCH_edge_throughput_shards4.json
  python3 -m json.tool BENCH_edge_throughput_shards4.json > /dev/null
  python3 - <<'PY'
import json, sys
mono = json.load(open("BENCH_edge_throughput.json"))
shard = json.load(open("BENCH_edge_throughput_shards4.json"))

if shard.get("shards") != 4:
    sys.exit("FAIL: shards-4 run did not record shards=4")
fails = sum(int(r.get("verify_failures", 0)) for r in shard.get("runs", []))
if fails:
    sys.exit("FAIL: %d verification failures in the shards=4 smoke run" % fails)
q = sum(int(r.get("queries", 0)) for r in shard.get("runs", []))
vq = sum(int(r.get("verified_queries", 0)) for r in shard.get("runs", []))
if q == 0 or vq != q:
    sys.exit("FAIL: shards=4 verify_coverage %d/%d" % (vq, q))
print("shards=4 verify: %d/%d queries authenticated, 0 failures" % (vq, q))

if "per_shard_qps" not in shard or not shard["per_shard_qps"]:
    sys.exit("FAIL: per_shard_qps missing/empty in shards-4 JSON")
if "map_verify_us_per_query" not in shard:
    sys.exit("FAIL: map_verify_us_per_query missing in shards-4 JSON")
mono_qps = max(float(r.get("qps", 0)) for r in mono.get("runs", []))
shard_qps = max(float(r.get("qps", 0)) for r in shard.get("runs", []))
if mono_qps > 0 and shard_qps < 0.90 * mono_qps:
    sys.exit("FAIL: shards=4 qps %.1f < 90%% of single-shard qps %.1f"
             % (shard_qps, mono_qps))
print("shards=4 qps %.1f vs single-shard %.1f: OK (per-shard: %s)"
      % (shard_qps, mono_qps, shard["per_shard_qps"]))

# The per-(shard,batch) fetch memo must be live under scatter-gather
# too — this exact artifact shipped with tuple_fetches=0 AND
# shared_fetch_hits=0 when the memo silently died under sharding.
for r in shard.get("runs", []):
    tf = int(r.get("tuple_fetches", 0))
    sh = int(r.get("shared_fetch_hits", 0))
    if tf <= 0 or sh <= 0:
        sys.exit("FAIL: dead sharded fetch memo at workers=%s: "
                 "tuple_fetches=%d shared_fetch_hits=%d"
                 % (r.get("workers"), tf, sh))
print("shards=4 batch fetch memo live in every run: OK")
PY
  echo "wrote BENCH_edge_throughput_shards4.json"
  # Lazy-trust smoke: the latency-vs-exposure pair. The saturated
  # closed loop above cannot show the tier's latency win on a 1-vCPU
  # host: at CPU saturation a closed loop obeys p50 ~= clients/qps
  # (Little's law) no matter where verification runs, and deferral
  # conserves total crypto work — so full-load lazy p50 equals
  # certified p50 to within noise. The tier's actual promise is lower
  # *delivery* latency at fixed load when idle cycles can absorb the
  # deferred audit, so the gate measures exactly that: a light-load
  # pair (--clients 2 --stall-us 2000, stall-dominated cycle with CPU
  # headroom), certified control immediately followed by lazy in one
  # session — same host state, same configuration, only the trust
  # mode differs. Both JSONs are committed as the curve's reference
  # points. Gates:
  #  * audit_coverage == 1.0 by INTEGER comparison (audited ==
  #    enqueued, > 0) — every deferred ticket must actually be audited;
  #  * alarms == 0 and audit_backlog_at_exit == 0 — honest run, queue
  #    drained;
  #  * batch_p50_us at workers=8 strictly below the control's — the
  #    whole point of the tier is taking the synchronous verify cost
  #    off the delivery path (measured margin on a rested host: ~14%);
  #  * recover_calls_per_query within ±20% of the control —
  #    deferral changes the crypto SCHEDULE, never the crypto WORK.
  #    The band is wider than the main artifact's ±10% because the
  #    lazy run's faster cycle completes more batches in the fixed
  #    window, so warm-up recoveries amortize over more queries
  #    (~10% drift from pace alone); the failure modes this gate
  #    defends against — skipped or duplicated verification — move
  #    the count by ~100%, far outside either band.
  VBT_BENCH_TUPLES="${VBT_BENCH_TUPLES:-2000}" \
    "./$BUILD_DIR/bench/edge_throughput" --json --seconds 1.5 \
    --clients 2 --stall-us 2000 > BENCH_edge_throughput_lazy_control.json
  VBT_BENCH_TUPLES="${VBT_BENCH_TUPLES:-2000}" \
    "./$BUILD_DIR/bench/edge_throughput" --json --seconds 1.5 \
    --clients 2 --stall-us 2000 \
    --trust-mode lazy > BENCH_edge_throughput_lazy.json
  python3 -m json.tool BENCH_edge_throughput_lazy_control.json > /dev/null
  python3 -m json.tool BENCH_edge_throughput_lazy.json > /dev/null
  python3 - <<'PY'
import json, sys
cert = json.load(open("BENCH_edge_throughput_lazy_control.json"))
lazy = json.load(open("BENCH_edge_throughput_lazy.json"))

if cert.get("trust_mode") != "certified":
    sys.exit("FAIL: lazy-control artifact did not record trust_mode=certified")
if lazy.get("trust_mode") != "lazy":
    sys.exit("FAIL: lazy artifact did not record trust_mode=lazy")

enq = sum(int(r.get("audit_enqueued_queries", 0)) for r in lazy["runs"])
aud = sum(int(r.get("audited_queries", 0)) for r in lazy["runs"])
if enq == 0 or aud != enq:
    sys.exit("FAIL: audit_coverage %d/%d (every deferred ticket must be "
             "audited)" % (aud, enq))
print("audit_coverage=%d/%d: OK" % (aud, enq))

alarms = sum(int(r.get("alarms", 0)) for r in lazy["runs"])
if alarms:
    sys.exit("FAIL: %d tamper alarms in an honest lazy run" % alarms)
backlog = sum(int(r.get("audit_backlog_at_exit", 0)) for r in lazy["runs"])
if backlog:
    sys.exit("FAIL: %d tickets left in the audit queue at exit" % backlog)
print("alarms=0, audit backlog drained: OK")

def run_at(doc, w):
    for r in doc.get("runs", []):
        if int(r.get("workers", -1)) == w:
            return r
    return None

c8, l8 = run_at(cert, 8), run_at(lazy, 8)
if c8 is None or l8 is None:
    sys.exit("FAIL: missing workers=8 run in lazy control or lazy artifact")
cp50, lp50 = float(c8["batch_p50_us"]), float(l8["batch_p50_us"])
if lp50 >= cp50:
    sys.exit("FAIL: lazy batch_p50_us %.0f >= certified control %.0f — "
             "deferral is not taking verification off the delivery path"
             % (lp50, cp50))
print("batch_p50_us lazy %.0f < certified control %.0f (-%.1f%%), audit_lag "
      "p50/p99=%.0f/%.0fus: OK"
      % (lp50, cp50, 100.0 * (1.0 - lp50 / cp50),
         float(lazy.get("audit_lag_p50_us", 0)),
         float(lazy.get("audit_lag_p99_us", 0))))

crc = float(cert.get("recover_calls_per_query", 0))
lrc = float(lazy.get("recover_calls_per_query", 0))
if crc <= 0 or lrc <= 0:
    sys.exit("FAIL: recover_calls_per_query missing/zero (cert %.2f lazy %.2f)"
             % (crc, lrc))
if not (0.80 * crc <= lrc <= 1.20 * crc):
    sys.exit("FAIL: lazy recover_calls_per_query %.2f outside ±20%% of "
             "control %.2f — deferral must not change the crypto work"
             % (lrc, crc))
print("recover_calls_per_query lazy %.2f vs control %.2f: OK" % (lrc, crc))
PY
  echo "wrote BENCH_edge_throughput_lazy.json (+ _lazy_control.json)"
  # Write-mix smoke: the per-shard signing pipeline under a Zipf insert
  # storm, as TWO runs because the gated counters need different
  # layouts to be trustworthy:
  #  1. Fixed layout (no auto-split) -> _writemix_fixed.json. With the
  #     shard set pinned, sign_calls_per_insert is exact (three
  #     back-to-back runs: 24.012/24.013/24.012 while wall-clock qps
  #     swung 13%), so it gets the tight ±10% band — a batching
  #     regression or a naive O(rows) split resign sneaking back into
  #     any DML path moves it far outside. Under auto-split the same
  #     counter is schedule-shaped (WHEN splits land decides how many
  #     inserts pay the taller pre-split trees; rested runs spanned
  #     7.2–14.9) and therefore ungateable.
  #  2. Auto-split armed -> _writemix.json, the rebalance-loop gates:
  #     * splits_triggered >= 1 — under zipf 0.99 the contention
  #       policy must actually fire; a silent policy-thread death
  #       shows up here;
  #     * qps_skew_late <= 2.0 OR < qps_skew_early — the ROADMAP
  #       convergence target (hot shard within ~2x of the mean after
  #       rebalance) with an escape hatch for partially-converged
  #       short runs: max/mean gets STRICTER as splits multiply the
  #       shard count (mean falls), so a run where the policy is
  #       mid-flight can sit just above 2.0 while clearly improving.
  #       A policy that fires but makes skew worse fails both arms;
  #     * verify_failures == 0 with verified_queries > 0 — the
  #       post-storm read-back authenticates lineage shards end to end
  #       (binding signatures included), so a split that breaks
  #       verification cannot pass the smoke;
  #     * sync_ok — the hub converged on the post-split layout
  #       (auto-split children are discovered mid-run).
  # The strictly deterministic o(rows) split-cost bound is
  # counter-gated in split_pipeline_test, independent of any timing.
  WM_BASELINE="$(mktemp)"
  git show HEAD:BENCH_edge_throughput_writemix_fixed.json > "$WM_BASELINE" \
    2>/dev/null \
    || cp BENCH_edge_throughput_writemix_fixed.json "$WM_BASELINE" \
         2>/dev/null \
    || echo '{}' > "$WM_BASELINE"
  VBT_BENCH_TUPLES="${VBT_BENCH_TUPLES:-2000}" \
    "./$BUILD_DIR/bench/edge_throughput" --json --write-mix --seconds 1.5 \
    --shards 4 --writers 4 \
    > BENCH_edge_throughput_writemix_fixed.json
  VBT_BENCH_TUPLES="${VBT_BENCH_TUPLES:-2000}" \
    "./$BUILD_DIR/bench/edge_throughput" --json --write-mix --seconds 1.5 \
    --shards 4 --writers 4 --auto-split \
    > BENCH_edge_throughput_writemix.json
  python3 -m json.tool BENCH_edge_throughput_writemix_fixed.json > /dev/null
  python3 -m json.tool BENCH_edge_throughput_writemix.json > /dev/null
  python3 - "$WM_BASELINE" <<'PY'
import json, sys
fixed = json.load(open("BENCH_edge_throughput_writemix_fixed.json"))
auto = json.load(open("BENCH_edge_throughput_writemix.json"))
base = json.load(open(sys.argv[1]))

for name, run in (("fixed", fixed), ("auto", auto)):
    if run.get("mode") != "write_mix":
        sys.exit("FAIL: %s write-mix artifact did not record mode=write_mix"
                 % name)
    if not run.get("sync_ok"):
        sys.exit("FAIL: hub did not converge after the %s write storm" % name)
    vq = int(run.get("verified_queries", 0))
    vf = int(run.get("verify_failures", 0))
    if vq <= 0:
        sys.exit("FAIL: %s write-mix read-back verified 0 queries" % name)
    if vf:
        sys.exit("FAIL: %d verification failures reading back the %s "
                 "write-mix layout" % (vf, name))

if int(fixed.get("splits_triggered", -1)) != 0:
    sys.exit("FAIL: fixed-layout run split anyway (splits_triggered=%s) — "
             "the spi gate needs a pinned shard set"
             % fixed.get("splits_triggered"))
spi = float(fixed.get("sign_calls_per_insert", 0))
if spi <= 0:
    sys.exit("FAIL: sign_calls_per_insert is %r (signer counters dead?)" % spi)
bspi = base.get("sign_calls_per_insert")
if bspi is None or float(bspi) <= 0:
    print("sign_calls_per_insert=%.3f (no baseline; presence check only)" % spi)
elif not (0.90 * float(bspi) <= spi <= 1.10 * float(bspi)):
    sys.exit("FAIL: sign_calls_per_insert %.3f outside ±10%% of baseline "
             "%.3f — signing work per DML moved" % (spi, float(bspi)))
else:
    print("sign_calls_per_insert=%.3f vs baseline %.3f: OK"
          % (spi, float(bspi)))

splits = int(auto.get("splits_triggered", 0))
if splits < 1:
    sys.exit("FAIL: splits_triggered=%d — auto-split never fired under "
             "zipf %.2f" % (splits, float(auto.get("zipf", 0))))
skew_early = float(auto.get("qps_skew_early", 0))
skew_late = float(auto.get("qps_skew_late", 99))
if skew_late > 2.0 and skew_late >= skew_early:
    sys.exit("FAIL: qps_skew_late=%.2f (early %.2f) — auto-split fired %d "
             "times but the late-window hot shard is still >2x the mean AND "
             "no better than the early window" %
             (skew_late, skew_early, splits))
print("splits_triggered=%d (shards %d -> %d, lineage=%d, "
      "skew %.2f -> %.2f): OK"
      % (splits, int(auto.get("shards_before", 0)),
         int(auto.get("shards_after", 0)), int(auto.get("lineage_shards", 0)),
         float(auto.get("qps_skew_early", 0)), skew_late))
print("write-mix read-back: %d+%d queries authenticated, 0 failures"
      % (int(fixed.get("verified_queries", 0)),
         int(auto.get("verified_queries", 0))))
PY
  rm -f "$WM_BASELINE"
  echo "wrote BENCH_edge_throughput_writemix.json (+ _writemix_fixed.json)"
  # Crypto fast-path microbench: Recover-vs-cache throughput on this
  # host. Uploaded as a CI artifact (not committed, not gated — the
  # ratios are host-dependent).
  "./$BUILD_DIR/bench/crypto_bench" --json > BENCH_crypto.json
  python3 -m json.tool BENCH_crypto.json > /dev/null
  echo "wrote BENCH_crypto.json"
  exit 0
fi

if [[ "$MODE" == "chaos" ]]; then
  # Chaos smoke. Three stages, each with its own gate:
  #  1. chaos_failover_test — the functional contract: under seeded
  #     drop/duplicate/partition faults plus one lying edge, no
  #     unverified row is ever delivered, the liar lands in quarantine,
  #     degraded answers are explicitly flagged, and a healed edge is
  #     probed back in.
  #  2. --fault-profile liar bench pass (the committed chaos artifact):
  #     the tampering edge must be quarantined and traffic must fail
  #     over, while the bench's own exit gate proves the fleet kept
  #     answering authenticated queries. Counter gates only — the
  #     wall-clock fields in the artifact are informational.
  #  3. --fault-profile lossy bench pass (not committed): the injector
  #     must actually fire and every run must keep a positive qps —
  #     "the service degrades, it does not stop".
  (cd "$BUILD_DIR" && ctest --output-on-failure -R "chaos_failover")
  VBT_BENCH_TUPLES="${VBT_BENCH_TUPLES:-2000}" \
    "./$BUILD_DIR/bench/edge_throughput" --json --seconds 1.5 \
    --fault-profile liar > BENCH_edge_throughput_chaos.json
  python3 -m json.tool BENCH_edge_throughput_chaos.json > /dev/null
  LOSSY_JSON="$(mktemp)"
  VBT_BENCH_TUPLES="${VBT_BENCH_TUPLES:-2000}" \
    "./$BUILD_DIR/bench/edge_throughput" --json --seconds 1.5 \
    --fault-profile lossy > "$LOSSY_JSON"
  python3 -m json.tool "$LOSSY_JSON" > /dev/null
  python3 - "$LOSSY_JSON" <<'PY'
import json, sys
liar = json.load(open("BENCH_edge_throughput_chaos.json"))
lossy = json.load(open(sys.argv[1]))

if liar.get("fault_profile") != "liar":
    sys.exit("FAIL: chaos artifact did not record fault_profile=liar")
if int(liar.get("quarantines", 0)) < 1:
    sys.exit("FAIL: the tampering edge was never quarantined")
if int(liar.get("failovers", 0)) < 1:
    sys.exit("FAIL: no failovers recorded under the liar profile")
q = sum(int(r.get("queries", 0)) for r in liar.get("runs", []))
if q <= 0:
    sys.exit("FAIL: liar-profile run answered no queries")
vf = sum(int(r.get("verify_failures", 0)) for r in liar.get("runs", []))
if vf:
    sys.exit("FAIL: %d final verification failures under the liar profile — "
             "failover must carry a tampered batch to a verified answer"
             % vf)
dead = [r.get("workers") for r in liar.get("runs", [])
        if float(r.get("qps", 0)) <= 0]
if dead:
    sys.exit("FAIL: qps hit zero under the liar profile at workers=%s" % dead)
print("liar: quarantines=%d failovers=%d degraded=%d over %d queries, "
      "0 unverified answers: OK"
      % (int(liar.get("quarantines", 0)), int(liar.get("failovers", 0)),
         int(liar.get("degraded_answers", 0)), q))

if lossy.get("fault_profile") != "lossy":
    sys.exit("FAIL: lossy run did not record fault_profile=lossy")
inj = sum(int(r.get("injected_dropped", 0)) +
          int(r.get("injected_duplicated", 0)) +
          int(r.get("injected_reordered", 0))
          for r in lossy.get("runs", []))
if inj <= 0:
    sys.exit("FAIL: the fault injector never fired in the lossy run")
if "retries_per_query" not in lossy:
    sys.exit("FAIL: retries_per_query missing from the lossy JSON")
dead = [r.get("workers") for r in lossy.get("runs", [])
        if float(r.get("qps", 0)) <= 0]
if dead:
    sys.exit("FAIL: qps hit zero under the lossy profile at workers=%s"
             % dead)
print("lossy: %d injections, retries/query=%.3f, qps stayed positive: OK"
      % (inj, float(lossy.get("retries_per_query", 0))))
PY
  rm -f "$LOSSY_JSON"
  echo "wrote BENCH_edge_throughput_chaos.json"
  exit 0
fi

cd "$BUILD_DIR"
if [[ "$MODE" == "sanitize" ]]; then
  # halt_on_error keeps a sanitizer hit from hiding behind a pass;
  # detect_leaks stays on by default where supported.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:strict_string_checks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
fi
if [[ "$MODE" == "tsan" ]]; then
  # The TSan job runs the concurrency-heavy subset: the worker-pool
  # service suite, the scatter-gather equivalence suite (now including
  # the DML-pipeline storm tests: pipelined-vs-serial equivalence,
  # cross-shard deletes racing inserts, splits mid-write-storm), the
  # OLC stress suite (readers racing splits, forced restarts, snapshot
  # installs), the lazy-trust suite (client threads racing the
  # background auditor over the shared digest cache and bounded ticket
  # queue), the split-pipeline suite (auto-split policy thread racing
  # writer threads), and the chaos failover suite (client threads
  # failing over through the director while the fault injector holds,
  # duplicates and re-releases messages across threads). The full suite
  # under TSan is prohibitively slow on the single-CPU CI runner and
  # adds no interleavings these don't hit.
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  ctest --output-on-failure -j "$(nproc)" \
        -R "query_service|shard_equivalence|olc_stress|lazy_trust|split_pipeline|chaos_failover"
else
  ctest --output-on-failure -j "$(nproc)"
fi
