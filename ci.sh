#!/usr/bin/env bash
# Tier-1 verify line: configure, build, run every test via CTest.
set -euo pipefail
cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build && ctest --output-on-failure -j "$(nproc)"
