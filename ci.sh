#!/usr/bin/env bash
# Tier-1 verify line: configure, build, run every test via CTest.
#
#   ./ci.sh                 regular build + ctest (build/)
#   ./ci.sh --sanitize      ASan+UBSan build + ctest (build-asan/)
#   ./ci.sh --bench-smoke   regular build, then a short edge_throughput
#                           run emitting BENCH_edge_throughput.json
set -euo pipefail
cd "$(dirname "$0")"

MODE="default"
case "${1:-}" in
  --sanitize) MODE="sanitize" ;;
  --bench-smoke) MODE="bench-smoke" ;;
  "") ;;
  *) echo "usage: ci.sh [--sanitize|--bench-smoke]" >&2; exit 2 ;;
esac

if [[ "$MODE" == "sanitize" ]]; then
  BUILD_DIR=build-asan
  cmake -B "$BUILD_DIR" -S . -DVBT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
else
  BUILD_DIR=build
  cmake -B "$BUILD_DIR" -S .
fi

cmake --build "$BUILD_DIR" -j "$(nproc)"

if [[ "$MODE" == "bench-smoke" ]]; then
  # Short closed-loop pass; the JSON is the CI perf-trajectory artifact.
  # The committed artifact is the VO-wire-cost baseline: take it from
  # HEAD so neither the fresh run below nor a stale working-tree copy
  # can masquerade as the baseline.
  BASELINE="$(mktemp)"
  git show HEAD:BENCH_edge_throughput.json > "$BASELINE" 2>/dev/null \
    || cp BENCH_edge_throughput.json "$BASELINE" 2>/dev/null \
    || echo '{}' > "$BASELINE"
  VBT_BENCH_TUPLES="${VBT_BENCH_TUPLES:-2000}" \
    "./$BUILD_DIR/bench/edge_throughput" --json --seconds 1.5 \
    > BENCH_edge_throughput.json
  python3 -m json.tool BENCH_edge_throughput.json > /dev/null
  # Guard the VO wire cost: vo_bytes_per_query must be present, and must
  # not regress more than 10% against the committed baseline (when the
  # baseline carries the field — bootstrap runs only assert presence).
  python3 - "$BASELINE" <<'PY'
import json, sys
new = json.load(open("BENCH_edge_throughput.json"))
if "vo_bytes_per_query" not in new:
    sys.exit("FAIL: vo_bytes_per_query missing from BENCH_edge_throughput.json")
cur = float(new["vo_bytes_per_query"])
if cur <= 0:
    sys.exit("FAIL: vo_bytes_per_query is %r (no wire batches completed?)" % cur)
base = json.load(open(sys.argv[1])).get("vo_bytes_per_query")
if base is None:
    print("vo_bytes_per_query=%.1f (no baseline; presence check only)" % cur)
elif cur > float(base) * 1.10:
    sys.exit("FAIL: vo_bytes_per_query regressed: %.1f vs baseline %.1f (+%.1f%%)"
             % (cur, float(base), 100.0 * (cur / float(base) - 1.0)))
else:
    print("vo_bytes_per_query=%.1f vs baseline %.1f: OK" % (cur, float(base)))
PY
  rm -f "$BASELINE"
  echo "wrote BENCH_edge_throughput.json"
  exit 0
fi

cd "$BUILD_DIR"
if [[ "$MODE" == "sanitize" ]]; then
  # halt_on_error keeps a sanitizer hit from hiding behind a pass;
  # detect_leaks stays on by default where supported.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:strict_string_checks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
fi
ctest --output-on-failure -j "$(nproc)"
