// Delta synchronization: the §3.4 "propagate the changes periodically"
// pattern, using the op-log delta mechanism instead of full snapshots.
//
// The central server applies a stream of updates; the DistributionHub's
// propagator batches the logged ops and ships them to the subscribed
// edge. Each delta carries only the changed tuples and the signatures
// the central server produced — the edge replays the structural changes
// itself and ends up bit-identical. An edge-side signature audit
// confirms replica health without any client traffic.
//
// Build & run:  ./build/examples/delta_sync
#include <cstdio>

#include "common/random.h"
#include "crypto/sim_signer.h"
#include "edge/central_server.h"
#include "edge/client.h"
#include "edge/edge_server.h"
#include "edge/propagation/distribution_hub.h"

using namespace vbtree;

int main() {
  auto central_or = CentralServer::Create({});
  if (!central_or.ok()) return 1;
  CentralServer& central = **central_or;

  Schema schema({{"id", TypeId::kInt64},
                 {"device", TypeId::kString},
                 {"status", TypeId::kString}});
  if (!central.CreateTable("fleet", schema).ok()) return 1;
  Rng rng(3);
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 5000; ++i) {
    rows.push_back(Tuple({Value::Int(i), Value::Str("dev-" + std::to_string(i)),
                          Value::Str("ok")}));
  }
  if (!central.LoadTable("fleet", rows).ok()) return 1;

  SimulatedNetwork net;
  EdgeServer edge("edge-1");
  PropagationOptions popts;
  popts.policy = ShipPolicy::kDeltaPreferred;
  DistributionHub hub(&central, &net, popts);
  if (!hub.Subscribe(&edge).ok()) return 1;
  if (!hub.SyncAll().ok()) return 1;
  uint64_t snapshot_bytes = net.stats("central->edge:edge-1").bytes;
  std::printf("initial snapshot: %.1f KB (5000 rows)\n",
              snapshot_bytes / 1e3);

  Client client(central.db_name(), central.key_directory());
  client.RegisterTable("fleet", schema);

  // --- five sync rounds of updates + delta pull -------------------------
  int64_t next_id = 5000;
  for (int round = 1; round <= 5; ++round) {
    // A burst of updates at the central server.
    for (int i = 0; i < 40; ++i) {
      if (!central
               .InsertTuple("fleet",
                            Tuple({Value::Int(next_id++),
                                   Value::Str("dev-" + std::to_string(next_id)),
                                   Value::Str("provisioned")}))
               .ok()) {
        return 1;
      }
    }
    if (!central.DeleteRange("fleet", round * 100, round * 100 + 9).ok()) {
      return 1;
    }

    // Periodic propagation: the hub ships the pending ops as a delta.
    if (!hub.SyncAll().ok()) return 1;
    uint64_t delta_bytes =
        net.stats("central->edge:edge-1:delta").bytes;
    bool identical = edge.tree("fleet")->root_digest() ==
                     central.tree("fleet")->root_digest();
    std::printf(
        "round %d: 41 ops -> delta total %.1f KB; edge %s central "
        "(version %llu)\n",
        round, delta_bytes / 1e3,
        identical ? "bit-identical to" : "DIVERGED from",
        static_cast<unsigned long long>(edge.TableVersion("fleet")));
    if (!identical) return 1;

    // A verified client read after each round.
    SelectQuery q;
    q.table = "fleet";
    q.range = KeyRange{round * 100 - 20, round * 100 + 30};
    auto r = client.Query(&edge, q, 1, &net);
    if (!r.ok() || !r->verification.ok()) {
      std::printf("client verification failed!\n");
      return 1;
    }
  }

  // --- edge self-audit ---------------------------------------------------
  auto recoverer = central.key_directory()->RecovererFor(
      central.current_key_version(), 1);
  if (!recoverer.ok()) return 1;
  auto audited = edge.tree("fleet")->AuditSignatures(recoverer->get());
  if (!audited.ok()) {
    std::printf("edge audit failed: %s\n",
                audited.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nedge self-audit: %zu signatures verified against the public key\n",
      *audited);
  std::printf(
      "delta sync shipped %.1f KB total vs %.1f KB per full snapshot.\n",
      net.stats("central->edge:edge-1:delta").bytes / 1e3,
      snapshot_bytes / 1e3);
  return 0;
}
