// Update workload: the §3.4 story. All updates go through the central
// server (only it can sign); queries follow the digest-locking protocol —
// a query S-locks its enveloping subtree, a delete X-locks the affected
// paths, so overlapping operations serialize while disjoint ones proceed.
//
// Build & run:  ./build/examples/update_workload
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "edge/central_server.h"
#include "edge/client.h"
#include "edge/edge_server.h"
#include "edge/propagation/distribution_hub.h"
#include "query/executor.h"

using namespace vbtree;

int main() {
  CentralServer::Options options;
  // A modest fan-out gives the 4096-row table real depth, so enveloping
  // subtrees of narrow queries sit well below the root and the digest
  // locks can demonstrate disjoint concurrency. (With the default 4 KB
  // fan-out of 114 this table would be 2 levels deep and every multi-leaf
  // query would envelope at the root — correctly conflicting with any
  // delete, per §3.4.)
  options.tree_opts.config.max_internal = 16;
  options.tree_opts.config.max_leaf = 16;
  auto central_or = CentralServer::Create(options);
  if (!central_or.ok()) return 1;
  CentralServer& central = **central_or;

  Schema schema({{"id", TypeId::kInt64},
                 {"payload", TypeId::kString},
                 {"version", TypeId::kInt64}});
  if (!central.CreateTable("events", schema).ok()) return 1;
  Rng rng(1);
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 4096; ++i) {
    rows.push_back(Tuple(
        {Value::Int(i), Value::Str(rng.NextString(24)), Value::Int(0)}));
  }
  if (!central.LoadTable("events", rows).ok()) return 1;
  VBTree* tree = central.tree("events");
  TableHeap* heap = central.heap("events");
  std::printf("loaded 4096 events (height %d, %llu nodes)\n", tree->height(),
              static_cast<unsigned long long>(tree->node_count()));

  // --- 1. Edge replicas reject updates ---------------------------------
  SimulatedNetwork net;
  EdgeServer edge("edge-1");
  DistributionHub hub(&central, &net);  // background propagator running
  if (!hub.Subscribe(&edge).ok()) return 1;
  if (!hub.SyncAll().ok()) return 1;
  {
    ByteWriter w;
    tree->SerializeTo(&w);
    ByteReader r(Slice(w.buffer()));
    auto replica = VBTree::Deserialize(&r);  // no signing key
    if (!replica.ok()) return 1;
    Status s = (*replica)->Insert(rows[0], Rid{0, 0});
    std::printf("edge replica insert attempt: %s (updates must go to the\n"
                "central server, which holds the private key)\n\n",
                s.ToString().c_str());
    if (s.ok()) return 1;
  }

  // --- 2. Digest-lock protocol (§3.4) ----------------------------------
  LockManager* lm = central.lock_manager();
  // A delete transaction (txn 1) acquires X locks on [0, 63] and holds
  // them (2PL growing phase).
  auto removed = tree->DeleteRange(0, 63, /*txn=*/1);
  if (!removed.ok()) return 1;
  std::printf("txn1: deleted %zu tuples, still holding its X locks\n",
              *removed);

  SelectQuery disjoint;
  disjoint.table = "events";
  disjoint.range = KeyRange{2100, 2200};
  auto ok_query =
      tree->ExecuteSelect(disjoint, Executor::FetcherFor(heap), /*txn=*/2);
  std::printf("txn2: disjoint query [2100,2200]   -> %s\n",
              ok_query.ok() ? "proceeds concurrently" : "blocked");
  lm->ReleaseAll(2);

  SelectQuery overlapping;
  overlapping.table = "events";
  overlapping.range = KeyRange{32, 96};
  auto blocked =
      tree->ExecuteSelect(overlapping, Executor::FetcherFor(heap), /*txn=*/3);
  std::printf("txn3: overlapping query [32,96]    -> %s\n",
              blocked.ok() ? "proceeds (unexpected!)"
                           : blocked.status().ToString().c_str());
  lm->ReleaseAll(3);

  lm->ReleaseAll(1);  // txn1 commits
  auto after_commit =
      tree->ExecuteSelect(overlapping, Executor::FetcherFor(heap), /*txn=*/3);
  std::printf("txn3 retry after txn1 commit       -> %s\n\n",
              after_commit.ok() ? "proceeds" : "blocked");
  lm->ReleaseAll(3);
  if (ok_query.ok() != true || blocked.ok() != false ||
      after_commit.ok() != true) {
    return 1;
  }

  // --- 3. Steady churn with concurrent verified reads ------------------
  std::printf("running 30 update batches with concurrent verified reads...\n");
  std::atomic<bool> stop{false};
  std::atomic<int> read_failures{0};
  std::thread reader([&] {
    Client client(central.db_name(), central.key_directory());
    client.RegisterTable("events", schema);
    Rng r(5);
    while (!stop.load()) {
      SelectQuery q;
      q.table = "events";
      int64_t lo = static_cast<int64_t>(r.Uniform(4000));
      q.range = KeyRange{lo, lo + 64};
      auto res = client.Query(&edge, q, 1, nullptr);
      if (!res.ok() || !res->verification.ok()) read_failures++;
    }
  });

  Rng wrng(9);
  for (int batch = 0; batch < 30; ++batch) {
    for (int i = 0; i < 20; ++i) {
      int64_t key = 10000 + batch * 20 + i;
      if (!central
               .InsertTuple("events",
                            Tuple({Value::Int(key),
                                   Value::Str(wrng.NextString(24)),
                                   Value::Int(batch)}))
               .ok()) {
        return 1;
      }
    }
    if (!central.DeleteRange("events", 64 + batch * 16, 64 + batch * 16 + 7)
             .ok()) {
      return 1;
    }
    // No manual propagation: the hub's background thread is batching the
    // logged ops and shipping deltas while the churn continues.
  }
  stop = true;
  reader.join();
  // Barrier: let the propagator drain the remaining ops, then compare.
  if (!hub.SyncAll().ok()) return 1;

  Status consistency = tree->CheckDigestConsistency();
  bool converged =
      edge.tree("events")->root_digest() == tree->root_digest();
  auto hub_stats = hub.stats();
  std::printf("after churn: %zu tuples, digests %s, reader failures: %d\n",
              tree->size(), consistency.ok() ? "consistent" : "BROKEN",
              read_failures.load());
  std::printf(
      "edge %s central after %llu background flushes (%llu deltas, %llu "
      "snapshots shipped)\n",
      converged ? "converged to" : "DIVERGED from",
      static_cast<unsigned long long>(hub_stats.flushes),
      static_cast<unsigned long long>(hub_stats.deltas_shipped),
      static_cast<unsigned long long>(hub_stats.snapshots_shipped));
  std::printf("(reads verify throughout: each delta applies atomically)\n");
  return consistency.ok() && converged && read_failures.load() == 0 ? 0 : 1;
}
