// Edge-network deployment: a central server, three geo-distributed edge
// servers, and a client population issuing skewed (Zipf) range queries —
// the scalability story of §1. Demonstrates:
//   * per-channel communication accounting (distribution vs query traffic),
//   * all answers verifying regardless of which edge served them,
//   * key rotation (§3.4): an edge that misses the update window cannot
//     masquerade stale data once the old key version expires.
//
// Build & run:  ./build/examples/edge_network
#include <cstdio>

#include "common/random.h"
#include "edge/central_server.h"
#include "edge/client.h"
#include "edge/edge_server.h"
#include "edge/propagation/distribution_hub.h"

using namespace vbtree;

int main() {
  CentralServer::Options options;
  options.db_name = "telemetry";
  options.key_validity = 1000;  // each key version valid for 1000 ticks
  auto central_or = CentralServer::Create(options);
  if (!central_or.ok()) return 1;
  CentralServer& central = **central_or;

  Schema schema({{"id", TypeId::kInt64},
                 {"sensor", TypeId::kString},
                 {"reading", TypeId::kDouble},
                 {"unit", TypeId::kString}});
  if (!central.CreateTable("readings", schema).ok()) return 1;

  Rng rng(99);
  std::vector<Tuple> rows;
  const size_t kRows = 10000;
  for (size_t i = 0; i < kRows; ++i) {
    rows.push_back(Tuple({Value::Int(static_cast<int64_t>(i)),
                          Value::Str("sensor-" + std::to_string(i % 64)),
                          Value::Double(rng.NextDouble() * 100),
                          Value::Str("kPa")}));
  }
  if (!central.LoadTable("readings", rows).ok()) return 1;

  SimulatedNetwork net;
  EdgeServer edges[] = {EdgeServer("edge-us"), EdgeServer("edge-eu"),
                        EdgeServer("edge-ap")};
  DistributionHub hub(&central, &net);  // background propagator running
  for (EdgeServer& e : edges) {
    if (!hub.Subscribe(&e).ok()) return 1;
  }
  if (!hub.SyncAll().ok()) return 1;
  std::printf("hub distributed 'readings' (%zu rows) to 3 edge servers\n",
              kRows);

  Client client(central.db_name(), central.key_directory());
  client.RegisterTable("readings", schema);

  // --- skewed query workload spread over the edges ---------------------
  ZipfGenerator zipf(kRows, 0.9, 7);
  size_t verified = 0;
  const int kQueries = 60;
  uint64_t result_bytes = 0, vo_bytes = 0;
  for (int i = 0; i < kQueries; ++i) {
    SelectQuery q;
    q.table = "readings";
    int64_t lo = static_cast<int64_t>(zipf.Next());
    q.range = KeyRange{lo, lo + static_cast<int64_t>(rng.Uniform(200))};
    if (rng.OneIn(2)) q.projection = {0, 1, 2};
    auto r = client.Query(&edges[i % 3], q, /*now=*/10, &net);
    if (!r.ok()) return 1;
    if (r->verification.ok()) verified++;
    result_bytes += r->result_bytes;
    vo_bytes += r->vo_bytes;
  }
  std::printf("%d queries over 3 edges: %zu verified (expected all)\n",
              kQueries, verified);
  std::printf("  result payload %llu B, VO overhead %llu B (%.1f%%)\n",
              static_cast<unsigned long long>(result_bytes),
              static_cast<unsigned long long>(vo_bytes),
              100.0 * static_cast<double>(vo_bytes) /
                  static_cast<double>(result_bytes ? result_bytes : 1));

  std::printf("\nper-channel traffic:\n");
  for (const char* ch :
       {"central->edge:edge-us", "central->edge:edge-eu",
        "central->edge:edge-ap", "client->edge:edge-us",
        "edge:edge-us->client"}) {
    auto s = net.stats(ch);
    std::printf("  %-26s %6llu msgs %12llu bytes\n", ch,
                static_cast<unsigned long long>(s.messages),
                static_cast<unsigned long long>(s.bytes));
  }

  // --- key rotation: edge-ap misses the refresh ------------------------
  std::printf("\nrotating signing key at t=500; edge-ap keeps stale data\n");
  // Unsubscribing edge-ap simulates a partitioned region: the propagator
  // refreshes only the remaining subscribers after the rotation.
  if (!hub.Unsubscribe("edge-ap").ok()) return 1;
  if (!central.RotateKey(500).ok()) return 1;
  if (!hub.SyncAll().ok()) return 1;

  SelectQuery probe;
  probe.table = "readings";
  probe.range = KeyRange{0, 50};

  auto fresh = client.Query(&edges[0], probe, /*now=*/600, &net);
  auto stale = client.Query(&edges[2], probe, /*now=*/600, &net);
  if (!fresh.ok() || !stale.ok()) return 1;
  std::printf("  edge-us (refreshed):  %s\n",
              fresh->verification.ToString().c_str());
  std::printf("  edge-ap (stale key):  %s\n",
              stale->verification.ToString().c_str());
  if (!fresh->verification.ok() || !stale->verification.IsVerificationFailure()) {
    return 1;
  }
  std::printf(
      "\nstale data signed with the retired key was rejected, exactly the\n"
      "masquerade defence of §3.4.\n");
  return 0;
}
