// Authenticated joins via materialized views (§3.3 Join): since edge
// queries are mostly known in advance, the central server materializes
// each join and builds a VB-tree over the view; clients then verify join
// results exactly like base-table results. The example also exercises
// incremental view maintenance under inserts and deletes.
//
// Build & run:  ./build/examples/join_views
#include <cstdio>

#include "edge/central_server.h"
#include "edge/client.h"
#include "edge/edge_server.h"
#include "edge/propagation/distribution_hub.h"

using namespace vbtree;

int main() {
  auto central_or = CentralServer::Create({});
  if (!central_or.ok()) return 1;
  CentralServer& central = **central_or;

  // orders(id, customer_ref, item)  ⋈  customers(id, name, tier)
  Schema orders({{"id", TypeId::kInt64},
                 {"customer_ref", TypeId::kInt64},
                 {"item", TypeId::kString}});
  Schema customers({{"id", TypeId::kInt64},
                    {"name", TypeId::kString},
                    {"tier", TypeId::kString}});
  if (!central.CreateTable("orders", orders).ok()) return 1;
  if (!central.CreateTable("customers", customers).ok()) return 1;

  std::vector<Tuple> customer_rows, order_rows;
  const char* tiers[] = {"gold", "silver", "bronze"};
  for (int64_t c = 0; c < 30; ++c) {
    customer_rows.push_back(Tuple({Value::Int(c),
                                   Value::Str("cust" + std::to_string(c)),
                                   Value::Str(tiers[c % 3])}));
  }
  for (int64_t o = 0; o < 200; ++o) {
    order_rows.push_back(Tuple({Value::Int(o), Value::Int(o % 30),
                                Value::Str("item" + std::to_string(o % 17))}));
  }
  if (!central.LoadTable("orders", order_rows).ok()) return 1;
  if (!central.LoadTable("customers", customer_rows).ok()) return 1;

  JoinSpec spec;
  spec.view_name = "orders_with_customers";
  spec.left_table = "orders";
  spec.right_table = "customers";
  spec.left_col = 1;   // orders.customer_ref
  spec.right_col = 0;  // customers.id
  if (!central.CreateJoinView(spec).ok()) return 1;
  auto view = central.GetJoinView(spec.view_name);
  if (!view.ok()) return 1;
  std::printf("materialized %s: %zu join rows, schema of %zu columns\n",
              spec.view_name.c_str(), (*view)->row_count(),
              (*view)->schema().num_columns());

  // Distribute (tables and the view) and query it with verification.
  SimulatedNetwork net;
  EdgeServer edge("edge-1");
  DistributionHub hub(&central, &net);  // views ship by snapshot
  if (!hub.Subscribe(&edge).ok()) return 1;
  if (!hub.SyncAll().ok()) return 1;
  Client client(central.db_name(), central.key_directory());
  auto info = central.DescribeTable(spec.view_name);
  if (!info.ok()) return 1;
  client.RegisterTable(spec.view_name, (*info)->schema);

  SelectQuery q;
  q.table = spec.view_name;
  q.range = KeyRange{0, 1000};
  // Project: view_id, order item, customer name, customer tier.
  q.projection = {0, 3, 5, 6};
  auto result = client.Query(&edge, q, 1, nullptr);
  if (!result.ok()) return 1;
  std::printf("join query: %zu rows, verification: %s\n", result->rows.size(),
              result->verification.ToString().c_str());
  for (size_t i = 0; i < 3 && i < result->rows.size(); ++i) {
    const ResultRow& row = result->rows[i];
    std::printf("  view_id=%-4lld item=%-8s customer=%-8s tier=%s\n",
                static_cast<long long>(row.key),
                row.values[1].AsString().c_str(),
                row.values[2].AsString().c_str(),
                row.values[3].AsString().c_str());
  }
  if (!result->verification.ok()) return 1;

  // --- incremental maintenance -----------------------------------------
  std::printf("\ninserting one order and deleting customer 5...\n");
  if (!central
           .InsertTuple("orders", Tuple({Value::Int(777), Value::Int(12),
                                         Value::Str("surprise")}))
           .ok()) {
    return 1;
  }
  if (!central.DeleteRange("customers", 5, 5).ok()) return 1;
  view = central.GetJoinView(spec.view_name);
  if (!view.ok()) return 1;
  std::printf("view now has %zu rows (was 200; +1 insert, -%d for customer 5)\n",
              (*view)->row_count(), 200 / 30 + 1);

  // The view's version advanced with the maintenance, so the hub
  // re-ships its snapshot; the refreshed view still authenticates.
  if (!hub.SyncAll().ok()) return 1;
  auto after = client.Query(&edge, q, 1, nullptr);
  if (!after.ok()) return 1;
  std::printf("after maintenance: %zu rows, verification: %s\n",
              after->rows.size(), after->verification.ToString().c_str());
  return after->verification.ok() ? 0 : 1;
}
