// Quickstart: the minimal end-to-end flow of the paper's Figure 2.
//
//   1. The trusted central server creates a table and builds its VB-tree.
//   2. The propagation hub distributes the table (data + signed digests)
//      to a subscribed edge server in the background.
//   3. A client sends a range query to the edge server and receives the
//      result together with a verification object (VO).
//   4. The client authenticates the result using only the central
//      server's public key.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "edge/central_server.h"
#include "edge/client.h"
#include "edge/edge_server.h"
#include "edge/propagation/distribution_hub.h"

using namespace vbtree;

int main() {
  // --- 1. Central server with a small product table -------------------
  CentralServer::Options options;
  options.db_name = "shopdb";
  auto central_or = CentralServer::Create(options);
  if (!central_or.ok()) {
    std::fprintf(stderr, "central server: %s\n",
                 central_or.status().ToString().c_str());
    return 1;
  }
  CentralServer& central = **central_or;

  Schema schema({{"id", TypeId::kInt64},
                 {"name", TypeId::kString},
                 {"category", TypeId::kString},
                 {"price", TypeId::kDouble}});
  if (!central.CreateTable("products", schema).ok()) return 1;

  std::vector<Tuple> rows;
  const char* names[] = {"anvil", "rope",  "dynamite", "magnet",
                         "rocket", "paint", "ladder",   "piano"};
  for (int64_t i = 0; i < 64; ++i) {
    rows.push_back(Tuple({Value::Int(i), Value::Str(names[i % 8]),
                          Value::Str(i % 2 == 0 ? "hardware" : "novelty"),
                          Value::Double(9.99 + static_cast<double>(i))}));
  }
  if (!central.LoadTable("products", rows).ok()) return 1;
  std::printf("central: loaded %zu products, VB-tree root digest %s...\n",
              rows.size(),
              central.tree("products")->root_digest().ToHex().substr(0, 16).c_str());

  // --- 2. Distribute to an edge server via the propagation hub ---------
  SimulatedNetwork net;
  EdgeServer edge("edge-west");  // declared before the hub: outlives it
  DistributionHub hub(&central, &net);  // background propagator running
  if (!hub.Subscribe(&edge).ok()) return 1;
  if (!hub.SyncAll().ok()) return 1;  // barrier: wait until it is current
  std::printf("hub: distributed snapshot to %s (%llu bytes)\n",
              edge.name().c_str(),
              static_cast<unsigned long long>(
                  net.stats("central->edge:edge-west").bytes));

  // --- 3. Client queries the edge, with projection ---------------------
  Client client(central.db_name(), central.key_directory());
  client.RegisterTable("products", schema);

  SelectQuery q;
  q.table = "products";
  q.range = KeyRange{10, 20};
  q.projection = {0, 1, 3};  // id, name, price (category filtered out)

  auto result = client.Query(&edge, q, /*now=*/1, &net);
  if (!result.ok()) return 1;

  // --- 4. Inspect the authenticated answer -----------------------------
  std::printf("\nclient: %zu rows, verification: %s\n", result->rows.size(),
              result->verification.ToString().c_str());
  std::printf("client: result %zu B + VO %zu B (%zu signed digests)\n\n",
              result->result_bytes, result->vo_bytes, result->vo_digests);
  for (const ResultRow& row : result->rows) {
    std::printf("  id=%-3lld name=%-10s price=%.2f\n",
                static_cast<long long>(row.key),
                row.values[1].AsString().c_str(), row.values[2].AsDouble());
  }
  return result->verification.ok() ? 0 : 1;
}
