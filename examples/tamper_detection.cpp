// Tamper detection: plays the "hacked edge server" of §3.1 and shows
// that every integrity violation the paper targets is caught by the VO,
// while data outside the query stays unaffected.
//
// Build & run:  ./build/examples/tamper_detection
#include <cstdio>

#include "common/random.h"
#include "edge/central_server.h"
#include "edge/client.h"
#include "edge/edge_server.h"
#include "edge/propagation/distribution_hub.h"

using namespace vbtree;

namespace {

Schema AccountSchema() {
  return Schema({{"id", TypeId::kInt64},
                 {"owner", TypeId::kString},
                 {"balance", TypeId::kDouble},
                 {"branch", TypeId::kString}});
}

void Report(const char* scenario, const Status& verification,
            bool expect_failure) {
  bool failed = verification.IsVerificationFailure();
  std::printf("  %-46s -> %s%s\n", scenario,
              failed ? "REJECTED: " : "accepted",
              failed ? verification.message().c_str() : "");
  if (failed != expect_failure) {
    std::printf("  UNEXPECTED OUTCOME\n");
    std::exit(1);
  }
}

}  // namespace

int main() {
  auto central_or = CentralServer::Create({});
  if (!central_or.ok()) return 1;
  CentralServer& central = **central_or;
  Schema schema = AccountSchema();
  if (!central.CreateTable("accounts", schema).ok()) return 1;

  Rng rng(7);
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 500; ++i) {
    rows.push_back(Tuple({Value::Int(i), Value::Str(rng.NextString(12)),
                          Value::Double(1000.0 + static_cast<double>(i)),
                          Value::Str(i % 2 == 0 ? "north" : "south")}));
  }
  if (!central.LoadTable("accounts", rows).ok()) return 1;

  SimulatedNetwork net;
  EdgeServer edge("edge-sketchy");
  DistributionHub hub(&central, &net);
  if (!hub.Subscribe(&edge).ok()) return 1;
  if (!hub.SyncAll().ok()) return 1;
  Client client(central.db_name(), central.key_directory());
  client.RegisterTable("accounts", schema);

  SelectQuery q;
  q.table = "accounts";
  q.range = KeyRange{100, 150};

  std::printf("Scenario 0: honest edge server\n");
  auto honest = client.Query(&edge, q, 1, nullptr);
  if (!honest.ok()) return 1;
  Report("honest answer", honest->verification, false);

  std::printf("\nScenario 1: hacker inflates a balance in the replica\n");
  if (!edge.TamperValueByKey("accounts", 123, 2, Value::Double(9e9)).ok()) {
    return 1;
  }
  auto inflated = client.Query(&edge, q, 1, nullptr);
  if (!inflated.ok()) return 1;
  Report("query covering the tampered row", inflated->verification, true);

  auto elsewhere_q = q;
  elsewhere_q.range = KeyRange{300, 350};
  auto elsewhere = client.Query(&edge, elsewhere_q, 1, nullptr);
  if (!elsewhere.ok()) return 1;
  Report("query not covering it", elsewhere->verification, false);

  // Heal the replica for the remaining scenarios: force a snapshot
  // re-ship (the replica version alone looks current, so the hub must be
  // told the state is corrupt).
  if (!hub.ForceSnapshot("edge-sketchy").ok()) return 1;
  if (!hub.SyncAll().ok()) return 1;

  std::printf("\nScenario 2: edge fabricates an extra result row\n");
  edge.set_response_tamper(ResponseTamper::kInjectRow);
  auto injected = client.Query(&edge, q, 1, nullptr);
  if (!injected.ok()) return 1;
  Report("spurious tuple in the answer", injected->verification, true);

  std::printf("\nScenario 3: edge silently drops a result row\n");
  edge.set_response_tamper(ResponseTamper::kDropRow);
  auto dropped = client.Query(&edge, q, 1, nullptr);
  if (!dropped.ok()) return 1;
  Report("missing tuple in the answer", dropped->verification, true);

  std::printf("\nScenario 4: edge rewrites a value in transit\n");
  edge.set_response_tamper(ResponseTamper::kModifyValue);
  auto rewritten = client.Query(&edge, q, 1, nullptr);
  if (!rewritten.ok()) return 1;
  Report("modified attribute value", rewritten->verification, true);

  edge.set_response_tamper(ResponseTamper::kNone);
  auto back_to_honest = client.Query(&edge, q, 1, nullptr);
  if (!back_to_honest.ok()) return 1;
  std::printf("\nScenario 5: back to honest\n");
  Report("honest again", back_to_honest->verification, false);

  std::printf("\nAll tampering scenarios behaved as the paper predicts.\n");
  return 0;
}
