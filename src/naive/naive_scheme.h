#ifndef VBTREE_NAIVE_NAIVE_SCHEME_H_
#define VBTREE_NAIVE_NAIVE_SCHEME_H_

#include <map>
#include <memory>
#include <vector>

#include "crypto/signer.h"
#include "query/predicate.h"
#include "vbtree/digest_schema.h"

namespace vbtree {

/// Per-tuple authentication data of the Naive strategy (paper Appendix,
/// Fig. 14): one signed tuple digest plus one signed digest per attribute.
struct NaiveTupleAuth {
  Signature tuple_sig;
  std::vector<Signature> attr_sigs;
};

/// What the edge ships per result row: the signed tuple digest and the
/// signed digests of the projected-away attributes.
struct NaiveRowAuth {
  Signature tuple_sig;
  std::vector<Signature> filtered_attr_sigs;
};

/// A Naive-scheme query answer.
struct NaiveQueryOutput {
  std::vector<ResultRow> rows;
  std::vector<NaiveRowAuth> auth;

  size_t ResultBytes() const {
    size_t n = 0;
    for (const ResultRow& r : rows) n += r.SerializedSize();
    return n;
  }
  /// Bytes of authentication data (the naive "VO").
  size_t AuthBytes() const;
  /// Number of signed digests shipped.
  size_t DigestCount() const;
};

/// Edge-server side of the Naive baseline: a key-ordered store of tuples
/// with their authentication data, queried by range/conditions/projection
/// exactly like the VB-tree path so the two schemes are comparable.
class NaiveStore {
 public:
  /// `signer` is the central server's; used once at load time.
  NaiveStore(DigestSchema digest_schema, Signer* signer)
      : ds_(std::move(digest_schema)), signer_(signer) {}

  void set_counters(CryptoCounters* counters) { ds_.set_counters(counters); }

  /// Authenticates and stores one tuple (central-server work).
  Status Load(const Tuple& tuple);

  Status LoadAll(std::span<const Tuple> tuples) {
    for (const Tuple& t : tuples) VBT_RETURN_NOT_OK(Load(t));
    return Status::OK();
  }

  size_t size() const { return store_.size(); }

  /// Tampering hook for tests: overwrite a stored value, keeping the
  /// original signatures (simulating a hacked edge server).
  Status TamperValue(int64_t key, size_t col, Value v);

  Result<NaiveQueryOutput> ExecuteSelect(const SelectQuery& query) const;

 private:
  struct Entry {
    Tuple tuple;
    NaiveTupleAuth auth;
  };

  DigestSchema ds_;
  Signer* signer_;
  std::map<int64_t, Entry> store_;
};

/// Client-side verification for the Naive scheme: per result row, compute
/// the digests of returned attributes, recover the filtered attributes'
/// digests, combine into the tuple digest, recover the signed tuple digest
/// and compare. Costs one signature decrypt *per row* — the factor the
/// VB-tree eliminates (Fig. 12).
class NaiveVerifier {
 public:
  NaiveVerifier(DigestSchema digest_schema, Recoverer* recoverer)
      : ds_(std::move(digest_schema)), recoverer_(recoverer) {}

  void set_counters(CryptoCounters* counters) { ds_.set_counters(counters); }

  Status VerifySelect(const SelectQuery& query,
                      const std::vector<ResultRow>& rows,
                      const std::vector<NaiveRowAuth>& auth);

 private:
  DigestSchema ds_;
  Recoverer* recoverer_;
};

}  // namespace vbtree

#endif  // VBTREE_NAIVE_NAIVE_SCHEME_H_
