#include "naive/naive_scheme.h"

#include <algorithm>

namespace vbtree {

size_t NaiveQueryOutput::AuthBytes() const {
  size_t n = 0;
  for (const NaiveRowAuth& a : auth) {
    n += a.tuple_sig.size();
    for (const Signature& s : a.filtered_attr_sigs) n += s.size();
  }
  return n;
}

size_t NaiveQueryOutput::DigestCount() const {
  size_t n = 0;
  for (const NaiveRowAuth& a : auth) n += 1 + a.filtered_attr_sigs.size();
  return n;
}

Status NaiveStore::Load(const Tuple& tuple) {
  if (signer_ == nullptr) {
    return Status::InvalidArgument("NaiveStore::Load requires a signer");
  }
  if (tuple.num_values() != ds_.schema().num_columns()) {
    return Status::InvalidArgument("tuple arity does not match schema");
  }
  Entry e;
  e.tuple = tuple;
  std::vector<Digest> attrs = ds_.AttributeDigests(tuple);
  e.auth.attr_sigs.reserve(attrs.size());
  for (const Digest& a : attrs) {
    VBT_ASSIGN_OR_RETURN(Signature s, signer_->Sign(a));
    e.auth.attr_sigs.push_back(std::move(s));
  }
  Digest tuple_digest = ds_.CombineDigests(attrs);
  VBT_ASSIGN_OR_RETURN(e.auth.tuple_sig, signer_->Sign(tuple_digest));
  auto [it, inserted] = store_.emplace(tuple.key(), std::move(e));
  if (!inserted) return Status::AlreadyExists("duplicate key");
  return Status::OK();
}

Status NaiveStore::TamperValue(int64_t key, size_t col, Value v) {
  auto it = store_.find(key);
  if (it == store_.end()) return Status::NotFound("no tuple with that key");
  if (col >= it->second.tuple.num_values()) {
    return Status::InvalidArgument("column out of range");
  }
  it->second.tuple.set_value(col, std::move(v));
  return Status::OK();
}

Result<NaiveQueryOutput> NaiveStore::ExecuteSelect(
    const SelectQuery& query) const {
  SelectQuery q = query;
  q.NormalizeProjection();
  if (!q.projection.empty() && q.projection[0] != 0) {
    return Status::InvalidArgument("projection must retain the key column");
  }
  std::vector<size_t> filtered_cols =
      q.FilteredColumns(ds_.schema().num_columns());

  NaiveQueryOutput out;
  for (auto it = store_.lower_bound(q.range.lo);
       it != store_.end() && it->first <= q.range.hi; ++it) {
    const Entry& e = it->second;
    if (!q.MatchesConditions(e.tuple)) continue;
    ResultRow row;
    row.key = e.tuple.key();
    NaiveRowAuth auth;
    auth.tuple_sig = e.auth.tuple_sig;
    if (q.projection.empty()) {
      row.values = e.tuple.values();
    } else {
      for (size_t c : q.projection) row.values.push_back(e.tuple.value(c));
      for (size_t c : filtered_cols) {
        auth.filtered_attr_sigs.push_back(e.auth.attr_sigs[c]);
      }
    }
    out.rows.push_back(std::move(row));
    out.auth.push_back(std::move(auth));
  }
  return out;
}

Status NaiveVerifier::VerifySelect(const SelectQuery& query,
                                   const std::vector<ResultRow>& rows,
                                   const std::vector<NaiveRowAuth>& auth) {
  SelectQuery q = query;
  q.NormalizeProjection();
  const size_t m = ds_.schema().num_columns();
  const std::vector<size_t> filtered_cols = q.FilteredColumns(m);
  const size_t row_width = q.projection.empty() ? m : q.projection.size();

  if (rows.size() != auth.size()) {
    return Status::VerificationFailure("row/auth count mismatch");
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& row = rows[i];
    const NaiveRowAuth& a = auth[i];
    if (row.values.size() != row_width) {
      return Status::VerificationFailure("result row has wrong arity");
    }
    if (!q.range.Contains(row.key)) {
      return Status::VerificationFailure("result key outside query range");
    }
    if (a.filtered_attr_sigs.size() != filtered_cols.size()) {
      return Status::VerificationFailure("filtered attribute count mismatch");
    }

    std::vector<Digest> attrs;
    attrs.reserve(m);
    if (q.projection.empty()) {
      for (size_t c = 0; c < m; ++c) {
        attrs.push_back(ds_.AttributeDigest(row.key, c, row.values[c]));
      }
    } else {
      for (size_t p = 0; p < q.projection.size(); ++p) {
        attrs.push_back(
            ds_.AttributeDigest(row.key, q.projection[p], row.values[p]));
      }
      for (const Signature& s : a.filtered_attr_sigs) {
        VBT_ASSIGN_OR_RETURN(Digest d, recoverer_->Recover(s));
        attrs.push_back(d);
      }
    }
    Digest computed = ds_.CombineDigests(attrs);
    VBT_ASSIGN_OR_RETURN(Digest expected, recoverer_->Recover(a.tuple_sig));
    if (!(computed == expected)) {
      return Status::VerificationFailure(
          "tuple digest mismatch: result failed authentication");
    }
  }
  return Status::OK();
}

}  // namespace vbtree
