#ifndef VBTREE_VBTREE_DIGEST_SCHEMA_H_
#define VBTREE_VBTREE_DIGEST_SCHEMA_H_

#include <span>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "crypto/commutative_hash.h"
#include "crypto/counters.h"
#include "crypto/hash.h"

namespace vbtree {

/// Digest computation rules shared by the central server (building and
/// updating VB-trees) and clients (verifying results). Implements the
/// paper's formulas:
///
///   (1) attribute digest  a_ij = h(db | table | attr | key | value)
///   (2) tuple digest      t_j  = g(a_j1, ..., a_jm)
///   (3) node digest       D_N  = g(d_1, ..., d_p)   over tuple digests
///                                (leaf) or child node digests (internal)
///
/// where h is a standard one-way hash (SHA-256 by default) and g the
/// commutative hash G^(d1·...·dm) mod 2^k. Binding db/table/attr names and
/// the tuple key into every attribute digest defeats substitution of
/// authentic values across rows, columns or tables.
class DigestSchema {
 public:
  DigestSchema(std::string db_name, std::string table_name, Schema schema,
               HashAlgorithm algo = HashAlgorithm::kSha256,
               int modulus_bits = 128)
      : db_name_(std::move(db_name)),
        table_name_(std::move(table_name)),
        schema_(std::move(schema)),
        algo_(algo),
        ghash_(modulus_bits) {}

  /// Routes Cost_h / Cost_k accounting to `counters` (may be nullptr).
  void set_counters(CryptoCounters* counters) {
    counters_ = counters;
    ghash_.set_counters(counters);
  }

  /// Formula (1). `key` is the tuple's primary key, not the attribute value.
  Digest AttributeDigest(int64_t key, size_t col_idx, const Value& v) const;

  /// All m attribute digests of a tuple, in column order.
  std::vector<Digest> AttributeDigests(const Tuple& t) const;

  /// Formula (2): tuple digest from a full tuple.
  Digest TupleDigest(const Tuple& t) const;

  /// Formula (2) verifier-side: combine already-obtained attribute digests
  /// (computed ones for returned columns, recovered ones for projected-away
  /// columns) in any order.
  Digest CombineDigests(std::span<const Digest> digests) const {
    return ghash_.Combine(digests);
  }

  const CommutativeHash& ghash() const { return ghash_; }
  const Schema& schema() const { return schema_; }
  const std::string& db_name() const { return db_name_; }
  const std::string& table_name() const { return table_name_; }
  HashAlgorithm hash_algorithm() const { return algo_; }
  int modulus_bits() const { return ghash_.modulus_bits(); }

 private:
  std::string db_name_;
  std::string table_name_;
  Schema schema_;
  HashAlgorithm algo_;
  CommutativeHash ghash_;
  CryptoCounters* counters_ = nullptr;
};

/// Binding digest for a shard's root anchor when the shard shares its
/// digest-schema name with split siblings (lineage shards, DESIGN.md §10).
/// Incremental SplitShard hands both children the parent's digest-schema
/// name so every per-tuple and per-node signature transfers without
/// re-signing — which also means a node signature alone no longer proves
/// WHICH sibling's tree it came from. The central server therefore signs,
/// per shard, h(db | verify_name | lo | hi | root_digest), where
/// verify_name is the shard's own (unique) distribution name and [lo, hi]
/// its key range from the signed PartitionMap. Clients anchor lineage-
/// shard VOs at this binding instead of a raw node signature: a sibling's
/// tree (same digest domain, different range/name) can no longer stand in
/// for an overlapping shard or prove its ranges empty.
Digest ShardBindingDigest(HashAlgorithm algo, const std::string& db_name,
                          const std::string& verify_name, int64_t lo,
                          int64_t hi, const Digest& root_digest);

}  // namespace vbtree

#endif  // VBTREE_VBTREE_DIGEST_SCHEMA_H_
