#ifndef VBTREE_VBTREE_VERIFIER_H_
#define VBTREE_VBTREE_VERIFIER_H_

#include <span>
#include <vector>

#include "crypto/recovered_digest_cache.h"
#include "crypto/signer.h"
#include "query/predicate.h"
#include "vbtree/digest_schema.h"
#include "vbtree/verification_object.h"

namespace vbtree {

/// Outcome of recovering one batch-pool signature: computed once per
/// batch by the BatchVerifier and consumed positionally (by pool index)
/// by every VO that references the entry.
struct RecoveredSignature {
  Status status = Status::OK();
  Digest digest;
};

/// Client-side result authentication (Lemmas 1 and 2 of §3.3).
///
/// Given a query, its result rows, and the VO from an (untrusted) edge
/// server, the verifier
///  1. checks result sanity: keys strictly ascending and inside the query
///     range; any condition on a returned column holds;
///  2. recomputes the digest hierarchy: attribute digests for returned
///     values (formula (1)); recovered digests for filtered attributes
///     (D_P) and filtered tuples/branches (D_S); commutative combination
///     upward through the VO skeleton;
///  3. recovers s(D_N) with the public key and compares.
///
/// Any tampering with returned values, injected rows, or a reshuffled
/// mapping of rows to subtree positions changes the computed digest and
/// fails the comparison. (As in the paper, an edge server that silently
/// *omits* qualifying tuples by reclassifying them as gaps is not
/// detected — the threat model assumes servers do not maliciously drop
/// results; see DESIGN.md.)
///
/// Verification fast path (DESIGN.md §6): signature recovery — the
/// client's dominant cost — is layered so each Cost_s is paid at most
/// once per distinct signature:
///  1. a VO that arrived through a batch SignaturePool carries the pool
///     index of every signature; supply the batch's once-recovered
///     digests via set_recovered_pool and the verifier consumes them
///     positionally instead of calling Recover per reference;
///  2. a cross-batch RecoveredDigestCache (set_digest_cache) memoizes
///     byte-keyed recoveries for signatures not resolved by the pool;
///  3. set_known_top short-circuits the final s(D_N) recovery when the
///     caller already recovered the identical signature bytes (the
///     client's per-(table, replica_version) top memo).
/// All three are sound because p() is a deterministic function of the
/// signature bytes under one public key; none of them bypasses the
/// digest-equation comparison itself.
class Verifier {
 public:
  /// `digest_schema` must match the central server's (same db/table/
  /// column names, hash algorithm and modulus); it is distributed to
  /// clients together with the public key.
  Verifier(DigestSchema digest_schema, Recoverer* recoverer)
      : ds_(std::move(digest_schema)), recoverer_(recoverer) {}

  /// Routes Cost_h/Cost_k accounting, plus this verifier's digest-cache
  /// traffic (Cost_s accrues in the Recoverer).
  void set_counters(CryptoCounters* counters) {
    counters_ = counters;
    ds_.set_counters(counters);
  }

  /// Supplies the once-per-batch recovered digests of the signature pool
  /// the VO's *_ref fields index into. The span must stay alive for the
  /// duration of VerifySelect.
  void set_recovered_pool(std::span<const RecoveredSignature> pool) {
    pool_ = pool;
  }

  /// Supplies the cross-batch recovered-digest cache. `domain` is the
  /// signing-key version the signatures resolve under (entries from
  /// other key epochs never hit).
  void set_digest_cache(RecoveredDigestCache* cache, uint64_t domain) {
    cache_ = cache;
    cache_domain_ = domain;
  }

  /// Short-circuits the final signed-top recovery with an
  /// already-recovered digest for byte-identical signature bytes.
  void set_known_top(const Digest* top) { known_top_ = top; }

  /// Lineage-shard root anchoring (DESIGN.md §10): the shard shares its
  /// digest-schema name with split siblings, so its VO anchors at the
  /// central server's binding signature over ShardBindingDigest(db,
  /// verify_name, lo, hi, root_digest) instead of a raw node signature.
  struct TopBinding {
    std::string verify_name;  ///< the shard's own distribution name
    int64_t lo = 0;           ///< shard key range from the verified map
    int64_t hi = 0;
  };

  /// When set, the final comparison wraps the computed root digest with
  /// the binding preimage before comparing against the recovered top —
  /// so a sibling tree from the same digest domain (valid node
  /// signatures, wrong shard) can never authenticate. Caller-owned; must
  /// outlive VerifySelect.
  void set_top_binding(const TopBinding* binding) { binding_ = binding; }

  /// After a VerifySelect that resolved the signed top itself (known_top
  /// not used), the recovered digest — the caller's memo feed. Null
  /// otherwise.
  const Digest* recovered_top() const {
    return top_valid_ ? &recovered_top_ : nullptr;
  }

  /// Returns OK iff the result authenticates against the VO.
  Status VerifySelect(const SelectQuery& query,
                      const std::vector<ResultRow>& rows,
                      const VerificationObject& vo);

 private:
  /// Recovers the digest a signature decrypts to, cheapest source first:
  /// batch pool (by index), byte-keyed cache, then the Recoverer.
  Result<Digest> ResolveSig(const Signature& sig, uint32_t ref);

  Result<Digest> ComputeNodeDigest(const VONode& node,
                                   const std::vector<ResultRow>& rows,
                                   const SelectQuery& q,
                                   const std::vector<size_t>& filtered_cols,
                                   const VerificationObject& vo,
                                   size_t* cursor);

  DigestSchema ds_;
  Recoverer* recoverer_;
  CryptoCounters* counters_ = nullptr;
  std::span<const RecoveredSignature> pool_;
  RecoveredDigestCache* cache_ = nullptr;
  uint64_t cache_domain_ = 0;
  const Digest* known_top_ = nullptr;
  const TopBinding* binding_ = nullptr;
  Digest recovered_top_;
  bool top_valid_ = false;
};

}  // namespace vbtree

#endif  // VBTREE_VBTREE_VERIFIER_H_
