#ifndef VBTREE_VBTREE_VERIFIER_H_
#define VBTREE_VBTREE_VERIFIER_H_

#include <vector>

#include "crypto/signer.h"
#include "query/predicate.h"
#include "vbtree/digest_schema.h"
#include "vbtree/verification_object.h"

namespace vbtree {

/// Client-side result authentication (Lemmas 1 and 2 of §3.3).
///
/// Given a query, its result rows, and the VO from an (untrusted) edge
/// server, the verifier
///  1. checks result sanity: keys strictly ascending and inside the query
///     range; any condition on a returned column holds;
///  2. recomputes the digest hierarchy: attribute digests for returned
///     values (formula (1)); recovered digests for filtered attributes
///     (D_P) and filtered tuples/branches (D_S); commutative combination
///     upward through the VO skeleton;
///  3. recovers s(D_N) with the public key and compares.
///
/// Any tampering with returned values, injected rows, or a reshuffled
/// mapping of rows to subtree positions changes the computed digest and
/// fails the comparison. (As in the paper, an edge server that silently
/// *omits* qualifying tuples by reclassifying them as gaps is not
/// detected — the threat model assumes servers do not maliciously drop
/// results; see DESIGN.md.)
class Verifier {
 public:
  /// `digest_schema` must match the central server's (same db/table/
  /// column names, hash algorithm and modulus); it is distributed to
  /// clients together with the public key.
  Verifier(DigestSchema digest_schema, Recoverer* recoverer)
      : ds_(std::move(digest_schema)), recoverer_(recoverer) {}

  /// Routes Cost_h/Cost_k accounting (Cost_s accrues in the Recoverer).
  void set_counters(CryptoCounters* counters) { ds_.set_counters(counters); }

  /// Returns OK iff the result authenticates against the VO.
  Status VerifySelect(const SelectQuery& query,
                      const std::vector<ResultRow>& rows,
                      const VerificationObject& vo);

 private:
  Result<Digest> ComputeNodeDigest(const VONode& node,
                                   const std::vector<ResultRow>& rows,
                                   const SelectQuery& q,
                                   const std::vector<size_t>& filtered_cols,
                                   const VerificationObject& vo,
                                   size_t* cursor);

  DigestSchema ds_;
  Recoverer* recoverer_;
};

}  // namespace vbtree

#endif  // VBTREE_VBTREE_VERIFIER_H_
