#include "vbtree/verifier.h"

#include <algorithm>

namespace vbtree {

Result<Digest> Verifier::ResolveSig(const Signature& sig, uint32_t ref) {
  if (ref != kNoPoolRef && ref < pool_.size()) {
    // The deserializer materialized `sig` from pool entry `ref`, so the
    // once-per-batch recovery at that index is exactly p(sig). A VO that
    // lies about its refs can only point at a different pool entry, whose
    // digest then fails the digest-equation comparison — same outcome as
    // shipping the wrong signature inline.
    const RecoveredSignature& entry = pool_[ref];
    if (!entry.status.ok()) return entry.status;
    return entry.digest;
  }
  Digest d;
  if (cache_ != nullptr && cache_->Lookup(cache_domain_, sig, &d, counters_)) {
    return d;
  }
  VBT_ASSIGN_OR_RETURN(d, recoverer_->Recover(sig));
  if (cache_ != nullptr) cache_->Insert(cache_domain_, sig, d, counters_);
  return d;
}

Result<Digest> Verifier::ComputeNodeDigest(
    const VONode& node, const std::vector<ResultRow>& rows,
    const SelectQuery& q, const std::vector<size_t>& filtered_cols,
    const VerificationObject& vo, size_t* cursor) {
  std::vector<Digest> parts;

  if (node.is_leaf) {
    parts.reserve(node.result_count + node.filtered_tuple_sigs.size());
    for (uint32_t i = 0; i < node.result_count; ++i) {
      if (*cursor >= rows.size()) {
        return Status::VerificationFailure(
            "VO claims more result tuples than were returned");
      }
      size_t row_idx = (*cursor)++;
      const ResultRow& row = rows[row_idx];

      // Recompute the tuple digest (formula (2)) from returned values and
      // recovered projected-attribute digests.
      std::vector<Digest> attrs;
      attrs.reserve(ds_.schema().num_columns());
      const std::vector<size_t>& proj_cols = q.projection;
      if (proj_cols.empty()) {
        for (size_t c = 0; c < ds_.schema().num_columns(); ++c) {
          attrs.push_back(ds_.AttributeDigest(row.key, c, row.values[c]));
        }
      } else {
        for (size_t p = 0; p < proj_cols.size(); ++p) {
          attrs.push_back(
              ds_.AttributeDigest(row.key, proj_cols[p], row.values[p]));
        }
        for (size_t f = 0; f < filtered_cols.size(); ++f) {
          const size_t sig_idx = row_idx * filtered_cols.size() + f;
          const Signature& sig = vo.projected_attr_sigs[sig_idx];
          const uint32_t ref = sig_idx < vo.projected_attr_refs.size()
                                   ? vo.projected_attr_refs[sig_idx]
                                   : kNoPoolRef;
          VBT_ASSIGN_OR_RETURN(Digest d, ResolveSig(sig, ref));
          attrs.push_back(d);
        }
      }
      parts.push_back(ds_.CombineDigests(attrs));
    }
    for (size_t i = 0; i < node.filtered_tuple_sigs.size(); ++i) {
      const uint32_t ref = i < node.filtered_tuple_refs.size()
                               ? node.filtered_tuple_refs[i]
                               : kNoPoolRef;
      VBT_ASSIGN_OR_RETURN(Digest d,
                           ResolveSig(node.filtered_tuple_sigs[i], ref));
      parts.push_back(d);
    }
    return ds_.CombineDigests(parts);
  }

  parts.reserve(node.items.size());
  for (const VONode::Item& item : node.items) {
    if (item.is_covered()) {
      VBT_ASSIGN_OR_RETURN(
          Digest d,
          ComputeNodeDigest(*item.covered, rows, q, filtered_cols, vo, cursor));
      parts.push_back(d);
    } else {
      VBT_ASSIGN_OR_RETURN(Digest d, ResolveSig(item.opaque, item.opaque_ref));
      parts.push_back(d);
    }
  }
  return ds_.CombineDigests(parts);
}

Status Verifier::VerifySelect(const SelectQuery& query,
                              const std::vector<ResultRow>& rows,
                              const VerificationObject& vo) {
  top_valid_ = false;
  SelectQuery q = query;
  q.NormalizeProjection();
  const size_t m = ds_.schema().num_columns();
  const std::vector<size_t> filtered_cols = q.FilteredColumns(m);
  const size_t row_width = q.projection.empty() ? m : q.projection.size();

  if (vo.skeleton == nullptr) {
    return Status::VerificationFailure("VO has no skeleton");
  }
  if (vo.num_filtered_cols != filtered_cols.size()) {
    return Status::VerificationFailure(
        "VO filtered-column count does not match the query's projection");
  }
  if (vo.projected_attr_sigs.size() != rows.size() * filtered_cols.size()) {
    return Status::VerificationFailure(
        "VO carries the wrong number of projected-attribute digests");
  }

  // Result sanity: width, key extraction, ordering, range membership, and
  // conditions that are checkable client-side (on returned columns).
  int64_t prev_key = 0;
  bool have_prev = false;
  for (const ResultRow& row : rows) {
    if (row.values.size() != row_width) {
      return Status::VerificationFailure("result row has wrong arity");
    }
    // Column 0 is always retained by NormalizeProjection and is first.
    if (row.values[0].type() != TypeId::kInt64 ||
        row.values[0].AsInt() != row.key) {
      return Status::VerificationFailure("result row key mismatch");
    }
    if (!q.range.Contains(row.key)) {
      return Status::VerificationFailure("result key outside query range");
    }
    if (have_prev && prev_key >= row.key) {
      return Status::VerificationFailure("result keys not strictly ascending");
    }
    prev_key = row.key;
    have_prev = true;
    for (const ColumnCondition& cond : q.conditions) {
      // Locate the condition column among returned columns, if present.
      const Value* v = nullptr;
      if (q.projection.empty()) {
        v = &row.values[cond.col_idx];
      } else {
        auto it = std::find(q.projection.begin(), q.projection.end(),
                            cond.col_idx);
        if (it != q.projection.end()) {
          v = &row.values[it - q.projection.begin()];
        }
      }
      if (v != nullptr && !cond.Eval(*v)) {
        return Status::VerificationFailure(
            "result row violates a query condition");
      }
    }
  }

  // Recompute the enveloping subtree's digest bottom-up.
  size_t cursor = 0;
  VBT_ASSIGN_OR_RETURN(
      Digest computed,
      ComputeNodeDigest(*vo.skeleton, rows, q, filtered_cols, vo, &cursor));
  if (cursor != rows.size()) {
    return Status::VerificationFailure(
        "returned tuples not all accounted for by the VO");
  }

  // Recover s(D_N) and compare (Lemma 1 / Lemma 2 check). A caller-known
  // top digest (memoized recovery of byte-identical signature bytes)
  // skips the recovery but never the comparison.
  Digest expected;
  if (known_top_ != nullptr) {
    expected = *known_top_;
  } else {
    VBT_ASSIGN_OR_RETURN(expected,
                         ResolveSig(vo.signed_top, vo.signed_top_ref));
    recovered_top_ = expected;
    top_valid_ = true;
  }
  if (binding_ != nullptr) {
    // Lineage shard: the VO's envelope top is the shard's root, and the
    // signed anchor covers the binding preimage — wrap the computed root
    // digest the same way. A raw node signature (or a sibling shard's
    // binding, which names a different verify_name/range) recovers to
    // something that cannot equal this hash.
    computed = ShardBindingDigest(ds_.hash_algorithm(), ds_.db_name(),
                                  binding_->verify_name, binding_->lo,
                                  binding_->hi, computed);
  }
  if (!(computed == expected)) {
    return Status::VerificationFailure(
        "digest mismatch: query result failed authentication");
  }
  return Status::OK();
}

}  // namespace vbtree
