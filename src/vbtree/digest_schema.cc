#include "vbtree/digest_schema.h"

#include "common/serde.h"

namespace vbtree {

Digest DigestSchema::AttributeDigest(int64_t key, size_t col_idx,
                                     const Value& v) const {
  if (counters_ != nullptr) CryptoCounters::Tick(counters_->attr_hashes);
  // Length-prefixed fields make the preimage unambiguous (no separator
  // collisions between e.g. table and attribute names). The preimage
  // buffer is reused per thread: this runs once per returned attribute on
  // the client verification hot path, where a fresh heap allocation per
  // digest is measurable.
  thread_local ByteWriter w(64);
  w.Clear();
  w.PutString(db_name_);
  w.PutString(table_name_);
  w.PutString(schema_.column(col_idx).name);
  w.PutI64(key);
  v.Serialize(&w);
  return HashToDigest(algo_, Slice(w.buffer()));
}

std::vector<Digest> DigestSchema::AttributeDigests(const Tuple& t) const {
  std::vector<Digest> out;
  out.reserve(t.num_values());
  int64_t key = t.key();
  for (size_t c = 0; c < t.num_values(); ++c) {
    out.push_back(AttributeDigest(key, c, t.value(c)));
  }
  return out;
}

Digest DigestSchema::TupleDigest(const Tuple& t) const {
  std::vector<Digest> attrs = AttributeDigests(t);
  return ghash_.Combine(attrs);
}

Digest ShardBindingDigest(HashAlgorithm algo, const std::string& db_name,
                          const std::string& verify_name, int64_t lo,
                          int64_t hi, const Digest& root_digest) {
  // Length-prefixed fields, same anti-collision discipline as
  // AttributeDigest. Deliberately NOT versioned: an old root digest under
  // a valid binding is mere staleness, which replica-version watermarks
  // already police; putting the tree version in the preimage would force
  // a re-sign on version bumps that leave the root digest unchanged
  // (no-op deletes).
  ByteWriter w(64);
  w.PutString(db_name);
  w.PutString(verify_name);
  w.PutI64(lo);
  w.PutI64(hi);
  w.PutBytes(root_digest.AsSlice());
  return HashToDigest(algo, Slice(w.buffer()));
}

}  // namespace vbtree
