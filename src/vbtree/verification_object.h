#ifndef VBTREE_VBTREE_VERIFICATION_OBJECT_H_
#define VBTREE_VBTREE_VERIFICATION_OBJECT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "crypto/signer.h"

namespace vbtree {

/// One node of the enveloping subtree's skeleton.
///
/// The paper describes the VO as "simply a set of signed digests" thanks
/// to the commutative hash (§3.3). Commutativity indeed makes the order of
/// digests *within* a node irrelevant (a property our tests exercise by
/// shuffling), but the verifier must still know which digests combine at
/// which node, because node digests nest: D_parent = g(D_c1, ..., D_cp).
/// The skeleton encodes exactly that grouping, at a cost of a few varint
/// headers per subtree node — preserving the paper's size claims (linear
/// in the result, independent of table size).
struct VONode {
  bool is_leaf = true;

  // Leaf payload: how many of the (key-ordered) result rows fall in this
  // leaf, plus the signed tuple digests of leaf entries that are *not*
  // part of the result: range-boundary tuples and non-key-predicate gaps.
  // This is the D_S contribution of Fig. 5/6.
  uint32_t result_count = 0;
  std::vector<Signature> filtered_tuple_sigs;

  // Internal payload: one item per child, in tree order. A child whose key
  // span overlaps the result recurses (`covered`); any other branch is
  // represented opaquely by its signed node digest (also D_S).
  struct Item {
    std::unique_ptr<VONode> covered;  // set for overlapping children
    Signature opaque;                 // set for non-overlapping branches

    bool is_covered() const { return covered != nullptr; }
  };
  std::vector<Item> items;
};

/// The verification object returned by an edge server with a query result
/// (§3.3): the signed digest of the enveloping subtree's top node, the
/// skeleton with D_S (signed digests for filtered tuples/branches), and
/// D_P (signed digests for projected-away attributes).
struct VerificationObject {
  /// Version of the signing key (§3.4 update propagation); the client
  /// checks it against the key directory's validity windows.
  uint32_t key_version = 1;

  /// s(D_N) for the top node N of the enveloping subtree.
  Signature signed_top;

  std::unique_ptr<VONode> skeleton;

  /// D_P, row-major: for each result row (in order), one signature per
  /// filtered column. Within a row the column order is irrelevant
  /// (commutativity); the per-row grouping is required to recompute each
  /// tuple digest.
  uint32_t num_filtered_cols = 0;
  std::vector<Signature> projected_attr_sigs;

  /// Total number of signed digests carried (|D_S| + |D_P| + 1); the unit
  /// the paper's communication formulas count.
  size_t DigestCount() const;

  /// Exact wire size in bytes.
  size_t SerializedSize() const;

  void Serialize(ByteWriter* w) const;
  static Result<VerificationObject> Deserialize(ByteReader* r);

  /// Deep copy (VOs are move-only by default due to unique_ptr).
  VerificationObject Clone() const;
};

}  // namespace vbtree

#endif  // VBTREE_VBTREE_VERIFICATION_OBJECT_H_
