#ifndef VBTREE_VBTREE_VERIFICATION_OBJECT_H_
#define VBTREE_VBTREE_VERIFICATION_OBJECT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "crypto/signer.h"

namespace vbtree {

/// Batch-level signature interning table (wire format v2).
///
/// Overlapping query envelopes inside a coalesced batch re-ship the same
/// boundary-tuple and opaque-branch signatures once per query; with a
/// 16-byte SimSigner that duplication dominates the VO wire cost. The
/// pool stores each distinct signature once per batch and lets every VO
/// reference it by a varint index — restoring the paper's "VO is simply
/// a set of signed digests" size claim at batch granularity.
///
/// Build side: `Intern` deduplicates and returns the entry index.
/// Read side: `Deserialize` then `Get`, which bounds-checks so a
/// malicious edge cannot send indices past the table.
class SignaturePool {
 public:
  /// Returns the pool index of `sig`, inserting it on first sight.
  uint32_t Intern(const Signature& sig);

  /// Entry at `idx`, or nullptr when idx is out of range.
  const Signature* Get(uint64_t idx) const {
    return idx < entries_.size() ? &entries_[idx] : nullptr;
  }

  size_t size() const { return entries_.size(); }

  /// Sum of entry byte lengths (excludes framing); telemetry.
  size_t entry_bytes() const { return entry_bytes_; }

  void Serialize(ByteWriter* w) const;
  static Result<SignaturePool> Deserialize(ByteReader* r);

 private:
  std::vector<Signature> entries_;
  std::map<Signature, uint32_t> index_;  // build side only
  size_t entry_bytes_ = 0;
};

/// Sentinel for "this signature did not come from a batch pool" in the
/// pool-reference fields below.
inline constexpr uint32_t kNoPoolRef = 0xFFFFFFFFu;

/// One node of the enveloping subtree's skeleton.
///
/// The paper describes the VO as "simply a set of signed digests" thanks
/// to the commutative hash (§3.3). Commutativity indeed makes the order of
/// digests *within* a node irrelevant (a property our tests exercise by
/// shuffling), but the verifier must still know which digests combine at
/// which node, because node digests nest: D_parent = g(D_c1, ..., D_cp).
/// The skeleton encodes exactly that grouping, at a cost of a few varint
/// headers per subtree node — preserving the paper's size claims (linear
/// in the result, independent of table size).
struct VONode {
  bool is_leaf = true;

  // Leaf payload: how many of the (key-ordered) result rows fall in this
  // leaf, plus the signed tuple digests of leaf entries that are *not*
  // part of the result: range-boundary tuples and non-key-predicate gaps.
  // This is the D_S contribution of Fig. 5/6.
  uint32_t result_count = 0;
  std::vector<Signature> filtered_tuple_sigs;
  /// Pool indices the sigs above were materialized from (parallel to
  /// filtered_tuple_sigs; filled by DeserializePooled, empty otherwise).
  /// Pure client-side bookkeeping for the once-per-pool verification fast
  /// path — never serialized, and each entry is kNoPoolRef when unknown.
  std::vector<uint32_t> filtered_tuple_refs;

  // Internal payload: one item per child, in tree order. A child whose key
  // span overlaps the result recurses (`covered`); any other branch is
  // represented opaquely by its signed node digest (also D_S).
  struct Item {
    std::unique_ptr<VONode> covered;  // set for overlapping children
    Signature opaque;                 // set for non-overlapping branches
    /// Pool index `opaque` was materialized from (see filtered_tuple_refs).
    uint32_t opaque_ref = kNoPoolRef;

    bool is_covered() const { return covered != nullptr; }
  };
  std::vector<Item> items;
};

/// The verification object returned by an edge server with a query result
/// (§3.3): the signed digest of the enveloping subtree's top node, the
/// skeleton with D_S (signed digests for filtered tuples/branches), and
/// D_P (signed digests for projected-away attributes).
struct VerificationObject {
  /// Version of the signing key (§3.4 update propagation); the client
  /// checks it against the key directory's validity windows.
  uint32_t key_version = 1;

  /// s(D_N) for the top node N of the enveloping subtree.
  Signature signed_top;
  /// Pool index signed_top was materialized from (kNoPoolRef when the VO
  /// did not arrive through a batch pool).
  uint32_t signed_top_ref = kNoPoolRef;

  std::unique_ptr<VONode> skeleton;

  /// D_P, row-major: for each result row (in order), one signature per
  /// filtered column. Within a row the column order is irrelevant
  /// (commutativity); the per-row grouping is required to recompute each
  /// tuple digest.
  uint32_t num_filtered_cols = 0;
  std::vector<Signature> projected_attr_sigs;
  /// Pool indices for projected_attr_sigs (parallel when pooled, empty
  /// otherwise; see filtered_tuple_refs).
  std::vector<uint32_t> projected_attr_refs;

  /// Total number of signed digests carried (|D_S| + |D_P| + 1); the unit
  /// the paper's communication formulas count.
  size_t DigestCount() const;

  /// Exact wire size in bytes of the self-contained (v1) encoding.
  size_t SerializedSize() const;

  void Serialize(ByteWriter* w) const;
  static Result<VerificationObject> Deserialize(ByteReader* r);

  /// Pool-referencing encoding (wire v2): identical structure, but every
  /// signature is written as a varint index into `pool` (interned on the
  /// fly). The pool must be serialized ahead of the VOs in the enclosing
  /// message so a one-pass reader can resolve the indices.
  void SerializePooled(ByteWriter* w, SignaturePool* pool) const;

  /// Decodes a pool-referencing VO, materializing each referenced
  /// signature as a copy so downstream verification is layout-agnostic.
  /// An index past the pool is kCorruption, never a crash.
  static Result<VerificationObject> DeserializePooled(
      ByteReader* r, const SignaturePool& pool);

  /// Deep copy (VOs are move-only by default due to unique_ptr).
  VerificationObject Clone() const;
};

}  // namespace vbtree

#endif  // VBTREE_VBTREE_VERIFICATION_OBJECT_H_
