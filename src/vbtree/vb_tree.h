#ifndef VBTREE_VBTREE_VB_TREE_H_
#define VBTREE_VBTREE_VB_TREE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "btree/bplus_tree.h"
#include "catalog/tuple.h"
#include "common/olc.h"
#include "common/result.h"
#include "common/serde.h"
#include "crypto/signer.h"
#include "query/predicate.h"
#include "txn/lock_manager.h"
#include "vbtree/digest_schema.h"
#include "vbtree/verification_object.h"

namespace vbtree {

/// How the central server maintains node digests under updates. All three
/// strategies produce bit-identical digests (property-tested); they differ
/// only in server-side cost. Clients always verify with the chained
/// procedure of §3.3.
enum class DigestUpdateStrategy {
  /// Recombine changed nodes with the chained hash — one modular
  /// exponentiation per child. The literal reading of §3.4's recompute.
  kRecomputeChained,
  /// Recombine via the exponent product — one multiplication per child
  /// plus a single exponentiation.
  kRecomputeProduct,
  /// Maintain each node's exponent product and patch it in O(1) with a
  /// modular inverse when one child digest changes. This restores the
  /// paper's O(1)-per-node insert claim, which is unsound as stated for
  /// nested digests (see DESIGN.md): d_old is invertible mod 2^k because
  /// every combined digest is an odd power of G.
  kIncremental,
};

/// Construction parameters for a VB-tree.
struct VBTreeOptions {
  BTreeConfig config{};
  HashAlgorithm hash_algo = HashAlgorithm::kSha256;
  /// k in the commutative-hash modulus n = 2^k.
  int modulus_bits = 128;
  /// Version of the private key used to sign digests (§3.4).
  uint32_t key_version = 1;
  DigestUpdateStrategy update_strategy = DigestUpdateStrategy::kRecomputeChained;
};

/// Execution statistics for one query, used by the benchmark harness.
struct VBQueryStats {
  /// Height of the enveloping subtree (paper formula (8)).
  int subtree_height = 0;
  /// Nodes of the enveloping subtree the edge server touched.
  size_t nodes_visited = 0;
  /// Optimistic-read restarts this query needed (0 on a quiesced tree).
  uint64_t olc_restarts = 0;
};

/// Cross-query statistics for one batched execution (ExecuteSelectBatch):
/// how much tree/store work the batch shared compared to running its
/// queries serially.
struct VBBatchStats {
  /// Total VO-skeleton nodes visited across the batch.
  size_t nodes_visited = 0;
  /// Tuple fetches that reached the replica store (including fetches of
  /// attempts later discarded by an optimistic restart).
  size_t tuple_fetches = 0;
  /// Tuple fetches served from the batch-scoped memo (overlapping query
  /// envelopes share each tuple read + deserialization).
  size_t shared_fetch_hits = 0;
  /// Optimistic-read restarts across the batch (version bumps / locked
  /// nodes observed mid-traversal, plus test-injected restarts).
  uint64_t olc_restarts = 0;
  /// Microseconds spent yielding between restarts or blocking on the
  /// pessimistic fallback latch — the contention the latch-free path is
  /// designed to avoid (0 on a quiesced tree).
  uint64_t latch_wait_us = 0;
  /// The single tree version every answer in the batch reflects.
  uint64_t read_version = 0;
};

/// A query answer as produced by an edge server: result rows plus the VO.
struct QueryOutput {
  /// Per-query outcome inside a batch: validation or execution failures
  /// of ONE query no longer poison its batch siblings — the failed slot
  /// carries its status here (rows/vo empty) while the rest authenticate
  /// normally.
  Status status = Status::OK();
  std::vector<ResultRow> rows;
  VerificationObject vo;
  VBQueryStats stats;
  /// Tree version this answer's validated read reflects (the replica
  /// version an edge stamps on the response).
  uint64_t read_version = 0;

  /// Exact serialized size of the result rows (excludes the VO).
  size_t ResultBytes() const {
    size_t n = 0;
    for (const ResultRow& r : rows) n += r.SerializedSize();
    return n;
  }
};

/// The verifiable B-tree (§3.2): a B+-tree over the primary key where
///  * each leaf entry stores the signed tuple digest s(t_j) and the signed
///    attribute digests s(a_j1..a_jm) of its tuple,
///  * every node carries a signed node digest derived from its children
///    with the commutative hash, and
///  * the root digest is signed in the tree metadata.
///
/// The *central server* constructs VB-trees (it holds the Signer) and
/// applies updates; *edge servers* hold deserialized replicas (Signer
/// absent) and answer queries by building verification objects.
///
/// Concurrency (optimistic lock coupling): every node carries an atomic
/// version word (lock bit + counter) and an immutable content snapshot.
/// Readers traverse latch-free, recording the word of every node they
/// read, and validate the whole set after the traversal — a bump or lock
/// bit means a writer overlapped and the read restarts from the root
/// (escalating to a brief shared acquisition of the writer mutex after
/// repeated restarts). Writers — serialized by an internal exclusive
/// mutex — clone-on-write the nodes they touch, publish new snapshots,
/// and release each touched word with a version bump; replaced snapshots
/// are reclaimed epoch-based so in-flight readers never dereference
/// freed memory. A validated read therefore saw one consistent signed
/// tree state and is labeled with its exact version. On top of that,
/// when a LockManager and a txn id are supplied, operations follow
/// §3.4's digest-locking protocol (queries S-lock their enveloping
/// subtree, inserts X-lock the root-to-leaf path, deletes X-lock the
/// affected subtree), with locks held until the caller releases the
/// transaction.
class VBTree {
 public:
  /// Fetches the tuple behind a leaf-entry Rid; supplied by the edge
  /// server (its table-heap replica — possibly tampered with, which the
  /// client-side Verifier will expose).
  using TupleFetcher = std::function<Result<Tuple>(const Rid&)>;

  VBTree(DigestSchema digest_schema, VBTreeOptions opts, Signer* signer,
         LockManager* lock_manager = nullptr);
  ~VBTree();

  VBTree(const VBTree&) = delete;
  VBTree& operator=(const VBTree&) = delete;

  /// Builds a packed tree from rows sorted by strictly increasing key,
  /// computing and signing every digest (attribute, tuple, node, root).
  Status BulkLoad(std::span<const std::pair<Tuple, Rid>> rows);

  /// Inserts one tuple (§3.4 Insert): digests along the root-to-leaf path
  /// are folded incrementally via D ← D^{t} mod n and re-signed; node
  /// splits trigger full recomputation of the affected nodes.
  Status Insert(const Tuple& tuple, const Rid& rid, txn_id_t txn = 0);

  /// Deletes all keys in [lo, hi] (§3.4 Delete): X-locks the path, removes
  /// the entries, then recomputes digests bottom-up. Nodes are freed only
  /// when empty (the Johnson-Shasha policy the paper adopts). Returns the
  /// number of deleted tuples.
  Result<size_t> DeleteRange(int64_t lo, int64_t hi, txn_id_t txn = 0);

  /// Edge-server query execution (§3.3): selection on the key range,
  /// conjunctive non-key conditions (gaps), and projection. Returns the
  /// result rows in key order plus the verification object. Latch-free:
  /// the traversal is optimistic and restarts on writer interference.
  Result<QueryOutput> ExecuteSelect(const SelectQuery& query,
                                    const TupleFetcher& fetch,
                                    txn_id_t txn = 0) const;

  /// Batched edge-server execution: every query traverses latch-free and
  /// the batch converges on ONE validated tree version (stragglers whose
  /// read sets a writer touched re-execute; after bounded passes the
  /// batch finishes under a brief shared acquisition of the writer
  /// mutex) — so the coalesced response still carries a single replica
  /// version, exactly as under the old batch-wide latch. Work is shared
  /// across queries: tuple fetches are memoized batch-wide (entries
  /// commit to the memo only from validated attempts, so a restarted
  /// read can never leak a stale tuple to its siblings). Outputs are
  /// positional (outs[i] answers queries[i], with its own VO). Per-query
  /// validation or execution failures are carried in outs[i].status
  /// instead of failing the batch — one bad predicate no longer poisons
  /// N−1 good answers; the outer Result is reserved for tree-level
  /// errors. Does not take §3.4 digest locks: edge replicas run without
  /// a LockManager.
  Result<std::vector<QueryOutput>> ExecuteSelectBatch(
      std::span<const SelectQuery> queries, const TupleFetcher& fetch,
      VBBatchStats* batch_stats = nullptr) const;

  Digest root_digest() const;
  Signature root_signature() const;

  // --- shard placement binding (lineage shards, DESIGN.md §10) ----------
  //
  // An incremental shard split (CloneRange) hands the child the parent's
  // digest-schema name, so all per-tuple/per-node signatures transfer
  // without re-signing. The child then carries a *placement*: its own
  // distribution name and key range, plus a signed binding digest
  // ShardBindingDigest(db, verify_name, lo, hi, root_digest) stored with
  // the root snapshot. Trees with a placement anchor every VO at the
  // root's binding signature instead of the envelope top's node
  // signature (FindEnvelopeTop), and the binding is refreshed —
  // deterministically, riding the same signature log / replay feed as
  // node re-signs — whenever a committed write changes the root digest.

  struct ShardPlacement {
    std::string verify_name;  ///< the shard's own distribution name
    int64_t lo = 0;           ///< inclusive key range from the PartitionMap
    int64_t hi = 0;
  };

  /// Installs a placement and signs the current root's binding. Central
  /// side, pre-publication only (no concurrent readers yet): CloneRange
  /// calls it on the freshly trimmed child, tests may call it directly
  /// after BulkLoad.
  Status BindPlacement(std::string verify_name, int64_t lo, int64_t hi);

  bool has_placement() const {
    return placement_.load(std::memory_order_acquire) != nullptr;
  }
  /// Null when the tree has no placement. The pointee is immutable.
  const ShardPlacement* placement() const {
    return placement_.load(std::memory_order_acquire);
  }
  /// Current root binding signature (empty when no placement).
  Signature binding_signature() const;

  /// Deep-copies this tree — shells, snapshots, digests, signatures and
  /// cached exponents, with every leaf Rid passed through `remap` — then
  /// trims the copy to [lo, hi] with two boundary range-deletes and binds
  /// `verify_name` over the result. Because digest preimages never
  /// mention Rids, the remapped copy's signatures stay valid verbatim;
  /// only the two root-to-boundary paths (plus the binding) are re-signed
  /// — O(height), not O(rows), the whole point of incremental SplitShard.
  /// The returned tree starts at version 0 with this tree's key version.
  /// Caller must quiesce writers on this tree (the copy holds writer_mu_
  /// shared, but a sound split wants a drained DML queue anyway).
  using RidRemap = std::function<Rid(const Rid&)>;
  Result<std::unique_ptr<VBTree>> CloneRange(std::string verify_name,
                                             int64_t lo, int64_t hi,
                                             const RidRemap& remap) const;

  /// Signer invocations this tree has made (attribute/tuple/node/binding
  /// signatures), monotone. The split-cost gate: after CloneRange the
  /// child's count is O(height), and sign_calls_per_insert in the bench
  /// derives from deltas of this counter.
  uint64_t sign_calls() const {
    return sign_calls_.load(std::memory_order_relaxed);
  }

  uint32_t key_version() const {
    // Atomic shadow of opts_.key_version: the latch-free query path stamps
    // it into every VO while ResignAll (exclusive writer) may be rotating.
    return key_version_.load(std::memory_order_acquire);
  }

  /// Monotone replica version: the number of mutations (inserts, range
  /// deletes, re-signs) applied since bulk load. Carried through
  /// serialization, so an edge replica reports exactly the central
  /// version its tree reflects; clients compare versions across edges to
  /// detect stale replicas (§3.4 delayed update propagation).
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }
  const DigestSchema& digest_schema() const { return ds_; }
  const VBTreeOptions& options() const { return opts_; }

  size_t size() const {
    return static_cast<size_t>(size_.load(std::memory_order_acquire));
  }
  int height() const;
  uint64_t node_count() const;

  /// Test hook for the OLC stress suite: the next `n` optimistic read
  /// attempts are forcibly failed (counted as restarts) before
  /// validation, as if a writer had interfered — proving the restart
  /// path re-executes to the same verified answers and that every
  /// restart is accounted.
  void InjectRestartsForTest(int64_t n) {
    inject_restarts_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Test hook for the batch label-convergence loop: called at the top
  /// of every convergence pass with (pass, /*pre_fallback_lock=*/false),
  /// and again with (pass, true) inside the final pass after the
  /// lock-free stale scan but BEFORE the fallback writer_mu_ hold is
  /// acquired. The second point is exactly the window where a writer
  /// commit used to slip a slot past re-validation; a hook that mutates
  /// the tree there deterministically reproduces that interleaving. Not
  /// thread-safe against concurrent batches — install before use.
  void SetBatchLabelHookForTest(std::function<void(int, bool)> hook) {
    batch_label_hook_ = std::move(hook);
  }

  /// Recomputes every digest bottom-up and compares with the stored ones;
  /// kCorruption on any mismatch. Test/diagnostic hook.
  Status CheckDigestConsistency() const;

  /// Edge-side self-audit: recovers every node signature with the public
  /// key and checks it matches the stored digest, and that the digest
  /// hierarchy is internally consistent. Lets an edge server detect local
  /// corruption (disk faults, partial tampering) proactively rather than
  /// through failing client queries. Returns the number of nodes audited;
  /// kVerificationFailure names the first mismatching node.
  Result<size_t> AuditSignatures(Recoverer* recoverer) const;

  /// Structural B+-tree invariants (ordering, separator bounds, uniform
  /// leaf depth).
  Status CheckStructure() const;

  /// All keys in order (test hook).
  std::vector<int64_t> AllKeys() const;

  /// Keys in [lo, hi], in order (used e.g. for join-view maintenance on
  /// range deletes).
  std::vector<int64_t> KeysInRange(int64_t lo, int64_t hi) const;

  /// Serializes the complete tree (metadata + all nodes with digests and
  /// signatures) for distribution to edge servers.
  void SerializeTo(ByteWriter* w) const;

  /// Reconstructs a tree from SerializeTo output. `signer` may be null
  /// (edge servers cannot sign; Insert/DeleteRange then fail).
  static Result<std::unique_ptr<VBTree>> Deserialize(
      ByteReader* r, Signer* signer = nullptr,
      LockManager* lock_manager = nullptr);

  /// Routes Cost_h/Cost_k accounting for digest computation.
  void set_counters(CryptoCounters* counters) {
    counters_ = counters;
    ds_.set_counters(counters);
  }

  /// Key rotation (§3.4 delayed update propagation): recomputes and
  /// re-signs every digest in the tree under `new_signer`, stamping
  /// `new_key_version`. `fetch` supplies tuple values for recomputing
  /// attribute digests (the central server reads its own base table).
  /// When `rebind_table_name` is non-null the digest schema's table name
  /// is swapped to it first and any placement is cleared — how RotateKey
  /// retires a lineage shard: the O(rows) re-sign it must pay anyway
  /// re-homes every signature under the shard's own name, so the root
  /// binding (and its VO-anchoring cost) is no longer needed.
  Status ResignAll(Signer* new_signer, uint32_t new_key_version,
                   const TupleFetcher& fetch,
                   const std::string* rebind_table_name = nullptr);

  // --- delta propagation (§3.4 "propagate the changes periodically") ----
  //
  // Instead of re-shipping full snapshots after every update, the central
  // server can ship an op log. Replay is possible on a signer-less edge
  // replica because (a) unsigned digests are public — the edge recomputes
  // them itself — and (b) the structural algorithms are deterministic, so
  // the central server's signatures, recorded in ResignNode order, splice
  // back in exactly.

  /// The per-tuple signature material of formula (1)/(2), computed and
  /// signed by the central server and shipped inside insert ops.
  struct SignedEntryMaterial {
    Signature tuple_sig;
    std::vector<Signature> attr_sigs;
  };

  /// Signs the attribute and tuple digests of `tuple` (central only).
  /// Deterministic signature schemes (AES-based SimSigner, PKCS#1 v1.5
  /// RSA) return the same bytes the subsequent Insert stores.
  Result<SignedEntryMaterial> MakeEntryMaterial(const Tuple& tuple);

  /// Directs a copy of every signature produced by node re-signing into
  /// `log` (in deterministic order); pass nullptr to stop recording.
  void set_signature_log(std::vector<Signature>* log) {
    signature_log_ = log;
  }

  /// Edge-side replay of one insert: applies the identical structural
  /// algorithm, recomputes unsigned digests locally, and consumes node
  /// signatures from `sig_feed` in the order the central server recorded
  /// them. Fails with kCorruption if the feed is too short or not fully
  /// consumed.
  Status ReplayInsert(const Tuple& tuple, const Rid& rid,
                      const SignedEntryMaterial& material,
                      std::deque<Signature>* sig_feed);

  /// Edge-side replay of one range delete.
  Status ReplayDeleteRange(int64_t lo, int64_t hi,
                           std::deque<Signature>* sig_feed);

 private:
  struct LeafEntry;
  struct NodeContent;
  struct Leaf;      // leaf content snapshot
  struct Internal;  // internal content snapshot
  struct Node;      // versioned shell: word + content pointer
  struct ReadGuard;
  struct WriteCtx;

  struct SplitResult {
    int64_t separator;
    Node* right = nullptr;
  };
  struct InsertOutcome {
    bool recomputed = false;  // digests below changed non-incrementally
    std::optional<SplitResult> split;
  };

  // --- writer machinery (exclusive writer_mu_ held) ---
  void BeginWrite();
  /// Publishes every dirty snapshot, swaps the root if requested, bumps
  /// the tree version *before* releasing the per-node words (readers
  /// label answers by loading the version before validating, so the
  /// bump-then-unlock order makes labels exact), and retires replaced
  /// snapshots / unlinked shells through the epoch reclaimer.
  void CommitWrite(bool bump_version);
  /// Drops every dirty clone unpublished and releases the words without
  /// a bump: a failed write op leaves the tree exactly as it was.
  void AbortWrite();
  Leaf* MutableLeaf(Node* n);
  Internal* MutableInternal(Node* n);
  Node* NewLeafNode();
  Node* NewInternalNode();
  /// Marks a node unlinked: it stays locked forever (stray readers abort
  /// immediately) and shell + snapshot are retired at commit.
  void RemoveNode(Node* n);
  /// Writer-side read: the dirty clone if this op already touched the
  /// node, the published snapshot otherwise.
  const NodeContent* WriterRead(const Node* n) const;
  void LockWord(Node* n);

  /// Published-snapshot read for cold paths (serialization, audits,
  /// introspection) that run under at least a shared writer_mu_.
  static const NodeContent* ColdRead(const Node* n);

  // --- digest helpers (central server side; operate on dirty clones) ---
  Status ResignNode(NodeContent* content);
  Status RecomputeLeafDigest(Leaf* leaf);
  Status RecomputeInternalDigest(Internal* in);
  /// signer_->Sign plus the sign_calls_ tick — every signature this tree
  /// produces goes through here so the counter is exact.
  Result<Signature> SignCounted(const Digest& d);
  /// Re-signs the post-op root's binding when a placement is installed
  /// and this write changed the root digest (or swapped the root). Called
  /// between the op body and CommitWrite; consumes the replay feed /
  /// appends to the signature log exactly like ResignNode, so edge replay
  /// stays deterministic.
  Status RefreshBindingForCommit();
  /// CloneRange's recursive deep copy into `dst` (fresh shell ids,
  /// remapped Rids, binding fields cleared).
  Node* CloneSubtree(const Node* src, const RidRemap& remap,
                     VBTree* dst) const;

  // --- build helpers ---
  Result<LeafEntry> MakeLeafEntry(const Tuple& tuple, const Rid& rid);

  Result<InsertOutcome> InsertRec(Node* node, LeafEntry entry,
                                  const Digest& tuple_digest);
  Result<bool> DeleteRec(Node* node, int64_t lo, int64_t hi, size_t* removed);

  /// Shared body of Insert and ReplayInsert (writer lock + recursion +
  /// root split + size accounting).
  Status InsertEntry(LeafEntry entry);
  /// Shared body of DeleteRange and ReplayDeleteRange.
  Result<size_t> DeleteRangeLocked(int64_t lo, int64_t hi);

  // --- query helpers (latch-free; record into the ReadGuard) ---
  /// Static validation shared by ExecuteSelect and ExecuteSelectBatch;
  /// `q` must already be projection-normalized.
  Status ValidateSelect(const SelectQuery& q) const;
  /// One optimistic traversal attempt. A null return from the guard's
  /// Read (locked node observed) aborts the attempt silently — the
  /// caller restarts; a non-OK status is only trusted if the guard
  /// validates afterwards.
  Status ExecuteSelectAttempt(const SelectQuery& q, const TupleFetcher& fetch,
                              ReadGuard* g, QueryOutput* out) const;
  /// Restart loop around ExecuteSelectAttempt: re-reads the root each
  /// attempt, validates root pointer + read set against the loaded
  /// version label, yields between repeated restarts, and escalates to
  /// a shared writer_mu_ acquisition after kMaxOptimisticAttempts.
  /// `attempt_begin` / `attempt_commit` bracket the batch fetch-memo
  /// staging; `keep` (optional) receives the validated read set.
  Status RunSelectWithRestarts(const SelectQuery& q, const TupleFetcher& fetch,
                               bool under_fallback, QueryOutput* out,
                               ReadGuard* keep, uint64_t* restarts,
                               uint64_t* latch_wait_us,
                               const std::function<void()>& attempt_begin,
                               const std::function<void()>& attempt_commit)
      const;
  bool ConsumeInjectedRestart() const;
  /// Descends to the LCA of the range's two path ends. `g` may be null
  /// for cold callers holding writer_mu_.
  const Node* FindEnvelopeTop(const KeyRange& range, ReadGuard* g,
                              Signature* top_sig) const;
  Status BuildVONode(const Node* node, int depth, const SelectQuery& q,
                     const std::vector<size_t>& filtered_cols,
                     const TupleFetcher& fetch, ReadGuard* g, QueryOutput* out,
                     VONode* vo_node) const;

  // --- cold traversals (shared writer_mu_ held by caller) ---
  void CollectEnvelopeIds(const Node* node, const KeyRange& range,
                          std::vector<lock_id_t>* ids) const;
  void CollectPathIds(const Node* node, int64_t key,
                      std::vector<lock_id_t>* ids) const;
  void CollectRangePathIds(const Node* node, int64_t lo, int64_t hi,
                           std::vector<lock_id_t>* ids) const;

  Status ResignRec(Node* node, const TupleFetcher& fetch);
  Status CheckDigestRec(const Node* node) const;
  Status CheckStructureRec(const Node* node, std::optional<int64_t> lo,
                           std::optional<int64_t> hi, int depth,
                           int* leaf_depth) const;
  void SerializeNode(const Node* node, ByteWriter* w) const;
  static Result<Node*> DeserializeNode(ByteReader* r, const Schema& schema,
                                       int depth, uint64_t* max_id);

  uint64_t NextNodeId() { return next_node_id_++; }

  /// Rebuilds the cached exponent products after deserialization
  /// (pre-publication: the snapshots are not yet visible to readers).
  void InitExponents(Node* node);
  static void DeleteSubtree(Node* node);

  DigestSchema ds_;
  VBTreeOptions opts_;
  Signer* signer_;            // null on edge replicas
  LockManager* lock_manager_; // optional
  CryptoCounters* counters_ = nullptr;  // mirror of ds_'s sink (for rebinds)
  /// Shard placement (lineage shards). Set pre-publication (BindPlacement,
  /// Deserialize) or cleared under exclusive writer_mu_ (ResignAll with
  /// rename); atomic so latch-free readers can test it without racing the
  /// clear. The pointee is immutable; replaced values are retired through
  /// the epoch reclaimer.
  std::atomic<const ShardPlacement*> placement_{nullptr};
  /// Total signer invocations (see sign_calls()).
  mutable std::atomic<uint64_t> sign_calls_{0};
  /// Writers (inserts, deletes, replay, resign, bulk load) serialize
  /// here exclusively; pessimistic fallback reads and cold
  /// serialization/introspection paths take it shared. The optimistic
  /// hot read path never touches it.
  mutable std::shared_mutex writer_mu_;
  /// Shadows opts_.key_version for latch-free readers (see key_version()).
  std::atomic<uint32_t> key_version_{1};
  std::atomic<Node*> root_{nullptr};
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> version_{0};
  uint64_t next_node_id_ = 1;  // writer-only
  /// Retired shells/snapshots wait here until no reader can hold them.
  mutable olc::EpochReclaimer reclaimer_;
  /// Pending test-injected forced restarts (see InjectRestartsForTest).
  mutable std::atomic<int64_t> inject_restarts_{0};
  /// Test-only interleaving hook (see SetBatchLabelHookForTest).
  std::function<void(int, bool)> batch_label_hook_;
  /// Live only during one write op (under exclusive writer_mu_).
  std::unique_ptr<WriteCtx> wctx_;
  /// Central side: copies of signatures produced by ResignNode, in order.
  std::vector<Signature>* signature_log_ = nullptr;
  /// Edge side: feed of signatures consumed during replay.
  std::deque<Signature>* replay_feed_ = nullptr;
};

}  // namespace vbtree

#endif  // VBTREE_VBTREE_VB_TREE_H_
