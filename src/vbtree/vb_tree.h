#ifndef VBTREE_VBTREE_VB_TREE_H_
#define VBTREE_VBTREE_VB_TREE_H_

#include <deque>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "btree/bplus_tree.h"
#include "catalog/tuple.h"
#include "common/result.h"
#include "common/serde.h"
#include "crypto/signer.h"
#include "query/predicate.h"
#include "txn/lock_manager.h"
#include "vbtree/digest_schema.h"
#include "vbtree/verification_object.h"

namespace vbtree {

/// How the central server maintains node digests under updates. All three
/// strategies produce bit-identical digests (property-tested); they differ
/// only in server-side cost. Clients always verify with the chained
/// procedure of §3.3.
enum class DigestUpdateStrategy {
  /// Recombine changed nodes with the chained hash — one modular
  /// exponentiation per child. The literal reading of §3.4's recompute.
  kRecomputeChained,
  /// Recombine via the exponent product — one multiplication per child
  /// plus a single exponentiation.
  kRecomputeProduct,
  /// Maintain each node's exponent product and patch it in O(1) with a
  /// modular inverse when one child digest changes. This restores the
  /// paper's O(1)-per-node insert claim, which is unsound as stated for
  /// nested digests (see DESIGN.md): d_old is invertible mod 2^k because
  /// every combined digest is an odd power of G.
  kIncremental,
};

/// Construction parameters for a VB-tree.
struct VBTreeOptions {
  BTreeConfig config{};
  HashAlgorithm hash_algo = HashAlgorithm::kSha256;
  /// k in the commutative-hash modulus n = 2^k.
  int modulus_bits = 128;
  /// Version of the private key used to sign digests (§3.4).
  uint32_t key_version = 1;
  DigestUpdateStrategy update_strategy = DigestUpdateStrategy::kRecomputeChained;
};

/// Execution statistics for one query, used by the benchmark harness.
struct VBQueryStats {
  /// Height of the enveloping subtree (paper formula (8)).
  int subtree_height = 0;
  /// Nodes of the enveloping subtree the edge server touched.
  size_t nodes_visited = 0;
};

/// Cross-query statistics for one batched execution (ExecuteSelectBatch):
/// how much tree/store work the batch shared compared to running its
/// queries serially.
struct VBBatchStats {
  /// Total VO-skeleton nodes visited across the batch.
  size_t nodes_visited = 0;
  /// Tuple fetches that reached the replica store.
  size_t tuple_fetches = 0;
  /// Tuple fetches served from the batch-scoped memo (overlapping query
  /// envelopes share each tuple read + deserialization).
  size_t shared_fetch_hits = 0;
};

/// A query answer as produced by an edge server: result rows plus the VO.
struct QueryOutput {
  /// Per-query outcome inside a batch: validation or execution failures
  /// of ONE query no longer poison its batch siblings — the failed slot
  /// carries its status here (rows/vo empty) while the rest authenticate
  /// normally.
  Status status = Status::OK();
  std::vector<ResultRow> rows;
  VerificationObject vo;
  VBQueryStats stats;

  /// Exact serialized size of the result rows (excludes the VO).
  size_t ResultBytes() const {
    size_t n = 0;
    for (const ResultRow& r : rows) n += r.SerializedSize();
    return n;
  }
};

/// The verifiable B-tree (§3.2): a B+-tree over the primary key where
///  * each leaf entry stores the signed tuple digest s(t_j) and the signed
///    attribute digests s(a_j1..a_jm) of its tuple,
///  * every node carries a signed node digest derived from its children
///    with the commutative hash, and
///  * the root digest is signed in the tree metadata.
///
/// The *central server* constructs VB-trees (it holds the Signer) and
/// applies updates; *edge servers* hold deserialized replicas (Signer
/// absent) and answer queries by building verification objects.
///
/// Concurrency: structural reads/writes are protected by an internal
/// shared_mutex; on top of that, when a LockManager and a txn id are
/// supplied, operations follow §3.4's digest-locking protocol (queries
/// S-lock their enveloping subtree, inserts X-lock the root-to-leaf path,
/// deletes X-lock the affected subtree), with locks held until the caller
/// releases the transaction — so conflicting operations serialize and
/// disjoint ones proceed concurrently.
class VBTree {
 public:
  /// Fetches the tuple behind a leaf-entry Rid; supplied by the edge
  /// server (its table-heap replica — possibly tampered with, which the
  /// client-side Verifier will expose).
  using TupleFetcher = std::function<Result<Tuple>(const Rid&)>;

  VBTree(DigestSchema digest_schema, VBTreeOptions opts, Signer* signer,
         LockManager* lock_manager = nullptr);
  ~VBTree();

  VBTree(const VBTree&) = delete;
  VBTree& operator=(const VBTree&) = delete;

  /// Builds a packed tree from rows sorted by strictly increasing key,
  /// computing and signing every digest (attribute, tuple, node, root).
  Status BulkLoad(std::span<const std::pair<Tuple, Rid>> rows);

  /// Inserts one tuple (§3.4 Insert): digests along the root-to-leaf path
  /// are folded incrementally via D ← D^{t} mod n and re-signed; node
  /// splits trigger full recomputation of the affected nodes.
  Status Insert(const Tuple& tuple, const Rid& rid, txn_id_t txn = 0);

  /// Deletes all keys in [lo, hi] (§3.4 Delete): X-locks the path, removes
  /// the entries, then recomputes digests bottom-up. Nodes are freed only
  /// when empty (the Johnson-Shasha policy the paper adopts). Returns the
  /// number of deleted tuples.
  Result<size_t> DeleteRange(int64_t lo, int64_t hi, txn_id_t txn = 0);

  /// Edge-server query execution (§3.3): selection on the key range,
  /// conjunctive non-key conditions (gaps), and projection. Returns the
  /// result rows in key order plus the verification object.
  Result<QueryOutput> ExecuteSelect(const SelectQuery& query,
                                    const TupleFetcher& fetch,
                                    txn_id_t txn = 0) const;

  /// Batched edge-server execution: answers every query under ONE shared
  /// latch acquisition — the whole batch reads a single consistent tree
  /// state (one replica version) — and shares work across queries: tuple
  /// fetches are memoized batch-wide, so overlapping envelopes read each
  /// tuple from the replica store once. Outputs are positional (outs[i]
  /// answers queries[i], with its own VO). Per-query validation or
  /// execution failures are carried in outs[i].status instead of failing
  /// the batch — one bad predicate no longer poisons N−1 good answers;
  /// the outer Result is reserved for tree-level errors. Does not take
  /// §3.4 digest locks: edge replicas run without a LockManager; the
  /// latch alone serializes against snapshot installs and delta replay.
  Result<std::vector<QueryOutput>> ExecuteSelectBatch(
      std::span<const SelectQuery> queries, const TupleFetcher& fetch,
      VBBatchStats* batch_stats = nullptr) const;

  Digest root_digest() const;
  Signature root_signature() const;
  uint32_t key_version() const { return opts_.key_version; }

  /// Monotone replica version: the number of mutations (inserts, range
  /// deletes, re-signs) applied since bulk load. Carried through
  /// serialization, so an edge replica reports exactly the central
  /// version its tree reflects; clients compare versions across edges to
  /// detect stale replicas (§3.4 delayed update propagation).
  uint64_t version() const;
  const DigestSchema& digest_schema() const { return ds_; }
  const VBTreeOptions& options() const { return opts_; }

  size_t size() const;
  int height() const;
  uint64_t node_count() const;

  /// Recomputes every digest bottom-up and compares with the stored ones;
  /// kCorruption on any mismatch. Test/diagnostic hook.
  Status CheckDigestConsistency() const;

  /// Edge-side self-audit: recovers every node signature with the public
  /// key and checks it matches the stored digest, and that the digest
  /// hierarchy is internally consistent. Lets an edge server detect local
  /// corruption (disk faults, partial tampering) proactively rather than
  /// through failing client queries. Returns the number of nodes audited;
  /// kVerificationFailure names the first mismatching node.
  Result<size_t> AuditSignatures(Recoverer* recoverer) const;

  /// Structural B+-tree invariants (ordering, separator bounds, uniform
  /// leaf depth).
  Status CheckStructure() const;

  /// All keys in order (test hook).
  std::vector<int64_t> AllKeys() const;

  /// Keys in [lo, hi], in order (used e.g. for join-view maintenance on
  /// range deletes).
  std::vector<int64_t> KeysInRange(int64_t lo, int64_t hi) const;

  /// Serializes the complete tree (metadata + all nodes with digests and
  /// signatures) for distribution to edge servers.
  void SerializeTo(ByteWriter* w) const;

  /// Reconstructs a tree from SerializeTo output. `signer` may be null
  /// (edge servers cannot sign; Insert/DeleteRange then fail).
  static Result<std::unique_ptr<VBTree>> Deserialize(
      ByteReader* r, Signer* signer = nullptr,
      LockManager* lock_manager = nullptr);

  /// Routes Cost_h/Cost_k accounting for digest computation.
  void set_counters(CryptoCounters* counters) { ds_.set_counters(counters); }

  /// Key rotation (§3.4 delayed update propagation): recomputes and
  /// re-signs every digest in the tree under `new_signer`, stamping
  /// `new_key_version`. `fetch` supplies tuple values for recomputing
  /// attribute digests (the central server reads its own base table).
  Status ResignAll(Signer* new_signer, uint32_t new_key_version,
                   const TupleFetcher& fetch);

  // --- delta propagation (§3.4 "propagate the changes periodically") ----
  //
  // Instead of re-shipping full snapshots after every update, the central
  // server can ship an op log. Replay is possible on a signer-less edge
  // replica because (a) unsigned digests are public — the edge recomputes
  // them itself — and (b) the structural algorithms are deterministic, so
  // the central server's signatures, recorded in ResignNode order, splice
  // back in exactly.

  /// The per-tuple signature material of formula (1)/(2), computed and
  /// signed by the central server and shipped inside insert ops.
  struct SignedEntryMaterial {
    Signature tuple_sig;
    std::vector<Signature> attr_sigs;
  };

  /// Signs the attribute and tuple digests of `tuple` (central only).
  /// Deterministic signature schemes (AES-based SimSigner, PKCS#1 v1.5
  /// RSA) return the same bytes the subsequent Insert stores.
  Result<SignedEntryMaterial> MakeEntryMaterial(const Tuple& tuple);

  /// Directs a copy of every signature produced by node re-signing into
  /// `log` (in deterministic order); pass nullptr to stop recording.
  void set_signature_log(std::vector<Signature>* log) {
    signature_log_ = log;
  }

  /// Edge-side replay of one insert: applies the identical structural
  /// algorithm, recomputes unsigned digests locally, and consumes node
  /// signatures from `sig_feed` in the order the central server recorded
  /// them. Fails with kCorruption if the feed is too short or not fully
  /// consumed.
  Status ReplayInsert(const Tuple& tuple, const Rid& rid,
                      const SignedEntryMaterial& material,
                      std::deque<Signature>* sig_feed);

  /// Edge-side replay of one range delete.
  Status ReplayDeleteRange(int64_t lo, int64_t hi,
                           std::deque<Signature>* sig_feed);

 private:
  struct LeafEntry;
  struct Node;
  struct Leaf;
  struct Internal;

  struct SplitResult {
    int64_t separator;
    std::unique_ptr<Node> right;
  };
  struct InsertOutcome {
    bool recomputed = false;  // digests below changed non-incrementally
    std::optional<SplitResult> split;
  };

  // --- digest helpers (central server side) ---
  Status ResignNode(Node* node);
  Status RecomputeLeafDigest(Leaf* leaf);
  Status RecomputeInternalDigest(Internal* in);

  // --- build helpers ---
  Result<LeafEntry> MakeLeafEntry(const Tuple& tuple, const Rid& rid);

  Result<InsertOutcome> InsertRec(Node* node, LeafEntry entry,
                                  const Digest& tuple_digest);
  Result<bool> DeleteRec(Node* node, int64_t lo, int64_t hi, size_t* removed);

  /// Shared body of Insert and ReplayInsert (latch + recursion + root
  /// split + size accounting).
  Status InsertEntry(LeafEntry entry);
  /// Shared body of DeleteRange and ReplayDeleteRange.
  Result<size_t> DeleteRangeLocked(int64_t lo, int64_t hi);

  // --- query helpers ---
  /// Static validation shared by ExecuteSelect and ExecuteSelectBatch;
  /// `q` must already be projection-normalized.
  Status ValidateSelect(const SelectQuery& q) const;
  /// Body of one select under an already-held shared latch.
  Status ExecuteSelectLocked(const SelectQuery& q, const TupleFetcher& fetch,
                             int tree_height, QueryOutput* out) const;
  const Node* FindEnvelopeTop(const KeyRange& range, Signature* top_sig,
                              int* depth_of_top) const;
  void CollectEnvelopeIds(const Node* node, const KeyRange& range,
                          std::vector<lock_id_t>* ids) const;
  Status BuildVONode(const Node* node, const SelectQuery& q,
                     const std::vector<size_t>& filtered_cols,
                     const TupleFetcher& fetch, QueryOutput* out,
                     VONode* vo_node) const;
  void CollectPathIds(const Node* node, int64_t key,
                      std::vector<lock_id_t>* ids) const;
  void CollectRangePathIds(const Node* node, int64_t lo, int64_t hi,
                           std::vector<lock_id_t>* ids) const;

  Status ResignRec(Node* node, const TupleFetcher& fetch);
  Status CheckDigestRec(const Node* node) const;
  Status CheckStructureRec(const Node* node, std::optional<int64_t> lo,
                           std::optional<int64_t> hi, int depth,
                           int* leaf_depth) const;
  void SerializeNode(const Node* node, ByteWriter* w) const;
  static Result<std::unique_ptr<Node>> DeserializeNode(
      ByteReader* r, const Schema& schema, int depth,
      std::vector<Leaf*>* leaves, uint64_t* max_id);

  uint64_t NextNodeId() { return next_node_id_++; }

  /// Rebuilds the cached exponent products after deserialization.
  void InitExponents(Node* node);

  DigestSchema ds_;
  VBTreeOptions opts_;
  Signer* signer_;            // null on edge replicas
  LockManager* lock_manager_; // optional
  mutable std::shared_mutex latch_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  uint64_t version_ = 0;
  uint64_t next_node_id_ = 1;
  /// Central side: copies of signatures produced by ResignNode, in order.
  std::vector<Signature>* signature_log_ = nullptr;
  /// Edge side: feed of signatures consumed during replay.
  std::deque<Signature>* replay_feed_ = nullptr;
};

}  // namespace vbtree

#endif  // VBTREE_VBTREE_VB_TREE_H_
