#include "vbtree/verification_object.h"

namespace vbtree {

namespace {

size_t CountDigests(const VONode& n) {
  size_t count = n.filtered_tuple_sigs.size();
  for (const VONode::Item& item : n.items) {
    if (item.is_covered()) {
      count += CountDigests(*item.covered);
    } else {
      count += 1;
    }
  }
  return count;
}

/// Writes one signature either inline (pool == nullptr, v1) or as a
/// varint index into the batch pool (v2).
void WriteSig(const Signature& s, ByteWriter* w, SignaturePool* pool) {
  if (pool == nullptr) {
    w->PutLengthPrefixed(Slice(s.data(), s.size()));
  } else {
    w->PutVarint(pool->Intern(s));
  }
}

/// Reads one signature; when pooled, `*ref` additionally receives the
/// pool index the signature was materialized from (kNoPoolRef inline).
Result<Signature> ReadSig(ByteReader* r, const SignaturePool* pool,
                          uint32_t* ref) {
  if (ref != nullptr) *ref = kNoPoolRef;
  if (pool == nullptr) {
    VBT_ASSIGN_OR_RETURN(Slice s, r->ReadLengthPrefixed());
    return Signature(s.data(), s.data() + s.size());
  }
  VBT_ASSIGN_OR_RETURN(uint64_t idx, r->ReadVarint());
  const Signature* entry = pool->Get(idx);
  if (entry == nullptr) {
    return Status::Corruption("signature pool index " + std::to_string(idx) +
                              " out of range (pool has " +
                              std::to_string(pool->size()) + " entries)");
  }
  if (ref != nullptr) *ref = static_cast<uint32_t>(idx);
  return *entry;
}

void SerializeNode(const VONode& n, ByteWriter* w, SignaturePool* pool) {
  w->PutU8(n.is_leaf ? 1 : 0);
  if (n.is_leaf) {
    w->PutVarint(n.result_count);
    w->PutVarint(n.filtered_tuple_sigs.size());
    for (const Signature& s : n.filtered_tuple_sigs) {
      WriteSig(s, w, pool);
    }
  } else {
    w->PutVarint(n.items.size());
    for (const VONode::Item& item : n.items) {
      if (item.is_covered()) {
        w->PutU8(1);
        SerializeNode(*item.covered, w, pool);
      } else {
        w->PutU8(0);
        WriteSig(item.opaque, w, pool);
      }
    }
  }
}

Result<std::unique_ptr<VONode>> DeserializeNode(ByteReader* r, int depth,
                                                const SignaturePool* pool) {
  if (depth > 64) return Status::Corruption("VO skeleton too deep");
  auto n = std::make_unique<VONode>();
  VBT_ASSIGN_OR_RETURN(uint8_t is_leaf, r->ReadU8());
  n->is_leaf = is_leaf != 0;
  if (n->is_leaf) {
    VBT_ASSIGN_OR_RETURN(uint64_t rc, r->ReadVarint());
    n->result_count = static_cast<uint32_t>(rc);
    VBT_ASSIGN_OR_RETURN(uint64_t nf, r->ReadCount());
    n->filtered_tuple_sigs.reserve(nf);
    if (pool != nullptr) n->filtered_tuple_refs.reserve(nf);
    for (uint64_t i = 0; i < nf; ++i) {
      uint32_t ref = kNoPoolRef;
      VBT_ASSIGN_OR_RETURN(Signature s, ReadSig(r, pool, &ref));
      n->filtered_tuple_sigs.push_back(std::move(s));
      if (pool != nullptr) n->filtered_tuple_refs.push_back(ref);
    }
  } else {
    VBT_ASSIGN_OR_RETURN(uint64_t ni, r->ReadCount());
    n->items.reserve(ni);
    for (uint64_t i = 0; i < ni; ++i) {
      VBT_ASSIGN_OR_RETURN(uint8_t covered, r->ReadU8());
      VONode::Item item;
      if (covered != 0) {
        VBT_ASSIGN_OR_RETURN(item.covered, DeserializeNode(r, depth + 1, pool));
      } else {
        VBT_ASSIGN_OR_RETURN(item.opaque, ReadSig(r, pool, &item.opaque_ref));
      }
      n->items.push_back(std::move(item));
    }
  }
  return n;
}

std::unique_ptr<VONode> CloneNode(const VONode& n) {
  auto out = std::make_unique<VONode>();
  out->is_leaf = n.is_leaf;
  out->result_count = n.result_count;
  out->filtered_tuple_sigs = n.filtered_tuple_sigs;
  out->filtered_tuple_refs = n.filtered_tuple_refs;
  out->items.reserve(n.items.size());
  for (const VONode::Item& item : n.items) {
    VONode::Item copy;
    if (item.is_covered()) {
      copy.covered = CloneNode(*item.covered);
    } else {
      copy.opaque = item.opaque;
      copy.opaque_ref = item.opaque_ref;
    }
    out->items.push_back(std::move(copy));
  }
  return out;
}

void SerializeImpl(const VerificationObject& vo, ByteWriter* w,
                   SignaturePool* pool) {
  w->PutU32(vo.key_version);
  WriteSig(vo.signed_top, w, pool);
  w->PutU8(vo.skeleton != nullptr ? 1 : 0);
  if (vo.skeleton != nullptr) SerializeNode(*vo.skeleton, w, pool);
  w->PutVarint(vo.num_filtered_cols);
  w->PutVarint(vo.projected_attr_sigs.size());
  for (const Signature& s : vo.projected_attr_sigs) {
    WriteSig(s, w, pool);
  }
}

Result<VerificationObject> DeserializeImpl(ByteReader* r,
                                           const SignaturePool* pool) {
  VerificationObject vo;
  VBT_ASSIGN_OR_RETURN(vo.key_version, r->ReadU32());
  VBT_ASSIGN_OR_RETURN(vo.signed_top, ReadSig(r, pool, &vo.signed_top_ref));
  VBT_ASSIGN_OR_RETURN(uint8_t has_skeleton, r->ReadU8());
  if (has_skeleton != 0) {
    VBT_ASSIGN_OR_RETURN(vo.skeleton, DeserializeNode(r, 0, pool));
  }
  VBT_ASSIGN_OR_RETURN(uint64_t nfc, r->ReadVarint());
  vo.num_filtered_cols = static_cast<uint32_t>(nfc);
  VBT_ASSIGN_OR_RETURN(uint64_t np, r->ReadCount());
  vo.projected_attr_sigs.reserve(np);
  if (pool != nullptr) vo.projected_attr_refs.reserve(np);
  for (uint64_t i = 0; i < np; ++i) {
    uint32_t ref = kNoPoolRef;
    VBT_ASSIGN_OR_RETURN(Signature s, ReadSig(r, pool, &ref));
    vo.projected_attr_sigs.push_back(std::move(s));
    if (pool != nullptr) vo.projected_attr_refs.push_back(ref);
  }
  return vo;
}

}  // namespace

uint32_t SignaturePool::Intern(const Signature& sig) {
  auto [it, inserted] =
      index_.emplace(sig, static_cast<uint32_t>(entries_.size()));
  if (inserted) {
    entries_.push_back(sig);
    entry_bytes_ += sig.size();
  }
  return it->second;
}

void SignaturePool::Serialize(ByteWriter* w) const {
  w->PutVarint(entries_.size());
  for (const Signature& s : entries_) {
    w->PutLengthPrefixed(Slice(s.data(), s.size()));
  }
}

Result<SignaturePool> SignaturePool::Deserialize(ByteReader* r) {
  SignaturePool pool;
  VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
  pool.entries_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    VBT_ASSIGN_OR_RETURN(Slice s, r->ReadLengthPrefixed());
    pool.entries_.emplace_back(s.data(), s.data() + s.size());
    pool.entry_bytes_ += s.size();
  }
  return pool;
}

size_t VerificationObject::DigestCount() const {
  size_t count = 1 + projected_attr_sigs.size();  // signed_top + D_P
  if (skeleton != nullptr) count += CountDigests(*skeleton);
  return count;
}

void VerificationObject::Serialize(ByteWriter* w) const {
  SerializeImpl(*this, w, nullptr);
}

Result<VerificationObject> VerificationObject::Deserialize(ByteReader* r) {
  return DeserializeImpl(r, nullptr);
}

void VerificationObject::SerializePooled(ByteWriter* w,
                                         SignaturePool* pool) const {
  SerializeImpl(*this, w, pool);
}

Result<VerificationObject> VerificationObject::DeserializePooled(
    ByteReader* r, const SignaturePool& pool) {
  return DeserializeImpl(r, &pool);
}

size_t VerificationObject::SerializedSize() const {
  ByteWriter w;
  Serialize(&w);
  return w.size();
}

VerificationObject VerificationObject::Clone() const {
  VerificationObject out;
  out.key_version = key_version;
  out.signed_top = signed_top;
  out.signed_top_ref = signed_top_ref;
  if (skeleton != nullptr) out.skeleton = CloneNode(*skeleton);
  out.num_filtered_cols = num_filtered_cols;
  out.projected_attr_sigs = projected_attr_sigs;
  out.projected_attr_refs = projected_attr_refs;
  return out;
}

}  // namespace vbtree
