#include "vbtree/vb_tree.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <thread>
#include <unordered_map>

#include "common/logging.h"

namespace vbtree {

namespace {
constexpr uint32_t kTreeMagic = 0x31544256;  // "VBT1"

/// Optimistic attempts before a reader escalates to the pessimistic
/// fallback (a brief shared acquisition of writer_mu_, which blocks
/// writers out and makes the next attempt validate by construction).
constexpr int kMaxOptimisticAttempts = 8;
/// From this attempt on, yield between restarts so the reader stops
/// spinning against an in-flight writer on oversubscribed cores.
constexpr int kYieldAfterAttempts = 2;
/// Batch label-convergence passes before the whole batch falls back.
constexpr int kMaxLabelPasses = 3;

uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

struct VBTree::LeafEntry {
  int64_t key = 0;
  Rid rid;
  /// Unsigned tuple digest t_j (formula (2)); cached so node digests can
  /// be recomputed without re-reading tuples.
  Digest tuple_digest;
  /// s(t_j), stored with the tuple pointer (formula (2), Fig. 3b).
  Signature tuple_sig;
  /// s(a_j1) ... s(a_jm): signed attribute digests (formula (1)); the
  /// D_P source for projections.
  std::vector<Signature> attr_sigs;
};

/// Immutable-once-published node payload. Writers never mutate a
/// published snapshot: they clone, edit the clone, and publish it with a
/// version-word bump (see common/olc.h) — so a latch-free reader holding
/// any snapshot pointer sees internally consistent, merely possibly
/// outdated, data and relies on word validation to reject it.
struct VBTree::NodeContent {
  /// Unsigned node digest D_N (formula (3)).
  Digest digest;
  /// Cached exponent product: D_N = G^exponent mod 2^k. Maintained by the
  /// central server for the product/incremental update strategies; not
  /// serialized (cheaply rebuilt on deserialization).
  Uint128 exponent{1};
  /// s(D_N); conceptually stored with the child pointer in the parent
  /// (Fig. 3c) — kept with the node itself, which is equivalent and
  /// avoids duplication. The root's signature doubles as the tree
  /// metadata signature.
  Signature sig;
  /// Routing generation: bumped only when the snapshot's key/child layout
  /// changes (split, merge, entry add/remove) — NOT when an insert
  /// elsewhere merely ripples a new digest/signature through this node.
  /// Pure routing reads (the descent above the envelope top) validate
  /// against this instead of the node word, so churn outside a query's
  /// envelope cannot invalidate the query (see DESIGN.md §8.2).
  uint64_t struct_version = 0;
  /// Shard binding signature — meaningful only on the root snapshot of a
  /// tree with a placement (lineage shards): s(ShardBindingDigest(db,
  /// verify_name, lo, hi, digest)). Riding the root snapshot keeps it
  /// atomic with the digest it covers under latch-free reads; on every
  /// other node it stays empty.
  Signature binding;

  virtual ~NodeContent() = default;
};

struct VBTree::Leaf : VBTree::NodeContent {
  std::vector<LeafEntry> entries;
};

struct VBTree::Internal : VBTree::NodeContent {
  /// children.size() == keys.size() + 1; child i spans [keys[i-1], keys[i]).
  std::vector<int64_t> keys;
  /// Raw shell pointers: shells are owned by the tree as a whole and
  /// reclaimed epoch-based when unlinked.
  std::vector<Node*> children;

  size_t ChildIndex(int64_t key) const {
    return static_cast<size_t>(
        std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
  }

  /// Key span of child i as a half-open interval, for overlap tests
  /// against a query range.
  void ChildSpan(size_t i, std::optional<int64_t>* lo,
                 std::optional<int64_t>* hi) const {
    *lo = (i == 0) ? std::nullopt : std::optional(keys[i - 1]);
    *hi = (i == keys.size()) ? std::nullopt : std::optional(keys[i]);
  }
};

/// Versioned node shell: identity (id, leafness) is fixed for the shell's
/// lifetime; `word` is the OLC version word; `content` points at the
/// current published snapshot. The shell owns its current snapshot.
struct VBTree::Node {
  const uint64_t id;
  const bool is_leaf;
  std::atomic<uint64_t> word;
  std::atomic<NodeContent*> content;

  Node(uint64_t id_in, bool leaf, NodeContent* c)
      : id(id_in), is_leaf(leaf), word(olc::kInitialWord), content(c) {}
  ~Node() { delete content.load(std::memory_order_relaxed); }
};

/// One optimistic traversal's read set: every (node, word) observed. The
/// attempt is trustworthy only if Validate() passes afterwards — every
/// recorded word unchanged, no locked node encountered, and the root
/// pointer still the one the attempt started from (a root swap can
/// demote the old root without touching its word).
struct VBTree::ReadGuard {
  struct Rec {
    const Node* node;
    uint64_t word;
  };
  /// Routing-only dependency: the answer used this snapshot's keys and
  /// child pointers but nothing else, so it stays valid across
  /// digest-only republications of the node.
  struct StructRec {
    const Node* node;
    uint64_t struct_version;
  };
  std::vector<Rec> seen;
  std::vector<StructRec> routing;
  const std::atomic<Node*>* root_src = nullptr;
  Node* root_seen = nullptr;
  bool failed = false;

  const NodeContent* Read(const Node* n) {
    uint64_t w = n->word.load(std::memory_order_acquire);
    if (olc::IsLocked(w)) {
      failed = true;
      return nullptr;
    }
    const NodeContent* c = n->content.load(std::memory_order_acquire);
    seen.push_back({n, w});
    return c;
  }

  /// Read for routing decisions only. Published snapshots are immutable,
  /// so this never needs to abort on a locked word — it records the
  /// snapshot's routing generation and Validate() rejects the attempt iff
  /// the node's key/child layout was republished since. A writer that
  /// merely pushed a fresh digest through the node (an insert in a
  /// sibling subtree) leaves the routing generation — and this read —
  /// intact. Every node above the envelope top also has its parent in
  /// `routing` (or is covered by the root re-check), so an unlink is
  /// always caught at the parent whose children changed.
  const NodeContent* ReadRouting(const Node* n) {
    const NodeContent* c = n->content.load(std::memory_order_acquire);
    routing.push_back({n, c->struct_version});
    return c;
  }

  bool Validate() const {
    if (failed) return false;
    if (root_src != nullptr &&
        root_src->load(std::memory_order_acquire) != root_seen) {
      return false;
    }
    for (const Rec& r : seen) {
      if (r.node->word.load(std::memory_order_acquire) != r.word) return false;
    }
    for (const StructRec& r : routing) {
      const NodeContent* c = r.node->content.load(std::memory_order_acquire);
      if (c->struct_version != r.struct_version) return false;
    }
    return true;
  }
};

/// Book-keeping for one write operation (insert, delete, replay, resign,
/// bulk load), which runs under exclusive writer_mu_. Mutations accumulate
/// as unpublished clones and become visible atomically at CommitWrite.
struct VBTree::WriteCtx {
  /// Shell -> unpublished clone this op is editing (for created shells
  /// the "clone" is the shell's own initial content).
  std::unordered_map<Node*, NodeContent*> dirty;
  /// Every shell whose word this op locked (includes created shells,
  /// which are born locked).
  std::vector<Node*> locked;
  /// Shells born in this op (deleted outright on abort).
  std::vector<Node*> created;
  /// Shells unlinked by this op: left locked forever and retired.
  std::vector<Node*> removed;
  Node* new_root = nullptr;

  bool IsCreated(const Node* n) const {
    return std::find(created.begin(), created.end(), n) != created.end();
  }
  bool IsRemoved(const Node* n) const {
    return std::find(removed.begin(), removed.end(), n) != removed.end();
  }
};

// ---------------------------------------------------------------------------
// Writer machinery.
// ---------------------------------------------------------------------------

void VBTree::BeginWrite() {
  VBT_CHECK(wctx_ == nullptr);
  wctx_ = std::make_unique<WriteCtx>();
}

void VBTree::LockWord(Node* n) {
  uint64_t w = n->word.load(std::memory_order_relaxed);
  VBT_CHECK(!olc::IsLocked(w));
  n->word.store(w | olc::kLockedBit, std::memory_order_release);
  wctx_->locked.push_back(n);
}

const VBTree::NodeContent* VBTree::WriterRead(const Node* n) const {
  if (wctx_ != nullptr) {
    auto it = wctx_->dirty.find(const_cast<Node*>(n));
    if (it != wctx_->dirty.end()) return it->second;
  }
  return n->content.load(std::memory_order_relaxed);
}

const VBTree::NodeContent* VBTree::ColdRead(const Node* n) {
  return n->content.load(std::memory_order_acquire);
}

VBTree::Leaf* VBTree::MutableLeaf(Node* n) {
  auto it = wctx_->dirty.find(n);
  if (it != wctx_->dirty.end()) return static_cast<Leaf*>(it->second);
  LockWord(n);
  Leaf* clone =
      new Leaf(*static_cast<const Leaf*>(n->content.load(std::memory_order_relaxed)));
  wctx_->dirty.emplace(n, clone);
  return clone;
}

VBTree::Internal* VBTree::MutableInternal(Node* n) {
  auto it = wctx_->dirty.find(n);
  if (it != wctx_->dirty.end()) return static_cast<Internal*>(it->second);
  LockWord(n);
  Internal* clone = new Internal(
      *static_cast<const Internal*>(n->content.load(std::memory_order_relaxed)));
  wctx_->dirty.emplace(n, clone);
  return clone;
}

VBTree::Node* VBTree::NewLeafNode() {
  Leaf* c = new Leaf();
  Node* n = new Node(NextNodeId(), /*leaf=*/true, c);
  n->word.store(olc::kInitialWord | olc::kLockedBit, std::memory_order_relaxed);
  wctx_->dirty.emplace(n, c);
  wctx_->locked.push_back(n);
  wctx_->created.push_back(n);
  return n;
}

VBTree::Node* VBTree::NewInternalNode() {
  Internal* c = new Internal();
  Node* n = new Node(NextNodeId(), /*leaf=*/false, c);
  n->word.store(olc::kInitialWord | olc::kLockedBit, std::memory_order_relaxed);
  wctx_->dirty.emplace(n, c);
  wctx_->locked.push_back(n);
  wctx_->created.push_back(n);
  return n;
}

void VBTree::RemoveNode(Node* n) {
  if (!olc::IsLocked(n->word.load(std::memory_order_relaxed))) LockWord(n);
  wctx_->removed.push_back(n);
}

void VBTree::CommitWrite(bool bump_version) {
  WriteCtx& ctx = *wctx_;
  // 1. Publish dirty snapshots (nodes stay locked, so no reader trusts
  //    them yet); retire the replaced ones. Removed nodes publish
  //    nothing — their pending clones just die.
  for (auto& [n, clone] : ctx.dirty) {
    NodeContent* old = n->content.load(std::memory_order_relaxed);
    if (ctx.IsRemoved(n)) {
      if (clone != old) delete clone;
      continue;
    }
    if (clone != old) {
      // Classify the republication before it becomes visible: only a
      // routing change (key/child layout) advances the structural
      // generation. Internal nodes are republished on EVERY insert below
      // them (the digest ripples to the root), and keeping the routing
      // generation stable across those is what lets concurrent readers
      // with untouched envelopes validate instead of restarting.
      bool routing_changed = true;
      if (!n->is_leaf) {
        const auto* oi = static_cast<const Internal*>(old);
        const auto* ci = static_cast<const Internal*>(clone);
        routing_changed = oi->keys != ci->keys || oi->children != ci->children;
      }
      if (routing_changed) clone->struct_version = old->struct_version + 1;
      n->content.store(clone, std::memory_order_release);
      reclaimer_.Retire([old] { delete old; });
    }
  }
  // 2. Swap the root if this op grew/shrank the tree.
  if (ctx.new_root != nullptr) {
    root_.store(ctx.new_root, std::memory_order_release);
  }
  // 3. Bump the tree version BEFORE releasing any word: a reader that
  //    validates its read set loads the version first, so this order
  //    guarantees the label is at least as new as any state the reader
  //    could have observed (labels are exact — see DESIGN.md §8).
  if (bump_version) {
    version_.store(version_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }
  // 4. Release every word with a version bump. Removed shells stay
  //    locked forever so stragglers abort instantly.
  for (Node* n : ctx.locked) {
    if (ctx.IsRemoved(n)) continue;
    uint64_t w = n->word.load(std::memory_order_relaxed);
    n->word.store(olc::BumpedUnlocked(w), std::memory_order_release);
  }
  // 5. Retire unlinked shells (their destructors free the snapshots they
  //    still own).
  for (Node* n : ctx.removed) {
    reclaimer_.Retire([n] { delete n; });
  }
  wctx_.reset();
  reclaimer_.Collect();
}

void VBTree::AbortWrite() {
  WriteCtx& ctx = *wctx_;
  // Nothing was published: drop the clones, restore the original words
  // (no bump — the tree is bit-identical to before the op), delete
  // stillborn shells. Removal marks simply evaporate.
  for (auto& [n, clone] : ctx.dirty) {
    if (clone != n->content.load(std::memory_order_relaxed)) delete clone;
  }
  for (Node* n : ctx.locked) {
    if (ctx.IsCreated(n)) continue;
    uint64_t w = n->word.load(std::memory_order_relaxed);
    n->word.store(w & ~olc::kLockedBit, std::memory_order_release);
  }
  for (Node* n : ctx.created) delete n;
  wctx_.reset();
}

// ---------------------------------------------------------------------------
// Construction / destruction.
// ---------------------------------------------------------------------------

VBTree::VBTree(DigestSchema digest_schema, VBTreeOptions opts, Signer* signer,
               LockManager* lock_manager)
    : ds_(std::move(digest_schema)),
      opts_(opts),
      signer_(signer),
      lock_manager_(lock_manager) {
  VBT_CHECK(opts_.config.max_internal >= 2 && opts_.config.max_leaf >= 1);
  key_version_.store(opts_.key_version, std::memory_order_relaxed);
  Leaf* c = new Leaf();
  c->digest = ds_.ghash().Identity();
  if (signer_ != nullptr) {
    auto sig = SignCounted(c->digest);
    if (sig.ok()) c->sig = sig.MoveValueUnsafe();
  }
  root_.store(new Node(NextNodeId(), /*leaf=*/true, c),
              std::memory_order_relaxed);
}

VBTree::~VBTree() {
  reclaimer_.DrainAll();
  DeleteSubtree(root_.load(std::memory_order_relaxed));
  delete placement_.load(std::memory_order_relaxed);
}

void VBTree::DeleteSubtree(Node* node) {
  if (node == nullptr) return;
  NodeContent* c = node->content.load(std::memory_order_relaxed);
  if (!node->is_leaf) {
    for (Node* child : static_cast<Internal*>(c)->children) {
      DeleteSubtree(child);
    }
  }
  delete node;  // shell destructor frees its current snapshot
}

// ---------------------------------------------------------------------------
// Digest maintenance (central server).
// ---------------------------------------------------------------------------

Result<Signature> VBTree::SignCounted(const Digest& d) {
  sign_calls_.fetch_add(1, std::memory_order_relaxed);
  return signer_->Sign(d);
}

Status VBTree::ResignNode(NodeContent* content) {
  if (replay_feed_ != nullptr) {
    // Delta replay: splice in the signature the central server produced
    // for this (structurally identical) re-signing step.
    if (replay_feed_->empty()) {
      return Status::Corruption("update-delta signature feed exhausted");
    }
    content->sig = std::move(replay_feed_->front());
    replay_feed_->pop_front();
    return Status::OK();
  }
  if (signer_ == nullptr) {
    return Status::InvalidArgument(
        "tree replica has no signing key (updates must go to the central "
        "server, §3.4)");
  }
  VBT_ASSIGN_OR_RETURN(content->sig, SignCounted(content->digest));
  if (signature_log_ != nullptr) signature_log_->push_back(content->sig);
  return Status::OK();
}

Status VBTree::RefreshBindingForCommit() {
  const ShardPlacement* p = placement_.load(std::memory_order_relaxed);
  if (p == nullptr) return Status::OK();
  Node* root = wctx_->new_root != nullptr
                   ? wctx_->new_root
                   : root_.load(std::memory_order_relaxed);
  NodeContent* c;
  auto it = wctx_->dirty.find(root);
  if (it != wctx_->dirty.end()) {
    c = it->second;
  } else if (wctx_->new_root != nullptr) {
    // Root collapse promoted an untouched child (all deleted keys lived
    // in removed siblings): its digest IS the new root digest, so it must
    // carry the binding. Cloning it republishes with the routing
    // generation intact. This branch is deterministic — edge replay takes
    // it in exactly the same structural state.
    c = root->is_leaf ? static_cast<NodeContent*>(MutableLeaf(root))
                      : static_cast<NodeContent*>(MutableInternal(root));
  } else {
    return Status::OK();  // root digest unchanged; old binding still valid
  }
  Digest bd = ShardBindingDigest(opts_.hash_algo, ds_.db_name(),
                                 p->verify_name, p->lo, p->hi, c->digest);
  if (replay_feed_ != nullptr) {
    if (replay_feed_->empty()) {
      return Status::Corruption("update-delta signature feed exhausted");
    }
    c->binding = std::move(replay_feed_->front());
    replay_feed_->pop_front();
    return Status::OK();
  }
  if (signer_ == nullptr) {
    return Status::InvalidArgument(
        "tree replica has no signing key (updates must go to the central "
        "server, §3.4)");
  }
  VBT_ASSIGN_OR_RETURN(c->binding, SignCounted(bd));
  if (signature_log_ != nullptr) signature_log_->push_back(c->binding);
  return Status::OK();
}

Status VBTree::RecomputeLeafDigest(Leaf* leaf) {
  std::vector<Digest> ds;
  ds.reserve(leaf->entries.size());
  for (const LeafEntry& e : leaf->entries) ds.push_back(e.tuple_digest);
  leaf->exponent = ds_.ghash().ExponentProduct(ds);
  leaf->digest =
      opts_.update_strategy == DigestUpdateStrategy::kRecomputeChained
          ? ds_.CombineDigests(ds)
          : ds_.ghash().CombineViaExponent(ds);
  return ResignNode(leaf);
}

Status VBTree::RecomputeInternalDigest(Internal* in) {
  std::vector<Digest> ds;
  ds.reserve(in->children.size());
  for (const Node* c : in->children) ds.push_back(WriterRead(c)->digest);
  in->exponent = ds_.ghash().ExponentProduct(ds);
  in->digest =
      opts_.update_strategy == DigestUpdateStrategy::kRecomputeChained
          ? ds_.CombineDigests(ds)
          : ds_.ghash().CombineViaExponent(ds);
  return ResignNode(in);
}

Result<VBTree::LeafEntry> VBTree::MakeLeafEntry(const Tuple& tuple,
                                                const Rid& rid) {
  if (signer_ == nullptr) {
    return Status::InvalidArgument("cannot create signed entries without key");
  }
  if (tuple.num_values() != ds_.schema().num_columns()) {
    return Status::InvalidArgument("tuple arity does not match schema");
  }
  LeafEntry e;
  e.key = tuple.key();
  e.rid = rid;
  std::vector<Digest> attrs = ds_.AttributeDigests(tuple);
  e.attr_sigs.reserve(attrs.size());
  for (const Digest& a : attrs) {
    VBT_ASSIGN_OR_RETURN(Signature s, SignCounted(a));
    e.attr_sigs.push_back(std::move(s));
  }
  e.tuple_digest = ds_.CombineDigests(attrs);
  VBT_ASSIGN_OR_RETURN(e.tuple_sig, SignCounted(e.tuple_digest));
  return e;
}

// ---------------------------------------------------------------------------
// Bulk load.
// ---------------------------------------------------------------------------

Status VBTree::BulkLoad(std::span<const std::pair<Tuple, Rid>> rows) {
  std::unique_lock latch(writer_mu_);
  if (size_.load(std::memory_order_relaxed) != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i - 1].first.key() >= rows[i].first.key()) {
      return Status::InvalidArgument(
          "BulkLoad input must be sorted by strictly increasing key");
    }
  }

  BeginWrite();
  auto fail = [&](Status s) {
    AbortWrite();
    return s;
  };

  // Build packed leaves.
  std::vector<Node*> level;
  const size_t per_leaf = static_cast<size_t>(opts_.config.max_leaf);
  for (size_t i = 0; i < rows.size();) {
    Node* leaf_node = NewLeafNode();
    Leaf* leaf = MutableLeaf(leaf_node);
    size_t n = std::min(per_leaf, rows.size() - i);
    leaf->entries.reserve(n);
    for (size_t j = 0; j < n; ++j, ++i) {
      auto e_or = MakeLeafEntry(rows[i].first, rows[i].second);
      if (!e_or.ok()) return fail(e_or.status());
      leaf->entries.push_back(e_or.MoveValueUnsafe());
    }
    Status s = RecomputeLeafDigest(leaf);
    if (!s.ok()) return fail(s);
    level.push_back(leaf_node);
  }
  if (level.empty()) {
    Node* leaf_node = NewLeafNode();
    Leaf* leaf = MutableLeaf(leaf_node);
    leaf->digest = ds_.ghash().Identity();
    Status s = ResignNode(leaf);
    if (!s.ok()) return fail(s);
    level.push_back(leaf_node);
  }

  // Build packed internal levels bottom-up.
  const size_t per_node = static_cast<size_t>(opts_.config.max_internal);
  while (level.size() > 1) {
    std::vector<Node*> upper;
    for (size_t i = 0; i < level.size();) {
      Node* in_node = NewInternalNode();
      Internal* in = MutableInternal(in_node);
      size_t n = std::min(per_node, level.size() - i);
      // Avoid leaving a trailing group of one child.
      if (level.size() - i - n == 1) n--;
      for (size_t j = 0; j < n; ++j, ++i) {
        if (j > 0) {
          // Separator = smallest key in subtree of child j.
          const Node* c = level[i];
          while (!c->is_leaf) {
            c = static_cast<const Internal*>(WriterRead(c))->children[0];
          }
          in->keys.push_back(
              static_cast<const Leaf*>(WriterRead(c))->entries[0].key);
        }
        in->children.push_back(level[i]);
      }
      Status s = RecomputeInternalDigest(in);
      if (!s.ok()) return fail(s);
      upper.push_back(in_node);
    }
    level = std::move(upper);
  }

  RemoveNode(root_.load(std::memory_order_relaxed));  // the ctor's empty leaf
  wctx_->new_root = level[0];
  size_.store(rows.size(), std::memory_order_relaxed);
  {
    Status s = RefreshBindingForCommit();
    if (!s.ok()) return fail(s);
  }
  // No version bump: bulk load defines version 0, exactly as before.
  CommitWrite(/*bump_version=*/false);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Insert (§3.4).
// ---------------------------------------------------------------------------

Result<VBTree::InsertOutcome> VBTree::InsertRec(Node* node, LeafEntry entry,
                                                const Digest& tuple_digest) {
  if (node->is_leaf) {
    Leaf* leaf = MutableLeaf(node);
    auto it = std::lower_bound(
        leaf->entries.begin(), leaf->entries.end(), entry.key,
        [](const LeafEntry& e, int64_t k) { return e.key < k; });
    if (it != leaf->entries.end() && it->key == entry.key) {
      return Status::AlreadyExists("duplicate key");
    }
    leaf->entries.insert(it, std::move(entry));
    if (leaf->entries.size() <= static_cast<size_t>(opts_.config.max_leaf)) {
      // Incremental fold: D ← D^{t_j} mod n (§3.4 Insert). This is valid
      // at the leaf because the leaf digest is G^(∏ tuple digests).
      leaf->exponent =
          leaf->exponent
              .MulWrap(CommutativeHash::ExponentFactor(tuple_digest))
              .Mask(ds_.modulus_bits());
      leaf->digest =
          opts_.update_strategy == DigestUpdateStrategy::kRecomputeChained
              ? ds_.ghash().Extend(leaf->digest, tuple_digest)
              : ds_.ghash().FromExponent(leaf->exponent);
      VBT_RETURN_NOT_OK(ResignNode(leaf));
      return InsertOutcome{};
    }
    // Split; both halves need full recomputation.
    Node* right_node = NewLeafNode();
    Leaf* right = MutableLeaf(right_node);
    size_t mid = leaf->entries.size() / 2;
    right->entries.assign(std::make_move_iterator(leaf->entries.begin() + mid),
                          std::make_move_iterator(leaf->entries.end()));
    leaf->entries.resize(mid);
    VBT_RETURN_NOT_OK(RecomputeLeafDigest(leaf));
    VBT_RETURN_NOT_OK(RecomputeLeafDigest(right));
    InsertOutcome out;
    out.recomputed = true;
    out.split = SplitResult{right->entries.front().key, right_node};
    return out;
  }

  const auto* in_read = static_cast<const Internal*>(WriterRead(node));
  size_t ci = in_read->ChildIndex(entry.key);
  Node* child = in_read->children[ci];
  const Digest old_child_digest = WriterRead(child)->digest;
  VBT_ASSIGN_OR_RETURN(InsertOutcome child_out,
                       InsertRec(child, std::move(entry), tuple_digest));

  // The child's digest changed, so this node's digest — defined as
  // g(D_c1, ..., D_cp) over *child digests* — must be updated and
  // re-signed.
  //
  // Faithfulness note (see DESIGN.md): §3.4 suggests updating every node
  // on the path incrementally as D ← D^{d_T}. That identity only holds if
  // node digests were flat products over all tuple digests beneath, which
  // is incompatible with the paper's own VO construction (opaque filtered
  // branches enter verification as child *digests*, formula (4)). With
  // the nested definition, the recompute strategies redo an O(fan-out)
  // combination; kIncremental restores O(1) per node by patching the
  // exponent product with a modular inverse.
  Internal* in = MutableInternal(node);
  if (child_out.split.has_value()) {
    in->keys.insert(in->keys.begin() + ci, child_out.split->separator);
    in->children.insert(in->children.begin() + ci + 1, child_out.split->right);
    if (in->children.size() > static_cast<size_t>(opts_.config.max_internal)) {
      Node* right_node = NewInternalNode();
      Internal* right = MutableInternal(right_node);
      size_t mid = in->keys.size() / 2;
      int64_t up = in->keys[mid];
      right->keys.assign(in->keys.begin() + mid + 1, in->keys.end());
      for (size_t i = mid + 1; i < in->children.size(); ++i) {
        right->children.push_back(in->children[i]);
      }
      in->keys.resize(mid);
      in->children.resize(mid + 1);
      VBT_RETURN_NOT_OK(RecomputeInternalDigest(in));
      VBT_RETURN_NOT_OK(RecomputeInternalDigest(right));
      InsertOutcome out;
      out.recomputed = true;
      out.split = SplitResult{up, right_node};
      return out;
    }
    // Child set changed (new sibling): full recombination.
    VBT_RETURN_NOT_OK(RecomputeInternalDigest(in));
    InsertOutcome out;
    out.recomputed = true;
    return out;
  }

  if (opts_.update_strategy == DigestUpdateStrategy::kIncremental) {
    in->exponent = ds_.ghash().UpdateExponent(in->exponent, old_child_digest,
                                              WriterRead(child)->digest);
    in->digest = ds_.ghash().FromExponent(in->exponent);
    VBT_RETURN_NOT_OK(ResignNode(in));
  } else {
    VBT_RETURN_NOT_OK(RecomputeInternalDigest(in));
  }
  InsertOutcome out;
  out.recomputed = true;
  return out;
}

Status VBTree::InsertEntry(LeafEntry entry) {
  Digest tuple_digest = entry.tuple_digest;
  std::unique_lock latch(writer_mu_);
  BeginWrite();
  auto out_or = InsertRec(root_.load(std::memory_order_relaxed),
                          std::move(entry), tuple_digest);
  if (!out_or.ok()) {
    AbortWrite();
    return out_or.status();
  }
  if (out_or->split.has_value()) {
    Node* new_root_node = NewInternalNode();
    Internal* new_root = MutableInternal(new_root_node);
    new_root->keys.push_back(out_or->split->separator);
    new_root->children.push_back(root_.load(std::memory_order_relaxed));
    new_root->children.push_back(out_or->split->right);
    Status s = RecomputeInternalDigest(new_root);
    if (!s.ok()) {
      AbortWrite();
      return s;
    }
    wctx_->new_root = new_root_node;
  }
  {
    Status s = RefreshBindingForCommit();
    if (!s.ok()) {
      AbortWrite();
      return s;
    }
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  CommitWrite(/*bump_version=*/true);
  return Status::OK();
}

Status VBTree::Insert(const Tuple& tuple, const Rid& rid, txn_id_t txn) {
  if (signer_ == nullptr) {
    return Status::InvalidArgument(
        "edge replicas cannot process updates; route to the central server");
  }
  // Digest + signature computation happens outside the writer lock.
  VBT_ASSIGN_OR_RETURN(LeafEntry entry, MakeLeafEntry(tuple, rid));

  if (lock_manager_ != nullptr && txn != 0) {
    // X-lock the root-to-leaf path digests (§3.4 Insert).
    std::vector<lock_id_t> ids;
    {
      std::shared_lock latch(writer_mu_);
      CollectPathIds(root_.load(std::memory_order_acquire), tuple.key(), &ids);
    }
    for (lock_id_t id : ids) {
      VBT_RETURN_NOT_OK(lock_manager_->Acquire(txn, id, LockMode::kExclusive));
    }
  }
  return InsertEntry(std::move(entry));
}

Result<VBTree::SignedEntryMaterial> VBTree::MakeEntryMaterial(
    const Tuple& tuple) {
  VBT_ASSIGN_OR_RETURN(LeafEntry entry, MakeLeafEntry(tuple, Rid{}));
  SignedEntryMaterial m;
  m.tuple_sig = std::move(entry.tuple_sig);
  m.attr_sigs = std::move(entry.attr_sigs);
  return m;
}

Status VBTree::ReplayInsert(const Tuple& tuple, const Rid& rid,
                            const SignedEntryMaterial& material,
                            std::deque<Signature>* sig_feed) {
  if (tuple.num_values() != ds_.schema().num_columns() ||
      material.attr_sigs.size() != ds_.schema().num_columns()) {
    return Status::InvalidArgument("replay material does not match schema");
  }
  LeafEntry entry;
  entry.key = tuple.key();
  entry.rid = rid;
  // Unsigned digests are public: the replica recomputes them itself.
  std::vector<Digest> attrs = ds_.AttributeDigests(tuple);
  entry.tuple_digest = ds_.CombineDigests(attrs);
  entry.tuple_sig = material.tuple_sig;
  entry.attr_sigs = material.attr_sigs;

  replay_feed_ = sig_feed;
  Status s = InsertEntry(std::move(entry));
  replay_feed_ = nullptr;
  return s;
}

Status VBTree::ReplayDeleteRange(int64_t lo, int64_t hi,
                                 std::deque<Signature>* sig_feed) {
  replay_feed_ = sig_feed;
  Status s = DeleteRangeLocked(lo, hi).status();
  replay_feed_ = nullptr;
  return s;
}

// ---------------------------------------------------------------------------
// Delete (§3.4).
// ---------------------------------------------------------------------------

Result<bool> VBTree::DeleteRec(Node* node, int64_t lo, int64_t hi,
                               size_t* removed) {
  if (node->is_leaf) {
    // Peek before cloning: untouched leaves stay clean (no spurious
    // version bumps for readers to trip over).
    const auto* cur = static_cast<const Leaf*>(WriterRead(node));
    bool any = std::any_of(
        cur->entries.begin(), cur->entries.end(),
        [&](const LeafEntry& e) { return e.key >= lo && e.key <= hi; });
    if (!any) return false;
    Leaf* leaf = MutableLeaf(node);
    size_t before = leaf->entries.size();
    leaf->entries.erase(
        std::remove_if(leaf->entries.begin(), leaf->entries.end(),
                       [&](const LeafEntry& e) {
                         return e.key >= lo && e.key <= hi;
                       }),
        leaf->entries.end());
    *removed += before - leaf->entries.size();
    if (!leaf->entries.empty()) {
      VBT_RETURN_NOT_OK(RecomputeLeafDigest(leaf));
    }
    return true;
  }

  const auto* in_read = static_cast<const Internal*>(WriterRead(node));
  bool changed = false;
  for (size_t i = 0; i < in_read->children.size();) {
    std::optional<int64_t> span_lo, span_hi;
    in_read->ChildSpan(i, &span_lo, &span_hi);
    bool overlap = (!span_lo.has_value() || *span_lo <= hi) &&
                   (!span_hi.has_value() || *span_hi > lo);
    if (!overlap) {
      i++;
      continue;
    }
    Node* child = in_read->children[i];
    VBT_ASSIGN_OR_RETURN(bool child_changed, DeleteRec(child, lo, hi, removed));
    changed = changed || child_changed;

    // Merge-on-empty policy (§4.4, citing Johnson & Shasha): free a child
    // only once it holds nothing.
    const NodeContent* cc = WriterRead(child);
    bool child_empty =
        child->is_leaf
            ? static_cast<const Leaf*>(cc)->entries.empty()
            : static_cast<const Internal*>(cc)->children.empty();
    if (child_empty) {
      Internal* in = MutableInternal(node);
      in_read = in;  // keep iterating over the clone
      in->children.erase(in->children.begin() + i);
      if (!in->keys.empty()) {
        in->keys.erase(in->keys.begin() + (i == 0 ? 0 : i - 1));
      }
      RemoveNode(child);
      changed = true;
      continue;  // re-examine index i (next child shifted down)
    }
    i++;
  }
  if (changed && !in_read->children.empty()) {
    VBT_RETURN_NOT_OK(RecomputeInternalDigest(MutableInternal(node)));
  }
  return changed;
}

Result<size_t> VBTree::DeleteRange(int64_t lo, int64_t hi, txn_id_t txn) {
  if (signer_ == nullptr) {
    return Status::InvalidArgument(
        "edge replicas cannot process updates; route to the central server");
  }
  if (lo > hi) return static_cast<size_t>(0);

  if (lock_manager_ != nullptr && txn != 0) {
    // X-lock all digests on the paths to the affected leaves (§3.4
    // Delete: lock, remove, then recompute up to the root).
    std::vector<lock_id_t> ids;
    {
      std::shared_lock latch(writer_mu_);
      CollectRangePathIds(root_.load(std::memory_order_acquire), lo, hi, &ids);
    }
    for (lock_id_t id : ids) {
      VBT_RETURN_NOT_OK(lock_manager_->Acquire(txn, id, LockMode::kExclusive));
    }
  }
  return DeleteRangeLocked(lo, hi);
}

Result<size_t> VBTree::DeleteRangeLocked(int64_t lo, int64_t hi) {
  if (lo > hi) return static_cast<size_t>(0);
  std::unique_lock latch(writer_mu_);
  BeginWrite();
  auto fail = [&](Status s) {
    AbortWrite();
    return s;
  };
  size_t removed = 0;
  {
    Status s =
        DeleteRec(root_.load(std::memory_order_relaxed), lo, hi, &removed)
            .status();
    if (!s.ok()) return fail(s);
  }

  // Collapse trivial roots.
  Node* root = root_.load(std::memory_order_relaxed);
  while (!root->is_leaf) {
    const auto* in = static_cast<const Internal*>(WriterRead(root));
    if (in->children.empty()) {
      Node* leaf_node = NewLeafNode();
      Leaf* leaf = MutableLeaf(leaf_node);
      leaf->digest = ds_.ghash().Identity();
      Status s = ResignNode(leaf);
      if (!s.ok()) return fail(s);
      RemoveNode(root);
      root = leaf_node;
      break;
    }
    if (in->children.size() > 1) break;
    Node* child = in->children[0];
    RemoveNode(root);
    root = child;
  }
  if (removed > 0 && root->is_leaf) {
    if (static_cast<const Leaf*>(WriterRead(root))->entries.empty()) {
      Leaf* leaf = MutableLeaf(root);
      leaf->digest = ds_.ghash().Identity();
      Status s = ResignNode(leaf);
      if (!s.ok()) return fail(s);
    }
  }
  if (root != root_.load(std::memory_order_relaxed)) wctx_->new_root = root;
  {
    Status s = RefreshBindingForCommit();
    if (!s.ok()) return fail(s);
  }
  size_.fetch_sub(removed, std::memory_order_relaxed);
  CommitWrite(/*bump_version=*/true);
  return removed;
}

// ---------------------------------------------------------------------------
// Query + VO construction (§3.3) — latch-free with optimistic validation.
// ---------------------------------------------------------------------------

const VBTree::Node* VBTree::FindEnvelopeTop(const KeyRange& range, ReadGuard* g,
                                            Signature* top_sig) const {
  const Node* node = (g != nullptr)
                         ? g->root_seen
                         : root_.load(std::memory_order_acquire);
  if (placement_.load(std::memory_order_acquire) != nullptr) {
    // Lineage shard: the only signature that proves THIS shard's identity
    // (name + range) is the root's binding, so every VO anchors at the
    // root — the descent-to-LCA shortcut would anchor at a node signature
    // a sibling's tree could replay. The root joins the exact read set
    // (its binding and digest must come from one word era), which does
    // cost lineage shards the envelope-top read independence: any
    // concurrent commit restarts in-flight reads here. That is the
    // deliberate price of O(height) splits; RotateKey's re-sign clears
    // the lineage and restores envelope-top anchoring (DESIGN.md §10).
    const NodeContent* c;
    if (g != nullptr) {
      c = g->Read(node);
      if (c == nullptr) return nullptr;
    } else {
      c = ColdRead(node);
    }
    *top_sig = c->binding;
    return node;
  }
  // Descend on routing-only reads: the nodes above the envelope top
  // contribute nothing to the answer but child choice, so they must not
  // tie the attempt to their version words — every insert anywhere in
  // the tree republishes the root (and its path) with a fresh digest,
  // and word-validating the descent would make ANY churn invalidate ALL
  // concurrent reads. Only a key/child layout change (validated through
  // the snapshot's routing generation) can re-route this query.
  const NodeContent* c = (g != nullptr) ? g->ReadRouting(node) : ColdRead(node);
  while (!node->is_leaf) {
    const auto* in = static_cast<const Internal*>(c);
    size_t ci_lo = in->ChildIndex(range.lo);
    size_t ci_hi = in->ChildIndex(range.hi);
    if (ci_lo != ci_hi) break;  // paths diverge: this is the LCA
    node = in->children[ci_lo];
    c = (g != nullptr) ? g->ReadRouting(node) : ColdRead(node);
  }
  // The top itself joins the exact read set: its signature is the VO's
  // signed anchor and BuildVONode re-reads it, so both reads must come
  // from the same word era for the anchor to match the body.
  if (g != nullptr) {
    c = g->Read(node);
    if (c == nullptr) return nullptr;
  }
  *top_sig = c->sig;
  return node;
}

void VBTree::CollectEnvelopeIds(const Node* node, const KeyRange& range,
                                std::vector<lock_id_t>* ids) const {
  ids->push_back(node->id);
  if (node->is_leaf) return;
  const auto* in = static_cast<const Internal*>(ColdRead(node));
  for (size_t i = 0; i < in->children.size(); ++i) {
    std::optional<int64_t> span_lo, span_hi;
    in->ChildSpan(i, &span_lo, &span_hi);
    bool overlap = (!span_lo.has_value() || *span_lo <= range.hi) &&
                   (!span_hi.has_value() || *span_hi > range.lo);
    if (overlap) CollectEnvelopeIds(in->children[i], range, ids);
  }
}

void VBTree::CollectPathIds(const Node* node, int64_t key,
                            std::vector<lock_id_t>* ids) const {
  ids->push_back(node->id);
  if (node->is_leaf) return;
  const auto* in = static_cast<const Internal*>(ColdRead(node));
  CollectPathIds(in->children[in->ChildIndex(key)], key, ids);
}

void VBTree::CollectRangePathIds(const Node* node, int64_t lo, int64_t hi,
                                 std::vector<lock_id_t>* ids) const {
  // The delete transaction locks the paths from the root to every
  // affected leaf — equivalently the enveloping subtree plus the path
  // down to its top.
  ids->push_back(node->id);
  if (node->is_leaf) return;
  const auto* in = static_cast<const Internal*>(ColdRead(node));
  for (size_t i = 0; i < in->children.size(); ++i) {
    std::optional<int64_t> span_lo, span_hi;
    in->ChildSpan(i, &span_lo, &span_hi);
    bool overlap = (!span_lo.has_value() || *span_lo <= hi) &&
                   (!span_hi.has_value() || *span_hi > lo);
    if (overlap) CollectRangePathIds(in->children[i], lo, hi, ids);
  }
}

Status VBTree::BuildVONode(const Node* node, int depth, const SelectQuery& q,
                           const std::vector<size_t>& filtered_cols,
                           const TupleFetcher& fetch, ReadGuard* g,
                           QueryOutput* out, VONode* vo_node) const {
  const NodeContent* c = g->Read(node);
  if (c == nullptr) return Status::OK();  // locked node: attempt restarts
  out->stats.nodes_visited++;
  if (node->is_leaf) {
    vo_node->is_leaf = true;
    if (out->stats.subtree_height == 0) {
      // Leaf depth relative to the envelope top, +1 — identical to the
      // old tree_height − depth_of_top on a consistent snapshot.
      out->stats.subtree_height = depth + 1;
    }
    const auto* leaf = static_cast<const Leaf*>(c);
    for (const LeafEntry& e : leaf->entries) {
      if (!q.range.Contains(e.key)) {
        // Boundary tuple outside the selection: its signed digest joins
        // D_S (the Da/Db/Dc/Dd digests of Fig. 5).
        vo_node->filtered_tuple_sigs.push_back(e.tuple_sig);
        continue;
      }
      // A fetch failure is only trusted (reported as tampering) if the
      // read set validates afterwards; otherwise the attempt restarts —
      // a concurrent writer may simply have won the race to the store.
      VBT_ASSIGN_OR_RETURN(Tuple t, fetch(e.rid));
      if (!q.MatchesConditions(t)) {
        // Non-key predicate gap inside the range (§3.3 Selection on
        // non-key attributes).
        vo_node->filtered_tuple_sigs.push_back(e.tuple_sig);
        continue;
      }
      ResultRow row;
      row.key = e.key;
      if (q.projection.empty()) {
        row.values = t.values();
      } else {
        row.values.reserve(q.projection.size());
        for (size_t col : q.projection) row.values.push_back(t.value(col));
        // D_P: signed digests of the projected-away attributes (Fig. 7).
        for (size_t col : filtered_cols) {
          out->vo.projected_attr_sigs.push_back(e.attr_sigs[col]);
        }
      }
      out->rows.push_back(std::move(row));
      vo_node->result_count++;
    }
    return Status::OK();
  }

  vo_node->is_leaf = false;
  const auto* in = static_cast<const Internal*>(c);
  vo_node->items.reserve(in->children.size());
  for (size_t i = 0; i < in->children.size(); ++i) {
    std::optional<int64_t> span_lo, span_hi;
    in->ChildSpan(i, &span_lo, &span_hi);
    bool overlap = (!span_lo.has_value() || *span_lo <= q.range.hi) &&
                   (!span_hi.has_value() || *span_hi > q.range.lo);
    VONode::Item item;
    if (overlap) {
      item.covered = std::make_unique<VONode>();
      VBT_RETURN_NOT_OK(BuildVONode(in->children[i], depth + 1, q,
                                    filtered_cols, fetch, g, out,
                                    item.covered.get()));
      if (g->failed) return Status::OK();
    } else {
      // Branch not overlapping the result: one signed digest suffices.
      // Reading the child snapshot records its word too — the signature
      // becomes part of the validated read set.
      const NodeContent* cc = g->Read(in->children[i]);
      if (cc == nullptr) return Status::OK();
      item.opaque = cc->sig;
    }
    vo_node->items.push_back(std::move(item));
  }
  return Status::OK();
}

Status VBTree::ValidateSelect(const SelectQuery& q) const {
  if (!q.projection.empty() && q.projection[0] != 0) {
    return Status::InvalidArgument("projection must retain the key column");
  }
  for (const ColumnCondition& c : q.conditions) {
    if (c.col_idx >= ds_.schema().num_columns()) {
      return Status::InvalidArgument("condition on nonexistent column");
    }
  }
  for (size_t c : q.projection) {
    if (c >= ds_.schema().num_columns()) {
      return Status::InvalidArgument("projection of nonexistent column");
    }
  }
  if (q.range.empty()) {
    return Status::InvalidArgument("empty key range");
  }
  return Status::OK();
}

Status VBTree::ExecuteSelectAttempt(const SelectQuery& q,
                                    const TupleFetcher& fetch, ReadGuard* g,
                                    QueryOutput* out) const {
  out->vo.key_version = key_version_.load(std::memory_order_acquire);
  std::vector<size_t> filtered_cols =
      q.FilteredColumns(ds_.schema().num_columns());
  out->vo.num_filtered_cols = static_cast<uint32_t>(filtered_cols.size());

  const Node* top = FindEnvelopeTop(q.range, g, &out->vo.signed_top);
  if (top == nullptr) return Status::OK();  // aborted on a locked node

  out->vo.skeleton = std::make_unique<VONode>();
  return BuildVONode(top, /*depth=*/0, q, filtered_cols, fetch, g, out,
                     out->vo.skeleton.get());
}

bool VBTree::ConsumeInjectedRestart() const {
  int64_t cur = inject_restarts_.load(std::memory_order_relaxed);
  while (cur > 0) {
    if (inject_restarts_.compare_exchange_weak(cur, cur - 1,
                                               std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

Status VBTree::RunSelectWithRestarts(
    const SelectQuery& q, const TupleFetcher& fetch, bool under_fallback,
    QueryOutput* out, ReadGuard* keep, uint64_t* restarts,
    uint64_t* latch_wait_us, const std::function<void()>& attempt_begin,
    const std::function<void()>& attempt_commit) const {
  for (int attempt = 0; attempt < kMaxOptimisticAttempts; ++attempt) {
    if (!under_fallback && attempt >= kYieldAfterAttempts) {
      const auto t0 = std::chrono::steady_clock::now();
      std::this_thread::yield();
      *latch_wait_us += ElapsedUs(t0);
    }
    if (attempt_begin) attempt_begin();
    ReadGuard g;
    g.root_src = &root_;
    g.root_seen = root_.load(std::memory_order_acquire);
    QueryOutput tmp;
    Status s = ExecuteSelectAttempt(q, fetch, &g, &tmp);
    if (!under_fallback && ConsumeInjectedRestart()) {
      ++*restarts;
      continue;
    }
    // Label BEFORE validating: if the words (and root pointer) are still
    // unchanged after this load, the answer is exactly the tree state at
    // `label` (writers bump the tree version before unlocking any word).
    const uint64_t label = version_.load(std::memory_order_acquire);
    if (!g.Validate()) {
      if (under_fallback) {
        // Impossible: we hold writer_mu_ shared, writers need exclusive.
        return Status::Corruption("OLC validation failed under fallback");
      }
      ++*restarts;
      continue;
    }
    tmp.read_version = label;
    if (s.ok() && attempt_commit) attempt_commit();
    *out = std::move(tmp);
    if (keep != nullptr) *keep = std::move(g);
    return s;
  }
  // Pessimistic fallback: a shared hold of the writer mutex blocks
  // writers (they need it exclusive) while still admitting other
  // readers, so the next attempt validates by construction.
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_lock fallback(writer_mu_);
  *latch_wait_us += ElapsedUs(t0);
  return RunSelectWithRestarts(q, fetch, /*under_fallback=*/true, out, keep,
                               restarts, latch_wait_us, attempt_begin,
                               attempt_commit);
}

Result<QueryOutput> VBTree::ExecuteSelect(const SelectQuery& query,
                                          const TupleFetcher& fetch,
                                          txn_id_t txn) const {
  SelectQuery q = query;
  q.NormalizeProjection();
  VBT_RETURN_NOT_OK(ValidateSelect(q));

  if (lock_manager_ != nullptr && txn != 0) {
    // S-lock the digests of the enveloping subtree (§3.4), so concurrent
    // deletes on overlapping subtrees serialize with this query.
    std::vector<lock_id_t> ids;
    {
      std::shared_lock latch(writer_mu_);
      Signature unused_sig;
      const Node* top = FindEnvelopeTop(q.range, /*g=*/nullptr, &unused_sig);
      CollectEnvelopeIds(top, q.range, &ids);
    }
    for (lock_id_t id : ids) {
      VBT_RETURN_NOT_OK(lock_manager_->Acquire(txn, id, LockMode::kShared));
    }
  }

  olc::EpochReclaimer::Pin pin(&reclaimer_);
  QueryOutput out;
  uint64_t restarts = 0;
  uint64_t latch_wait = 0;
  Status s = RunSelectWithRestarts(q, fetch, /*under_fallback=*/false, &out,
                                   /*keep=*/nullptr, &restarts, &latch_wait,
                                   {}, {});
  out.stats.olc_restarts = restarts;
  VBT_RETURN_NOT_OK(s);
  return out;
}

Result<std::vector<QueryOutput>> VBTree::ExecuteSelectBatch(
    std::span<const SelectQuery> queries, const TupleFetcher& fetch,
    VBBatchStats* batch_stats) const {
  std::vector<SelectQuery> qs(queries.begin(), queries.end());
  // Per-query validation outcomes; a failed slot is skipped below and
  // reported through outs[i].status, not by aborting its siblings.
  std::vector<Status> validation(qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    qs[i].NormalizeProjection();
    validation[i] = ValidateSelect(qs[i]);
  }

  // Batch-scoped tuple memo: queries with overlapping envelopes share each
  // replica-store read (and tuple deserialization) instead of re-fetching
  // per query. Rids are dense and few per batch; an ordered map keeps this
  // dependency-free. Fetches land in a per-attempt staging area first and
  // merge into the committed memo only when the attempt's read set
  // validates — a restarted (torn) read can never leak a tuple to its
  // batch siblings.
  std::map<std::pair<int32_t, uint16_t>, Tuple> memo;
  std::map<std::pair<int32_t, uint16_t>, Tuple> staging;
  size_t fetches = 0;
  size_t hits = 0;
  TupleFetcher shared_fetch = [&](const Rid& rid) -> Result<Tuple> {
    auto key = std::make_pair(rid.page_id, rid.slot);
    if (auto it = memo.find(key); it != memo.end()) {
      hits++;
      return it->second;
    }
    if (auto it = staging.find(key); it != staging.end()) return it->second;
    auto tuple_or = fetch(rid);
    if (!tuple_or.ok()) return tuple_or;
    fetches++;
    return staging.emplace(key, tuple_or.MoveValueUnsafe()).first->second;
  };
  std::function<void()> begin_attempt = [&] { staging.clear(); };
  std::function<void()> commit_attempt = [&] {
    memo.merge(staging);
    staging.clear();
  };

  // ONE epoch pin spans the whole batch — including every
  // label-convergence pass and the pessimistic fallback — because the
  // guards' Validate() calls below dereference node shells recorded
  // during earlier passes, and unpinning would let the reclaimer free a
  // shell a guard still points at. The cost is that snapshots retired
  // while the batch runs sit in the reclaimer's limbo list until the
  // batch unpins; that growth is bounded by the write rate over one
  // batch's latency and is observable via reclaimer_.limbo_size().
  olc::EpochReclaimer::Pin pin(&reclaimer_);
  uint64_t restarts = 0;
  uint64_t latch_wait = 0;
  const size_t n = qs.size();
  std::vector<QueryOutput> outs(n);
  std::vector<ReadGuard> guards(n);

  auto run_one = [&](size_t i, bool under_fallback) {
    QueryOutput out;
    Status s = RunSelectWithRestarts(qs[i], shared_fetch, under_fallback, &out,
                                     &guards[i], &restarts, &latch_wait,
                                     begin_attempt, commit_attempt);
    out.status = s;
    if (!s.ok()) {
      // Partial VO state from a failed execution must not leak.
      out.rows.clear();
      out.vo = VerificationObject{};
    }
    outs[i] = std::move(out);
  };

  for (size_t i = 0; i < n; ++i) {
    if (!validation[i].ok()) {
      outs[i].status = validation[i];
      continue;
    }
    run_one(i, /*under_fallback=*/false);
  }

  // Converge the whole batch on ONE version label, replacing the old
  // batch-wide latch hold: queries whose read sets a writer has since
  // touched re-execute; everything still valid at `v_now` is relabeled
  // for free (an untouched envelope answers identically at the newer
  // version). After kMaxLabelPasses the stragglers finish under a brief
  // shared writer_mu_ hold, which bounds the loop.
  uint64_t v_now = 0;
  for (int pass = 0;; ++pass) {
    if (batch_label_hook_) batch_label_hook_(pass, /*pre_fallback_lock=*/false);
    v_now = version_.load(std::memory_order_acquire);
    std::vector<size_t> stale;
    for (size_t i = 0; i < n; ++i) {
      if (!validation[i].ok()) continue;
      if (!guards[i].Validate()) stale.push_back(i);
    }
    if (stale.empty()) break;
    if (pass >= kMaxLabelPasses) {
      if (batch_label_hook_) {
        batch_label_hook_(pass, /*pre_fallback_lock=*/true);
      }
      const auto t0 = std::chrono::steady_clock::now();
      std::shared_lock fb(writer_mu_);
      latch_wait += ElapsedUs(t0);
      // The scan above raced with writers: one committing between that
      // scan and this lock acquisition can invalidate a slot the scan
      // proved valid, and the batch is about to be labeled with the
      // v_now reloaded here. Writers need writer_mu_ exclusive, so
      // re-validating every guard under this shared hold is
      // authoritative — a slot that passes now provably answers at
      // v_now; everything else re-executes under the fallback.
      v_now = version_.load(std::memory_order_acquire);
      stale.clear();
      for (size_t i = 0; i < n; ++i) {
        if (!validation[i].ok()) continue;
        if (!guards[i].Validate()) stale.push_back(i);
      }
      restarts += stale.size();
      for (size_t i : stale) run_one(i, /*under_fallback=*/true);
      break;
    }
    // A label-pass re-execution is a restart in all but name: the slot's
    // answer was discarded because a writer touched its read set. Count
    // it, so olc_restarts_per_query reflects re-executed work and not
    // just intra-attempt validation failures.
    restarts += stale.size();
    for (size_t i : stale) run_one(i, /*under_fallback=*/false);
  }
  for (size_t i = 0; i < n; ++i) {
    if (validation[i].ok()) outs[i].read_version = v_now;
  }

  if (batch_stats != nullptr) {
    for (const QueryOutput& o : outs) {
      batch_stats->nodes_visited += o.stats.nodes_visited;
    }
    batch_stats->tuple_fetches += fetches;
    batch_stats->shared_fetch_hits += hits;
    batch_stats->olc_restarts += restarts;
    batch_stats->latch_wait_us += latch_wait;
    batch_stats->read_version = v_now;
  }
  return outs;
}

// ---------------------------------------------------------------------------
// Key rotation (§3.4).
// ---------------------------------------------------------------------------

Status VBTree::ResignRec(Node* node, const TupleFetcher& fetch) {
  if (node->is_leaf) {
    Leaf* leaf = MutableLeaf(node);
    for (LeafEntry& e : leaf->entries) {
      VBT_ASSIGN_OR_RETURN(Tuple t, fetch(e.rid));
      if (t.key() != e.key) {
        return Status::Corruption("tuple key does not match leaf entry");
      }
      std::vector<Digest> attrs = ds_.AttributeDigests(t);
      e.attr_sigs.clear();
      e.attr_sigs.reserve(attrs.size());
      for (const Digest& a : attrs) {
        VBT_ASSIGN_OR_RETURN(Signature s, SignCounted(a));
        e.attr_sigs.push_back(std::move(s));
      }
      e.tuple_digest = ds_.CombineDigests(attrs);
      VBT_ASSIGN_OR_RETURN(e.tuple_sig, SignCounted(e.tuple_digest));
    }
    return RecomputeLeafDigest(leaf);
  }
  Internal* in = MutableInternal(node);
  for (Node* c : in->children) {
    VBT_RETURN_NOT_OK(ResignRec(c, fetch));
  }
  return RecomputeInternalDigest(in);
}

Status VBTree::ResignAll(Signer* new_signer, uint32_t new_key_version,
                         const TupleFetcher& fetch,
                         const std::string* rebind_table_name) {
  if (new_signer == nullptr) {
    return Status::InvalidArgument("ResignAll requires a signer");
  }
  std::unique_lock latch(writer_mu_);
  Signer* old_signer = signer_;
  const uint32_t old_key_version = opts_.key_version;
  DigestSchema old_ds = ds_;
  signer_ = new_signer;
  opts_.key_version = new_key_version;
  if (rebind_table_name != nullptr) {
    // Retire the lineage: every signature is being recomputed anyway, so
    // re-home the digest domain under the shard's own name. The placement
    // (and its per-write binding refresh) is cleared below on success.
    ds_ = DigestSchema(old_ds.db_name(), *rebind_table_name, old_ds.schema(),
                       old_ds.hash_algorithm(), old_ds.modulus_bits());
    ds_.set_counters(counters_);
  }
  BeginWrite();
  Status s = ResignRec(root_.load(std::memory_order_relaxed), fetch);
  if (s.ok() && rebind_table_name == nullptr) {
    // A kept placement must re-cover the re-signed root digest.
    s = RefreshBindingForCommit();
  }
  if (!s.ok()) {
    AbortWrite();
    signer_ = old_signer;
    opts_.key_version = old_key_version;
    ds_ = std::move(old_ds);
    return s;
  }
  if (rebind_table_name != nullptr) {
    const ShardPlacement* old_placement = placement_.exchange(
        nullptr, std::memory_order_release);
    if (old_placement != nullptr) {
      reclaimer_.Retire([old_placement] { delete old_placement; });
    }
  }
  // Publish the new key version together with the re-signed tree; the
  // version bump invalidates every replica so the propagation layer
  // re-distributes (deltas cannot express a re-sign).
  key_version_.store(new_key_version, std::memory_order_release);
  CommitWrite(/*bump_version=*/true);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Shard placement + incremental-split surgery (DESIGN.md §10).
// ---------------------------------------------------------------------------

Status VBTree::BindPlacement(std::string verify_name, int64_t lo, int64_t hi) {
  if (signer_ == nullptr) {
    return Status::InvalidArgument(
        "BindPlacement requires the signing key (central server only)");
  }
  if (lo > hi) return Status::InvalidArgument("empty placement range");
  std::unique_lock latch(writer_mu_);
  auto* p = new ShardPlacement{std::move(verify_name), lo, hi};
  // Pre-publication by contract: no reader holds the tree yet, so the
  // root snapshot can be patched in place (no clone/word ceremony).
  Node* root = root_.load(std::memory_order_relaxed);
  NodeContent* c = root->content.load(std::memory_order_relaxed);
  Digest bd = ShardBindingDigest(opts_.hash_algo, ds_.db_name(),
                                 p->verify_name, p->lo, p->hi, c->digest);
  auto sig_or = SignCounted(bd);
  if (!sig_or.ok()) {
    delete p;
    return sig_or.status();
  }
  c->binding = sig_or.MoveValueUnsafe();
  delete placement_.exchange(p, std::memory_order_release);
  return Status::OK();
}

Signature VBTree::binding_signature() const {
  std::shared_lock latch(writer_mu_);
  return ColdRead(root_.load(std::memory_order_acquire))->binding;
}

VBTree::Node* VBTree::CloneSubtree(const Node* src, const RidRemap& remap,
                                   VBTree* dst) const {
  const NodeContent* c = ColdRead(src);
  if (src->is_leaf) {
    auto* leaf = new Leaf(*static_cast<const Leaf*>(c));
    leaf->struct_version = 0;
    leaf->binding.clear();
    // Digest preimages bind db/table/attr/key/value — never the Rid — so
    // remapping the tuple pointers into the child's heap leaves every
    // copied signature valid verbatim.
    for (LeafEntry& e : leaf->entries) e.rid = remap(e.rid);
    return new Node(dst->NextNodeId(), /*leaf=*/true, leaf);
  }
  const auto* src_in = static_cast<const Internal*>(c);
  auto* in = new Internal();
  in->digest = c->digest;
  in->exponent = c->exponent;
  in->sig = c->sig;
  in->keys = src_in->keys;
  in->children.reserve(src_in->children.size());
  for (const Node* ch : src_in->children) {
    in->children.push_back(CloneSubtree(ch, remap, dst));
  }
  return new Node(dst->NextNodeId(), /*leaf=*/false, in);
}

Result<std::unique_ptr<VBTree>> VBTree::CloneRange(std::string verify_name,
                                                   int64_t lo, int64_t hi,
                                                   const RidRemap& remap) const {
  if (signer_ == nullptr) {
    return Status::InvalidArgument(
        "CloneRange requires the signing key (central server only)");
  }
  if (lo > hi) return Status::InvalidArgument("empty clone range");
  auto child = std::unique_ptr<VBTree>(
      new VBTree(ds_, opts_, signer_, lock_manager_));
  child->counters_ = counters_;
  {
    std::shared_lock latch(writer_mu_);
    Node* new_root =
        CloneSubtree(root_.load(std::memory_order_acquire), remap, child.get());
    DeleteSubtree(child->root_.load(std::memory_order_relaxed));
    child->root_.store(new_root, std::memory_order_relaxed);
    child->size_.store(size_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    child->opts_.key_version = opts_.key_version;
    child->key_version_.store(key_version_.load(std::memory_order_acquire),
                              std::memory_order_relaxed);
  }
  // Trim the full copy down to [lo, hi]: two boundary range-deletes whose
  // re-signing cost is O(height) — the split's entire crypto bill.
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  if (lo != kMin) {
    VBT_RETURN_NOT_OK(child->DeleteRangeLocked(kMin, lo - 1).status());
  }
  if (hi != kMax) {
    VBT_RETURN_NOT_OK(child->DeleteRangeLocked(hi + 1, kMax).status());
  }
  // The child is a fresh distribution lineage: version 0, like BulkLoad.
  child->version_.store(0, std::memory_order_relaxed);
  VBT_RETURN_NOT_OK(child->BindPlacement(std::move(verify_name), lo, hi));
  return child;
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

Digest VBTree::root_digest() const {
  std::shared_lock latch(writer_mu_);
  return ColdRead(root_.load(std::memory_order_acquire))->digest;
}

Signature VBTree::root_signature() const {
  std::shared_lock latch(writer_mu_);
  return ColdRead(root_.load(std::memory_order_acquire))->sig;
}

int VBTree::height() const {
  std::shared_lock latch(writer_mu_);
  int h = 1;
  const Node* n = root_.load(std::memory_order_acquire);
  while (!n->is_leaf) {
    h++;
    n = static_cast<const Internal*>(ColdRead(n))->children[0];
  }
  return h;
}

uint64_t VBTree::node_count() const {
  std::shared_lock latch(writer_mu_);
  uint64_t count = 0;
  std::vector<const Node*> stack{root_.load(std::memory_order_acquire)};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    count++;
    if (!n->is_leaf) {
      for (const Node* c :
           static_cast<const Internal*>(ColdRead(n))->children) {
        stack.push_back(c);
      }
    }
  }
  return count;
}

Status VBTree::CheckDigestRec(const Node* node) const {
  const NodeContent* content = ColdRead(node);
  if (node->is_leaf) {
    const auto* leaf = static_cast<const Leaf*>(content);
    std::vector<Digest> ds;
    for (const LeafEntry& e : leaf->entries) ds.push_back(e.tuple_digest);
    Digest expect = ds_.ghash().Combine(ds);
    if (!(expect == content->digest)) {
      return Status::Corruption("leaf digest mismatch");
    }
    return Status::OK();
  }
  const auto* in = static_cast<const Internal*>(content);
  std::vector<Digest> ds;
  for (const Node* c : in->children) {
    VBT_RETURN_NOT_OK(CheckDigestRec(c));
    ds.push_back(ColdRead(c)->digest);
  }
  Digest expect = ds_.ghash().Combine(ds);
  if (!(expect == content->digest)) {
    return Status::Corruption("internal digest mismatch");
  }
  return Status::OK();
}

Status VBTree::CheckDigestConsistency() const {
  std::shared_lock latch(writer_mu_);
  return CheckDigestRec(root_.load(std::memory_order_acquire));
}

Result<size_t> VBTree::AuditSignatures(Recoverer* recoverer) const {
  if (recoverer == nullptr) {
    return Status::InvalidArgument("audit requires the public key");
  }
  std::shared_lock latch(writer_mu_);
  // First make sure the digest hierarchy itself is consistent.
  VBT_RETURN_NOT_OK(CheckDigestRec(root_.load(std::memory_order_acquire)));
  // Then check every stored signature against its digest.
  size_t audited = 0;
  if (const ShardPlacement* p = placement_.load(std::memory_order_acquire);
      p != nullptr) {
    const NodeContent* rc = ColdRead(root_.load(std::memory_order_acquire));
    VBT_ASSIGN_OR_RETURN(Digest bd, recoverer->Recover(rc->binding));
    Digest expect = ShardBindingDigest(opts_.hash_algo, ds_.db_name(),
                                       p->verify_name, p->lo, p->hi,
                                       rc->digest);
    if (!(bd == expect)) {
      return Status::VerificationFailure(
          "root placement binding signature does not match");
    }
    audited++;
  }
  std::vector<const Node*> stack{root_.load(std::memory_order_acquire)};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    const NodeContent* content = ColdRead(n);
    VBT_ASSIGN_OR_RETURN(Digest d, recoverer->Recover(content->sig));
    if (!(d == content->digest)) {
      return Status::VerificationFailure(
          "node " + std::to_string(n->id) + " signature does not match");
    }
    audited++;
    if (n->is_leaf) {
      const auto* leaf = static_cast<const Leaf*>(content);
      for (const LeafEntry& e : leaf->entries) {
        VBT_ASSIGN_OR_RETURN(Digest td, recoverer->Recover(e.tuple_sig));
        if (!(td == e.tuple_digest)) {
          return Status::VerificationFailure(
              "tuple " + std::to_string(e.key) + " signature does not match");
        }
        audited++;
      }
    } else {
      for (const Node* c :
           static_cast<const Internal*>(content)->children) {
        stack.push_back(c);
      }
    }
  }
  return audited;
}

Status VBTree::CheckStructureRec(const Node* node, std::optional<int64_t> lo,
                                 std::optional<int64_t> hi, int depth,
                                 int* leaf_depth) const {
  auto in_bounds = [&](int64_t k) {
    if (lo.has_value() && k < *lo) return false;
    if (hi.has_value() && k >= *hi) return false;
    return true;
  };
  const NodeContent* content = ColdRead(node);
  if (node->is_leaf) {
    const auto* leaf = static_cast<const Leaf*>(content);
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at differing depths");
    }
    for (size_t i = 0; i < leaf->entries.size(); ++i) {
      if (i > 0 && leaf->entries[i - 1].key >= leaf->entries[i].key) {
        return Status::Corruption("leaf keys out of order");
      }
      if (!in_bounds(leaf->entries[i].key)) {
        return Status::Corruption("leaf key violates separator bounds");
      }
    }
    return Status::OK();
  }
  const auto* in = static_cast<const Internal*>(content);
  if (in->children.size() != in->keys.size() + 1) {
    return Status::Corruption("internal child/key count mismatch");
  }
  for (size_t i = 0; i < in->keys.size(); ++i) {
    if (i > 0 && in->keys[i - 1] >= in->keys[i]) {
      return Status::Corruption("internal keys out of order");
    }
    if (!in_bounds(in->keys[i])) {
      return Status::Corruption("separator violates parent bounds");
    }
  }
  for (size_t i = 0; i < in->children.size(); ++i) {
    std::optional<int64_t> clo = (i == 0) ? lo : std::optional(in->keys[i - 1]);
    std::optional<int64_t> chi =
        (i == in->keys.size()) ? hi : std::optional(in->keys[i]);
    VBT_RETURN_NOT_OK(
        CheckStructureRec(in->children[i], clo, chi, depth + 1, leaf_depth));
  }
  return Status::OK();
}

Status VBTree::CheckStructure() const {
  std::shared_lock latch(writer_mu_);
  int leaf_depth = -1;
  return CheckStructureRec(root_.load(std::memory_order_acquire), std::nullopt,
                           std::nullopt, 0, &leaf_depth);
}

std::vector<int64_t> VBTree::AllKeys() const {
  std::shared_lock latch(writer_mu_);
  std::vector<int64_t> keys;
  // Depth-first with children pushed in reverse: leaves visited
  // left-to-right, so keys come out in order (no leaf chain needed).
  std::vector<const Node*> stack{root_.load(std::memory_order_acquire)};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    const NodeContent* content = ColdRead(n);
    if (n->is_leaf) {
      for (const LeafEntry& e : static_cast<const Leaf*>(content)->entries) {
        keys.push_back(e.key);
      }
      continue;
    }
    const auto& children = static_cast<const Internal*>(content)->children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return keys;
}

std::vector<int64_t> VBTree::KeysInRange(int64_t lo, int64_t hi) const {
  std::shared_lock latch(writer_mu_);
  std::vector<int64_t> keys;
  std::vector<const Node*> stack{root_.load(std::memory_order_acquire)};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    const NodeContent* content = ColdRead(n);
    if (n->is_leaf) {
      for (const LeafEntry& e : static_cast<const Leaf*>(content)->entries) {
        if (e.key >= lo && e.key <= hi) keys.push_back(e.key);
      }
      continue;
    }
    const auto* in = static_cast<const Internal*>(content);
    for (size_t i = in->children.size(); i-- > 0;) {
      std::optional<int64_t> span_lo, span_hi;
      in->ChildSpan(i, &span_lo, &span_hi);
      bool overlap = (!span_lo.has_value() || *span_lo <= hi) &&
                     (!span_hi.has_value() || *span_hi > lo);
      if (overlap) stack.push_back(in->children[i]);
    }
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Serialization (distribution to edge servers).
// ---------------------------------------------------------------------------

void VBTree::SerializeNode(const Node* node, ByteWriter* w) const {
  const NodeContent* content = ColdRead(node);
  w->PutU8(node->is_leaf ? 1 : 0);
  w->PutVarint(node->id);
  w->PutBytes(content->digest.AsSlice());
  w->PutLengthPrefixed(Slice(content->sig.data(), content->sig.size()));
  if (node->is_leaf) {
    const auto* leaf = static_cast<const Leaf*>(content);
    w->PutVarint(leaf->entries.size());
    for (const LeafEntry& e : leaf->entries) {
      w->PutI64(e.key);
      w->PutU32(static_cast<uint32_t>(e.rid.page_id));
      w->PutU16(e.rid.slot);
      w->PutBytes(e.tuple_digest.AsSlice());
      w->PutLengthPrefixed(Slice(e.tuple_sig.data(), e.tuple_sig.size()));
      w->PutVarint(e.attr_sigs.size());
      for (const Signature& s : e.attr_sigs) {
        w->PutLengthPrefixed(Slice(s.data(), s.size()));
      }
    }
  } else {
    const auto* in = static_cast<const Internal*>(content);
    w->PutVarint(in->children.size());
    for (int64_t k : in->keys) w->PutI64(k);
    for (const Node* c : in->children) SerializeNode(c, w);
  }
}

void VBTree::SerializeTo(ByteWriter* w) const {
  std::shared_lock latch(writer_mu_);
  w->PutU32(kTreeMagic);
  w->PutString(ds_.db_name());
  w->PutString(ds_.table_name());
  ds_.schema().Serialize(w);
  w->PutU8(static_cast<uint8_t>(ds_.hash_algorithm()));
  w->PutU8(static_cast<uint8_t>(opts_.modulus_bits));
  w->PutU8(static_cast<uint8_t>(opts_.update_strategy));
  w->PutU32(opts_.key_version);
  w->PutU32(static_cast<uint32_t>(opts_.config.max_internal));
  w->PutU32(static_cast<uint32_t>(opts_.config.max_leaf));
  w->PutVarint(size_.load(std::memory_order_relaxed));
  w->PutVarint(version_.load(std::memory_order_relaxed));
  // Shard-placement section (lineage shards): the binding signature ships
  // with the snapshot so edge replicas can root-anchor VOs immediately;
  // later refreshes ride the delta stream's signature feed.
  const ShardPlacement* p = placement_.load(std::memory_order_acquire);
  w->PutU8(p != nullptr ? 1 : 0);
  if (p != nullptr) {
    w->PutString(p->verify_name);
    w->PutI64(p->lo);
    w->PutI64(p->hi);
    const NodeContent* rc = ColdRead(root_.load(std::memory_order_acquire));
    w->PutLengthPrefixed(Slice(rc->binding.data(), rc->binding.size()));
  }
  SerializeNode(root_.load(std::memory_order_acquire), w);
}

Result<VBTree::Node*> VBTree::DeserializeNode(ByteReader* r,
                                              const Schema& schema, int depth,
                                              uint64_t* max_id) {
  if (depth > 64) return Status::Corruption("tree too deep");
  VBT_ASSIGN_OR_RETURN(uint8_t is_leaf, r->ReadU8());
  VBT_ASSIGN_OR_RETURN(uint64_t id, r->ReadVarint());
  VBT_ASSIGN_OR_RETURN(Slice digest_bytes, r->ReadBytes(kDigestLen));
  Digest digest;
  std::memcpy(digest.bytes.data(), digest_bytes.data(), kDigestLen);
  VBT_ASSIGN_OR_RETURN(Slice sig_bytes, r->ReadLengthPrefixed());
  Signature sig(sig_bytes.data(), sig_bytes.data() + sig_bytes.size());
  *max_id = std::max(*max_id, id);

  if (is_leaf != 0) {
    auto leaf = std::make_unique<Leaf>();
    leaf->digest = digest;
    leaf->sig = std::move(sig);
    VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
    leaf->entries.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      LeafEntry e;
      VBT_ASSIGN_OR_RETURN(e.key, r->ReadI64());
      VBT_ASSIGN_OR_RETURN(uint32_t page, r->ReadU32());
      e.rid.page_id = static_cast<int32_t>(page);
      VBT_ASSIGN_OR_RETURN(e.rid.slot, r->ReadU16());
      VBT_ASSIGN_OR_RETURN(Slice td, r->ReadBytes(kDigestLen));
      std::memcpy(e.tuple_digest.bytes.data(), td.data(), kDigestLen);
      VBT_ASSIGN_OR_RETURN(Slice ts, r->ReadLengthPrefixed());
      e.tuple_sig.assign(ts.data(), ts.data() + ts.size());
      VBT_ASSIGN_OR_RETURN(uint64_t na, r->ReadCount());
      if (na != schema.num_columns()) {
        return Status::Corruption("attribute signature count mismatch");
      }
      e.attr_sigs.reserve(na);
      for (uint64_t a = 0; a < na; ++a) {
        VBT_ASSIGN_OR_RETURN(Slice as, r->ReadLengthPrefixed());
        e.attr_sigs.emplace_back(as.data(), as.data() + as.size());
      }
      leaf->entries.push_back(std::move(e));
    }
    return new Node(id, /*leaf=*/true, leaf.release());
  }

  auto in = std::make_unique<Internal>();
  in->digest = digest;
  in->sig = std::move(sig);
  VBT_ASSIGN_OR_RETURN(uint64_t nc, r->ReadCount());
  if (nc == 0) return Status::Corruption("internal node without children");
  in->keys.reserve(nc - 1);
  for (uint64_t i = 0; i + 1 < nc; ++i) {
    VBT_ASSIGN_OR_RETURN(int64_t k, r->ReadI64());
    in->keys.push_back(k);
  }
  in->children.reserve(nc);
  for (uint64_t i = 0; i < nc; ++i) {
    auto child_or = DeserializeNode(r, schema, depth + 1, max_id);
    if (!child_or.ok()) {
      // Raw shell pointers: free the partially built subtree explicitly.
      for (Node* ch : in->children) DeleteSubtree(ch);
      return child_or.status();
    }
    in->children.push_back(child_or.ValueOrDie());
  }
  return new Node(id, /*leaf=*/false, in.release());
}

Result<std::unique_ptr<VBTree>> VBTree::Deserialize(ByteReader* r,
                                                    Signer* signer,
                                                    LockManager* lock_manager) {
  VBT_ASSIGN_OR_RETURN(uint32_t magic, r->ReadU32());
  if (magic != kTreeMagic) return Status::Corruption("bad VB-tree magic");
  VBT_ASSIGN_OR_RETURN(std::string db, r->ReadString());
  VBT_ASSIGN_OR_RETURN(std::string table, r->ReadString());
  VBT_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(r));
  VBT_ASSIGN_OR_RETURN(uint8_t algo, r->ReadU8());
  VBT_ASSIGN_OR_RETURN(uint8_t modulus_bits, r->ReadU8());
  VBT_ASSIGN_OR_RETURN(uint8_t strategy, r->ReadU8());
  // All header fields come from an untrusted stream: validate before use.
  if (algo > static_cast<uint8_t>(HashAlgorithm::kMd5)) {
    return Status::Corruption("bad hash algorithm");
  }
  if (modulus_bits < 8 || modulus_bits > 128) {
    return Status::Corruption("bad modulus bits");
  }
  if (strategy > static_cast<uint8_t>(DigestUpdateStrategy::kIncremental)) {
    return Status::Corruption("bad digest update strategy");
  }
  VBTreeOptions opts;
  opts.hash_algo = static_cast<HashAlgorithm>(algo);
  opts.modulus_bits = modulus_bits;
  opts.update_strategy = static_cast<DigestUpdateStrategy>(strategy);
  VBT_ASSIGN_OR_RETURN(opts.key_version, r->ReadU32());
  VBT_ASSIGN_OR_RETURN(uint32_t max_internal, r->ReadU32());
  VBT_ASSIGN_OR_RETURN(uint32_t max_leaf, r->ReadU32());
  constexpr uint32_t kMaxFanOut = 1u << 20;
  if (max_internal < 2 || max_internal > kMaxFanOut || max_leaf < 1 ||
      max_leaf > kMaxFanOut) {
    return Status::Corruption("bad node capacity");
  }
  opts.config.max_internal = static_cast<int>(max_internal);
  opts.config.max_leaf = static_cast<int>(max_leaf);
  VBT_ASSIGN_OR_RETURN(uint64_t size, r->ReadVarint());
  VBT_ASSIGN_OR_RETURN(uint64_t version, r->ReadVarint());
  VBT_ASSIGN_OR_RETURN(uint8_t has_placement, r->ReadU8());
  if (has_placement > 1) return Status::Corruption("bad placement flag");
  ShardPlacement placement;
  Signature binding;
  if (has_placement != 0) {
    VBT_ASSIGN_OR_RETURN(placement.verify_name, r->ReadString());
    VBT_ASSIGN_OR_RETURN(placement.lo, r->ReadI64());
    VBT_ASSIGN_OR_RETURN(placement.hi, r->ReadI64());
    if (placement.lo > placement.hi) {
      return Status::Corruption("bad placement range");
    }
    VBT_ASSIGN_OR_RETURN(Slice b, r->ReadLengthPrefixed());
    binding.assign(b.data(), b.data() + b.size());
  }

  DigestSchema ds(db, table, schema, opts.hash_algo, opts.modulus_bits);
  auto tree = std::unique_ptr<VBTree>(
      new VBTree(std::move(ds), opts, signer, lock_manager));

  uint64_t max_id = 0;
  VBT_ASSIGN_OR_RETURN(Node* new_root,
                       DeserializeNode(r, schema, 0, &max_id));
  // Replace the constructor's placeholder root. Single-threaded: the tree
  // has not been published to any reader yet.
  DeleteSubtree(tree->root_.load(std::memory_order_relaxed));
  tree->root_.store(new_root, std::memory_order_relaxed);
  if (has_placement != 0) {
    new_root->content.load(std::memory_order_relaxed)->binding =
        std::move(binding);
    tree->placement_.store(new ShardPlacement(std::move(placement)),
                           std::memory_order_relaxed);
  }
  tree->size_.store(size, std::memory_order_relaxed);
  tree->version_.store(version, std::memory_order_relaxed);
  tree->next_node_id_ = max_id + 1;
  tree->InitExponents(new_root);
  return tree;
}

void VBTree::InitExponents(Node* node) {
  NodeContent* content = node->content.load(std::memory_order_relaxed);
  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(content);
    std::vector<Digest> ds;
    ds.reserve(leaf->entries.size());
    for (const LeafEntry& e : leaf->entries) ds.push_back(e.tuple_digest);
    leaf->exponent = ds_.ghash().ExponentProduct(ds);
    return;
  }
  auto* in = static_cast<Internal*>(content);
  std::vector<Digest> ds;
  ds.reserve(in->children.size());
  for (Node* c : in->children) {
    InitExponents(c);
    ds.push_back(c->content.load(std::memory_order_relaxed)->digest);
  }
  in->exponent = ds_.ghash().ExponentProduct(ds);
}

}  // namespace vbtree
