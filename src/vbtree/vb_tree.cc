#include "vbtree/vb_tree.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace vbtree {

namespace {
constexpr uint32_t kTreeMagic = 0x31544256;  // "VBT1"
}  // namespace

struct VBTree::LeafEntry {
  int64_t key = 0;
  Rid rid;
  /// Unsigned tuple digest t_j (formula (2)); cached so node digests can
  /// be recomputed without re-reading tuples.
  Digest tuple_digest;
  /// s(t_j), stored with the tuple pointer (formula (2), Fig. 3b).
  Signature tuple_sig;
  /// s(a_j1) ... s(a_jm): signed attribute digests (formula (1)); the
  /// D_P source for projections.
  std::vector<Signature> attr_sigs;
};

struct VBTree::Node {
  bool is_leaf;
  uint64_t id = 0;
  /// Unsigned node digest D_N (formula (3)).
  Digest digest;
  /// Cached exponent product: D_N = G^exponent mod 2^k. Maintained by the
  /// central server for the product/incremental update strategies; not
  /// serialized (cheaply rebuilt on deserialization).
  Uint128 exponent{1};
  /// s(D_N); conceptually stored with the child pointer in the parent
  /// (Fig. 3c) — kept on the node itself, which is equivalent and avoids
  /// duplication. The root's signature doubles as the tree metadata
  /// signature.
  Signature sig;

  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
};

struct VBTree::Leaf : VBTree::Node {
  Leaf() : Node(true) {}
  std::vector<LeafEntry> entries;
  Leaf* next = nullptr;
  Leaf* prev = nullptr;
};

struct VBTree::Internal : VBTree::Node {
  Internal() : Node(false) {}
  /// children.size() == keys.size() + 1; child i spans [keys[i-1], keys[i]).
  std::vector<int64_t> keys;
  std::vector<std::unique_ptr<Node>> children;

  size_t ChildIndex(int64_t key) const {
    return static_cast<size_t>(
        std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
  }

  /// Key span of child i as a half-open interval, for overlap tests
  /// against a query range.
  void ChildSpan(size_t i, std::optional<int64_t>* lo,
                 std::optional<int64_t>* hi) const {
    *lo = (i == 0) ? std::nullopt : std::optional(keys[i - 1]);
    *hi = (i == keys.size()) ? std::nullopt : std::optional(keys[i]);
  }
};

VBTree::VBTree(DigestSchema digest_schema, VBTreeOptions opts, Signer* signer,
               LockManager* lock_manager)
    : ds_(std::move(digest_schema)),
      opts_(opts),
      signer_(signer),
      lock_manager_(lock_manager) {
  VBT_CHECK(opts_.config.max_internal >= 2 && opts_.config.max_leaf >= 1);
  auto leaf = std::make_unique<Leaf>();
  leaf->id = NextNodeId();
  leaf->digest = ds_.ghash().Identity();
  root_ = std::move(leaf);
  if (signer_ != nullptr) {
    auto sig = signer_->Sign(root_->digest);
    if (sig.ok()) root_->sig = sig.MoveValueUnsafe();
  }
}

VBTree::~VBTree() = default;

// ---------------------------------------------------------------------------
// Digest maintenance (central server).
// ---------------------------------------------------------------------------

Status VBTree::ResignNode(Node* node) {
  if (replay_feed_ != nullptr) {
    // Delta replay: splice in the signature the central server produced
    // for this (structurally identical) re-signing step.
    if (replay_feed_->empty()) {
      return Status::Corruption("update-delta signature feed exhausted");
    }
    node->sig = std::move(replay_feed_->front());
    replay_feed_->pop_front();
    return Status::OK();
  }
  if (signer_ == nullptr) {
    return Status::InvalidArgument(
        "tree replica has no signing key (updates must go to the central "
        "server, §3.4)");
  }
  VBT_ASSIGN_OR_RETURN(node->sig, signer_->Sign(node->digest));
  if (signature_log_ != nullptr) signature_log_->push_back(node->sig);
  return Status::OK();
}

Status VBTree::RecomputeLeafDigest(Leaf* leaf) {
  std::vector<Digest> ds;
  ds.reserve(leaf->entries.size());
  for (const LeafEntry& e : leaf->entries) ds.push_back(e.tuple_digest);
  leaf->exponent = ds_.ghash().ExponentProduct(ds);
  leaf->digest =
      opts_.update_strategy == DigestUpdateStrategy::kRecomputeChained
          ? ds_.CombineDigests(ds)
          : ds_.ghash().CombineViaExponent(ds);
  return ResignNode(leaf);
}

Status VBTree::RecomputeInternalDigest(Internal* in) {
  std::vector<Digest> ds;
  ds.reserve(in->children.size());
  for (const auto& c : in->children) ds.push_back(c->digest);
  in->exponent = ds_.ghash().ExponentProduct(ds);
  in->digest =
      opts_.update_strategy == DigestUpdateStrategy::kRecomputeChained
          ? ds_.CombineDigests(ds)
          : ds_.ghash().CombineViaExponent(ds);
  return ResignNode(in);
}

Result<VBTree::LeafEntry> VBTree::MakeLeafEntry(const Tuple& tuple,
                                                const Rid& rid) {
  if (signer_ == nullptr) {
    return Status::InvalidArgument("cannot create signed entries without key");
  }
  if (tuple.num_values() != ds_.schema().num_columns()) {
    return Status::InvalidArgument("tuple arity does not match schema");
  }
  LeafEntry e;
  e.key = tuple.key();
  e.rid = rid;
  std::vector<Digest> attrs = ds_.AttributeDigests(tuple);
  e.attr_sigs.reserve(attrs.size());
  for (const Digest& a : attrs) {
    VBT_ASSIGN_OR_RETURN(Signature s, signer_->Sign(a));
    e.attr_sigs.push_back(std::move(s));
  }
  e.tuple_digest = ds_.CombineDigests(attrs);
  VBT_ASSIGN_OR_RETURN(e.tuple_sig, signer_->Sign(e.tuple_digest));
  return e;
}

// ---------------------------------------------------------------------------
// Bulk load.
// ---------------------------------------------------------------------------

Status VBTree::BulkLoad(std::span<const std::pair<Tuple, Rid>> rows) {
  std::unique_lock latch(latch_);
  if (size_ != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i - 1].first.key() >= rows[i].first.key()) {
      return Status::InvalidArgument(
          "BulkLoad input must be sorted by strictly increasing key");
    }
  }

  // Build packed leaves.
  std::vector<std::unique_ptr<Node>> level;
  const size_t per_leaf = static_cast<size_t>(opts_.config.max_leaf);
  Leaf* prev = nullptr;
  for (size_t i = 0; i < rows.size();) {
    auto leaf = std::make_unique<Leaf>();
    leaf->id = NextNodeId();
    size_t n = std::min(per_leaf, rows.size() - i);
    leaf->entries.reserve(n);
    for (size_t j = 0; j < n; ++j, ++i) {
      VBT_ASSIGN_OR_RETURN(LeafEntry e,
                           MakeLeafEntry(rows[i].first, rows[i].second));
      leaf->entries.push_back(std::move(e));
    }
    VBT_RETURN_NOT_OK(RecomputeLeafDigest(leaf.get()));
    leaf->prev = prev;
    if (prev != nullptr) prev->next = leaf.get();
    prev = leaf.get();
    level.push_back(std::move(leaf));
  }
  if (level.empty()) {
    auto leaf = std::make_unique<Leaf>();
    leaf->id = NextNodeId();
    leaf->digest = ds_.ghash().Identity();
    VBT_RETURN_NOT_OK(ResignNode(leaf.get()));
    level.push_back(std::move(leaf));
  }

  // Build packed internal levels bottom-up.
  const size_t per_node = static_cast<size_t>(opts_.config.max_internal);
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> upper;
    for (size_t i = 0; i < level.size();) {
      auto in = std::make_unique<Internal>();
      in->id = NextNodeId();
      size_t n = std::min(per_node, level.size() - i);
      // Avoid leaving a trailing group of one child.
      if (level.size() - i - n == 1) n--;
      for (size_t j = 0; j < n; ++j, ++i) {
        if (j > 0) {
          // Separator = smallest key in subtree of child j.
          const Node* c = level[i].get();
          while (!c->is_leaf) {
            c = static_cast<const Internal*>(c)->children[0].get();
          }
          in->keys.push_back(static_cast<const Leaf*>(c)->entries[0].key);
        }
        in->children.push_back(std::move(level[i]));
      }
      VBT_RETURN_NOT_OK(RecomputeInternalDigest(in.get()));
      upper.push_back(std::move(in));
    }
    level = std::move(upper);
  }

  root_ = std::move(level[0]);
  size_ = rows.size();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Insert (§3.4).
// ---------------------------------------------------------------------------

Result<VBTree::InsertOutcome> VBTree::InsertRec(Node* node, LeafEntry entry,
                                                const Digest& tuple_digest) {
  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    auto it = std::lower_bound(
        leaf->entries.begin(), leaf->entries.end(), entry.key,
        [](const LeafEntry& e, int64_t k) { return e.key < k; });
    if (it != leaf->entries.end() && it->key == entry.key) {
      return Status::AlreadyExists("duplicate key");
    }
    leaf->entries.insert(it, std::move(entry));
    if (leaf->entries.size() <= static_cast<size_t>(opts_.config.max_leaf)) {
      // Incremental fold: D ← D^{t_j} mod n (§3.4 Insert). This is valid
      // at the leaf because the leaf digest is G^(∏ tuple digests).
      leaf->exponent =
          leaf->exponent
              .MulWrap(CommutativeHash::ExponentFactor(tuple_digest))
              .Mask(ds_.modulus_bits());
      leaf->digest =
          opts_.update_strategy == DigestUpdateStrategy::kRecomputeChained
              ? ds_.ghash().Extend(leaf->digest, tuple_digest)
              : ds_.ghash().FromExponent(leaf->exponent);
      VBT_RETURN_NOT_OK(ResignNode(leaf));
      return InsertOutcome{};
    }
    // Split; both halves need full recomputation.
    auto right = std::make_unique<Leaf>();
    right->id = NextNodeId();
    size_t mid = leaf->entries.size() / 2;
    right->entries.assign(std::make_move_iterator(leaf->entries.begin() + mid),
                          std::make_move_iterator(leaf->entries.end()));
    leaf->entries.resize(mid);
    right->next = leaf->next;
    right->prev = leaf;
    if (leaf->next != nullptr) leaf->next->prev = right.get();
    leaf->next = right.get();
    VBT_RETURN_NOT_OK(RecomputeLeafDigest(leaf));
    VBT_RETURN_NOT_OK(RecomputeLeafDigest(right.get()));
    InsertOutcome out;
    out.recomputed = true;
    out.split = SplitResult{right->entries.front().key, std::move(right)};
    return out;
  }

  auto* in = static_cast<Internal*>(node);
  size_t ci = in->ChildIndex(entry.key);
  const Digest old_child_digest = in->children[ci]->digest;
  VBT_ASSIGN_OR_RETURN(
      InsertOutcome child_out,
      InsertRec(in->children[ci].get(), std::move(entry), tuple_digest));

  // The child's digest changed, so this node's digest — defined as
  // g(D_c1, ..., D_cp) over *child digests* — must be updated and
  // re-signed.
  //
  // Faithfulness note (see DESIGN.md): §3.4 suggests updating every node
  // on the path incrementally as D ← D^{d_T}. That identity only holds if
  // node digests were flat products over all tuple digests beneath, which
  // is incompatible with the paper's own VO construction (opaque filtered
  // branches enter verification as child *digests*, formula (4)). With
  // the nested definition, the recompute strategies redo an O(fan-out)
  // combination; kIncremental restores O(1) per node by patching the
  // exponent product with a modular inverse.
  if (child_out.split.has_value()) {
    in->keys.insert(in->keys.begin() + ci, child_out.split->separator);
    in->children.insert(in->children.begin() + ci + 1,
                        std::move(child_out.split->right));
    if (in->children.size() > static_cast<size_t>(opts_.config.max_internal)) {
      auto right = std::make_unique<Internal>();
      right->id = NextNodeId();
      size_t mid = in->keys.size() / 2;
      int64_t up = in->keys[mid];
      right->keys.assign(in->keys.begin() + mid + 1, in->keys.end());
      for (size_t i = mid + 1; i < in->children.size(); ++i) {
        right->children.push_back(std::move(in->children[i]));
      }
      in->keys.resize(mid);
      in->children.resize(mid + 1);
      VBT_RETURN_NOT_OK(RecomputeInternalDigest(in));
      VBT_RETURN_NOT_OK(RecomputeInternalDigest(right.get()));
      InsertOutcome out;
      out.recomputed = true;
      out.split = SplitResult{up, std::move(right)};
      return out;
    }
    // Child set changed (new sibling): full recombination.
    VBT_RETURN_NOT_OK(RecomputeInternalDigest(in));
    InsertOutcome out;
    out.recomputed = true;
    return out;
  }

  if (opts_.update_strategy == DigestUpdateStrategy::kIncremental) {
    in->exponent = ds_.ghash().UpdateExponent(
        in->exponent, old_child_digest, in->children[ci]->digest);
    in->digest = ds_.ghash().FromExponent(in->exponent);
    VBT_RETURN_NOT_OK(ResignNode(in));
  } else {
    VBT_RETURN_NOT_OK(RecomputeInternalDigest(in));
  }
  InsertOutcome out;
  out.recomputed = true;
  return out;
}

Status VBTree::InsertEntry(LeafEntry entry) {
  Digest tuple_digest = entry.tuple_digest;
  std::unique_lock latch(latch_);
  VBT_ASSIGN_OR_RETURN(InsertOutcome out,
                       InsertRec(root_.get(), std::move(entry), tuple_digest));
  if (out.split.has_value()) {
    auto new_root = std::make_unique<Internal>();
    new_root->id = NextNodeId();
    new_root->keys.push_back(out.split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(out.split->right));
    VBT_RETURN_NOT_OK(RecomputeInternalDigest(new_root.get()));
    root_ = std::move(new_root);
  }
  size_++;
  version_++;
  return Status::OK();
}

Status VBTree::Insert(const Tuple& tuple, const Rid& rid, txn_id_t txn) {
  if (signer_ == nullptr) {
    return Status::InvalidArgument(
        "edge replicas cannot process updates; route to the central server");
  }
  // Digest + signature computation happens outside the latch.
  VBT_ASSIGN_OR_RETURN(LeafEntry entry, MakeLeafEntry(tuple, rid));

  if (lock_manager_ != nullptr && txn != 0) {
    // X-lock the root-to-leaf path digests (§3.4 Insert).
    std::vector<lock_id_t> ids;
    {
      std::shared_lock latch(latch_);
      CollectPathIds(root_.get(), tuple.key(), &ids);
    }
    for (lock_id_t id : ids) {
      VBT_RETURN_NOT_OK(lock_manager_->Acquire(txn, id, LockMode::kExclusive));
    }
  }
  return InsertEntry(std::move(entry));
}

Result<VBTree::SignedEntryMaterial> VBTree::MakeEntryMaterial(
    const Tuple& tuple) {
  VBT_ASSIGN_OR_RETURN(LeafEntry entry, MakeLeafEntry(tuple, Rid{}));
  SignedEntryMaterial m;
  m.tuple_sig = std::move(entry.tuple_sig);
  m.attr_sigs = std::move(entry.attr_sigs);
  return m;
}

Status VBTree::ReplayInsert(const Tuple& tuple, const Rid& rid,
                            const SignedEntryMaterial& material,
                            std::deque<Signature>* sig_feed) {
  if (tuple.num_values() != ds_.schema().num_columns() ||
      material.attr_sigs.size() != ds_.schema().num_columns()) {
    return Status::InvalidArgument("replay material does not match schema");
  }
  LeafEntry entry;
  entry.key = tuple.key();
  entry.rid = rid;
  // Unsigned digests are public: the replica recomputes them itself.
  std::vector<Digest> attrs = ds_.AttributeDigests(tuple);
  entry.tuple_digest = ds_.CombineDigests(attrs);
  entry.tuple_sig = material.tuple_sig;
  entry.attr_sigs = material.attr_sigs;

  replay_feed_ = sig_feed;
  Status s = InsertEntry(std::move(entry));
  replay_feed_ = nullptr;
  return s;
}

Status VBTree::ReplayDeleteRange(int64_t lo, int64_t hi,
                                 std::deque<Signature>* sig_feed) {
  replay_feed_ = sig_feed;
  Status s = DeleteRangeLocked(lo, hi).status();
  replay_feed_ = nullptr;
  return s;
}

// ---------------------------------------------------------------------------
// Delete (§3.4).
// ---------------------------------------------------------------------------

Result<bool> VBTree::DeleteRec(Node* node, int64_t lo, int64_t hi,
                               size_t* removed) {
  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    size_t before = leaf->entries.size();
    leaf->entries.erase(
        std::remove_if(leaf->entries.begin(), leaf->entries.end(),
                       [&](const LeafEntry& e) {
                         return e.key >= lo && e.key <= hi;
                       }),
        leaf->entries.end());
    size_t n = before - leaf->entries.size();
    *removed += n;
    if (n == 0) return false;
    if (!leaf->entries.empty()) {
      VBT_RETURN_NOT_OK(RecomputeLeafDigest(leaf));
    }
    return true;
  }

  auto* in = static_cast<Internal*>(node);
  bool changed = false;
  for (size_t i = 0; i < in->children.size();) {
    std::optional<int64_t> span_lo, span_hi;
    in->ChildSpan(i, &span_lo, &span_hi);
    bool overlap = (!span_lo.has_value() || *span_lo <= hi) &&
                   (!span_hi.has_value() || *span_hi > lo);
    if (!overlap) {
      i++;
      continue;
    }
    VBT_ASSIGN_OR_RETURN(bool child_changed,
                         DeleteRec(in->children[i].get(), lo, hi, removed));
    changed = changed || child_changed;

    // Merge-on-empty policy (§4.4, citing Johnson & Shasha): free a child
    // only once it holds nothing.
    Node* child = in->children[i].get();
    bool child_empty =
        child->is_leaf
            ? static_cast<Leaf*>(child)->entries.empty()
            : static_cast<Internal*>(child)->children.empty();
    if (child_empty) {
      if (child->is_leaf) {
        auto* l = static_cast<Leaf*>(child);
        if (l->prev != nullptr) l->prev->next = l->next;
        if (l->next != nullptr) l->next->prev = l->prev;
      }
      in->children.erase(in->children.begin() + i);
      if (!in->keys.empty()) {
        in->keys.erase(in->keys.begin() + (i == 0 ? 0 : i - 1));
      }
      changed = true;
      continue;  // re-examine index i (next child shifted down)
    }
    i++;
  }
  if (changed && !in->children.empty()) {
    VBT_RETURN_NOT_OK(RecomputeInternalDigest(in));
  }
  return changed;
}

Result<size_t> VBTree::DeleteRange(int64_t lo, int64_t hi, txn_id_t txn) {
  if (signer_ == nullptr) {
    return Status::InvalidArgument(
        "edge replicas cannot process updates; route to the central server");
  }
  if (lo > hi) return static_cast<size_t>(0);

  if (lock_manager_ != nullptr && txn != 0) {
    // X-lock all digests on the paths to the affected leaves (§3.4
    // Delete: lock, remove, then recompute up to the root).
    std::vector<lock_id_t> ids;
    {
      std::shared_lock latch(latch_);
      CollectRangePathIds(root_.get(), lo, hi, &ids);
    }
    for (lock_id_t id : ids) {
      VBT_RETURN_NOT_OK(lock_manager_->Acquire(txn, id, LockMode::kExclusive));
    }
  }
  return DeleteRangeLocked(lo, hi);
}

Result<size_t> VBTree::DeleteRangeLocked(int64_t lo, int64_t hi) {
  if (lo > hi) return static_cast<size_t>(0);
  std::unique_lock latch(latch_);
  size_t removed = 0;
  VBT_RETURN_NOT_OK(DeleteRec(root_.get(), lo, hi, &removed).status());
  size_ -= removed;

  // Collapse trivial roots.
  while (!root_->is_leaf) {
    auto* in = static_cast<Internal*>(root_.get());
    if (in->children.empty()) {
      auto leaf = std::make_unique<Leaf>();
      leaf->id = NextNodeId();
      leaf->digest = ds_.ghash().Identity();
      VBT_RETURN_NOT_OK(ResignNode(leaf.get()));
      root_ = std::move(leaf);
      break;
    }
    if (in->children.size() > 1) break;
    root_ = std::move(in->children[0]);
  }
  if (removed > 0 && root_->is_leaf &&
      static_cast<Leaf*>(root_.get())->entries.empty()) {
    root_->digest = ds_.ghash().Identity();
    VBT_RETURN_NOT_OK(ResignNode(root_.get()));
  }
  version_++;
  return removed;
}

// ---------------------------------------------------------------------------
// Query + VO construction (§3.3).
// ---------------------------------------------------------------------------

const VBTree::Node* VBTree::FindEnvelopeTop(const KeyRange& range,
                                            Signature* top_sig,
                                            int* depth_of_top) const {
  const Node* node = root_.get();
  *top_sig = node->sig;
  int depth = 0;
  while (!node->is_leaf) {
    const auto* in = static_cast<const Internal*>(node);
    size_t ci_lo = in->ChildIndex(range.lo);
    size_t ci_hi = in->ChildIndex(range.hi);
    if (ci_lo != ci_hi) break;  // paths diverge: this is the LCA
    node = in->children[ci_lo].get();
    *top_sig = node->sig;
    depth++;
  }
  *depth_of_top = depth;
  return node;
}

void VBTree::CollectEnvelopeIds(const Node* node, const KeyRange& range,
                                std::vector<lock_id_t>* ids) const {
  ids->push_back(node->id);
  if (node->is_leaf) return;
  const auto* in = static_cast<const Internal*>(node);
  for (size_t i = 0; i < in->children.size(); ++i) {
    std::optional<int64_t> span_lo, span_hi;
    in->ChildSpan(i, &span_lo, &span_hi);
    bool overlap = (!span_lo.has_value() || *span_lo <= range.hi) &&
                   (!span_hi.has_value() || *span_hi > range.lo);
    if (overlap) CollectEnvelopeIds(in->children[i].get(), range, ids);
  }
}

void VBTree::CollectPathIds(const Node* node, int64_t key,
                            std::vector<lock_id_t>* ids) const {
  ids->push_back(node->id);
  if (node->is_leaf) return;
  const auto* in = static_cast<const Internal*>(node);
  CollectPathIds(in->children[in->ChildIndex(key)].get(), key, ids);
}

void VBTree::CollectRangePathIds(const Node* node, int64_t lo, int64_t hi,
                                 std::vector<lock_id_t>* ids) const {
  // The delete transaction locks the paths from the root to every
  // affected leaf — equivalently the enveloping subtree plus the path
  // down to its top.
  ids->push_back(node->id);
  if (node->is_leaf) return;
  const auto* in = static_cast<const Internal*>(node);
  for (size_t i = 0; i < in->children.size(); ++i) {
    std::optional<int64_t> span_lo, span_hi;
    in->ChildSpan(i, &span_lo, &span_hi);
    bool overlap = (!span_lo.has_value() || *span_lo <= hi) &&
                   (!span_hi.has_value() || *span_hi > lo);
    if (overlap) CollectRangePathIds(in->children[i].get(), lo, hi, ids);
  }
}

Status VBTree::BuildVONode(const Node* node, const SelectQuery& q,
                           const std::vector<size_t>& filtered_cols,
                           const TupleFetcher& fetch, QueryOutput* out,
                           VONode* vo_node) const {
  out->stats.nodes_visited++;
  if (node->is_leaf) {
    vo_node->is_leaf = true;
    const auto* leaf = static_cast<const Leaf*>(node);
    for (const LeafEntry& e : leaf->entries) {
      if (!q.range.Contains(e.key)) {
        // Boundary tuple outside the selection: its signed digest joins
        // D_S (the Da/Db/Dc/Dd digests of Fig. 5).
        vo_node->filtered_tuple_sigs.push_back(e.tuple_sig);
        continue;
      }
      VBT_ASSIGN_OR_RETURN(Tuple t, fetch(e.rid));
      if (!q.MatchesConditions(t)) {
        // Non-key predicate gap inside the range (§3.3 Selection on
        // non-key attributes).
        vo_node->filtered_tuple_sigs.push_back(e.tuple_sig);
        continue;
      }
      ResultRow row;
      row.key = e.key;
      if (q.projection.empty()) {
        row.values = t.values();
      } else {
        row.values.reserve(q.projection.size());
        for (size_t c : q.projection) row.values.push_back(t.value(c));
        // D_P: signed digests of the projected-away attributes (Fig. 7).
        for (size_t c : filtered_cols) {
          out->vo.projected_attr_sigs.push_back(e.attr_sigs[c]);
        }
      }
      out->rows.push_back(std::move(row));
      vo_node->result_count++;
    }
    return Status::OK();
  }

  vo_node->is_leaf = false;
  const auto* in = static_cast<const Internal*>(node);
  vo_node->items.reserve(in->children.size());
  for (size_t i = 0; i < in->children.size(); ++i) {
    std::optional<int64_t> span_lo, span_hi;
    in->ChildSpan(i, &span_lo, &span_hi);
    bool overlap = (!span_lo.has_value() || *span_lo <= q.range.hi) &&
                   (!span_hi.has_value() || *span_hi > q.range.lo);
    VONode::Item item;
    if (overlap) {
      item.covered = std::make_unique<VONode>();
      VBT_RETURN_NOT_OK(BuildVONode(in->children[i].get(), q, filtered_cols,
                                    fetch, out, item.covered.get()));
    } else {
      // Branch not overlapping the result: one signed digest suffices.
      item.opaque = in->children[i]->sig;
    }
    vo_node->items.push_back(std::move(item));
  }
  return Status::OK();
}

Status VBTree::ValidateSelect(const SelectQuery& q) const {
  if (!q.projection.empty() && q.projection[0] != 0) {
    return Status::InvalidArgument("projection must retain the key column");
  }
  for (const ColumnCondition& c : q.conditions) {
    if (c.col_idx >= ds_.schema().num_columns()) {
      return Status::InvalidArgument("condition on nonexistent column");
    }
  }
  for (size_t c : q.projection) {
    if (c >= ds_.schema().num_columns()) {
      return Status::InvalidArgument("projection of nonexistent column");
    }
  }
  if (q.range.empty()) {
    return Status::InvalidArgument("empty key range");
  }
  return Status::OK();
}

Status VBTree::ExecuteSelectLocked(const SelectQuery& q,
                                   const TupleFetcher& fetch, int tree_height,
                                   QueryOutput* out) const {
  out->vo.key_version = opts_.key_version;
  std::vector<size_t> filtered_cols =
      q.FilteredColumns(ds_.schema().num_columns());
  out->vo.num_filtered_cols = static_cast<uint32_t>(filtered_cols.size());

  int depth_of_top = 0;
  const Node* top = FindEnvelopeTop(q.range, &out->vo.signed_top,
                                    &depth_of_top);
  out->stats.subtree_height = tree_height - depth_of_top;

  out->vo.skeleton = std::make_unique<VONode>();
  return BuildVONode(top, q, filtered_cols, fetch, out,
                     out->vo.skeleton.get());
}

Result<QueryOutput> VBTree::ExecuteSelect(const SelectQuery& query,
                                          const TupleFetcher& fetch,
                                          txn_id_t txn) const {
  SelectQuery q = query;
  q.NormalizeProjection();
  VBT_RETURN_NOT_OK(ValidateSelect(q));

  if (lock_manager_ != nullptr && txn != 0) {
    // S-lock the digests of the enveloping subtree (§3.4), so concurrent
    // deletes on overlapping subtrees serialize with this query.
    std::vector<lock_id_t> ids;
    {
      std::shared_lock latch(latch_);
      Signature unused_sig;
      int unused_depth = 0;
      const Node* top = FindEnvelopeTop(q.range, &unused_sig, &unused_depth);
      CollectEnvelopeIds(top, q.range, &ids);
    }
    for (lock_id_t id : ids) {
      VBT_RETURN_NOT_OK(lock_manager_->Acquire(txn, id, LockMode::kShared));
    }
  }

  std::shared_lock latch(latch_);
  QueryOutput out;
  VBT_RETURN_NOT_OK(ExecuteSelectLocked(q, fetch, height(), &out));
  return out;
}

Result<std::vector<QueryOutput>> VBTree::ExecuteSelectBatch(
    std::span<const SelectQuery> queries, const TupleFetcher& fetch,
    VBBatchStats* batch_stats) const {
  std::vector<SelectQuery> qs(queries.begin(), queries.end());
  // Per-query validation outcomes; a failed slot is skipped below and
  // reported through outs[i].status, not by aborting its siblings.
  std::vector<Status> validation(qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    qs[i].NormalizeProjection();
    validation[i] = ValidateSelect(qs[i]);
  }

  // Batch-scoped tuple memo: queries with overlapping envelopes share each
  // replica-store read (and tuple deserialization) instead of re-fetching
  // per query. Rids are dense and few per batch; an ordered map keeps this
  // dependency-free.
  std::map<std::pair<int32_t, uint16_t>, Tuple> memo;
  size_t fetches = 0;
  size_t hits = 0;
  TupleFetcher shared_fetch = [&](const Rid& rid) -> Result<Tuple> {
    auto key = std::make_pair(rid.page_id, rid.slot);
    auto it = memo.find(key);
    if (it != memo.end()) {
      hits++;
      return it->second;
    }
    auto tuple_or = fetch(rid);
    if (!tuple_or.ok()) return tuple_or;
    fetches++;
    return memo.emplace(key, tuple_or.MoveValueUnsafe()).first->second;
  };

  // ONE shared-latch acquisition for the whole batch: every answer reads
  // the same tree state, so the coalesced response carries one replica
  // version. Snapshot installs / delta replay (exclusive latch) serialize
  // against the batch as a unit.
  std::shared_lock latch(latch_);
  const int tree_height = height();  // latch already held
  std::vector<QueryOutput> outs;
  outs.reserve(qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    QueryOutput out;
    out.status = validation[i];
    if (out.status.ok()) {
      out.status =
          ExecuteSelectLocked(qs[i], shared_fetch, tree_height, &out);
      if (!out.status.ok()) {
        // Partial VO state from a failed execution must not leak.
        out.rows.clear();
        out.vo = VerificationObject{};
      }
    }
    if (batch_stats != nullptr) {
      batch_stats->nodes_visited += out.stats.nodes_visited;
    }
    outs.push_back(std::move(out));
  }
  if (batch_stats != nullptr) {
    batch_stats->tuple_fetches += fetches;
    batch_stats->shared_fetch_hits += hits;
  }
  return outs;
}

// ---------------------------------------------------------------------------
// Key rotation (§3.4).
// ---------------------------------------------------------------------------

Status VBTree::ResignRec(Node* node, const TupleFetcher& fetch) {
  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    for (LeafEntry& e : leaf->entries) {
      VBT_ASSIGN_OR_RETURN(Tuple t, fetch(e.rid));
      if (t.key() != e.key) {
        return Status::Corruption("tuple key does not match leaf entry");
      }
      std::vector<Digest> attrs = ds_.AttributeDigests(t);
      e.attr_sigs.clear();
      e.attr_sigs.reserve(attrs.size());
      for (const Digest& a : attrs) {
        VBT_ASSIGN_OR_RETURN(Signature s, signer_->Sign(a));
        e.attr_sigs.push_back(std::move(s));
      }
      e.tuple_digest = ds_.CombineDigests(attrs);
      VBT_ASSIGN_OR_RETURN(e.tuple_sig, signer_->Sign(e.tuple_digest));
    }
    return RecomputeLeafDigest(leaf);
  }
  auto* in = static_cast<Internal*>(node);
  for (auto& c : in->children) {
    VBT_RETURN_NOT_OK(ResignRec(c.get(), fetch));
  }
  return RecomputeInternalDigest(in);
}

Status VBTree::ResignAll(Signer* new_signer, uint32_t new_key_version,
                         const TupleFetcher& fetch) {
  if (new_signer == nullptr) {
    return Status::InvalidArgument("ResignAll requires a signer");
  }
  std::unique_lock latch(latch_);
  signer_ = new_signer;
  opts_.key_version = new_key_version;
  // Re-signing invalidates every replica: bump the version so the
  // propagation layer re-distributes (deltas cannot express a re-sign).
  version_++;
  return ResignRec(root_.get(), fetch);
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

Digest VBTree::root_digest() const {
  std::shared_lock latch(latch_);
  return root_->digest;
}

uint64_t VBTree::version() const {
  std::shared_lock latch(latch_);
  return version_;
}

Signature VBTree::root_signature() const {
  std::shared_lock latch(latch_);
  return root_->sig;
}

size_t VBTree::size() const {
  std::shared_lock latch(latch_);
  return size_;
}

int VBTree::height() const {
  // Callers hold at least a shared latch or tolerate a racy read.
  int h = 1;
  const Node* n = root_.get();
  while (!n->is_leaf) {
    h++;
    n = static_cast<const Internal*>(n)->children[0].get();
  }
  return h;
}

uint64_t VBTree::node_count() const {
  std::shared_lock latch(latch_);
  uint64_t count = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    count++;
    if (!n->is_leaf) {
      for (const auto& c : static_cast<const Internal*>(n)->children) {
        stack.push_back(c.get());
      }
    }
  }
  return count;
}

Status VBTree::CheckDigestRec(const Node* node) const {
  if (node->is_leaf) {
    const auto* leaf = static_cast<const Leaf*>(node);
    std::vector<Digest> ds;
    for (const LeafEntry& e : leaf->entries) ds.push_back(e.tuple_digest);
    Digest expect = ds_.ghash().Combine(ds);
    if (!(expect == node->digest)) {
      return Status::Corruption("leaf digest mismatch");
    }
    return Status::OK();
  }
  const auto* in = static_cast<const Internal*>(node);
  std::vector<Digest> ds;
  for (const auto& c : in->children) {
    VBT_RETURN_NOT_OK(CheckDigestRec(c.get()));
    ds.push_back(c->digest);
  }
  Digest expect = ds_.ghash().Combine(ds);
  if (!(expect == node->digest)) {
    return Status::Corruption("internal digest mismatch");
  }
  return Status::OK();
}

Status VBTree::CheckDigestConsistency() const {
  std::shared_lock latch(latch_);
  return CheckDigestRec(root_.get());
}

Result<size_t> VBTree::AuditSignatures(Recoverer* recoverer) const {
  if (recoverer == nullptr) {
    return Status::InvalidArgument("audit requires the public key");
  }
  std::shared_lock latch(latch_);
  // First make sure the digest hierarchy itself is consistent.
  VBT_RETURN_NOT_OK(CheckDigestRec(root_.get()));
  // Then check every stored signature against its digest.
  size_t audited = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    VBT_ASSIGN_OR_RETURN(Digest d, recoverer->Recover(n->sig));
    if (!(d == n->digest)) {
      return Status::VerificationFailure(
          "node " + std::to_string(n->id) + " signature does not match");
    }
    audited++;
    if (n->is_leaf) {
      const auto* leaf = static_cast<const Leaf*>(n);
      for (const LeafEntry& e : leaf->entries) {
        VBT_ASSIGN_OR_RETURN(Digest td, recoverer->Recover(e.tuple_sig));
        if (!(td == e.tuple_digest)) {
          return Status::VerificationFailure(
              "tuple " + std::to_string(e.key) + " signature does not match");
        }
        audited++;
      }
    } else {
      for (const auto& c : static_cast<const Internal*>(n)->children) {
        stack.push_back(c.get());
      }
    }
  }
  return audited;
}

Status VBTree::CheckStructureRec(const Node* node, std::optional<int64_t> lo,
                                 std::optional<int64_t> hi, int depth,
                                 int* leaf_depth) const {
  auto in_bounds = [&](int64_t k) {
    if (lo.has_value() && k < *lo) return false;
    if (hi.has_value() && k >= *hi) return false;
    return true;
  };
  if (node->is_leaf) {
    const auto* leaf = static_cast<const Leaf*>(node);
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at differing depths");
    }
    for (size_t i = 0; i < leaf->entries.size(); ++i) {
      if (i > 0 && leaf->entries[i - 1].key >= leaf->entries[i].key) {
        return Status::Corruption("leaf keys out of order");
      }
      if (!in_bounds(leaf->entries[i].key)) {
        return Status::Corruption("leaf key violates separator bounds");
      }
    }
    return Status::OK();
  }
  const auto* in = static_cast<const Internal*>(node);
  if (in->children.size() != in->keys.size() + 1) {
    return Status::Corruption("internal child/key count mismatch");
  }
  for (size_t i = 0; i < in->keys.size(); ++i) {
    if (i > 0 && in->keys[i - 1] >= in->keys[i]) {
      return Status::Corruption("internal keys out of order");
    }
    if (!in_bounds(in->keys[i])) {
      return Status::Corruption("separator violates parent bounds");
    }
  }
  for (size_t i = 0; i < in->children.size(); ++i) {
    std::optional<int64_t> clo = (i == 0) ? lo : std::optional(in->keys[i - 1]);
    std::optional<int64_t> chi =
        (i == in->keys.size()) ? hi : std::optional(in->keys[i]);
    VBT_RETURN_NOT_OK(CheckStructureRec(in->children[i].get(), clo, chi,
                                        depth + 1, leaf_depth));
  }
  return Status::OK();
}

Status VBTree::CheckStructure() const {
  std::shared_lock latch(latch_);
  int leaf_depth = -1;
  return CheckStructureRec(root_.get(), std::nullopt, std::nullopt, 0,
                           &leaf_depth);
}

std::vector<int64_t> VBTree::AllKeys() const {
  std::shared_lock latch(latch_);
  std::vector<int64_t> keys;
  const Node* n = root_.get();
  while (!n->is_leaf) n = static_cast<const Internal*>(n)->children[0].get();
  for (const Leaf* leaf = static_cast<const Leaf*>(n); leaf != nullptr;
       leaf = leaf->next) {
    for (const LeafEntry& e : leaf->entries) keys.push_back(e.key);
  }
  return keys;
}

std::vector<int64_t> VBTree::KeysInRange(int64_t lo, int64_t hi) const {
  std::shared_lock latch(latch_);
  std::vector<int64_t> keys;
  const Node* n = root_.get();
  while (!n->is_leaf) {
    const auto* in = static_cast<const Internal*>(n);
    n = in->children[in->ChildIndex(lo)].get();
  }
  for (const Leaf* leaf = static_cast<const Leaf*>(n); leaf != nullptr;
       leaf = leaf->next) {
    for (const LeafEntry& e : leaf->entries) {
      if (e.key < lo) continue;
      if (e.key > hi) return keys;
      keys.push_back(e.key);
    }
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Serialization (distribution to edge servers).
// ---------------------------------------------------------------------------

void VBTree::SerializeNode(const Node* node, ByteWriter* w) const {
  w->PutU8(node->is_leaf ? 1 : 0);
  w->PutVarint(node->id);
  w->PutBytes(node->digest.AsSlice());
  w->PutLengthPrefixed(Slice(node->sig.data(), node->sig.size()));
  if (node->is_leaf) {
    const auto* leaf = static_cast<const Leaf*>(node);
    w->PutVarint(leaf->entries.size());
    for (const LeafEntry& e : leaf->entries) {
      w->PutI64(e.key);
      w->PutU32(static_cast<uint32_t>(e.rid.page_id));
      w->PutU16(e.rid.slot);
      w->PutBytes(e.tuple_digest.AsSlice());
      w->PutLengthPrefixed(Slice(e.tuple_sig.data(), e.tuple_sig.size()));
      w->PutVarint(e.attr_sigs.size());
      for (const Signature& s : e.attr_sigs) {
        w->PutLengthPrefixed(Slice(s.data(), s.size()));
      }
    }
  } else {
    const auto* in = static_cast<const Internal*>(node);
    w->PutVarint(in->children.size());
    for (int64_t k : in->keys) w->PutI64(k);
    for (const auto& c : in->children) SerializeNode(c.get(), w);
  }
}

void VBTree::SerializeTo(ByteWriter* w) const {
  std::shared_lock latch(latch_);
  w->PutU32(kTreeMagic);
  w->PutString(ds_.db_name());
  w->PutString(ds_.table_name());
  ds_.schema().Serialize(w);
  w->PutU8(static_cast<uint8_t>(ds_.hash_algorithm()));
  w->PutU8(static_cast<uint8_t>(opts_.modulus_bits));
  w->PutU8(static_cast<uint8_t>(opts_.update_strategy));
  w->PutU32(opts_.key_version);
  w->PutU32(static_cast<uint32_t>(opts_.config.max_internal));
  w->PutU32(static_cast<uint32_t>(opts_.config.max_leaf));
  w->PutVarint(size_);
  w->PutVarint(version_);
  SerializeNode(root_.get(), w);
}

Result<std::unique_ptr<VBTree::Node>> VBTree::DeserializeNode(
    ByteReader* r, const Schema& schema, int depth, std::vector<Leaf*>* leaves,
    uint64_t* max_id) {
  if (depth > 64) return Status::Corruption("tree too deep");
  VBT_ASSIGN_OR_RETURN(uint8_t is_leaf, r->ReadU8());
  VBT_ASSIGN_OR_RETURN(uint64_t id, r->ReadVarint());
  VBT_ASSIGN_OR_RETURN(Slice digest_bytes, r->ReadBytes(kDigestLen));
  Digest digest;
  std::memcpy(digest.bytes.data(), digest_bytes.data(), kDigestLen);
  VBT_ASSIGN_OR_RETURN(Slice sig_bytes, r->ReadLengthPrefixed());
  Signature sig(sig_bytes.data(), sig_bytes.data() + sig_bytes.size());
  *max_id = std::max(*max_id, id);

  if (is_leaf != 0) {
    auto leaf = std::make_unique<Leaf>();
    leaf->id = id;
    leaf->digest = digest;
    leaf->sig = std::move(sig);
    VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
    leaf->entries.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      LeafEntry e;
      VBT_ASSIGN_OR_RETURN(e.key, r->ReadI64());
      VBT_ASSIGN_OR_RETURN(uint32_t page, r->ReadU32());
      e.rid.page_id = static_cast<int32_t>(page);
      VBT_ASSIGN_OR_RETURN(e.rid.slot, r->ReadU16());
      VBT_ASSIGN_OR_RETURN(Slice td, r->ReadBytes(kDigestLen));
      std::memcpy(e.tuple_digest.bytes.data(), td.data(), kDigestLen);
      VBT_ASSIGN_OR_RETURN(Slice ts, r->ReadLengthPrefixed());
      e.tuple_sig.assign(ts.data(), ts.data() + ts.size());
      VBT_ASSIGN_OR_RETURN(uint64_t na, r->ReadCount());
      if (na != schema.num_columns()) {
        return Status::Corruption("attribute signature count mismatch");
      }
      e.attr_sigs.reserve(na);
      for (uint64_t a = 0; a < na; ++a) {
        VBT_ASSIGN_OR_RETURN(Slice as, r->ReadLengthPrefixed());
        e.attr_sigs.emplace_back(as.data(), as.data() + as.size());
      }
      leaf->entries.push_back(std::move(e));
    }
    leaves->push_back(leaf.get());
    return std::unique_ptr<Node>(std::move(leaf));
  }

  auto in = std::make_unique<Internal>();
  in->id = id;
  in->digest = digest;
  in->sig = std::move(sig);
  VBT_ASSIGN_OR_RETURN(uint64_t nc, r->ReadCount());
  if (nc == 0) return Status::Corruption("internal node without children");
  in->keys.reserve(nc - 1);
  for (uint64_t i = 0; i + 1 < nc; ++i) {
    VBT_ASSIGN_OR_RETURN(int64_t k, r->ReadI64());
    in->keys.push_back(k);
  }
  in->children.reserve(nc);
  for (uint64_t i = 0; i < nc; ++i) {
    VBT_ASSIGN_OR_RETURN(
        std::unique_ptr<Node> child,
        DeserializeNode(r, schema, depth + 1, leaves, max_id));
    in->children.push_back(std::move(child));
  }
  return std::unique_ptr<Node>(std::move(in));
}

Result<std::unique_ptr<VBTree>> VBTree::Deserialize(ByteReader* r,
                                                    Signer* signer,
                                                    LockManager* lock_manager) {
  VBT_ASSIGN_OR_RETURN(uint32_t magic, r->ReadU32());
  if (magic != kTreeMagic) return Status::Corruption("bad VB-tree magic");
  VBT_ASSIGN_OR_RETURN(std::string db, r->ReadString());
  VBT_ASSIGN_OR_RETURN(std::string table, r->ReadString());
  VBT_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(r));
  VBT_ASSIGN_OR_RETURN(uint8_t algo, r->ReadU8());
  VBT_ASSIGN_OR_RETURN(uint8_t modulus_bits, r->ReadU8());
  VBT_ASSIGN_OR_RETURN(uint8_t strategy, r->ReadU8());
  // All header fields come from an untrusted stream: validate before use.
  if (algo > static_cast<uint8_t>(HashAlgorithm::kMd5)) {
    return Status::Corruption("bad hash algorithm");
  }
  if (modulus_bits < 8 || modulus_bits > 128) {
    return Status::Corruption("bad modulus bits");
  }
  if (strategy > static_cast<uint8_t>(DigestUpdateStrategy::kIncremental)) {
    return Status::Corruption("bad digest update strategy");
  }
  VBTreeOptions opts;
  opts.hash_algo = static_cast<HashAlgorithm>(algo);
  opts.modulus_bits = modulus_bits;
  opts.update_strategy = static_cast<DigestUpdateStrategy>(strategy);
  VBT_ASSIGN_OR_RETURN(opts.key_version, r->ReadU32());
  VBT_ASSIGN_OR_RETURN(uint32_t max_internal, r->ReadU32());
  VBT_ASSIGN_OR_RETURN(uint32_t max_leaf, r->ReadU32());
  constexpr uint32_t kMaxFanOut = 1u << 20;
  if (max_internal < 2 || max_internal > kMaxFanOut || max_leaf < 1 ||
      max_leaf > kMaxFanOut) {
    return Status::Corruption("bad node capacity");
  }
  opts.config.max_internal = static_cast<int>(max_internal);
  opts.config.max_leaf = static_cast<int>(max_leaf);
  VBT_ASSIGN_OR_RETURN(uint64_t size, r->ReadVarint());
  VBT_ASSIGN_OR_RETURN(uint64_t version, r->ReadVarint());

  DigestSchema ds(db, table, schema, opts.hash_algo, opts.modulus_bits);
  auto tree = std::unique_ptr<VBTree>(
      new VBTree(std::move(ds), opts, signer, lock_manager));

  std::vector<Leaf*> leaves;
  uint64_t max_id = 0;
  VBT_ASSIGN_OR_RETURN(tree->root_,
                       DeserializeNode(r, schema, 0, &leaves, &max_id));
  // Rebuild the leaf chain (serialization is pre-order, leaves in order).
  for (size_t i = 0; i < leaves.size(); ++i) {
    leaves[i]->prev = (i == 0) ? nullptr : leaves[i - 1];
    leaves[i]->next = (i + 1 == leaves.size()) ? nullptr : leaves[i + 1];
  }
  tree->size_ = size;
  tree->version_ = version;
  tree->next_node_id_ = max_id + 1;
  tree->InitExponents(tree->root_.get());
  return tree;
}

void VBTree::InitExponents(Node* node) {
  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    std::vector<Digest> ds;
    ds.reserve(leaf->entries.size());
    for (const LeafEntry& e : leaf->entries) ds.push_back(e.tuple_digest);
    leaf->exponent = ds_.ghash().ExponentProduct(ds);
    return;
  }
  auto* in = static_cast<Internal*>(node);
  std::vector<Digest> ds;
  ds.reserve(in->children.size());
  for (auto& c : in->children) {
    InitExponents(c.get());
    ds.push_back(c->digest);
  }
  in->exponent = ds_.ghash().ExponentProduct(ds);
}

}  // namespace vbtree
