#include "storage/buffer_pool.h"

namespace vbtree {

BufferPool::BufferPool(size_t pool_size, DiskManager* disk) : disk_(disk) {
  frames_.reserve(pool_size);
  free_frames_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(pool_size - 1 - i);
  }
}

void BufferPool::TouchLru(size_t frame_id) {
  RemoveFromLru(frame_id);
  lru_.push_back(frame_id);
  lru_pos_[frame_id] = std::prev(lru_.end());
}

void BufferPool::RemoveFromLru(size_t frame_id) {
  auto it = lru_pos_.find(frame_id);
  if (it != lru_pos_.end()) {
    lru_.erase(it->second);
    lru_pos_.erase(it);
  }
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (lru_.empty()) {
    return Status::OutOfRange("buffer pool exhausted: all pages pinned");
  }
  size_t f = lru_.front();
  lru_.pop_front();
  lru_pos_.erase(f);
  Page* victim = frames_[f].get();
  if (victim->is_dirty()) {
    VBT_RETURN_NOT_OK(disk_->WritePage(victim->page_id(), victim->data()));
  }
  page_table_.erase(victim->page_id());
  victim->Reset();
  return f;
}

Result<Page*> BufferPool::FetchPage(page_id_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    hits_++;
    Page* p = frames_[it->second].get();
    if (p->pin_count_ == 0) RemoveFromLru(it->second);
    p->pin_count_++;
    return p;
  }
  misses_++;
  VBT_ASSIGN_OR_RETURN(size_t f, GetVictimFrame());
  Page* p = frames_[f].get();
  VBT_RETURN_NOT_OK(disk_->ReadPage(page_id, p->data()));
  p->page_id_ = page_id;
  p->pin_count_ = 1;
  p->is_dirty_ = false;
  page_table_[page_id] = f;
  return p;
}

Result<Page*> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mu_);
  VBT_ASSIGN_OR_RETURN(page_id_t page_id, disk_->AllocatePage());
  VBT_ASSIGN_OR_RETURN(size_t f, GetVictimFrame());
  Page* p = frames_[f].get();
  p->Reset();
  p->page_id_ = page_id;
  p->pin_count_ = 1;
  p->is_dirty_ = true;
  page_table_[page_id] = f;
  return p;
}

Status BufferPool::UnpinPage(page_id_t page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("unpin of non-resident page");
  }
  Page* p = frames_[it->second].get();
  if (p->pin_count_ <= 0) {
    return Status::InvalidArgument("unpin of unpinned page");
  }
  p->is_dirty_ = p->is_dirty_ || dirty;
  p->pin_count_--;
  if (p->pin_count_ == 0) TouchLru(it->second);
  return Status::OK();
}

Status BufferPool::FlushPage(page_id_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    return Status::NotFound("flush of non-resident page");
  }
  Page* p = frames_[it->second].get();
  VBT_RETURN_NOT_OK(disk_->WritePage(page_id, p->data()));
  p->is_dirty_ = false;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [page_id, frame_id] : page_table_) {
    Page* p = frames_[frame_id].get();
    if (p->is_dirty_) {
      VBT_RETURN_NOT_OK(disk_->WritePage(page_id, p->data()));
      p->is_dirty_ = false;
    }
  }
  return Status::OK();
}

}  // namespace vbtree
