#ifndef VBTREE_STORAGE_PAGE_H_
#define VBTREE_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

#include "common/config.h"

namespace vbtree {

/// One in-memory frame holding a disk page (|B| = 4 KB, paper Table 1).
/// Pin/dirty bookkeeping is managed by the BufferPool; Page itself is a
/// dumb aligned buffer plus identity.
class Page {
 public:
  Page() { Reset(); }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }

  page_id_t page_id() const { return page_id_; }
  int pin_count() const { return pin_count_; }
  bool is_dirty() const { return is_dirty_; }

  void Reset() {
    std::memset(data_, 0, kPageSize);
    page_id_ = kInvalidPageId;
    pin_count_ = 0;
    is_dirty_ = false;
  }

 private:
  friend class BufferPool;

  alignas(64) uint8_t data_[kPageSize];
  page_id_t page_id_ = kInvalidPageId;
  int pin_count_ = 0;
  bool is_dirty_ = false;
};

/// Slotted-page layout over a raw 4 KB buffer:
///
///   [u16 num_slots][u16 free_off] [slot 0][slot 1]... ...data grows down]
///   slot i = [u16 offset][u16 length]; length == 0 marks a deleted slot.
///
/// Records are written from the end of the page backwards; the slot array
/// grows forward. This is the classic heap-file page used by the
/// TableHeap.
class SlottedPageView {
 public:
  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kSlotSize = 4;

  explicit SlottedPageView(uint8_t* data) : d_(data) {}

  void Init() {
    SetU16(0, 0);                                  // num_slots
    SetU16(2, static_cast<uint16_t>(kPageSize));   // free_off (end of data)
  }

  uint16_t num_slots() const { return GetU16(0); }
  uint16_t free_off() const { return GetU16(2); }

  /// Free bytes available for one more record plus its slot entry.
  size_t FreeSpace() const {
    size_t slots_end = kHeaderSize + num_slots() * kSlotSize;
    return free_off() > slots_end ? free_off() - slots_end : 0;
  }

  bool HasRoomFor(size_t record_len) const {
    return FreeSpace() >= record_len + kSlotSize;
  }

  /// Appends a record, returns its slot number. Caller must check
  /// HasRoomFor first.
  uint16_t Insert(const uint8_t* rec, uint16_t len) {
    uint16_t slot = num_slots();
    uint16_t off = static_cast<uint16_t>(free_off() - len);
    std::memcpy(d_ + off, rec, len);
    SetU16(2, off);
    SetSlot(slot, off, len);
    SetU16(0, static_cast<uint16_t>(slot + 1));
    return slot;
  }

  /// Record bytes for `slot`, or nullptr if deleted/out of range.
  const uint8_t* Get(uint16_t slot, uint16_t* len) const {
    if (slot >= num_slots()) return nullptr;
    uint16_t off = GetU16(kHeaderSize + slot * kSlotSize);
    uint16_t l = GetU16(kHeaderSize + slot * kSlotSize + 2);
    if (l == 0) return nullptr;
    *len = l;
    return d_ + off;
  }

  /// Tombstones a slot (space is not reclaimed until compaction).
  /// Returns false for out-of-range or already-deleted slots.
  bool Delete(uint16_t slot) {
    if (slot >= num_slots()) return false;
    if (GetU16(kHeaderSize + slot * kSlotSize + 2) == 0) return false;
    SetU16(kHeaderSize + slot * kSlotSize + 2, 0);
    return true;
  }

  /// In-place overwrite when the new record is not longer than the old.
  bool UpdateInPlace(uint16_t slot, const uint8_t* rec, uint16_t len) {
    if (slot >= num_slots()) return false;
    uint16_t off = GetU16(kHeaderSize + slot * kSlotSize);
    uint16_t old_len = GetU16(kHeaderSize + slot * kSlotSize + 2);
    if (old_len == 0 || len > old_len) return false;
    std::memcpy(d_ + off, rec, len);
    SetU16(kHeaderSize + slot * kSlotSize + 2, len);
    return true;
  }

 private:
  uint16_t GetU16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, d_ + off, 2);
    return v;
  }
  void SetU16(size_t off, uint16_t v) { std::memcpy(d_ + off, &v, 2); }
  void SetSlot(uint16_t slot, uint16_t off, uint16_t len) {
    SetU16(kHeaderSize + slot * kSlotSize, off);
    SetU16(kHeaderSize + slot * kSlotSize + 2, len);
  }

  uint8_t* d_;
};

}  // namespace vbtree

#endif  // VBTREE_STORAGE_PAGE_H_
