#include "storage/disk_manager.h"

#include <cstring>

namespace vbtree {

Status InMemoryDiskManager::ReadPage(page_id_t page_id, uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
    return Status::OutOfRange("read of unallocated page");
  }
  std::memcpy(out, pages_[page_id].get(), kPageSize);
  return Status::OK();
}

Status InMemoryDiskManager::WritePage(page_id_t page_id, const uint8_t* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
    return Status::OutOfRange("write of unallocated page");
  }
  std::memcpy(pages_[page_id].get(), data, kPageSize);
  return Status::OK();
}

Result<page_id_t> InMemoryDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  auto buf = std::make_unique<uint8_t[]>(kPageSize);
  std::memset(buf.get(), 0, kPageSize);
  pages_.push_back(std::move(buf));
  return static_cast<page_id_t>(pages_.size() - 1);
}

page_id_t InMemoryDiskManager::num_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<page_id_t>(pages_.size());
}

Result<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  page_id_t pages = static_cast<page_id_t>(size / kPageSize);
  return std::unique_ptr<FileDiskManager>(new FileDiskManager(f, pages));
}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileDiskManager::ReadPage(page_id_t page_id, uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < 0 || page_id >= num_pages_) {
    return Status::OutOfRange("read of unallocated page");
  }
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) != 0 ||
      std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("page read failed");
  }
  return Status::OK();
}

Status FileDiskManager::WritePage(page_id_t page_id, const uint8_t* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_id < 0 || page_id >= num_pages_) {
    return Status::OutOfRange("write of unallocated page");
  }
  if (std::fseek(file_, static_cast<long>(page_id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("page write failed");
  }
  std::fflush(file_);
  return Status::OK();
}

Result<page_id_t> FileDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  uint8_t zero[kPageSize];
  std::memset(zero, 0, kPageSize);
  if (std::fseek(file_, static_cast<long>(num_pages_) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(zero, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("page allocation failed");
  }
  return num_pages_++;
}

page_id_t FileDiskManager::num_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_pages_;
}

}  // namespace vbtree
