#ifndef VBTREE_STORAGE_DISK_MANAGER_H_
#define VBTREE_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/result.h"

namespace vbtree {

/// Page-granular storage backend for the buffer pool.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  virtual Status ReadPage(page_id_t page_id, uint8_t* out) = 0;
  virtual Status WritePage(page_id_t page_id, const uint8_t* data) = 0;

  /// Extends the backing store by one page and returns its id.
  virtual Result<page_id_t> AllocatePage() = 0;

  virtual page_id_t num_pages() const = 0;
};

/// Heap-backed storage; the default for tests, benches and the in-process
/// edge-computing simulation (the paper's experiments are I/O-shape, not
/// device, sensitive).
class InMemoryDiskManager : public DiskManager {
 public:
  Status ReadPage(page_id_t page_id, uint8_t* out) override;
  Status WritePage(page_id_t page_id, const uint8_t* data) override;
  Result<page_id_t> AllocatePage() override;
  page_id_t num_pages() const override;

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
};

/// File-backed storage for persistence of the central server's database.
class FileDiskManager : public DiskManager {
 public:
  /// Opens (creating if needed) the single database file.
  static Result<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);
  ~FileDiskManager() override;

  Status ReadPage(page_id_t page_id, uint8_t* out) override;
  Status WritePage(page_id_t page_id, const uint8_t* data) override;
  Result<page_id_t> AllocatePage() override;
  page_id_t num_pages() const override;

 private:
  FileDiskManager(std::FILE* f, page_id_t num_pages)
      : file_(f), num_pages_(num_pages) {}

  mutable std::mutex mu_;
  std::FILE* file_;
  page_id_t num_pages_;
};

}  // namespace vbtree

#endif  // VBTREE_STORAGE_DISK_MANAGER_H_
