#ifndef VBTREE_STORAGE_BUFFER_POOL_H_
#define VBTREE_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace vbtree {

/// Fixed-size page cache with LRU replacement of unpinned frames.
///
/// Contract: every FetchPage/NewPage must be paired with UnpinPage. Pinned
/// pages are never evicted; fetching fails with kOutOfRange if every frame
/// is pinned.
class BufferPool {
 public:
  BufferPool(size_t pool_size, DiskManager* disk);

  /// Pins and returns the frame holding `page_id`, reading it from disk on
  /// a miss.
  Result<Page*> FetchPage(page_id_t page_id);

  /// Allocates a fresh page on disk and pins an (initialized, zeroed)
  /// frame for it.
  Result<Page*> NewPage();

  /// Drops one pin; `dirty` marks the frame for write-back on eviction.
  Status UnpinPage(page_id_t page_id, bool dirty);

  Status FlushPage(page_id_t page_id);
  Status FlushAll();

  size_t pool_size() const { return frames_.size(); }
  uint64_t hit_count() const { return hits_; }
  uint64_t miss_count() const { return misses_; }

 private:
  /// Returns a victim frame id, evicting its current page if necessary.
  Result<size_t> GetVictimFrame();
  void TouchLru(size_t frame_id);
  void RemoveFromLru(size_t frame_id);

  std::mutex mu_;
  DiskManager* disk_;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<page_id_t, size_t> page_table_;
  /// Unpinned frames in LRU order (front = coldest).
  std::list<size_t> lru_;
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  std::vector<size_t> free_frames_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace vbtree

#endif  // VBTREE_STORAGE_BUFFER_POOL_H_
