#ifndef VBTREE_STORAGE_TABLE_HEAP_H_
#define VBTREE_STORAGE_TABLE_HEAP_H_

#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "common/result.h"
#include "storage/buffer_pool.h"

namespace vbtree {

/// Heap file of tuples over slotted pages. The base tables of the central
/// server and the replicas at edge servers are TableHeaps; the VB-tree
/// leaf entries point into one via Rids.
class TableHeap {
 public:
  /// Creates an empty heap (allocates the first page).
  static Result<std::unique_ptr<TableHeap>> Create(BufferPool* pool,
                                                   Schema schema);

  const Schema& schema() const { return schema_; }

  /// Appends a tuple; returns its Rid.
  Result<Rid> Insert(const Tuple& tuple);

  Result<Tuple> Get(const Rid& rid) const;

  /// Tombstones the tuple.
  Status Delete(const Rid& rid);

  /// Overwrites in place when possible, otherwise relocates; returns the
  /// (possibly new) Rid.
  Result<Rid> Update(const Rid& rid, const Tuple& tuple);

  size_t tuple_count() const { return tuple_count_; }
  const std::vector<page_id_t>& pages() const { return pages_; }

  /// Forward scan over live tuples in storage order.
  class Iterator {
   public:
    Iterator(const TableHeap* heap, size_t page_idx, uint16_t slot)
        : heap_(heap), page_idx_(page_idx), slot_(slot) {
      SkipToLive();
    }

    bool Valid() const { return page_idx_ < heap_->pages_.size(); }
    Rid rid() const {
      return Rid{heap_->pages_[page_idx_], slot_};
    }
    Result<Tuple> Get() const { return heap_->Get(rid()); }
    void Next() {
      slot_++;
      SkipToLive();
    }

   private:
    void SkipToLive();

    const TableHeap* heap_;
    size_t page_idx_;
    uint16_t slot_;
  };

  Iterator Begin() const { return Iterator(this, 0, 0); }

 private:
  TableHeap(BufferPool* pool, Schema schema)
      : pool_(pool), schema_(std::move(schema)) {}

  BufferPool* pool_;
  Schema schema_;
  std::vector<page_id_t> pages_;
  size_t tuple_count_ = 0;
};

}  // namespace vbtree

#endif  // VBTREE_STORAGE_TABLE_HEAP_H_
