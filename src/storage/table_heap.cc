#include "storage/table_heap.h"

#include "common/serde.h"
#include "storage/page.h"

namespace vbtree {

Result<std::unique_ptr<TableHeap>> TableHeap::Create(BufferPool* pool,
                                                     Schema schema) {
  if (!schema.HasValidKey()) {
    return Status::InvalidArgument("table schema must have an INT64 key");
  }
  auto heap = std::unique_ptr<TableHeap>(new TableHeap(pool, std::move(schema)));
  VBT_ASSIGN_OR_RETURN(Page * p, pool->NewPage());
  SlottedPageView view(p->data());
  view.Init();
  heap->pages_.push_back(p->page_id());
  VBT_RETURN_NOT_OK(pool->UnpinPage(p->page_id(), /*dirty=*/true));
  return heap;
}

Result<Rid> TableHeap::Insert(const Tuple& tuple) {
  ByteWriter w(64);
  tuple.Serialize(&w);
  if (w.size() + SlottedPageView::kSlotSize >
      kPageSize - SlottedPageView::kHeaderSize) {
    return Status::InvalidArgument("tuple larger than a page");
  }

  page_id_t last = pages_.back();
  VBT_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(last));
  SlottedPageView view(p->data());
  if (!view.HasRoomFor(w.size())) {
    VBT_RETURN_NOT_OK(pool_->UnpinPage(last, /*dirty=*/false));
    VBT_ASSIGN_OR_RETURN(p, pool_->NewPage());
    SlottedPageView fresh(p->data());
    fresh.Init();
    pages_.push_back(p->page_id());
    view = SlottedPageView(p->data());
  }
  uint16_t slot =
      view.Insert(w.buffer().data(), static_cast<uint16_t>(w.size()));
  Rid rid{p->page_id(), slot};
  VBT_RETURN_NOT_OK(pool_->UnpinPage(p->page_id(), /*dirty=*/true));
  tuple_count_++;
  return rid;
}

Result<Tuple> TableHeap::Get(const Rid& rid) const {
  VBT_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(rid.page_id));
  SlottedPageView view(p->data());
  uint16_t len = 0;
  const uint8_t* rec = view.Get(rid.slot, &len);
  if (rec == nullptr) {
    (void)pool_->UnpinPage(rid.page_id, false);
    return Status::NotFound("no live tuple at rid");
  }
  ByteReader r(Slice(rec, len));
  Result<Tuple> tuple = Tuple::Deserialize(&r, schema_);
  VBT_RETURN_NOT_OK(pool_->UnpinPage(rid.page_id, false));
  return tuple;
}

Status TableHeap::Delete(const Rid& rid) {
  VBT_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(rid.page_id));
  SlottedPageView view(p->data());
  bool ok = view.Delete(rid.slot);
  VBT_RETURN_NOT_OK(pool_->UnpinPage(rid.page_id, ok));
  if (!ok) return Status::NotFound("delete of missing tuple");
  tuple_count_--;
  return Status::OK();
}

Result<Rid> TableHeap::Update(const Rid& rid, const Tuple& tuple) {
  ByteWriter w(64);
  tuple.Serialize(&w);
  {
    VBT_ASSIGN_OR_RETURN(Page * p, pool_->FetchPage(rid.page_id));
    SlottedPageView view(p->data());
    bool ok = view.UpdateInPlace(rid.slot, w.buffer().data(),
                                 static_cast<uint16_t>(w.size()));
    VBT_RETURN_NOT_OK(pool_->UnpinPage(rid.page_id, ok));
    if (ok) return rid;
  }
  // Record grew: relocate.
  VBT_RETURN_NOT_OK(Delete(rid));
  return Insert(tuple);
}

void TableHeap::Iterator::SkipToLive() {
  while (page_idx_ < heap_->pages_.size()) {
    auto page_or = heap_->pool_->FetchPage(heap_->pages_[page_idx_]);
    if (!page_or.ok()) {
      page_idx_ = heap_->pages_.size();
      return;
    }
    Page* p = page_or.ValueOrDie();
    SlottedPageView view(p->data());
    uint16_t n = view.num_slots();
    while (slot_ < n) {
      uint16_t len = 0;
      if (view.Get(slot_, &len) != nullptr) {
        (void)heap_->pool_->UnpinPage(p->page_id(), false);
        return;
      }
      slot_++;
    }
    (void)heap_->pool_->UnpinPage(p->page_id(), false);
    page_idx_++;
    slot_ = 0;
  }
}

}  // namespace vbtree
