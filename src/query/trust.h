#ifndef VBTREE_QUERY_TRUST_H_
#define VBTREE_QUERY_TRUST_H_

#include <cstdint>
#include <string_view>

namespace vbtree {

/// Per-query trust mode (docs/TRUST_MODEL.md): how the client schedules
/// authentication relative to answer delivery. The verification work and
/// its soundness are identical in every mode — WedgeChain-style lazy
/// certification is a scheduling change, not a trust change.
enum class TrustMode : uint8_t {
  /// Synchronous verify: the answer is authenticated before the caller
  /// sees it (the paper's client contract; the default).
  kCertified = 0,
  /// Answer delivered immediately with `pending_audit` set; a deferred
  /// ticket (rows + VO bytes + signature-pool refs + replica version) is
  /// drained by a background auditor, which raises a tamper alarm
  /// carrying the offending VO if the deferred check fails. Detection
  /// window = audit lag.
  kLazy = 1,
  /// Like kLazy, but the auditor verifies only a configured fraction of
  /// tickets, drawn from a seeded deterministic RNG — telemetry-grade
  /// reads where statistical detection suffices.
  kSampled = 2,
};

inline const char* TrustModeName(TrustMode m) {
  switch (m) {
    case TrustMode::kCertified:
      return "certified";
    case TrustMode::kLazy:
      return "lazy";
    case TrustMode::kSampled:
      return "sampled";
  }
  return "unknown";
}

/// Parses a mode name (as spelled by TrustModeName); returns false on an
/// unknown spelling. Used by the bench/CLI `--trust-mode` knob.
inline bool ParseTrustMode(std::string_view name, TrustMode* out) {
  if (name == "certified") {
    *out = TrustMode::kCertified;
  } else if (name == "lazy") {
    *out = TrustMode::kLazy;
  } else if (name == "sampled") {
    *out = TrustMode::kSampled;
  } else {
    return false;
  }
  return true;
}

}  // namespace vbtree

#endif  // VBTREE_QUERY_TRUST_H_
