#ifndef VBTREE_QUERY_EXECUTOR_H_
#define VBTREE_QUERY_EXECUTOR_H_

#include "query/predicate.h"
#include "storage/table_heap.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

/// Binds a VB-tree to its tuple store (the table-heap replica at an edge
/// server) and runs select-project queries against the pair.
class Executor {
 public:
  Executor(const VBTree* tree, const TableHeap* heap)
      : tree_(tree), heap_(heap), fetcher_(FetcherFor(heap)) {}

  Result<QueryOutput> Run(const SelectQuery& query, txn_id_t txn = 0) const {
    return tree_->ExecuteSelect(query, fetcher_, txn);
  }

  /// Batched execution against the same tree/heap pair.
  Result<std::vector<QueryOutput>> RunBatch(
      std::span<const SelectQuery> queries,
      VBBatchStats* stats = nullptr) const {
    return tree_->ExecuteSelectBatch(queries, fetcher_, stats);
  }

  /// Adapts a TableHeap into the VBTree's TupleFetcher interface.
  static VBTree::TupleFetcher FetcherFor(const TableHeap* heap) {
    return [heap](const Rid& rid) { return heap->Get(rid); };
  }

 private:
  const VBTree* tree_;
  const TableHeap* heap_;
  /// Bound once at construction: Run is on the per-query hot path and
  /// must not rebuild a std::function (heap-allocating) per call.
  VBTree::TupleFetcher fetcher_;
};

}  // namespace vbtree

#endif  // VBTREE_QUERY_EXECUTOR_H_
