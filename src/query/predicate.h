#ifndef VBTREE_QUERY_PREDICATE_H_
#define VBTREE_QUERY_PREDICATE_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "catalog/tuple.h"
#include "catalog/value.h"
#include "common/serde.h"
#include "query/trust.h"

namespace vbtree {

/// Inclusive primary-key range [lo, hi] — the selection on the key of §3.3.
struct KeyRange {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();

  bool Contains(int64_t k) const { return k >= lo && k <= hi; }
  bool empty() const { return lo > hi; }
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpToString(CompareOp op);

/// A condition `column <op> operand` on a non-key attribute. Conditions
/// are conjunctive; tuples failing one become "gaps" inside the result
/// range, represented in the VO by their signed tuple digests (§3.3).
struct ColumnCondition {
  size_t col_idx = 0;
  CompareOp op = CompareOp::kEq;
  Value operand;

  bool Eval(const Value& v) const {
    int c = v.Compare(operand);
    switch (op) {
      case CompareOp::kEq:
        return c == 0;
      case CompareOp::kNe:
        return c != 0;
      case CompareOp::kLt:
        return c < 0;
      case CompareOp::kLe:
        return c <= 0;
      case CompareOp::kGt:
        return c > 0;
      case CompareOp::kGe:
        return c >= 0;
    }
    return false;
  }

  bool Eval(const Tuple& t) const { return Eval(t.value(col_idx)); }
};

/// A select-project query over one table (or materialized join view):
///
///   SELECT <projection> FROM <table>
///   WHERE key BETWEEN range.lo AND range.hi [AND conditions...]
///
/// `projection` lists column indices in ascending order and must include
/// column 0 (the key): the verifier needs each result tuple's key to
/// recompute attribute-digest preimages (formula (1) hashes the key into
/// every attribute digest). An empty projection means all columns.
struct SelectQuery {
  std::string table;
  KeyRange range;
  std::vector<ColumnCondition> conditions;
  std::vector<size_t> projection;

  bool MatchesConditions(const Tuple& t) const {
    for (const ColumnCondition& c : conditions) {
      if (!c.Eval(t)) return false;
    }
    return true;
  }

  /// Normalized projection: sorted, deduplicated, containing column 0;
  /// empty stays empty (= all columns).
  void NormalizeProjection() {
    if (projection.empty()) return;
    projection.push_back(0);
    std::sort(projection.begin(), projection.end());
    projection.erase(std::unique(projection.begin(), projection.end()),
                     projection.end());
  }

  /// Columns of an m-column schema that the projection filters out.
  std::vector<size_t> FilteredColumns(size_t num_columns) const {
    std::vector<size_t> out;
    if (projection.empty()) return out;
    size_t pi = 0;
    for (size_t c = 0; c < num_columns; ++c) {
      if (pi < projection.size() && projection[pi] == c) {
        pi++;
      } else {
        out.push_back(c);
      }
    }
    return out;
  }
};

/// N select-project predicates over ONE table (or materialized join
/// view), shipped to an edge server as a unit: the edge answers the whole
/// batch with latch-free shared traversals converging on one validated
/// tree version, and one coalesced response carrying a VO per query.
struct QueryBatch {
  std::string table;
  /// Each entry's `table` field may be empty — the batch table applies.
  /// A non-empty entry table must match `table`.
  std::vector<SelectQuery> queries;
  /// How the client schedules authentication for this batch (trust.h).
  /// Rides the request wire so the edge's QueryService can account lazy
  /// traffic; execution and the response are identical in every mode.
  TrustMode trust_mode = TrustMode::kCertified;
};

/// One result row: the values of the projected columns, in projection
/// order (all columns when the projection is empty).
struct ResultRow {
  int64_t key = 0;
  std::vector<Value> values;

  size_t SerializedSize() const {
    size_t n = 0;
    for (const Value& v : values) n += v.SerializedSize();
    return n;
  }
};

}  // namespace vbtree

#endif  // VBTREE_QUERY_PREDICATE_H_
