#include "query/join_view.h"

#include <algorithm>

namespace vbtree {

namespace {

Schema MakeViewSchema(const Schema& left, const Schema& right) {
  std::vector<Column> cols;
  cols.reserve(1 + left.num_columns() + right.num_columns());
  cols.emplace_back("view_id", TypeId::kInt64);
  for (const Column& c : left.columns()) {
    cols.emplace_back("l_" + c.name, c.type);
  }
  for (const Column& c : right.columns()) {
    cols.emplace_back("r_" + c.name, c.type);
  }
  return Schema(std::move(cols));
}

}  // namespace

Tuple JoinView::MakeViewTuple(int64_t view_id, const Tuple& left,
                              const Tuple& right) const {
  std::vector<Value> values;
  values.reserve(schema_.num_columns());
  values.push_back(Value::Int(view_id));
  for (const Value& v : left.values()) values.push_back(v);
  for (const Value& v : right.values()) values.push_back(v);
  return Tuple(std::move(values));
}

Result<std::unique_ptr<JoinView>> JoinView::Materialize(
    const JoinSpec& spec, const std::string& db_name,
    const Schema& left_schema, const Schema& right_schema,
    std::span<const Tuple> left_rows, std::span<const Tuple> right_rows,
    BufferPool* pool, Signer* signer, const VBTreeOptions& opts) {
  if (spec.left_col >= left_schema.num_columns() ||
      spec.right_col >= right_schema.num_columns()) {
    return Status::InvalidArgument("join column out of range");
  }
  Schema schema = MakeViewSchema(left_schema, right_schema);
  auto view =
      std::unique_ptr<JoinView>(new JoinView(spec, schema));
  VBT_ASSIGN_OR_RETURN(view->heap_, TableHeap::Create(pool, schema));
  DigestSchema ds(db_name, spec.view_name, schema, opts.hash_algo,
                  opts.modulus_bits);
  view->tree_ = std::make_unique<VBTree>(std::move(ds), opts, signer);

  // Hash join on the right side, then emit pairs ordered by
  // (left key, right key) so view ids are deterministic.
  std::unordered_multimap<std::string, const Tuple*> right_by_join_key;
  for (const Tuple& r : right_rows) {
    ByteWriter w;
    r.value(spec.right_col).Serialize(&w);
    right_by_join_key.emplace(
        std::string(reinterpret_cast<const char*>(w.buffer().data()),
                    w.size()),
        &r);
  }
  struct Pair {
    const Tuple* left;
    const Tuple* right;
  };
  std::vector<Pair> pairs;
  for (const Tuple& l : left_rows) {
    ByteWriter w;
    l.value(spec.left_col).Serialize(&w);
    std::string jk(reinterpret_cast<const char*>(w.buffer().data()), w.size());
    auto [begin, end] = right_by_join_key.equal_range(jk);
    for (auto it = begin; it != end; ++it) {
      pairs.push_back(Pair{&l, it->second});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.left->key() != b.left->key()) return a.left->key() < b.left->key();
    return a.right->key() < b.right->key();
  });

  std::vector<std::pair<Tuple, Rid>> rows;
  rows.reserve(pairs.size());
  for (const Pair& p : pairs) {
    int64_t id = view->next_view_id_++;
    Tuple vt = view->MakeViewTuple(id, *p.left, *p.right);
    VBT_ASSIGN_OR_RETURN(Rid rid, view->heap_->Insert(vt));
    view->left_index_.emplace(p.left->key(), id);
    view->right_index_.emplace(p.right->key(), id);
    rows.emplace_back(std::move(vt), rid);
  }
  VBT_RETURN_NOT_OK(view->tree_->BulkLoad(rows));
  view->row_count_ = rows.size();
  return view;
}

Status JoinView::AddJoinedRow(const Tuple& left, const Tuple& right) {
  if (left.value(spec_.left_col).Compare(right.value(spec_.right_col)) != 0) {
    return Status::InvalidArgument("rows do not satisfy the join condition");
  }
  int64_t id = next_view_id_++;
  Tuple vt = MakeViewTuple(id, left, right);
  VBT_ASSIGN_OR_RETURN(Rid rid, heap_->Insert(vt));
  VBT_RETURN_NOT_OK(tree_->Insert(vt, rid));
  left_index_.emplace(left.key(), id);
  right_index_.emplace(right.key(), id);
  row_count_++;
  return Status::OK();
}

Result<size_t> JoinView::RemoveByBaseKey(
    std::unordered_multimap<int64_t, int64_t>* index, int64_t base_key) {
  auto [begin, end] = index->equal_range(base_key);
  std::vector<int64_t> ids;
  for (auto it = begin; it != end; ++it) ids.push_back(it->second);
  index->erase(begin, end);
  size_t removed = 0;
  for (int64_t id : ids) {
    VBT_ASSIGN_OR_RETURN(size_t n, tree_->DeleteRange(id, id));
    removed += n;
  }
  row_count_ -= removed;
  // Note: heap rows for removed ids become unreachable (no leaf entry
  // points at them); a compaction pass could reclaim them.
  return removed;
}

Result<size_t> JoinView::RemoveByLeftKey(int64_t left_key) {
  return RemoveByBaseKey(&left_index_, left_key);
}

Result<size_t> JoinView::RemoveByRightKey(int64_t right_key) {
  return RemoveByBaseKey(&right_index_, right_key);
}

}  // namespace vbtree
