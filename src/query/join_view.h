#ifndef VBTREE_QUERY_JOIN_VIEW_H_
#define VBTREE_QUERY_JOIN_VIEW_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table_heap.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

/// Definition of an equi-join materialized view (§3.3 Join): R ⋈ S on
/// R.left_col = S.right_col. The paper's observation is that edge-side
/// queries are mostly embedded in applications and known in advance, so
/// each join is materialized and given its own VB-tree; the join result
/// is then authenticated exactly like a base table.
struct JoinSpec {
  std::string view_name;
  std::string left_table;
  std::string right_table;
  size_t left_col = 0;
  size_t right_col = 0;
};

/// A materialized equi-join view with its own table heap and VB-tree.
///
/// View schema: [view_id INT64, l_<left columns...>, r_<right columns...>].
/// The synthetic view_id key makes view rows indexable by the VB-tree;
/// rows are keyed deterministically in (left key, right key) order at
/// materialization time and appended afterwards.
///
/// Incremental maintenance (driven by the central server, which sees every
/// base-table update): AddJoinedRow on insert matches; RemoveByLeftKey /
/// RemoveByRightKey on base deletions.
class JoinView {
 public:
  static Result<std::unique_ptr<JoinView>> Materialize(
      const JoinSpec& spec, const std::string& db_name,
      const Schema& left_schema, const Schema& right_schema,
      std::span<const Tuple> left_rows, std::span<const Tuple> right_rows,
      BufferPool* pool, Signer* signer, const VBTreeOptions& opts);

  const JoinSpec& spec() const { return spec_; }
  const Schema& schema() const { return schema_; }
  const VBTree* tree() const { return tree_.get(); }
  VBTree* tree() { return tree_.get(); }
  const TableHeap* heap() const { return heap_.get(); }
  size_t row_count() const { return row_count_; }

  /// Adds the join of (left, right); both must satisfy the join condition.
  Status AddJoinedRow(const Tuple& left, const Tuple& right);

  /// Removes all view rows produced from the base row with this left-table
  /// key; returns how many were removed.
  Result<size_t> RemoveByLeftKey(int64_t left_key);
  Result<size_t> RemoveByRightKey(int64_t right_key);

 private:
  JoinView(JoinSpec spec, Schema schema)
      : spec_(std::move(spec)), schema_(std::move(schema)) {}

  /// Builds the view tuple for a matching pair.
  Tuple MakeViewTuple(int64_t view_id, const Tuple& left,
                      const Tuple& right) const;

  Result<size_t> RemoveByBaseKey(
      std::unordered_multimap<int64_t, int64_t>* index, int64_t base_key);

  JoinSpec spec_;
  Schema schema_;
  std::unique_ptr<TableHeap> heap_;
  std::unique_ptr<VBTree> tree_;
  int64_t next_view_id_ = 0;
  size_t row_count_ = 0;
  /// base key → view ids, per side, for incremental deletes.
  std::unordered_multimap<int64_t, int64_t> left_index_;
  std::unordered_multimap<int64_t, int64_t> right_index_;
};

}  // namespace vbtree

#endif  // VBTREE_QUERY_JOIN_VIEW_H_
