#ifndef VBTREE_QUERY_QUERY_SERDE_H_
#define VBTREE_QUERY_QUERY_SERDE_H_

#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/serde.h"
#include "query/predicate.h"

namespace vbtree {

/// Wire encoding of queries and result rows. Byte counts from these
/// routines are the "communication cost" the benchmark harness reports
/// (paper §4.2).
void SerializeSelectQuery(const SelectQuery& q, ByteWriter* w);
Result<SelectQuery> DeserializeSelectQuery(ByteReader* r);

/// Batched request: the table name once, then each query without its
/// (redundant) table field.
void SerializeQueryBatch(const QueryBatch& batch, ByteWriter* w);
Result<QueryBatch> DeserializeQueryBatch(ByteReader* r);

/// Rows are encoded against the schema + projection so the receiver knows
/// each value's type. `projection` empty means all columns.
void SerializeResultRows(const std::vector<ResultRow>& rows, ByteWriter* w);
Result<std::vector<ResultRow>> DeserializeResultRows(
    ByteReader* r, const Schema& schema, const std::vector<size_t>& projection);

}  // namespace vbtree

#endif  // VBTREE_QUERY_QUERY_SERDE_H_
