#ifndef VBTREE_QUERY_QUERY_SERDE_H_
#define VBTREE_QUERY_QUERY_SERDE_H_

#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/serde.h"
#include "query/predicate.h"

namespace vbtree {

/// Wire encoding of queries and result rows. Byte counts from these
/// routines are the "communication cost" the benchmark harness reports
/// (paper §4.2).
void SerializeSelectQuery(const SelectQuery& q, ByteWriter* w);
Result<SelectQuery> DeserializeSelectQuery(ByteReader* r);

/// Same encoding with an empty table slot: the canonical "query bytes
/// minus table" form shared by batch framing (the batch names the table
/// once) and the edge VO-cache fingerprint (the cache is per table).
void SerializeSelectQuerySansTable(const SelectQuery& q, ByteWriter* w);

/// Batched request: the table name once, then each query without its
/// (redundant) table field.
void SerializeQueryBatch(const QueryBatch& batch, ByteWriter* w);
Result<QueryBatch> DeserializeQueryBatch(ByteReader* r);

/// Rows are encoded against the schema + projection so the receiver knows
/// each value's type. `projection` empty means all columns.
void SerializeResultRows(const std::vector<ResultRow>& rows, ByteWriter* w);
Result<std::vector<ResultRow>> DeserializeResultRows(
    ByteReader* r, const Schema& schema, const std::vector<size_t>& projection);

/// Per-query Status on the wire (batch response v2 carries one per failed
/// slot): u8 code + message. Deserialization rejects unknown codes with
/// kCorruption, so a malicious edge cannot smuggle an out-of-enum value.
/// (Returns the parse outcome; the decoded status lands in `*out` —
/// `Result<Status>` would be ambiguous with the error constructor.)
void SerializeStatus(const Status& s, ByteWriter* w);
Status DeserializeStatus(ByteReader* r, Status* out);

}  // namespace vbtree

#endif  // VBTREE_QUERY_QUERY_SERDE_H_
