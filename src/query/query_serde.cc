#include "query/query_serde.h"

namespace vbtree {

namespace {

void SerializeValue(const Value& v, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  v.Serialize(w);
}

Result<Value> DeserializeValueWithType(ByteReader* r) {
  VBT_ASSIGN_OR_RETURN(uint8_t t, r->ReadU8());
  if (t > static_cast<uint8_t>(TypeId::kString)) {
    return Status::Corruption("bad TypeId");
  }
  return Value::Deserialize(r, static_cast<TypeId>(t));
}

}  // namespace

namespace {

/// Everything after the table field; shared by the full and sans-table
/// encodings so the two can never diverge.
void SerializeSelectQueryTail(const SelectQuery& q, ByteWriter* w) {
  w->PutI64(q.range.lo);
  w->PutI64(q.range.hi);
  w->PutVarint(q.conditions.size());
  for (const ColumnCondition& c : q.conditions) {
    w->PutVarint(c.col_idx);
    w->PutU8(static_cast<uint8_t>(c.op));
    SerializeValue(c.operand, w);
  }
  w->PutVarint(q.projection.size());
  for (size_t c : q.projection) w->PutVarint(c);
}

}  // namespace

void SerializeSelectQuery(const SelectQuery& q, ByteWriter* w) {
  w->PutString(q.table);
  SerializeSelectQueryTail(q, w);
}

void SerializeSelectQuerySansTable(const SelectQuery& q, ByteWriter* w) {
  w->PutString(std::string());  // empty table slot keeps the framing
  SerializeSelectQueryTail(q, w);
}

Result<SelectQuery> DeserializeSelectQuery(ByteReader* r) {
  SelectQuery q;
  VBT_ASSIGN_OR_RETURN(q.table, r->ReadString());
  VBT_ASSIGN_OR_RETURN(q.range.lo, r->ReadI64());
  VBT_ASSIGN_OR_RETURN(q.range.hi, r->ReadI64());
  VBT_ASSIGN_OR_RETURN(uint64_t nc, r->ReadCount());
  q.conditions.reserve(nc);
  for (uint64_t i = 0; i < nc; ++i) {
    ColumnCondition c;
    VBT_ASSIGN_OR_RETURN(uint64_t col, r->ReadVarint());
    c.col_idx = col;
    VBT_ASSIGN_OR_RETURN(uint8_t op, r->ReadU8());
    if (op > static_cast<uint8_t>(CompareOp::kGe)) {
      return Status::Corruption("bad CompareOp");
    }
    c.op = static_cast<CompareOp>(op);
    VBT_ASSIGN_OR_RETURN(c.operand, DeserializeValueWithType(r));
    q.conditions.push_back(std::move(c));
  }
  VBT_ASSIGN_OR_RETURN(uint64_t np, r->ReadCount());
  q.projection.reserve(np);
  for (uint64_t i = 0; i < np; ++i) {
    VBT_ASSIGN_OR_RETURN(uint64_t c, r->ReadVarint());
    q.projection.push_back(c);
  }
  return q;
}

void SerializeQueryBatch(const QueryBatch& batch, ByteWriter* w) {
  w->PutString(batch.table);
  w->PutVarint(batch.queries.size());
  for (const SelectQuery& q : batch.queries) {
    SerializeSelectQuerySansTable(q, w);
  }
  // Trailing trust-mode byte. Read-if-present on the other end, so
  // pre-trust-mode request encodings (exactly the queries, nothing after)
  // still parse as kCertified.
  w->PutU8(static_cast<uint8_t>(batch.trust_mode));
}

Result<QueryBatch> DeserializeQueryBatch(ByteReader* r) {
  QueryBatch batch;
  VBT_ASSIGN_OR_RETURN(batch.table, r->ReadString());
  VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
  batch.queries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    VBT_ASSIGN_OR_RETURN(SelectQuery q, DeserializeSelectQuery(r));
    q.table = batch.table;
    batch.queries.push_back(std::move(q));
  }
  if (r->remaining() > 0) {
    VBT_ASSIGN_OR_RETURN(uint8_t m, r->ReadU8());
    if (m > static_cast<uint8_t>(TrustMode::kSampled)) {
      return Status::Corruption("bad TrustMode on the wire");
    }
    batch.trust_mode = static_cast<TrustMode>(m);
  }
  return batch;
}

void SerializeResultRows(const std::vector<ResultRow>& rows, ByteWriter* w) {
  w->PutVarint(rows.size());
  for (const ResultRow& row : rows) {
    for (const Value& v : row.values) v.Serialize(w);
  }
}

void SerializeStatus(const Status& s, ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(s.code()));
  w->PutString(s.message());
}

Status DeserializeStatus(ByteReader* r, Status* out) {
  VBT_ASSIGN_OR_RETURN(uint8_t code, r->ReadU8());
  if (code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Corruption("bad StatusCode on the wire");
  }
  VBT_ASSIGN_OR_RETURN(std::string msg, r->ReadString());
  *out = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

Result<std::vector<ResultRow>> DeserializeResultRows(
    ByteReader* r, const Schema& schema,
    const std::vector<size_t>& projection) {
  VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
  std::vector<size_t> cols = projection;
  if (cols.empty()) {
    for (size_t c = 0; c < schema.num_columns(); ++c) cols.push_back(c);
  }
  std::vector<ResultRow> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ResultRow row;
    row.values.reserve(cols.size());
    for (size_t c : cols) {
      VBT_ASSIGN_OR_RETURN(Value v,
                           Value::Deserialize(r, schema.column(c).type));
      row.values.push_back(std::move(v));
    }
    if (row.values.empty() || row.values[0].type() != TypeId::kInt64) {
      return Status::Corruption("result row missing key column");
    }
    row.key = row.values[0].AsInt();
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace vbtree
