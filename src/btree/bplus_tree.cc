#include "btree/bplus_tree.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vbtree {

int BTreeConfig::BTreeFanOut(size_t key_len, size_t ptr_len,
                             size_t block_size) {
  int f = static_cast<int>((block_size + key_len) / (key_len + ptr_len));
  return f < 2 ? 2 : f;
}

int BTreeConfig::VBTreeFanOut(size_t key_len, size_t ptr_len,
                              size_t digest_len, size_t block_size) {
  int f = static_cast<int>((block_size + key_len) /
                           (key_len + ptr_len + digest_len));
  return f < 2 ? 2 : f;
}

int BTreeConfig::PackedHeight(uint64_t num_tuples, int fan_out) {
  if (num_tuples <= 1) return 1;
  double h = std::log(static_cast<double>(num_tuples)) /
             std::log(static_cast<double>(fan_out));
  int hi = static_cast<int>(std::ceil(h - 1e-9));
  return hi < 1 ? 1 : hi;
}

BTreeConfig BTreeConfig::FromBlockSize(size_t key_len, size_t ptr_len,
                                       size_t block_size) {
  BTreeConfig c;
  c.max_internal = BTreeFanOut(key_len, ptr_len, block_size);
  c.max_leaf = c.max_internal;
  return c;
}

struct BPlusTree::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
  virtual ~Node() = default;
};

struct BPlusTree::LeafNode : BPlusTree::Node {
  LeafNode() : Node(true) {}
  std::vector<int64_t> keys;
  std::vector<Rid> rids;
  LeafNode* next = nullptr;
  LeafNode* prev = nullptr;
};

struct BPlusTree::InternalNode : BPlusTree::Node {
  InternalNode() : Node(false) {}
  /// children.size() == keys.size() + 1; child i covers keys in
  /// [keys[i-1], keys[i]) with keys[-1] = -inf, keys[n] = +inf.
  std::vector<int64_t> keys;
  std::vector<std::unique_ptr<Node>> children;

  /// Index of the child subtree that may contain `key`.
  size_t ChildIndex(int64_t key) const {
    return static_cast<size_t>(
        std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
  }
};

BPlusTree::BPlusTree(BTreeConfig config) : config_(config) {
  VBT_CHECK(config_.max_internal >= 2 && config_.max_leaf >= 1);
  root_ = std::make_unique<LeafNode>();
}

BPlusTree::~BPlusTree() = default;

const BPlusTree::LeafNode* BPlusTree::FindLeaf(int64_t key) const {
  const Node* n = root_.get();
  while (!n->is_leaf) {
    const auto* in = static_cast<const InternalNode*>(n);
    n = in->children[in->ChildIndex(key)].get();
  }
  return static_cast<const LeafNode*>(n);
}

Result<Rid> BPlusTree::Lookup(int64_t key) const {
  const LeafNode* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return Status::NotFound("key not in index");
  }
  return leaf->rids[it - leaf->keys.begin()];
}

Result<std::optional<BPlusTree::SplitResult>> BPlusTree::InsertRec(
    Node* node, int64_t key, const Rid& rid) {
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it != leaf->keys.end() && *it == key) {
      return Status::AlreadyExists("duplicate key");
    }
    size_t pos = it - leaf->keys.begin();
    leaf->keys.insert(it, key);
    leaf->rids.insert(leaf->rids.begin() + pos, rid);
    if (leaf->keys.size() <= static_cast<size_t>(config_.max_leaf)) {
      return std::optional<SplitResult>{};
    }
    // Split: move upper half to a new right sibling.
    auto right = std::make_unique<LeafNode>();
    size_t mid = leaf->keys.size() / 2;
    right->keys.assign(leaf->keys.begin() + mid, leaf->keys.end());
    right->rids.assign(leaf->rids.begin() + mid, leaf->rids.end());
    leaf->keys.resize(mid);
    leaf->rids.resize(mid);
    right->next = leaf->next;
    right->prev = leaf;
    if (leaf->next != nullptr) leaf->next->prev = right.get();
    leaf->next = right.get();
    int64_t sep = right->keys.front();
    return std::optional<SplitResult>{{sep, std::move(right)}};
  }

  auto* in = static_cast<InternalNode*>(node);
  size_t ci = in->ChildIndex(key);
  VBT_ASSIGN_OR_RETURN(std::optional<SplitResult> split,
                       InsertRec(in->children[ci].get(), key, rid));
  if (!split.has_value()) return std::optional<SplitResult>{};
  in->keys.insert(in->keys.begin() + ci, split->separator);
  in->children.insert(in->children.begin() + ci + 1, std::move(split->right));
  if (in->children.size() <= static_cast<size_t>(config_.max_internal)) {
    return std::optional<SplitResult>{};
  }
  // Split the internal node; the middle key moves up.
  auto right = std::make_unique<InternalNode>();
  size_t mid = in->keys.size() / 2;
  int64_t up = in->keys[mid];
  right->keys.assign(in->keys.begin() + mid + 1, in->keys.end());
  right->children.reserve(in->children.size() - mid - 1);
  for (size_t i = mid + 1; i < in->children.size(); ++i) {
    right->children.push_back(std::move(in->children[i]));
  }
  in->keys.resize(mid);
  in->children.resize(mid + 1);
  return std::optional<SplitResult>{{up, std::move(right)}};
}

Status BPlusTree::Insert(int64_t key, const Rid& rid) {
  VBT_ASSIGN_OR_RETURN(std::optional<SplitResult> split,
                       InsertRec(root_.get(), key, rid));
  if (split.has_value()) {
    auto new_root = std::make_unique<InternalNode>();
    new_root->keys.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  size_++;
  return Status::OK();
}

Result<bool> BPlusTree::RemoveRec(Node* node, int64_t key) {
  if (node->is_leaf) {
    auto* leaf = static_cast<LeafNode*>(node);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it == leaf->keys.end() || *it != key) {
      return Status::NotFound("key not in index");
    }
    size_t pos = it - leaf->keys.begin();
    leaf->keys.erase(it);
    leaf->rids.erase(leaf->rids.begin() + pos);
    if (leaf->keys.empty()) {
      // Unlink from the leaf chain before the parent frees it.
      if (leaf->prev != nullptr) leaf->prev->next = leaf->next;
      if (leaf->next != nullptr) leaf->next->prev = leaf->prev;
      return true;
    }
    return false;
  }

  auto* in = static_cast<InternalNode*>(node);
  size_t ci = in->ChildIndex(key);
  VBT_ASSIGN_OR_RETURN(bool child_empty, RemoveRec(in->children[ci].get(), key));
  if (!child_empty) return false;
  // Merge-on-empty policy: drop the emptied child and one separator.
  in->children.erase(in->children.begin() + ci);
  if (!in->keys.empty()) {
    in->keys.erase(in->keys.begin() + (ci == 0 ? 0 : ci - 1));
  }
  return in->children.empty();
}

Status BPlusTree::Remove(int64_t key) {
  VBT_ASSIGN_OR_RETURN(bool root_empty, RemoveRec(root_.get(), key));
  size_--;
  if (root_empty) {
    root_ = std::make_unique<LeafNode>();
    return Status::OK();
  }
  // Collapse trivial roots (single-child internal nodes).
  while (!root_->is_leaf) {
    auto* in = static_cast<InternalNode*>(root_.get());
    if (in->children.size() > 1) break;
    root_ = std::move(in->children[0]);
  }
  return Status::OK();
}

std::vector<std::pair<int64_t, Rid>> BPlusTree::Scan(int64_t lo,
                                                     int64_t hi) const {
  std::vector<std::pair<int64_t, Rid>> out;
  if (lo > hi) return out;
  const LeafNode* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (leaf->keys[i] < lo) continue;
      if (leaf->keys[i] > hi) return out;
      out.emplace_back(leaf->keys[i], leaf->rids[i]);
    }
    leaf = leaf->next;
  }
  return out;
}

int BPlusTree::height() const {
  int h = 1;
  const Node* n = root_.get();
  while (!n->is_leaf) {
    h++;
    n = static_cast<const InternalNode*>(n)->children[0].get();
  }
  return h;
}

Status BPlusTree::CheckNode(const Node* node, std::optional<int64_t> lo,
                            std::optional<int64_t> hi, int depth,
                            int* leaf_depth) const {
  auto in_bounds = [&](int64_t k) {
    if (lo.has_value() && k < *lo) return false;
    if (hi.has_value() && k >= *hi) return false;
    return true;
  };
  if (node->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(node);
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at differing depths");
    }
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (i > 0 && leaf->keys[i - 1] >= leaf->keys[i]) {
        return Status::Corruption("leaf keys out of order");
      }
      if (!in_bounds(leaf->keys[i])) {
        return Status::Corruption("leaf key violates separator bounds");
      }
    }
    if (leaf->keys.size() != leaf->rids.size()) {
      return Status::Corruption("leaf key/rid count mismatch");
    }
    return Status::OK();
  }
  const auto* in = static_cast<const InternalNode*>(node);
  if (in->children.size() != in->keys.size() + 1) {
    return Status::Corruption("internal child/key count mismatch");
  }
  for (size_t i = 0; i < in->keys.size(); ++i) {
    if (i > 0 && in->keys[i - 1] >= in->keys[i]) {
      return Status::Corruption("internal keys out of order");
    }
    if (!in_bounds(in->keys[i])) {
      return Status::Corruption("separator violates parent bounds");
    }
  }
  for (size_t i = 0; i < in->children.size(); ++i) {
    std::optional<int64_t> clo = (i == 0) ? lo : std::optional(in->keys[i - 1]);
    std::optional<int64_t> chi =
        (i == in->keys.size()) ? hi : std::optional(in->keys[i]);
    VBT_RETURN_NOT_OK(
        CheckNode(in->children[i].get(), clo, chi, depth + 1, leaf_depth));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  int leaf_depth = -1;
  return CheckNode(root_.get(), std::nullopt, std::nullopt, 0, &leaf_depth);
}

}  // namespace vbtree
