#ifndef VBTREE_BTREE_BPLUS_TREE_H_
#define VBTREE_BTREE_BPLUS_TREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "catalog/tuple.h"
#include "common/config.h"
#include "common/result.h"

namespace vbtree {

/// Node-capacity parameters shared by the plain B+-tree and the VB-tree.
/// Capacities derive from the paper's block-size formulas (§4.1): an
/// index node of |B| bytes holds f child pointers, f-1 keys and (for the
/// VB-tree) f signed digests.
struct BTreeConfig {
  /// Maximum children per internal node (fan-out f).
  int max_internal = 128;
  /// Maximum entries per leaf node.
  int max_leaf = 128;

  /// Fan-out of a plain B-tree node: floor((|B| + |K|) / (|K| + |P|)),
  /// i.e. f pointers + (f-1) keys must fit in a block.
  static int BTreeFanOut(size_t key_len, size_t ptr_len, size_t block_size);

  /// Fan-out of a VB-tree node (paper formula (6)): each child entry
  /// additionally carries a signed digest of |s| bytes:
  /// floor((|B| + |K|) / (|K| + |P| + |s|)).
  static int VBTreeFanOut(size_t key_len, size_t ptr_len, size_t digest_len,
                          size_t block_size);

  /// Height of a fully packed tree of `fan_out` over `num_tuples` tuples
  /// (paper formula (7)): ceil(log_f T_R), at least 1.
  static int PackedHeight(uint64_t num_tuples, int fan_out);

  static BTreeConfig FromBlockSize(size_t key_len, size_t ptr_len,
                                   size_t block_size);
};

/// In-memory B+-tree mapping int64 keys to Rids. This is the unauthenticated
/// baseline structure: same layout maths as the VB-tree minus digests.
///
/// Deletion follows the policy the paper adopts from Johnson & Shasha
/// (§4.4): nodes are merged/freed only when they become *empty*, not at
/// half occupancy.
class BPlusTree {
 public:
  explicit BPlusTree(BTreeConfig config = BTreeConfig{});
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts key → rid; kAlreadyExists on duplicate key.
  Status Insert(int64_t key, const Rid& rid);

  Result<Rid> Lookup(int64_t key) const;

  /// Removes the key; kNotFound if absent.
  Status Remove(int64_t key);

  /// All entries with lo <= key <= hi, in key order.
  std::vector<std::pair<int64_t, Rid>> Scan(int64_t lo, int64_t hi) const;

  size_t size() const { return size_; }
  int height() const;

  /// Structural self-check used by property tests: key ordering inside
  /// nodes, separator bounds, uniform leaf depth, leaf-chain consistency.
  Status CheckInvariants() const;

 private:
  struct LeafNode;
  struct InternalNode;
  struct Node;

  struct SplitResult {
    int64_t separator;
    std::unique_ptr<Node> right;
  };

  Result<std::optional<SplitResult>> InsertRec(Node* node, int64_t key,
                                               const Rid& rid);
  /// Returns true if `node` became empty and should be unlinked.
  Result<bool> RemoveRec(Node* node, int64_t key);

  Status CheckNode(const Node* node, std::optional<int64_t> lo,
                   std::optional<int64_t> hi, int depth,
                   int* leaf_depth) const;

  const LeafNode* FindLeaf(int64_t key) const;

  BTreeConfig config_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace vbtree

#endif  // VBTREE_BTREE_BPLUS_TREE_H_
