#ifndef VBTREE_COSTMODEL_COST_MODEL_H_
#define VBTREE_COSTMODEL_COST_MODEL_H_

#include <cstdint>

namespace vbtree {
namespace costmodel {

/// The parameters of paper Table 1, with their defaults. All sizes in
/// bytes; all computation costs in units of Cost_h (the cost of deriving
/// one attribute digest).
struct CostParams {
  double digest_len = 16;   ///< |s|: signed digest length
  double key_len = 16;      ///< |K|: search key length
  double ptr_len = 4;       ///< |P|: node pointer length
  double block = 4096;      ///< |B|: block/node size
  double num_tuples = 1e6;  ///< T_R: tuples in the table
  double num_cols = 10;     ///< T_c: attributes per tuple
  double result_tuples = 0; ///< Q_R: tuples in the query result
  double result_cols = 10;  ///< Q_c: attributes in the query result
  double attr_len = 20;     ///< |A_j|: average attribute size
  double cost_k = 10;       ///< Cost_k / Cost_h (paper default ratio 10)
  double cost_s = 10;       ///< X = Cost_s / Cost_h (Fig. 12 sweeps 5/10/100)
  /// Signing is ~100x costlier than verification ([15]: hashes are ~100x
  /// faster than signature verification and ~10000x faster than
  /// generation); used only by the update-cost formulas.
  double cost_sign = 1000;
};

// ---- §4.1 storage -----------------------------------------------------

/// Per-table overhead of signed attribute digests: T_R * T_c * |s|.
double BaseTableOverheadBytes(const CostParams& p);

/// Plain B-tree fan-out: floor((|B| + |K|) / (|K| + |P|)).
double BTreeFanOut(const CostParams& p);

/// Modeled size of a full table snapshot as shipped to an edge server:
/// per tuple, the attribute values, the signed attribute and tuple
/// digests, and the VB-tree entry overhead (key, pointer, node digest
/// amortized). Used by the propagation layer's snapshot-vs-delta policy.
double SnapshotBytesEstimate(const CostParams& p);

/// VB-tree fan-out (formula (6)): each entry adds a signed digest:
/// floor((|B| + |K|) / (|K| + |P| + |s|)).
double VBTreeFanOut(const CostParams& p);

/// Height of a fully packed tree (formula (7)): ceil(log_f T_R).
double PackedHeight(double num_tuples, double fan_out);

// ---- §4.2 query communication ----------------------------------------

/// Height of the enveloping subtree (formula (8)): ceil(log_f Q_R).
double EnvelopeHeight(const CostParams& p);

/// Maximum digests in D_S: (2 h_Q + 1)(f - 1).
double MaxSelectionDigests(const CostParams& p);

/// VB-tree communication cost in bytes (formula (9)): result values +
/// D_P + D_S + D_N.
double VBCommBytes(const CostParams& p);

/// Naive communication cost (Appendix): per result tuple, the signed
/// tuple digest, the projected attribute values, and a signed digest per
/// filtered attribute.
double NaiveCommBytes(const CostParams& p);

// ---- §4.3 query computation (in Cost_h units) -------------------------

/// VB-tree client computation (formula (10)): attribute hashing,
/// combining, and decrypting D_P, D_S and D_N.
double VBCompCost(const CostParams& p);

/// Naive client computation (Appendix): per row, hash the returned
/// attributes, decrypt the filtered ones, combine, and decrypt the signed
/// tuple digest.
double NaiveCompCost(const CostParams& p);

// ---- §4.4 updates ------------------------------------------------------

/// Insert cost (formula (11)): hash T_c attributes, combine into the
/// tuple digest, fold into each node digest on the root-to-leaf path, and
/// re-sign the attribute/tuple/path digests.
double InsertCost(const CostParams& p);

/// Delete cost (formula (12)) for a contiguous range of `deleted` tuples:
/// recompute digests of the boundary nodes of the enveloping subtree and
/// of the path up to the root, and re-sign them.
double DeleteCost(const CostParams& p, double deleted);

}  // namespace costmodel
}  // namespace vbtree

#endif  // VBTREE_COSTMODEL_COST_MODEL_H_
