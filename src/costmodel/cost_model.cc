#include "costmodel/cost_model.h"

#include <algorithm>
#include <cmath>

namespace vbtree {
namespace costmodel {

namespace {

double CeilLog(double n, double base) {
  if (n <= 1) return 1;
  if (base <= 1) return 1;
  return std::max(1.0, std::ceil(std::log(n) / std::log(base) - 1e-9));
}

}  // namespace

double BaseTableOverheadBytes(const CostParams& p) {
  return p.num_tuples * p.num_cols * p.digest_len;
}

double BTreeFanOut(const CostParams& p) {
  return std::max(2.0, std::floor((p.block + p.key_len) /
                                  (p.key_len + p.ptr_len)));
}

double VBTreeFanOut(const CostParams& p) {
  return std::max(2.0, std::floor((p.block + p.key_len) /
                                  (p.key_len + p.ptr_len + p.digest_len)));
}

double SnapshotBytesEstimate(const CostParams& p) {
  // Per tuple: attribute values, signed attribute digests, the signed
  // tuple digest, and the tree entry (key + pointer + amortized node
  // digest).
  double per_tuple = p.num_cols * p.attr_len + (p.num_cols + 1) * p.digest_len +
                     p.key_len + p.ptr_len + p.digest_len;
  return p.num_tuples * per_tuple;
}

double PackedHeight(double num_tuples, double fan_out) {
  return CeilLog(num_tuples, fan_out);
}

double EnvelopeHeight(const CostParams& p) {
  return CeilLog(std::max(1.0, p.result_tuples), VBTreeFanOut(p));
}

double MaxSelectionDigests(const CostParams& p) {
  return (2 * EnvelopeHeight(p) + 1) * (VBTreeFanOut(p) - 1);
}

double VBCommBytes(const CostParams& p) {
  double result_values = p.result_tuples * p.result_cols * p.attr_len;
  double d_p = p.result_tuples * (p.num_cols - p.result_cols) * p.digest_len;
  double d_s = MaxSelectionDigests(p) * p.digest_len;
  double d_n = p.digest_len;
  return result_values + d_p + d_s + d_n;
}

double NaiveCommBytes(const CostParams& p) {
  double per_tuple = p.digest_len                                  // s(t_j)
                     + p.result_cols * p.attr_len                  // values
                     + (p.num_cols - p.result_cols) * p.digest_len;  // D_P
  return p.result_tuples * per_tuple;
}

double VBCompCost(const CostParams& p) {
  // Combining work is modeled per the paper as the per-tuple attribute
  // combination plus folding the D_S digests; the measured harness also
  // counts the per-leaf tuple-digest folds the model elides (see
  // EXPERIMENTS.md for the comparison).
  double hashes = p.result_tuples * p.result_cols;  // Cost_h each
  double combines = p.result_tuples * p.num_cols    // per-tuple combine
                    + MaxSelectionDigests(p);       // fold D_S digests
  double decrypts = p.result_tuples * (p.num_cols - p.result_cols)  // D_P
                    + MaxSelectionDigests(p)                        // D_S
                    + 1;                                            // D_N
  return hashes + p.cost_k * combines + p.cost_s * decrypts;
}

double NaiveCompCost(const CostParams& p) {
  double hashes = p.result_tuples * p.result_cols;
  double combines = p.result_tuples * p.num_cols;
  double decrypts = p.result_tuples * (p.num_cols - p.result_cols)  // attrs
                    + p.result_tuples;  // one signed tuple digest per row
  return hashes + p.cost_k * combines + p.cost_s * decrypts;
}

double InsertCost(const CostParams& p) {
  double h = PackedHeight(p.num_tuples, VBTreeFanOut(p));
  double hashes = p.num_cols;            // attribute digests
  double combines = p.num_cols + h;      // tuple digest + fold path digests
  double signs = p.num_cols + 1 + h;     // attr sigs + tuple sig + path sigs
  return hashes + p.cost_k * combines + p.cost_sign * signs;
}

double DeleteCost(const CostParams& p, double deleted) {
  double f = VBTreeFanOut(p);
  double h = PackedHeight(p.num_tuples, f);
  double h_q = CeilLog(std::max(1.0, deleted), f);
  // Boundary nodes of the enveloping subtree: top + leftmost/rightmost per
  // level, each with at most f-1 surviving entries to recombine.
  double boundary_nodes = 2 * h_q + 1;
  double boundary_combines = boundary_nodes * (f - 1);
  // Path from the subtree top to the root: up to f entries per node.
  double path_combines = (h - h_q) * f;
  double signs = boundary_nodes + (h - h_q);
  return p.cost_k * (boundary_combines + path_combines) + p.cost_sign * signs;
}

}  // namespace costmodel
}  // namespace vbtree
