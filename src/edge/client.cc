#include "edge/client.h"

#include <algorithm>

#include "query/query_serde.h"

namespace vbtree {

void Client::RegisterTable(const std::string& table, Schema schema,
                           HashAlgorithm algo, int modulus_bits) {
  tables_[table] = TableMeta{std::move(schema), algo, modulus_bits};
}

Result<Client::Verified> Client::Query(EdgeServer* edge,
                                       const SelectQuery& query, uint64_t now,
                                       Transport* net) {
  auto meta_it = tables_.find(query.table);
  if (meta_it == tables_.end()) {
    return Status::InvalidArgument("table not registered with client: " +
                                   query.table);
  }
  const TableMeta& meta = meta_it->second;

  SelectQuery q = query;
  q.NormalizeProjection();

  EdgeChannels* channels = nullptr;
  if (net != nullptr) {
    channels = &channels_[edge->name()];
    if (channels->transport != net) {
      channels->transport = net;
      channels->up = net->Channel("client->edge:" + edge->name());
      channels->down = net->Channel("edge:" + edge->name() + "->client");
    }
  }

  // --- request over the wire ---
  ByteWriter req;
  SerializeSelectQuery(q, &req);
  if (channels != nullptr) net->Record(channels->up, req.size());
  VBT_ASSIGN_OR_RETURN(std::vector<uint8_t> resp_bytes,
                       edge->HandleQueryBytes(Slice(req.buffer())));
  if (channels != nullptr) net->Record(channels->down, resp_bytes.size());

  // --- parse ---
  ByteReader r((Slice(resp_bytes)));
  VBT_ASSIGN_OR_RETURN(
      QueryResponse resp,
      DeserializeQueryResponse(&r, meta.schema, q.projection));

  Verified out;
  out.request_bytes = req.size();
  out.result_bytes = resp.result_bytes;
  out.vo_bytes = resp.vo_bytes;
  out.vo_digests = resp.vo.DigestCount();

  out.replica_version = resp.replica_version;

  // --- key freshness (§3.4): reject stale key versions ---
  auto rec_or = keys_->RecovererFor(resp.vo.key_version, now);
  if (!rec_or.ok()) {
    out.rows = std::move(resp.rows);
    out.verification = rec_or.status();
    return out;
  }
  std::shared_ptr<Recoverer> base = rec_or.MoveValueUnsafe();
  CountingRecoverer recoverer(base.get(), &out.counters);

  // --- authenticate ---
  DigestSchema ds(db_name_, query.table, meta.schema, meta.algo,
                  meta.modulus_bits);
  Verifier verifier(std::move(ds), &recoverer);
  verifier.set_counters(&out.counters);
  out.verification = verifier.VerifySelect(q, resp.rows, resp.vo);
  out.rows = std::move(resp.rows);

  // --- replica freshness: flag non-monotonic reads across edges ---
  // The replica version is reported by the (untrusted) edge outside the
  // VO, so it only informs the watermark when the answer itself
  // authenticated — otherwise a tampered response could poison the
  // staleness signal for every later honest read.
  if (out.verification.ok()) {
    uint64_t& watermark = freshness_[query.table];
    out.stale_replica = resp.replica_version < watermark;
    watermark = std::max(watermark, resp.replica_version);
  }
  return out;
}

}  // namespace vbtree
