#include "edge/client.h"

#include <algorithm>
#include <chrono>

#include "query/query_serde.h"

namespace vbtree {

namespace {
/// Replica-version epochs kept per table in the signed-top memo.
constexpr size_t kTopMemoEpochs = 2;
/// Entries per epoch; beyond this, inserts are dropped (a scan-heavy
/// workload should not let the memo grow without bound).
constexpr size_t kTopMemoMaxEntries = 4096;
}  // namespace

const Digest* Client::LookupTopMemo(const std::string& table,
                                    uint64_t replica_version,
                                    uint32_t key_version,
                                    const Signature& sig) const {
  auto t = top_memo_.find(table);
  if (t == top_memo_.end()) return nullptr;
  for (const TopMemoEpoch& epoch : t->second) {
    if (epoch.replica_version != replica_version) continue;
    auto e = epoch.tops.find(sig);
    if (e != epoch.tops.end() && e->second.key_version == key_version) {
      return &e->second.digest;
    }
    return nullptr;
  }
  return nullptr;
}

void Client::InsertTopMemo(const std::string& table, uint64_t replica_version,
                           uint32_t key_version, const Signature& sig,
                           const Digest& digest) {
  std::vector<TopMemoEpoch>& epochs = top_memo_[table];
  TopMemoEpoch* target = nullptr;
  for (TopMemoEpoch& epoch : epochs) {
    if (epoch.replica_version == replica_version) {
      target = &epoch;
      break;
    }
  }
  if (target == nullptr) {
    // Keep the kTopMemoEpochs numerically *highest* versions (not the
    // most recently seen): a batch from a lagging edge must not evict
    // the freshest epoch — surviving exactly that alternation is why
    // more than one epoch is kept.
    if (epochs.size() >= kTopMemoEpochs &&
        replica_version < epochs.back().replica_version) {
      return;
    }
    auto pos = epochs.begin();
    while (pos != epochs.end() && pos->replica_version > replica_version) {
      ++pos;
    }
    pos = epochs.insert(pos, TopMemoEpoch{replica_version, {}});
    if (epochs.size() > kTopMemoEpochs) epochs.resize(kTopMemoEpochs);
    target = &*pos;
  }
  if (target->tops.size() >= kTopMemoMaxEntries) return;
  target->tops[sig] = TopEntry{key_version, digest};
}

void Client::RegisterTable(const std::string& table, Schema schema,
                           HashAlgorithm algo, int modulus_bits) {
  tables_[table] = TableMeta{std::move(schema), algo, modulus_bits};
}

Result<Client::Verified> Client::Query(EdgeServer* edge,
                                       const SelectQuery& query, uint64_t now,
                                       Transport* net) {
  auto meta_it = tables_.find(query.table);
  if (meta_it == tables_.end()) {
    return Status::InvalidArgument("table not registered with client: " +
                                   query.table);
  }
  const TableMeta& meta = meta_it->second;

  SelectQuery q = query;
  q.NormalizeProjection();

  EdgeChannels* channels = nullptr;
  if (net != nullptr) {
    channels = &channels_[edge->name()];
    if (channels->transport != net) {
      channels->transport = net;
      channels->up = net->Channel("client->edge:" + edge->name());
      channels->down = net->Channel("edge:" + edge->name() + "->client");
    }
  }

  // --- request over the wire ---
  ByteWriter req;
  SerializeSelectQuery(q, &req);
  if (channels != nullptr) net->Record(channels->up, req.size());
  VBT_ASSIGN_OR_RETURN(std::vector<uint8_t> resp_bytes,
                       edge->HandleQueryBytes(Slice(req.buffer())));
  if (channels != nullptr) net->Record(channels->down, resp_bytes.size());

  // --- parse ---
  ByteReader r((Slice(resp_bytes)));
  VBT_ASSIGN_OR_RETURN(
      QueryResponse resp,
      DeserializeQueryResponse(&r, meta.schema, q.projection));

  Verified out;
  out.request_bytes = req.size();
  out.result_bytes = resp.result_bytes;
  out.vo_bytes = resp.vo_bytes;
  out.vo_digests = resp.vo.DigestCount();

  out.replica_version = resp.replica_version;

  // --- key freshness (§3.4): reject stale key versions ---
  auto rec_or = keys_->RecovererFor(resp.vo.key_version, now);
  if (!rec_or.ok()) {
    out.rows = std::move(resp.rows);
    out.verification = rec_or.status();
    return out;
  }
  std::shared_ptr<Recoverer> base = rec_or.MoveValueUnsafe();
  CountingRecoverer recoverer(base.get(), &out.counters);

  // --- authenticate ---
  DigestSchema ds(db_name_, query.table, meta.schema, meta.algo,
                  meta.modulus_bits);
  Verifier verifier(std::move(ds), &recoverer);
  verifier.set_counters(&out.counters);
  if (verify_fast_path_ && digest_cache_ != nullptr) {
    verifier.set_digest_cache(digest_cache_.get(), resp.vo.key_version);
  }
  out.verification = verifier.VerifySelect(q, resp.rows, resp.vo);
  out.rows = std::move(resp.rows);

  // --- replica freshness: flag non-monotonic reads across edges ---
  // The replica version is reported by the (untrusted) edge outside the
  // VO, so it only informs the watermark when the answer itself
  // authenticated — otherwise a tampered response could poison the
  // staleness signal for every later honest read.
  if (out.verification.ok()) {
    uint64_t& watermark = freshness_[query.table];
    out.stale_replica = resp.replica_version < watermark;
    watermark = std::max(watermark, resp.replica_version);
  }
  return out;
}

Result<Client::VerifiedBatch> Client::QueryBatched(QueryService* service,
                                                   const QueryBatch& batch,
                                                   uint64_t now,
                                                   BatchVerifier* verifier,
                                                   Transport* net) {
  auto meta_it = tables_.find(batch.table);
  if (meta_it == tables_.end()) {
    return Status::InvalidArgument("table not registered with client: " +
                                   batch.table);
  }
  const TableMeta& meta = meta_it->second;
  if (batch.queries.empty()) {
    return Status::InvalidArgument("empty query batch");
  }

  // Normalize locally: the response rows are encoded against the
  // normalized projections, and the verifier needs the same view.
  QueryBatch b = batch;
  for (SelectQuery& q : b.queries) {
    q.table = batch.table;
    q.NormalizeProjection();
  }

  EdgeServer* edge = service->edge();
  EdgeChannels* channels = nullptr;
  if (net != nullptr) {
    channels = &channels_[edge->name()];
    if (channels->transport != net) {
      channels->transport = net;
      channels->up = net->Channel("client->edge:" + edge->name());
      channels->down = net->Channel("edge:" + edge->name() + "->client");
    }
  }

  // --- request over the wire, through the edge's submission queue ---
  ByteWriter req(1 << 10);
  SerializeQueryBatch(b, &req);
  const size_t request_bytes = req.size();
  if (channels != nullptr) net->Record(channels->up, request_bytes);
  VBT_ASSIGN_OR_RETURN(std::vector<uint8_t> resp_bytes,
                       service->SubmitBatchBytes(req.TakeBuffer()).get());
  if (channels != nullptr) net->Record(channels->down, resp_bytes.size());

  // --- parse ---
  ByteReader r((Slice(resp_bytes)));
  VBT_ASSIGN_OR_RETURN(
      QueryBatchResponse resp,
      DeserializeQueryBatchResponse(&r, meta.schema, b.queries));

  VerifiedBatch out;
  out.replica_version = resp.replica_version;
  out.stats = resp.stats;
  out.request_bytes = request_bytes;
  out.results.resize(resp.responses.size());

  // --- key freshness (§3.4), then fan out authentication ---
  // All VOs of a batch normally carry one key version (single tree
  // state); resolve per distinct version anyway so a malformed response
  // cannot alias a stale key onto a fresh one.
  const auto verify_start = std::chrono::steady_clock::now();
  DigestSchema ds(db_name_, batch.table, meta.schema, meta.algo,
                  meta.modulus_bits);
  std::map<uint32_t, Result<std::shared_ptr<Recoverer>>> recoverers;
  std::vector<BatchVerifier::Job> jobs;
  std::vector<size_t> job_index;  // jobs[j] authenticates results[job_index[j]]
  jobs.reserve(resp.responses.size());
  const bool fast_path = verify_fast_path_;
  for (size_t i = 0; i < resp.responses.size(); ++i) {
    const QueryResponse& qr = resp.responses[i];
    Verified& v = out.results[i];
    v.replica_version = resp.replica_version;
    v.result_bytes = qr.result_bytes;
    v.vo_bytes = qr.vo_bytes;
    if (!qr.status.ok()) {
      // The edge reported this query failed (bad predicate, execution
      // error). There are no rows/VO to authenticate; surface the status
      // as-is — like a transport error it is unauthenticated, but a lying
      // edge gains nothing beyond withholding an answer.
      v.verification = qr.status;
      continue;
    }
    v.vo_digests = qr.vo.DigestCount();
    uint32_t kv = qr.vo.key_version;
    auto rec_it = recoverers.find(kv);
    if (rec_it == recoverers.end()) {
      rec_it = recoverers.emplace(kv, keys_->RecovererFor(kv, now)).first;
    }
    if (!rec_it->second.ok()) {
      v.verification = rec_it->second.status();
      continue;
    }
    BatchVerifier::Job job{&b.queries[i], &qr.rows, &qr.vo, nullptr};
    if (fast_path) {
      // Batches at one watermark pay each distinct signed-top recovery
      // once: byte-identical tops already recovered at this (table,
      // replica_version, key_version) come from the memo.
      job.known_top = LookupTopMemo(batch.table, resp.replica_version, kv,
                                    qr.vo.signed_top);
      if (job.known_top != nullptr) out.top_memo_hits++;
    }
    jobs.push_back(job);
    job_index.push_back(i);
  }

  std::vector<BatchVerifier::Outcome> outcomes;
  if (!jobs.empty()) {
    // The jobs all share a key version in the non-adversarial case; a
    // mixed-version batch degrades to per-version groups. One VerifyAll
    // call per group so the batch's signature pool is recovered once per
    // group, not once per job.
    BatchVerifier inline_verifier(BatchVerifier::Options{0});
    BatchVerifier* bv = verifier != nullptr ? verifier : &inline_verifier;
    std::map<uint32_t, std::vector<size_t>> by_version;
    for (size_t j = 0; j < jobs.size(); ++j) {
      by_version[resp.responses[job_index[j]].vo.key_version].push_back(j);
    }
    outcomes.resize(jobs.size());
    // The whole-pool recovery phase runs for the dominant key version
    // only: a (necessarily adversarial) mixed-version batch would
    // otherwise re-recover all P pool entries once per version group.
    // Minority groups still verify correctly through the cache /
    // per-reference path.
    uint32_t pool_kv = 0;
    size_t pool_kv_jobs = 0;
    for (const auto& [kv, group] : by_version) {
      if (group.size() > pool_kv_jobs) {
        pool_kv_jobs = group.size();
        pool_kv = kv;
      }
    }
    for (auto& [kv, group] : by_version) {
      Recoverer* rec = recoverers.at(kv).ValueOrDie().get();
      std::vector<BatchVerifier::Job> group_jobs;
      group_jobs.reserve(group.size());
      for (size_t j : group) group_jobs.push_back(jobs[j]);
      BatchVerifier::PoolContext ctx;
      ctx.pool = kv == pool_kv ? resp.sig_pool.get() : nullptr;
      ctx.cache = digest_cache_.get();
      ctx.cache_domain = kv;
      ctx.pool_counters = &out.crypto;
      std::vector<BatchVerifier::Outcome> group_out =
          bv->VerifyAll(ds, rec, group_jobs, fast_path ? &ctx : nullptr);
      for (size_t g = 0; g < group.size(); ++g) {
        outcomes[group[g]] = std::move(group_out[g]);
      }
    }
    for (size_t j = 0; j < jobs.size(); ++j) {
      Verified& v = out.results[job_index[j]];
      v.verification = std::move(outcomes[j].verification);
      v.counters = outcomes[j].counters;
      out.crypto.Add(outcomes[j].counters);
      if (fast_path && v.verification.ok() && outcomes[j].top_recovered) {
        InsertTopMemo(batch.table, resp.replica_version,
                      resp.responses[job_index[j]].vo.key_version,
                      resp.responses[job_index[j]].vo.signed_top,
                      outcomes[j].top_digest);
      }
    }
  }
  out.verify_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - verify_start)
          .count());

  for (size_t i = 0; i < resp.responses.size(); ++i) {
    out.results[i].rows = std::move(resp.responses[i].rows);
  }

  // --- replica freshness: one version served the whole batch, and only
  // authenticated answers may move the watermark (same rule as Query) ---
  bool any_verified = false;
  for (const Verified& v : out.results) {
    if (v.verification.ok()) {
      any_verified = true;
      break;
    }
  }
  if (any_verified) {
    uint64_t& watermark = freshness_[batch.table];
    out.stale_replica = resp.replica_version < watermark;
    watermark = std::max(watermark, resp.replica_version);
    for (Verified& v : out.results) {
      if (v.verification.ok()) v.stale_replica = out.stale_replica;
    }
  }
  return out;
}

}  // namespace vbtree
