#include "edge/client.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "common/random.h"
#include "edge/query_service/edge_director.h"
#include "edge/query_service/lazy_auditor.h"
#include "query/query_serde.h"

namespace vbtree {

namespace {
uint64_t MicrosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

void Client::RegisterTable(const std::string& table, Schema schema,
                           HashAlgorithm algo, int modulus_bits) {
  tables_[table] = TableMeta{std::move(schema), algo, modulus_bits,
                             /*sharded=*/false};
}

void Client::RegisterShardedTable(const std::string& table, Schema schema,
                                  HashAlgorithm algo, int modulus_bits) {
  tables_[table] = TableMeta{std::move(schema), algo, modulus_bits,
                             /*sharded=*/true};
}

void Client::BeginPinnedRead() {
  pinned_read_ = true;
  pinned_epochs_.clear();
}

void Client::EndPinnedRead() {
  pinned_read_ = false;
  pinned_epochs_.clear();
}

Client::EdgeChannels* Client::ResolveChannels(EdgeServer* edge,
                                              Transport* net) {
  if (net == nullptr) return nullptr;
  EdgeChannels* channels = &channels_[edge->name()];
  if (channels->transport != net) {
    channels->transport = net;
    channels->up = net->Channel("client->edge:" + edge->name());
    channels->down = net->Channel("edge:" + edge->name() + "->client");
  }
  return channels;
}

Result<const PartitionMap*> Client::VerifyMapBytes(const std::string& table,
                                                   const TableMeta& meta,
                                                   Slice bytes, uint64_t now) {
  auto cached = maps_.find(table);
  if (cached != maps_.end() && cached->second.bytes.size() == bytes.size() &&
      std::equal(bytes.data(), bytes.data() + bytes.size(),
                 cached->second.bytes.begin())) {
    // Byte-identical to a map this client already authenticated: the
    // signature check would recompute the same digest over the same
    // bytes, so skipping it is sound (and keeps the per-query map cost
    // an allocation-free compare on the steady state).
    if (pinned_read_) {
      auto [pin, inserted] =
          pinned_epochs_.try_emplace(table, cached->second.epoch);
      if (!inserted && pin->second != cached->second.epoch) {
        return Status::VerificationFailure(
            "pinned read: partition map of '" + table + "' moved from epoch " +
            std::to_string(pin->second) + " to " +
            std::to_string(cached->second.epoch) + " mid-read");
      }
    }
    return &cached->second.map;
  }
  ByteReader r{bytes};
  VBT_ASSIGN_OR_RETURN(PartitionMap map, PartitionMap::Deserialize(&r));
  if (map.table != table || map.db_name != db_name_) {
    return Status::VerificationFailure(
        "partition map is bound to " + map.db_name + "." + map.table +
        ", not " + db_name_ + "." + table);
  }
  uint64_t& floor = map_floor_[table];
  if (map.epoch < floor) {
    return Status::VerificationFailure(
        "stale partition map: epoch " + std::to_string(map.epoch) +
        " below this client's floor " + std::to_string(floor) +
        " (pre-split layout replayed?)");
  }
  if (pinned_read_) {
    // Mix rejection happens before the signature work (the epoch is
    // enough to decide), but a *new* pin records only after the map
    // authenticates below — a forged map must not seed the pin set.
    auto pin = pinned_epochs_.find(table);
    if (pin != pinned_epochs_.end() && pin->second != map.epoch) {
      return Status::VerificationFailure(
          "pinned read: partition map of '" + table + "' moved from epoch " +
          std::to_string(pin->second) + " to " + std::to_string(map.epoch) +
          " mid-read");
    }
  }
  // Key freshness applies to the map exactly as to tree digests: a map
  // signed under an expired key version is rejected here.
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<Recoverer> rec,
                       keys_->RecovererFor(map.key_version, now));
  VBT_RETURN_NOT_OK(map.Verify(rec.get(), meta.algo));
  floor = std::max(floor, map.epoch);
  if (pinned_read_) pinned_epochs_.try_emplace(table, map.epoch);
  VerifiedMap& slot = maps_[table];
  slot.epoch = map.epoch;
  slot.bytes.assign(bytes.data(), bytes.data() + bytes.size());
  slot.map = std::move(map);
  return &slot.map;
}

Result<Client::Verified> Client::QueryOne(EdgeServer* edge,
                                          const SelectQuery& wire_query,
                                          const std::string& schema_table,
                                          const TableMeta& meta, uint64_t now,
                                          Transport* net,
                                          const ShardEntry* shard) {
  EdgeChannels* channels = ResolveChannels(edge, net);

  // --- request over the wire ---
  ByteWriter req;
  SerializeSelectQuery(wire_query, &req);
  if (channels != nullptr) net->Record(channels->up, req.size());
  VBT_ASSIGN_OR_RETURN(std::vector<uint8_t> resp_bytes,
                       edge->HandleQueryBytes(Slice(req.buffer())));
  if (channels != nullptr) net->Record(channels->down, resp_bytes.size());

  // --- parse ---
  ByteReader r((Slice(resp_bytes)));
  VBT_ASSIGN_OR_RETURN(
      QueryResponse resp,
      DeserializeQueryResponse(&r, meta.schema, wire_query.projection));

  Verified out;
  out.request_bytes = req.size();
  out.result_bytes = resp.result_bytes;
  out.vo_bytes = resp.vo_bytes;
  out.vo_digests = resp.vo.DigestCount();

  out.replica_version = resp.replica_version;

  // --- key freshness (§3.4): reject stale key versions ---
  auto rec_or = keys_->RecovererFor(resp.vo.key_version, now);
  if (!rec_or.ok()) {
    out.rows = std::move(resp.rows);
    out.verification = rec_or.status();
    return out;
  }
  std::shared_ptr<Recoverer> base = rec_or.MoveValueUnsafe();
  CountingRecoverer recoverer(base.get(), &out.counters);

  // --- authenticate under the (shard-qualified) digest schema ---
  // A lineage shard (split child still in its ancestor's digest domain,
  // per the client-verified map entry) verifies its per-row and interior
  // signatures under the ancestor's name, and its VO anchors at the
  // binding signature tying that root to *this* shard's signed range —
  // a sibling tree from the same domain can never stand in for it.
  const bool lineage = shard != nullptr && !shard->lineage.empty();
  const std::string& digest_table = lineage ? shard->lineage : schema_table;
  DigestSchema ds(db_name_, digest_table, meta.schema, meta.algo,
                  meta.modulus_bits);
  Verifier verifier(std::move(ds), &recoverer);
  Verifier::TopBinding binding;
  if (lineage) {
    binding = Verifier::TopBinding{schema_table, shard->lo, shard->hi};
    verifier.set_top_binding(&binding);
  }
  verifier.set_counters(&out.counters);
  if (verify_fast_path_ && digest_cache_ != nullptr) {
    verifier.set_digest_cache(digest_cache_.get(), resp.vo.key_version);
  }
  out.verification = verifier.VerifySelect(wire_query, resp.rows, resp.vo);
  out.rows = std::move(resp.rows);

  // --- replica freshness: flag non-monotonic reads across edges ---
  // The replica version is reported by the (untrusted) edge outside the
  // VO, so it only informs the watermark when the answer itself
  // authenticated — otherwise a tampered response could poison the
  // staleness signal for every later honest read.
  if (out.verification.ok()) {
    uint64_t& watermark = freshness_[schema_table];
    out.stale_replica = resp.replica_version < watermark;
    watermark = std::max(watermark, resp.replica_version);
  }
  return out;
}

void Client::MergeVerifiedPart(Verified* merged, Verified part,
                               bool first_part) {
  if (first_part) {
    *merged = std::move(part);
    return;
  }
  // Shard parts arrive in ascending shard (= key) order; adjacent parts
  // must meet at the map's signed boundaries without overlap. Each VO
  // already proves its rows lie inside the clamped (disjoint) ranges, so
  // this is defense in depth against a merge bug, not a new trust step.
  if (!merged->rows.empty() && !part.rows.empty() &&
      merged->rows.back().key >= part.rows.front().key) {
    Status overlap = Status::VerificationFailure(
        "cross-shard results overlap at key " +
        std::to_string(part.rows.front().key));
    if (merged->verification.ok()) merged->verification = overlap;
  }
  merged->rows.insert(merged->rows.end(),
                      std::make_move_iterator(part.rows.begin()),
                      std::make_move_iterator(part.rows.end()));
  if (merged->verification.ok() && !part.verification.ok()) {
    merged->verification = part.verification;
  }
  merged->replica_version =
      std::min(merged->replica_version, part.replica_version);
  merged->stale_replica = merged->stale_replica || part.stale_replica;
  merged->pending_audit = merged->pending_audit || part.pending_audit;
  merged->shards_touched += part.shards_touched;
  merged->request_bytes += part.request_bytes;
  merged->result_bytes += part.result_bytes;
  merged->vo_bytes += part.vo_bytes;
  merged->vo_digests += part.vo_digests;
  merged->counters.Add(part.counters);
}

Result<Client::Verified> Client::Query(EdgeServer* edge,
                                       const SelectQuery& query, uint64_t now,
                                       Transport* net) {
  auto meta_it = tables_.find(query.table);
  if (meta_it == tables_.end()) {
    return Status::InvalidArgument("table not registered with client: " +
                                   query.table);
  }
  const TableMeta& meta = meta_it->second;

  SelectQuery q = query;
  q.NormalizeProjection();

  if (!meta.sharded) {
    return QueryOne(edge, q, q.table, meta, now, net);
  }

  // --- sharded: authenticate the layout, then scatter-gather ---
  auto map_bytes = edge->PartitionMapBytes(query.table);
  if (!map_bytes.ok()) return map_bytes.status();
  auto map_or = VerifyMapBytes(query.table, meta, Slice(**map_bytes), now);
  if (!map_or.ok()) {
    // An unverifiable or stale map is an authentication failure, not a
    // transport error: the edge presented a layout this client must not
    // trust.
    Verified out;
    out.verification = map_or.status();
    return out;
  }
  const PartitionMap& map = **map_or;
  std::vector<size_t> owners = map.ShardIndicesForRange(q.range);
  if (owners.empty()) {
    return Status::InvalidArgument("empty key range");
  }

  Verified out;
  bool first = true;
  for (size_t idx : owners) {
    SelectQuery sub = q;
    const std::string shard = map.shard_name(idx);
    if (owners.size() == 1) {
      // Single-shard range: ship the base-table query and let the edge
      // route it (the expected shard — hence the digest schema — is
      // still dictated by the client's verified map).
    } else {
      sub.table = shard;
      sub.range.lo = std::max(q.range.lo, map.shards[idx].lo);
      sub.range.hi = std::min(q.range.hi, map.shards[idx].hi);
    }
    auto part = QueryOne(edge, sub, shard, meta, now, net, &map.shards[idx]);
    if (!part.ok()) {
      // A shard the signed map dictates is unanswerable: completeness
      // cannot be established, which is an authentication failure (an
      // edge must not be able to hide a shard behind an "error").
      Verified missing;
      missing.verification = Status::VerificationFailure(
          "shard " + shard + " unanswered: " + part.status().ToString());
      MergeVerifiedPart(&out, std::move(missing), first);
    } else {
      MergeVerifiedPart(&out, std::move(*part), first);
    }
    first = false;
  }
  out.map_epoch = map.epoch;
  out.shards_touched = owners.size();
  return out;
}

Client::GroupOutcome Client::VerifyBatchGroup(
    const std::string& schema_table, const std::string& digest_table,
    const Verifier::TopBinding* binding, const TableMeta& meta,
    std::span<const SelectQuery> queries, QueryBatchResponse& resp,
    uint64_t now, BatchVerifier* verifier) {
  GroupOutcome out;
  out.results.resize(resp.responses.size());

  // --- key freshness (§3.4), then fan out authentication ---
  // All VOs of a group normally carry one key version (single tree
  // state); resolve per distinct version anyway so a malformed response
  // cannot alias a stale key onto a fresh one.
  DigestSchema ds(db_name_, digest_table, meta.schema, meta.algo,
                  meta.modulus_bits);
  std::map<uint32_t, Result<std::shared_ptr<Recoverer>>> recoverers;
  std::vector<BatchVerifier::Job> jobs;
  std::vector<size_t> job_index;  // jobs[j] authenticates results[job_index[j]]
  jobs.reserve(resp.responses.size());
  const bool fast_path = verify_fast_path_;
  for (size_t i = 0; i < resp.responses.size(); ++i) {
    const QueryResponse& qr = resp.responses[i];
    Verified& v = out.results[i];
    v.replica_version = resp.replica_version;
    v.result_bytes = qr.result_bytes;
    v.vo_bytes = qr.vo_bytes;
    if (!qr.status.ok()) {
      // The edge reported this query failed (bad predicate, execution
      // error). There are no rows/VO to authenticate; surface the status
      // as-is — like a transport error it is unauthenticated, but a lying
      // edge gains nothing beyond withholding an answer.
      v.verification = qr.status;
      continue;
    }
    v.vo_digests = qr.vo.DigestCount();
    uint32_t kv = qr.vo.key_version;
    auto rec_it = recoverers.find(kv);
    if (rec_it == recoverers.end()) {
      rec_it = recoverers.emplace(kv, keys_->RecovererFor(kv, now)).first;
    }
    if (!rec_it->second.ok()) {
      v.verification = rec_it->second.status();
      continue;
    }
    BatchVerifier::Job job{&queries[i], &qr.rows, &qr.vo, nullptr, binding};
    if (fast_path) {
      // Batches at one watermark pay each distinct signed-top recovery
      // once: byte-identical tops already recovered at this (shard,
      // replica_version, key_version) come from the memo.
      job.known_top = top_memo_.Lookup(schema_table, resp.replica_version, kv,
                                       qr.vo.signed_top);
      if (job.known_top != nullptr) out.top_memo_hits++;
    }
    jobs.push_back(job);
    job_index.push_back(i);
  }

  std::vector<BatchVerifier::Outcome> outcomes;
  if (!jobs.empty()) {
    // The jobs all share a key version in the non-adversarial case; a
    // mixed-version batch degrades to per-version groups. One VerifyAll
    // call per group so the batch's signature pool is recovered once per
    // group, not once per job.
    BatchVerifier inline_verifier(BatchVerifier::Options{0});
    BatchVerifier* bv = verifier != nullptr ? verifier : &inline_verifier;
    std::map<uint32_t, std::vector<size_t>> by_version;
    for (size_t j = 0; j < jobs.size(); ++j) {
      by_version[resp.responses[job_index[j]].vo.key_version].push_back(j);
    }
    outcomes.resize(jobs.size());
    // The whole-pool recovery phase runs for the dominant key version
    // only: a (necessarily adversarial) mixed-version batch would
    // otherwise re-recover all P pool entries once per version group.
    // Minority groups still verify correctly through the cache /
    // per-reference path.
    uint32_t pool_kv = 0;
    size_t pool_kv_jobs = 0;
    for (const auto& [kv, group] : by_version) {
      if (group.size() > pool_kv_jobs) {
        pool_kv_jobs = group.size();
        pool_kv = kv;
      }
    }
    for (auto& [kv, group] : by_version) {
      Recoverer* rec = recoverers.at(kv).ValueOrDie().get();
      std::vector<BatchVerifier::Job> group_jobs;
      group_jobs.reserve(group.size());
      for (size_t j : group) group_jobs.push_back(jobs[j]);
      BatchVerifier::PoolContext ctx;
      ctx.pool = kv == pool_kv ? resp.sig_pool.get() : nullptr;
      ctx.cache = digest_cache_.get();
      ctx.cache_domain = kv;
      ctx.pool_counters = &out.crypto;
      std::vector<BatchVerifier::Outcome> group_out =
          bv->VerifyAll(ds, rec, group_jobs, fast_path ? &ctx : nullptr);
      for (size_t g = 0; g < group.size(); ++g) {
        outcomes[group[g]] = std::move(group_out[g]);
      }
    }
    for (size_t j = 0; j < jobs.size(); ++j) {
      Verified& v = out.results[job_index[j]];
      v.verification = std::move(outcomes[j].verification);
      v.counters = outcomes[j].counters;
      out.crypto.Add(outcomes[j].counters);
      if (fast_path && v.verification.ok() && outcomes[j].top_recovered) {
        top_memo_.Insert(schema_table, resp.replica_version,
                         resp.responses[job_index[j]].vo.key_version,
                         resp.responses[job_index[j]].vo.signed_top,
                         outcomes[j].top_digest);
      }
    }
  }

  for (size_t i = 0; i < resp.responses.size(); ++i) {
    out.results[i].rows = std::move(resp.responses[i].rows);
  }

  // --- replica freshness: one version served the whole group, and only
  // authenticated answers may move the watermark (same rule as Query) ---
  for (const Verified& v : out.results) {
    if (v.verification.ok()) {
      out.any_verified = true;
      break;
    }
  }
  if (out.any_verified) {
    uint64_t& watermark = freshness_[schema_table];
    out.stale_replica = resp.replica_version < watermark;
    watermark = std::max(watermark, resp.replica_version);
    for (Verified& v : out.results) {
      if (v.verification.ok()) v.stale_replica = out.stale_replica;
    }
  }
  return out;
}

Client::GroupOutcome Client::DeferBatchGroup(
    const std::string& schema_table, const std::string& digest_table,
    const Verifier::TopBinding* binding, const TableMeta& meta,
    std::span<const SelectQuery> queries, QueryBatchResponse& resp,
    uint64_t now, TrustMode mode, const std::string& source) {
  GroupOutcome out;
  out.results.resize(resp.responses.size());

  // Freshness under lazy trust: the replica version is an *unaudited*
  // claim until the ticket clears, so the staleness baseline is the
  // auditor's audited watermark, and this answer must not move any
  // watermark — a lying edge could otherwise poison the monotonic-read
  // signal through answers whose audit later fails.
  const bool stale =
      resp.replica_version < auditor_->audited_watermark(schema_table);
  out.stale_replica = stale;

  for (size_t i = 0; i < resp.responses.size(); ++i) {
    const QueryResponse& qr = resp.responses[i];
    Verified& v = out.results[i];
    v.replica_version = resp.replica_version;
    v.result_bytes = qr.result_bytes;
    v.vo_bytes = qr.vo_bytes;
    if (!qr.status.ok()) {
      // Edge-reported failure: surfaced unauthenticated exactly as in
      // certified mode; there is nothing to audit.
      v.verification = qr.status;
      continue;
    }
    v.vo_digests = qr.vo.DigestCount();
    // The caller gets a copy; the ticket keeps the delivered originals
    // so the audit checks precisely what the application consumed.
    v.rows = qr.rows;
    v.pending_audit = true;
    v.stale_replica = stale;
    out.deferred++;
  }

  AuditTicket ticket;
  ticket.schema_table = schema_table;
  if (digest_table != schema_table) ticket.digest_table = digest_table;
  if (binding != nullptr) {
    ticket.has_binding = true;
    ticket.bind_lo = binding->lo;
    ticket.bind_hi = binding->hi;
  }
  ticket.schema = meta.schema;
  ticket.algo = meta.algo;
  ticket.modulus_bits = meta.modulus_bits;
  ticket.queries.assign(queries.begin(), queries.end());
  ticket.resp = std::move(resp);
  ticket.now = now;
  ticket.source = source;
  ticket.issued_at = std::chrono::steady_clock::now();
  // Blocks when the auditor's bounded queue is full: backpressure rides
  // the issuing path, the one place a slow auditor can slow anything.
  auditor_->Submit(std::move(ticket), mode);
  return out;
}

Result<Client::VerifiedBatch> Client::QueryBatched(QueryService* service,
                                                   const QueryBatch& batch,
                                                   uint64_t now,
                                                   BatchVerifier* verifier,
                                                   Transport* net) {
  auto meta_it = tables_.find(batch.table);
  if (meta_it == tables_.end()) {
    return Status::InvalidArgument("table not registered with client: " +
                                   batch.table);
  }
  const TableMeta& meta = meta_it->second;
  if (batch.queries.empty()) {
    return Status::InvalidArgument("empty query batch");
  }
  const TrustMode mode = batch.trust_mode;
  if (mode != TrustMode::kCertified && auditor_ == nullptr) {
    return Status::InvalidArgument(
        "lazy trust mode requires an attached auditor (Client::set_auditor)");
  }

  // Normalize locally: the response rows are encoded against the
  // normalized projections, and the verifier needs the same view.
  QueryBatch b = batch;
  for (SelectQuery& q : b.queries) {
    q.table = batch.table;
    q.NormalizeProjection();
  }

  EdgeServer* edge = service->edge();
  EdgeChannels* channels = ResolveChannels(edge, net);

  // --- request over the wire, through the edge's submission queue ---
  ByteWriter req(1 << 10);
  SerializeQueryBatch(b, &req);
  const size_t request_bytes = req.size();
  std::vector<uint8_t> resp_bytes;
  if (channels != nullptr) {
    // Both legs route through the transport's Deliver gate, so a fault
    // injector can drop/duplicate/truncate the RPC: a lost request
    // surfaces as an IOError (the failover overload's timeout signal), a
    // truncated response as a parse Corruption. Recording stays
    // unconditional — bytes are counted delivered or not.
    net->Record(channels->up, request_bytes);
    // A fault-injecting transport may hold a message for reordering and
    // run the delivery fn after this frame has returned (the sender sees
    // OK with an empty cell). The fns therefore capture only heap cells
    // by value, and writes/reads go through the cell's mutex — a late
    // release lands in an abandoned cell instead of a dead stack frame.
    struct RpcCell {
      std::mutex mu;
      std::vector<uint8_t> bytes;
    };
    auto served = std::make_shared<RpcCell>();
    VBT_RETURN_NOT_OK(net->Deliver(
        channels->up, Slice(req.buffer()),
        [service, served](Slice payload) -> Status {
          VBT_ASSIGN_OR_RETURN(
              std::vector<uint8_t> out,
              service
                  ->SubmitBatchBytes(std::vector<uint8_t>(
                      payload.data(), payload.data() + payload.size()))
                  .get());
          std::lock_guard<std::mutex> g(served->mu);
          served->bytes = std::move(out);
          return Status::OK();
        }));
    {
      std::lock_guard<std::mutex> g(served->mu);
      resp_bytes = std::move(served->bytes);
    }
    net->Record(channels->down, resp_bytes.size());
    auto delivered = std::make_shared<RpcCell>();
    VBT_RETURN_NOT_OK(net->Deliver(channels->down, Slice(resp_bytes),
                                   [delivered](Slice payload) {
                                     std::lock_guard<std::mutex> g(
                                         delivered->mu);
                                     delivered->bytes.assign(
                                         payload.data(),
                                         payload.data() + payload.size());
                                     return Status::OK();
                                   }));
    {
      std::lock_guard<std::mutex> g(delivered->mu);
      resp_bytes = std::move(delivered->bytes);
    }
  } else {
    VBT_ASSIGN_OR_RETURN(resp_bytes,
                         service->SubmitBatchBytes(req.TakeBuffer()).get());
  }
  if (resp_bytes.empty()) {
    // An empty cell means the wire swallowed a leg (e.g. a reordered
    // message still held by the injector) — a network failure, not
    // evidence of tampering, so it must strike as a timeout rather than
    // a verification failure.
    return Status::IOError("empty batch response");
  }

  VerifiedBatch out;
  out.request_bytes = request_bytes;

  const bool sharded_wire =
      resp_bytes[0] == static_cast<uint8_t>(BatchWire::kSharded);
  if (!sharded_wire) {
    if (meta.sharded) {
      // The edge answered with a direct (single-replica) response for a
      // table the catalog says is sharded. That is legitimate only when
      // the authenticated map has exactly one shard carrying the plain
      // table name; anything else is an edge trying to dodge per-shard
      // verification.
      const auto map_verify_start = std::chrono::steady_clock::now();
      auto map_bytes = edge->PartitionMapBytes(batch.table);
      if (!map_bytes.ok()) return map_bytes.status();
      auto map_or =
          VerifyMapBytes(batch.table, meta, Slice(**map_bytes), now);
      out.map_verify_us = MicrosSince(map_verify_start);
      if (!map_or.ok()) return map_or.status();
      const PartitionMap& map = **map_or;
      if (map.shards.size() != 1 || map.shard_name(0) != batch.table) {
        return Status::Corruption(
            "edge answered a sharded table with a direct batch response");
      }
      out.map_epoch = map.epoch;
    }
    // --- parse + verify the single coalesced response ---
    ByteReader r((Slice(resp_bytes)));
    VBT_ASSIGN_OR_RETURN(
        QueryBatchResponse resp,
        DeserializeQueryBatchResponse(&r, meta.schema, b.queries));
    out.replica_version = resp.replica_version;
    out.stats = resp.stats;
    const auto verify_start = std::chrono::steady_clock::now();
    GroupOutcome group =
        mode == TrustMode::kCertified
            ? VerifyBatchGroup(batch.table, batch.table, nullptr, meta,
                               b.queries, resp, now, verifier)
            : DeferBatchGroup(batch.table, batch.table, nullptr, meta,
                              b.queries, resp, now, mode, edge->name());
    out.verify_us = MicrosSince(verify_start);
    out.results = std::move(group.results);
    out.crypto = group.crypto;
    out.top_memo_hits = group.top_memo_hits;
    out.deferred_queries = group.deferred;
    out.stale_replica = group.stale_replica;
    return out;
  }

  // --- sharded scatter-gather response ---
  ByteReader r((Slice(resp_bytes)));
  VBT_ASSIGN_OR_RETURN(
      ShardedBatchDecoded decoded,
      DeserializeShardedQueryBatchResponse(&r, meta.schema, b.queries));
  if (!meta.sharded) {
    // An edge must not be able to force scatter semantics onto a table
    // the catalog says is unsharded.
    return Status::Corruption(
        "edge answered an unsharded table with a sharded batch response");
  }

  // Authenticate the map the edge claims to have scattered under; the
  // decode above already validated the groups against the plan this map
  // dictates.
  const auto map_verify_start = std::chrono::steady_clock::now();
  auto map_or =
      VerifyMapBytes(batch.table, meta, Slice(decoded.map_bytes), now);
  out.map_verify_us = MicrosSince(map_verify_start);
  if (!map_or.ok()) {
    // Deliver the (unverifiable) rows with the failure on every slot:
    // the caller sees its data but nothing authenticates.
    out.results.resize(b.queries.size());
    for (size_t g = 0; g < decoded.groups.size(); ++g) {
      const std::vector<ShardSlice>& slices = decoded.plan[g].slices;
      auto& responses = decoded.groups[g].resp.responses;
      for (size_t s = 0; s < slices.size() && s < responses.size(); ++s) {
        Verified& v = out.results[slices[s].query_index];
        v.verification = map_or.status();
        v.rows.insert(v.rows.end(),
                      std::make_move_iterator(responses[s].rows.begin()),
                      std::make_move_iterator(responses[s].rows.end()));
      }
    }
    return out;
  }
  const PartitionMap& map = **map_or;
  out.map_epoch = map.epoch;

  out.results.resize(b.queries.size());
  std::vector<bool> started(b.queries.size(), false);
  out.replica_version = ~uint64_t{0};
  const auto verify_start = std::chrono::steady_clock::now();
  for (size_t g = 0; g < decoded.groups.size(); ++g) {
    const ShardScatter& planned = decoded.plan[g];
    const std::string shard = map.shard_name(planned.shard_index);
    std::vector<SelectQuery> slice_queries;
    slice_queries.reserve(planned.slices.size());
    for (const ShardSlice& slice : planned.slices) {
      slice_queries.push_back(slice.query);
    }
    QueryBatchResponse& resp = decoded.groups[g].resp;
    out.stats.Accumulate(resp.stats);
    // Captured before DeferBatchGroup moves the response into its ticket.
    const uint64_t group_version = resp.replica_version;
    const ShardEntry& entry = map.shards[planned.shard_index];
    const bool lineage = !entry.lineage.empty();
    const std::string& digest_table = lineage ? entry.lineage : shard;
    Verifier::TopBinding binding;
    if (lineage) binding = Verifier::TopBinding{shard, entry.lo, entry.hi};
    GroupOutcome gv =
        mode == TrustMode::kCertified
            ? VerifyBatchGroup(shard, digest_table, lineage ? &binding : nullptr,
                               meta, slice_queries, resp, now, verifier)
            : DeferBatchGroup(shard, digest_table, lineage ? &binding : nullptr,
                              meta, slice_queries, resp, now, mode,
                              edge->name());
    out.crypto.Add(gv.crypto);
    out.top_memo_hits += gv.top_memo_hits;
    out.deferred_queries += gv.deferred;
    out.stale_replica = out.stale_replica || gv.stale_replica;
    out.replica_version = std::min(out.replica_version, group_version);
    out.shard_query_counts.emplace_back(planned.shard_id,
                                        planned.slices.size());
    // Stitch: groups ascend by shard index, so per-query parts land in
    // key order.
    for (size_t s = 0; s < planned.slices.size(); ++s) {
      const size_t qi = planned.slices[s].query_index;
      MergeVerifiedPart(&out.results[qi], std::move(gv.results[s]),
                        !started[qi]);
      started[qi] = true;
    }
  }
  out.verify_us = MicrosSince(verify_start);
  if (out.replica_version == ~uint64_t{0}) out.replica_version = 0;
  for (size_t qi = 0; qi < out.results.size(); ++qi) {
    out.results[qi].map_epoch = map.epoch;
    if (!started[qi]) {
      // The scatter plan assigned this query to no shard: its range is
      // empty. Nothing was executed or verified — report that (matching
      // the unsharded path's validation) instead of a default-OK slot
      // that would count as authenticated.
      out.results[qi].verification =
          Status::InvalidArgument("empty key range");
    }
  }
  return out;
}

Result<Client::VerifiedBatch> Client::QueryBatched(
    EdgeDirector* director, const QueryBatch& batch, uint64_t now,
    const FailoverPolicy& policy, BatchVerifier* verifier, Transport* net) {
  if (director == nullptr) {
    return Status::InvalidArgument("null edge director");
  }

  // Fingerprint of the normalized batch: dedupe key for failed attempts
  // (and the per-batch jitter stream, so concurrent clients with the
  // same seed don't back off in lockstep).
  uint64_t fp = 0xcbf29ce484222325ULL;
  {
    QueryBatch normalized = batch;
    for (SelectQuery& q : normalized.queries) {
      q.table = batch.table;
      q.NormalizeProjection();
    }
    ByteWriter w(256);
    SerializeQueryBatch(normalized, &w);
    for (uint8_t byte : w.buffer()) {
      fp ^= byte;
      fp *= 0x100000001B3ULL;
    }
  }
  Rng jitter(policy.jitter_seed ^ fp);

  const auto t_start = std::chrono::steady_clock::now();
  // Failed-attempt dedupe: (edge, replica version it answered with — 0
  // when it never answered). An edge in here deterministically failed
  // this exact batch, so it is skipped while any other candidate
  // remains; the batch never re-runs against the same (edge, version).
  std::set<std::pair<std::string, uint64_t>> failed;
  auto edge_failed = [&](const std::string& name) {
    for (const auto& [n, v] : failed) {
      if (n == name) return true;
    }
    return false;
  };

  VerifiedBatch stale_best;
  bool has_stale = false;
  Status last_error = Status::IOError("no edge candidates");
  uint64_t attempts = 0;
  uint64_t failovers = 0;
  std::string prev_edge;

  while (attempts < policy.max_attempts) {
    if (policy.deadline_us > 0 && MicrosSince(t_start) >= policy.deadline_us) {
      last_error = Status::IOError("failover deadline exceeded");
      break;
    }
    QueryService* target = nullptr;
    for (QueryService* c : director->RouteCandidates()) {
      if (!edge_failed(c->edge()->name())) {
        target = c;
        break;
      }
    }
    if (target == nullptr) break;  // every candidate already failed this batch
    const std::string name = target->edge()->name();

    if (attempts > 0) {
      // Jittered exponential backoff before each retry: base * factor^k
      // capped, then drawn from [base/2, 3*base/2).
      double base = static_cast<double>(policy.backoff_initial_us);
      for (uint64_t k = 1; k < attempts; ++k) base *= policy.backoff_factor;
      uint64_t base_us = std::min(static_cast<uint64_t>(base),
                                  policy.backoff_max_us);
      if (base_us > 0) {
        uint64_t sleep_us = base_us / 2 + jitter.Uniform(base_us);
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      }
    }
    attempts++;
    if (!prev_edge.empty() && prev_edge != name) failovers++;
    prev_edge = name;

    const auto t0 = std::chrono::steady_clock::now();
    auto res = QueryBatched(target, batch, now, verifier, net);
    const uint64_t attempt_us = MicrosSince(t0);

    if (!res.ok()) {
      last_error = res.status();
      // A corrupt response is the edge's fault (tampering or truncation
      // survived transport); anything else reads as the RPC failing.
      if (res.status().code() == StatusCode::kCorruption ||
          res.status().code() == StatusCode::kVerificationFailure) {
        director->ReportVerifyFailure(name);
      } else {
        director->ReportTimeout(name);
      }
      failed.emplace(name, 0);
      continue;
    }

    VerifiedBatch vb = std::move(*res);
    bool verify_failed = false;
    for (const Verified& v : vb.results) {
      if (v.verification.code() == StatusCode::kVerificationFailure) {
        verify_failed = true;
        break;
      }
    }
    if (verify_failed) {
      // The edge produced a proof that doesn't check out: strongest
      // possible strike, and the whole batch retries elsewhere — rows
      // from a caught-lying edge are never delivered, not even the
      // slots that individually verified.
      director->ReportVerifyFailure(name);
      failed.emplace(name, vb.replica_version);
      last_error = Status::VerificationFailure(
          "batch failed verification at edge " + name);
      continue;
    }

    // Authenticated answer. A blown per-attempt budget still strikes the
    // edge (slowness drifts it toward quarantine) but verified data is
    // never discarded over timing.
    if (policy.attempt_budget_us > 0 && attempt_us > policy.attempt_budget_us) {
      director->ReportTimeout(name);
    } else {
      director->ReportSuccess(name);
    }

    if (policy.min_fresh_version > 0 &&
        vb.replica_version < policy.min_fresh_version) {
      // Verified but below the freshness floor: keep the freshest such
      // answer as the degraded fallback and keep hunting.
      const uint64_t answered_version = vb.replica_version;
      if (!has_stale || answered_version > stale_best.replica_version) {
        stale_best = std::move(vb);
        stale_best.served_by = name;
      }
      has_stale = true;
      failed.emplace(name, answered_version);
      last_error = Status::NotFound("no fresh-enough healthy edge");
      continue;
    }

    vb.attempts = attempts;
    vb.failovers = failovers;
    vb.served_by = name;
    return vb;
  }

  // Degraded paths — always explicit, never a silent downgrade.
  if (has_stale) {
    stale_best.attempts = attempts;
    stale_best.failovers = failovers;
    stale_best.degraded = true;
    stale_best.degraded_mode = "stale_floor";
    stale_best.stale_replica = true;
    for (Verified& v : stale_best.results) {
      if (v.verification.ok()) v.stale_replica = true;
    }
    return stale_best;
  }
  if (policy.central_fallback != nullptr) {
    auto res = QueryBatched(policy.central_fallback, batch, now, verifier, net);
    if (res.ok()) {
      res->attempts = attempts + 1;
      res->failovers = failovers + (attempts > 0 ? 1 : 0);
      res->degraded = true;
      res->degraded_mode = "central";
      res->served_by = policy.central_fallback->edge() != nullptr
                           ? policy.central_fallback->edge()->name()
                           : "central";
      return res;
    }
    last_error = res.status();
  }
  return last_error;
}

}  // namespace vbtree
