#include "edge/client.h"

#include "query/query_serde.h"

namespace vbtree {

void Client::RegisterTable(const std::string& table, Schema schema,
                           HashAlgorithm algo, int modulus_bits) {
  tables_[table] = TableMeta{std::move(schema), algo, modulus_bits};
}

Result<Client::Verified> Client::Query(EdgeServer* edge,
                                       const SelectQuery& query, uint64_t now,
                                       SimulatedNetwork* net) {
  auto meta_it = tables_.find(query.table);
  if (meta_it == tables_.end()) {
    return Status::InvalidArgument("table not registered with client: " +
                                   query.table);
  }
  const TableMeta& meta = meta_it->second;

  SelectQuery q = query;
  q.NormalizeProjection();

  // --- request over the wire ---
  ByteWriter req;
  SerializeSelectQuery(q, &req);
  if (net != nullptr) {
    net->Record("client->edge:" + edge->name(), req.size());
  }
  VBT_ASSIGN_OR_RETURN(std::vector<uint8_t> resp_bytes,
                       edge->HandleQueryBytes(Slice(req.buffer())));
  if (net != nullptr) {
    net->Record("edge:" + edge->name() + "->client", resp_bytes.size());
  }

  // --- parse ---
  ByteReader r((Slice(resp_bytes)));
  VBT_ASSIGN_OR_RETURN(
      QueryResponse resp,
      DeserializeQueryResponse(&r, meta.schema, q.projection));

  Verified out;
  out.request_bytes = req.size();
  out.result_bytes = resp.result_bytes;
  out.vo_bytes = resp.vo_bytes;
  out.vo_digests = resp.vo.DigestCount();

  // --- key freshness (§3.4): reject stale key versions ---
  auto rec_or = keys_->RecovererFor(resp.vo.key_version, now);
  if (!rec_or.ok()) {
    out.rows = std::move(resp.rows);
    out.verification = rec_or.status();
    return out;
  }
  std::shared_ptr<Recoverer> base = rec_or.MoveValueUnsafe();
  CountingRecoverer recoverer(base.get(), &out.counters);

  // --- authenticate ---
  DigestSchema ds(db_name_, query.table, meta.schema, meta.algo,
                  meta.modulus_bits);
  Verifier verifier(std::move(ds), &recoverer);
  verifier.set_counters(&out.counters);
  out.verification = verifier.VerifySelect(q, resp.rows, resp.vo);
  out.rows = std::move(resp.rows);
  return out;
}

}  // namespace vbtree
