#include "edge/partition_map.h"

#include <algorithm>
#include <limits>
#include <set>

namespace vbtree {

namespace {
constexpr uint32_t kMapMagic = 0x50414D50;  // "PMAP"
constexpr int64_t kMinKey = std::numeric_limits<int64_t>::min();
constexpr int64_t kMaxKey = std::numeric_limits<int64_t>::max();
}  // namespace

std::string PartitionMap::ShardName(const std::string& table,
                                    uint32_t shard_id) {
  if (shard_id == 0) return table;
  return table + "#" + std::to_string(shard_id);
}

bool PartitionMap::ParseShardName(const std::string& dist_name,
                                  std::string* base, uint32_t* shard_id) {
  size_t pos = dist_name.rfind('#');
  if (pos == std::string::npos || pos + 1 >= dist_name.size()) return false;
  uint64_t id = 0;
  for (size_t i = pos + 1; i < dist_name.size(); ++i) {
    char c = dist_name[i];
    if (c < '0' || c > '9') return false;
    id = id * 10 + static_cast<uint64_t>(c - '0');
    if (id > std::numeric_limits<uint32_t>::max()) return false;
  }
  *base = dist_name.substr(0, pos);
  *shard_id = static_cast<uint32_t>(id);
  return true;
}

size_t PartitionMap::ShardIndexForKey(int64_t key) const {
  // First shard whose hi >= key; a well-formed map always has one.
  auto it = std::lower_bound(
      shards.begin(), shards.end(), key,
      [](const ShardEntry& s, int64_t k) { return s.hi < k; });
  return it == shards.end() ? shards.size() - 1
                            : static_cast<size_t>(it - shards.begin());
}

std::vector<size_t> PartitionMap::ShardIndicesForRange(
    const KeyRange& range) const {
  std::vector<size_t> out;
  if (range.empty() || shards.empty()) return out;
  for (size_t i = ShardIndexForKey(range.lo); i < shards.size(); ++i) {
    if (shards[i].lo > range.hi) break;
    out.push_back(i);
  }
  return out;
}

const ShardEntry* PartitionMap::FindShard(uint32_t shard_id) const {
  for (const ShardEntry& s : shards) {
    if (s.shard_id == shard_id) return &s;
  }
  return nullptr;
}

Status PartitionMap::CheckWellFormed() const {
  if (shards.empty()) return Status::Corruption("partition map has no shards");
  if (shards.front().lo != kMinKey || shards.back().hi != kMaxKey) {
    return Status::Corruption("partition map does not cover the key domain");
  }
  std::set<uint32_t> ids;
  for (size_t i = 0; i < shards.size(); ++i) {
    const ShardEntry& s = shards[i];
    if (s.lo > s.hi) return Status::Corruption("shard range is empty");
    if (!ids.insert(s.shard_id).second) {
      return Status::Corruption("duplicate shard id in partition map");
    }
    // Adjacency without overflow: a previous hi of INT64_MAX can have no
    // successor (an adversarial map could claim one), and `hi + 1` is
    // only evaluated once hi < INT64_MAX.
    if (i > 0 &&
        (shards[i - 1].hi == kMaxKey || shards[i - 1].hi + 1 != s.lo)) {
      return Status::Corruption("shard ranges are not contiguous");
    }
  }
  if (shards.size() > 1 && ids.count(0) != 0) {
    // Id 0 is reserved for the sole shard of an unsplit table (it keeps
    // the plain table name); a multi-shard map claiming it would alias a
    // shard's digest schema onto the whole-table schema.
    return Status::Corruption("multi-shard map uses reserved shard id 0");
  }
  return Status::OK();
}

Digest PartitionMap::ContentDigest(HashAlgorithm algo) const {
  ByteWriter w(64 + shards.size() * 20);
  w.PutU32(kMapMagic);
  w.PutString(db_name);
  w.PutString(table);
  w.PutU64(epoch);
  w.PutU32(key_version);
  w.PutVarint(shards.size());
  for (const ShardEntry& s : shards) {
    w.PutU32(s.shard_id);
    w.PutI64(s.lo);
    w.PutI64(s.hi);
    // Length-prefixed, so an empty lineage is still an unambiguous byte
    // in the preimage — "no lineage" and "lineage ''" cannot collide
    // with a crafted neighboring field.
    w.PutString(s.lineage);
  }
  return HashToDigest(algo, Slice(w.buffer()));
}

Status PartitionMap::Verify(Recoverer* recoverer, HashAlgorithm algo) const {
  VBT_RETURN_NOT_OK(CheckWellFormed());
  if (recoverer == nullptr) {
    return Status::InvalidArgument("null recoverer for partition map");
  }
  auto recovered = recoverer->Recover(sig);
  if (!recovered.ok()) {
    return Status::VerificationFailure("partition map signature of '" + table +
                                       "' does not recover: " +
                                       recovered.status().ToString());
  }
  if (!(*recovered == ContentDigest(algo))) {
    return Status::VerificationFailure(
        "partition map signature does not bind the shard layout of '" + table +
        "' (epoch " + std::to_string(epoch) + ")");
  }
  return Status::OK();
}

void PartitionMap::Serialize(ByteWriter* w) const {
  w->PutU32(kMapMagic);
  w->PutString(db_name);
  w->PutString(table);
  w->PutU64(epoch);
  w->PutU32(key_version);
  w->PutVarint(shards.size());
  for (const ShardEntry& s : shards) {
    w->PutU32(s.shard_id);
    w->PutI64(s.lo);
    w->PutI64(s.hi);
    w->PutString(s.lineage);
  }
  w->PutLengthPrefixed(Slice(sig.data(), sig.size()));
}

Result<PartitionMap> PartitionMap::Deserialize(ByteReader* r) {
  PartitionMap map;
  VBT_ASSIGN_OR_RETURN(uint32_t magic, r->ReadU32());
  if (magic != kMapMagic) return Status::Corruption("bad partition map magic");
  VBT_ASSIGN_OR_RETURN(map.db_name, r->ReadString());
  VBT_ASSIGN_OR_RETURN(map.table, r->ReadString());
  VBT_ASSIGN_OR_RETURN(map.epoch, r->ReadU64());
  VBT_ASSIGN_OR_RETURN(map.key_version, r->ReadU32());
  VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
  map.shards.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ShardEntry s;
    VBT_ASSIGN_OR_RETURN(s.shard_id, r->ReadU32());
    VBT_ASSIGN_OR_RETURN(s.lo, r->ReadI64());
    VBT_ASSIGN_OR_RETURN(s.hi, r->ReadI64());
    VBT_ASSIGN_OR_RETURN(s.lineage, r->ReadString());
    map.shards.push_back(s);
  }
  VBT_ASSIGN_OR_RETURN(Slice sig_bytes, r->ReadLengthPrefixed());
  map.sig.assign(sig_bytes.data(), sig_bytes.data() + sig_bytes.size());
  VBT_RETURN_NOT_OK(map.CheckWellFormed());
  return map;
}

std::vector<int64_t> EvenSplitPoints(size_t n, size_t shards) {
  std::vector<int64_t> splits;
  if (shards <= 1 || n == 0) return splits;
  for (size_t s = 1; s < shards; ++s) {
    int64_t point = static_cast<int64_t>(s * n / shards);
    if ((splits.empty() || point > splits.back()) && point > 0) {
      splits.push_back(point);
    }
  }
  return splits;
}

std::vector<ShardScatter> BuildScatterPlan(
    const PartitionMap& map, std::span<const SelectQuery> queries) {
  // slices_by_shard[i] collects the clamped sub-queries of shard index i.
  std::vector<std::vector<ShardSlice>> slices_by_shard(map.shards.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const SelectQuery& q = queries[qi];
    for (size_t si : map.ShardIndicesForRange(q.range)) {
      const ShardEntry& shard = map.shards[si];
      ShardSlice slice;
      slice.query_index = qi;
      slice.query = q;
      slice.query.table = map.shard_name(si);
      slice.query.range.lo = std::max(q.range.lo, shard.lo);
      slice.query.range.hi = std::min(q.range.hi, shard.hi);
      slices_by_shard[si].push_back(std::move(slice));
    }
  }
  std::vector<ShardScatter> plan;
  for (size_t si = 0; si < slices_by_shard.size(); ++si) {
    if (slices_by_shard[si].empty()) continue;
    ShardScatter group;
    group.shard_index = si;
    group.shard_id = map.shards[si].shard_id;
    group.slices = std::move(slices_by_shard[si]);
    plan.push_back(std::move(group));
  }
  return plan;
}

}  // namespace vbtree
