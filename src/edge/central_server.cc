#include "edge/central_server.h"

#include <algorithm>

#include "edge/edge_server.h"
#include "query/executor.h"

namespace vbtree {

namespace {
constexpr uint32_t kSnapshotMagic = 0x50414E53;  // "SNAP"
}  // namespace

Result<std::unique_ptr<CentralServer>> CentralServer::Create(Options options) {
  auto server = std::unique_ptr<CentralServer>(new CentralServer(options));
  server->disk_ = std::make_unique<InMemoryDiskManager>();
  server->pool_ = std::make_unique<BufferPool>(options.buffer_pool_pages,
                                               server->disk_.get());

  std::unique_ptr<Signer> signer;
  std::shared_ptr<Recoverer> recoverer;
  VBT_RETURN_NOT_OK(
      server->MakeSigner(options.key_seed, &signer, &recoverer));
  server->current_signer_ = signer.get();
  server->signers_.push_back(std::move(signer));
  server->key_version_ = 1;
  server->key_valid_from_ = 0;
  server->key_directory_.Publish(
      KeyVersionInfo{1, 0, options.key_validity}, std::move(recoverer));
  return server;
}

Status CentralServer::MakeSigner(uint64_t seed,
                                 std::unique_ptr<Signer>* signer,
                                 std::shared_ptr<Recoverer>* recoverer) {
  if (options_.use_rsa) {
    VBT_ASSIGN_OR_RETURN(std::unique_ptr<RsaSigner> rsa,
                         RsaSigner::Generate(options_.rsa_bits));
    VBT_ASSIGN_OR_RETURN(std::unique_ptr<RsaRecoverer> rec,
                         rsa->MakeRecoverer());
    *signer = std::move(rsa);
    *recoverer = std::move(rec);
    return Status::OK();
  }
  auto sim = std::make_unique<SimSigner>(seed, nullptr,
                                         options_.sim_work_factor);
  *recoverer = std::make_shared<SimRecoverer>(sim->key_material(), nullptr,
                                              options_.sim_work_factor);
  *signer = std::move(sim);
  return Status::OK();
}

Result<CentralServer::TableState*> CentralServer::GetTableState(
    const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return &it->second;
}

Result<const CentralServer::TableState*> CentralServer::GetTableState(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return &it->second;
}

Result<table_id_t> CentralServer::CreateTable(const std::string& name,
                                              Schema schema) {
  VBT_ASSIGN_OR_RETURN(table_id_t id, catalog_.CreateTable(name, schema));
  TableState state;
  VBT_ASSIGN_OR_RETURN(state.heap, TableHeap::Create(pool_.get(), schema));
  VBTreeOptions opts = options_.tree_opts;
  opts.key_version = key_version_;
  DigestSchema ds(options_.db_name, name, schema, opts.hash_algo,
                  opts.modulus_bits);
  state.tree = std::make_unique<VBTree>(std::move(ds), opts, current_signer_,
                                        &lock_manager_);
  tables_[name] = std::move(state);
  return id;
}

Status CentralServer::LoadTable(const std::string& name,
                                std::vector<Tuple> rows) {
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  std::sort(rows.begin(), rows.end(),
            [](const Tuple& a, const Tuple& b) { return a.key() < b.key(); });
  std::vector<std::pair<Tuple, Rid>> pairs;
  pairs.reserve(rows.size());
  for (Tuple& t : rows) {
    VBT_ASSIGN_OR_RETURN(Rid rid, state->heap->Insert(t));
    pairs.emplace_back(std::move(t), rid);
  }
  return state->tree->BulkLoad(pairs);
}

Status CentralServer::InsertTuple(const std::string& name, const Tuple& tuple,
                                  txn_id_t txn) {
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  VBT_ASSIGN_OR_RETURN(Rid rid, state->heap->Insert(tuple));

  // Record the op for delta propagation: entry signature material plus
  // the node signatures the insert produces (deterministic signers give
  // the same bytes the tree stores).
  UpdateOp op;
  op.kind = UpdateOp::Kind::kInsert;
  op.tuple = tuple;
  op.rid = rid;
  VBT_ASSIGN_OR_RETURN(op.material, state->tree->MakeEntryMaterial(tuple));
  state->tree->set_signature_log(&op.resigned);
  Status insert_status = state->tree->Insert(tuple, rid, txn);
  state->tree->set_signature_log(nullptr);
  VBT_RETURN_NOT_OK(insert_status);
  state->pending.push_back(std::move(op));
  state->version++;

  // Incremental maintenance of join views referencing this table.
  for (auto& [view_name, view] : views_) {
    const JoinSpec& spec = view->spec();
    if (spec.left_table == name) {
      VBT_ASSIGN_OR_RETURN(
          std::vector<Tuple> matches,
          MatchingRows(spec.right_table, spec.right_col,
                       tuple.value(spec.left_col)));
      for (const Tuple& right : matches) {
        VBT_RETURN_NOT_OK(view->AddJoinedRow(tuple, right));
      }
    }
    if (spec.right_table == name) {
      VBT_ASSIGN_OR_RETURN(
          std::vector<Tuple> matches,
          MatchingRows(spec.left_table, spec.left_col,
                       tuple.value(spec.right_col)));
      for (const Tuple& left : matches) {
        VBT_RETURN_NOT_OK(view->AddJoinedRow(left, tuple));
      }
    }
  }
  return Status::OK();
}

Result<size_t> CentralServer::DeleteRange(const std::string& name, int64_t lo,
                                          int64_t hi, txn_id_t txn) {
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  std::vector<int64_t> doomed = state->tree->KeysInRange(lo, hi);

  UpdateOp op;
  op.kind = UpdateOp::Kind::kDeleteRange;
  op.lo = lo;
  op.hi = hi;
  state->tree->set_signature_log(&op.resigned);
  auto removed_or = state->tree->DeleteRange(lo, hi, txn);
  state->tree->set_signature_log(nullptr);
  VBT_ASSIGN_OR_RETURN(size_t removed, std::move(removed_or));
  state->pending.push_back(std::move(op));
  state->version++;

  for (auto& [view_name, view] : views_) {
    const JoinSpec& spec = view->spec();
    for (int64_t key : doomed) {
      if (spec.left_table == name) {
        VBT_RETURN_NOT_OK(view->RemoveByLeftKey(key).status());
      }
      if (spec.right_table == name) {
        VBT_RETURN_NOT_OK(view->RemoveByRightKey(key).status());
      }
    }
  }
  // Heap rows become unreachable; a compaction pass could reclaim them.
  return removed;
}

Result<std::vector<Tuple>> CentralServer::MatchingRows(
    const std::string& table, size_t col, const Value& value) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(table));
  // Only rows still indexed by the VB-tree count (heap may hold tombstoned
  // leftovers from deletes).
  std::vector<Tuple> out;
  for (TableHeap::Iterator it = state->heap->Begin(); it.Valid(); it.Next()) {
    VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
    if (t.value(col).Compare(value) == 0 &&
        !state->tree->KeysInRange(t.key(), t.key()).empty()) {
      out.push_back(std::move(t));
    }
  }
  return out;
}

Status CentralServer::CreateJoinView(const JoinSpec& spec) {
  if (views_.count(spec.view_name) != 0 ||
      tables_.count(spec.view_name) != 0) {
    return Status::AlreadyExists("name already in use: " + spec.view_name);
  }
  VBT_ASSIGN_OR_RETURN(const TableState* left, GetTableState(spec.left_table));
  VBT_ASSIGN_OR_RETURN(const TableState* right,
                       GetTableState(spec.right_table));

  std::vector<Tuple> left_rows, right_rows;
  for (TableHeap::Iterator it = left->heap->Begin(); it.Valid(); it.Next()) {
    VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
    left_rows.push_back(std::move(t));
  }
  for (TableHeap::Iterator it = right->heap->Begin(); it.Valid(); it.Next()) {
    VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
    right_rows.push_back(std::move(t));
  }

  VBTreeOptions opts = options_.tree_opts;
  opts.key_version = key_version_;
  VBT_ASSIGN_OR_RETURN(
      std::unique_ptr<JoinView> view,
      JoinView::Materialize(spec, options_.db_name, left->heap->schema(),
                            right->heap->schema(), left_rows, right_rows,
                            pool_.get(), current_signer_, opts));
  VBT_RETURN_NOT_OK(
      catalog_.CreateTable(spec.view_name, view->schema(), /*is_view=*/true)
          .status());
  views_[spec.view_name] = std::move(view);
  return Status::OK();
}

Result<const JoinView*> CentralServer::GetJoinView(
    const std::string& view_name) const {
  auto it = views_.find(view_name);
  if (it == views_.end()) return Status::NotFound("no view " + view_name);
  return it->second.get();
}

Result<std::vector<uint8_t>> CentralServer::ExportTableSnapshot(
    const std::string& name) const {
  const TableHeap* heap = nullptr;
  const VBTree* tree = nullptr;
  auto view_it = views_.find(name);
  if (view_it != views_.end()) {
    heap = view_it->second->heap();
    tree = view_it->second->tree();
  } else {
    VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
    heap = state->heap.get();
    tree = state->tree.get();
  }

  ByteWriter w(1 << 16);
  w.PutU32(kSnapshotMagic);
  w.PutString(name);
  heap->schema().Serialize(&w);
  // Rows with their Rids (the VB-tree's leaf entries address them by Rid).
  size_t count_pos_rows = 0;
  std::vector<std::pair<Rid, Tuple>> rows;
  for (TableHeap::Iterator it = heap->Begin(); it.Valid(); it.Next()) {
    VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
    rows.emplace_back(it.rid(), std::move(t));
  }
  (void)count_pos_rows;
  w.PutVarint(rows.size());
  for (const auto& [rid, t] : rows) {
    w.PutU32(static_cast<uint32_t>(rid.page_id));
    w.PutU16(rid.slot);
    t.Serialize(&w);
  }
  tree->SerializeTo(&w);
  // Version lineage for delta propagation (views are always version 0:
  // they are propagated by snapshot only).
  uint64_t version = 0;
  if (view_it == views_.end()) {
    auto state_it = tables_.find(name);
    if (state_it != tables_.end()) version = state_it->second.version;
  }
  w.PutU64(version);
  return w.TakeBuffer();
}

Result<std::vector<uint8_t>> CentralServer::ExportUpdateDelta(
    const std::string& name) {
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  UpdateBatch batch;
  batch.table = name;
  batch.to_version = state->version;
  batch.from_version = state->version - state->pending.size();
  batch.ops = std::move(state->pending);
  state->pending.clear();
  ByteWriter w(1 << 12);
  batch.Serialize(&w);
  return w.TakeBuffer();
}

Status CentralServer::PublishDelta(const std::string& name, EdgeServer* edge,
                                   SimulatedNetwork* net) {
  VBT_ASSIGN_OR_RETURN(std::vector<uint8_t> delta, ExportUpdateDelta(name));
  if (net != nullptr) {
    net->Record("central->edge:" + edge->name() + ":delta", delta.size());
  }
  return edge->ApplyUpdateBatch(Slice(delta));
}

Result<uint64_t> CentralServer::TableVersion(const std::string& name) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
  return state->version;
}

Status CentralServer::PublishTable(const std::string& name, EdgeServer* edge,
                                   SimulatedNetwork* net) {
  VBT_ASSIGN_OR_RETURN(std::vector<uint8_t> snapshot,
                       ExportTableSnapshot(name));
  if (net != nullptr) {
    net->Record("central->edge:" + edge->name(), snapshot.size());
  }
  return edge->InstallSnapshot(Slice(snapshot));
}

Status CentralServer::RotateKey(uint64_t now) {
  // Old private key retires: results signed with it remain verifiable only
  // within its (now truncated) validity window, so edge servers cannot
  // masquerade stale data as current (§3.4).
  VBT_RETURN_NOT_OK(key_directory_.Expire(key_version_, now));

  std::unique_ptr<Signer> signer;
  std::shared_ptr<Recoverer> recoverer;
  VBT_RETURN_NOT_OK(
      MakeSigner(options_.key_seed + key_version_ + 1, &signer, &recoverer));
  current_signer_ = signer.get();
  signers_.push_back(std::move(signer));
  key_version_++;
  key_valid_from_ = now;
  key_directory_.Publish(
      KeyVersionInfo{key_version_, now, now + options_.key_validity},
      std::move(recoverer));

  for (auto& [name, state] : tables_) {
    VBT_RETURN_NOT_OK(state.tree->ResignAll(
        current_signer_, key_version_, Executor::FetcherFor(state.heap.get())));
  }
  for (auto& [name, view] : views_) {
    VBT_RETURN_NOT_OK(view->tree()->ResignAll(
        current_signer_, key_version_, Executor::FetcherFor(view->heap())));
  }
  return Status::OK();
}

VBTree* CentralServer::tree(const std::string& name) {
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second.tree.get();
  auto vit = views_.find(name);
  return vit != views_.end() ? vit->second->tree() : nullptr;
}

TableHeap* CentralServer::heap(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.heap.get();
}

}  // namespace vbtree
