#include "edge/central_server.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_map>

#include "query/executor.h"

namespace vbtree {

namespace {
constexpr uint32_t kSnapshotMagic = 0x50414E53;  // "SNAP"
constexpr int64_t kMinKey = std::numeric_limits<int64_t>::min();
constexpr int64_t kMaxKey = std::numeric_limits<int64_t>::max();

/// Brief backoff for writers racing a shard split: the parent domain is
/// sealed for the (short) window between seal and layout swap, during
/// which re-resolving still yields the retiring shard.
void SplitRetryBackoff(int attempt) {
  if (attempt < 16) {
    std::this_thread::yield();
  } else {
    std::this_thread::sleep_for(std::chrono::microseconds(
        std::min(1000, 10 * (attempt - 15))));
  }
}
}  // namespace

Result<std::unique_ptr<CentralServer>> CentralServer::Create(Options options) {
  auto server = std::unique_ptr<CentralServer>(new CentralServer(options));
  server->disk_ = std::make_unique<InMemoryDiskManager>();
  server->pool_ = std::make_unique<BufferPool>(options.buffer_pool_pages,
                                               server->disk_.get());

  std::unique_ptr<Signer> signer;
  std::shared_ptr<Recoverer> recoverer;
  VBT_RETURN_NOT_OK(
      server->MakeSigner(options.key_seed, &signer, &recoverer));
  server->current_signer_ = signer.get();
  server->signers_.push_back(std::move(signer));
  server->key_version_ = 1;
  server->key_valid_from_ = 0;
  server->key_directory_.Publish(
      KeyVersionInfo{1, 0, options.key_validity}, std::move(recoverer));
  if (options.auto_split) {
    server->policy_thread_ = std::thread([s = server.get()] { s->PolicyLoop(); });
  }
  return server;
}

CentralServer::~CentralServer() {
  {
    std::lock_guard<std::mutex> lock(policy_mu_);
    stopping_ = true;
    policy_cv_.notify_all();
  }
  if (policy_thread_.joinable()) policy_thread_.join();
  // Seal every write domain (drain + join workers) while the shards they
  // mutate are still alive.
  std::shared_lock maps(maps_mu_);
  for (auto& [name, state] : tables_) {
    std::shared_lock layout(state->layout_mu);
    for (auto& shard : state->shards) {
      if (shard->domain != nullptr) shard->domain->Seal();
    }
  }
}

Status CentralServer::MakeSigner(uint64_t seed,
                                 std::unique_ptr<Signer>* signer,
                                 std::shared_ptr<Recoverer>* recoverer) {
  if (options_.use_rsa) {
    VBT_ASSIGN_OR_RETURN(std::unique_ptr<RsaSigner> rsa,
                         RsaSigner::Generate(options_.rsa_bits));
    VBT_ASSIGN_OR_RETURN(std::unique_ptr<RsaRecoverer> rec,
                         rsa->MakeRecoverer());
    *signer = std::move(rsa);
    *recoverer = std::move(rec);
    return Status::OK();
  }
  auto sim = std::make_unique<SimSigner>(seed, nullptr,
                                         options_.sim_work_factor);
  *recoverer = std::make_shared<SimRecoverer>(sim->key_material(), nullptr,
                                              options_.sim_work_factor);
  *signer = std::move(sim);
  return Status::OK();
}

Result<CentralServer::TableState*> CentralServer::GetTableState(
    const std::string& name) {
  std::shared_lock maps(maps_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return it->second.get();
}

Result<const CentralServer::TableState*> CentralServer::GetTableState(
    const std::string& name) const {
  std::shared_lock maps(maps_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return it->second.get();
}

Result<std::shared_ptr<CentralServer::ShardState>> CentralServer::ResolveShard(
    const std::string& dist_name) const {
  std::string base = dist_name;
  uint32_t shard_id = 0;
  bool qualified = PartitionMap::ParseShardName(dist_name, &base, &shard_id);
  VBT_ASSIGN_OR_RETURN(const TableState* table, GetTableState(base));
  std::shared_lock layout(table->layout_mu);
  for (const auto& shard : table->shards) {
    if (shard->shard_id == shard_id) return shard;
  }
  return Status::NotFound(qualified
                              ? "no shard named " + dist_name
                              : "table " + base +
                                    " is sharded; address shards by "
                                    "distribution name");
}

std::shared_ptr<CentralServer::ShardState> CentralServer::ShardForKey(
    const TableState& table, int64_t key) const {
  std::shared_lock layout(table.layout_mu);
  for (const auto& shard : table.shards) {
    if (key >= shard->lo && key <= shard->hi) return shard;
  }
  return nullptr;  // unreachable for a well-formed layout
}

Result<std::shared_ptr<CentralServer::ShardState>>
CentralServer::MakeShardShell(const std::string& table, const Schema& schema,
                              uint32_t shard_id, int64_t lo, int64_t hi) {
  auto shard = std::make_shared<ShardState>(options_.update_log_window);
  shard->shard_id = shard_id;
  shard->lo = lo;
  shard->hi = hi;
  shard->dist_name = PartitionMap::ShardName(table, shard_id);
  VBT_ASSIGN_OR_RETURN(shard->heap, TableHeap::Create(pool_.get(), schema));
  shard->domain = std::make_unique<ShardWriteDomain>(
      shard->dist_name,
      ShardWriteDomain::Options{options_.domain_queue_capacity,
                                options_.domain_recent_keys});
  return shard;
}

Result<std::shared_ptr<CentralServer::ShardState>> CentralServer::MakeShard(
    const std::string& table, const Schema& schema, uint32_t shard_id,
    int64_t lo, int64_t hi) {
  VBT_ASSIGN_OR_RETURN(auto shard,
                       MakeShardShell(table, schema, shard_id, lo, hi));
  VBTreeOptions opts = options_.tree_opts;
  opts.key_version = key_version_;
  // The digest schema is qualified by the shard's distribution name:
  // signatures minted for this shard verify ONLY against this shard.
  DigestSchema ds(options_.db_name, shard->dist_name, schema, opts.hash_algo,
                  opts.modulus_bits);
  shard->tree = std::make_unique<VBTree>(std::move(ds), opts, current_signer_,
                                         &lock_manager_);
  return shard;
}

Status CentralServer::SignMap(TableState* table) {
  table->map.db_name = options_.db_name;
  table->map.key_version = key_version_;
  table->map.shards.clear();
  for (const auto& shard : table->shards) {
    ShardEntry entry;
    entry.shard_id = shard->shard_id;
    entry.lo = shard->lo;
    entry.hi = shard->hi;
    // Split children keep their parent's digest domain until the next
    // key rotation re-homes them (DESIGN.md §10); the signed map tells
    // clients which domain to verify under and that a binding anchor is
    // expected.
    const std::string& ds_name = shard->tree->digest_schema().table_name();
    if (ds_name != shard->dist_name) entry.lineage = ds_name;
    table->map.shards.push_back(std::move(entry));
  }
  VBT_RETURN_NOT_OK(table->map.CheckWellFormed());
  Digest content = table->map.ContentDigest(options_.tree_opts.hash_algo);
  VBT_ASSIGN_OR_RETURN(table->map.sig, current_signer_->Sign(content));
  ByteWriter w(128);
  table->map.Serialize(&w);
  table->map_bytes =
      std::make_shared<const std::vector<uint8_t>>(w.TakeBuffer());
  return Status::OK();
}

Result<table_id_t> CentralServer::CreateTable(const std::string& name,
                                              Schema schema) {
  return CreateTable(name, std::move(schema), {});
}

Result<table_id_t> CentralServer::CreateTable(
    const std::string& name, Schema schema,
    const std::vector<int64_t>& split_points) {
  if (name.find('#') != std::string::npos) {
    return Status::InvalidArgument(
        "table names must not contain '#' (reserved for shard qualifiers)");
  }
  for (size_t i = 0; i < split_points.size(); ++i) {
    if (split_points[i] == kMinKey) {
      return Status::InvalidArgument("split point at INT64_MIN is a no-op");
    }
    if (i > 0 && split_points[i] <= split_points[i - 1]) {
      return Status::InvalidArgument("split points must be strictly ascending");
    }
  }
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(table_id_t id, catalog_.CreateTable(name, schema));
  auto state = std::make_unique<TableState>();
  state->schema = schema;
  state->map.table = name;
  state->map.epoch = 1;
  if (split_points.empty()) {
    // Sole shard id 0: plain table name, digest-compatible with the
    // pre-sharding layout.
    VBT_ASSIGN_OR_RETURN(auto shard,
                         MakeShard(name, schema, 0, kMinKey, kMaxKey));
    state->shards.push_back(std::move(shard));
  } else {
    int64_t lo = kMinKey;
    for (size_t i = 0; i <= split_points.size(); ++i) {
      // The split point itself starts the next shard, so this shard ends
      // one key before it (the final shard pins INT64_MAX).
      const bool last = i == split_points.size();
      int64_t hi = last ? kMaxKey : split_points[i] - 1;
      VBT_ASSIGN_OR_RETURN(
          auto shard,
          MakeShard(name, schema, state->next_shard_id++, lo, hi));
      state->shards.push_back(std::move(shard));
      if (!last) lo = split_points[i];
    }
  }
  VBT_RETURN_NOT_OK(SignMap(state.get()));
  {
    std::unique_lock maps(maps_mu_);
    tables_[name] = std::move(state);
    table_order_.push_back(name);
  }
  return id;
}

Status CentralServer::LoadTable(const std::string& name,
                                std::vector<Tuple> rows) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  std::sort(rows.begin(), rows.end(),
            [](const Tuple& a, const Tuple& b) { return a.key() < b.key(); });
  std::shared_lock layout(state->layout_mu);
  // Rows are sorted, shards ascend by range: one pass routes each
  // contiguous run to its owning shard.
  size_t r = 0;
  for (const auto& shard : state->shards) {
    // Quiesce the shard's write pipeline: BulkLoad must observe the tree
    // at a clean op boundary (queued ops run after, and restart the log
    // lineage if they find versions they never logged).
    shard->domain->Pause();
    std::vector<std::pair<Tuple, Rid>> pairs;
    {
      std::unique_lock lock(shard->mu);
      while (r < rows.size() && rows[r].key() <= shard->hi) {
        Result<Rid> rid = shard->heap->Insert(rows[r]);
        if (!rid.ok()) {
          shard->domain->Resume();
          return rid.status();
        }
        pairs.emplace_back(std::move(rows[r]), *rid);
        ++r;
      }
      if (!pairs.empty()) {
        Status loaded = shard->tree->BulkLoad(pairs);
        if (!loaded.ok()) {
          shard->domain->Resume();
          return loaded;
        }
        shard->log.Reset(shard->tree->version());
      }
    }
    shard->domain->Resume();
  }
  return Status::OK();
}

Status CentralServer::ApplyInsert(ShardState* shard, const Tuple& tuple,
                                  txn_id_t txn) {
  std::unique_lock lock(shard->mu);
  VBT_ASSIGN_OR_RETURN(Rid rid, shard->heap->Insert(tuple));

  // Record the op for delta propagation: entry signature material plus
  // the node signatures the insert produces (deterministic signers give
  // the same bytes the tree stores).
  UpdateOp op;
  op.kind = UpdateOp::Kind::kInsert;
  op.tuple = tuple;
  op.rid = rid;
  VBT_ASSIGN_OR_RETURN(op.material, shard->tree->MakeEntryMaterial(tuple));
  shard->tree->set_signature_log(&op.resigned);
  Status insert_status = shard->tree->Insert(tuple, rid, txn);
  shard->tree->set_signature_log(nullptr);
  VBT_RETURN_NOT_OK(insert_status);
  if (shard->log.head_version() + 1 != shard->tree->version()) {
    // The tree was mutated out-of-band (direct tree() access by tests
    // or benches, or a bulk load that reset the lineage): those versions
    // were never logged, so restart the lineage — stale subscribers
    // catch up by snapshot.
    shard->log.Reset(shard->tree->version() - 1);
  }
  shard->log.Append(std::move(op));
  shard->domain->RecordInsertKey(tuple.key());
  return Status::OK();
}

Result<std::future<Status>> CentralServer::InsertTupleAsync(
    const std::string& name, const Tuple& tuple, txn_id_t txn) {
  for (int attempt = 0;; ++attempt) {
    bool in_view = false;
    {
      // maps_mu_ is held shared across the view-membership check AND the
      // enqueue (see header): CreateJoinView registers view_refs_ under
      // the exclusive lock before draining, so a fast-path op it cannot
      // see is impossible.
      std::shared_lock maps(maps_mu_);
      auto it = tables_.find(name);
      if (it == tables_.end()) {
        return Status::NotFound("no table named " + name);
      }
      in_view = view_refs_.count(name) != 0;
      if (!in_view) {
        TableState* state = it->second.get();
        std::shared_ptr<ShardState> shard = ShardForKey(*state, tuple.key());
        if (shard == nullptr) {
          return Status::Internal("no shard owns key " +
                                  std::to_string(tuple.key()));
        }
        auto queued = shard->domain->Enqueue([this, shard, tuple, txn] {
          return ApplyInsert(shard.get(), tuple, txn);
        });
        if (queued.ok()) return queued;
        // Sealed: the shard is being split away; re-resolve against the
        // post-split layout.
      }
    }
    if (in_view) {
      // View-referenced table: maintenance is cross-table, so the op
      // runs on the serialized path and the future is already resolved.
      std::promise<Status> done;
      done.set_value(InsertTupleSerial(name, tuple, txn));
      return done.get_future();
    }
    SplitRetryBackoff(attempt);
  }
}

Status CentralServer::InsertTuple(const std::string& name, const Tuple& tuple,
                                  txn_id_t txn) {
  VBT_ASSIGN_OR_RETURN(std::future<Status> done,
                       InsertTupleAsync(name, tuple, txn));
  return done.get();
}

Status CentralServer::InsertTupleSerial(const std::string& name,
                                        const Tuple& tuple, txn_id_t txn) {
  std::lock_guard<std::mutex> views(views_mu_);
  for (int attempt = 0;; ++attempt) {
    std::future<Status> done;
    {
      std::shared_lock maps(maps_mu_);
      auto it = tables_.find(name);
      if (it == tables_.end()) {
        return Status::NotFound("no table named " + name);
      }
      std::shared_ptr<ShardState> shard =
          ShardForKey(*it->second, tuple.key());
      if (shard == nullptr) {
        return Status::Internal("no shard owns key " +
                                std::to_string(tuple.key()));
      }
      auto queued = shard->domain->Enqueue([this, shard, tuple, txn] {
        return ApplyInsert(shard.get(), tuple, txn);
      });
      if (queued.ok()) done = std::move(*queued);
    }
    if (!done.valid()) {
      SplitRetryBackoff(attempt);
      continue;
    }
    // Safe to wait while holding views_mu_: domain ops never take it.
    VBT_RETURN_NOT_OK(done.get());
    break;
  }
  return MaintainViewsOnInsert(name, tuple);
}

Status CentralServer::MaintainViewsOnInsert(const std::string& name,
                                            const Tuple& tuple) {
  // Iterating views_ is safe while holding views_mu_: CreateJoinView is
  // the only writer of the map and takes views_mu_ too.
  for (auto& [view_name, vs] : views_) {
    const JoinSpec& spec = vs->view->spec();
    if (spec.left_table == name) {
      VBT_ASSIGN_OR_RETURN(
          std::vector<Tuple> matches,
          MatchingRows(spec.right_table, spec.right_col,
                       tuple.value(spec.left_col)));
      std::unique_lock vlock(vs->mu);
      for (const Tuple& right : matches) {
        VBT_RETURN_NOT_OK(vs->view->AddJoinedRow(tuple, right));
      }
    }
    if (spec.right_table == name) {
      VBT_ASSIGN_OR_RETURN(
          std::vector<Tuple> matches,
          MatchingRows(spec.left_table, spec.left_col,
                       tuple.value(spec.right_col)));
      std::unique_lock vlock(vs->mu);
      for (const Tuple& left : matches) {
        VBT_RETURN_NOT_OK(vs->view->AddJoinedRow(left, tuple));
      }
    }
  }
  return Status::OK();
}

Status CentralServer::ApplyDelete(ShardState* shard, int64_t lo, int64_t hi,
                                  txn_id_t txn, size_t* removed) {
  std::unique_lock lock(shard->mu);
  UpdateOp op;
  op.kind = UpdateOp::Kind::kDeleteRange;
  op.lo = lo;
  op.hi = hi;
  shard->tree->set_signature_log(&op.resigned);
  auto removed_or = shard->tree->DeleteRange(lo, hi, txn);
  shard->tree->set_signature_log(nullptr);
  VBT_ASSIGN_OR_RETURN(*removed, std::move(removed_or));
  if (shard->log.head_version() + 1 != shard->tree->version()) {
    shard->log.Reset(shard->tree->version() - 1);
  }
  shard->log.Append(std::move(op));
  return Status::OK();
}

Result<size_t> CentralServer::DeleteRange(const std::string& name, int64_t lo,
                                          int64_t hi, txn_id_t txn) {
  if (lo > hi) return static_cast<size_t>(0);
  size_t total_removed = 0;
  for (int attempt = 0;; ++attempt) {
    // One clamped op per overlapping domain, then wait on all of them:
    // each shard's log records the delete at that shard's own sequence
    // point (the cross-shard fence; see the class comment).
    std::vector<std::future<Status>> waits;
    std::vector<std::shared_ptr<size_t>> counts;
    bool sealed = false;
    bool in_view = false;
    {
      std::shared_lock maps(maps_mu_);
      auto it = tables_.find(name);
      if (it == tables_.end()) {
        return Status::NotFound("no table named " + name);
      }
      TableState* state = it->second.get();
      if (view_refs_.count(name) != 0) {
        in_view = true;
      } else {
        std::shared_lock layout(state->layout_mu);
        for (const auto& shard : state->shards) {
          if (shard->lo > hi || shard->hi < lo) continue;
          const int64_t clamped_lo = std::max(lo, shard->lo);
          const int64_t clamped_hi = std::min(hi, shard->hi);
          auto count = std::make_shared<size_t>(0);
          auto queued = shard->domain->Enqueue(
              [this, shard, clamped_lo, clamped_hi, txn, count] {
                return ApplyDelete(shard.get(), clamped_lo, clamped_hi, txn,
                                   count.get());
              });
          if (!queued.ok()) {
            // Mid-split: finish what was queued (clamped deletes are
            // idempotent — a retry removes nothing twice), then retry
            // against the post-split layout.
            sealed = true;
            break;
          }
          waits.push_back(std::move(*queued));
          counts.push_back(std::move(count));
        }
      }
    }
    if (in_view) {
      std::lock_guard<std::mutex> views(views_mu_);
      VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
      VBT_ASSIGN_OR_RETURN(size_t removed,
                           DeleteRangeSerial(state, name, lo, hi, txn));
      return total_removed + removed;
    }
    Status first_error = Status::OK();
    for (auto& w : waits) {
      Status s = w.get();
      if (!s.ok() && first_error.ok()) first_error = s;
    }
    for (const auto& c : counts) total_removed += *c;
    VBT_RETURN_NOT_OK(first_error);
    if (!sealed) return total_removed;
    SplitRetryBackoff(attempt);
  }
}

Result<size_t> CentralServer::DeleteRangeSerial(TableState* state,
                                                const std::string& name,
                                                int64_t lo, int64_t hi,
                                                txn_id_t txn) {
  // Caller holds views_mu_: all DML on this table is serialized, so the
  // doomed-key set collected before the deletes is exact.
  size_t total_removed = 0;
  std::set<int64_t> doomed;
  for (int attempt = 0;; ++attempt) {
    std::vector<std::future<Status>> waits;
    std::vector<std::shared_ptr<size_t>> counts;
    bool sealed = false;
    {
      std::shared_lock layout(state->layout_mu);
      for (const auto& shard : state->shards) {
        if (shard->lo > hi || shard->hi < lo) continue;
        const int64_t clamped_lo = std::max(lo, shard->lo);
        const int64_t clamped_hi = std::min(hi, shard->hi);
        for (int64_t key :
             shard->tree->KeysInRange(clamped_lo, clamped_hi)) {
          doomed.insert(key);
        }
        auto count = std::make_shared<size_t>(0);
        auto queued = shard->domain->Enqueue(
            [this, shard, clamped_lo, clamped_hi, txn, count] {
              return ApplyDelete(shard.get(), clamped_lo, clamped_hi, txn,
                                 count.get());
            });
        if (!queued.ok()) {
          sealed = true;
          break;
        }
        waits.push_back(std::move(*queued));
        counts.push_back(std::move(count));
      }
    }
    Status first_error = Status::OK();
    for (auto& w : waits) {
      Status s = w.get();
      if (!s.ok() && first_error.ok()) first_error = s;
    }
    for (const auto& c : counts) total_removed += *c;
    VBT_RETURN_NOT_OK(first_error);
    if (!sealed) break;
    SplitRetryBackoff(attempt);
  }

  for (auto& [view_name, vs] : views_) {
    const JoinSpec& spec = vs->view->spec();
    std::unique_lock vlock(vs->mu);
    for (int64_t key : doomed) {
      if (spec.left_table == name) {
        VBT_RETURN_NOT_OK(vs->view->RemoveByLeftKey(key).status());
      }
      if (spec.right_table == name) {
        VBT_RETURN_NOT_OK(vs->view->RemoveByRightKey(key).status());
      }
    }
  }
  // Heap rows become unreachable; a compaction pass could reclaim them.
  return total_removed;
}

Status CentralServer::SplitShard(const std::string& name, int64_t split_key) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));

  std::shared_ptr<ShardState> parent = ShardForKey(*state, split_key);
  if (parent == nullptr || parent->lo >= split_key) {
    return Status::InvalidArgument(
        "split key must fall strictly inside an existing shard range");
  }

  // 1. Seal the parent's write pipeline: queued ops drain into its log,
  // then the worker exits. Writers racing the seal get kResourceExhausted from
  // Enqueue and retry against the post-split layout installed below.
  parent->domain->Seal();

  // Fresh ids for both halves: pre-split signatures can never alias a
  // current shard. Shells only — the trees come from CloneRange.
  VBT_ASSIGN_OR_RETURN(auto left,
                       MakeShardShell(name, state->schema,
                                      state->next_shard_id++, parent->lo,
                                      split_key - 1));
  VBT_ASSIGN_OR_RETURN(auto right,
                       MakeShardShell(name, state->schema,
                                      state->next_shard_id++, split_key,
                                      parent->hi));

  // 2. Copy the parent's live rows (heap rows still indexed by the tree;
  // the heap may hold tombstoned leftovers from range deletes) into the
  // children's heaps, recording the Rid remap the tree surgery needs.
  // Digest preimages never mention Rids, so remapping is signature-free.
  {
    std::shared_lock lock(parent->mu);  // exports may still be reading
    std::unordered_map<uint64_t, Rid> remap;
    auto pack = [](const Rid& r) {
      return (static_cast<uint64_t>(static_cast<uint32_t>(r.page_id)) << 16) |
             r.slot;
    };
    for (TableHeap::Iterator it = parent->heap->Begin(); it.Valid();
         it.Next()) {
      VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
      if (parent->tree->KeysInRange(t.key(), t.key()).empty()) continue;
      ShardState* half = t.key() < split_key ? left.get() : right.get();
      VBT_ASSIGN_OR_RETURN(Rid rid, half->heap->Insert(t));
      remap[pack(it.rid())] = rid;
    }
    auto remap_fn = [&remap, &pack](const Rid& r) {
      auto found = remap.find(pack(r));
      return found == remap.end() ? r : found->second;
    };

    // 3. O(boundary) tree surgery: each child deep-copies the parent's
    // already-signed nodes, trims to its range, and re-signs only the
    // O(height) trim boundary plus its root binding. The per-row and
    // interior signatures transfer verbatim because the children stay in
    // the parent's digest domain (lineage; see SignMap).
    VBT_ASSIGN_OR_RETURN(
        left->tree,
        parent->tree->CloneRange(left->dist_name, left->lo, left->hi,
                                 remap_fn));
    VBT_ASSIGN_OR_RETURN(
        right->tree,
        parent->tree->CloneRange(right->dist_name, right->lo, right->hi,
                                 remap_fn));
  }
  left->log.Reset(left->tree->version());
  right->log.Reset(right->tree->version());

  std::unique_lock layout(state->layout_mu);
  auto pos = std::find(state->shards.begin(), state->shards.end(), parent);
  if (pos == state->shards.end()) {
    return Status::Internal("parent shard vanished during split");
  }
  pos = state->shards.erase(pos);
  pos = state->shards.insert(pos, std::move(right));
  state->shards.insert(pos, std::move(left));
  state->map.epoch++;
  return SignMap(state);
}

Result<size_t> CentralServer::ShardCount(const std::string& name) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
  std::shared_lock layout(state->layout_mu);
  return state->shards.size();
}

Result<PartitionMap> CentralServer::TablePartitionMap(
    const std::string& name) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
  std::shared_lock layout(state->layout_mu);
  return state->map;
}

Result<std::vector<Tuple>> CentralServer::MatchingRows(
    const std::string& table, size_t col, const Value& value) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(table));
  std::vector<std::shared_ptr<ShardState>> shards;
  {
    std::shared_lock layout(state->layout_mu);
    shards = state->shards;
  }
  // Only rows still indexed by a shard's VB-tree count (heaps may hold
  // tombstoned leftovers from deletes).
  std::vector<Tuple> out;
  for (const auto& shard : shards) {
    std::shared_lock lock(shard->mu);
    for (TableHeap::Iterator it = shard->heap->Begin(); it.Valid();
         it.Next()) {
      VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
      if (t.value(col).Compare(value) == 0 &&
          !shard->tree->KeysInRange(t.key(), t.key()).empty()) {
        out.push_back(std::move(t));
      }
    }
  }
  return out;
}

Status CentralServer::CreateJoinView(const JoinSpec& spec) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  {
    std::shared_lock maps(maps_mu_);
    if (views_.count(spec.view_name) != 0 ||
        tables_.count(spec.view_name) != 0) {
      return Status::AlreadyExists("name already in use: " + spec.view_name);
    }
  }
  VBT_ASSIGN_OR_RETURN(const TableState* left, GetTableState(spec.left_table));
  VBT_ASSIGN_OR_RETURN(const TableState* right,
                       GetTableState(spec.right_table));

  // Re-route the base tables' DML to the serialized path BEFORE
  // materializing: registration happens under the exclusive maps lock,
  // and the fast path holds it shared across its membership check and
  // enqueue, so every fast-path op is either already queued (the drain
  // below flushes it into the materialization scan) or will see the
  // registration and serialize behind views_mu_.
  {
    std::unique_lock maps(maps_mu_);
    view_refs_.insert(spec.left_table);
    view_refs_.insert(spec.right_table);
  }
  auto unregister = [&] {
    std::unique_lock maps(maps_mu_);
    view_refs_.erase(view_refs_.find(spec.left_table));
    view_refs_.erase(view_refs_.find(spec.right_table));
  };
  std::lock_guard<std::mutex> views(views_mu_);
  for (const TableState* base : {left, right}) {
    std::shared_lock layout(base->layout_mu);
    for (const auto& shard : base->shards) shard->domain->Drain();
  }

  auto collect_rows =
      [](const TableState* table) -> Result<std::vector<Tuple>> {
    std::vector<Tuple> rows;
    std::shared_lock layout(table->layout_mu);
    for (const auto& shard : table->shards) {
      std::shared_lock lock(shard->mu);
      for (TableHeap::Iterator it = shard->heap->Begin(); it.Valid();
           it.Next()) {
        VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
        rows.push_back(std::move(t));
      }
    }
    return rows;
  };
  auto materialize = [&]() -> Status {
    VBT_ASSIGN_OR_RETURN(std::vector<Tuple> left_rows, collect_rows(left));
    VBT_ASSIGN_OR_RETURN(std::vector<Tuple> right_rows, collect_rows(right));

    VBTreeOptions opts = options_.tree_opts;
    opts.key_version = key_version_;
    VBT_ASSIGN_OR_RETURN(
        std::unique_ptr<JoinView> view,
        JoinView::Materialize(spec, options_.db_name, left->schema,
                              right->schema, left_rows, right_rows,
                              pool_.get(), current_signer_, opts));
    VBT_RETURN_NOT_OK(
        catalog_.CreateTable(spec.view_name, view->schema(), /*is_view=*/true)
            .status());
    auto vs = std::make_unique<ViewState>();
    vs->view = std::move(view);
    {
      std::unique_lock maps(maps_mu_);
      views_[spec.view_name] = std::move(vs);
      view_order_.push_back(spec.view_name);
    }
    return Status::OK();
  };
  Status created = materialize();
  if (!created.ok()) unregister();
  return created;
}

Result<const JoinView*> CentralServer::GetJoinView(
    const std::string& view_name) const {
  std::shared_lock maps(maps_mu_);
  auto it = views_.find(view_name);
  if (it == views_.end()) return Status::NotFound("no view " + view_name);
  return it->second->view.get();
}

Status CentralServer::ExportHeapAndTree(const std::string& name,
                                        const Schema& schema,
                                        const TableHeap* heap,
                                        const VBTree* tree,
                                        ByteWriter* w) const {
  w->PutU32(kSnapshotMagic);
  w->PutString(name);
  schema.Serialize(w);
  // Rows with their Rids (the VB-tree's leaf entries address them by Rid).
  std::vector<std::pair<Rid, Tuple>> rows;
  for (TableHeap::Iterator it = heap->Begin(); it.Valid(); it.Next()) {
    VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
    rows.emplace_back(it.rid(), std::move(t));
  }
  w->PutVarint(rows.size());
  for (const auto& [rid, t] : rows) {
    w->PutU32(static_cast<uint32_t>(rid.page_id));
    w->PutU16(rid.slot);
    t.Serialize(w);
  }
  // The tree carries the replica version.
  tree->SerializeTo(w);
  return Status::OK();
}

Result<std::vector<uint8_t>> CentralServer::ExportTableSnapshot(
    const std::string& name) const {
  ByteWriter w(1 << 16);
  {
    std::shared_lock maps(maps_mu_);
    auto view_it = views_.find(name);
    if (view_it != views_.end()) {
      const ViewState* vs = view_it->second.get();
      std::shared_lock vlock(vs->mu);
      VBT_RETURN_NOT_OK(ExportHeapAndTree(name, vs->view->heap()->schema(),
                                          vs->view->heap(), vs->view->tree(),
                                          &w));
      return w.TakeBuffer();
    }
  }
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  std::shared_lock lock(shard->mu);
  VBT_RETURN_NOT_OK(ExportHeapAndTree(shard->dist_name,
                                      shard->heap->schema(),
                                      shard->heap.get(), shard->tree.get(),
                                      &w));
  return w.TakeBuffer();
}

Result<UpdateBatch> CentralServer::DeltaSince(const std::string& name,
                                              uint64_t from_version,
                                              size_t max_ops) const {
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  std::shared_lock lock(shard->mu);
  return shard->log.BatchSince(shard->dist_name, from_version, max_ops);
}

Result<bool> CentralServer::DeltaCovers(const std::string& name,
                                        uint64_t from_version) const {
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  std::shared_lock lock(shard->mu);
  // A log whose head trails the tree version means the tree was mutated
  // out-of-band: a delta replay would silently diverge, so force a
  // snapshot until the next DML restarts the lineage.
  return shard->log.Covers(from_version) &&
         shard->log.head_version() == shard->tree->version();
}

Status CentralServer::TruncateLog(const std::string& name, uint64_t version) {
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  std::unique_lock lock(shard->mu);
  shard->log.TruncateThrough(version);
  return Status::OK();
}

Result<uint64_t> CentralServer::VersionOf(const std::string& name) const {
  {
    std::shared_lock maps(maps_mu_);
    auto view_it = views_.find(name);
    if (view_it != views_.end()) return view_it->second->view->tree()->version();
  }
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  return shard->tree->version();
}

std::vector<std::string> CentralServer::TableNames() const {
  std::shared_lock maps(maps_mu_);
  return table_order_;
}

std::vector<std::string> CentralServer::ViewNames() const {
  std::shared_lock maps(maps_mu_);
  return view_order_;
}

std::vector<std::string> CentralServer::ShardNames() const {
  std::shared_lock maps(maps_mu_);
  std::vector<std::string> names;
  for (const std::string& table : table_order_) {
    auto it = tables_.find(table);
    if (it == tables_.end()) continue;
    std::shared_lock layout(it->second->layout_mu);
    for (const auto& shard : it->second->shards) {
      names.push_back(shard->dist_name);
    }
  }
  return names;
}

std::vector<CentralServer::MapInfo> CentralServer::PartitionMaps() const {
  std::shared_lock maps(maps_mu_);
  std::vector<MapInfo> out;
  for (const std::string& table : table_order_) {
    auto it = tables_.find(table);
    if (it == tables_.end()) continue;
    std::shared_lock layout(it->second->layout_mu);
    out.push_back(MapInfo{table, it->second->map.epoch,
                          it->second->map_bytes});
  }
  return out;
}

Status CentralServer::RotateKey(uint64_t now) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  // Quiesce every write domain: rotation is the one global sequence
  // point (every shard re-signs under the new key). Queued ops are
  // retained and apply after Resume, under the new key — they are
  // simply later ops in each shard's stream.
  std::vector<std::shared_ptr<ShardState>> all_shards;
  {
    std::shared_lock maps(maps_mu_);
    for (auto& [name, state] : tables_) {
      std::shared_lock layout(state->layout_mu);
      for (auto& shard : state->shards) all_shards.push_back(shard);
    }
  }
  for (auto& shard : all_shards) shard->domain->Pause();
  auto resume_all = [&] {
    for (auto& shard : all_shards) shard->domain->Resume();
  };

  // Old private key retires: results signed with it remain verifiable only
  // within its (now truncated) validity window, so edge servers cannot
  // masquerade stale data as current (§3.4).
  Status expired = key_directory_.Expire(key_version_, now);
  if (!expired.ok()) {
    resume_all();
    return expired;
  }

  std::unique_ptr<Signer> signer;
  std::shared_ptr<Recoverer> recoverer;
  Status made =
      MakeSigner(options_.key_seed + key_version_ + 1, &signer, &recoverer);
  if (!made.ok()) {
    resume_all();
    return made;
  }
  current_signer_ = signer.get();
  signers_.push_back(std::move(signer));
  key_version_++;
  key_valid_from_ = now;
  key_directory_.Publish(
      KeyVersionInfo{key_version_, now, now + options_.key_validity},
      std::move(recoverer));

  auto rotate_all = [&]() -> Status {
    for (auto& [name, state] : tables_) {
      std::unique_lock layout(state->layout_mu);
      for (auto& shard : state->shards) {
        std::unique_lock lock(shard->mu);
        // The O(rows) re-sign a rotation must pay anyway is the moment a
        // lineage shard (split child still in its parent's digest
        // domain) is re-homed under its own name: the rebind drops the
        // root binding and retires the lineage (DESIGN.md §10).
        const std::string* rebind =
            shard->tree->digest_schema().table_name() != shard->dist_name
                ? &shard->dist_name
                : nullptr;
        VBT_RETURN_NOT_OK(shard->tree->ResignAll(
            current_signer_, key_version_,
            Executor::FetcherFor(shard->heap.get()), rebind));
        // A re-sign cannot ship as a delta: restart the log lineage so
        // every subscriber catches up with a fresh snapshot.
        shard->log.Reset(shard->tree->version());
      }
      // The map signature must also move to the new key (and lineage
      // entries clear); bump the epoch so the hub re-ships it (and
      // clients advance their epoch floors).
      state->map.epoch++;
      VBT_RETURN_NOT_OK(SignMap(state.get()));
    }
    for (auto& [name, vs] : views_) {
      std::unique_lock vlock(vs->mu);
      VBT_RETURN_NOT_OK(vs->view->tree()->ResignAll(
          current_signer_, key_version_,
          Executor::FetcherFor(vs->view->heap())));
    }
    return Status::OK();
  };
  Status rotated = rotate_all();
  resume_all();
  return rotated;
}

Result<CentralServer::SnapshotShape> CentralServer::SnapshotShapeOf(
    const std::string& name) const {
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  return SnapshotShape{
      shard->tree->size(),
      shard->tree->digest_schema().schema().num_columns()};
}

VBTree* CentralServer::tree(const std::string& name) {
  auto shard = ResolveShard(name);
  if (shard.ok()) return (*shard)->tree.get();
  std::shared_lock maps(maps_mu_);
  auto vit = views_.find(name);
  return vit != views_.end() ? vit->second->view->tree() : nullptr;
}

TableHeap* CentralServer::heap(const std::string& name) {
  auto shard = ResolveShard(name);
  return shard.ok() ? (*shard)->heap.get() : nullptr;
}

Result<std::vector<CentralServer::DomainStats>>
CentralServer::TableDomainStats(const std::string& name) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
  std::vector<std::shared_ptr<ShardState>> shards;
  {
    std::shared_lock layout(state->layout_mu);
    shards = state->shards;
  }
  std::vector<DomainStats> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) {
    ShardWriteDomain::Stats ds = shard->domain->stats();
    DomainStats s;
    s.dist_name = shard->dist_name;
    s.lo = shard->lo;
    s.hi = shard->hi;
    s.ops_enqueued = ds.ops_enqueued;
    s.ops_applied = ds.ops_applied;
    s.queue_depth = ds.queue_depth;
    s.queue_depth_peak = ds.queue_depth_peak;
    s.queue_depth_p99 = ds.queue_depth_p99;
    s.sign_calls = shard->tree->sign_calls();
    s.tree_version = shard->tree->version();
    s.rows = shard->tree->size();
    out.push_back(std::move(s));
  }
  return out;
}

void CentralServer::PolicyLoop() {
  // Per-shard ops_applied at the start of the current window, and the
  // last split time per table (cooldown) — policy-thread-private.
  std::map<std::string, uint64_t> ops_baseline;
  std::map<std::string, std::chrono::steady_clock::time_point> last_split;
  std::unique_lock lock(policy_mu_);
  while (!stopping_) {
    policy_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.auto_split_interval_ms));
    if (stopping_) break;
    lock.unlock();
    RunSplitPolicyOnce(&ops_baseline, &last_split);
    lock.lock();
  }
}

void CentralServer::RunSplitPolicyOnce(
    std::map<std::string, uint64_t>* ops_baseline,
    std::map<std::string, std::chrono::steady_clock::time_point>* last_split) {
  const auto now = std::chrono::steady_clock::now();
  for (const std::string& table : TableNames()) {
    auto state_or = GetTableState(table);
    if (!state_or.ok()) continue;
    const TableState* state = *state_or;
    std::vector<std::shared_ptr<ShardState>> shards;
    {
      std::shared_lock layout(state->layout_mu);
      shards = state->shards;
    }

    // Window traffic per shard: ops_applied delta since the last pass.
    // Baselines advance even for tables skipped below, so a table coming
    // off cooldown is judged on fresh traffic, not the backlog.
    std::vector<uint64_t> window(shards.size(), 0);
    uint64_t total = 0;
    for (size_t i = 0; i < shards.size(); ++i) {
      const uint64_t applied = shards[i]->domain->ops_applied();
      uint64_t& base = (*ops_baseline)[shards[i]->dist_name];
      window[i] = applied - base;
      base = applied;
      total += window[i];
    }

    if (shards.size() >= options_.auto_split_max_shards) continue;
    auto cooled = last_split->find(table);
    if (cooled != last_split->end() &&
        now - cooled->second <
            std::chrono::milliseconds(options_.auto_split_cooldown_ms)) {
      continue;
    }

    // Hot = clears the absolute traffic floor AND (when there are
    // siblings to compare against) exceeds skew x the table mean. A
    // sole shard with real traffic is always hot: splitting it is what
    // bootstraps parallel signing.
    const double mean =
        shards.empty() ? 0.0 : static_cast<double>(total) / shards.size();
    size_t hot = shards.size();
    uint64_t hot_ops = 0;
    for (size_t i = 0; i < shards.size(); ++i) {
      if (window[i] < options_.auto_split_min_ops) continue;
      if (shards.size() > 1 &&
          static_cast<double>(window[i]) <= options_.auto_split_skew * mean) {
        continue;
      }
      if (shards[i]->tree->size() < options_.auto_split_min_rows) continue;
      if (window[i] > hot_ops) {
        hot = i;
        hot_ops = window[i];
      }
    }
    if (hot == shards.size()) continue;
    const auto& shard = shards[hot];

    // Split where the traffic is: the median of the shard's recent
    // insert keys bisects the hot range even when the stored-key median
    // sits elsewhere. Fall back to the stored-key median for read-mostly
    // shards that went hot without fresh inserts.
    std::vector<int64_t> keys = shard->domain->RecentInsertKeys();
    std::erase_if(keys, [&](int64_t k) {
      return k <= shard->lo || k > shard->hi;
    });
    if (keys.empty()) {
      keys = shard->tree->KeysInRange(shard->lo, shard->hi);
      std::erase_if(keys, [&](int64_t k) { return k <= shard->lo; });
    }
    if (keys.empty()) continue;
    std::nth_element(keys.begin(), keys.begin() + keys.size() / 2, keys.end());
    const int64_t split_key = keys[keys.size() / 2];
    if (split_key <= shard->lo || split_key > shard->hi) continue;

    // One split per table per pass; convergence is iterative (the next
    // window re-measures the halves).
    if (SplitShard(table, split_key).ok()) {
      splits_triggered_.fetch_add(1, std::memory_order_relaxed);
      (*last_split)[table] = now;
    }
  }
}

}  // namespace vbtree
