#include "edge/central_server.h"

#include <algorithm>
#include <limits>

#include "query/executor.h"

namespace vbtree {

namespace {
constexpr uint32_t kSnapshotMagic = 0x50414E53;  // "SNAP"
constexpr int64_t kMinKey = std::numeric_limits<int64_t>::min();
constexpr int64_t kMaxKey = std::numeric_limits<int64_t>::max();
}  // namespace

Result<std::unique_ptr<CentralServer>> CentralServer::Create(Options options) {
  auto server = std::unique_ptr<CentralServer>(new CentralServer(options));
  server->disk_ = std::make_unique<InMemoryDiskManager>();
  server->pool_ = std::make_unique<BufferPool>(options.buffer_pool_pages,
                                               server->disk_.get());

  std::unique_ptr<Signer> signer;
  std::shared_ptr<Recoverer> recoverer;
  VBT_RETURN_NOT_OK(
      server->MakeSigner(options.key_seed, &signer, &recoverer));
  server->current_signer_ = signer.get();
  server->signers_.push_back(std::move(signer));
  server->key_version_ = 1;
  server->key_valid_from_ = 0;
  server->key_directory_.Publish(
      KeyVersionInfo{1, 0, options.key_validity}, std::move(recoverer));
  return server;
}

Status CentralServer::MakeSigner(uint64_t seed,
                                 std::unique_ptr<Signer>* signer,
                                 std::shared_ptr<Recoverer>* recoverer) {
  if (options_.use_rsa) {
    VBT_ASSIGN_OR_RETURN(std::unique_ptr<RsaSigner> rsa,
                         RsaSigner::Generate(options_.rsa_bits));
    VBT_ASSIGN_OR_RETURN(std::unique_ptr<RsaRecoverer> rec,
                         rsa->MakeRecoverer());
    *signer = std::move(rsa);
    *recoverer = std::move(rec);
    return Status::OK();
  }
  auto sim = std::make_unique<SimSigner>(seed, nullptr,
                                         options_.sim_work_factor);
  *recoverer = std::make_shared<SimRecoverer>(sim->key_material(), nullptr,
                                              options_.sim_work_factor);
  *signer = std::move(sim);
  return Status::OK();
}

Result<CentralServer::TableState*> CentralServer::GetTableState(
    const std::string& name) {
  std::shared_lock maps(maps_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return it->second.get();
}

Result<const CentralServer::TableState*> CentralServer::GetTableState(
    const std::string& name) const {
  std::shared_lock maps(maps_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return it->second.get();
}

Result<std::shared_ptr<CentralServer::ShardState>> CentralServer::ResolveShard(
    const std::string& dist_name) const {
  std::string base = dist_name;
  uint32_t shard_id = 0;
  bool qualified = PartitionMap::ParseShardName(dist_name, &base, &shard_id);
  VBT_ASSIGN_OR_RETURN(const TableState* table, GetTableState(base));
  std::shared_lock layout(table->layout_mu);
  for (const auto& shard : table->shards) {
    if (shard->shard_id == shard_id) return shard;
  }
  return Status::NotFound(qualified
                              ? "no shard named " + dist_name
                              : "table " + base +
                                    " is sharded; address shards by "
                                    "distribution name");
}

std::shared_ptr<CentralServer::ShardState> CentralServer::ShardForKey(
    const TableState& table, int64_t key) const {
  std::shared_lock layout(table.layout_mu);
  for (const auto& shard : table.shards) {
    if (key >= shard->lo && key <= shard->hi) return shard;
  }
  return nullptr;  // unreachable for a well-formed layout
}

Result<std::shared_ptr<CentralServer::ShardState>> CentralServer::MakeShard(
    const std::string& table, const Schema& schema, uint32_t shard_id,
    int64_t lo, int64_t hi) {
  auto shard = std::make_shared<ShardState>(options_.update_log_window);
  shard->shard_id = shard_id;
  shard->lo = lo;
  shard->hi = hi;
  shard->dist_name = PartitionMap::ShardName(table, shard_id);
  VBT_ASSIGN_OR_RETURN(shard->heap, TableHeap::Create(pool_.get(), schema));
  VBTreeOptions opts = options_.tree_opts;
  opts.key_version = key_version_;
  // The digest schema is qualified by the shard's distribution name:
  // signatures minted for this shard verify ONLY against this shard.
  DigestSchema ds(options_.db_name, shard->dist_name, schema, opts.hash_algo,
                  opts.modulus_bits);
  shard->tree = std::make_unique<VBTree>(std::move(ds), opts, current_signer_,
                                         &lock_manager_);
  return shard;
}

Status CentralServer::SignMap(TableState* table) {
  table->map.db_name = options_.db_name;
  table->map.key_version = key_version_;
  table->map.shards.clear();
  for (const auto& shard : table->shards) {
    table->map.shards.push_back(
        ShardEntry{shard->shard_id, shard->lo, shard->hi});
  }
  VBT_RETURN_NOT_OK(table->map.CheckWellFormed());
  Digest content = table->map.ContentDigest(options_.tree_opts.hash_algo);
  VBT_ASSIGN_OR_RETURN(table->map.sig, current_signer_->Sign(content));
  ByteWriter w(128);
  table->map.Serialize(&w);
  table->map_bytes =
      std::make_shared<const std::vector<uint8_t>>(w.TakeBuffer());
  return Status::OK();
}

Result<table_id_t> CentralServer::CreateTable(const std::string& name,
                                              Schema schema) {
  return CreateTable(name, std::move(schema), {});
}

Result<table_id_t> CentralServer::CreateTable(
    const std::string& name, Schema schema,
    const std::vector<int64_t>& split_points) {
  if (name.find('#') != std::string::npos) {
    return Status::InvalidArgument(
        "table names must not contain '#' (reserved for shard qualifiers)");
  }
  for (size_t i = 0; i < split_points.size(); ++i) {
    if (split_points[i] == kMinKey) {
      return Status::InvalidArgument("split point at INT64_MIN is a no-op");
    }
    if (i > 0 && split_points[i] <= split_points[i - 1]) {
      return Status::InvalidArgument("split points must be strictly ascending");
    }
  }
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(table_id_t id, catalog_.CreateTable(name, schema));
  auto state = std::make_unique<TableState>();
  state->schema = schema;
  state->map.table = name;
  state->map.epoch = 1;
  if (split_points.empty()) {
    // Sole shard id 0: plain table name, digest-compatible with the
    // pre-sharding layout.
    VBT_ASSIGN_OR_RETURN(auto shard,
                         MakeShard(name, schema, 0, kMinKey, kMaxKey));
    state->shards.push_back(std::move(shard));
  } else {
    int64_t lo = kMinKey;
    for (size_t i = 0; i <= split_points.size(); ++i) {
      // The split point itself starts the next shard, so this shard ends
      // one key before it (the final shard pins INT64_MAX).
      const bool last = i == split_points.size();
      int64_t hi = last ? kMaxKey : split_points[i] - 1;
      VBT_ASSIGN_OR_RETURN(
          auto shard,
          MakeShard(name, schema, state->next_shard_id++, lo, hi));
      state->shards.push_back(std::move(shard));
      if (!last) lo = split_points[i];
    }
  }
  VBT_RETURN_NOT_OK(SignMap(state.get()));
  {
    std::unique_lock maps(maps_mu_);
    tables_[name] = std::move(state);
    table_order_.push_back(name);
  }
  return id;
}

Status CentralServer::LoadTable(const std::string& name,
                                std::vector<Tuple> rows) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  std::sort(rows.begin(), rows.end(),
            [](const Tuple& a, const Tuple& b) { return a.key() < b.key(); });
  std::shared_lock layout(state->layout_mu);
  // Rows are sorted, shards ascend by range: one pass routes each
  // contiguous run to its owning shard.
  size_t r = 0;
  for (const auto& shard : state->shards) {
    std::vector<std::pair<Tuple, Rid>> pairs;
    std::unique_lock lock(shard->mu);
    while (r < rows.size() && rows[r].key() <= shard->hi) {
      VBT_ASSIGN_OR_RETURN(Rid rid, shard->heap->Insert(rows[r]));
      pairs.emplace_back(std::move(rows[r]), rid);
      ++r;
    }
    if (!pairs.empty()) {
      VBT_RETURN_NOT_OK(shard->tree->BulkLoad(pairs));
      shard->log.Reset(shard->tree->version());
    }
  }
  return Status::OK();
}

Status CentralServer::InsertTuple(const std::string& name, const Tuple& tuple,
                                  txn_id_t txn) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  std::shared_ptr<ShardState> shard = ShardForKey(*state, tuple.key());
  if (shard == nullptr) {
    return Status::Internal("no shard owns key " +
                            std::to_string(tuple.key()));
  }
  {
    std::unique_lock lock(shard->mu);
    VBT_ASSIGN_OR_RETURN(Rid rid, shard->heap->Insert(tuple));

    // Record the op for delta propagation: entry signature material plus
    // the node signatures the insert produces (deterministic signers give
    // the same bytes the tree stores).
    UpdateOp op;
    op.kind = UpdateOp::Kind::kInsert;
    op.tuple = tuple;
    op.rid = rid;
    VBT_ASSIGN_OR_RETURN(op.material, shard->tree->MakeEntryMaterial(tuple));
    shard->tree->set_signature_log(&op.resigned);
    Status insert_status = shard->tree->Insert(tuple, rid, txn);
    shard->tree->set_signature_log(nullptr);
    VBT_RETURN_NOT_OK(insert_status);
    if (shard->log.head_version() + 1 != shard->tree->version()) {
      // The tree was mutated out-of-band (direct tree() access by tests
      // or benches): those versions were never logged, so restart the
      // lineage — stale subscribers catch up by snapshot.
      shard->log.Reset(shard->tree->version() - 1);
    }
    shard->log.Append(std::move(op));
  }

  // Incremental maintenance of join views referencing this table. DDL is
  // excluded by dml_mu_, so iterating the view map here is safe.
  for (auto& [view_name, vs] : views_) {
    const JoinSpec& spec = vs->view->spec();
    if (spec.left_table == name) {
      VBT_ASSIGN_OR_RETURN(
          std::vector<Tuple> matches,
          MatchingRows(spec.right_table, spec.right_col,
                       tuple.value(spec.left_col)));
      std::unique_lock vlock(vs->mu);
      for (const Tuple& right : matches) {
        VBT_RETURN_NOT_OK(vs->view->AddJoinedRow(tuple, right));
      }
    }
    if (spec.right_table == name) {
      VBT_ASSIGN_OR_RETURN(
          std::vector<Tuple> matches,
          MatchingRows(spec.left_table, spec.left_col,
                       tuple.value(spec.right_col)));
      std::unique_lock vlock(vs->mu);
      for (const Tuple& left : matches) {
        VBT_RETURN_NOT_OK(vs->view->AddJoinedRow(left, tuple));
      }
    }
  }
  return Status::OK();
}

Result<size_t> CentralServer::DeleteRange(const std::string& name, int64_t lo,
                                          int64_t hi, txn_id_t txn) {
  if (lo > hi) return static_cast<size_t>(0);
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));

  // Snapshot the overlapping shards under the layout latch, then apply
  // the clamped delete to each shard's independent version stream.
  std::vector<std::shared_ptr<ShardState>> touched;
  {
    std::shared_lock layout(state->layout_mu);
    for (const auto& shard : state->shards) {
      if (shard->lo <= hi && shard->hi >= lo) touched.push_back(shard);
    }
  }

  size_t removed = 0;
  std::vector<int64_t> doomed;
  for (const auto& shard : touched) {
    const int64_t clamped_lo = std::max(lo, shard->lo);
    const int64_t clamped_hi = std::min(hi, shard->hi);
    std::vector<int64_t> keys =
        shard->tree->KeysInRange(clamped_lo, clamped_hi);
    doomed.insert(doomed.end(), keys.begin(), keys.end());

    std::unique_lock lock(shard->mu);
    UpdateOp op;
    op.kind = UpdateOp::Kind::kDeleteRange;
    op.lo = clamped_lo;
    op.hi = clamped_hi;
    shard->tree->set_signature_log(&op.resigned);
    auto removed_or = shard->tree->DeleteRange(clamped_lo, clamped_hi, txn);
    shard->tree->set_signature_log(nullptr);
    size_t shard_removed = 0;
    VBT_ASSIGN_OR_RETURN(shard_removed, std::move(removed_or));
    removed += shard_removed;
    if (shard->log.head_version() + 1 != shard->tree->version()) {
      shard->log.Reset(shard->tree->version() - 1);
    }
    shard->log.Append(std::move(op));
  }

  for (auto& [view_name, vs] : views_) {
    const JoinSpec& spec = vs->view->spec();
    std::unique_lock vlock(vs->mu);
    for (int64_t key : doomed) {
      if (spec.left_table == name) {
        VBT_RETURN_NOT_OK(vs->view->RemoveByLeftKey(key).status());
      }
      if (spec.right_table == name) {
        VBT_RETURN_NOT_OK(vs->view->RemoveByRightKey(key).status());
      }
    }
  }
  // Heap rows become unreachable; a compaction pass could reclaim them.
  return removed;
}

Status CentralServer::SplitShard(const std::string& name, int64_t split_key) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));

  std::shared_ptr<ShardState> parent = ShardForKey(*state, split_key);
  if (parent == nullptr || parent->lo >= split_key) {
    return Status::InvalidArgument(
        "split key must fall strictly inside an existing shard range");
  }

  // Live rows of the parent: heap rows still indexed by the tree (the
  // heap may hold tombstoned leftovers from range deletes).
  std::vector<Tuple> rows;
  {
    std::shared_lock lock(parent->mu);
    for (TableHeap::Iterator it = parent->heap->Begin(); it.Valid();
         it.Next()) {
      VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
      if (!parent->tree->KeysInRange(t.key(), t.key()).empty()) {
        rows.push_back(std::move(t));
      }
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Tuple& a, const Tuple& b) { return a.key() < b.key(); });

  // Fresh ids for both halves: pre-split signatures can never alias a
  // current shard.
  VBT_ASSIGN_OR_RETURN(auto left, MakeShard(name, state->schema,
                                            state->next_shard_id++,
                                            parent->lo, split_key - 1));
  VBT_ASSIGN_OR_RETURN(auto right, MakeShard(name, state->schema,
                                             state->next_shard_id++,
                                             split_key, parent->hi));
  for (ShardState* half : {left.get(), right.get()}) {
    std::vector<std::pair<Tuple, Rid>> pairs;
    for (const Tuple& t : rows) {
      if (t.key() < half->lo || t.key() > half->hi) continue;
      VBT_ASSIGN_OR_RETURN(Rid rid, half->heap->Insert(t));
      pairs.emplace_back(t, rid);
    }
    if (!pairs.empty()) {
      VBT_RETURN_NOT_OK(half->tree->BulkLoad(pairs));
    }
    half->log.Reset(half->tree->version());
  }

  std::unique_lock layout(state->layout_mu);
  auto pos = std::find(state->shards.begin(), state->shards.end(), parent);
  if (pos == state->shards.end()) {
    return Status::Internal("parent shard vanished during split");
  }
  pos = state->shards.erase(pos);
  pos = state->shards.insert(pos, std::move(right));
  state->shards.insert(pos, std::move(left));
  state->map.epoch++;
  return SignMap(state);
}

Result<size_t> CentralServer::ShardCount(const std::string& name) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
  std::shared_lock layout(state->layout_mu);
  return state->shards.size();
}

Result<PartitionMap> CentralServer::TablePartitionMap(
    const std::string& name) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
  std::shared_lock layout(state->layout_mu);
  return state->map;
}

Result<std::vector<Tuple>> CentralServer::MatchingRows(
    const std::string& table, size_t col, const Value& value) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(table));
  std::vector<std::shared_ptr<ShardState>> shards;
  {
    std::shared_lock layout(state->layout_mu);
    shards = state->shards;
  }
  // Only rows still indexed by a shard's VB-tree count (heaps may hold
  // tombstoned leftovers from deletes).
  std::vector<Tuple> out;
  for (const auto& shard : shards) {
    std::shared_lock lock(shard->mu);
    for (TableHeap::Iterator it = shard->heap->Begin(); it.Valid();
         it.Next()) {
      VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
      if (t.value(col).Compare(value) == 0 &&
          !shard->tree->KeysInRange(t.key(), t.key()).empty()) {
        out.push_back(std::move(t));
      }
    }
  }
  return out;
}

Status CentralServer::CreateJoinView(const JoinSpec& spec) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  {
    std::shared_lock maps(maps_mu_);
    if (views_.count(spec.view_name) != 0 ||
        tables_.count(spec.view_name) != 0) {
      return Status::AlreadyExists("name already in use: " + spec.view_name);
    }
  }
  VBT_ASSIGN_OR_RETURN(const TableState* left, GetTableState(spec.left_table));
  VBT_ASSIGN_OR_RETURN(const TableState* right,
                       GetTableState(spec.right_table));

  auto collect_rows =
      [](const TableState* table) -> Result<std::vector<Tuple>> {
    std::vector<Tuple> rows;
    std::shared_lock layout(table->layout_mu);
    for (const auto& shard : table->shards) {
      std::shared_lock lock(shard->mu);
      for (TableHeap::Iterator it = shard->heap->Begin(); it.Valid();
           it.Next()) {
        VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
        rows.push_back(std::move(t));
      }
    }
    return rows;
  };
  VBT_ASSIGN_OR_RETURN(std::vector<Tuple> left_rows, collect_rows(left));
  VBT_ASSIGN_OR_RETURN(std::vector<Tuple> right_rows, collect_rows(right));

  VBTreeOptions opts = options_.tree_opts;
  opts.key_version = key_version_;
  VBT_ASSIGN_OR_RETURN(
      std::unique_ptr<JoinView> view,
      JoinView::Materialize(spec, options_.db_name, left->schema,
                            right->schema, left_rows, right_rows,
                            pool_.get(), current_signer_, opts));
  VBT_RETURN_NOT_OK(
      catalog_.CreateTable(spec.view_name, view->schema(), /*is_view=*/true)
          .status());
  auto vs = std::make_unique<ViewState>();
  vs->view = std::move(view);
  {
    std::unique_lock maps(maps_mu_);
    views_[spec.view_name] = std::move(vs);
    view_order_.push_back(spec.view_name);
  }
  return Status::OK();
}

Result<const JoinView*> CentralServer::GetJoinView(
    const std::string& view_name) const {
  std::shared_lock maps(maps_mu_);
  auto it = views_.find(view_name);
  if (it == views_.end()) return Status::NotFound("no view " + view_name);
  return it->second->view.get();
}

Status CentralServer::ExportHeapAndTree(const std::string& name,
                                        const Schema& schema,
                                        const TableHeap* heap,
                                        const VBTree* tree,
                                        ByteWriter* w) const {
  w->PutU32(kSnapshotMagic);
  w->PutString(name);
  schema.Serialize(w);
  // Rows with their Rids (the VB-tree's leaf entries address them by Rid).
  std::vector<std::pair<Rid, Tuple>> rows;
  for (TableHeap::Iterator it = heap->Begin(); it.Valid(); it.Next()) {
    VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
    rows.emplace_back(it.rid(), std::move(t));
  }
  w->PutVarint(rows.size());
  for (const auto& [rid, t] : rows) {
    w->PutU32(static_cast<uint32_t>(rid.page_id));
    w->PutU16(rid.slot);
    t.Serialize(w);
  }
  // The tree carries the replica version.
  tree->SerializeTo(w);
  return Status::OK();
}

Result<std::vector<uint8_t>> CentralServer::ExportTableSnapshot(
    const std::string& name) const {
  ByteWriter w(1 << 16);
  {
    std::shared_lock maps(maps_mu_);
    auto view_it = views_.find(name);
    if (view_it != views_.end()) {
      const ViewState* vs = view_it->second.get();
      std::shared_lock vlock(vs->mu);
      VBT_RETURN_NOT_OK(ExportHeapAndTree(name, vs->view->heap()->schema(),
                                          vs->view->heap(), vs->view->tree(),
                                          &w));
      return w.TakeBuffer();
    }
  }
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  std::shared_lock lock(shard->mu);
  VBT_RETURN_NOT_OK(ExportHeapAndTree(shard->dist_name,
                                      shard->heap->schema(),
                                      shard->heap.get(), shard->tree.get(),
                                      &w));
  return w.TakeBuffer();
}

Result<UpdateBatch> CentralServer::DeltaSince(const std::string& name,
                                              uint64_t from_version,
                                              size_t max_ops) const {
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  std::shared_lock lock(shard->mu);
  return shard->log.BatchSince(shard->dist_name, from_version, max_ops);
}

Result<bool> CentralServer::DeltaCovers(const std::string& name,
                                        uint64_t from_version) const {
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  std::shared_lock lock(shard->mu);
  // A log whose head trails the tree version means the tree was mutated
  // out-of-band: a delta replay would silently diverge, so force a
  // snapshot until the next DML restarts the lineage.
  return shard->log.Covers(from_version) &&
         shard->log.head_version() == shard->tree->version();
}

Status CentralServer::TruncateLog(const std::string& name, uint64_t version) {
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  std::unique_lock lock(shard->mu);
  shard->log.TruncateThrough(version);
  return Status::OK();
}

Result<uint64_t> CentralServer::VersionOf(const std::string& name) const {
  {
    std::shared_lock maps(maps_mu_);
    auto view_it = views_.find(name);
    if (view_it != views_.end()) return view_it->second->view->tree()->version();
  }
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  return shard->tree->version();
}

std::vector<std::string> CentralServer::TableNames() const {
  std::shared_lock maps(maps_mu_);
  return table_order_;
}

std::vector<std::string> CentralServer::ViewNames() const {
  std::shared_lock maps(maps_mu_);
  return view_order_;
}

std::vector<std::string> CentralServer::ShardNames() const {
  std::shared_lock maps(maps_mu_);
  std::vector<std::string> names;
  for (const std::string& table : table_order_) {
    auto it = tables_.find(table);
    if (it == tables_.end()) continue;
    std::shared_lock layout(it->second->layout_mu);
    for (const auto& shard : it->second->shards) {
      names.push_back(shard->dist_name);
    }
  }
  return names;
}

std::vector<CentralServer::MapInfo> CentralServer::PartitionMaps() const {
  std::shared_lock maps(maps_mu_);
  std::vector<MapInfo> out;
  for (const std::string& table : table_order_) {
    auto it = tables_.find(table);
    if (it == tables_.end()) continue;
    std::shared_lock layout(it->second->layout_mu);
    out.push_back(MapInfo{table, it->second->map.epoch,
                          it->second->map_bytes});
  }
  return out;
}

Status CentralServer::RotateKey(uint64_t now) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  // Old private key retires: results signed with it remain verifiable only
  // within its (now truncated) validity window, so edge servers cannot
  // masquerade stale data as current (§3.4).
  VBT_RETURN_NOT_OK(key_directory_.Expire(key_version_, now));

  std::unique_ptr<Signer> signer;
  std::shared_ptr<Recoverer> recoverer;
  VBT_RETURN_NOT_OK(
      MakeSigner(options_.key_seed + key_version_ + 1, &signer, &recoverer));
  current_signer_ = signer.get();
  signers_.push_back(std::move(signer));
  key_version_++;
  key_valid_from_ = now;
  key_directory_.Publish(
      KeyVersionInfo{key_version_, now, now + options_.key_validity},
      std::move(recoverer));

  for (auto& [name, state] : tables_) {
    std::unique_lock layout(state->layout_mu);
    for (auto& shard : state->shards) {
      std::unique_lock lock(shard->mu);
      VBT_RETURN_NOT_OK(shard->tree->ResignAll(
          current_signer_, key_version_,
          Executor::FetcherFor(shard->heap.get())));
      // A re-sign cannot ship as a delta: restart the log lineage so every
      // subscriber catches up with a fresh snapshot.
      shard->log.Reset(shard->tree->version());
    }
    // The map signature must also move to the new key; bump the epoch so
    // the hub re-ships it (and clients advance their epoch floors).
    state->map.epoch++;
    VBT_RETURN_NOT_OK(SignMap(state.get()));
  }
  for (auto& [name, vs] : views_) {
    std::unique_lock vlock(vs->mu);
    VBT_RETURN_NOT_OK(vs->view->tree()->ResignAll(
        current_signer_, key_version_,
        Executor::FetcherFor(vs->view->heap())));
  }
  return Status::OK();
}

Result<CentralServer::SnapshotShape> CentralServer::SnapshotShapeOf(
    const std::string& name) const {
  VBT_ASSIGN_OR_RETURN(std::shared_ptr<ShardState> shard, ResolveShard(name));
  return SnapshotShape{
      shard->tree->size(),
      shard->tree->digest_schema().schema().num_columns()};
}

VBTree* CentralServer::tree(const std::string& name) {
  auto shard = ResolveShard(name);
  if (shard.ok()) return (*shard)->tree.get();
  std::shared_lock maps(maps_mu_);
  auto vit = views_.find(name);
  return vit != views_.end() ? vit->second->view->tree() : nullptr;
}

TableHeap* CentralServer::heap(const std::string& name) {
  auto shard = ResolveShard(name);
  return shard.ok() ? (*shard)->heap.get() : nullptr;
}

}  // namespace vbtree
