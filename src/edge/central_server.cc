#include "edge/central_server.h"

#include <algorithm>

#include "query/executor.h"

namespace vbtree {

namespace {
constexpr uint32_t kSnapshotMagic = 0x50414E53;  // "SNAP"
}  // namespace

Result<std::unique_ptr<CentralServer>> CentralServer::Create(Options options) {
  auto server = std::unique_ptr<CentralServer>(new CentralServer(options));
  server->disk_ = std::make_unique<InMemoryDiskManager>();
  server->pool_ = std::make_unique<BufferPool>(options.buffer_pool_pages,
                                               server->disk_.get());

  std::unique_ptr<Signer> signer;
  std::shared_ptr<Recoverer> recoverer;
  VBT_RETURN_NOT_OK(
      server->MakeSigner(options.key_seed, &signer, &recoverer));
  server->current_signer_ = signer.get();
  server->signers_.push_back(std::move(signer));
  server->key_version_ = 1;
  server->key_valid_from_ = 0;
  server->key_directory_.Publish(
      KeyVersionInfo{1, 0, options.key_validity}, std::move(recoverer));
  return server;
}

Status CentralServer::MakeSigner(uint64_t seed,
                                 std::unique_ptr<Signer>* signer,
                                 std::shared_ptr<Recoverer>* recoverer) {
  if (options_.use_rsa) {
    VBT_ASSIGN_OR_RETURN(std::unique_ptr<RsaSigner> rsa,
                         RsaSigner::Generate(options_.rsa_bits));
    VBT_ASSIGN_OR_RETURN(std::unique_ptr<RsaRecoverer> rec,
                         rsa->MakeRecoverer());
    *signer = std::move(rsa);
    *recoverer = std::move(rec);
    return Status::OK();
  }
  auto sim = std::make_unique<SimSigner>(seed, nullptr,
                                         options_.sim_work_factor);
  *recoverer = std::make_shared<SimRecoverer>(sim->key_material(), nullptr,
                                              options_.sim_work_factor);
  *signer = std::move(sim);
  return Status::OK();
}

Result<CentralServer::TableState*> CentralServer::GetTableState(
    const std::string& name) {
  std::shared_lock maps(maps_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return it->second.get();
}

Result<const CentralServer::TableState*> CentralServer::GetTableState(
    const std::string& name) const {
  std::shared_lock maps(maps_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no table named " + name);
  return it->second.get();
}

Result<table_id_t> CentralServer::CreateTable(const std::string& name,
                                              Schema schema) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(table_id_t id, catalog_.CreateTable(name, schema));
  auto state = std::make_unique<TableState>(options_.update_log_window);
  VBT_ASSIGN_OR_RETURN(state->heap, TableHeap::Create(pool_.get(), schema));
  VBTreeOptions opts = options_.tree_opts;
  opts.key_version = key_version_;
  DigestSchema ds(options_.db_name, name, schema, opts.hash_algo,
                  opts.modulus_bits);
  state->tree = std::make_unique<VBTree>(std::move(ds), opts, current_signer_,
                                         &lock_manager_);
  {
    std::unique_lock maps(maps_mu_);
    tables_[name] = std::move(state);
    table_order_.push_back(name);
  }
  return id;
}

Status CentralServer::LoadTable(const std::string& name,
                                std::vector<Tuple> rows) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  std::unique_lock lock(state->mu);
  std::sort(rows.begin(), rows.end(),
            [](const Tuple& a, const Tuple& b) { return a.key() < b.key(); });
  std::vector<std::pair<Tuple, Rid>> pairs;
  pairs.reserve(rows.size());
  for (Tuple& t : rows) {
    VBT_ASSIGN_OR_RETURN(Rid rid, state->heap->Insert(t));
    pairs.emplace_back(std::move(t), rid);
  }
  return state->tree->BulkLoad(pairs);
}

Status CentralServer::InsertTuple(const std::string& name, const Tuple& tuple,
                                  txn_id_t txn) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  {
    std::unique_lock lock(state->mu);
    VBT_ASSIGN_OR_RETURN(Rid rid, state->heap->Insert(tuple));

    // Record the op for delta propagation: entry signature material plus
    // the node signatures the insert produces (deterministic signers give
    // the same bytes the tree stores).
    UpdateOp op;
    op.kind = UpdateOp::Kind::kInsert;
    op.tuple = tuple;
    op.rid = rid;
    VBT_ASSIGN_OR_RETURN(op.material, state->tree->MakeEntryMaterial(tuple));
    state->tree->set_signature_log(&op.resigned);
    Status insert_status = state->tree->Insert(tuple, rid, txn);
    state->tree->set_signature_log(nullptr);
    VBT_RETURN_NOT_OK(insert_status);
    if (state->log.head_version() + 1 != state->tree->version()) {
      // The tree was mutated out-of-band (direct tree() access by tests
      // or benches): those versions were never logged, so restart the
      // lineage — stale subscribers catch up by snapshot.
      state->log.Reset(state->tree->version() - 1);
    }
    state->log.Append(std::move(op));
  }

  // Incremental maintenance of join views referencing this table. DDL is
  // excluded by dml_mu_, so iterating the view map here is safe.
  for (auto& [view_name, vs] : views_) {
    const JoinSpec& spec = vs->view->spec();
    if (spec.left_table == name) {
      VBT_ASSIGN_OR_RETURN(
          std::vector<Tuple> matches,
          MatchingRows(spec.right_table, spec.right_col,
                       tuple.value(spec.left_col)));
      std::unique_lock vlock(vs->mu);
      for (const Tuple& right : matches) {
        VBT_RETURN_NOT_OK(vs->view->AddJoinedRow(tuple, right));
      }
    }
    if (spec.right_table == name) {
      VBT_ASSIGN_OR_RETURN(
          std::vector<Tuple> matches,
          MatchingRows(spec.left_table, spec.left_col,
                       tuple.value(spec.right_col)));
      std::unique_lock vlock(vs->mu);
      for (const Tuple& left : matches) {
        VBT_RETURN_NOT_OK(vs->view->AddJoinedRow(left, tuple));
      }
    }
  }
  return Status::OK();
}

Result<size_t> CentralServer::DeleteRange(const std::string& name, int64_t lo,
                                          int64_t hi, txn_id_t txn) {
  if (lo > hi) return static_cast<size_t>(0);
  std::lock_guard<std::mutex> dml(dml_mu_);
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  std::vector<int64_t> doomed = state->tree->KeysInRange(lo, hi);

  size_t removed = 0;
  {
    std::unique_lock lock(state->mu);
    UpdateOp op;
    op.kind = UpdateOp::Kind::kDeleteRange;
    op.lo = lo;
    op.hi = hi;
    state->tree->set_signature_log(&op.resigned);
    auto removed_or = state->tree->DeleteRange(lo, hi, txn);
    state->tree->set_signature_log(nullptr);
    VBT_ASSIGN_OR_RETURN(removed, std::move(removed_or));
    if (state->log.head_version() + 1 != state->tree->version()) {
      state->log.Reset(state->tree->version() - 1);
    }
    state->log.Append(std::move(op));
  }

  for (auto& [view_name, vs] : views_) {
    const JoinSpec& spec = vs->view->spec();
    std::unique_lock vlock(vs->mu);
    for (int64_t key : doomed) {
      if (spec.left_table == name) {
        VBT_RETURN_NOT_OK(vs->view->RemoveByLeftKey(key).status());
      }
      if (spec.right_table == name) {
        VBT_RETURN_NOT_OK(vs->view->RemoveByRightKey(key).status());
      }
    }
  }
  // Heap rows become unreachable; a compaction pass could reclaim them.
  return removed;
}

Result<std::vector<Tuple>> CentralServer::MatchingRows(
    const std::string& table, size_t col, const Value& value) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(table));
  std::shared_lock lock(state->mu);
  // Only rows still indexed by the VB-tree count (heap may hold tombstoned
  // leftovers from deletes).
  std::vector<Tuple> out;
  for (TableHeap::Iterator it = state->heap->Begin(); it.Valid(); it.Next()) {
    VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
    if (t.value(col).Compare(value) == 0 &&
        !state->tree->KeysInRange(t.key(), t.key()).empty()) {
      out.push_back(std::move(t));
    }
  }
  return out;
}

Status CentralServer::CreateJoinView(const JoinSpec& spec) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  {
    std::shared_lock maps(maps_mu_);
    if (views_.count(spec.view_name) != 0 ||
        tables_.count(spec.view_name) != 0) {
      return Status::AlreadyExists("name already in use: " + spec.view_name);
    }
  }
  VBT_ASSIGN_OR_RETURN(const TableState* left, GetTableState(spec.left_table));
  VBT_ASSIGN_OR_RETURN(const TableState* right,
                       GetTableState(spec.right_table));

  std::vector<Tuple> left_rows, right_rows;
  {
    std::shared_lock llock(left->mu);
    for (TableHeap::Iterator it = left->heap->Begin(); it.Valid(); it.Next()) {
      VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
      left_rows.push_back(std::move(t));
    }
  }
  {
    std::shared_lock rlock(right->mu);
    for (TableHeap::Iterator it = right->heap->Begin(); it.Valid();
         it.Next()) {
      VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
      right_rows.push_back(std::move(t));
    }
  }

  VBTreeOptions opts = options_.tree_opts;
  opts.key_version = key_version_;
  VBT_ASSIGN_OR_RETURN(
      std::unique_ptr<JoinView> view,
      JoinView::Materialize(spec, options_.db_name, left->heap->schema(),
                            right->heap->schema(), left_rows, right_rows,
                            pool_.get(), current_signer_, opts));
  VBT_RETURN_NOT_OK(
      catalog_.CreateTable(spec.view_name, view->schema(), /*is_view=*/true)
          .status());
  auto vs = std::make_unique<ViewState>();
  vs->view = std::move(view);
  {
    std::unique_lock maps(maps_mu_);
    views_[spec.view_name] = std::move(vs);
    view_order_.push_back(spec.view_name);
  }
  return Status::OK();
}

Result<const JoinView*> CentralServer::GetJoinView(
    const std::string& view_name) const {
  std::shared_lock maps(maps_mu_);
  auto it = views_.find(view_name);
  if (it == views_.end()) return Status::NotFound("no view " + view_name);
  return it->second->view.get();
}

Status CentralServer::ExportHeapAndTree(const std::string& name,
                                        const Schema& schema,
                                        const TableHeap* heap,
                                        const VBTree* tree,
                                        ByteWriter* w) const {
  w->PutU32(kSnapshotMagic);
  w->PutString(name);
  schema.Serialize(w);
  // Rows with their Rids (the VB-tree's leaf entries address them by Rid).
  std::vector<std::pair<Rid, Tuple>> rows;
  for (TableHeap::Iterator it = heap->Begin(); it.Valid(); it.Next()) {
    VBT_ASSIGN_OR_RETURN(Tuple t, it.Get());
    rows.emplace_back(it.rid(), std::move(t));
  }
  w->PutVarint(rows.size());
  for (const auto& [rid, t] : rows) {
    w->PutU32(static_cast<uint32_t>(rid.page_id));
    w->PutU16(rid.slot);
    t.Serialize(w);
  }
  // The tree carries the replica version.
  tree->SerializeTo(w);
  return Status::OK();
}

Result<std::vector<uint8_t>> CentralServer::ExportTableSnapshot(
    const std::string& name) const {
  ByteWriter w(1 << 16);
  {
    std::shared_lock maps(maps_mu_);
    auto view_it = views_.find(name);
    if (view_it != views_.end()) {
      const ViewState* vs = view_it->second.get();
      std::shared_lock vlock(vs->mu);
      VBT_RETURN_NOT_OK(ExportHeapAndTree(name, vs->view->heap()->schema(),
                                          vs->view->heap(), vs->view->tree(),
                                          &w));
      return w.TakeBuffer();
    }
  }
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
  std::shared_lock lock(state->mu);
  VBT_RETURN_NOT_OK(ExportHeapAndTree(name, state->heap->schema(),
                                      state->heap.get(), state->tree.get(),
                                      &w));
  return w.TakeBuffer();
}

Result<UpdateBatch> CentralServer::DeltaSince(const std::string& name,
                                              uint64_t from_version,
                                              size_t max_ops) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
  std::shared_lock lock(state->mu);
  return state->log.BatchSince(name, from_version, max_ops);
}

Result<bool> CentralServer::DeltaCovers(const std::string& name,
                                        uint64_t from_version) const {
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
  std::shared_lock lock(state->mu);
  // A log whose head trails the tree version means the tree was mutated
  // out-of-band: a delta replay would silently diverge, so force a
  // snapshot until the next DML restarts the lineage.
  return state->log.Covers(from_version) &&
         state->log.head_version() == state->tree->version();
}

Status CentralServer::TruncateLog(const std::string& name, uint64_t version) {
  VBT_ASSIGN_OR_RETURN(TableState * state, GetTableState(name));
  std::unique_lock lock(state->mu);
  state->log.TruncateThrough(version);
  return Status::OK();
}

Result<uint64_t> CentralServer::VersionOf(const std::string& name) const {
  {
    std::shared_lock maps(maps_mu_);
    auto view_it = views_.find(name);
    if (view_it != views_.end()) return view_it->second->view->tree()->version();
  }
  VBT_ASSIGN_OR_RETURN(const TableState* state, GetTableState(name));
  return state->tree->version();
}

std::vector<std::string> CentralServer::TableNames() const {
  std::shared_lock maps(maps_mu_);
  return table_order_;
}

std::vector<std::string> CentralServer::ViewNames() const {
  std::shared_lock maps(maps_mu_);
  return view_order_;
}

Status CentralServer::RotateKey(uint64_t now) {
  std::lock_guard<std::mutex> dml(dml_mu_);
  // Old private key retires: results signed with it remain verifiable only
  // within its (now truncated) validity window, so edge servers cannot
  // masquerade stale data as current (§3.4).
  VBT_RETURN_NOT_OK(key_directory_.Expire(key_version_, now));

  std::unique_ptr<Signer> signer;
  std::shared_ptr<Recoverer> recoverer;
  VBT_RETURN_NOT_OK(
      MakeSigner(options_.key_seed + key_version_ + 1, &signer, &recoverer));
  current_signer_ = signer.get();
  signers_.push_back(std::move(signer));
  key_version_++;
  key_valid_from_ = now;
  key_directory_.Publish(
      KeyVersionInfo{key_version_, now, now + options_.key_validity},
      std::move(recoverer));

  for (auto& [name, state] : tables_) {
    std::unique_lock lock(state->mu);
    VBT_RETURN_NOT_OK(state->tree->ResignAll(
        current_signer_, key_version_,
        Executor::FetcherFor(state->heap.get())));
    // A re-sign cannot ship as a delta: restart the log lineage so every
    // subscriber catches up with a fresh snapshot.
    state->log.Reset(state->tree->version());
  }
  for (auto& [name, vs] : views_) {
    std::unique_lock vlock(vs->mu);
    VBT_RETURN_NOT_OK(vs->view->tree()->ResignAll(
        current_signer_, key_version_,
        Executor::FetcherFor(vs->view->heap())));
  }
  return Status::OK();
}

VBTree* CentralServer::tree(const std::string& name) {
  std::shared_lock maps(maps_mu_);
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second->tree.get();
  auto vit = views_.find(name);
  return vit != views_.end() ? vit->second->view->tree() : nullptr;
}

TableHeap* CentralServer::heap(const std::string& name) {
  std::shared_lock maps(maps_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second->heap.get();
}

}  // namespace vbtree
