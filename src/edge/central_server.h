#ifndef VBTREE_EDGE_CENTRAL_SERVER_H_
#define VBTREE_EDGE_CENTRAL_SERVER_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "crypto/key_manager.h"
#include "crypto/rsa_signer.h"
#include "crypto/sim_signer.h"
#include "edge/propagation/update_log.h"
#include "query/join_view.h"
#include "storage/table_heap.h"
#include "txn/lock_manager.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

/// The trusted central DBMS of Fig. 2: hosts the master database, holds
/// the private signing key, builds and maintains VB-trees (including
/// materialized join views), applies all updates (§3.4), and rotates
/// signing keys with validity windows.
///
/// Distribution to edge servers is NOT driven from here: every DML op is
/// recorded in a per-table, versioned UpdateLog, and the propagation
/// subsystem (edge/propagation/distribution_hub.h) asynchronously ships
/// batched deltas — or full snapshots for catch-up — to its subscribers.
/// This class only exposes the versioned read surface the hub consumes:
/// ExportTableSnapshot, DeltaSince, VersionOf, TruncateLog.
///
/// Concurrency: DML (InsertTuple / DeleteRange / RotateKey / DDL) is
/// serialized by an internal mutex, mirroring the paper's single trusted
/// writer; the export/delta read surface takes per-table shared latches
/// and may be called concurrently with DML from the propagator thread.
class CentralServer {
 public:
  struct Options {
    std::string db_name = "edgedb";
    VBTreeOptions tree_opts{};
    /// false → SimSigner (paper-sized 16-byte signed digests);
    /// true → real recoverable RSA.
    bool use_rsa = false;
    int rsa_bits = 1024;
    uint64_t key_seed = 2024;
    /// SimSigner decrypt work multiplier (Cost_s emulation).
    int sim_work_factor = 1;
    /// Validity window (logical time) granted to each key version.
    uint64_t key_validity = 1'000'000;
    size_t buffer_pool_pages = 16384;
    /// Ops retained per table for delta propagation; subscribers further
    /// behind than this are caught up with a snapshot.
    size_t update_log_window = 1 << 16;
  };

  static Result<std::unique_ptr<CentralServer>> Create(Options options);

  const std::string& db_name() const { return options_.db_name; }
  const Catalog& catalog() const { return catalog_; }
  KeyDirectory* key_directory() { return &key_directory_; }
  LockManager* lock_manager() { return &lock_manager_; }
  uint32_t current_key_version() const { return key_version_; }

  // --- DDL / loading ---
  Result<table_id_t> CreateTable(const std::string& name, Schema schema);

  /// Bulk-loads rows (sorted internally by key) into the heap and builds
  /// the table's VB-tree with every digest signed.
  Status LoadTable(const std::string& name, std::vector<Tuple> rows);

  Result<const TableInfo*> DescribeTable(const std::string& name) const {
    return catalog_.GetTable(name);
  }

  // --- updates (§3.4; only the central server can sign) ---
  Status InsertTuple(const std::string& name, const Tuple& tuple,
                     txn_id_t txn = 0);
  Result<size_t> DeleteRange(const std::string& name, int64_t lo, int64_t hi,
                             txn_id_t txn = 0);

  // --- materialized join views (§3.3 Join) ---
  Status CreateJoinView(const JoinSpec& spec);
  Result<const JoinView*> GetJoinView(const std::string& view_name) const;

  // --- versioned distribution surface (consumed by DistributionHub) ---

  /// Serializes one table (or view): schema, rows with their Rids, and
  /// the complete VB-tree (which carries the replica version).
  Result<std::vector<uint8_t>> ExportTableSnapshot(
      const std::string& name) const;

  /// Batch of up to `max_ops` logged ops replaying `name` forward from
  /// `from_version`. Does not consume the log — several subscribers at
  /// different versions can each be served. kInvalidArgument when
  /// `from_version` predates the retained window (snapshot required).
  /// Base tables only (views are propagated by snapshot).
  Result<UpdateBatch> DeltaSince(const std::string& name,
                                 uint64_t from_version,
                                 size_t max_ops = ~size_t{0}) const;

  /// Whether DeltaSince can serve `from_version` for `name`.
  Result<bool> DeltaCovers(const std::string& name,
                           uint64_t from_version) const;

  /// Drops logged ops at or below `version` (the hub calls this once all
  /// subscribers have applied them).
  Status TruncateLog(const std::string& name, uint64_t version);

  /// Current replica version of a table or view (its VB-tree version):
  /// the number of mutations since load. Monotone.
  Result<uint64_t> VersionOf(const std::string& name) const;

  /// Ops applied to base table `name` since load. Alias of VersionOf for
  /// base tables.
  Result<uint64_t> TableVersion(const std::string& name) const {
    return VersionOf(name);
  }

  /// Names of all base tables / materialized views, in creation order.
  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;

  // --- key management (§3.4 delayed update propagation) ---
  /// Expires the current key version at `now`, generates a new key, and
  /// re-signs every tree/view under it. Bumps every table and view
  /// version and resets the update logs: replicas must re-snapshot.
  Status RotateKey(uint64_t now);

  // --- direct access for tests and benches ---
  VBTree* tree(const std::string& name);
  TableHeap* heap(const std::string& name);

 private:
  explicit CentralServer(Options options)
      : options_(std::move(options)), catalog_(options_.db_name) {}

  struct TableState {
    std::unique_ptr<TableHeap> heap;
    std::unique_ptr<VBTree> tree;
    /// Retained op log; head always equals tree->version().
    UpdateLog log;
    /// Guards heap + log against concurrent export (tree self-latches).
    mutable std::shared_mutex mu;

    explicit TableState(size_t log_window) : log(log_window) {}
  };

  struct ViewState {
    std::unique_ptr<JoinView> view;
    /// Guards the view heap against concurrent export.
    mutable std::shared_mutex mu;
  };

  Status MakeSigner(uint64_t seed, std::unique_ptr<Signer>* signer,
                    std::shared_ptr<Recoverer>* recoverer);
  Result<TableState*> GetTableState(const std::string& name);
  Result<const TableState*> GetTableState(const std::string& name) const;

  /// Finds all rows of `table` matching `value` on column `col` (join
  /// maintenance helper).
  Result<std::vector<Tuple>> MatchingRows(const std::string& table, size_t col,
                                          const Value& value) const;

  Status ExportHeapAndTree(const std::string& name, const Schema& schema,
                           const TableHeap* heap, const VBTree* tree,
                           ByteWriter* w) const;

  Options options_;
  Catalog catalog_;
  LockManager lock_manager_;
  KeyDirectory key_directory_;
  /// All signers ever created stay alive: trees hold raw pointers, and old
  /// snapshots may still verify against archived versions.
  std::vector<std::unique_ptr<Signer>> signers_;
  Signer* current_signer_ = nullptr;
  uint32_t key_version_ = 0;
  uint64_t key_valid_from_ = 0;

  std::unique_ptr<InMemoryDiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;

  /// Serializes all DML/DDL (single trusted writer, as in the paper).
  std::mutex dml_mu_;
  /// Guards the table/view maps themselves (DDL vs lookups).
  mutable std::shared_mutex maps_mu_;
  std::map<std::string, std::unique_ptr<TableState>> tables_;
  std::map<std::string, std::unique_ptr<ViewState>> views_;
  std::vector<std::string> table_order_;
  std::vector<std::string> view_order_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_CENTRAL_SERVER_H_
