#ifndef VBTREE_EDGE_CENTRAL_SERVER_H_
#define VBTREE_EDGE_CENTRAL_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "crypto/key_manager.h"
#include "crypto/rsa_signer.h"
#include "crypto/sim_signer.h"
#include "edge/network.h"
#include "edge/update_log.h"
#include "query/join_view.h"
#include "storage/table_heap.h"
#include "txn/lock_manager.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

class EdgeServer;

/// The trusted central DBMS of Fig. 2: hosts the master database, holds
/// the private signing key, builds and maintains VB-trees (including
/// materialized join views), applies all updates (§3.4), rotates signing
/// keys with validity windows, and distributes table snapshots to edge
/// servers.
class CentralServer {
 public:
  struct Options {
    std::string db_name = "edgedb";
    VBTreeOptions tree_opts{};
    /// false → SimSigner (paper-sized 16-byte signed digests);
    /// true → real recoverable RSA.
    bool use_rsa = false;
    int rsa_bits = 1024;
    uint64_t key_seed = 2024;
    /// SimSigner decrypt work multiplier (Cost_s emulation).
    int sim_work_factor = 1;
    /// Validity window (logical time) granted to each key version.
    uint64_t key_validity = 1'000'000;
    size_t buffer_pool_pages = 16384;
  };

  static Result<std::unique_ptr<CentralServer>> Create(Options options);

  const std::string& db_name() const { return options_.db_name; }
  const Catalog& catalog() const { return catalog_; }
  KeyDirectory* key_directory() { return &key_directory_; }
  LockManager* lock_manager() { return &lock_manager_; }
  uint32_t current_key_version() const { return key_version_; }

  // --- DDL / loading ---
  Result<table_id_t> CreateTable(const std::string& name, Schema schema);

  /// Bulk-loads rows (sorted internally by key) into the heap and builds
  /// the table's VB-tree with every digest signed.
  Status LoadTable(const std::string& name, std::vector<Tuple> rows);

  Result<const TableInfo*> DescribeTable(const std::string& name) const {
    return catalog_.GetTable(name);
  }

  // --- updates (§3.4; only the central server can sign) ---
  Status InsertTuple(const std::string& name, const Tuple& tuple,
                     txn_id_t txn = 0);
  Result<size_t> DeleteRange(const std::string& name, int64_t lo, int64_t hi,
                             txn_id_t txn = 0);

  // --- materialized join views (§3.3 Join) ---
  Status CreateJoinView(const JoinSpec& spec);
  Result<const JoinView*> GetJoinView(const std::string& view_name) const;

  // --- distribution ---
  /// Serializes one table (or view): schema, rows with their Rids, and the
  /// complete VB-tree.
  Result<std::vector<uint8_t>> ExportTableSnapshot(
      const std::string& name) const;

  /// Ships the snapshot to an edge server, recording the bytes on the
  /// central→edge channel.
  Status PublishTable(const std::string& name, EdgeServer* edge,
                      SimulatedNetwork* net);

  /// Serializes the updates applied to `name` since the last export as an
  /// UpdateBatch, clearing the pending log. Base tables only (views are
  /// propagated by snapshot).
  Result<std::vector<uint8_t>> ExportUpdateDelta(const std::string& name);

  /// Ships the pending delta to one edge server. NOTE: with several edge
  /// servers, export once and apply the same bytes to each — this
  /// convenience method clears the log after sending.
  Status PublishDelta(const std::string& name, EdgeServer* edge,
                      SimulatedNetwork* net);

  /// Ops applied to `name` since load (the table's version).
  Result<uint64_t> TableVersion(const std::string& name) const;

  // --- key management (§3.4 delayed update propagation) ---
  /// Expires the current key version at `now`, generates a new key, and
  /// re-signs every tree/view under it.
  Status RotateKey(uint64_t now);

  // --- direct access for tests and benches ---
  VBTree* tree(const std::string& name);
  TableHeap* heap(const std::string& name);

 private:
  explicit CentralServer(Options options)
      : options_(std::move(options)), catalog_(options_.db_name) {}

  struct TableState {
    std::unique_ptr<TableHeap> heap;
    std::unique_ptr<VBTree> tree;
    /// Ops applied since load; snapshot/delta version lineage.
    uint64_t version = 0;
    /// Updates not yet exported as a delta.
    std::vector<UpdateOp> pending;
  };

  Status MakeSigner(uint64_t seed, std::unique_ptr<Signer>* signer,
                    std::shared_ptr<Recoverer>* recoverer);
  Result<TableState*> GetTableState(const std::string& name);
  Result<const TableState*> GetTableState(const std::string& name) const;

  /// Finds all rows of `table` matching `value` on column `col` (join
  /// maintenance helper).
  Result<std::vector<Tuple>> MatchingRows(const std::string& table, size_t col,
                                          const Value& value) const;

  Options options_;
  Catalog catalog_;
  LockManager lock_manager_;
  KeyDirectory key_directory_;
  /// All signers ever created stay alive: trees hold raw pointers, and old
  /// snapshots may still verify against archived versions.
  std::vector<std::unique_ptr<Signer>> signers_;
  Signer* current_signer_ = nullptr;
  uint32_t key_version_ = 0;
  uint64_t key_valid_from_ = 0;

  std::unique_ptr<InMemoryDiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::map<std::string, TableState> tables_;
  std::map<std::string, std::unique_ptr<JoinView>> views_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_CENTRAL_SERVER_H_
