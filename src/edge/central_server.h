#ifndef VBTREE_EDGE_CENTRAL_SERVER_H_
#define VBTREE_EDGE_CENTRAL_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "crypto/key_manager.h"
#include "crypto/rsa_signer.h"
#include "crypto/sim_signer.h"
#include "edge/partition_map.h"
#include "edge/propagation/update_log.h"
#include "edge/shard_write_domain.h"
#include "query/join_view.h"
#include "storage/table_heap.h"
#include "txn/lock_manager.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

/// The trusted central DBMS of Fig. 2: hosts the master database, holds
/// the private signing key, builds and maintains VB-trees (including
/// materialized join views), applies all updates (§3.4), and rotates
/// signing keys with validity windows.
///
/// Tables are range-sharded: every table is a set of key-range shards,
/// each an independently signed VB-tree with its own heap and update
/// log, stitched together by a signed, epoch-versioned PartitionMap
/// (edge/partition_map.h). A freshly created table has one shard
/// spanning the whole key domain (wire- and digest-compatible with the
/// pre-sharding layout); CreateTable with split points, or SplitShard
/// later, produces independent shards whose digest schemas are
/// qualified by the shard's distribution name — so no signature minted
/// for one shard can authenticate data served as another.
///
/// Distribution to edge servers is NOT driven from here: every DML op is
/// recorded in a per-shard, versioned UpdateLog, and the propagation
/// subsystem (edge/propagation/distribution_hub.h) asynchronously ships
/// the signed maps plus batched per-shard deltas — or full shard
/// snapshots for catch-up — to its subscribers. This class only exposes
/// the versioned read surface the hub consumes: ExportTableSnapshot,
/// DeltaSince, VersionOf, TruncateLog (all keyed by shard distribution
/// name), ShardNames, and PartitionMaps.
///
/// Concurrency (DESIGN.md §10): every shard owns a ShardWriteDomain —
/// a bounded DML queue drained by one dedicated signer worker that owns
/// all mutation of that shard's heap, tree and update log. InsertTuple /
/// DeleteRange resolve the owning shard(s) and enqueue; signing (the
/// dominant insert cost) proceeds in parallel across shards while each
/// shard's op stream — and therefore its UpdateLog — stays strictly
/// ordered. The paper's "single trusted writer" becomes one trusted
/// writer *per shard*; dml_mu_ shrinks to a catalog/layout lock held
/// only by DDL, bulk loads, splits and key rotation.
///
/// Cross-shard ordering: a DeleteRange spanning shards fences by
/// enqueueing one clamped op per overlapping domain and waiting on all
/// of them — each shard's log records it at that shard's own sequence
/// point (there is no global DML order, matching the per-shard version
/// streams the propagation layer already exposes). SplitShard seals
/// only the parent's domain (writers racing the seal retry against the
/// post-split layout); RotateKey quiesces all domains (it is the one
/// global sequence point). Tables referenced by a materialized join
/// view serialize their DML through the view-maintenance lock — view
/// maintenance is inherently cross-table — so only view-free tables pay
/// nothing for it.
///
/// The export/delta read surface takes per-shard shared latches and may
/// be called concurrently with DML from the propagator thread.
class CentralServer {
 public:
  struct Options {
    std::string db_name = "edgedb";
    VBTreeOptions tree_opts{};
    /// false → SimSigner (paper-sized 16-byte signed digests);
    /// true → real recoverable RSA.
    bool use_rsa = false;
    int rsa_bits = 1024;
    uint64_t key_seed = 2024;
    /// SimSigner decrypt work multiplier (Cost_s emulation).
    int sim_work_factor = 1;
    /// Validity window (logical time) granted to each key version.
    uint64_t key_validity = 1'000'000;
    size_t buffer_pool_pages = 16384;
    /// Ops retained per shard for delta propagation; subscribers further
    /// behind than this are caught up with a snapshot.
    size_t update_log_window = 1 << 16;

    /// Per-shard write-domain queue bound (Enqueue backpressures there).
    size_t domain_queue_capacity = 1024;
    /// Recent-insert-key window each domain retains for the auto-split
    /// policy's split-point heuristic.
    size_t domain_recent_keys = 256;

    // --- contention-driven auto-split (policy thread) ---
    /// When set, a background policy thread watches per-shard traffic
    /// (domain ops per window) and splits hot shards at the median of
    /// their recent insert keys — "split where the traffic is" — bumping
    /// the table's map epoch each time.
    bool auto_split = false;
    /// Policy evaluation cadence.
    uint64_t auto_split_interval_ms = 25;
    /// A shard is split-eligible only with at least this many domain ops
    /// in the last window (absolute traffic floor)...
    uint64_t auto_split_min_ops = 512;
    /// ...and, when the table has siblings to compare against, only when
    /// its window traffic exceeds `auto_split_skew` x the table mean
    /// (a sole shard with traffic is always considered hot).
    double auto_split_skew = 2.0;
    /// Never split shards holding fewer rows than this.
    size_t auto_split_min_rows = 256;
    /// Stop splitting a table at this many shards.
    size_t auto_split_max_shards = 16;
    /// Minimum time between two splits of the same table (lets traffic
    /// re-distribute before re-evaluating).
    uint64_t auto_split_cooldown_ms = 100;
  };

  static Result<std::unique_ptr<CentralServer>> Create(Options options);
  ~CentralServer();  ///< Stops the policy thread and seals every domain.

  const std::string& db_name() const { return options_.db_name; }
  const Catalog& catalog() const { return catalog_; }
  KeyDirectory* key_directory() { return &key_directory_; }
  LockManager* lock_manager() { return &lock_manager_; }
  uint32_t current_key_version() const { return key_version_; }

  // --- DDL / loading ---

  /// Creates a table as one shard covering the whole key domain (shard
  /// id 0, plain table name — the pre-sharding layout).
  Result<table_id_t> CreateTable(const std::string& name, Schema schema);

  /// Creates a table pre-split at `split_points` (strictly ascending;
  /// each point starts a new shard): k points → k+1 shards with fresh
  /// ids 1..k+1, each signed under its shard-qualified digest schema.
  /// Table names must not contain '#' (reserved for shard qualifiers).
  Result<table_id_t> CreateTable(const std::string& name, Schema schema,
                                 const std::vector<int64_t>& split_points);

  /// Bulk-loads rows (routed to their owning shards and sorted by key)
  /// into the shard heaps and builds each shard's VB-tree with every
  /// digest signed.
  Status LoadTable(const std::string& name, std::vector<Tuple> rows);

  Result<const TableInfo*> DescribeTable(const std::string& name) const {
    return catalog_.GetTable(name);
  }

  // --- updates (§3.4; only the central server can sign) ---
  /// Routes the row to its owning shard's write domain and waits for the
  /// domain worker to apply (heap insert, signed tree insert, log
  /// append). Concurrent callers hitting different shards sign in
  /// parallel; callers hitting one shard serialize in enqueue order.
  Status InsertTuple(const std::string& name, const Tuple& tuple,
                     txn_id_t txn = 0);
  /// Pipelined variant: returns as soon as the op is queued; the future
  /// resolves with the apply status. Per-shard order is the caller's
  /// enqueue order. (Tables referenced by a join view fall back to the
  /// serialized path and return an already-resolved future.)
  Result<std::future<Status>> InsertTupleAsync(const std::string& name,
                                               const Tuple& tuple,
                                               txn_id_t txn = 0);
  Result<size_t> DeleteRange(const std::string& name, int64_t lo, int64_t hi,
                             txn_id_t txn = 0);

  /// Splits the shard of `name` owning `split_key` into two shards with
  /// fresh ids: [lo, split_key-1] and [split_key, hi]. Incremental
  /// (DESIGN.md §10): the parent's domain is sealed and drained, live
  /// rows are copied to the children's heaps, and each child tree is
  /// built by VBTree::CloneRange — reusing the parent's already-signed
  /// subtrees, so only the O(height) trim boundary plus the root binding
  /// is re-signed, not O(rows). The children stay in the parent's digest
  /// domain (their map entries carry `lineage`; their VOs anchor at the
  /// signed shard binding), until the next key rotation re-homes them.
  /// Bumps the map epoch and re-signs the map; the parent shard's id
  /// never reappears, so its signatures cannot verify as any current
  /// shard. The parent's update log lineage ends here — subscribers pick
  /// the new shards up by snapshot under the new map epoch.
  Status SplitShard(const std::string& name, int64_t split_key);

  /// Shards of `name`, ascending by range (introspection for tests).
  Result<size_t> ShardCount(const std::string& name) const;

  /// Per-shard write-pipeline telemetry (TELEMETRY.md): the bench and
  /// vbtree_cli stats surface, and what the auto-split policy consumes.
  struct DomainStats {
    std::string dist_name;
    int64_t lo = 0;
    int64_t hi = 0;
    uint64_t ops_enqueued = 0;
    uint64_t ops_applied = 0;
    size_t queue_depth = 0;
    size_t queue_depth_peak = 0;
    size_t queue_depth_p99 = 0;
    /// Signer invocations this shard's tree has made (deterministic for
    /// a given op stream — the o(rows) incremental-split gate and the
    /// sign_calls_per_insert bench counter read this).
    uint64_t sign_calls = 0;
    uint64_t tree_version = 0;
    size_t rows = 0;
  };
  /// Stats for every shard of `name`, ascending by range.
  Result<std::vector<DomainStats>> TableDomainStats(
      const std::string& name) const;

  /// Auto-splits performed by the policy thread since startup.
  uint64_t splits_triggered() const {
    return splits_triggered_.load(std::memory_order_relaxed);
  }

  /// Copy of the table's current signed PartitionMap.
  Result<PartitionMap> TablePartitionMap(const std::string& name) const;

  // --- materialized join views (§3.3 Join) ---
  Status CreateJoinView(const JoinSpec& spec);
  Result<const JoinView*> GetJoinView(const std::string& view_name) const;

  // --- versioned distribution surface (consumed by DistributionHub) ---

  /// Serializes one shard (by distribution name) or view: schema, rows
  /// with their Rids, and the complete VB-tree (which carries the
  /// replica version). Plain table names resolve to the table's sole
  /// id-0 shard.
  Result<std::vector<uint8_t>> ExportTableSnapshot(
      const std::string& name) const;

  /// Batch of up to `max_ops` logged ops replaying shard `name` forward
  /// from `from_version`. Does not consume the log — several subscribers
  /// at different versions can each be served. kInvalidArgument when
  /// `from_version` predates the retained window (snapshot required).
  /// Shards only (views are propagated by snapshot).
  Result<UpdateBatch> DeltaSince(const std::string& name,
                                 uint64_t from_version,
                                 size_t max_ops = ~size_t{0}) const;

  /// Whether DeltaSince can serve `from_version` for shard `name`.
  Result<bool> DeltaCovers(const std::string& name,
                           uint64_t from_version) const;

  /// Drops logged ops at or below `version` (the hub calls this once all
  /// subscribers have applied them).
  Status TruncateLog(const std::string& name, uint64_t version);

  /// Current replica version of a shard or view (its VB-tree version):
  /// the number of mutations since load. Monotone per shard lineage.
  Result<uint64_t> VersionOf(const std::string& name) const;

  /// Ops applied to shard `name` since load. Alias of VersionOf.
  Result<uint64_t> TableVersion(const std::string& name) const {
    return VersionOf(name);
  }

  /// Names of all base tables / materialized views, in creation order.
  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;

  /// Distribution names of every shard of every base table, in table
  /// creation order, shards ascending by range — the per-shard version
  /// streams the propagation hub subscribes edges to.
  std::vector<std::string> ShardNames() const;

  /// The signed maps the hub ships ahead of shard data.
  struct MapInfo {
    std::string table;
    uint64_t epoch = 0;
    std::shared_ptr<const std::vector<uint8_t>> bytes;
  };
  std::vector<MapInfo> PartitionMaps() const;

  // --- key management (§3.4 delayed update propagation) ---
  /// Expires the current key version at `now`, generates a new key, and
  /// re-signs every shard tree, view and partition map under it. Bumps
  /// every shard and view version, bumps every map epoch, and resets the
  /// update logs: replicas must re-snapshot.
  Status RotateKey(uint64_t now);

  /// Cost-model inputs for one shard's snapshot (tuple count + column
  /// count), read while holding the shard alive — safe against a
  /// concurrent SplitShard retiring the shard (the propagation hub's
  /// kCostBased policy calls this from the propagator thread).
  struct SnapshotShape {
    size_t num_tuples = 0;
    size_t num_cols = 0;
  };
  Result<SnapshotShape> SnapshotShapeOf(const std::string& name) const;

  // --- direct access for tests and benches ---
  /// Resolves a shard distribution name (or the plain name of a
  /// single-shard table, or a view name) to its tree/heap. NOT
  /// split-safe: the raw pointer dangles if SplitShard retires the
  /// shard — test/bench hooks only, never called concurrently with
  /// splits.
  VBTree* tree(const std::string& name);
  TableHeap* heap(const std::string& name);

 private:
  explicit CentralServer(Options options)
      : options_(std::move(options)), catalog_(options_.db_name) {}

  /// One key-range shard: its own heap, independently signed VB-tree,
  /// and retained op log (an independent version stream).
  struct ShardState {
    uint32_t shard_id = 0;
    int64_t lo = 0;
    int64_t hi = 0;
    std::string dist_name;
    std::unique_ptr<TableHeap> heap;
    std::unique_ptr<VBTree> tree;
    /// Retained op log; head always equals tree->version().
    UpdateLog log;
    /// Guards heap + log against concurrent export (tree self-latches).
    mutable std::shared_mutex mu;
    /// The shard's write pipeline: all DML for this shard funnels
    /// through here (one signer worker, FIFO). Sealed when the shard is
    /// retired by a split.
    std::unique_ptr<ShardWriteDomain> domain;

    explicit ShardState(size_t log_window) : log(log_window) {}
  };

  struct TableState {
    Schema schema;
    /// Current signed map and its serialized form (shipped by the hub).
    PartitionMap map;
    std::shared_ptr<const std::vector<uint8_t>> map_bytes;
    /// Ascending by lo. shared_ptr so exports racing a SplitShard keep
    /// the retiring shard alive until they finish.
    std::vector<std::shared_ptr<ShardState>> shards;
    uint32_t next_shard_id = 1;
    /// Guards the shard vector + map against concurrent layout changes.
    mutable std::shared_mutex layout_mu;
  };

  struct ViewState {
    std::unique_ptr<JoinView> view;
    /// Guards the view heap against concurrent export.
    mutable std::shared_mutex mu;
  };

  Status MakeSigner(uint64_t seed, std::unique_ptr<Signer>* signer,
                    std::shared_ptr<Recoverer>* recoverer);
  Result<TableState*> GetTableState(const std::string& name);
  Result<const TableState*> GetTableState(const std::string& name) const;

  /// Resolves a shard distribution name ("t", "t#3") to its ShardState.
  Result<std::shared_ptr<ShardState>> ResolveShard(
      const std::string& dist_name) const;
  /// The shard of `table` owning `key` (layout latch taken shared).
  std::shared_ptr<ShardState> ShardForKey(const TableState& table,
                                          int64_t key) const;

  /// Shard scaffolding (heap, names, write domain) without a tree —
  /// split children receive CloneRange output instead.
  Result<std::shared_ptr<ShardState>> MakeShardShell(const std::string& table,
                                                     const Schema& schema,
                                                     uint32_t shard_id,
                                                     int64_t lo, int64_t hi);
  /// Builds an empty signed shard tree for [lo, hi].
  Result<std::shared_ptr<ShardState>> MakeShard(const std::string& table,
                                                const Schema& schema,
                                                uint32_t shard_id, int64_t lo,
                                                int64_t hi);

  /// Op bodies, run on the owning shard's domain worker. Self-contained:
  /// they take only the shard's own latches.
  Status ApplyInsert(ShardState* shard, const Tuple& tuple, txn_id_t txn);
  Status ApplyDelete(ShardState* shard, int64_t lo, int64_t hi, txn_id_t txn,
                     size_t* removed);

  /// Serialized DML for tables referenced by a join view (maintenance is
  /// cross-table; views_mu_ restores the pre-pipeline total order).
  Status InsertTupleSerial(const std::string& name, const Tuple& tuple,
                           txn_id_t txn);
  Result<size_t> DeleteRangeSerial(TableState* state, const std::string& name,
                                   int64_t lo, int64_t hi, txn_id_t txn);
  /// Join-view maintenance for one inserted row (caller holds views_mu_).
  Status MaintainViewsOnInsert(const std::string& name, const Tuple& tuple);

  /// Contention-driven auto-split policy thread.
  void PolicyLoop();
  void RunSplitPolicyOnce(
      std::map<std::string, uint64_t>* ops_baseline,
      std::map<std::string, std::chrono::steady_clock::time_point>*
          last_split);
  /// Recomputes, signs and re-serializes `table`'s map from its current
  /// shard layout (layout latch must be held exclusively by the caller,
  /// or the table not yet published).
  Status SignMap(TableState* table);

  /// Finds all rows of `table` matching `value` on column `col` (join
  /// maintenance helper); scans every shard.
  Result<std::vector<Tuple>> MatchingRows(const std::string& table, size_t col,
                                          const Value& value) const;

  Status ExportHeapAndTree(const std::string& name, const Schema& schema,
                           const TableHeap* heap, const VBTree* tree,
                           ByteWriter* w) const;

  Options options_;
  Catalog catalog_;
  LockManager lock_manager_;
  KeyDirectory key_directory_;
  /// All signers ever created stay alive: trees hold raw pointers, and old
  /// snapshots may still verify against archived versions.
  std::vector<std::unique_ptr<Signer>> signers_;
  Signer* current_signer_ = nullptr;
  uint32_t key_version_ = 0;
  uint64_t key_valid_from_ = 0;

  std::unique_ptr<InMemoryDiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;

  /// Catalog/layout lock: DDL, bulk loads, splits and key rotation only.
  /// The per-row write path never takes it — rows flow through the
  /// owning shard's ShardWriteDomain instead (DESIGN.md §10).
  std::mutex dml_mu_;
  /// Guards the table/view maps themselves (DDL vs lookups). Also held
  /// shared across the view-membership check *and* the domain enqueue on
  /// the fast DML path, so CreateJoinView (which registers view_refs_
  /// under the exclusive lock, then drains the base tables' domains)
  /// can never miss an in-flight fast-path op.
  mutable std::shared_mutex maps_mu_;
  std::map<std::string, std::unique_ptr<TableState>> tables_;
  std::map<std::string, std::unique_ptr<ViewState>> views_;
  std::vector<std::string> table_order_;
  std::vector<std::string> view_order_;
  /// Tables referenced by at least one materialized join view (guarded
  /// by maps_mu_): their DML takes the serialized views_mu_ path.
  std::multiset<std::string> view_refs_;
  /// Serializes DML on view-referenced tables and all view maintenance.
  /// Ops queued on domain workers NEVER take this lock (deadlock-freedom
  /// rule: a caller may hold it while waiting on a domain future).
  std::mutex views_mu_;

  // --- auto-split policy thread ---
  std::thread policy_thread_;
  std::mutex policy_mu_;
  std::condition_variable policy_cv_;
  bool stopping_ = false;
  std::atomic<uint64_t> splits_triggered_{0};
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_CENTRAL_SERVER_H_
