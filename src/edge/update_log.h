#ifndef VBTREE_EDGE_UPDATE_LOG_H_
#define VBTREE_EDGE_UPDATE_LOG_H_

#include <functional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "common/result.h"
#include "common/serde.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

/// One logged update applied at the central server (§3.4), with all the
/// signature material an edge replica needs to replay it:
///  * inserts carry the tuple, its Rid, and the signed attribute/tuple
///    digests (formula (1)/(2));
///  * both kinds carry the node signatures produced while re-signing the
///    affected path, in deterministic order.
///
/// The replica recomputes all *unsigned* digests itself (they are public
/// functions of the data), so a delta is tiny compared to a snapshot: the
/// values of one tuple plus O(height) signatures.
struct UpdateOp {
  enum class Kind : uint8_t { kInsert = 0, kDeleteRange = 1 };

  Kind kind = Kind::kInsert;
  // kInsert payload:
  Tuple tuple;
  Rid rid;
  VBTree::SignedEntryMaterial material;
  // kDeleteRange payload:
  int64_t lo = 0;
  int64_t hi = 0;
  // Signatures from node re-signing, in ResignNode order.
  std::vector<Signature> resigned;

  void Serialize(ByteWriter* w) const;
  static Result<UpdateOp> Deserialize(ByteReader* r, const Schema& schema);
};

/// A consecutive run of updates for one table, shipped from the central
/// server to edge servers instead of a full snapshot.
struct UpdateBatch {
  std::string table;
  /// The table version the batch applies on top of (must equal the
  /// replica's current version) and the version it produces.
  uint64_t from_version = 0;
  uint64_t to_version = 0;
  std::vector<UpdateOp> ops;

  void Serialize(ByteWriter* w) const;

  /// `schema_for` resolves the table name to its schema (needed to decode
  /// tuple values).
  static Result<UpdateBatch> Deserialize(
      ByteReader* r,
      const std::function<Result<Schema>(const std::string&)>& schema_for);

  size_t SerializedSize() const;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_UPDATE_LOG_H_
