#ifndef VBTREE_EDGE_CLIENT_H_
#define VBTREE_EDGE_CLIENT_H_

#include <map>
#include <memory>
#include <string>

#include "crypto/counting_recoverer.h"
#include "crypto/key_manager.h"
#include "edge/edge_server.h"
#include "edge/propagation/transport.h"
#include "edge/query_service/batch_verifier.h"
#include "edge/query_service/query_service.h"
#include "vbtree/verifier.h"

namespace vbtree {

/// A trusted DB client (Fig. 2): sends queries to an edge server over the
/// (simulated) network, then authenticates each answer against its VO
/// using the central server's public key — resolved through the
/// KeyDirectory so results signed with an expired key version are
/// rejected (§3.4).
///
/// The client also tracks the highest replica version it has seen per
/// table: an answer from a less up-to-date edge is flagged stale
/// (authentic-but-old data is exactly what a compromised or lagging edge
/// could serve within a key validity window).
///
/// Not internally synchronized: use one Client per thread.
class Client {
 public:
  Client(std::string db_name, KeyDirectory* keys)
      : db_name_(std::move(db_name)), keys_(keys) {}

  /// Registers table metadata (obtained from the central server's catalog
  /// over an authenticated channel); required before querying the table.
  void RegisterTable(const std::string& table, Schema schema,
                     HashAlgorithm algo = HashAlgorithm::kSha256,
                     int modulus_bits = 128);

  /// Outcome of one authenticated query.
  struct Verified {
    std::vector<ResultRow> rows;
    /// OK, or kVerificationFailure with the reason.
    Status verification;
    /// Version of the replica that served the answer.
    uint64_t replica_version = 0;
    /// True when this answer came from a replica older than one this
    /// client already read for the same table (monotonic-read check).
    bool stale_replica = false;
    size_t request_bytes = 0;
    size_t result_bytes = 0;
    size_t vo_bytes = 0;
    /// Signed digests carried by the VO (|D_S| + |D_P| + 1).
    size_t vo_digests = 0;
    /// Client-side Cost_h / Cost_k / Cost_s operation counts.
    CryptoCounters counters;
  };

  /// Sends `query` to `edge` and verifies the answer at logical time
  /// `now`. Transport errors surface as the outer Status; authentication
  /// failures are reported in Verified::verification.
  Result<Verified> Query(EdgeServer* edge, const SelectQuery& query,
                         uint64_t now, Transport* net = nullptr);

  /// Outcome of one authenticated batch: positional per-query results
  /// plus the batch-level telemetry the edge reported.
  struct VerifiedBatch {
    std::vector<Verified> results;
    /// The one replica version that served the whole batch.
    uint64_t replica_version = 0;
    /// Batch-level monotonic-read flag (mirrored into every result).
    bool stale_replica = false;
    /// Edge-side telemetry: queue wait, exec time, shared-fetch savings,
    /// per-component byte totals.
    BatchExecStats stats;
    size_t request_bytes = 0;
  };

  /// Ships a QueryBatch through `service`'s submission queue (full wire
  /// path) and authenticates every per-query VO — fanned across
  /// `verifier`'s worker pool when one is supplied, inline otherwise.
  /// Monotonic-read semantics match Query(): the watermark only advances
  /// on responses that authenticated, and the batch is flagged stale when
  /// its (single) replica version is below the watermark.
  Result<VerifiedBatch> QueryBatched(QueryService* service,
                                     const QueryBatch& batch, uint64_t now,
                                     BatchVerifier* verifier = nullptr,
                                     Transport* net = nullptr);

 private:
  struct TableMeta {
    Schema schema;
    HashAlgorithm algo;
    int modulus_bits;
  };

  /// Interned request/response channel ids, cached per edge so the query
  /// hot path records bytes without string lookups.
  struct EdgeChannels {
    Transport* transport = nullptr;
    channel_id_t up = kInvalidChannel;
    channel_id_t down = kInvalidChannel;
  };

  std::string db_name_;
  KeyDirectory* keys_;
  std::map<std::string, TableMeta> tables_;
  std::map<std::string, EdgeChannels> channels_;
  /// Highest replica version seen per table (monotonic-read watermark).
  std::map<std::string, uint64_t> freshness_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_CLIENT_H_
