#ifndef VBTREE_EDGE_CLIENT_H_
#define VBTREE_EDGE_CLIENT_H_

#include <map>
#include <memory>
#include <string>

#include "crypto/counting_recoverer.h"
#include "crypto/key_manager.h"
#include "edge/edge_server.h"
#include "edge/network.h"
#include "vbtree/verifier.h"

namespace vbtree {

/// A trusted DB client (Fig. 2): sends queries to an edge server over the
/// (simulated) network, then authenticates each answer against its VO
/// using the central server's public key — resolved through the
/// KeyDirectory so results signed with an expired key version are
/// rejected (§3.4).
class Client {
 public:
  Client(std::string db_name, KeyDirectory* keys)
      : db_name_(std::move(db_name)), keys_(keys) {}

  /// Registers table metadata (obtained from the central server's catalog
  /// over an authenticated channel); required before querying the table.
  void RegisterTable(const std::string& table, Schema schema,
                     HashAlgorithm algo = HashAlgorithm::kSha256,
                     int modulus_bits = 128);

  /// Outcome of one authenticated query.
  struct Verified {
    std::vector<ResultRow> rows;
    /// OK, or kVerificationFailure with the reason.
    Status verification;
    size_t request_bytes = 0;
    size_t result_bytes = 0;
    size_t vo_bytes = 0;
    /// Signed digests carried by the VO (|D_S| + |D_P| + 1).
    size_t vo_digests = 0;
    /// Client-side Cost_h / Cost_k / Cost_s operation counts.
    CryptoCounters counters;
  };

  /// Sends `query` to `edge` and verifies the answer at logical time
  /// `now`. Transport errors surface as the outer Status; authentication
  /// failures are reported in Verified::verification.
  Result<Verified> Query(EdgeServer* edge, const SelectQuery& query,
                         uint64_t now, SimulatedNetwork* net = nullptr);

 private:
  struct TableMeta {
    Schema schema;
    HashAlgorithm algo;
    int modulus_bits;
  };

  std::string db_name_;
  KeyDirectory* keys_;
  std::map<std::string, TableMeta> tables_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_CLIENT_H_
