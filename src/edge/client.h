#ifndef VBTREE_EDGE_CLIENT_H_
#define VBTREE_EDGE_CLIENT_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/counting_recoverer.h"
#include "crypto/key_manager.h"
#include "crypto/recovered_digest_cache.h"
#include "edge/edge_server.h"
#include "edge/propagation/transport.h"
#include "edge/query_service/batch_verifier.h"
#include "edge/query_service/query_service.h"
#include "vbtree/verifier.h"

namespace vbtree {

/// A trusted DB client (Fig. 2): sends queries to an edge server over the
/// (simulated) network, then authenticates each answer against its VO
/// using the central server's public key — resolved through the
/// KeyDirectory so results signed with an expired key version are
/// rejected (§3.4).
///
/// The client also tracks the highest replica version it has seen per
/// table: an answer from a less up-to-date edge is flagged stale
/// (authentic-but-old data is exactly what a compromised or lagging edge
/// could serve within a key validity window).
///
/// Not internally synchronized: use one Client per thread.
class Client {
 public:
  Client(std::string db_name, KeyDirectory* keys)
      : db_name_(std::move(db_name)),
        keys_(keys),
        digest_cache_(std::make_shared<RecoveredDigestCache>()) {}

  /// Replaces (or, with nullptr, disables) the cross-batch
  /// recovered-digest cache. Client libraries embedding many Clients can
  /// share one instance — the cache is internally sharded and
  /// thread-safe even though the Client itself is not.
  void set_digest_cache(std::shared_ptr<RecoveredDigestCache> cache) {
    digest_cache_ = std::move(cache);
  }
  RecoveredDigestCache* digest_cache() const { return digest_cache_.get(); }

  /// Disables/enables the whole verification fast path (pooled
  /// once-per-batch recovery, digest cache, signed-top memo). On by
  /// default; the load driver's --no-verify-cache control and A/B tests
  /// turn it off to measure the plain Recover-per-reference path.
  void set_verify_fast_path(bool enabled) { verify_fast_path_ = enabled; }

  /// Registers table metadata (obtained from the central server's catalog
  /// over an authenticated channel); required before querying the table.
  void RegisterTable(const std::string& table, Schema schema,
                     HashAlgorithm algo = HashAlgorithm::kSha256,
                     int modulus_bits = 128);

  /// Outcome of one authenticated query.
  struct Verified {
    std::vector<ResultRow> rows;
    /// OK, or kVerificationFailure with the reason.
    Status verification;
    /// Version of the replica that served the answer.
    uint64_t replica_version = 0;
    /// True when this answer came from a replica older than one this
    /// client already read for the same table (monotonic-read check).
    bool stale_replica = false;
    size_t request_bytes = 0;
    size_t result_bytes = 0;
    size_t vo_bytes = 0;
    /// Signed digests carried by the VO (|D_S| + |D_P| + 1).
    size_t vo_digests = 0;
    /// Client-side Cost_h / Cost_k / Cost_s operation counts.
    CryptoCounters counters;
  };

  /// Sends `query` to `edge` and verifies the answer at logical time
  /// `now`. Transport errors surface as the outer Status; authentication
  /// failures are reported in Verified::verification.
  Result<Verified> Query(EdgeServer* edge, const SelectQuery& query,
                         uint64_t now, Transport* net = nullptr);

  /// Outcome of one authenticated batch: positional per-query results
  /// plus the batch-level telemetry the edge reported.
  struct VerifiedBatch {
    std::vector<Verified> results;
    /// The one replica version that served the whole batch.
    uint64_t replica_version = 0;
    /// Batch-level monotonic-read flag (mirrored into every result).
    bool stale_replica = false;
    /// Edge-side telemetry: queue wait, exec time, shared-fetch savings,
    /// per-component byte totals.
    BatchExecStats stats;
    size_t request_bytes = 0;
    /// Client-side crypto work for the whole batch: the pool-recovery
    /// phase (batch-level, not attributable to one query) plus every
    /// per-query outcome. recovers == actual p() calls; cache fields
    /// count digest-cache traffic.
    CryptoCounters crypto;
    /// Wall time spent authenticating (key resolution, pool recovery,
    /// per-query verification) — the bench's verify_cost_us_per_query
    /// numerator.
    uint64_t verify_us = 0;
    /// Signed-top recoveries skipped via the (table, replica_version)
    /// memo.
    uint64_t top_memo_hits = 0;
  };

  /// Ships a QueryBatch through `service`'s submission queue (full wire
  /// path) and authenticates every per-query VO — fanned across
  /// `verifier`'s worker pool when one is supplied, inline otherwise.
  /// Monotonic-read semantics match Query(): the watermark only advances
  /// on responses that authenticated, and the batch is flagged stale when
  /// its (single) replica version is below the watermark.
  Result<VerifiedBatch> QueryBatched(QueryService* service,
                                     const QueryBatch& batch, uint64_t now,
                                     BatchVerifier* verifier = nullptr,
                                     Transport* net = nullptr);

 private:
  struct TableMeta {
    Schema schema;
    HashAlgorithm algo;
    int modulus_bits;
  };

  /// Interned request/response channel ids, cached per edge so the query
  /// hot path records bytes without string lookups.
  struct EdgeChannels {
    Transport* transport = nullptr;
    channel_id_t up = kInvalidChannel;
    channel_id_t down = kInvalidChannel;
  };

  /// One memoized signed-top recovery: the digest `sig` decrypts to
  /// under key version `key_version` (recovery is a pure function of the
  /// bytes given the key, so replaying it is sound; see DESIGN.md §6).
  struct TopEntry {
    uint32_t key_version = 0;
    Digest digest;
  };
  /// Signed-top recoveries observed at one (table's) replica version.
  struct TopMemoEpoch {
    uint64_t replica_version = 0;
    std::unordered_map<Signature, TopEntry, SignatureHash> tops;
  };

  /// Memo probe/update for the signed-top fast path (newest-first epoch
  /// list per table, bounded).
  const Digest* LookupTopMemo(const std::string& table,
                              uint64_t replica_version, uint32_t key_version,
                              const Signature& sig) const;
  void InsertTopMemo(const std::string& table, uint64_t replica_version,
                     uint32_t key_version, const Signature& sig,
                     const Digest& digest);

  std::string db_name_;
  KeyDirectory* keys_;
  std::map<std::string, TableMeta> tables_;
  std::map<std::string, EdgeChannels> channels_;
  /// Highest replica version seen per table (monotonic-read watermark).
  std::map<std::string, uint64_t> freshness_;
  std::shared_ptr<RecoveredDigestCache> digest_cache_;
  bool verify_fast_path_ = true;
  /// Per-table signed-top memo: batches at one watermark pay the top
  /// recovery once. Keeps the 2 newest replica versions so propagation
  /// races don't thrash it.
  std::map<std::string, std::vector<TopMemoEpoch>> top_memo_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_CLIENT_H_
