#ifndef VBTREE_EDGE_CLIENT_H_
#define VBTREE_EDGE_CLIENT_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/counting_recoverer.h"
#include "crypto/key_manager.h"
#include "crypto/recovered_digest_cache.h"
#include "edge/edge_server.h"
#include "edge/partition_map.h"
#include "edge/propagation/transport.h"
#include "edge/query_service/batch_verifier.h"
#include "edge/query_service/query_service.h"
#include "edge/query_service/signed_top_memo.h"
#include "query/trust.h"
#include "vbtree/verifier.h"

namespace vbtree {

class EdgeDirector;
class LazyAuditor;

/// A trusted DB client (Fig. 2): sends queries to an edge server over the
/// (simulated) network, then authenticates each answer against its VO
/// using the central server's public key — resolved through the
/// KeyDirectory so results signed with an expired key version are
/// rejected (§3.4).
///
/// Sharded tables (RegisterShardedTable) add a scatter-gather layer: the
/// client obtains the table's signed PartitionMap from the edge,
/// authenticates it (signature + epoch floor), derives which shards a
/// query must touch, and verifies one VO per shard under that shard's
/// qualified digest schema. Cross-shard completeness holds because (a)
/// the map's signed boundaries dictate exactly which k shards a range
/// intersects and the client demands exactly those k VOs, (b) each
/// per-shard VO proves completeness of the range clamped to the shard's
/// signed boundaries, and (c) adjacent clamped ranges meet exactly at
/// those boundaries — so the union covers the whole query range with no
/// key the edge could silently drop between shards.
///
/// The client also tracks the highest replica version it has seen per
/// shard, plus a per-table partition-map epoch floor: an answer from a
/// less up-to-date edge is flagged stale, and a map older than one this
/// client has already authenticated (e.g. replayed from before a shard
/// split) is rejected outright.
///
/// Not internally synchronized: use one Client per thread.
class Client {
 public:
  Client(std::string db_name, KeyDirectory* keys)
      : db_name_(std::move(db_name)),
        keys_(keys),
        digest_cache_(std::make_shared<RecoveredDigestCache>()) {}

  /// Replaces (or, with nullptr, disables) the cross-batch
  /// recovered-digest cache. Client libraries embedding many Clients can
  /// share one instance — the cache is internally sharded and
  /// thread-safe even though the Client itself is not.
  void set_digest_cache(std::shared_ptr<RecoveredDigestCache> cache) {
    digest_cache_ = std::move(cache);
  }
  RecoveredDigestCache* digest_cache() const { return digest_cache_.get(); }

  /// Disables/enables the whole verification fast path (pooled
  /// once-per-batch recovery, digest cache, signed-top memo). On by
  /// default; the load driver's --no-verify-cache control and A/B tests
  /// turn it off to measure the plain Recover-per-reference path.
  void set_verify_fast_path(bool enabled) { verify_fast_path_ = enabled; }

  /// Attaches the background auditor that lazy trust modes defer
  /// verification to (required before issuing a TrustMode::kLazy or
  /// kSampled batch; not owned). Many Clients may share one auditor —
  /// its submission side is thread-safe even though the Client is not.
  void set_auditor(LazyAuditor* auditor) { auditor_ = auditor; }

  /// Registers table metadata (obtained from the central server's catalog
  /// over an authenticated channel); required before querying the table.
  void RegisterTable(const std::string& table, Schema schema,
                     HashAlgorithm algo = HashAlgorithm::kSha256,
                     int modulus_bits = 128);

  /// Registers a range-sharded table: queries route through the signed
  /// PartitionMap (fetched from the edge, client-authenticated) and
  /// every answer verifies per shard. The "this table is sharded" bit
  /// travels with the schema over the authenticated catalog channel — a
  /// malicious edge cannot downgrade a sharded table to an unsharded one
  /// by withholding its map.
  void RegisterShardedTable(const std::string& table, Schema schema,
                            HashAlgorithm algo = HashAlgorithm::kSha256,
                            int modulus_bits = 128);

  /// Multi-statement read consistency across partition-map generations.
  /// Between Begin/EndPinnedRead, the first map epoch this client
  /// authenticates for each table is pinned; a map for the same table at
  /// any *other* epoch — older or newer — then fails verification
  /// instead of silently mixing shard layouts mid-read. Without the pin,
  /// a concurrent shard split could serve statement 1 under the pre-split
  /// layout and statement 2 under the post-split one: each answer
  /// authenticates individually, but the pair is not a consistent cut.
  /// On rejection the caller ends the pinned read and retries against
  /// the new generation. Begin clears any previous pin set; nesting is
  /// not supported (Begin while pinned just resets the pin set).
  void BeginPinnedRead();
  void EndPinnedRead();

  /// Outcome of one authenticated query.
  struct Verified {
    std::vector<ResultRow> rows;
    /// OK, or kVerificationFailure with the reason.
    Status verification;
    /// Version of the replica that served the answer (minimum across
    /// shards for a scattered query).
    uint64_t replica_version = 0;
    /// True when this answer came from a replica older than one this
    /// client already read for the same shard (monotonic-read check).
    /// Under lazy trust modes the comparison baseline is the auditor's
    /// *audited* watermark — provisional answers never define freshness.
    bool stale_replica = false;
    /// Lazy trust modes: the answer was delivered provisionally —
    /// `verification` is OK but authentication is deferred to the
    /// auditor, which alarms if the deferred check fails. Always false
    /// under kCertified.
    bool pending_audit = false;
    /// Partition-map epoch the answer verified under (0: unsharded).
    uint64_t map_epoch = 0;
    /// Shards this query's range touched (1 for unsharded tables).
    size_t shards_touched = 1;
    size_t request_bytes = 0;
    size_t result_bytes = 0;
    size_t vo_bytes = 0;
    /// Signed digests carried by the VO(s) (|D_S| + |D_P| + 1 per shard).
    size_t vo_digests = 0;
    /// Client-side Cost_h / Cost_k / Cost_s operation counts.
    CryptoCounters counters;
  };

  /// Sends `query` to `edge` and verifies the answer at logical time
  /// `now`. Transport errors surface as the outer Status; authentication
  /// failures are reported in Verified::verification. Sharded tables
  /// scatter-gather: a range spanning k shards issues k clamped
  /// sub-queries and merges their verified rows in shard (= key) order;
  /// a single-shard range ships as one query the edge routes itself.
  Result<Verified> Query(EdgeServer* edge, const SelectQuery& query,
                         uint64_t now, Transport* net = nullptr);

  /// Outcome of one authenticated batch: positional per-query results
  /// plus the batch-level telemetry the edge reported.
  struct VerifiedBatch {
    std::vector<Verified> results;
    /// The one replica version that served the whole batch (minimum
    /// across shard groups for a sharded batch).
    uint64_t replica_version = 0;
    /// Batch-level monotonic-read flag (mirrored into every result).
    bool stale_replica = false;
    /// Partition-map epoch the batch verified under (0: unsharded).
    uint64_t map_epoch = 0;
    /// Edge-side telemetry: queue wait, exec time, shared-fetch savings,
    /// per-component byte totals (group-aggregated when sharded).
    BatchExecStats stats;
    size_t request_bytes = 0;
    /// Sub-queries executed per shard: (shard_id, count). Empty for
    /// unsharded batches. Feeds the load driver's per-shard qps.
    std::vector<std::pair<uint32_t, uint64_t>> shard_query_counts;
    /// Client-side crypto work for the whole batch: the pool-recovery
    /// phase (batch-level, not attributable to one query) plus every
    /// per-query outcome. recovers == actual p() calls; cache fields
    /// count digest-cache traffic.
    CryptoCounters crypto;
    /// Wall time spent authenticating (key resolution, pool recovery,
    /// per-query verification) — the bench's verify_cost_us_per_query
    /// numerator.
    uint64_t verify_us = 0;
    /// Wall time spent authenticating the partition map (signature
    /// recovery + layout checks; ~0 on the byte-identical cache hit).
    uint64_t map_verify_us = 0;
    /// Signed-top recoveries skipped via the (shard, replica_version)
    /// memo.
    uint64_t top_memo_hits = 0;
    /// Queries delivered provisionally with a deferred-verification
    /// ticket (0 under kCertified).
    uint64_t deferred_queries = 0;

    // --- failover telemetry (the director overload; zero otherwise) ---
    /// Edge attempts made for this batch (1 = first try served it).
    uint64_t attempts = 0;
    /// Attempts that switched to a different edge than the previous one.
    uint64_t failovers = 0;
    /// True when no healthy fresh edge could serve: the answer is a
    /// stale-but-verified floor or the central fallback — never silent.
    bool degraded = false;
    /// "" | "stale_floor" | "central".
    std::string degraded_mode;
    /// Edge (or central service) that served the returned answer.
    std::string served_by;
  };

  /// Ships a QueryBatch through `service`'s submission queue (full wire
  /// path) and authenticates every per-query VO — fanned across
  /// `verifier`'s worker pool when one is supplied, inline otherwise.
  /// Sharded tables come back as a scatter-gather response: the client
  /// re-authenticates the embedded map, recomputes the scatter plan, and
  /// verifies each shard group under its own digest schema before
  /// stitching per-query results back together. Monotonic-read semantics
  /// match Query(): per-shard watermarks only advance on responses that
  /// authenticated.
  ///
  /// `batch.trust_mode` selects the authentication schedule: kCertified
  /// verifies synchronously (above); kLazy/kSampled return immediately
  /// with `pending_audit` results and hand a deferred-verification
  /// ticket — rows, VOs, signature-pool ref, replica version — to the
  /// attached LazyAuditor (set_auditor), whose queue backpressures this
  /// call when full. Map authentication and scatter-plan validation stay
  /// synchronous in every mode (they gate response *shape*, not row
  /// authenticity).
  Result<VerifiedBatch> QueryBatched(QueryService* service,
                                     const QueryBatch& batch, uint64_t now,
                                     BatchVerifier* verifier = nullptr,
                                     Transport* net = nullptr);

  /// Retry/failover policy for the director overload of QueryBatched.
  struct FailoverPolicy {
    /// Total edge attempts (across all candidates) before degrading.
    size_t max_attempts = 4;
    /// Wall budget per attempt, microseconds. An attempt that exceeds it
    /// still uses its verified answer, but the edge takes a timeout
    /// strike — slow edges drift toward quarantine without the client
    /// ever discarding authenticated data. 0 = no budget.
    uint64_t attempt_budget_us = 0;
    /// Overall deadline for the whole call, microseconds (0 = none);
    /// when it expires the call degrades rather than retrying further.
    uint64_t deadline_us = 0;
    /// Jittered exponential backoff between attempts.
    uint64_t backoff_initial_us = 200;
    double backoff_factor = 2.0;
    uint64_t backoff_max_us = 10'000;
    uint64_t jitter_seed = 0x9e3779b9;
    /// Minimum replica version a non-degraded answer must carry. A
    /// verified-but-older answer is retained as the stale floor and the
    /// search continues for a fresh edge. 0 = any version is fresh.
    uint64_t min_fresh_version = 0;
    /// Last resort when no healthy fresh edge remains: a query service
    /// backed by the central server's own replica (answers flagged
    /// degraded_mode="central"). Null = no central fallback.
    QueryService* central_fallback = nullptr;
  };

  /// Failover overload: routes through `director`'s health-ordered
  /// candidates with bounded retries, jittered exponential backoff, and
  /// a per-attempt budget; failed / timed-out / verification-failed
  /// attempts are reported to the director (feeding quarantine) and the
  /// batch is re-issued against the next healthy edge. Attempts are
  /// deduped by (edge, replica version, query fingerprint): an edge that
  /// deterministically failed this exact batch at the same replica
  /// version is not retried while other candidates remain.
  ///
  /// Soundness across attempts: each attempt runs the single-edge
  /// QueryBatched verbatim, so the monotonic-read watermark only ever
  /// advances on authenticated answers (never regresses on a failed
  /// attempt) and the returned batch is a single attempt's response —
  /// one replica version, never rows mixed across edges. When no
  /// healthy fresh edge remains the call degrades *explicitly*: a
  /// stale-but-verified answer flagged `stale_floor`, or the central
  /// fallback flagged `central`, never a silent downgrade.
  Result<VerifiedBatch> QueryBatched(EdgeDirector* director,
                                     const QueryBatch& batch, uint64_t now,
                                     const FailoverPolicy& policy,
                                     BatchVerifier* verifier = nullptr,
                                     Transport* net = nullptr);

 private:
  struct TableMeta {
    Schema schema;
    HashAlgorithm algo;
    int modulus_bits;
    bool sharded = false;
  };

  /// Interned request/response channel ids, cached per edge so the query
  /// hot path records bytes without string lookups.
  struct EdgeChannels {
    Transport* transport = nullptr;
    channel_id_t up = kInvalidChannel;
    channel_id_t down = kInvalidChannel;
  };

  /// A partition map this client has authenticated, kept with its exact
  /// bytes so re-presenting the identical map skips the signature work.
  struct VerifiedMap {
    uint64_t epoch = 0;
    std::vector<uint8_t> bytes;
    PartitionMap map;
  };

  /// Verification outcome of one coalesced (single-shard) batch group.
  struct GroupOutcome {
    std::vector<Verified> results;  ///< positional with the group queries
    CryptoCounters crypto;
    uint64_t top_memo_hits = 0;
    uint64_t deferred = 0;  ///< queries handed to the auditor
    bool stale_replica = false;
    bool any_verified = false;
  };

  EdgeChannels* ResolveChannels(EdgeServer* edge, Transport* net);

  /// Authenticates (and caches) a partition map presented by an edge:
  /// parse, structural checks, table/db binding, epoch floor, signature
  /// recovery under the KeyDirectory. Bytes identical to the cached
  /// verified map short-circuit without copying or re-verifying. The
  /// returned pointer lives until the next VerifyMapBytes call for the
  /// same table.
  Result<const PartitionMap*> VerifyMapBytes(const std::string& table,
                                             const TableMeta& meta,
                                             Slice bytes, uint64_t now);

  /// One wire query against `edge`, authenticated under `schema_table`
  /// (the shard-qualified watermark key; equals wire_query.table for
  /// unsharded tables). `shard` — the client-verified map entry, when
  /// sharded — selects the digest schema: a lineage shard (split child
  /// still in its ancestor's digest domain) verifies under
  /// `shard->lineage` with the VO anchored at the shard binding
  /// signature for `schema_table`'s signed range.
  Result<Verified> QueryOne(EdgeServer* edge, const SelectQuery& wire_query,
                            const std::string& schema_table,
                            const TableMeta& meta, uint64_t now,
                            Transport* net,
                            const ShardEntry* shard = nullptr);

  /// Folds one shard's verified part into a scattered query's merged
  /// outcome (rows append in shard order, cross-shard boundary check,
  /// byte/counter sums, first failure wins).
  static void MergeVerifiedPart(Verified* merged, Verified part,
                                bool first_part);

  /// Verifies the per-query VOs of one coalesced response against
  /// `queries` under `digest_table`'s digest schema (== schema_table
  /// except for lineage shards); updates the schema_table watermark.
  /// `binding`, when non-null, anchors every VO at the shard binding
  /// signature (lineage shards; must outlive the call). The extracted
  /// core shared by the unsharded batch path and every shard group of a
  /// scattered batch.
  GroupOutcome VerifyBatchGroup(const std::string& schema_table,
                                const std::string& digest_table,
                                const Verifier::TopBinding* binding,
                                const TableMeta& meta,
                                std::span<const SelectQuery> queries,
                                QueryBatchResponse& resp, uint64_t now,
                                BatchVerifier* verifier);

  /// Lazy-trust counterpart of VerifyBatchGroup: delivers the group's
  /// rows provisionally (`pending_audit`), flags staleness against the
  /// auditor's *audited* watermark, and moves the response — rows, VOs,
  /// signature-pool ref — into an AuditTicket submitted to `auditor_`
  /// (blocking when its bounded queue is full). Never touches
  /// `freshness_`: only audited answers define lazy-mode freshness.
  /// `source` is the answering edge's name, stamped on the ticket so
  /// alarms are attributable (and a suspect edge's queued tickets can be
  /// expedited).
  GroupOutcome DeferBatchGroup(const std::string& schema_table,
                               const std::string& digest_table,
                               const Verifier::TopBinding* binding,
                               const TableMeta& meta,
                               std::span<const SelectQuery> queries,
                               QueryBatchResponse& resp, uint64_t now,
                               TrustMode mode, const std::string& source);

  std::string db_name_;
  KeyDirectory* keys_;
  std::map<std::string, TableMeta> tables_;
  std::map<std::string, EdgeChannels> channels_;
  /// Highest replica version seen per shard (monotonic-read watermark).
  std::map<std::string, uint64_t> freshness_;
  /// Authenticated maps and the per-table epoch floor: a map older than
  /// one this client has accepted can never verify again.
  std::map<std::string, VerifiedMap> maps_;
  std::map<std::string, uint64_t> map_floor_;
  /// BeginPinnedRead state: per-table epoch pinned at first map
  /// authentication inside the pinned read. Pins record only after the
  /// map verified — a forged map cannot poison the pin set.
  bool pinned_read_ = false;
  std::map<std::string, uint64_t> pinned_epochs_;
  std::shared_ptr<RecoveredDigestCache> digest_cache_;
  bool verify_fast_path_ = true;
  /// Per-shard signed-top memo: batches at one watermark pay the top
  /// recovery once (shared implementation with the LazyAuditor's
  /// cross-ticket memo).
  SignedTopMemo top_memo_;
  /// Deferred-verification sink for lazy trust modes (not owned).
  LazyAuditor* auditor_ = nullptr;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_CLIENT_H_
