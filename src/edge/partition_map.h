#ifndef VBTREE_EDGE_PARTITION_MAP_H_
#define VBTREE_EDGE_PARTITION_MAP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "crypto/hash.h"
#include "crypto/signer.h"
#include "query/predicate.h"

namespace vbtree {

/// One key-range shard of a table: an independently signed VB-tree whose
/// digest schema is qualified by the shard's distribution name, so a
/// signature minted for one shard can never authenticate data served as
/// another shard (or as the whole table).
struct ShardEntry {
  uint32_t shard_id = 0;
  /// Inclusive key range [lo, hi]. Adjacent shards satisfy
  /// hi + 1 == next.lo; the first/last shards pin INT64_MIN / INT64_MAX,
  /// so every possible key is owned by exactly one shard and a range
  /// query can never fall "between" shards.
  int64_t lo = 0;
  int64_t hi = 0;
  /// Lineage (DESIGN.md §10): the digest-schema table name of the split
  /// ancestor whose per-row signatures this shard still carries. Empty
  /// for shards signed under their own distribution name. When set, the
  /// shard's VOs anchor at a root *binding* signature over
  /// (shard name, lo, hi, root digest) instead of a raw root signature —
  /// the binding is what stops a sibling shard (same lineage, same key)
  /// from being substituted. Part of the signed content digest: a
  /// malicious edge cannot strip or alter it without breaking the map
  /// signature.
  std::string lineage;
};

/// The signed, epoch-versioned shard layout of one table (the
/// scatter-gather analogue of §3.3's boundary tuples, lifted to shard
/// granularity): shard id → key range, under one signature that also
/// covers the table identity and the epoch. A client holding the map
/// knows exactly which shards a range query must touch — a malicious
/// edge can neither hide a whole shard (the client expects its VO) nor
/// serve a stale layout (the client's epoch floor rejects it), and shard
/// substitution fails because every shard's tree is signed under its
/// shard-qualified digest schema, which the map's entries determine.
///
/// Epoch rules: the central server bumps `epoch` on every layout change
/// (split/reshard) and on key rotation (the map must be re-signed under
/// the new key); split-off shards get *fresh* ids, so signatures of a
/// pre-split shard can never verify as any current shard.
struct PartitionMap {
  std::string db_name;
  std::string table;
  uint64_t epoch = 0;
  /// Signing-key version `sig` was produced under (§3.4 key expiry
  /// applies to the map exactly as to tree digests).
  uint32_t key_version = 0;
  /// Ascending by `lo`; contiguous; covering the whole int64 domain.
  std::vector<ShardEntry> shards;
  /// s(h(canonical bytes of everything above)).
  Signature sig;

  /// The shard's distribution / replica / digest-schema name. A sole
  /// shard with id 0 keeps the plain table name (a 1-shard table is
  /// wire- and digest-compatible with the pre-sharding layout); every
  /// other shard is qualified as "table#<id>".
  static std::string ShardName(const std::string& table, uint32_t shard_id);
  std::string shard_name(size_t idx) const {
    return ShardName(table, shards[idx].shard_id);
  }

  /// Splits a distribution name back into (base table, shard id).
  /// Returns false for plain (unqualified) names.
  static bool ParseShardName(const std::string& dist_name, std::string* base,
                             uint32_t* shard_id);

  /// Index of the shard owning `key` (always valid for a well-formed map).
  size_t ShardIndexForKey(int64_t key) const;
  const ShardEntry& ShardForKey(int64_t key) const {
    return shards[ShardIndexForKey(key)];
  }
  /// Indices of all shards intersecting [range.lo, range.hi], ascending.
  std::vector<size_t> ShardIndicesForRange(const KeyRange& range) const;
  /// Entry for a shard id, or nullptr when the id is not in this map.
  const ShardEntry* FindShard(uint32_t shard_id) const;

  /// Structural invariants: at least one shard, sorted, contiguous,
  /// covering [INT64_MIN, INT64_MAX], ids unique. kCorruption otherwise.
  Status CheckWellFormed() const;

  /// Digest of the canonical serialization (everything except `sig`) —
  /// the preimage the central server signs.
  Digest ContentDigest(HashAlgorithm algo) const;

  /// Full client-side authentication: well-formedness, then p(sig) must
  /// equal the recomputed content digest. The caller resolves `recoverer`
  /// through the KeyDirectory for `key_version` so expired signing keys
  /// are rejected upstream.
  Status Verify(Recoverer* recoverer, HashAlgorithm algo) const;

  void Serialize(ByteWriter* w) const;
  static Result<PartitionMap> Deserialize(ByteReader* r);
};

/// One clamped sub-query of a scatter plan: `query` is the original
/// query restricted to the shard's key range (and retargeted at the
/// shard's distribution name); `query_index` is its position in the
/// original batch.
struct ShardSlice {
  size_t query_index = 0;
  SelectQuery query;
};

/// All sub-queries a scatter sends to one shard.
struct ShardScatter {
  size_t shard_index = 0;  ///< index into map.shards
  uint32_t shard_id = 0;
  std::vector<ShardSlice> slices;
};

/// Strictly ascending split points dividing keys [0, n) into up to
/// `shards` even ranges — the helper behind every `--shards N` flag.
/// Degenerate inputs collapse instead of producing invalid layouts:
/// more shards than keys yields one split per distinct key, and
/// shards <= 1 (or n == 0) yields no splits (a single-shard table).
std::vector<int64_t> EvenSplitPoints(size_t n, size_t shards);

/// Deterministically partitions `queries` (already projection-normalized)
/// across the map's shards: each query is clamped to every shard range it
/// intersects. Groups are ascending by shard index and only shards with
/// at least one slice appear. Both the edge (fan-out execution) and the
/// client (completeness expectations) compute this plan from the same
/// signed map, so the client knows exactly which per-shard VOs must come
/// back — omitting any of them is detectable.
std::vector<ShardScatter> BuildScatterPlan(const PartitionMap& map,
                                           std::span<const SelectQuery> queries);

}  // namespace vbtree

#endif  // VBTREE_EDGE_PARTITION_MAP_H_
