#ifndef VBTREE_EDGE_NETWORK_H_
#define VBTREE_EDGE_NETWORK_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace vbtree {

/// In-process stand-in for the network between central server, edge
/// servers and clients. Every message's exact serialized size is recorded
/// per channel; the communication-cost experiments (Fig. 10/11) read these
/// counters instead of timing a real NIC, which is what the paper's
/// formulas model (bytes on the wire).
class SimulatedNetwork {
 public:
  struct ChannelStats {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };

  void Record(const std::string& channel, size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    ChannelStats& s = channels_[channel];
    s.messages++;
    s.bytes += bytes;
  }

  ChannelStats stats(const std::string& channel) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(channel);
    return it == channels_.end() ? ChannelStats{} : it->second;
  }

  uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t n = 0;
    for (const auto& [name, s] : channels_) n += s.bytes;
    return n;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    channels_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, ChannelStats> channels_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_NETWORK_H_
