#ifndef VBTREE_EDGE_NETWORK_H_
#define VBTREE_EDGE_NETWORK_H_

#include "edge/propagation/transport.h"

namespace vbtree {

/// Historical name of the in-process byte-accounting transport. The
/// implementation lives in edge/propagation/transport.h; this alias keeps
/// the Fig. 10/11 benches, examples and tests reading the same counters
/// they always did.
using SimulatedNetwork = InProcessTransport;

}  // namespace vbtree

#endif  // VBTREE_EDGE_NETWORK_H_
