#ifndef VBTREE_EDGE_PROPAGATION_FAULT_TRANSPORT_H_
#define VBTREE_EDGE_PROPAGATION_FAULT_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "edge/propagation/transport.h"

namespace vbtree {

/// What a FaultInjectingTransport may do to one message on a channel.
/// Probabilities are drawn per message from the channel's own seeded
/// RNG, so a fixed (seed, send sequence) reproduces the exact same
/// fault pattern on any host — chaos tests assert on counters, not
/// luck. Multiple faults can combine on one message (a duplicated copy
/// can also be truncated); `drop` is evaluated first and wins.
struct FaultPolicy {
  /// Probability a message (and all its would-be copies) vanishes.
  double drop = 0.0;
  /// Probability one extra copy of the message is delivered.
  double duplicate = 0.0;
  /// Probability the message is held and delivered *after* the
  /// channel's next message (pairwise reorder; a held message with no
  /// successor is flushed by Heal()/FlushPending or dropped at
  /// destruction).
  double reorder = 0.0;
  /// Probability the payload is cut to a random proper prefix —
  /// receivers must fail the parse as a Status, never crash.
  double truncate = 0.0;
  /// Fixed delivery delay applied to every message (the injector
  /// really sleeps, so per-attempt budgets on the caller side observe
  /// it). Keep small in tests.
  uint64_t delay_us = 0;
  /// After this many sends the channel black-holes: every later
  /// message is dropped until Heal(). 0 = never.
  uint64_t black_hole_after = 0;

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || truncate > 0 ||
           delay_us > 0 || black_hole_after > 0;
  }
};

/// Seeded, deterministic fault-injecting decorator over any Transport.
///
/// Byte accounting (Channel/Record/stats) forwards to the inner
/// transport untouched: a send is recorded whether or not it is later
/// delivered, preserving the exact channel-sum == bytes_shipped
/// invariant the propagation tests assert. The fault surface is the
/// Deliver() gate: callers that route delivery through it get the
/// channel's policy applied — drop, duplicate, reorder, truncate,
/// delay, one-shot partitions, and black-hole-after-N — with every
/// injection counted so tests can assert the faults actually fired.
///
/// Policies are keyed by channel-name substring (first match in
/// registration order wins), resolved once per channel at first
/// Deliver. Thread-safe: hub ship workers and client threads may
/// Deliver concurrently; each channel draws from its own RNG under its
/// own lock, seeded from (transport seed, channel name), so fault
/// sequences are per-channel deterministic regardless of cross-channel
/// interleaving.
class FaultInjectingTransport : public Transport {
 public:
  struct InjectionCounters {
    uint64_t delivered = 0;   ///< copies actually handed to the receiver
    uint64_t dropped = 0;     ///< messages lost to the drop probability
    uint64_t duplicated = 0;  ///< extra copies delivered
    uint64_t reordered = 0;   ///< messages delivered out of send order
    uint64_t truncated = 0;   ///< copies delivered with a cut payload
    uint64_t black_holed = 0; ///< messages swallowed past black_hole_after
    uint64_t partitioned = 0; ///< messages lost to a one-shot partition
    uint64_t delayed_us = 0;  ///< total injected delay actually slept
  };

  explicit FaultInjectingTransport(Transport* inner,
                                   uint64_t seed = 0xFA017'5EEDULL);
  ~FaultInjectingTransport() override;

  // --- Transport: pure pass-through accounting ---
  channel_id_t Channel(const std::string& name) override;
  using Transport::Record;
  void Record(channel_id_t channel, size_t bytes) override;
  ChannelStats stats(channel_id_t channel) const override;
  ChannelStats stats(const std::string& channel) const override;
  uint64_t total_bytes() const override;
  void Reset() override;

  // --- fault configuration ---
  /// Applies `policy` to every channel whose name contains `substr`
  /// (first registered match wins; "" matches everything) — including
  /// channels that already carried traffic, so faults can be armed
  /// mid-test after the stack exists.
  void SetPolicy(const std::string& substr, FaultPolicy policy);

  /// One-shot partition: the next `messages` sends on channels whose
  /// name contains `substr` are dropped, then the partition clears
  /// itself. Counted separately from probabilistic drops.
  void PartitionOnce(const std::string& substr, uint64_t messages);

  /// Clears black-holed channels, active partitions and flushes any
  /// held (reorder) messages — "the network came back".
  void Heal();

  /// Delivers any messages still held for reordering (without clearing
  /// black-holes or partitions).
  void FlushPending();

  // --- the delivery gate ---
  Status Deliver(channel_id_t channel, Slice payload,
                 const DeliverFn& deliver) override;

  InjectionCounters injection_counters() const;

 private:
  struct PendingMessage {
    std::vector<uint8_t> payload;
    DeliverFn deliver;
  };

  /// Per-channel fault state, created lazily at first Deliver.
  struct ChannelState {
    std::mutex mu;
    Rng rng{1};
    FaultPolicy policy;
    uint64_t sends = 0;        ///< messages offered to this channel
    bool black_holed = false;  ///< latched once sends > black_hole_after
    std::unique_ptr<PendingMessage> held;  ///< reorder slot
  };

  ChannelState* StateFor(channel_id_t channel);

  Transport* const inner_;
  const uint64_t seed_;

  mutable std::mutex mu_;  ///< guards maps + partitions (not per-channel state)
  std::map<std::string, channel_id_t> ids_;
  std::map<channel_id_t, std::string> names_;
  std::vector<std::pair<std::string, FaultPolicy>> policies_;
  std::map<channel_id_t, std::unique_ptr<ChannelState>> channels_;
  struct Partition {
    std::string substr;
    uint64_t remaining = 0;
  };
  std::vector<Partition> partitions_;

  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> duplicated_{0};
  std::atomic<uint64_t> reordered_{0};
  std::atomic<uint64_t> truncated_{0};
  std::atomic<uint64_t> black_holed_{0};
  std::atomic<uint64_t> partitioned_{0};
  std::atomic<uint64_t> delayed_us_{0};
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_PROPAGATION_FAULT_TRANSPORT_H_
