#include "edge/propagation/distribution_hub.h"

#include <algorithm>

#include "costmodel/cost_model.h"
#include "edge/central_server.h"
#include "edge/edge_server.h"

namespace vbtree {

DistributionHub::DistributionHub(CentralServer* central, Transport* transport,
                                 PropagationOptions options)
    : central_(central), transport_(transport), options_(options) {
  if (options_.auto_start) Start();
}

DistributionHub::~DistributionHub() { Stop(); }

Status DistributionHub::Subscribe(EdgeServer* edge) {
  if (edge == nullptr) return Status::InvalidArgument("null edge server");
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const auto& sub : subscribers_) {
    if (sub->edge->name() == edge->name()) {
      return Status::AlreadyExists("already subscribed: " + edge->name());
    }
  }
  auto sub = std::make_unique<Subscriber>();
  sub->edge = edge;
  if (transport_ != nullptr) {
    sub->snapshot_channel =
        transport_->Channel("central->edge:" + edge->name());
    sub->delta_channel =
        transport_->Channel("central->edge:" + edge->name() + ":delta");
    sub->map_channel =
        transport_->Channel("central->edge:" + edge->name() + ":map");
  }
  subscribers_.push_back(std::move(sub));
  return Status::OK();
}

Status DistributionHub::Unsubscribe(const std::string& edge_name) {
  // Hold the flush latch so no in-flight round still references the
  // subscriber being destroyed.
  std::lock_guard<std::mutex> flush(flush_mu_);
  std::lock_guard<std::mutex> lock(state_mu_);
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if ((*it)->edge->name() == edge_name) {
      subscribers_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no subscriber named " + edge_name);
}

void DistributionHub::Start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = false;
  }
  propagator_ = std::thread([this] { PropagatorLoop(); });
}

void DistributionHub::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (propagator_.joinable()) propagator_.join();
}

void DistributionHub::PropagatorLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      stop_cv_.wait_for(lock, options_.flush_interval,
                        [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    // Errors are counted in stats; the propagator keeps going (a failed
    // subscriber is retried — typically via snapshot catch-up — on the
    // next round).
    (void)FlushOnce();
  }
}

Status DistributionHub::FlushOnce() {
  std::lock_guard<std::mutex> flush(flush_mu_);
  snapshot_cache_.clear();
  Status s = BuildAndRunPlan();
  snapshot_cache_.clear();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.flushes++;
  }
  return s;
}

std::vector<std::string> DistributionHub::DistributedNames() const {
  // Per-shard version streams: every shard of every table is its own
  // snapshot/delta lineage (views remain whole-object snapshots).
  std::vector<std::string> names = central_->ShardNames();
  if (options_.distribute_views) {
    std::vector<std::string> views = central_->ViewNames();
    names.insert(names.end(), views.begin(), views.end());
  }
  return names;
}

Status DistributionHub::ShipMaps() {
  std::vector<CentralServer::MapInfo> maps = central_->PartitionMaps();
  if (maps.empty()) return Status::OK();

  struct MapShip {
    Subscriber* sub;
    const CentralServer::MapInfo* info;
  };
  std::vector<MapShip> ships;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const auto& sub : subscribers_) {
      if (sub->lagging) continue;
      for (const CentralServer::MapInfo& info : maps) {
        auto it = sub->applied_maps.find(info.table);
        if (it != sub->applied_maps.end() && it->second >= info.epoch) {
          continue;
        }
        ships.push_back(MapShip{sub.get(), &info});
      }
    }
  }
  Status first_error = Status::OK();
  for (const MapShip& ship : ships) {
    // Byte accounting mirrors RunJob: everything Recorded on a channel
    // is counted in bytes_shipped, delivered or not — the exact
    // channel-sum == bytes_shipped invariant the tests assert.
    if (transport_ != nullptr && ship.sub->map_channel != kInvalidChannel) {
      transport_->Record(ship.sub->map_channel, ship.info->bytes->size());
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_.maps_shipped++;
      stats_.bytes_shipped += ship.info->bytes->size();
    }
    EdgeServer* edge = ship.sub->edge;
    Status s = DeliverVia(
        ship.sub->map_channel, Slice(*ship.info->bytes),
        [edge](Slice payload) { return edge->InstallPartitionMap(payload); });
    std::lock_guard<std::mutex> lock(state_mu_);
    if (s.ok()) {
      ship.sub->applied_maps[ship.info->table] = ship.info->epoch;
    } else {
      if (first_error.ok()) first_error = s;
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_.ship_errors++;
    }
  }
  return first_error;
}

Result<std::shared_ptr<const std::vector<uint8_t>>>
DistributionHub::SnapshotBytes(const std::string& name) {
  auto it = snapshot_cache_.find(name);
  if (it != snapshot_cache_.end()) return it->second;
  VBT_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       central_->ExportTableSnapshot(name));
  auto shared = std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
  snapshot_cache_[name] = shared;
  return shared;
}

Status DistributionHub::BuildAndRunPlan() {
  // Maps first: shard installs are gated on a consistent layout, so a
  // subscriber must hold the current epoch before any shard payload of
  // that epoch arrives.
  Status map_status = ShipMaps();

  std::vector<std::string> names = DistributedNames();
  std::vector<std::string> view_list = central_->ViewNames();
  std::set<std::string> views(view_list.begin(), view_list.end());

  std::map<std::string, uint64_t> heads;
  for (const std::string& name : names) {
    auto head = central_->VersionOf(name);
    if (head.ok()) heads[name] = *head;
  }

  // Plan under the registry lock: who needs what, and from which version.
  struct Want {
    Subscriber* sub;
    std::string name;
    uint64_t from_version;
    bool snapshot;
    bool catch_up;
  };
  std::vector<Want> wants;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const auto& sub : subscribers_) {
      // Lagging subscribers are out of the plan until Reconnect(): a
      // black-holed channel must not eat a slice of every round's
      // bounded fan-out.
      if (sub->lagging) continue;
      for (const auto& [name, head] : heads) {
        auto applied_it = sub->applied.find(name);
        bool have = applied_it != sub->applied.end();
        uint64_t v = have ? applied_it->second : 0;
        bool force = sub->force_snapshot.count(name) != 0;
        if (have && v == head && !force) continue;
        Want w{sub.get(), name, v, /*snapshot=*/true, /*catch_up=*/false};
        if (have && !force && views.count(name) == 0 &&
            options_.policy != ShipPolicy::kSnapshotOnly) {
          auto covers = central_->DeltaCovers(name, v);
          if (covers.ok() && *covers) {
            w.snapshot = false;
          } else {
            w.catch_up = true;  // fell behind the retained window
          }
        }
        wants.push_back(std::move(w));
      }
    }
  }
  if (wants.empty()) return map_status;

  // Serialize payloads outside the registry lock, once per distinct
  // (table, from_version): a delta batch is shared by every subscriber at
  // the same version, a snapshot by all of them.
  std::map<std::pair<std::string, uint64_t>,
           std::shared_ptr<const std::vector<uint8_t>>>
      delta_cache;
  // (table, from_version) pairs already judged snapshot-cheaper, so the
  // remaining subscribers at the same version skip the discarded
  // serialization.
  std::set<std::pair<std::string, uint64_t>> snapshot_decisions;
  std::vector<ShipJob> jobs;
  jobs.reserve(wants.size());
  Status first_error = map_status;
  for (Want& w : wants) {
    ShipJob job;
    job.sub = w.sub;
    job.name = w.name;
    job.is_catch_up = w.catch_up;
    if (!w.snapshot) {
      auto key = std::make_pair(w.name, w.from_version);
      if (snapshot_decisions.count(key) != 0) w.snapshot = true;
      auto cached = delta_cache.find(key);
      if (!w.snapshot && cached == delta_cache.end()) {
        auto batch =
            central_->DeltaSince(w.name, w.from_version, options_.max_batch_ops);
        if (!batch.ok()) {
          // Raced with a log reset (e.g. key rotation): snapshot instead.
          w.snapshot = true;
          w.catch_up = true;
        } else {
          ByteWriter writer(1 << 12);
          batch->Serialize(&writer);
          auto bytes = std::make_shared<const std::vector<uint8_t>>(
              writer.TakeBuffer());
          if (options_.policy == ShipPolicy::kCostBased) {
            // A delta bigger than the modeled snapshot is a loss: the
            // replica can be rebuilt for less than replaying the churn.
            // SnapshotShapeOf reads under the shard's shared_ptr, so a
            // concurrent SplitShard cannot free the tree mid-read.
            auto shape = central_->SnapshotShapeOf(w.name);
            if (shape.ok()) {
              costmodel::CostParams p;
              p.num_tuples = static_cast<double>(shape->num_tuples);
              p.num_cols = static_cast<double>(shape->num_cols);
              if (static_cast<double>(bytes->size()) >
                  costmodel::SnapshotBytesEstimate(p)) {
                w.snapshot = true;
              }
            }
          }
          if (!w.snapshot) {
            cached = delta_cache.emplace(key, std::move(bytes)).first;
          } else {
            snapshot_decisions.insert(key);
          }
        }
      }
      if (!w.snapshot) {
        job.is_snapshot = false;
        job.bytes = cached->second;
      }
    }
    if (w.snapshot) {
      job.is_snapshot = true;
      job.is_catch_up = w.catch_up;
      auto snap = SnapshotBytes(w.name);
      if (!snap.ok()) {
        if (first_error.ok()) first_error = snap.status();
        continue;
      }
      job.bytes = *snap;
    }
    jobs.push_back(std::move(job));
  }

  // Ship to all stale subscribers concurrently (bounded fan-out).
  std::vector<char> job_ok(jobs.size(), 0);
  size_t workers = std::min(options_.ship_concurrency, jobs.size());
  if (workers <= 1) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      Status s = RunJob(jobs[i]);
      job_ok[i] = s.ok() ? 1 : 0;
      if (!s.ok() && first_error.ok()) first_error = s;
    }
  } else {
    std::atomic<size_t> next{0};
    std::mutex err_mu;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t t = 0; t < workers; ++t) {
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < jobs.size();
             i = next.fetch_add(1)) {
          Status s = RunJob(jobs[i]);
          job_ok[i] = s.ok() ? 1 : 0;
          if (!s.ok()) {
            std::lock_guard<std::mutex> lock(err_mu);
            if (first_error.ok()) first_error = s;
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Stall detection: a subscriber whose every ship failed this round is
  // one round closer to lagging; any success resets the count.
  if (options_.lagging_after_rounds > 0) {
    std::map<Subscriber*, bool> progressed;
    for (size_t i = 0; i < jobs.size(); ++i) {
      auto [it, inserted] = progressed.emplace(jobs[i].sub, job_ok[i] != 0);
      if (!inserted && job_ok[i] != 0) it->second = true;
    }
    size_t newly_lagging = 0;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      for (auto& [sub, ok] : progressed) {
        if (ok) {
          sub->stall_rounds = 0;
          continue;
        }
        sub->stall_rounds++;
        if (!sub->lagging &&
            sub->stall_rounds >= options_.lagging_after_rounds) {
          sub->lagging = true;
          newly_lagging++;
        }
      }
    }
    if (newly_lagging > 0) {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_.lagging_marked += newly_lagging;
    }
  }

  // GC: drop log entries every subscriber has applied. Lagging
  // subscribers don't pin the log — they recover via snapshot on
  // Reconnect() anyway.
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    bool any_active = false;
    for (const auto& sub : subscribers_) {
      if (!sub->lagging) any_active = true;
    }
    if (any_active) {
      for (const auto& [name, head] : heads) {
        if (views.count(name) != 0) continue;
        uint64_t min_applied = ~uint64_t{0};
        for (const auto& sub : subscribers_) {
          if (sub->lagging) continue;
          auto it = sub->applied.find(name);
          min_applied = std::min(min_applied,
                                 it == sub->applied.end() ? 0 : it->second);
        }
        if (min_applied > 0) (void)central_->TruncateLog(name, min_applied);
      }
    }
  }
  return first_error;
}

Status DistributionHub::DeliverVia(channel_id_t channel, Slice payload,
                                   const Transport::DeliverFn& fn) {
  if (transport_ == nullptr) return fn(payload);
  return transport_->Deliver(channel, payload, fn);
}

Status DistributionHub::RunJob(const ShipJob& job) {
  auto account = [&](channel_id_t channel, size_t bytes, bool snapshot,
                     bool catch_up) {
    if (transport_ != nullptr && channel != kInvalidChannel) {
      transport_->Record(channel, bytes);
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes_shipped += bytes;
    if (snapshot) {
      stats_.snapshots_shipped++;
      if (catch_up) stats_.catch_up_snapshots++;
    } else {
      stats_.deltas_shipped++;
    }
  };

  // Deliveries route through the transport's Deliver gate so a fault
  // injector can drop/duplicate/reorder/truncate them; byte accounting
  // above is unconditional either way.
  EdgeServer* edge = job.sub->edge;
  Status applied;
  if (job.is_snapshot) {
    account(job.sub->snapshot_channel, job.bytes->size(), true,
            job.is_catch_up);
    applied = DeliverVia(
        job.sub->snapshot_channel, Slice(*job.bytes),
        [edge](Slice payload) { return edge->InstallSnapshot(payload); });
  } else {
    account(job.sub->delta_channel, job.bytes->size(), false, false);
    applied = DeliverVia(
        job.sub->delta_channel, Slice(*job.bytes),
        [edge](Slice payload) { return edge->ApplyUpdateBatch(payload); });
    if (!applied.ok()) {
      // Version gap or corrupted replica state: self-heal with a full
      // snapshot (serialized fresh — this path is rare).
      auto snap = central_->ExportTableSnapshot(job.name);
      if (snap.ok()) {
        account(job.sub->snapshot_channel, snap->size(), true, true);
        auto shared =
            std::make_shared<const std::vector<uint8_t>>(std::move(*snap));
        applied = DeliverVia(
            job.sub->snapshot_channel, Slice(*shared),
            [edge, shared](Slice payload) {
              return edge->InstallSnapshot(payload);
            });
      } else {
        applied = snap.status();
      }
    }
  }

  std::lock_guard<std::mutex> lock(state_mu_);
  if (applied.ok()) {
    job.sub->applied[job.name] = job.sub->edge->TableVersion(job.name);
    job.sub->force_snapshot.erase(job.name);
  } else {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.ship_errors++;
  }
  return applied;
}

bool DistributionHub::Converged() {
  std::vector<std::string> names = DistributedNames();
  std::vector<CentralServer::MapInfo> maps = central_->PartitionMaps();
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const std::string& name : names) {
    auto head = central_->VersionOf(name);
    if (!head.ok()) continue;
    for (const auto& sub : subscribers_) {
      if (sub->lagging) continue;  // can't converge; mustn't wedge SyncAll
      auto it = sub->applied.find(name);
      if (it == sub->applied.end() || it->second != *head) return false;
      if (sub->force_snapshot.count(name) != 0) return false;
    }
  }
  for (const CentralServer::MapInfo& info : maps) {
    for (const auto& sub : subscribers_) {
      if (sub->lagging) continue;
      auto it = sub->applied_maps.find(info.table);
      if (it == sub->applied_maps.end() || it->second < info.epoch) {
        return false;
      }
    }
  }
  return true;
}

Status DistributionHub::SyncAll(size_t max_rounds) {
  for (size_t round = 0; round < max_rounds; ++round) {
    VBT_RETURN_NOT_OK(FlushOnce());
    if (Converged()) return Status::OK();
  }
  return Status::Internal(
      "propagation did not converge (central server still being updated?)");
}

Status DistributionHub::ForceSnapshot(const std::string& edge_name) {
  std::vector<std::string> names = DistributedNames();
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const auto& sub : subscribers_) {
    if (sub->edge->name() != edge_name) continue;
    sub->force_snapshot.insert(names.begin(), names.end());
    return Status::OK();
  }
  return Status::NotFound("no subscriber named " + edge_name);
}

Status DistributionHub::Reconnect(const std::string& edge_name) {
  std::vector<std::string> names = DistributedNames();
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    for (const auto& sub : subscribers_) {
      if (sub->edge->name() != edge_name) continue;
      sub->lagging = false;
      sub->stall_rounds = 0;
      // The log window it missed may be truncated (lagging subscribers
      // don't pin GC) and its replica state is suspect — replay from
      // snapshot, never from deltas.
      sub->force_snapshot.insert(names.begin(), names.end());
      found = true;
      break;
    }
  }
  if (!found) return Status::NotFound("no subscriber named " + edge_name);
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.reconnects++;
  return Status::OK();
}

std::vector<std::string> DistributionHub::LaggingSubscribers() {
  std::lock_guard<std::mutex> lock(state_mu_);
  std::vector<std::string> names;
  for (const auto& sub : subscribers_) {
    if (sub->lagging) names.push_back(sub->edge->name());
  }
  return names;
}

std::map<std::string, uint64_t> DistributionHub::SubscriberVersions(
    const std::string& edge_name) {
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const auto& sub : subscribers_) {
    if (sub->edge->name() == edge_name) return sub->applied;
  }
  return {};
}

DistributionHub::HubStats DistributionHub::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace vbtree
