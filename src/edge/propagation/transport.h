#ifndef VBTREE_EDGE_PROPAGATION_TRANSPORT_H_
#define VBTREE_EDGE_PROPAGATION_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace vbtree {

/// Stable handle for one directed message channel (e.g.
/// "central->edge:edge-us:delta"). Interned once; recording against the
/// id afterwards is lock-free.
using channel_id_t = uint32_t;

inline constexpr channel_id_t kInvalidChannel = ~0u;

/// Abstraction of the network between central server, edge servers and
/// clients. Implementations account every message's exact serialized
/// size per channel; the communication-cost experiments (Fig. 10/11) and
/// the propagation benches read these counters instead of timing a real
/// NIC, which is what the paper's formulas model (bytes on the wire).
class Transport {
 public:
  struct ChannelStats {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };

  virtual ~Transport() = default;

  /// Interns `name`, returning its stable channel id. Safe to call
  /// concurrently; the same name always yields the same id.
  virtual channel_id_t Channel(const std::string& name) = 0;

  /// Accounts one message of `bytes` on an interned channel. Hot path:
  /// implementations must not take a global lock here.
  virtual void Record(channel_id_t channel, size_t bytes) = 0;

  /// Convenience for cold paths and tests: intern + record.
  void Record(const std::string& channel, size_t bytes) {
    Record(Channel(channel), bytes);
  }

  virtual ChannelStats stats(channel_id_t channel) const = 0;
  virtual ChannelStats stats(const std::string& channel) const = 0;
  virtual uint64_t total_bytes() const = 0;

  /// Zeroes all counters (channel ids remain valid).
  virtual void Reset() = 0;

  /// Invoked once per surviving copy of a message routed through
  /// Deliver(); receives the (possibly truncated) payload.
  using DeliverFn = std::function<Status(Slice)>;

  /// Delivery gate. In-process delivery is a function call, so callers
  /// that want the transport to decide a message's fate (the fault
  /// injector) route it through here: the transport may drop the
  /// message, deliver it more than once, truncate it, delay it, or hold
  /// it to reorder against the channel's next message. Byte accounting
  /// is NOT performed here — callers Record() the send separately, so
  /// "everything recorded is counted, delivered or not" stays true.
  /// The base transport delivers exactly once, untouched.
  virtual Status Deliver(channel_id_t channel, Slice payload,
                         const DeliverFn& deliver) {
    (void)channel;
    return deliver(payload);
  }
};

/// In-process transport: delivery is a function call (the caller invokes
/// the receiver directly); this class only does the exact byte
/// accounting. Channel names are interned to dense ids under a mutex
/// once; every Record(id, n) afterwards is two relaxed atomic adds on
/// that channel's own counters — no map lookup, no global lock — so a
/// fleet of edge servers and clients can account traffic concurrently
/// without serializing on the bookkeeping.
class InProcessTransport : public Transport {
 public:
  InProcessTransport() : counters_(new Counters[kMaxChannels]) {}

  channel_id_t Channel(const std::string& name) override {
    std::lock_guard<std::mutex> lock(intern_mu_);
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    if (num_channels_.load(std::memory_order_relaxed) >= kOverflowChannel) {
      // The reserved overflow bucket: never handed out as a real id, so
      // totals stay exact even though per-channel attribution is lost
      // for names interned past the cap.
      return kOverflowChannel;
    }
    channel_id_t id = num_channels_.load(std::memory_order_relaxed);
    ids_.emplace(name, id);
    names_.push_back(name);
    num_channels_.store(id + 1, std::memory_order_release);
    return id;
  }

  using Transport::Record;
  void Record(channel_id_t channel, size_t bytes) override {
    if (channel >= kMaxChannels) return;
    Counters& c = counters_[channel];
    c.messages.fetch_add(1, std::memory_order_relaxed);
    c.bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  ChannelStats stats(channel_id_t channel) const override {
    if (channel >= num_channels_.load(std::memory_order_acquire) &&
        channel != kOverflowChannel) {
      return {};
    }
    const Counters& c = counters_[channel];
    return ChannelStats{c.messages.load(std::memory_order_relaxed),
                        c.bytes.load(std::memory_order_relaxed)};
  }

  ChannelStats stats(const std::string& channel) const override {
    channel_id_t id;
    {
      std::lock_guard<std::mutex> lock(intern_mu_);
      auto it = ids_.find(channel);
      if (it == ids_.end()) return {};
      id = it->second;
    }
    return stats(id);
  }

  uint64_t total_bytes() const override {
    uint64_t n = 0;
    uint32_t count = num_channels_.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < count; ++i) {
      n += counters_[i].bytes.load(std::memory_order_relaxed);
    }
    n += counters_[kOverflowChannel].bytes.load(std::memory_order_relaxed);
    return n;
  }

  void Reset() override {
    uint32_t count = num_channels_.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < count; ++i) {
      counters_[i].messages.store(0, std::memory_order_relaxed);
      counters_[i].bytes.store(0, std::memory_order_relaxed);
    }
    counters_[kOverflowChannel].messages.store(0, std::memory_order_relaxed);
    counters_[kOverflowChannel].bytes.store(0, std::memory_order_relaxed);
  }

  /// All channel names interned so far (diagnostics).
  std::vector<std::string> ChannelNames() const {
    std::lock_guard<std::mutex> lock(intern_mu_);
    return names_;
  }

 protected:
  static constexpr size_t kMaxChannels = 4096;
  /// Reserved: shared bucket for channels interned past the cap.
  static constexpr channel_id_t kOverflowChannel = kMaxChannels - 1;

  struct Counters {
    std::atomic<uint64_t> messages{0};
    std::atomic<uint64_t> bytes{0};
  };

  std::unique_ptr<Counters[]> counters_;
  mutable std::mutex intern_mu_;
  std::unordered_map<std::string, channel_id_t> ids_;
  std::vector<std::string> names_;
  std::atomic<uint32_t> num_channels_{0};
};

/// Latency/bandwidth-modeled transport: same exact byte accounting as
/// InProcessTransport, plus a virtual clock per channel — each message
/// costs `latency_us` plus its serialized size over `bandwidth_bps`.
/// The accumulated per-channel transfer time lets experiments report
/// modeled wall-clock (e.g. WAN distribution lag across a fleet of edge
/// servers) without sleeping the simulation.
class ModeledTransport : public InProcessTransport {
 public:
  struct Options {
    /// One-way propagation delay per message, microseconds.
    uint64_t latency_us = 20'000;  // 20 ms: a WAN hop
    /// Channel bandwidth, bytes per second.
    uint64_t bandwidth_bps = 12'500'000;  // 100 Mbit/s
  };

  ModeledTransport() : ModeledTransport(Options{}) {}
  explicit ModeledTransport(Options options)
      : options_(options), micros_(new std::atomic<uint64_t>[kMaxChannels]) {
    for (size_t i = 0; i < kMaxChannels; ++i) micros_[i] = 0;
  }

  using Transport::Record;
  void Record(channel_id_t channel, size_t bytes) override {
    InProcessTransport::Record(channel, bytes);
    if (channel >= kMaxChannels) return;
    uint64_t us = options_.latency_us;
    if (options_.bandwidth_bps > 0) {
      us += (static_cast<uint64_t>(bytes) * 1'000'000) / options_.bandwidth_bps;
    }
    micros_[channel].fetch_add(us, std::memory_order_relaxed);
  }

  /// Modeled cumulative transfer time on `channel`, microseconds.
  uint64_t SimulatedMicros(const std::string& channel) const {
    std::lock_guard<std::mutex> lock(intern_mu_);
    auto it = ids_.find(channel);
    if (it == ids_.end()) return 0;
    return micros_[it->second].load(std::memory_order_relaxed);
  }

  void Reset() override {
    InProcessTransport::Reset();
    uint32_t count = num_channels_.load(std::memory_order_acquire);
    for (uint32_t i = 0; i < count; ++i) {
      micros_[i].store(0, std::memory_order_relaxed);
    }
    micros_[kOverflowChannel].store(0, std::memory_order_relaxed);
  }

 private:
  Options options_;
  std::unique_ptr<std::atomic<uint64_t>[]> micros_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_PROPAGATION_TRANSPORT_H_
