#ifndef VBTREE_EDGE_PROPAGATION_UPDATE_LOG_H_
#define VBTREE_EDGE_PROPAGATION_UPDATE_LOG_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "common/result.h"
#include "common/serde.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

/// One logged update applied at the central server (§3.4), with all the
/// signature material an edge replica needs to replay it:
///  * inserts carry the tuple, its Rid, and the signed attribute/tuple
///    digests (formula (1)/(2));
///  * both kinds carry the node signatures produced while re-signing the
///    affected path, in deterministic order.
///
/// The replica recomputes all *unsigned* digests itself (they are public
/// functions of the data), so a delta is tiny compared to a snapshot: the
/// values of one tuple plus O(height) signatures.
struct UpdateOp {
  enum class Kind : uint8_t { kInsert = 0, kDeleteRange = 1 };

  Kind kind = Kind::kInsert;
  // kInsert payload:
  Tuple tuple;
  Rid rid;
  VBTree::SignedEntryMaterial material;
  // kDeleteRange payload:
  int64_t lo = 0;
  int64_t hi = 0;
  // Signatures from node re-signing, in ResignNode order.
  std::vector<Signature> resigned;

  void Serialize(ByteWriter* w) const;
  static Result<UpdateOp> Deserialize(ByteReader* r, const Schema& schema);
};

/// A consecutive run of updates for one table, shipped from the central
/// server to edge servers instead of a full snapshot.
struct UpdateBatch {
  std::string table;
  /// The table version the batch applies on top of (must equal the
  /// replica's current version) and the version it produces.
  uint64_t from_version = 0;
  uint64_t to_version = 0;
  std::vector<UpdateOp> ops;

  void Serialize(ByteWriter* w) const;

  /// `schema_for` resolves the table name to its schema (needed to decode
  /// tuple values).
  static Result<UpdateBatch> Deserialize(
      ByteReader* r,
      const std::function<Result<Schema>(const std::string&)>& schema_for);

  size_t SerializedSize() const;
};

/// The central server's retained, versioned op log for one table — the
/// propagation subsystem's source of truth. Op i (0-based from the log
/// base) produces table version `base_version + i + 1`; the log retains a
/// bounded window so that several edge subscribers at different versions
/// can each be served a delta, and only falls back to a full snapshot
/// when a subscriber's version predates the window (catch-up).
///
/// Not internally synchronized: the owner (CentralServer) guards it with
/// its per-table latch.
class UpdateLog {
 public:
  explicit UpdateLog(size_t max_retained = 1 << 16)
      : max_retained_(max_retained) {}

  /// Appends the op that produced version `head_version() + 1`. Evicts
  /// the oldest op (advancing the base) when the window is full.
  void Append(UpdateOp op);

  /// Version after the newest logged op.
  uint64_t head_version() const { return base_ + ops_.size(); }
  /// Version before the oldest retained op: deltas can start at any
  /// version in [base_version(), head_version()].
  uint64_t base_version() const { return base_; }
  bool Covers(uint64_t from_version) const {
    return from_version >= base_ && from_version <= head_version();
  }
  size_t retained() const { return ops_.size(); }

  /// Batch of up to `max_ops` ops replaying versions
  /// (from_version, to_version]. kInvalidArgument when `from_version` is
  /// outside the retained window (caller must snapshot instead).
  Result<UpdateBatch> BatchSince(const std::string& table,
                                 uint64_t from_version,
                                 size_t max_ops) const;

  /// Drops ops at or below `version` (all subscribers have applied them).
  void TruncateThrough(uint64_t version);

  /// Empties the log and restarts the lineage at `new_base` — used after
  /// key rotation, which re-signs every node and therefore cannot be
  /// expressed as a delta.
  void Reset(uint64_t new_base);

 private:
  std::deque<UpdateOp> ops_;
  uint64_t base_ = 0;
  size_t max_retained_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_PROPAGATION_UPDATE_LOG_H_
