#ifndef VBTREE_EDGE_PROPAGATION_DISTRIBUTION_HUB_H_
#define VBTREE_EDGE_PROPAGATION_DISTRIBUTION_HUB_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "edge/propagation/transport.h"
#include "edge/propagation/update_log.h"

namespace vbtree {

class CentralServer;
class EdgeServer;

/// How the hub ships pending state to a subscriber that is behind.
enum class ShipPolicy {
  /// Delta whenever the retained log covers the subscriber's version.
  kDeltaPreferred,
  /// Always re-ship the full snapshot (the naive §3.4 broadcast).
  kSnapshotOnly,
  /// Delta, unless its serialized size exceeds the cost-model estimate
  /// of the snapshot (e.g. a delta replaying more churn than the table
  /// holds) — then a snapshot is cheaper.
  kCostBased,
};

struct PropagationOptions {
  /// Maximum ops shipped per delta batch; a subscriber further behind
  /// converges over several batches (or a snapshot, by policy).
  size_t max_batch_ops = 512;
  /// Background propagator wakeup period.
  std::chrono::milliseconds flush_interval{5};
  ShipPolicy policy = ShipPolicy::kCostBased;
  /// Also distribute materialized join views (always by snapshot).
  bool distribute_views = true;
  /// Start the background propagator thread from the constructor.
  bool auto_start = true;
  /// Max concurrent ship operations per flush round.
  size_t ship_concurrency = 8;
  /// A subscriber that makes no apply progress across this many
  /// consecutive flush rounds (every ship to it failed — e.g. its
  /// channel black-holed) is marked lagging: it is dropped from ship
  /// plans, excluded from Converged(), and stops pinning log GC, so one
  /// dead edge cannot wedge the propagator. Reconnect() re-admits it
  /// with full snapshots. 0 disables the detector.
  size_t lagging_after_rounds = 10;
};

/// The asynchronous update-propagation subsystem (§3.4 "propagate the
/// changes periodically", scaled to a fleet): owns a subscriber registry
/// of edge servers and a background propagator thread that, every
/// `flush_interval`, batches the pending ops of every table *shard* from
/// the central server's versioned UpdateLogs and ships them to all
/// stale subscribers concurrently over the Transport. Shards are
/// independent version streams: each has its own snapshot/delta lineage,
/// so an update to one shard never re-ships its table's siblings.
///
/// Partition maps ship first: at the start of every round, any
/// subscriber whose installed map epoch trails the central's receives
/// the table's signed PartitionMap before any shard payload — edges
/// apply shard updates only under a consistent layout (installs of
/// shards outside the installed map are rejected edge-side).
///
/// Version gating makes delivery idempotent and self-healing: each
/// subscriber tracks the replica version it has applied per table; a
/// batch applies only if it extends exactly that version, and any gap —
/// a subscriber that fell behind the retained log window, a fresh
/// subscriber, a key rotation, a corrupted replica — is caught up with a
/// full snapshot instead.
///
/// Thread-safe. DML at the central server, hub flushes, and client
/// queries against the edges may all proceed concurrently.
///
/// Lifetime: the hub holds raw pointers to the central server and every
/// subscribed edge, and its background thread uses them until Stop().
/// Construct the hub after (i.e. destroy it before) the central server,
/// the transport, and all subscribers — or call Stop()/Unsubscribe
/// explicitly first.
class DistributionHub {
 public:
  DistributionHub(CentralServer* central, Transport* transport,
                  PropagationOptions options = {});
  ~DistributionHub();

  DistributionHub(const DistributionHub&) = delete;
  DistributionHub& operator=(const DistributionHub&) = delete;

  /// Registers an edge server; every distributed table/view is shipped
  /// to it (snapshot first, deltas after) starting with the next flush.
  Status Subscribe(EdgeServer* edge);

  /// Removes a subscriber (its replicas stay as they are — and go stale).
  /// Blocks until any in-flight flush no longer references it.
  Status Unsubscribe(const std::string& edge_name);

  void Start();
  void Stop();
  bool running() const { return running_.load(); }

  /// Runs one synchronous propagation round (the same code path the
  /// background thread executes). Returns the first ship error, if any.
  Status FlushOnce();

  /// Flushes until every subscriber has every table at the central
  /// version (a barrier for tests/examples). With concurrent central DML
  /// this chases the head; gives up after `max_rounds`.
  Status SyncAll(size_t max_rounds = 10000);

  /// True when every subscriber is at the central version everywhere.
  bool Converged();

  /// Marks every replica of `edge_name` dirty so the next flush re-ships
  /// full snapshots — the recovery path for a corrupted/tampered edge.
  Status ForceSnapshot(const std::string& edge_name);

  /// Re-admits a lagging subscriber ("the edge came back"): clears the
  /// lagging mark and forces full snapshots for all its replicas, since
  /// the log window it missed may already be truncated.
  Status Reconnect(const std::string& edge_name);

  /// Names of subscribers currently marked lagging.
  std::vector<std::string> LaggingSubscribers();

  /// Per-table versions a subscriber has applied (empty if unknown edge).
  std::map<std::string, uint64_t> SubscriberVersions(
      const std::string& edge_name);

  struct HubStats {
    uint64_t flushes = 0;
    uint64_t deltas_shipped = 0;
    uint64_t snapshots_shipped = 0;
    /// Snapshots forced by a version gap / log truncation / apply error.
    uint64_t catch_up_snapshots = 0;
    /// Signed partition maps shipped (epoch bumps and fresh subscribers).
    uint64_t maps_shipped = 0;
    uint64_t bytes_shipped = 0;
    uint64_t ship_errors = 0;
    /// Subscribers marked lagging (no apply progress for
    /// `lagging_after_rounds` consecutive rounds).
    uint64_t lagging_marked = 0;
    /// Lagging subscribers re-admitted via Reconnect().
    uint64_t reconnects = 0;
  };
  HubStats stats() const;

 private:
  struct Subscriber {
    EdgeServer* edge = nullptr;
    /// Versions this subscriber has applied, per shard/view name. A
    /// missing entry means "never shipped" → snapshot.
    std::map<std::string, uint64_t> applied;
    /// Partition-map epochs this subscriber has installed, per table.
    std::map<std::string, uint64_t> applied_maps;
    /// Names whose next ship must be a snapshot regardless of versions.
    std::set<std::string> force_snapshot;
    channel_id_t snapshot_channel = kInvalidChannel;
    channel_id_t delta_channel = kInvalidChannel;
    channel_id_t map_channel = kInvalidChannel;
    /// Consecutive flush rounds in which every ship to this subscriber
    /// failed to advance anything (black-holed channel, dead edge).
    size_t stall_rounds = 0;
    /// Lagging subscribers are skipped by ship plans, Converged() and
    /// log GC until Reconnect() re-admits them.
    bool lagging = false;
  };

  struct ShipJob {
    Subscriber* sub = nullptr;
    std::string name;
    bool is_snapshot = false;
    bool is_catch_up = false;
    std::shared_ptr<const std::vector<uint8_t>> bytes;
  };

  void PropagatorLoop();
  Status BuildAndRunPlan();
  /// Routes a payload through the transport's Deliver gate (the fault
  /// surface); with no transport the receiver is invoked directly.
  Status DeliverVia(channel_id_t channel, Slice payload,
                    const Transport::DeliverFn& fn);
  /// Ships every stale subscriber the current signed partition maps —
  /// called at the top of each round, before any shard payload.
  Status ShipMaps();
  Status RunJob(const ShipJob& job);
  /// Serializes (and caches for this flush) the snapshot of `name`.
  Result<std::shared_ptr<const std::vector<uint8_t>>> SnapshotBytes(
      const std::string& name);
  std::vector<std::string> DistributedNames() const;

  CentralServer* central_;
  Transport* transport_;  // may be null (no accounting)
  PropagationOptions options_;

  /// Serializes flush rounds (background thread vs FlushOnce/SyncAll).
  std::mutex flush_mu_;
  /// Guards the subscriber registry and applied-version maps.
  std::mutex state_mu_;
  std::vector<std::unique_ptr<Subscriber>> subscribers_;

  /// Per-flush snapshot cache (valid only while flush_mu_ is held).
  std::map<std::string, std::shared_ptr<const std::vector<uint8_t>>>
      snapshot_cache_;

  std::thread propagator_;
  std::atomic<bool> running_{false};
  std::condition_variable stop_cv_;
  std::mutex stop_mu_;
  bool stop_requested_ = false;

  mutable std::mutex stats_mu_;
  HubStats stats_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_PROPAGATION_DISTRIBUTION_HUB_H_
