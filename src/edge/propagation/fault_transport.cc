#include "edge/propagation/fault_transport.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace vbtree {

namespace {

uint64_t MixSeed(uint64_t seed, const std::string& name) {
  // splitmix-style fold of the channel name into the transport seed, so
  // each channel's fault sequence is stable under any interleaving of
  // other channels' traffic.
  uint64_t h = seed;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h ? h : 1;
}

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(Transport* inner,
                                                 uint64_t seed)
    : inner_(inner), seed_(seed) {}

FaultInjectingTransport::~FaultInjectingTransport() {
  // Messages still held for reordering die with the network; delivering
  // into possibly-destroyed receivers here would be worse than the loss.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, st] : channels_) {
    std::lock_guard<std::mutex> ch_lock(st->mu);
    if (st->held != nullptr) {
      st->held.reset();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

channel_id_t FaultInjectingTransport::Channel(const std::string& name) {
  channel_id_t id = inner_->Channel(name);
  std::lock_guard<std::mutex> lock(mu_);
  ids_.emplace(name, id);
  names_.emplace(id, name);
  return id;
}

void FaultInjectingTransport::Record(channel_id_t channel, size_t bytes) {
  inner_->Record(channel, bytes);
}

Transport::ChannelStats FaultInjectingTransport::stats(
    channel_id_t channel) const {
  return inner_->stats(channel);
}

Transport::ChannelStats FaultInjectingTransport::stats(
    const std::string& channel) const {
  return inner_->stats(channel);
}

uint64_t FaultInjectingTransport::total_bytes() const {
  return inner_->total_bytes();
}

void FaultInjectingTransport::Reset() { inner_->Reset(); }

void FaultInjectingTransport::SetPolicy(const std::string& substr,
                                        FaultPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policies_.emplace_back(substr, policy);
  // Channels that already resolved a state re-resolve their policy so a
  // test can arm faults after the stack (and its channels) exist.
  for (auto& [id, st] : channels_) {
    auto name_it = names_.find(id);
    if (name_it == names_.end()) continue;
    if (name_it->second.find(substr) == std::string::npos) continue;
    std::lock_guard<std::mutex> ch_lock(st->mu);
    st->policy = policy;
  }
}

void FaultInjectingTransport::PartitionOnce(const std::string& substr,
                                            uint64_t messages) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.push_back(Partition{substr, messages});
}

void FaultInjectingTransport::Heal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    partitions_.clear();
    for (auto& [id, st] : channels_) {
      std::lock_guard<std::mutex> ch_lock(st->mu);
      st->black_holed = false;
      st->sends = 0;  // black_hole_after counts anew after a heal
    }
  }
  FlushPending();
}

void FaultInjectingTransport::FlushPending() {
  // Collect under the lock, deliver outside it (receivers may be slow).
  std::vector<std::unique_ptr<PendingMessage>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, st] : channels_) {
      std::lock_guard<std::mutex> ch_lock(st->mu);
      if (st->held != nullptr) pending.push_back(std::move(st->held));
    }
  }
  for (auto& msg : pending) {
    (void)msg->deliver(Slice(msg->payload));
    delivered_.fetch_add(1, std::memory_order_relaxed);
    reordered_.fetch_add(1, std::memory_order_relaxed);
  }
}

FaultInjectingTransport::ChannelState* FaultInjectingTransport::StateFor(
    channel_id_t channel) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(channel);
  if (it != channels_.end()) return it->second.get();
  auto st = std::make_unique<ChannelState>();
  std::string name;
  auto name_it = names_.find(channel);
  if (name_it != names_.end()) name = name_it->second;
  st->rng = Rng(MixSeed(seed_, name));
  for (const auto& [substr, policy] : policies_) {
    if (name.find(substr) != std::string::npos) {
      st->policy = policy;
      break;
    }
  }
  return channels_.emplace(channel, std::move(st)).first->second.get();
}

Status FaultInjectingTransport::Deliver(channel_id_t channel, Slice payload,
                                        const DeliverFn& deliver) {
  std::string name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto name_it = names_.find(channel);
    if (name_it != names_.end()) name = name_it->second;
    // One-shot partitions swallow matching messages until exhausted.
    for (auto it = partitions_.begin(); it != partitions_.end();) {
      if (it->remaining == 0) {
        it = partitions_.erase(it);
        continue;
      }
      if (name.find(it->substr) != std::string::npos) {
        it->remaining--;
        partitioned_.fetch_add(1, std::memory_order_relaxed);
        return Status::IOError("fault injection: partition swallowed message on " +
                               name);
      }
      ++it;
    }
  }

  ChannelState* st = StateFor(channel);

  bool drop = false;
  bool black_holed = false;
  bool duplicate = false;
  bool truncate = false;
  bool hold = false;
  size_t deliver_bytes = payload.size();
  uint64_t delay_us = 0;
  std::unique_ptr<PendingMessage> release;
  {
    std::lock_guard<std::mutex> ch_lock(st->mu);
    const FaultPolicy& p = st->policy;
    st->sends++;
    if (p.black_hole_after > 0 && st->sends > p.black_hole_after) {
      st->black_holed = true;
    }
    if (st->black_holed) {
      black_holed = true;
    } else if (p.any()) {
      delay_us = p.delay_us;
      if (p.drop > 0 && st->rng.NextDouble() < p.drop) {
        drop = true;
      } else {
        if (p.duplicate > 0 && st->rng.NextDouble() < p.duplicate) {
          duplicate = true;
        }
        if (p.truncate > 0 && payload.size() > 1 &&
            st->rng.NextDouble() < p.truncate) {
          truncate = true;
          deliver_bytes = 1 + st->rng.Uniform(payload.size() - 1);
        }
        if (p.reorder > 0 && st->held == nullptr && !duplicate &&
            st->rng.NextDouble() < p.reorder) {
          hold = true;
          auto msg = std::make_unique<PendingMessage>();
          msg->payload.assign(payload.data(), payload.data() + deliver_bytes);
          msg->deliver = deliver;
          st->held = std::move(msg);
        }
      }
      if (!hold && st->held != nullptr) {
        // This message overtakes the held one: deliver it first below,
        // then the held (older) message — a pairwise reorder.
        release = std::move(st->held);
      }
    }
  }

  if (delay_us > 0 && !black_holed) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    delayed_us_.fetch_add(delay_us, std::memory_order_relaxed);
  }

  auto deliver_release = [&] {
    if (release == nullptr) return;
    (void)release->deliver(Slice(release->payload));
    delivered_.fetch_add(1, std::memory_order_relaxed);
    reordered_.fetch_add(1, std::memory_order_relaxed);
    release.reset();
  };

  if (black_holed) {
    black_holed_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("fault injection: channel black-holed: " + name);
  }
  if (drop) {
    deliver_release();  // the older in-flight message still arrives
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("fault injection: message dropped on " + name);
  }
  if (hold) {
    // In flight: the sender sees an accepted send; the receiver gets the
    // message when the channel's next message overtakes it (or at
    // FlushPending/Heal).
    return Status::OK();
  }

  Status s = deliver(Slice(payload.data(), deliver_bytes));
  delivered_.fetch_add(1, std::memory_order_relaxed);
  if (truncate) truncated_.fetch_add(1, std::memory_order_relaxed);
  if (duplicate) {
    // The receiver must treat the copy idempotently (version gating);
    // its status is the duplicate's problem, not the sender's.
    (void)deliver(Slice(payload.data(), deliver_bytes));
    delivered_.fetch_add(1, std::memory_order_relaxed);
    duplicated_.fetch_add(1, std::memory_order_relaxed);
  }
  deliver_release();
  return s;
}

FaultInjectingTransport::InjectionCounters
FaultInjectingTransport::injection_counters() const {
  InjectionCounters c;
  c.delivered = delivered_.load(std::memory_order_relaxed);
  c.dropped = dropped_.load(std::memory_order_relaxed);
  c.duplicated = duplicated_.load(std::memory_order_relaxed);
  c.reordered = reordered_.load(std::memory_order_relaxed);
  c.truncated = truncated_.load(std::memory_order_relaxed);
  c.black_holed = black_holed_.load(std::memory_order_relaxed);
  c.partitioned = partitioned_.load(std::memory_order_relaxed);
  c.delayed_us = delayed_us_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace vbtree
