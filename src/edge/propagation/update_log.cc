#include "edge/propagation/update_log.h"

#include <algorithm>

namespace vbtree {

namespace {

void PutSig(ByteWriter* w, const Signature& s) {
  w->PutLengthPrefixed(Slice(s.data(), s.size()));
}

Result<Signature> ReadSig(ByteReader* r) {
  VBT_ASSIGN_OR_RETURN(Slice s, r->ReadLengthPrefixed());
  return Signature(s.data(), s.data() + s.size());
}

}  // namespace

void UpdateOp::Serialize(ByteWriter* w) const {
  w->PutU8(static_cast<uint8_t>(kind));
  if (kind == Kind::kInsert) {
    tuple.Serialize(w);
    w->PutU32(static_cast<uint32_t>(rid.page_id));
    w->PutU16(rid.slot);
    PutSig(w, material.tuple_sig);
    w->PutVarint(material.attr_sigs.size());
    for (const Signature& s : material.attr_sigs) PutSig(w, s);
  } else {
    w->PutI64(lo);
    w->PutI64(hi);
  }
  w->PutVarint(resigned.size());
  for (const Signature& s : resigned) PutSig(w, s);
}

Result<UpdateOp> UpdateOp::Deserialize(ByteReader* r, const Schema& schema) {
  UpdateOp op;
  VBT_ASSIGN_OR_RETURN(uint8_t kind, r->ReadU8());
  if (kind > static_cast<uint8_t>(Kind::kDeleteRange)) {
    return Status::Corruption("bad update op kind");
  }
  op.kind = static_cast<Kind>(kind);
  if (op.kind == Kind::kInsert) {
    VBT_ASSIGN_OR_RETURN(op.tuple, Tuple::Deserialize(r, schema));
    VBT_ASSIGN_OR_RETURN(uint32_t page, r->ReadU32());
    op.rid.page_id = static_cast<int32_t>(page);
    VBT_ASSIGN_OR_RETURN(op.rid.slot, r->ReadU16());
    VBT_ASSIGN_OR_RETURN(op.material.tuple_sig, ReadSig(r));
    VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
    op.material.attr_sigs.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      VBT_ASSIGN_OR_RETURN(Signature s, ReadSig(r));
      op.material.attr_sigs.push_back(std::move(s));
    }
  } else {
    VBT_ASSIGN_OR_RETURN(op.lo, r->ReadI64());
    VBT_ASSIGN_OR_RETURN(op.hi, r->ReadI64());
  }
  VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
  op.resigned.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    VBT_ASSIGN_OR_RETURN(Signature s, ReadSig(r));
    op.resigned.push_back(std::move(s));
  }
  return op;
}

void UpdateBatch::Serialize(ByteWriter* w) const {
  w->PutU32(0x544C4456);  // "VDLT"
  w->PutString(table);
  w->PutU64(from_version);
  w->PutU64(to_version);
  w->PutVarint(ops.size());
  for (const UpdateOp& op : ops) op.Serialize(w);
}

Result<UpdateBatch> UpdateBatch::Deserialize(
    ByteReader* r,
    const std::function<Result<Schema>(const std::string&)>& schema_for) {
  VBT_ASSIGN_OR_RETURN(uint32_t magic, r->ReadU32());
  if (magic != 0x544C4456) return Status::Corruption("bad delta magic");
  UpdateBatch batch;
  VBT_ASSIGN_OR_RETURN(batch.table, r->ReadString());
  VBT_ASSIGN_OR_RETURN(batch.from_version, r->ReadU64());
  VBT_ASSIGN_OR_RETURN(batch.to_version, r->ReadU64());
  VBT_ASSIGN_OR_RETURN(Schema schema, schema_for(batch.table));
  VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
  if (batch.to_version < batch.from_version ||
      batch.to_version - batch.from_version != n) {
    return Status::Corruption("delta op count does not match version span");
  }
  batch.ops.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    VBT_ASSIGN_OR_RETURN(UpdateOp op, UpdateOp::Deserialize(r, schema));
    batch.ops.push_back(std::move(op));
  }
  return batch;
}

size_t UpdateBatch::SerializedSize() const {
  ByteWriter w;
  Serialize(&w);
  return w.size();
}

void UpdateLog::Append(UpdateOp op) {
  ops_.push_back(std::move(op));
  if (ops_.size() > max_retained_) {
    ops_.pop_front();
    base_++;
  }
}

Result<UpdateBatch> UpdateLog::BatchSince(const std::string& table,
                                          uint64_t from_version,
                                          size_t max_ops) const {
  if (!Covers(from_version)) {
    return Status::InvalidArgument(
        "version " + std::to_string(from_version) +
        " predates the retained log window [" + std::to_string(base_) + ", " +
        std::to_string(head_version()) + "]; a full snapshot is required");
  }
  size_t skip = static_cast<size_t>(from_version - base_);
  size_t count = std::min(ops_.size() - skip, max_ops);
  UpdateBatch batch;
  batch.table = table;
  batch.from_version = from_version;
  batch.to_version = from_version + count;
  batch.ops.assign(ops_.begin() + static_cast<ptrdiff_t>(skip),
                   ops_.begin() + static_cast<ptrdiff_t>(skip + count));
  return batch;
}

void UpdateLog::TruncateThrough(uint64_t version) {
  uint64_t through = std::min(version, head_version());
  while (!ops_.empty() && base_ < through) {
    ops_.pop_front();
    base_++;
  }
}

void UpdateLog::Reset(uint64_t new_base) {
  ops_.clear();
  base_ = new_base;
}

}  // namespace vbtree
