#include "edge/query_service/edge_director.h"

#include <algorithm>

#include "edge/query_service/lazy_auditor.h"
#include "edge/query_service/query_service.h"

namespace vbtree {

EdgeDirector::EdgeDirector() : EdgeDirector(Options()) {}

EdgeDirector::EdgeDirector(Options options) : options_(options) {}

void EdgeDirector::AddEdge(QueryService* service) {
  if (service == nullptr || service->edge() == nullptr) return;
  const std::string name = service->edge()->name();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = edges_.emplace(name, Edge{});
  it->second.service = service;
  if (inserted) order_.push_back(name);
}

std::vector<QueryService*> EdgeDirector::RouteCandidates() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryService*> active;
  std::vector<QueryService*> probes;
  const auto now = Clock::now();
  const size_t n = order_.size();
  for (size_t i = 0; i < n; ++i) {
    Edge& e = edges_.at(order_[(rr_next_ + i) % n]);
    if (e.state != EdgeHealth::kQuarantined) {
      active.push_back(e.service);
      continue;
    }
    // One probe at a time: a quarantined edge re-earns trust with a
    // single verified answer, not a burst of traffic. A probe whose
    // outcome never came back (the caller routed elsewhere) expires
    // after one probation window so the edge isn't stranded.
    if (e.probe_outstanding) {
      const auto since_probe =
          std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                e.probe_at);
      if (static_cast<uint64_t>(since_probe.count()) < e.probation_us) {
        continue;
      }
      e.probe_outstanding = false;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        now - e.quarantined_at);
    if (static_cast<uint64_t>(elapsed.count()) >= e.probation_us) {
      e.probe_outstanding = true;
      e.probe_at = now;
      probes.push_back(e.service);
      stats_.probes++;
    }
  }
  if (n > 0) rr_next_ = (rr_next_ + 1) % n;
  // Probes lead the list: appended after healthy edges they would never
  // see traffic (the caller stops at the first success), so a
  // quarantined edge could never re-earn admission. Leading costs the
  // caller at most one extra attempt — a failed probe just fails over
  // to the healthy candidates behind it.
  probes.insert(probes.end(), active.begin(), active.end());
  return probes;
}

bool EdgeDirector::QuarantineLocked(Edge* e) {
  if (e->state == EdgeHealth::kQuarantined) {
    // Strike while quarantined (a failed probe): back the window off.
    e->probation_us = std::min(
        static_cast<uint64_t>(static_cast<double>(e->probation_us) *
                              options_.probation_backoff),
        options_.probation_max_us);
    e->quarantined_at = Clock::now();
    e->probe_outstanding = false;
    return false;
  }
  e->state = EdgeHealth::kQuarantined;
  e->probation_us =
      e->probation_us == 0
          ? options_.probation_initial_us
          : std::min(static_cast<uint64_t>(
                         static_cast<double>(e->probation_us) *
                         options_.probation_backoff),
                     options_.probation_max_us);
  e->quarantined_at = Clock::now();
  e->probe_outstanding = false;
  e->timeout_strikes = 0;
  stats_.quarantines++;
  return true;
}

void EdgeDirector::ReportTimeout(const std::string& edge_name) {
  bool quarantined = false;
  LazyAuditor* auditor = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auditor = auditor_;
    auto it = edges_.find(edge_name);
    if (it == edges_.end()) return;
    Edge& e = it->second;
    stats_.timeouts++;
    if (e.state == EdgeHealth::kQuarantined) {
      QuarantineLocked(&e);  // failed probe: back off
      return;
    }
    e.timeout_strikes++;
    if (e.timeout_strikes >= options_.timeout_quarantine_after) {
      quarantined = QuarantineLocked(&e);
    } else if (e.timeout_strikes >= options_.suspect_after) {
      e.state = EdgeHealth::kSuspect;
    }
  }
  if (quarantined && auditor != nullptr) {
    size_t moved = auditor->Expedite(edge_name);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.expedited_tickets += moved;
  }
}

void EdgeDirector::ReportVerifyFailure(const std::string& edge_name) {
  bool quarantined = false;
  LazyAuditor* auditor = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auditor = auditor_;
    auto it = edges_.find(edge_name);
    if (it == edges_.end()) return;
    Edge& e = it->second;
    stats_.verify_failures++;
    e.verify_strikes++;
    if (e.state == EdgeHealth::kQuarantined) {
      QuarantineLocked(&e);
      return;
    }
    if (e.verify_strikes >= options_.verify_quarantine_after) {
      quarantined = QuarantineLocked(&e);
    } else {
      e.state = EdgeHealth::kSuspect;
    }
  }
  if (quarantined && auditor != nullptr) {
    size_t moved = auditor->Expedite(edge_name);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.expedited_tickets += moved;
  }
}

void EdgeDirector::ReportAlarm(const std::string& edge_name) {
  bool quarantined = false;
  LazyAuditor* auditor = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auditor = auditor_;
    auto it = edges_.find(edge_name);
    if (it == edges_.end()) return;
    Edge& e = it->second;
    stats_.alarms++;
    e.alarm_strikes++;
    if (e.state == EdgeHealth::kQuarantined) return;  // already out
    if (e.alarm_strikes >= options_.alarm_quarantine_after) {
      quarantined = QuarantineLocked(&e);
    } else {
      e.state = EdgeHealth::kSuspect;
    }
  }
  if (quarantined && auditor != nullptr) {
    size_t moved = auditor->Expedite(edge_name);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.expedited_tickets += moved;
  }
}

void EdgeDirector::ReportSuccess(const std::string& edge_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = edges_.find(edge_name);
  if (it == edges_.end()) return;
  Edge& e = it->second;
  e.timeout_strikes = 0;
  // Alarm and verify strikes persist: evidence of lying doesn't expire
  // just because the next answer checked out.
  if (e.state == EdgeHealth::kQuarantined) {
    // A verified probe answer re-admits the edge; the probation window
    // keeps its backed-off width in case it flaps again.
    e.state = EdgeHealth::kHealthy;
    e.probe_outstanding = false;
    // Re-admission wipes the strike that quarantined it, or the very
    // next alarm/verify report would instantly re-quarantine on stale
    // evidence. Fresh misbehavior re-accumulates from zero.
    e.verify_strikes = 0;
    e.alarm_strikes = 0;
    stats_.readmissions++;
  } else if (e.state == EdgeHealth::kSuspect && e.verify_strikes == 0 &&
             e.alarm_strikes == 0) {
    e.state = EdgeHealth::kHealthy;
  }
}

void EdgeDirector::WireAlarms(LazyAuditor* auditor) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auditor_ = auditor;
  }
  if (auditor != nullptr) {
    auditor->SetAlarmSink([this](const LazyAuditor::Alarm& alarm) {
      if (!alarm.source.empty()) ReportAlarm(alarm.source);
    });
  }
}

EdgeHealth EdgeDirector::health(const std::string& edge_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = edges_.find(edge_name);
  return it == edges_.end() ? EdgeHealth::kHealthy : it->second.state;
}

std::vector<std::string> EdgeDirector::QuarantinedEdges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, e] : edges_) {
    if (e.state == EdgeHealth::kQuarantined) names.push_back(name);
  }
  return names;
}

size_t EdgeDirector::edge_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return edges_.size();
}

EdgeDirector::Stats EdgeDirector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace vbtree
