#ifndef VBTREE_EDGE_QUERY_SERVICE_BATCH_VERIFIER_H_
#define VBTREE_EDGE_QUERY_SERVICE_BATCH_VERIFIER_H_

#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/counters.h"
#include "crypto/signer.h"
#include "query/predicate.h"
#include "vbtree/digest_schema.h"
#include "vbtree/verification_object.h"

namespace vbtree {

/// Client-side companion of the edge QueryService: fans the VO
/// verifications of a coalesced batch response across a small worker
/// pool. Verification is the client's dominant cost (modular
/// exponentiations per returned attribute, §4.2), and per-query VOs are
/// independent — embarrassingly parallel.
///
/// The pool is owned by the verifier and reused across calls; VerifyAll
/// itself blocks until every job is done, so the caller (a Client, which
/// is single-threaded by contract) observes plain synchronous semantics
/// and its monotonic-read watermark logic is untouched.
///
/// Thread-safety requirements on inputs: the Recoverer must tolerate
/// concurrent Recover() calls (SimRecoverer and RsaRecoverer both do:
/// per-call state only); jobs reference caller-owned data that must stay
/// alive for the duration of VerifyAll.
class BatchVerifier {
 public:
  struct Options {
    /// 0 = verify inline on the calling thread (no extra threads) — the
    /// mode load-driver client threads use so fleet thread counts stay
    /// bounded.
    size_t num_workers = 4;
  };

  BatchVerifier() : BatchVerifier(Options{}) {}
  explicit BatchVerifier(Options options);
  ~BatchVerifier();

  BatchVerifier(const BatchVerifier&) = delete;
  BatchVerifier& operator=(const BatchVerifier&) = delete;

  /// One (query, rows, VO) triple to authenticate. `query` must be
  /// projection-normalized, matching how the rows were deserialized.
  struct Job {
    const SelectQuery* query = nullptr;
    const std::vector<ResultRow>* rows = nullptr;
    const VerificationObject* vo = nullptr;
  };

  struct Outcome {
    Status verification;
    /// Cost_h / Cost_k / Cost_s this job spent (per-job sink, so the
    /// parallel workers never contend on one counter block).
    CryptoCounters counters;
  };

  /// Verifies every job against `ds` (copied per job) using `recoverer`'s
  /// public key; returns outcomes positionally. Blocks until all jobs are
  /// done.
  std::vector<Outcome> VerifyAll(const DigestSchema& ds, Recoverer* recoverer,
                                 std::span<const Job> jobs);

  size_t num_workers() const { return pool_ ? pool_->num_threads() : 0; }

 private:
  static Outcome RunJob(const DigestSchema& ds, Recoverer* recoverer,
                        const Job& job);

  Options options_;
  std::unique_ptr<ThreadPool> pool_;  ///< null in inline mode
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_QUERY_SERVICE_BATCH_VERIFIER_H_
