#ifndef VBTREE_EDGE_QUERY_SERVICE_BATCH_VERIFIER_H_
#define VBTREE_EDGE_QUERY_SERVICE_BATCH_VERIFIER_H_

#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/counters.h"
#include "crypto/recovered_digest_cache.h"
#include "crypto/signer.h"
#include "query/predicate.h"
#include "vbtree/digest_schema.h"
#include "vbtree/verification_object.h"
#include "vbtree/verifier.h"

namespace vbtree {

/// Client-side companion of the edge QueryService: fans the VO
/// verifications of a coalesced batch response across a small worker
/// pool. Verification is the client's dominant cost (modular
/// exponentiations per returned attribute, §4.2), and per-query VOs are
/// independent — embarrassingly parallel.
///
/// Fast path (DESIGN.md §6): when the batch arrived through a wire-v2
/// SignaturePool, every distinct signature is recovered exactly once up
/// front — the pool entries are partitioned across the workers, each
/// resolved through the cross-batch RecoveredDigestCache first — and the
/// per-query verifications then consume recovered digests by pool index
/// instead of paying one Cost_s per signature *reference*.
///
/// The pool is owned by the verifier and reused across calls; VerifyAll
/// itself blocks until every job is done, so the caller (a Client, which
/// is single-threaded by contract) observes plain synchronous semantics
/// and its monotonic-read watermark logic is untouched.
///
/// Thread-safety requirements on inputs: the Recoverer must tolerate
/// concurrent Recover() calls (SimRecoverer and RsaRecoverer both do:
/// per-call state only); jobs reference caller-owned data that must stay
/// alive for the duration of VerifyAll.
class BatchVerifier {
 public:
  struct Options {
    /// 0 = verify inline on the calling thread (no extra threads) — the
    /// mode load-driver client threads use so fleet thread counts stay
    /// bounded.
    size_t num_workers = 4;
  };

  BatchVerifier() : BatchVerifier(Options{}) {}
  explicit BatchVerifier(Options options);
  ~BatchVerifier();

  BatchVerifier(const BatchVerifier&) = delete;
  BatchVerifier& operator=(const BatchVerifier&) = delete;

  /// One (query, rows, VO) triple to authenticate. `query` must be
  /// projection-normalized, matching how the rows were deserialized.
  struct Job {
    const SelectQuery* query = nullptr;
    const std::vector<ResultRow>* rows = nullptr;
    const VerificationObject* vo = nullptr;
    /// Already-recovered digest of byte-identical signed-top bytes (the
    /// client's per-(table, replica_version) memo); skips that one
    /// recovery, never the digest comparison. May be null.
    const Digest* known_top = nullptr;
    /// Lineage-shard root anchoring (Verifier::set_top_binding): non-null
    /// when the shard's digest domain is shared with split siblings and
    /// the VO anchors at the signed shard binding. Caller-owned; must
    /// stay alive for the duration of VerifyAll.
    const Verifier::TopBinding* binding = nullptr;
  };

  struct Outcome {
    Status verification;
    /// Cost_h / Cost_k / Cost_s this job spent (per-job sink, so the
    /// parallel workers never contend on one counter block).
    CryptoCounters counters;
    /// The recovered signed-top digest when this job resolved it itself
    /// (top_recovered == true) — the caller's memo feed.
    Digest top_digest;
    bool top_recovered = false;
  };

  /// Batch-level context for the verification fast path. All pointers
  /// are caller-owned and optional; a default-constructed context (or
  /// nullptr) reproduces the plain Recover-per-reference path.
  struct PoolContext {
    /// The batch's signature pool (wire v2); its once-per-batch recovery
    /// is fanned across the worker pool before any job runs.
    const SignaturePool* pool = nullptr;
    /// Cross-batch recovered-digest LRU, consulted entry-by-entry during
    /// the pool phase and by jobs for non-pooled signatures.
    RecoveredDigestCache* cache = nullptr;
    /// Signing-key version the signatures resolve under (cache domain).
    uint64_t cache_domain = 0;
    /// Sink for the pool phase's Cost_s / cache telemetry. The phase's
    /// work is batch-level (shared by every job), so it is accounted
    /// here, not in any single job's counters. Bumped concurrently from
    /// the workers — CryptoCounters is atomic precisely for this.
    CryptoCounters* pool_counters = nullptr;
  };

  /// Verifies every job against `ds` (copied per job) using `recoverer`'s
  /// public key; returns outcomes positionally. Blocks until all jobs are
  /// done.
  std::vector<Outcome> VerifyAll(const DigestSchema& ds, Recoverer* recoverer,
                                 std::span<const Job> jobs,
                                 const PoolContext* ctx = nullptr);

  size_t num_workers() const { return pool_ ? pool_->num_threads() : 0; }

 private:
  static Outcome RunJob(const DigestSchema& ds, Recoverer* recoverer,
                        const Job& job,
                        std::span<const RecoveredSignature> recovered,
                        const PoolContext* ctx);

  /// Recovers every pool entry exactly once (cache first), fanning
  /// contiguous chunks across the worker pool.
  std::vector<RecoveredSignature> RecoverPool(Recoverer* recoverer,
                                              const PoolContext& ctx);

  Options options_;
  std::unique_ptr<ThreadPool> pool_;  ///< null in inline mode
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_QUERY_SERVICE_BATCH_VERIFIER_H_
