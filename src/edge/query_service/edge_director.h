#ifndef VBTREE_EDGE_QUERY_SERVICE_EDGE_DIRECTOR_H_
#define VBTREE_EDGE_QUERY_SERVICE_EDGE_DIRECTOR_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace vbtree {

class LazyAuditor;
class QueryService;

/// Per-edge health as the director sees it. Healthy edges take traffic;
/// a suspect edge still takes traffic but is one strike from
/// quarantine; a quarantined edge takes no traffic until its probation
/// expires, and then only a single probe at a time.
enum class EdgeHealth { kHealthy, kSuspect, kQuarantined };

/// Client-side routing brain for a fleet of edge replicas: tracks
/// per-edge health from three signal sources — RPC timeouts, synchronous
/// verification failures, and LazyAuditor alarms (wired via
/// WireAlarms(), which finally consumes the alarm's source identity) —
/// and hands Client::QueryBatched an ordered candidate list.
///
/// Quarantine is sticky with exponential probation: a quarantined edge
/// is eligible again only after its probation window, and then as a
/// single leading *probe* in the candidate list; a failed probe
/// doubles the window (capped), a verified success re-admits it. A
/// verification failure or alarm quarantines much faster than a timeout
/// does, because lying is a stronger signal than being slow — and
/// unlike timeouts, it is evidence, so ReportSuccess never clears alarm
/// strikes.
///
/// On quarantine the director expedites the offender's queued lazy
/// tickets (LazyAuditor::Expedite): the remaining exposure window is
/// shrunk exactly where the risk concentrates.
///
/// Thread-safe: client threads route and report while the auditor
/// thread delivers alarms.
class EdgeDirector {
 public:
  struct Options {
    /// Consecutive timeout strikes before kHealthy -> kSuspect.
    size_t suspect_after = 1;
    /// Consecutive timeout strikes before quarantine.
    size_t timeout_quarantine_after = 3;
    /// Synchronous verification failures before quarantine (1 = first
    /// offense: a bad proof is never an accident of the network).
    size_t verify_quarantine_after = 1;
    /// Deferred-audit alarms before quarantine.
    size_t alarm_quarantine_after = 2;
    /// First probation window after quarantine, microseconds.
    uint64_t probation_initial_us = 50'000;
    /// Window multiplier per failed probe.
    double probation_backoff = 2.0;
    uint64_t probation_max_us = 5'000'000;
  };

  struct Stats {
    uint64_t timeouts = 0;
    uint64_t verify_failures = 0;
    uint64_t alarms = 0;
    uint64_t quarantines = 0;   ///< transitions into kQuarantined
    uint64_t probes = 0;        ///< quarantined edges handed out on probation
    uint64_t readmissions = 0;  ///< probes that succeeded -> kHealthy
    uint64_t expedited_tickets = 0;  ///< lazy tickets re-prioritized
  };

  EdgeDirector();
  explicit EdgeDirector(Options options);

  /// Registers an edge replica (name taken from the service's edge).
  void AddEdge(QueryService* service);

  /// Ordered candidates for the next attempt: any quarantined edge
  /// whose probation has expired leads as a probe (otherwise it would
  /// never see traffic again — callers stop at the first success; a
  /// failed probe simply fails over to the healthy edges behind it),
  /// followed by healthy + suspect edges rotated round-robin (load
  /// spreading). Empty when every edge is quarantined and none is
  /// probe-eligible yet.
  std::vector<QueryService*> RouteCandidates();

  // --- signals ---
  /// The edge missed its per-attempt budget or errored at the RPC layer.
  void ReportTimeout(const std::string& edge_name);
  /// A synchronous (certified) verification failed against this edge.
  void ReportVerifyFailure(const std::string& edge_name);
  /// A deferred audit alarmed on this edge (normally wired by
  /// WireAlarms rather than called directly).
  void ReportAlarm(const std::string& edge_name);
  /// A fully verified answer came back from this edge.
  void ReportSuccess(const std::string& edge_name);

  /// Installs this director as `auditor`'s alarm sink (alarm.source ->
  /// ReportAlarm) and remembers the auditor so quarantines expedite the
  /// offender's queued tickets.
  void WireAlarms(LazyAuditor* auditor);

  EdgeHealth health(const std::string& edge_name) const;
  std::vector<std::string> QuarantinedEdges() const;
  size_t edge_count() const;
  Stats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Edge {
    QueryService* service = nullptr;
    EdgeHealth state = EdgeHealth::kHealthy;
    size_t timeout_strikes = 0;
    size_t verify_strikes = 0;
    size_t alarm_strikes = 0;
    uint64_t probation_us = 0;
    Clock::time_point quarantined_at{};
    bool probe_outstanding = false;
    Clock::time_point probe_at{};  ///< when the outstanding probe was issued
  };

  /// Moves `e` to kQuarantined (idempotent), arms/backs off probation,
  /// and returns whether this call performed the transition. The caller
  /// expedites outside the lock.
  bool QuarantineLocked(Edge* e);

  const Options options_;

  mutable std::mutex mu_;
  std::map<std::string, Edge> edges_;
  std::vector<std::string> order_;  ///< registration order, for rotation
  size_t rr_next_ = 0;
  LazyAuditor* auditor_ = nullptr;
  Stats stats_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_QUERY_SERVICE_EDGE_DIRECTOR_H_
