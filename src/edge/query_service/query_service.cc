#include "edge/query_service/query_service.h"

#include <thread>

#include "query/query_serde.h"

namespace vbtree {

namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

QueryService::QueryService(EdgeServer* edge, QueryServiceOptions options)
    : edge_(edge),
      options_(options),
      pool_(ThreadPoolOptions{options.num_workers, options.queue_capacity,
                              options.overflow}) {}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() { pool_.Shutdown(); }

void QueryService::ApplyStall() const {
  if (options_.modeled_io_stall_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.modeled_io_stall_us));
  }
}

void QueryService::Account(uint64_t queue_wait_us, uint64_t exec_us,
                           size_t queries, bool is_batch, uint64_t vo_bytes,
                           uint64_t result_bytes, bool error,
                           const BatchExecStats* batch_stats,
                           uint64_t lazy_queries) {
  std::lock_guard lock(stats_mu_);
  if (is_batch) {
    stats_.batches++;
    stats_.batched_queries += queries;
  } else {
    stats_.queries += queries;
  }
  stats_.lazy_queries += lazy_queries;
  if (error) stats_.errors++;
  stats_.queue_wait_us_total += queue_wait_us;
  stats_.queue_wait_us_max = std::max(stats_.queue_wait_us_max, queue_wait_us);
  stats_.exec_us_total += exec_us;
  stats_.vo_bytes_total += vo_bytes;
  stats_.result_bytes_total += result_bytes;
  if (batch_stats != nullptr) {
    stats_.vo_wire_bytes_total += batch_stats->vo_wire_bytes;
    stats_.vo_cache_hits += batch_stats->vo_cache_hits;
    stats_.olc_restarts += batch_stats->olc_restarts;
    stats_.latch_wait_us_total += batch_stats->latch_wait_us;
  }
}

std::future<Result<QueryResponse>> QueryService::Submit(SelectQuery query) {
  auto promise = std::make_shared<std::promise<Result<QueryResponse>>>();
  std::future<Result<QueryResponse>> future = promise->get_future();
  const Clock::time_point enqueued = Clock::now();
  Status submitted = pool_.Submit([this, promise, enqueued,
                                   q = std::move(query)]() mutable {
    const uint64_t wait_us = MicrosSince(enqueued);
    ApplyStall();
    const Clock::time_point exec_start = Clock::now();
    Result<QueryResponse> resp = edge_->HandleQuery(q);
    const uint64_t exec_us = MicrosSince(exec_start);
    Account(wait_us, exec_us, 1, /*is_batch=*/false,
            resp.ok() ? resp->vo_bytes : 0, resp.ok() ? resp->result_bytes : 0,
            !resp.ok());
    promise->set_value(std::move(resp));
  });
  if (!submitted.ok()) {
    std::lock_guard lock(stats_mu_);
    stats_.rejected++;
    promise->set_value(Result<QueryResponse>(submitted));
  }
  return future;
}

std::future<Result<QueryBatchResponse>> QueryService::SubmitBatch(
    QueryBatch batch) {
  auto promise = std::make_shared<std::promise<Result<QueryBatchResponse>>>();
  std::future<Result<QueryBatchResponse>> future = promise->get_future();
  const Clock::time_point enqueued = Clock::now();
  Status submitted = pool_.Submit([this, promise, enqueued,
                                   b = std::move(batch)]() mutable {
    const uint64_t wait_us = MicrosSince(enqueued);
    ApplyStall();
    const Clock::time_point exec_start = Clock::now();
    Result<QueryBatchResponse> resp = edge_->HandleQueryBatch(b);
    const uint64_t exec_us = MicrosSince(exec_start);
    uint64_t vo_bytes = 0, result_bytes = 0;
    if (resp.ok()) {
      resp->stats.queue_wait_us = wait_us;
      vo_bytes = resp->stats.total_vo_bytes;
      result_bytes = resp->stats.total_result_bytes;
    }
    Account(wait_us, exec_us, b.queries.size(), /*is_batch=*/true, vo_bytes,
            result_bytes, !resp.ok(), resp.ok() ? &resp->stats : nullptr,
            b.trust_mode != TrustMode::kCertified ? b.queries.size() : 0);
    promise->set_value(std::move(resp));
  });
  if (!submitted.ok()) {
    std::lock_guard lock(stats_mu_);
    stats_.rejected++;
    promise->set_value(Result<QueryBatchResponse>(submitted));
  }
  return future;
}

std::future<Result<std::vector<uint8_t>>> QueryService::SubmitBatchBytes(
    std::vector<uint8_t> request) {
  auto promise =
      std::make_shared<std::promise<Result<std::vector<uint8_t>>>>();
  std::future<Result<std::vector<uint8_t>>> future = promise->get_future();
  const Clock::time_point enqueued = Clock::now();
  Status submitted = pool_.Submit([this, promise, enqueued,
                                   req = std::move(request)]() mutable {
    const uint64_t wait_us = MicrosSince(enqueued);
    ApplyStall();
    const Clock::time_point exec_start = Clock::now();
    // Parse here (on the worker) so deserialization cost also comes off
    // the client's critical path; re-serialize with the measured wait.
    // ExecuteBatchToWire dispatches direct (v2) vs scatter-gather (v3)
    // by how the batch's table resolves on this edge.
    auto run = [&]() -> Result<std::vector<uint8_t>> {
      ByteReader r((Slice(req)));
      VBT_ASSIGN_OR_RETURN(QueryBatch batch, DeserializeQueryBatch(&r));
      BatchExecStats wire_stats;
      VBT_ASSIGN_OR_RETURN(
          std::vector<uint8_t> out,
          edge_->ExecuteBatchToWire(batch, wait_us, &wire_stats));
      // wire_stats.exec_us is the edge-measured execution time (inside
      // the latch, group-summed when sharded) — serialization stays out
      // of the exec metric, as before the ExecuteBatchToWire refactor.
      Account(wait_us, wire_stats.exec_us, batch.queries.size(),
              /*is_batch=*/true, wire_stats.total_vo_bytes,
              wire_stats.total_result_bytes, /*error=*/false, &wire_stats,
              batch.trust_mode != TrustMode::kCertified
                  ? batch.queries.size()
                  : 0);
      return out;
    };
    Result<std::vector<uint8_t>> out = run();
    if (!out.ok()) {
      Account(wait_us, MicrosSince(exec_start), 0, /*is_batch=*/true, 0, 0,
              /*error=*/true);
    }
    promise->set_value(std::move(out));
  });
  if (!submitted.ok()) {
    std::lock_guard lock(stats_mu_);
    stats_.rejected++;
    promise->set_value(Result<std::vector<uint8_t>>(submitted));
  }
  return future;
}

Result<QueryResponse> QueryService::Execute(SelectQuery query) {
  return Submit(std::move(query)).get();
}

Result<QueryBatchResponse> QueryService::ExecuteBatch(QueryBatch batch) {
  return SubmitBatch(std::move(batch)).get();
}

QueryService::Stats QueryService::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace vbtree
