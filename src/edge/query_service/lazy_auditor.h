#ifndef VBTREE_EDGE_QUERY_SERVICE_LAZY_AUDITOR_H_
#define VBTREE_EDGE_QUERY_SERVICE_LAZY_AUDITOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "crypto/counters.h"
#include "crypto/key_manager.h"
#include "crypto/recovered_digest_cache.h"
#include "edge/edge_server.h"
#include "edge/query_service/batch_verifier.h"
#include "edge/query_service/signed_top_memo.h"
#include "query/trust.h"

namespace vbtree {

/// One deferred-verification ticket: everything the auditor needs to
/// re-run the certified check later, exactly as it would have run
/// synchronously — the delivered rows, the VOs, the interned signature
/// pool (shared_ptr ref retained), the replica version the answer was
/// labeled with, and the logical key-freshness time of the original
/// query. Built by Client::QueryBatched under TrustMode::kLazy/kSampled,
/// one per coalesced batch group (per shard group when sharded).
struct AuditTicket {
  uint64_t id = 0;
  /// Digest-schema domain and audited-watermark key (shard-qualified for
  /// sharded tables; equals the client-facing table otherwise).
  std::string schema_table;
  /// Lineage shards (DESIGN.md §10): the digest-schema table name when it
  /// differs from schema_table — the shard inherited its split parent's
  /// digest domain. Empty = use schema_table.
  std::string digest_table;
  /// When true, VOs anchor at the shard binding signature: verify with
  /// Verifier::TopBinding{schema_table, bind_lo, bind_hi}.
  bool has_binding = false;
  int64_t bind_lo = 0;
  int64_t bind_hi = 0;
  Schema schema;
  HashAlgorithm algo = HashAlgorithm::kSha256;
  int modulus_bits = 128;
  /// Normalized queries, positional with resp.responses.
  std::vector<SelectQuery> queries;
  QueryBatchResponse resp;
  /// Logical time of the original query — key-version freshness is judged
  /// as of answer delivery, not audit time, so a key rotation between the
  /// two cannot retroactively alarm an honest answer.
  uint64_t now = 0;
  /// The edge server that produced this answer — alarm attribution, so
  /// an alarm sink (e.g. the EdgeDirector) can quarantine the offender
  /// and Expedite() can re-prioritize a suspect edge's pending tickets.
  std::string source;
  std::chrono::steady_clock::time_point issued_at;
};

/// Client-side background auditor for lazy-trust reads: drains deferred
/// tickets through the existing BatchVerifier and raises a tamper alarm —
/// carrying the offending query and its serialized VO — when a deferred
/// check fails. The detection window is the audit lag (docs/TRUST_MODEL.md).
///
/// The ticket queue is bounded: Submit blocks when it is full, so a slow
/// auditor backpressures the issuing client instead of growing memory
/// without bound. One background thread drains the queue; the verify
/// fan-out inside a ticket is BatchVerifier's (Options::verify_workers,
/// 0 = inline on the auditor thread).
///
/// Thread safety: Submit and every accessor are safe from any thread
/// (Clients are single-threaded but many Clients may share one auditor).
/// The shared RecoveredDigestCache is internally sharded and thread-safe;
/// the signed-top memo is auditor-thread-private.
class LazyAuditor {
 public:
  struct Options {
    /// Bounded ticket queue; Submit blocks (backpressure) at capacity.
    size_t queue_capacity = 256;
    /// Fraction of kSampled tickets audited, drawn per ticket in submit
    /// order from a deterministic seeded RNG (common/random.h) — the
    /// audited subset is exactly reproducible from the seed.
    double sample_fraction = 1.0;
    uint64_t sample_seed = 0x5eed;
    /// BatchVerifier workers for the per-ticket verify fan-out.
    size_t verify_workers = 0;
    /// Tests: hold queued tickets until ResumeForTest().
    bool start_paused = false;
  };

  /// A deferred check that failed: what a certified read would have
  /// rejected synchronously. Carries the evidence — the offending query,
  /// the serialized VO the edge shipped for it, and the replica version
  /// the answer claimed — so the alarm is actionable (replayable against
  /// the central server's public key by any third party).
  struct Alarm {
    uint64_t ticket_id = 0;
    std::string schema_table;
    /// The edge server whose answer failed the deferred check (the
    /// ticket's source) — who to quarantine.
    std::string source;
    SelectQuery query;
    std::vector<uint8_t> vo_bytes;
    uint64_t replica_version = 0;
    Status verification;
  };

  struct Stats {
    uint64_t tickets_enqueued = 0;
    uint64_t tickets_sampled_out = 0;  ///< kSampled tickets not audited
    uint64_t tickets_audited = 0;
    uint64_t queries_enqueued = 0;
    uint64_t queries_sampled_out = 0;
    uint64_t queries_audited = 0;
    uint64_t alarms = 0;
    /// Tickets moved to the queue front by Expedite().
    uint64_t expedited_tickets = 0;
    /// Submit-to-audited wall lag (the lazy-trust exposure window).
    uint64_t audit_lag_us_total = 0;
    uint64_t audit_lag_us_max = 0;
    /// Wall time spent inside deferred verification.
    uint64_t audit_us_total = 0;
    uint64_t top_memo_hits = 0;
    /// Auditor-side crypto work; add to the client's for whole-system
    /// recover-call accounting (same work as certified, later schedule).
    CryptoCounters crypto;
  };

  LazyAuditor(std::string db_name, KeyDirectory* keys, Options options);
  LazyAuditor(std::string db_name, KeyDirectory* keys)
      : LazyAuditor(std::move(db_name), keys, Options()) {}
  ~LazyAuditor();

  LazyAuditor(const LazyAuditor&) = delete;
  LazyAuditor& operator=(const LazyAuditor&) = delete;

  /// Shares a cross-batch recovered-digest cache (typically the issuing
  /// Client's): the cache is internally sharded and thread-safe, so the
  /// auditor's deferred recoveries warm the same entries the synchronous
  /// path reads.
  void set_digest_cache(std::shared_ptr<RecoveredDigestCache> cache);

  /// Enqueues one ticket. kSampled draws the seeded RNG (in submit order)
  /// and may drop the ticket after counting it; kLazy always audits.
  /// Blocks while the queue is full. Returns false after Shutdown (the
  /// ticket is dropped — the caller's answer was already delivered, so
  /// this only widens the exposure window, it never blocks delivery).
  bool Submit(AuditTicket ticket, TrustMode mode);

  /// Blocks until every accepted ticket has been audited. Call
  /// ResumeForTest() first if the auditor is paused.
  void Drain();

  /// Drains, then stops the worker. Idempotent; the destructor calls it.
  void Shutdown();

  void PauseForTest();
  void ResumeForTest();

  /// Highest replica version that has fully passed a deferred audit for
  /// this (shard-qualified) table — the lazy-mode monotonic-read
  /// watermark. Provisional answers never advance it; the issuing Client
  /// reads it to flag stale replicas on later provisional reads.
  uint64_t audited_watermark(const std::string& schema_table) const;

  /// Installs a push callback invoked (on the auditor thread, no auditor
  /// lock held) for every alarm as it is raised — the wiring that lets
  /// an EdgeDirector quarantine a lying edge without polling. Alarms are
  /// still retained for TakeAlarms(). The sink must be thread-safe and
  /// must not call back into the auditor except Expedite().
  void SetAlarmSink(std::function<void(const Alarm&)> sink);

  /// Moves every queued ticket from `source` to the front of the queue
  /// (stable among themselves): when an edge turns suspect, its
  /// remaining in-flight lazy answers are re-audited first, shrinking
  /// the exposure window exactly where the risk concentrates. Returns
  /// the number of tickets moved.
  size_t Expedite(const std::string& source);

  /// Removes and returns the alarms raised so far.
  std::vector<Alarm> TakeAlarms();
  size_t alarm_count() const;

  Stats stats() const;
  size_t backlog() const;

  /// Removes and returns the per-ticket audit-lag samples (microseconds),
  /// for percentile reporting in the bench.
  std::vector<uint64_t> TakeLagSamplesUs();

 private:
  void WorkerLoop();
  void AuditOne(AuditTicket ticket);  // runs on the worker thread, no lock

  const std::string db_name_;
  KeyDirectory* const keys_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable drained_;
  std::deque<AuditTicket> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  bool busy_ = false;  ///< worker is auditing a popped ticket
  uint64_t next_ticket_id_ = 1;
  Rng sample_rng_;
  Stats stats_;
  std::vector<Alarm> alarms_;
  std::function<void(const Alarm&)> alarm_sink_;
  std::vector<uint64_t> lag_samples_us_;
  std::map<std::string, uint64_t> audited_watermark_;
  std::shared_ptr<RecoveredDigestCache> digest_cache_;

  /// Auditor-thread-private (never touched under mu_).
  SignedTopMemo top_memo_;
  BatchVerifier verifier_;

  std::thread worker_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_QUERY_SERVICE_LAZY_AUDITOR_H_
