#ifndef VBTREE_EDGE_QUERY_SERVICE_QUERY_SERVICE_H_
#define VBTREE_EDGE_QUERY_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>

#include "common/thread_pool.h"
#include "edge/edge_server.h"

namespace vbtree {

struct QueryServiceOptions {
  /// Worker threads executing queries against the edge replica. Each
  /// in-flight execution pins one epoch slot on the tree it reads
  /// (olc::EpochReclaimer::kSlots per tree); pools sized past that
  /// ceiling still run correctly but excess readers spin-yield waiting
  /// for a pin slot (observable via EpochReclaimer::slot_waits()).
  size_t num_workers = 4;
  /// Bounded submission queue: at most this many requests waiting (in
  /// addition to the ones being executed).
  size_t queue_capacity = 1024;
  /// Queue-full behavior: throttle submitters or shed load with
  /// kResourceExhausted.
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Modeled per-request blocking stall (microseconds), charged inside
  /// the worker before execution. Emulates the backend I/O an edge
  /// request blocks on in deployment (replica page reads from local
  /// flash, NIC writeback) — the component a thread pool overlaps. The
  /// load driver uses it so worker-scaling behavior is observable
  /// independent of host core count; production configs leave it 0.
  uint64_t modeled_io_stall_us = 0;
};

/// Thread-pool-backed front end for one EdgeServer (the "absorb heavy
/// client traffic" role of Fig. 2): client requests enter a bounded
/// submission queue and are executed concurrently by a fixed worker pool.
///
/// Concurrency: the query path is latch-free. A worker briefly takes the
/// EdgeServer's directory lock (shared) only to pin the target replica,
/// then traverses the VB-tree optimistically (vb_tree.h §OLC) — K
/// workers walk the same tree concurrently, restarting the rare read a
/// writer overlapped instead of queuing behind a tree latch. The
/// DistributionHub's propagator takes the same directory lock
/// exclusively only for the pointer swap of a snapshot install; delta
/// replay holds no directory lock at all (per-replica replay_mu). There
/// is no lock ordering to maintain between the subsystems because no
/// path holds two of these locks at once.
///
/// Every submission is stamped on entry; per-request queue-wait and
/// execution time feed the service-level stats (and, for batches, the
/// response's BatchExecStats) — including OLC restart and latch-wait
/// telemetry — giving the closed-loop bench its contention picture.
class QueryService {
 public:
  struct Stats {
    uint64_t queries = 0;        ///< single queries completed
    uint64_t batches = 0;        ///< batches completed
    uint64_t batched_queries = 0;///< queries inside those batches
    /// Batched queries whose request carried a non-certified TrustMode
    /// (the client will answer first and audit asynchronously).
    /// Execution is identical — this only sizes the lazy traffic share.
    uint64_t lazy_queries = 0;
    uint64_t rejected = 0;       ///< submissions shed by backpressure
    uint64_t errors = 0;         ///< executions returning non-OK
    uint64_t queue_wait_us_total = 0;
    uint64_t queue_wait_us_max = 0;
    uint64_t exec_us_total = 0;
    /// Raw (self-contained) VO bytes — what v1 framing would have shipped.
    uint64_t vo_bytes_total = 0;
    /// VO bytes actually shipped under wire v2 (signature pool + pooled
    /// skeletons); only the bytes wire path contributes.
    uint64_t vo_wire_bytes_total = 0;
    /// Batched queries answered from the edge's VO cache.
    uint64_t vo_cache_hits = 0;
    uint64_t result_bytes_total = 0;
    /// Optimistic-read restarts across all batch executions (0 when no
    /// writer ever overlapped a traversal).
    uint64_t olc_restarts = 0;
    /// Microseconds spent yielding between restarts or blocking on the
    /// tree's pessimistic fallback latch, summed over batches.
    uint64_t latch_wait_us_total = 0;
  };

  explicit QueryService(EdgeServer* edge, QueryServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  EdgeServer* edge() const { return edge_; }

  /// Enqueues one query; the future resolves when a worker has executed
  /// it. Under kReject a full queue resolves the future immediately with
  /// kResourceExhausted (the request never reaches a worker).
  std::future<Result<QueryResponse>> Submit(SelectQuery query);

  /// Enqueues a batch; executed with shared traversals as one unit. The
  /// response's stats carry the measured queue wait.
  std::future<Result<QueryBatchResponse>> SubmitBatch(QueryBatch batch);

  /// Wire-path batch submission: request bytes in, response bytes out,
  /// still scheduled through the worker pool.
  std::future<Result<std::vector<uint8_t>>> SubmitBatchBytes(
      std::vector<uint8_t> request);

  /// Synchronous conveniences (submit + wait).
  Result<QueryResponse> Execute(SelectQuery query);
  Result<QueryBatchResponse> ExecuteBatch(QueryBatch batch);

  /// Stops accepting submissions, drains accepted work, joins workers.
  void Shutdown();

  size_t queue_depth() const { return pool_.queue_depth(); }
  size_t num_workers() const { return pool_.num_threads(); }
  Stats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  void ApplyStall() const;
  /// Records one completed execution into stats_. `batch_stats` (may be
  /// null for single queries / errors) contributes the VO byte and cache
  /// telemetry.
  void Account(uint64_t queue_wait_us, uint64_t exec_us, size_t queries,
               bool is_batch, uint64_t vo_bytes, uint64_t result_bytes,
               bool error, const BatchExecStats* batch_stats = nullptr,
               uint64_t lazy_queries = 0);

  EdgeServer* edge_;
  QueryServiceOptions options_;
  ThreadPool pool_;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_QUERY_SERVICE_QUERY_SERVICE_H_
