#include "edge/query_service/lazy_auditor.h"

#include <algorithm>
#include <utility>

#include "common/serde.h"

namespace vbtree {

namespace {

uint64_t MicrosSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

LazyAuditor::LazyAuditor(std::string db_name, KeyDirectory* keys,
                         Options options)
    : db_name_(std::move(db_name)),
      keys_(keys),
      options_(options),
      paused_(options.start_paused),
      sample_rng_(options.sample_seed),
      verifier_(BatchVerifier::Options{options.verify_workers}),
      worker_([this] { WorkerLoop(); }) {}

LazyAuditor::~LazyAuditor() { Shutdown(); }

void LazyAuditor::set_digest_cache(
    std::shared_ptr<RecoveredDigestCache> cache) {
  std::lock_guard lock(mu_);
  digest_cache_ = std::move(cache);
}

bool LazyAuditor::Submit(AuditTicket ticket, TrustMode mode) {
  std::unique_lock lock(mu_);
  if (stopping_) return false;
  ticket.id = next_ticket_id_++;
  // Only OK slots are auditable: an edge-reported per-query failure was
  // surfaced *unauthenticated* at delivery (same as certified mode), so
  // it neither needs nor can get a deferred check.
  size_t auditable = 0;
  for (const QueryResponse& qr : ticket.resp.responses) {
    if (qr.status.ok()) auditable++;
  }
  stats_.tickets_enqueued++;
  stats_.queries_enqueued += auditable;
  if (mode == TrustMode::kSampled &&
      sample_rng_.NextDouble() >= options_.sample_fraction) {
    // Counted, deliberately unaudited: kSampled trades coverage for
    // auditor bandwidth. The draw happens in submit order from the
    // seeded RNG, so the audited subset is exactly reproducible.
    stats_.tickets_sampled_out++;
    stats_.queries_sampled_out += auditable;
    return true;
  }
  not_full_.wait(lock, [&] {
    return stopping_ || queue_.size() < options_.queue_capacity;
  });
  if (stopping_) return false;
  queue_.push_back(std::move(ticket));
  not_empty_.notify_one();
  return true;
}

void LazyAuditor::Drain() {
  std::unique_lock lock(mu_);
  drained_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

void LazyAuditor::Shutdown() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    paused_ = false;
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
}

void LazyAuditor::PauseForTest() {
  std::lock_guard lock(mu_);
  paused_ = true;
}

void LazyAuditor::ResumeForTest() {
  std::lock_guard lock(mu_);
  paused_ = false;
  not_empty_.notify_all();
}

uint64_t LazyAuditor::audited_watermark(
    const std::string& schema_table) const {
  std::lock_guard lock(mu_);
  auto it = audited_watermark_.find(schema_table);
  return it == audited_watermark_.end() ? 0 : it->second;
}

std::vector<LazyAuditor::Alarm> LazyAuditor::TakeAlarms() {
  std::lock_guard lock(mu_);
  return std::exchange(alarms_, {});
}

size_t LazyAuditor::alarm_count() const {
  std::lock_guard lock(mu_);
  return alarms_.size();
}

LazyAuditor::Stats LazyAuditor::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

size_t LazyAuditor::backlog() const {
  std::lock_guard lock(mu_);
  return queue_.size() + (busy_ ? 1 : 0);
}

std::vector<uint64_t> LazyAuditor::TakeLagSamplesUs() {
  std::lock_guard lock(mu_);
  return std::exchange(lag_samples_us_, {});
}

void LazyAuditor::WorkerLoop() {
  std::unique_lock lock(mu_);
  for (;;) {
    not_empty_.wait(lock, [&] {
      return stopping_ || (!queue_.empty() && !paused_);
    });
    if (queue_.empty()) return;  // predicate held, so stopping_
    AuditTicket ticket = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    not_full_.notify_one();
    lock.unlock();
    AuditOne(std::move(ticket));
    lock.lock();
    busy_ = false;
    if (queue_.empty()) drained_.notify_all();
  }
}

void LazyAuditor::AuditOne(AuditTicket ticket) {
  const auto audit_start = std::chrono::steady_clock::now();
  std::shared_ptr<RecoveredDigestCache> cache;
  {
    std::lock_guard lock(mu_);
    cache = digest_cache_;
  }

  // The deferred check is the certified check, verbatim: same
  // DigestSchema, same BatchVerifier, same once-per-pool recovery, same
  // signed-top memo — only the schedule moved (DESIGN.md §9).
  DigestSchema ds(db_name_,
                  ticket.digest_table.empty() ? ticket.schema_table
                                              : ticket.digest_table,
                  ticket.schema, ticket.algo, ticket.modulus_bits);
  Verifier::TopBinding binding{ticket.schema_table, ticket.bind_lo,
                               ticket.bind_hi};
  QueryBatchResponse& resp = ticket.resp;

  std::vector<Alarm> new_alarms;
  CryptoCounters crypto;
  uint64_t memo_hits = 0;
  uint64_t audited = 0;

  auto make_alarm = [&](size_t i, Status why) {
    Alarm a;
    a.ticket_id = ticket.id;
    a.schema_table = ticket.schema_table;
    a.source = ticket.source;
    a.query = ticket.queries[i];
    ByteWriter w;
    resp.responses[i].vo.Serialize(&w);
    a.vo_bytes = w.TakeBuffer();
    a.replica_version = resp.replica_version;
    a.verification = std::move(why);
    new_alarms.push_back(std::move(a));
  };

  std::map<uint32_t, Result<std::shared_ptr<Recoverer>>> recoverers;
  std::vector<BatchVerifier::Job> jobs;
  std::vector<size_t> job_index;
  jobs.reserve(resp.responses.size());
  for (size_t i = 0; i < resp.responses.size(); ++i) {
    const QueryResponse& qr = resp.responses[i];
    if (!qr.status.ok()) continue;  // was delivered unauthenticated
    const uint32_t kv = qr.vo.key_version;
    auto rec_it = recoverers.find(kv);
    if (rec_it == recoverers.end()) {
      rec_it = recoverers.emplace(kv, keys_->RecovererFor(kv, ticket.now))
                   .first;
    }
    if (!rec_it->second.ok()) {
      // An answer signed under a key version the directory rejects (as
      // of delivery time) would have failed the certified check too.
      audited++;
      make_alarm(i, rec_it->second.status());
      continue;
    }
    BatchVerifier::Job job{&ticket.queries[i], &qr.rows, &qr.vo, nullptr};
    if (ticket.has_binding) job.binding = &binding;
    job.known_top = top_memo_.Lookup(ticket.schema_table,
                                     resp.replica_version, kv,
                                     qr.vo.signed_top);
    if (job.known_top != nullptr) memo_hits++;
    jobs.push_back(job);
    job_index.push_back(i);
  }

  if (!jobs.empty()) {
    // Per-key-version groups with the pool recovered once for the
    // dominant version — mirrors Client::VerifyBatchGroup.
    std::map<uint32_t, std::vector<size_t>> by_version;
    for (size_t j = 0; j < jobs.size(); ++j) {
      by_version[resp.responses[job_index[j]].vo.key_version].push_back(j);
    }
    uint32_t pool_kv = 0;
    size_t pool_kv_jobs = 0;
    for (const auto& [kv, group] : by_version) {
      if (group.size() > pool_kv_jobs) {
        pool_kv_jobs = group.size();
        pool_kv = kv;
      }
    }
    for (auto& [kv, group] : by_version) {
      Recoverer* rec = recoverers.at(kv).ValueOrDie().get();
      std::vector<BatchVerifier::Job> group_jobs;
      group_jobs.reserve(group.size());
      for (size_t j : group) group_jobs.push_back(jobs[j]);
      BatchVerifier::PoolContext ctx;
      ctx.pool = kv == pool_kv ? resp.sig_pool.get() : nullptr;
      ctx.cache = cache.get();
      ctx.cache_domain = kv;
      ctx.pool_counters = &crypto;
      std::vector<BatchVerifier::Outcome> outcomes =
          verifier_.VerifyAll(ds, rec, group_jobs, &ctx);
      for (size_t g = 0; g < group.size(); ++g) {
        const size_t i = job_index[group[g]];
        BatchVerifier::Outcome& out = outcomes[g];
        crypto.Add(out.counters);
        audited++;
        if (!out.verification.ok()) {
          make_alarm(i, std::move(out.verification));
        } else if (out.top_recovered) {
          top_memo_.Insert(ticket.schema_table, resp.replica_version, kv,
                           resp.responses[i].vo.signed_top, out.top_digest);
        }
      }
    }
  }

  const uint64_t audit_us = MicrosSince(audit_start);
  const uint64_t lag_us = MicrosSince(ticket.issued_at);

  std::function<void(const Alarm&)> sink;
  {
    std::lock_guard lock(mu_);
    stats_.tickets_audited++;
    stats_.queries_audited += audited;
    stats_.alarms += new_alarms.size();
    stats_.audit_lag_us_total += lag_us;
    stats_.audit_lag_us_max = std::max(stats_.audit_lag_us_max, lag_us);
    stats_.audit_us_total += audit_us;
    stats_.top_memo_hits += memo_hits;
    stats_.crypto.Add(crypto);
    lag_samples_us_.push_back(lag_us);
    if (new_alarms.empty() && audited > 0) {
      // The whole ticket re-certified: the replica version it was labeled
      // with is now an *audited* fact, so the lazy monotonic-read
      // watermark may advance (and only here — provisional answers never
      // move it).
      uint64_t& wm = audited_watermark_[ticket.schema_table];
      wm = std::max(wm, resp.replica_version);
    }
    for (const Alarm& a : new_alarms) alarms_.push_back(a);
    sink = alarm_sink_;
  }
  // Push alarms outside the auditor lock: the sink (typically an
  // EdgeDirector) may call straight back into Expedite().
  if (sink != nullptr) {
    for (const Alarm& a : new_alarms) sink(a);
  }
}

void LazyAuditor::SetAlarmSink(std::function<void(const Alarm&)> sink) {
  std::lock_guard lock(mu_);
  alarm_sink_ = std::move(sink);
}

size_t LazyAuditor::Expedite(const std::string& source) {
  std::lock_guard lock(mu_);
  std::deque<AuditTicket> expedited;
  std::deque<AuditTicket> rest;
  for (AuditTicket& t : queue_) {
    (t.source == source ? expedited : rest).push_back(std::move(t));
  }
  const size_t moved = expedited.size();
  if (moved > 0) {
    for (AuditTicket& t : rest) expedited.push_back(std::move(t));
    queue_ = std::move(expedited);
    stats_.expedited_tickets += moved;
  } else {
    queue_ = std::move(rest);
  }
  return moved;
}

}  // namespace vbtree
