#include "edge/query_service/batch_verifier.h"

#include <condition_variable>
#include <mutex>

#include "crypto/counting_recoverer.h"
#include "vbtree/verifier.h"

namespace vbtree {

BatchVerifier::BatchVerifier(Options options) : options_(options) {
  if (options_.num_workers > 0) {
    // Verification jobs are submitted from VerifyAll only, one call at a
    // time, so a blocking queue sized to the pool is plenty.
    pool_ = std::make_unique<ThreadPool>(ThreadPoolOptions{
        options_.num_workers, /*queue_capacity=*/1024, OverflowPolicy::kBlock});
  }
}

BatchVerifier::~BatchVerifier() = default;

BatchVerifier::Outcome BatchVerifier::RunJob(const DigestSchema& ds,
                                             Recoverer* recoverer,
                                             const Job& job) {
  Outcome out;
  CountingRecoverer counting(recoverer, &out.counters);
  DigestSchema job_ds = ds;  // per-job copy: counters sink is per-outcome
  Verifier verifier(std::move(job_ds), &counting);
  verifier.set_counters(&out.counters);
  out.verification = verifier.VerifySelect(*job.query, *job.rows, *job.vo);
  return out;
}

std::vector<BatchVerifier::Outcome> BatchVerifier::VerifyAll(
    const DigestSchema& ds, Recoverer* recoverer, std::span<const Job> jobs) {
  std::vector<Outcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  if (pool_ == nullptr || jobs.size() == 1) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      outcomes[i] = RunJob(ds, recoverer, jobs[i]);
    }
    return outcomes;
  }

  std::mutex mu;
  std::condition_variable done_cv;
  size_t remaining = jobs.size();
  for (size_t i = 0; i < jobs.size(); ++i) {
    Status submitted = pool_->Submit([&, i] {
      Outcome out = RunJob(ds, recoverer, jobs[i]);
      std::lock_guard lock(mu);
      outcomes[i] = std::move(out);
      if (--remaining == 0) done_cv.notify_one();
    });
    if (!submitted.ok()) {
      // Pool shut down mid-call: fall back to inline execution.
      Outcome out = RunJob(ds, recoverer, jobs[i]);
      std::lock_guard lock(mu);
      outcomes[i] = std::move(out);
      --remaining;
    }
  }
  std::unique_lock lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  return outcomes;
}

}  // namespace vbtree
