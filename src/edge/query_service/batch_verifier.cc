#include "edge/query_service/batch_verifier.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "crypto/counting_recoverer.h"

namespace vbtree {

BatchVerifier::BatchVerifier(Options options) : options_(options) {
  if (options_.num_workers > 0) {
    // Verification jobs are submitted from VerifyAll only, one call at a
    // time, so a blocking queue sized to the pool is plenty.
    pool_ = std::make_unique<ThreadPool>(ThreadPoolOptions{
        options_.num_workers, /*queue_capacity=*/1024, OverflowPolicy::kBlock});
  }
}

BatchVerifier::~BatchVerifier() = default;

namespace {

/// Resolves pool entries [begin, end): cache hit when possible, one
/// Recover otherwise (inserted back into the cache). Counter traffic
/// lands in the shared batch-level sink — safe, the fields are atomic.
void RecoverPoolRange(const SignaturePool& pool, Recoverer* recoverer,
                      RecoveredDigestCache* cache, uint64_t domain,
                      CryptoCounters* counters, size_t begin, size_t end,
                      std::vector<RecoveredSignature>* out) {
  for (size_t i = begin; i < end; ++i) {
    const Signature& sig = *pool.Get(i);
    RecoveredSignature& slot = (*out)[i];
    if (cache != nullptr &&
        cache->Lookup(domain, sig, &slot.digest, counters)) {
      continue;
    }
    if (counters != nullptr) CryptoCounters::Tick(counters->recovers);
    Result<Digest> d = recoverer->Recover(sig);
    if (!d.ok()) {
      slot.status = d.status();
      continue;
    }
    slot.digest = d.MoveValueUnsafe();
    if (cache != nullptr) cache->Insert(domain, sig, slot.digest, counters);
  }
}

}  // namespace

std::vector<RecoveredSignature> BatchVerifier::RecoverPool(
    Recoverer* recoverer, const PoolContext& ctx) {
  const SignaturePool& pool = *ctx.pool;
  std::vector<RecoveredSignature> recovered(pool.size());
  if (pool.size() == 0) return recovered;

  const size_t workers = pool_ != nullptr ? pool_->num_threads() : 0;
  // Fanning out only pays when there are enough entries to amortize the
  // submission round trip; small pools resolve inline.
  const size_t kMinPerWorker = 8;
  if (workers <= 1 || pool.size() < 2 * kMinPerWorker) {
    RecoverPoolRange(pool, recoverer, ctx.cache, ctx.cache_domain,
                     ctx.pool_counters, 0, pool.size(), &recovered);
    return recovered;
  }

  size_t chunks = std::min(workers, pool.size() / kMinPerWorker);
  if (chunks == 0) chunks = 1;
  const size_t per_chunk = (pool.size() + chunks - 1) / chunks;
  std::mutex mu;
  std::condition_variable done_cv;
  size_t remaining = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * per_chunk;
    const size_t end = std::min(pool.size(), begin + per_chunk);
    if (begin >= end) break;
    {
      std::lock_guard lock(mu);
      remaining++;
    }
    Status submitted = pool_->Submit([&, begin, end] {
      RecoverPoolRange(pool, recoverer, ctx.cache, ctx.cache_domain,
                       ctx.pool_counters, begin, end, &recovered);
      std::lock_guard lock(mu);
      if (--remaining == 0) done_cv.notify_one();
    });
    if (!submitted.ok()) {
      // Pool shut down mid-call: resolve this chunk inline.
      RecoverPoolRange(pool, recoverer, ctx.cache, ctx.cache_domain,
                       ctx.pool_counters, begin, end, &recovered);
      std::lock_guard lock(mu);
      --remaining;
    }
  }
  std::unique_lock lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  return recovered;
}

BatchVerifier::Outcome BatchVerifier::RunJob(
    const DigestSchema& ds, Recoverer* recoverer, const Job& job,
    std::span<const RecoveredSignature> recovered, const PoolContext* ctx) {
  Outcome out;
  CountingRecoverer counting(recoverer, &out.counters);
  DigestSchema job_ds = ds;  // per-job copy: counters sink is per-outcome
  Verifier verifier(std::move(job_ds), &counting);
  verifier.set_counters(&out.counters);
  verifier.set_recovered_pool(recovered);
  if (ctx != nullptr && ctx->cache != nullptr) {
    verifier.set_digest_cache(ctx->cache, ctx->cache_domain);
  }
  if (job.known_top != nullptr) verifier.set_known_top(job.known_top);
  if (job.binding != nullptr) verifier.set_top_binding(job.binding);
  out.verification = verifier.VerifySelect(*job.query, *job.rows, *job.vo);
  if (const Digest* top = verifier.recovered_top(); top != nullptr) {
    out.top_digest = *top;
    out.top_recovered = true;
  }
  return out;
}

std::vector<BatchVerifier::Outcome> BatchVerifier::VerifyAll(
    const DigestSchema& ds, Recoverer* recoverer, std::span<const Job> jobs,
    const PoolContext* ctx) {
  std::vector<Outcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  // Phase 1: recover the batch signature pool once, fanned across the
  // workers. Every pooled signature pays its Cost_s here exactly once no
  // matter how many VO references point at it.
  std::vector<RecoveredSignature> recovered;
  if (ctx != nullptr && ctx->pool != nullptr) {
    recovered = RecoverPool(recoverer, *ctx);
  }

  // Phase 2: per-query verification consuming the recovered pool.
  if (pool_ == nullptr || jobs.size() == 1) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      outcomes[i] = RunJob(ds, recoverer, jobs[i], recovered, ctx);
    }
    return outcomes;
  }

  std::mutex mu;
  std::condition_variable done_cv;
  size_t remaining = jobs.size();
  for (size_t i = 0; i < jobs.size(); ++i) {
    Status submitted = pool_->Submit([&, i] {
      Outcome out = RunJob(ds, recoverer, jobs[i], recovered, ctx);
      std::lock_guard lock(mu);
      outcomes[i] = std::move(out);
      if (--remaining == 0) done_cv.notify_one();
    });
    if (!submitted.ok()) {
      // Pool shut down mid-call: fall back to inline execution.
      Outcome out = RunJob(ds, recoverer, jobs[i], recovered, ctx);
      std::lock_guard lock(mu);
      outcomes[i] = std::move(out);
      --remaining;
    }
  }
  std::unique_lock lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  return outcomes;
}

}  // namespace vbtree
