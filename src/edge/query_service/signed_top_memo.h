#ifndef VBTREE_EDGE_QUERY_SERVICE_SIGNED_TOP_MEMO_H_
#define VBTREE_EDGE_QUERY_SERVICE_SIGNED_TOP_MEMO_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/recovered_digest_cache.h"

namespace vbtree {

/// Memo of signed-top recoveries per (shard, replica_version, key_version):
/// every VO of a batch answered at one watermark carries the same signed
/// root, so the root's Cost_s is paid once and replayed from here —
/// recovery is a pure function of the signature bytes given the key, so
/// replaying it is sound (DESIGN.md §6.3). Keeps the newest replica
/// versions per shard so propagation races (a lagging edge alternating
/// with a fresh one) don't thrash it.
///
/// Extracted from Client so the lazy-trust auditor reuses the same fast
/// path across *deferred* batches: tickets audited minutes apart but taken
/// at one watermark still share one top recovery. Not internally
/// synchronized — one memo per thread (the Client's, the auditor's).
class SignedTopMemo {
 public:
  /// Replica-version epochs kept per shard.
  static constexpr size_t kEpochs = 2;
  /// Entries per epoch; beyond this, inserts are dropped (a scan-heavy
  /// workload should not let the memo grow without bound).
  static constexpr size_t kMaxEntries = 4096;

  const Digest* Lookup(const std::string& table, uint64_t replica_version,
                       uint32_t key_version, const Signature& sig) const {
    auto t = epochs_.find(table);
    if (t == epochs_.end()) return nullptr;
    for (const Epoch& epoch : t->second) {
      if (epoch.replica_version != replica_version) continue;
      auto e = epoch.tops.find(sig);
      if (e != epoch.tops.end() && e->second.key_version == key_version) {
        return &e->second.digest;
      }
      return nullptr;
    }
    return nullptr;
  }

  void Insert(const std::string& table, uint64_t replica_version,
              uint32_t key_version, const Signature& sig,
              const Digest& digest) {
    std::vector<Epoch>& epochs = epochs_[table];
    Epoch* target = nullptr;
    for (Epoch& epoch : epochs) {
      if (epoch.replica_version == replica_version) {
        target = &epoch;
        break;
      }
    }
    if (target == nullptr) {
      // Keep the kEpochs numerically *highest* versions (not the most
      // recently seen): a batch from a lagging edge must not evict the
      // freshest epoch — surviving exactly that alternation is why more
      // than one epoch is kept.
      if (epochs.size() >= kEpochs &&
          replica_version < epochs.back().replica_version) {
        return;
      }
      auto pos = epochs.begin();
      while (pos != epochs.end() && pos->replica_version > replica_version) {
        ++pos;
      }
      pos = epochs.insert(pos, Epoch{replica_version, {}});
      if (epochs.size() > kEpochs) epochs.resize(kEpochs);
      target = &*pos;
    }
    if (target->tops.size() >= kMaxEntries) return;
    target->tops[sig] = Entry{key_version, digest};
  }

 private:
  /// One memoized recovery: the digest `sig` decrypts to under
  /// `key_version`.
  struct Entry {
    uint32_t key_version = 0;
    Digest digest;
  };
  /// Recoveries observed at one (shard's) replica version.
  struct Epoch {
    uint64_t replica_version = 0;
    std::unordered_map<Signature, Entry, SignatureHash> tops;
  };

  std::map<std::string, std::vector<Epoch>> epochs_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_QUERY_SERVICE_SIGNED_TOP_MEMO_H_
