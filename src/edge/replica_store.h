#ifndef VBTREE_EDGE_REPLICA_STORE_H_
#define VBTREE_EDGE_REPLICA_STORE_H_

#include <array>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "catalog/tuple.h"
#include "common/result.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

/// The tuple replica held by an edge server for one table shard: Rid →
/// tuple, addressed by the Rids embedded in the distributed VB-tree's
/// leaf entries. Being *unsecured* (§3.1), it exposes tamper hooks that
/// tests and examples use to play the hacked-edge-server role.
///
/// Thread-safe and striped: with latch-free VB-tree reads, query workers
/// fetch tuples while delta replay (the install writer) concurrently
/// Puts/Removes. The Rid index is split over kStripes shared-mutexed
/// shards so reader traffic doesn't serialize on one lock; the ordered
/// key index (range deletes seek in O(log n + k) instead of scanning)
/// has its own mutex, touched only by writers and tamper hooks.
///
/// Consistency with the tree is by publication order, not by locking:
/// replay Puts a tuple *before* the tree publishes the leaf entry that
/// points at it, and removes tuples only *after* the tree's delete
/// committed — so a tree traversal that validates its read set never
/// dereferences a Rid this store lacks (a NotFound under an
/// *invalidated* read is treated as interference and retried, never
/// reported).
class ReplicaStore {
 public:
  Status Put(const Rid& rid, Tuple tuple) {
    int64_t key = tuple.key();
    {
      Stripe& s = StripeFor(rid);
      std::unique_lock lock(s.mu);
      s.by_rid[Pack(rid)] = std::move(tuple);
    }
    std::unique_lock lock(key_mu_);
    rid_by_key_[key] = rid;
    return Status::OK();
  }

  Result<Tuple> Get(const Rid& rid) const {
    const Stripe& s = StripeFor(rid);
    std::shared_lock lock(s.mu);
    auto it = s.by_rid.find(Pack(rid));
    if (it == s.by_rid.end()) return Status::NotFound("no replica tuple at rid");
    return it->second;
  }

  size_t size() const {
    size_t n = 0;
    for (const Stripe& s : stripes_) {
      std::shared_lock lock(s.mu);
      n += s.by_rid.size();
    }
    return n;
  }

  /// Tampers with a stored attribute value — the "hacker modified the data
  /// at the edge" scenario the VO must expose.
  Status TamperByKey(int64_t key, size_t col, Value v) {
    Rid rid;
    {
      std::shared_lock lock(key_mu_);
      auto it = rid_by_key_.find(key);
      if (it == rid_by_key_.end()) {
        return Status::NotFound("no tuple with key");
      }
      rid = it->second;
    }
    Stripe& s = StripeFor(rid);
    std::unique_lock lock(s.mu);
    auto it = s.by_rid.find(Pack(rid));
    if (it == s.by_rid.end()) return Status::NotFound("no tuple with key");
    Tuple& t = it->second;
    if (col >= t.num_values()) {
      return Status::InvalidArgument("column out of range");
    }
    t.set_value(col, std::move(v));
    return Status::OK();
  }

  /// Removes all tuples with keys in [lo, hi] (delta-replay of a range
  /// delete); returns how many were removed. O(log n + k): the ordered
  /// key index seeks to lo and walks only the doomed run.
  size_t RemoveKeyRange(int64_t lo, int64_t hi) {
    size_t removed = 0;
    std::unique_lock lock(key_mu_);
    auto it = rid_by_key_.lower_bound(lo);
    while (it != rid_by_key_.end() && it->first <= hi) {
      Stripe& s = StripeFor(it->second);
      {
        std::unique_lock stripe_lock(s.mu);
        s.by_rid.erase(Pack(it->second));
      }
      it = rid_by_key_.erase(it);
      removed++;
    }
    return removed;
  }

  /// Adapter for VBTree::ExecuteSelect.
  VBTree::TupleFetcher Fetcher() const {
    return [this](const Rid& rid) { return Get(rid); };
  }

 private:
  static constexpr size_t kStripes = 16;

  struct Stripe {
    mutable std::shared_mutex mu;
    std::unordered_map<uint64_t, Tuple> by_rid;
  };

  static uint64_t Pack(const Rid& rid) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(rid.page_id)) << 16) |
           rid.slot;
  }

  Stripe& StripeFor(const Rid& rid) const {
    // Fibonacci-hash the packed rid so sequentially allocated rids spread
    // across stripes; >> 60 yields exactly [0, 16).
    return stripes_[(Pack(rid) * 0x9E3779B97F4A7C15ull) >> 60];
  }

  mutable std::array<Stripe, kStripes> stripes_;
  /// Ordered: RemoveKeyRange seeks instead of scanning. Writer + tamper
  /// traffic only — the query hot path never touches it.
  mutable std::shared_mutex key_mu_;
  std::map<int64_t, Rid> rid_by_key_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_REPLICA_STORE_H_
