#ifndef VBTREE_EDGE_REPLICA_STORE_H_
#define VBTREE_EDGE_REPLICA_STORE_H_

#include <map>
#include <unordered_map>

#include "catalog/tuple.h"
#include "common/result.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

/// The tuple replica held by an edge server for one table shard: Rid →
/// tuple, addressed by the Rids embedded in the distributed VB-tree's
/// leaf entries. Being *unsecured* (§3.1), it exposes tamper hooks that
/// tests and examples use to play the hacked-edge-server role.
///
/// The key index is an ordered map so range deletes (delta replay of
/// DeleteRange ops) cost O(log n + k) instead of scanning every key the
/// replica holds — under per-shard delta streams the same op volume
/// replays against many small replicas, and the full-scan erase was the
/// dominant replay cost.
class ReplicaStore {
 public:
  Status Put(const Rid& rid, Tuple tuple) {
    int64_t key = tuple.key();
    by_rid_[Pack(rid)] = std::move(tuple);
    rid_by_key_[key] = rid;
    return Status::OK();
  }

  Result<Tuple> Get(const Rid& rid) const {
    auto it = by_rid_.find(Pack(rid));
    if (it == by_rid_.end()) return Status::NotFound("no replica tuple at rid");
    return it->second;
  }

  size_t size() const { return by_rid_.size(); }

  /// Tampers with a stored attribute value — the "hacker modified the data
  /// at the edge" scenario the VO must expose.
  Status TamperByKey(int64_t key, size_t col, Value v) {
    auto it = rid_by_key_.find(key);
    if (it == rid_by_key_.end()) return Status::NotFound("no tuple with key");
    Tuple& t = by_rid_[Pack(it->second)];
    if (col >= t.num_values()) {
      return Status::InvalidArgument("column out of range");
    }
    t.set_value(col, std::move(v));
    return Status::OK();
  }

  /// Removes all tuples with keys in [lo, hi] (delta-replay of a range
  /// delete); returns how many were removed. O(log n + k): the ordered
  /// key index seeks to lo and walks only the doomed run.
  size_t RemoveKeyRange(int64_t lo, int64_t hi) {
    size_t removed = 0;
    auto it = rid_by_key_.lower_bound(lo);
    while (it != rid_by_key_.end() && it->first <= hi) {
      by_rid_.erase(Pack(it->second));
      it = rid_by_key_.erase(it);
      removed++;
    }
    return removed;
  }

  /// Adapter for VBTree::ExecuteSelect.
  VBTree::TupleFetcher Fetcher() const {
    return [this](const Rid& rid) { return Get(rid); };
  }

 private:
  static uint64_t Pack(const Rid& rid) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(rid.page_id)) << 16) |
           rid.slot;
  }

  std::unordered_map<uint64_t, Tuple> by_rid_;
  /// Ordered: RemoveKeyRange seeks instead of scanning.
  std::map<int64_t, Rid> rid_by_key_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_REPLICA_STORE_H_
