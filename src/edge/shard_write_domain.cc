#include "edge/shard_write_domain.h"

#include <algorithm>
#include <utility>

namespace vbtree {

ShardWriteDomain::ShardWriteDomain(std::string name, Options options)
    : name_(std::move(name)),
      options_(options),
      depth_hist_(options.queue_capacity + 1, 0),
      worker_([this] { WorkerLoop(); }) {
  recent_keys_.reserve(options_.recent_key_window);
}

ShardWriteDomain::~ShardWriteDomain() { Seal(); }

Result<std::future<Status>> ShardWriteDomain::Enqueue(Op op) {
  std::unique_lock lock(mu_);
  not_full_.wait(lock, [&] {
    return sealed_ || queue_.size() < options_.queue_capacity;
  });
  if (sealed_) {
    return Status::ResourceExhausted("write domain " + name_ +
                                     " is sealed (shard retiring)");
  }
  Pending p;
  p.op = std::move(op);
  std::future<Status> fut = p.done.get_future();
  queue_.push_back(std::move(p));
  ops_enqueued_++;
  const size_t depth = queue_.size();
  depth_peak_ = std::max(depth_peak_, depth);
  depth_hist_[std::min(depth, options_.queue_capacity)]++;
  not_empty_.notify_one();
  return fut;
}

Status ShardWriteDomain::Execute(Op op) {
  VBT_ASSIGN_OR_RETURN(std::future<Status> done, Enqueue(std::move(op)));
  return done.get();
}

void ShardWriteDomain::Pause() {
  std::unique_lock lock(mu_);
  if (sealed_) return;
  paused_ = true;
  idle_.wait(lock, [&] { return !busy_; });
}

void ShardWriteDomain::Resume() {
  std::lock_guard lock(mu_);
  paused_ = false;
  not_empty_.notify_one();
}

void ShardWriteDomain::Drain() {
  std::unique_lock lock(mu_);
  idle_.wait(lock, [&] { return queue_.empty() && !busy_; });
}

void ShardWriteDomain::Seal() {
  {
    std::unique_lock lock(mu_);
    sealed_ = true;
    paused_ = false;  // a sealed domain must drain
    not_empty_.notify_all();
    not_full_.notify_all();
    idle_.wait(lock, [&] { return queue_.empty() && !busy_; });
  }
  // Exactly one caller joins; Seal is called under external serialization
  // (SplitShard holds dml_mu_; the destructor is the last owner).
  if (worker_.joinable()) worker_.join();
}

void ShardWriteDomain::RecordInsertKey(int64_t key) {
  std::lock_guard lock(mu_);
  if (options_.recent_key_window == 0) return;
  if (recent_keys_.size() < options_.recent_key_window) {
    recent_keys_.push_back(key);
  } else {
    recent_keys_[recent_pos_] = key;
    recent_full_ = true;
  }
  recent_pos_ = (recent_pos_ + 1) % options_.recent_key_window;
}

std::vector<int64_t> ShardWriteDomain::RecentInsertKeys() const {
  std::lock_guard lock(mu_);
  return recent_keys_;
}

ShardWriteDomain::Stats ShardWriteDomain::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.ops_enqueued = ops_enqueued_;
  s.ops_applied = ops_applied_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  s.queue_depth_peak = depth_peak_;
  s.sealed = sealed_;
  // p99 of depth-at-enqueue: smallest depth covering 99% of samples.
  const uint64_t total = ops_enqueued_;
  if (total > 0) {
    const uint64_t target = total - total / 100;  // ceil(0.99 * total)
    uint64_t seen = 0;
    for (size_t d = 0; d < depth_hist_.size(); ++d) {
      seen += depth_hist_[d];
      if (seen >= target) {
        s.queue_depth_p99 = d;
        break;
      }
    }
  }
  return s;
}

void ShardWriteDomain::WorkerLoop() {
  std::unique_lock lock(mu_);
  for (;;) {
    not_empty_.wait(lock, [&] {
      return (!queue_.empty() && !paused_) || sealed_;
    });
    if (queue_.empty()) {
      if (sealed_) {
        idle_.notify_all();
        return;
      }
      continue;
    }
    if (paused_ && !sealed_) continue;
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    not_full_.notify_one();
    lock.unlock();
    Status s = p.op();
    // Count before resolving the future: a caller that saw its Execute
    // return must also see the op in ops_applied (the policy thread and
    // tests read the counter right after synchronous DML).
    ops_applied_.fetch_add(1, std::memory_order_relaxed);
    p.done.set_value(std::move(s));
    lock.lock();
    busy_ = false;
    if (queue_.empty() || paused_) idle_.notify_all();
  }
}

}  // namespace vbtree
