#ifndef VBTREE_EDGE_SHARD_WRITE_DOMAIN_H_
#define VBTREE_EDGE_SHARD_WRITE_DOMAIN_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"

namespace vbtree {

/// The per-shard write pipeline of the central server (DESIGN.md §10):
/// one bounded FIFO queue drained by one dedicated worker thread that
/// owns all mutation of the shard's heap, VB-tree and update log. Every
/// shard having its own domain is what turns the central server's write
/// path from "one trusted writer" into "one trusted writer *per shard*"
/// — signing (the dominant insert cost) proceeds in parallel across
/// shards while each shard's op stream stays strictly ordered, which is
/// exactly the property delta propagation needs (a shard's UpdateLog is
/// its domain's execution order, verbatim).
///
/// Ordering contract:
///  - Within a domain: ops apply in enqueue order (single worker, FIFO).
///  - Across domains: no global order. A cross-shard operation (e.g. a
///    DeleteRange spanning shards) fences by enqueueing one clamped op
///    per overlapping domain and waiting on all futures — each shard's
///    log records the op at that shard's own sequence point.
///
/// Lifecycle:
///  - Pause()/Resume(): temporary quiescence for operations that must
///    observe (or re-sign) the shard at a clean op boundary — key
///    rotation, bulk load, view materialization. Pause blocks until the
///    in-flight op completes; queued ops are retained and run on Resume.
///  - Seal(): final. Refuses new ops, drains the queue, joins the
///    worker. Used by SplitShard (the shard is being retired — writers
///    that race the seal get kResourceExhausted from Enqueue and re-resolve
///    the owning shard from the post-split layout) and at shutdown.
///
/// The queue is bounded: Enqueue blocks while full, so a slow signer
/// backpressures the producers instead of growing memory without bound.
/// Telemetry (ops, queue depth peak/p99, recent insert keys) feeds the
/// contention-driven auto-split policy and the write-mix bench.
class ShardWriteDomain {
 public:
  /// One queued mutation. Runs on the domain worker; its Status resolves
  /// the future Enqueue returned. Ops must be self-contained (they may
  /// take the shard's own latches but never a lock an *enqueueing*
  /// thread can hold while waiting on a domain future — that is the
  /// deadlock-freedom rule for Pause/Seal/Drain).
  using Op = std::function<Status()>;

  struct Options {
    /// Enqueue blocks (backpressure) at this depth.
    size_t queue_capacity = 1024;
    /// Ring of recent insert keys kept for the split-point heuristic
    /// ("split where the traffic is": the policy thread splits a hot
    /// shard at the median of its recent insert keys, not at the median
    /// of its stored keys).
    size_t recent_key_window = 256;
  };

  struct Stats {
    uint64_t ops_enqueued = 0;
    uint64_t ops_applied = 0;
    size_t queue_depth = 0;       ///< now
    size_t queue_depth_peak = 0;  ///< max depth ever observed at enqueue
    size_t queue_depth_p99 = 0;   ///< p99 of depth-at-enqueue samples
    bool sealed = false;
  };

  ShardWriteDomain(std::string name, Options options);
  explicit ShardWriteDomain(std::string name)
      : ShardWriteDomain(std::move(name), Options()) {}
  ~ShardWriteDomain();  ///< Seals (drains + joins) if not already sealed.

  ShardWriteDomain(const ShardWriteDomain&) = delete;
  ShardWriteDomain& operator=(const ShardWriteDomain&) = delete;

  const std::string& name() const { return name_; }

  /// Appends an op; the future resolves with the op's Status once the
  /// worker has applied it. Blocks while the queue is full. Returns
  /// kResourceExhausted once sealed (the caller re-resolves the owning shard:
  /// a sealed domain means the shard is being split away).
  Result<std::future<Status>> Enqueue(Op op);

  /// Enqueue + wait: the synchronous convenience used by callers that
  /// need the op's result before proceeding.
  Status Execute(Op op);

  /// Blocks until the worker is idle; queued ops are held until
  /// Resume(). Idempotent. No-op after Seal.
  void Pause();
  void Resume();

  /// Blocks until the queue is empty and the worker is idle (Resume
  /// first if paused, or Drain waits forever).
  void Drain();

  /// Final: refuse new ops, drain everything already queued, join the
  /// worker. Idempotent; safe to call concurrently with Enqueue.
  void Seal();

  /// Telemetry hooks (called by the op bodies / read by the policy
  /// thread and stats surface).
  void RecordInsertKey(int64_t key);
  /// The retained recent-insert-key window, unordered.
  std::vector<int64_t> RecentInsertKeys() const;

  /// Lock-free: the policy thread polls this per window to compute
  /// per-shard traffic deltas.
  uint64_t ops_applied() const {
    return ops_applied_.load(std::memory_order_relaxed);
  }

  Stats stats() const;

 private:
  struct Pending {
    Op op;
    std::promise<Status> done;
  };

  void WorkerLoop();

  const std::string name_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::deque<Pending> queue_;
  bool sealed_ = false;
  bool paused_ = false;
  bool busy_ = false;  ///< worker is applying a popped op

  uint64_t ops_enqueued_ = 0;
  std::atomic<uint64_t> ops_applied_{0};
  size_t depth_peak_ = 0;
  /// Histogram of queue depth observed at each enqueue (depth clamped to
  /// queue_capacity); p99 is computed by walking it. Fixed-size so the
  /// hot path is an array increment under mu_ it already holds.
  std::vector<uint64_t> depth_hist_;

  std::vector<int64_t> recent_keys_;  ///< ring buffer
  size_t recent_pos_ = 0;
  bool recent_full_ = false;

  std::thread worker_;
};

}  // namespace vbtree

#endif  // VBTREE_EDGE_SHARD_WRITE_DOMAIN_H_
