#ifndef VBTREE_EDGE_EDGE_SERVER_H_
#define VBTREE_EDGE_EDGE_SERVER_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "edge/network.h"
#include "edge/partition_map.h"
#include "edge/replica_store.h"
#include "query/predicate.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

/// How a compromised edge server mangles query responses (test/demo
/// hooks). Data-level tampering lives in ReplicaStore::TamperByKey; these
/// modes corrupt the response after honest execution.
enum class ResponseTamper {
  kNone,
  /// Flip a value in the first result row (leaves the VO untouched).
  kModifyValue,
  /// Append a fabricated copy of the last row.
  kInjectRow,
  /// Silently drop the last result row.
  kDropRow,
  /// Omit the last shard group from a sharded (scatter-gather) batch
  /// response — the "hide a whole shard's answers" attack the signed
  /// PartitionMap exists to expose.
  kDropShardGroup,
};

/// A query answer as shipped from edge to client.
struct QueryResponse {
  /// Per-query outcome inside a batch (wire v2): a slot whose query
  /// failed validation or execution carries its status here with empty
  /// rows/VO, so one bad predicate does not poison its batch siblings.
  /// Note the status is asserted by the *untrusted* edge — a lying edge
  /// suppressing an answer this way is equivalent to a transport error,
  /// and the client surfaces it unverified (it can never make a wrong
  /// answer authenticate).
  Status status = Status::OK();
  std::vector<ResultRow> rows;
  VerificationObject vo;
  /// Version of the replica that served the answer (monotone per table;
  /// §3.4): lets clients detect an edge serving staler data than one
  /// they already read from.
  uint64_t replica_version = 0;
  /// Exact byte sizes of the two response components as serialized.
  size_t result_bytes = 0;
  size_t vo_bytes = 0;
};

/// Batch-level execution telemetry, shipped with the coalesced response
/// (and extended with queue timings by the QueryService).
struct BatchExecStats {
  /// Microseconds the batch waited in the QueryService submission queue
  /// before a worker picked it up (0 when executed directly).
  uint64_t queue_wait_us = 0;
  /// Microseconds of edge-side execution (traversal + VO building).
  uint64_t exec_us = 0;
  /// VO-skeleton nodes visited across the whole batch.
  uint64_t nodes_visited = 0;
  /// Replica-store tuple reads, and how many more were served from the
  /// batch-wide memo instead (shared-traversal savings).
  uint64_t tuple_fetches = 0;
  uint64_t shared_fetch_hits = 0;
  uint64_t total_result_bytes = 0;
  /// Raw (self-contained, v1-equivalent) VO bytes summed over the batch —
  /// what the batch would have cost without signature interning.
  uint64_t total_vo_bytes = 0;
  /// Actual VO wire cost under v2: the signature pool plus every
  /// pool-referencing skeleton. 0 when the response never hit the wire
  /// (in-process dispatch) or was shipped as v1.
  uint64_t vo_wire_bytes = 0;
  /// Distinct signatures interned into the batch pool (v2 only).
  uint64_t sig_pool_entries = 0;
  /// Queries in this batch answered from the edge's VO cache (skipping
  /// BuildVONode entirely).
  uint64_t vo_cache_hits = 0;
  /// Optimistic-read restarts the batch's latch-free tree traversals
  /// needed (0 on a quiesced replica).
  uint64_t olc_restarts = 0;
  /// Microseconds spent yielding between restarts or blocking on the
  /// tree's pessimistic fallback latch — the residual contention the
  /// latch-free read path leaves (0 on a quiesced replica).
  uint64_t latch_wait_us = 0;

  /// Folds another group's stats in (sharded responses aggregate their
  /// per-shard groups; queue_wait is batch-level, so the max wins).
  void Accumulate(const BatchExecStats& o) {
    queue_wait_us = queue_wait_us > o.queue_wait_us ? queue_wait_us
                                                    : o.queue_wait_us;
    exec_us += o.exec_us;
    nodes_visited += o.nodes_visited;
    tuple_fetches += o.tuple_fetches;
    shared_fetch_hits += o.shared_fetch_hits;
    total_result_bytes += o.total_result_bytes;
    total_vo_bytes += o.total_vo_bytes;
    vo_wire_bytes += o.vo_wire_bytes;
    sig_pool_entries += o.sig_pool_entries;
    vo_cache_hits += o.vo_cache_hits;
    olc_restarts += o.olc_restarts;
    latch_wait_us += o.latch_wait_us;
  }
};

/// The coalesced answer to a QueryBatch: positional responses — all
/// answered from ONE tree state, hence a single replica version — plus
/// batch-level stats.
struct QueryBatchResponse {
  std::vector<QueryResponse> responses;
  uint64_t replica_version = 0;
  BatchExecStats stats;
  /// The batch's signature pool, retained by the wire-v2 deserializer so
  /// the client's BatchVerifier can recover every distinct signature once
  /// and have the VOs consume the digests by pool index. Null when the
  /// response was built in-process or arrived as v1. Shared because
  /// QueryBatchResponse is moved around while verification jobs hold
  /// pool-index references into it.
  std::shared_ptr<const SignaturePool> sig_pool;
};

/// One shard's coalesced answers inside a scatter-gather batch response:
/// `resp` is positional over the shard's slice queries of the scatter
/// plan (partition_map.h), which both ends derive from the same signed
/// map.
struct ShardBatchGroup {
  uint32_t shard_id = 0;
  QueryBatchResponse resp;
};

/// The edge's answer to a batch over a sharded table: the signed map the
/// edge scattered under (the client re-verifies it — signature, epoch
/// floor — before trusting the layout), plus one group per planned
/// shard, ascending by shard index. The scatter resolves every shard
/// replica under one brief table-map lock, then each group executes
/// latch-free against its pinned replica — each group's answers carry
/// the exact tree version its validated reads reflect.
struct ShardedQueryBatchResponse {
  std::shared_ptr<const std::vector<uint8_t>> map_bytes;
  std::vector<ShardBatchGroup> groups;
  BatchExecStats stats;  ///< aggregate over groups
};

/// Client-side decode of a sharded batch response: the parsed (not yet
/// trusted) map, the scatter plan recomputed from it, and the per-group
/// responses. Group count and shard ids are validated against the plan
/// during decode, so an edge omitting (or duplicating) a shard's answers
/// is rejected as kCorruption before verification even starts.
struct ShardedBatchDecoded {
  PartitionMap map;
  std::vector<uint8_t> map_bytes;
  std::vector<ShardScatter> plan;
  std::vector<ShardBatchGroup> groups;  ///< positional with `plan`
};

/// An unsecured proxy server at the network edge (Fig. 2): holds replicas
/// of table *shards* and their VB-trees, plus each table's signed
/// PartitionMap; executes select-project(-join-view) queries, routing
/// through the map when a query names the base table; and builds a
/// verification object for every answer. It cannot sign anything — all
/// signatures in its replicas came from the central server.
///
/// Thread-safe, latch-free on the query path: `mu_` guards only the
/// table/map directory and is held for microseconds — to resolve names
/// to shared_ptr replicas (queries, shared) or to swap a replica in
/// (snapshot install, exclusive). Query execution itself runs OUTSIDE
/// `mu_` against the pinned replica: the VB-tree's optimistic lock
/// coupling (vb_tree.h) lets any number of batches traverse concurrently
/// with delta replay, each answer validated against — and labeled with —
/// one exact tree version. Delta replay serializes per replica on its
/// own `replay_mu` and never blocks readers; a replica swapped out by a
/// snapshot install stays alive (shared_ptr) until its in-flight batches
/// finish against the old consistent state.
class EdgeServer {
 public:
  explicit EdgeServer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Installs (or replaces) a shard replica from a central-server
  /// snapshot. Map-gated: when a PartitionMap for the shard's base table
  /// is installed, the shard must appear in it — a stale pre-split shard
  /// (or one from a layout this edge has moved past) is rejected with
  /// kInvalidArgument. Tables with no installed map (direct test use)
  /// are accepted ungated.
  Status InstallSnapshot(Slice snapshot);

  /// Installs a table's signed PartitionMap (shipped by the hub ahead of
  /// shard data). Epoch-monotone: an older epoch than the installed one
  /// is rejected; a newer one replaces it and drops shard replicas that
  /// are no longer in the layout (their cached proofs go with them).
  Status InstallPartitionMap(Slice map_bytes);

  /// The installed map's serialized bytes (clients fetch + verify these
  /// to learn the scatter layout), or kNotFound. Shared, not copied:
  /// the steady-state client re-check is a byte compare against its
  /// cached verified map.
  Result<std::shared_ptr<const std::vector<uint8_t>>> PartitionMapBytes(
      const std::string& table) const;

  /// Epoch of the installed map for `table`, or 0 when none.
  uint64_t MapEpoch(const std::string& table) const;

  /// Applies a serialized UpdateBatch (delta propagation, §3.4): each op
  /// is replayed structurally against the shard replica tree, with the
  /// central server's signatures spliced in. Version-gated: fails with
  /// kInvalidArgument unless the batch starts exactly at the replica's
  /// version (the propagation hub then catches the replica up with a
  /// full snapshot). Thread-safe and non-blocking for readers: replay
  /// serializes on the replica's own replay_mu while queries keep
  /// traversing latch-free — the tree's OLC protocol guarantees every
  /// concurrent answer reflects exactly one pre- or post-op version.
  Status ApplyUpdateBatch(Slice batch);

  /// Current replica version of shard `table` (number of ops applied
  /// since its snapshot lineage began), or 0 if absent.
  uint64_t TableVersion(const std::string& table) const;

  bool HasTable(const std::string& table) const {
    std::shared_lock lock(mu_);
    return tables_.count(table) != 0;
  }

  /// Executes a query against local replicas and builds the VO. A query
  /// naming a base table with an installed map is routed to the owning
  /// shard when its range lies within one shard; a range spanning
  /// several shards must be scattered by the caller (kInvalidArgument).
  Result<QueryResponse> HandleQuery(const SelectQuery& query) const;

  /// Full wire path: parse request bytes, execute, serialize response.
  Result<std::vector<uint8_t>> HandleQueryBytes(Slice request) const;

  /// Executes a QueryBatch against one directly-addressed replica with
  /// shared traversals (latch-free, batch-wide tuple memo) and builds
  /// the coalesced response. `bypass_vo_cache` skips the VO cache
  /// (bench hook: measure tree execution, not response memoization).
  Result<QueryBatchResponse> HandleQueryBatch(
      const QueryBatch& batch, bool bypass_vo_cache = false) const;

  /// Scatter-gather execution of a batch naming a base table with an
  /// installed map: the batch is partitioned per-shard by the
  /// deterministic scatter plan; one brief directory-lock acquisition
  /// pins every planned shard replica, then all groups execute
  /// latch-free with the usual shared traversals (each group gets its
  /// own batch-wide tuple memo).
  Result<ShardedQueryBatchResponse> HandleQueryBatchSharded(
      const QueryBatch& batch, bool bypass_vo_cache = false) const;

  /// Full wire path for batches, for callers that bypass a QueryService
  /// (direct dispatch): the response's queue_wait_us is 0 by definition.
  /// Queued dispatch goes through QueryService::SubmitBatchBytes, which
  /// stamps the measured wait into the serialized stats. Dispatches to
  /// the direct (v2) or sharded (v3) layout by how `batch.table`
  /// resolves.
  Result<std::vector<uint8_t>> HandleQueryBatchBytes(Slice request) const;

  /// Shared body of the bytes paths: executes `batch` (direct or
  /// sharded) and serializes the response, stamping `queue_wait_us` and
  /// reporting the serialization-time wire stats.
  Result<std::vector<uint8_t>> ExecuteBatchToWire(
      const QueryBatch& batch, uint64_t queue_wait_us,
      BatchExecStats* wire_stats) const;

  // --- hacked-server hooks ---
  /// Tampers a stored value; `table` may be a shard name or a mapped
  /// base table (routed to the owning shard).
  Status TamperValueByKey(const std::string& table, int64_t key, size_t col,
                          Value v);
  void set_response_tamper(ResponseTamper mode) { response_tamper_ = mode; }

  /// The replica tree (introspection for tests).
  const VBTree* tree(const std::string& table) const;

  /// VO-cache telemetry for one table (all-zero when the table is
  /// unknown or never queried).
  struct VOCacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
    /// Wholesale flushes caused by snapshot/delta installs (version
    /// bumps) — the invalidation rule that makes stale proofs impossible.
    uint64_t invalidations = 0;
  };
  VOCacheStats vo_cache_stats(const std::string& table) const;

 private:
  struct TableReplica {
    Schema schema;
    ReplicaStore store;
    std::unique_ptr<VBTree> tree;
    /// Serializes delta replay against this replica (install writers);
    /// never taken by the query path — readers run latch-free against
    /// the tree and the striped store. The replica version lives in the
    /// tree itself (tree->version()), so there is no separate counter a
    /// replayer and a reader could see out of sync.
    std::mutex replay_mu;
  };

  struct InstalledMap {
    PartitionMap map;
    std::shared_ptr<const std::vector<uint8_t>> bytes;
  };

  /// One memoized honest query output (rows + VO) plus its serialized
  /// sizes, computed once at insert so cache hits never re-serialize the
  /// VO just for byte accounting.
  struct CachedQuery {
    QueryOutput out;
    size_t result_bytes = 0;
    size_t vo_bytes = 0;
  };

  /// Edge-side VO cache: memoizes whole honest query outputs keyed by
  /// the normalized query fingerprint, valid for exactly one replica
  /// version. Every snapshot install / delta replay bumps the version
  /// and flushes the table's cache wholesale, so a cached proof can
  /// never outlive the tree state it was built from. Entries are
  /// shared_ptr-held so concurrent readers copy without holding the
  /// cache mutex during the (comparatively expensive) clone.
  struct VOCache {
    std::map<std::string, std::shared_ptr<const CachedQuery>> entries;
    uint64_t version = 0;  ///< replica version the entries were built at
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
  };

  void ApplyResponseTamper(QueryResponse* resp) const;

  /// Body of one coalesced batch against a pinned `replica`; runs
  /// entirely outside mu_ (latch-free tree traversals). `table` is the
  /// replica's (shard) name — the VO-cache key space. VO-cache hits are
  /// taken at the version observed on entry and discarded if concurrent
  /// replay moved the tree before the misses executed, so the coalesced
  /// response always carries ONE consistent replica version.
  /// `bypass_vo_cache` skips the cache entirely (bench hook: measures
  /// tree work, not memoization).
  Result<QueryBatchResponse> ExecuteBatchOnReplica(
      const std::string& table, const TableReplica& replica,
      std::span<const SelectQuery> queries, bool bypass_vo_cache) const;

  /// Wraps a successful execution output as a cache entry, computing the
  /// serialized sizes once.
  static std::shared_ptr<const CachedQuery> MakeCachedQuery(QueryOutput out);
  /// Builds the response served from a cache entry (rows copy + VO clone,
  /// tamper hook, byte accounting from the memoized sizes).
  QueryResponse ResponseFromCached(const CachedQuery& entry,
                                   uint64_t replica_version) const;

  /// Fills results[i] with the entry for keys[i] at `version` (nullptr on
  /// miss), taking the cache mutex once for the whole batch.
  void VOCacheLookupBatch(
      const std::string& table, const std::vector<std::string>& keys,
      uint64_t version,
      std::vector<std::shared_ptr<const CachedQuery>>* results) const;
  std::shared_ptr<const CachedQuery> VOCacheLookup(const std::string& table,
                                                   const std::string& key,
                                                   uint64_t version) const;
  void VOCacheInsertBatch(
      const std::string& table, uint64_t version,
      std::vector<std::pair<std::string, std::shared_ptr<const CachedQuery>>>
          entries) const;
  void VOCacheInsert(const std::string& table, const std::string& key,
                     uint64_t version,
                     std::shared_ptr<const CachedQuery> entry) const;
  /// Flushes one table's cache (install paths; exclusive latch held).
  void VOCacheFlush(const std::string& table) const;

  std::string name_;
  /// Directory lock only (tables_/maps_ lookups and swaps) — held for
  /// microseconds, never across query execution or delta replay.
  mutable std::shared_mutex mu_;
  /// Shard replicas, keyed by distribution name ("t" or "t#3").
  /// shared_ptr so the query path can pin a replica and drop mu_ before
  /// executing; a snapshot install swaps the map entry and the old
  /// replica dies when its last in-flight batch completes.
  std::map<std::string, std::shared_ptr<TableReplica>> tables_;
  /// Installed partition maps, keyed by base table name.
  std::map<std::string, InstalledMap> maps_;
  /// Guarded by its own mutex (not mu_): lookups/inserts happen under the
  /// shared latch from many query workers at once.
  mutable std::mutex vo_cache_mu_;
  mutable std::map<std::string, VOCache> vo_caches_;
  ResponseTamper response_tamper_ = ResponseTamper::kNone;
};

/// Builds the cache fingerprint of a normalized query: range, conditions
/// and projection (the table is the cache's own key). Exposed for tests.
std::string VOCacheKey(const SelectQuery& q);

/// Serializes a QueryResponse (rows block + VO block) and computes the
/// per-component sizes.
void SerializeQueryResponse(const QueryResponse& resp, ByteWriter* w);
Result<QueryResponse> DeserializeQueryResponse(
    ByteReader* r, const Schema& schema, const std::vector<size_t>& projection);

/// Batch response wire versions, selected by the leading version byte.
enum class BatchWire : uint8_t {
  /// Self-contained VOs (the original layout behind a version byte).
  /// Cannot carry per-query statuses or the signature pool.
  kV1 = 1,
  /// Batch-level signature pool + pool-referencing VOs + per-query
  /// statuses + extended stats trailer.
  kV2 = 2,
  /// Scatter-gather over a sharded table: the signed map bytes followed
  /// by one embedded v2 response per planned shard group.
  kSharded = 3,
};

/// Batch response wire format: version byte, replica version once, (v2) a
/// batch-level signature pool, positional status/rows/VO blocks, stats
/// trailer. Deserialization needs the (normalized) queries the batch was
/// built from, for the per-query projections, and validates that the
/// response count equals the query count (kCorruption otherwise — an
/// untrusted edge must not be able to drive positional indexing out of
/// bounds). The trailer's vo_wire_bytes / sig_pool_entries fields are
/// computed during serialization from what actually hit the wire.
/// `wire_stats`, when supplied, receives a copy of resp.stats with the
/// serialization-time vo_wire_bytes / sig_pool_entries filled in (the
/// serving side's accounting hook; the receiving side gets the same
/// numbers from the trailer).
void SerializeQueryBatchResponse(const QueryBatchResponse& resp, ByteWriter* w,
                                 BatchWire wire = BatchWire::kV2,
                                 BatchExecStats* wire_stats = nullptr);
Result<QueryBatchResponse> DeserializeQueryBatchResponse(
    ByteReader* r, const Schema& schema,
    const std::vector<SelectQuery>& queries);

/// Sharded (v3) batch response framing: version byte, the serialized
/// signed map, then per-group shard id + embedded v2 response.
/// `wire_stats` receives the group-aggregated serialization-time stats.
void SerializeShardedQueryBatchResponse(const ShardedQueryBatchResponse& resp,
                                        ByteWriter* w,
                                        BatchExecStats* wire_stats = nullptr);

/// Decodes a v3 response against the original (normalized, base-table)
/// `queries`: parses the embedded map, recomputes the scatter plan from
/// it, and validates group count / shard ids / per-group response counts
/// against the plan — an edge omitting a shard's answers fails here with
/// kCorruption. The map itself is NOT authenticated here; the caller
/// (Client) must Verify() it before trusting the layout.
Result<ShardedBatchDecoded> DeserializeShardedQueryBatchResponse(
    ByteReader* r, const Schema& schema,
    const std::vector<SelectQuery>& queries);

}  // namespace vbtree

#endif  // VBTREE_EDGE_EDGE_SERVER_H_
