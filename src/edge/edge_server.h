#ifndef VBTREE_EDGE_EDGE_SERVER_H_
#define VBTREE_EDGE_EDGE_SERVER_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>

#include "edge/network.h"
#include "edge/replica_store.h"
#include "query/predicate.h"
#include "vbtree/vb_tree.h"

namespace vbtree {

/// How a compromised edge server mangles query responses (test/demo
/// hooks). Data-level tampering lives in ReplicaStore::TamperByKey; these
/// modes corrupt the response after honest execution.
enum class ResponseTamper {
  kNone,
  /// Flip a value in the first result row (leaves the VO untouched).
  kModifyValue,
  /// Append a fabricated copy of the last row.
  kInjectRow,
  /// Silently drop the last result row.
  kDropRow,
};

/// A query answer as shipped from edge to client.
struct QueryResponse {
  std::vector<ResultRow> rows;
  VerificationObject vo;
  /// Version of the replica that served the answer (monotone per table;
  /// §3.4): lets clients detect an edge serving staler data than one
  /// they already read from.
  uint64_t replica_version = 0;
  /// Exact byte sizes of the two response components as serialized.
  size_t result_bytes = 0;
  size_t vo_bytes = 0;
};

/// Batch-level execution telemetry, shipped with the coalesced response
/// (and extended with queue timings by the QueryService).
struct BatchExecStats {
  /// Microseconds the batch waited in the QueryService submission queue
  /// before a worker picked it up (0 when executed directly).
  uint64_t queue_wait_us = 0;
  /// Microseconds of edge-side execution (traversal + VO building).
  uint64_t exec_us = 0;
  /// VO-skeleton nodes visited across the whole batch.
  uint64_t nodes_visited = 0;
  /// Replica-store tuple reads, and how many more were served from the
  /// batch-wide memo instead (shared-traversal savings).
  uint64_t tuple_fetches = 0;
  uint64_t shared_fetch_hits = 0;
  uint64_t total_result_bytes = 0;
  uint64_t total_vo_bytes = 0;
};

/// The coalesced answer to a QueryBatch: positional responses — all
/// answered from ONE tree state, hence a single replica version — plus
/// batch-level stats.
struct QueryBatchResponse {
  std::vector<QueryResponse> responses;
  uint64_t replica_version = 0;
  BatchExecStats stats;
};

/// An unsecured proxy server at the network edge (Fig. 2): holds replicas
/// of tables and their VB-trees, executes select-project(-join-view)
/// queries, and builds a verification object for every answer. It cannot
/// sign anything — all signatures in its replicas came from the central
/// server.
///
/// Thread-safe: queries run under a shared latch; snapshot installation
/// (update propagation) takes it exclusively, so in-flight queries finish
/// against the old replica before it is swapped out.
class EdgeServer {
 public:
  explicit EdgeServer(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Installs (or replaces) a table replica from a central-server
  /// snapshot.
  Status InstallSnapshot(Slice snapshot);

  /// Applies a serialized UpdateBatch (delta propagation, §3.4): each op
  /// is replayed structurally against the replica tree, with the central
  /// server's signatures spliced in. Version-gated: fails with
  /// kInvalidArgument unless the batch starts exactly at the replica's
  /// version (the propagation hub then catches the replica up with a
  /// full snapshot). Thread-safe: replay takes the exclusive latch, so
  /// in-flight queries finish against the old state first.
  Status ApplyUpdateBatch(Slice batch);

  /// Current replica version of `table` (number of ops applied since its
  /// snapshot lineage began), or 0 if absent.
  uint64_t TableVersion(const std::string& table) const;

  bool HasTable(const std::string& table) const {
    std::shared_lock lock(mu_);
    return tables_.count(table) != 0;
  }

  /// Executes a query against local replicas and builds the VO.
  Result<QueryResponse> HandleQuery(const SelectQuery& query) const;

  /// Full wire path: parse request bytes, execute, serialize response.
  Result<std::vector<uint8_t>> HandleQueryBytes(Slice request) const;

  /// Executes a QueryBatch with shared traversals (one latch acquisition,
  /// batch-wide tuple memo) and builds the coalesced response.
  Result<QueryBatchResponse> HandleQueryBatch(const QueryBatch& batch) const;

  /// Full wire path for batches, for callers that bypass a QueryService
  /// (direct dispatch): the response's queue_wait_us is 0 by definition.
  /// Queued dispatch goes through QueryService::SubmitBatchBytes, which
  /// stamps the measured wait into the serialized stats.
  Result<std::vector<uint8_t>> HandleQueryBatchBytes(Slice request) const;

  // --- hacked-server hooks ---
  Status TamperValueByKey(const std::string& table, int64_t key, size_t col,
                          Value v);
  void set_response_tamper(ResponseTamper mode) { response_tamper_ = mode; }

  /// The replica tree (introspection for tests).
  const VBTree* tree(const std::string& table) const;

 private:
  struct TableReplica {
    Schema schema;
    ReplicaStore store;
    std::unique_ptr<VBTree> tree;
    uint64_t version = 0;
  };

  void ApplyResponseTamper(QueryResponse* resp) const;

  std::string name_;
  mutable std::shared_mutex mu_;
  std::map<std::string, TableReplica> tables_;
  ResponseTamper response_tamper_ = ResponseTamper::kNone;
};

/// Serializes a QueryResponse (rows block + VO block) and computes the
/// per-component sizes.
void SerializeQueryResponse(const QueryResponse& resp, ByteWriter* w);
Result<QueryResponse> DeserializeQueryResponse(
    ByteReader* r, const Schema& schema, const std::vector<size_t>& projection);

/// Batch response wire format: replica version once, positional
/// rows+VO blocks, stats trailer. Deserialization needs the (normalized)
/// queries the batch was built from, for the per-query projections.
void SerializeQueryBatchResponse(const QueryBatchResponse& resp,
                                 ByteWriter* w);
Result<QueryBatchResponse> DeserializeQueryBatchResponse(
    ByteReader* r, const Schema& schema,
    const std::vector<SelectQuery>& queries);

}  // namespace vbtree

#endif  // VBTREE_EDGE_EDGE_SERVER_H_
