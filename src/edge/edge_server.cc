#include "edge/edge_server.h"

#include <chrono>

#include "edge/propagation/update_log.h"
#include "query/query_serde.h"

namespace vbtree {

namespace {
constexpr uint32_t kSnapshotMagic = 0x50414E53;  // "SNAP"

/// Per-table VO-cache capacity; at the cap the table's entries are
/// dropped wholesale (hot ranges repopulate within a few requests, and
/// a simple policy keeps the query hot path free of eviction bookkeeping).
constexpr size_t kVOCacheMaxEntries = 1024;

/// Splits a replica name into (base table, shard id): "t#3" → ("t", 3),
/// plain "t" → ("t", 0) — id 0 is the sole shard of an unsplit table.
void SplitReplicaName(const std::string& name, std::string* base,
                      uint32_t* shard_id) {
  if (!PartitionMap::ParseShardName(name, base, shard_id)) {
    *base = name;
    *shard_id = 0;
  }
}
}  // namespace

std::string VOCacheKey(const SelectQuery& q) {
  // The serialized normalized query (minus the redundant table name — the
  // cache is per table) is a canonical fingerprint of range, conditions
  // and projection; sharing the batch framing's encoder keeps the
  // fingerprint complete if SelectQuery ever grows a field.
  ByteWriter w(64);
  SerializeSelectQuerySansTable(q, &w);
  return std::string(reinterpret_cast<const char*>(w.buffer().data()),
                     w.size());
}

Status EdgeServer::InstallSnapshot(Slice snapshot) {
  ByteReader r(snapshot);
  // Parse fully before taking the exclusive latch.
  VBT_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kSnapshotMagic) return Status::Corruption("bad snapshot magic");
  VBT_ASSIGN_OR_RETURN(std::string table, r.ReadString());
  VBT_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(&r));

  auto replica = std::make_shared<TableReplica>();
  replica->schema = schema;
  VBT_ASSIGN_OR_RETURN(uint64_t n, r.ReadCount());
  for (uint64_t i = 0; i < n; ++i) {
    Rid rid;
    VBT_ASSIGN_OR_RETURN(uint32_t page, r.ReadU32());
    rid.page_id = static_cast<int32_t>(page);
    VBT_ASSIGN_OR_RETURN(rid.slot, r.ReadU16());
    VBT_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(&r, schema));
    VBT_RETURN_NOT_OK(replica->store.Put(rid, std::move(t)));
  }
  // Edge replicas have no signer: updates are rejected locally and must be
  // routed to the central server (§3.4). The tree carries its replica
  // version end-to-end.
  VBT_ASSIGN_OR_RETURN(replica->tree, VBTree::Deserialize(&r, nullptr));
  {
    std::unique_lock lock(mu_);
    // Map gating: once a PartitionMap is installed for the base table,
    // only shards of the *current* layout may be installed — a pre-split
    // shard snapshot cannot resurrect a retired layout on this edge.
    std::string base;
    uint32_t shard_id = 0;
    SplitReplicaName(table, &base, &shard_id);
    auto m = maps_.find(base);
    if (m != maps_.end() && m->second.map.FindShard(shard_id) == nullptr) {
      return Status::InvalidArgument(
          "snapshot of shard '" + table +
          "' is not in the installed partition map (epoch " +
          std::to_string(m->second.map.epoch) + ")");
    }
    // Swap, don't mutate: in-flight batches pinned the old replica and
    // finish against its (still consistent) state; the old shared_ptr
    // dies with the last of them.
    tables_[table] = std::move(replica);
  }
  // Version bump: cached proofs were built from the replaced tree state
  // and must never be served again.
  VOCacheFlush(table);
  return Status::OK();
}

Status EdgeServer::InstallPartitionMap(Slice map_bytes) {
  ByteReader r(map_bytes);
  VBT_ASSIGN_OR_RETURN(PartitionMap map, PartitionMap::Deserialize(&r));
  auto bytes = std::make_shared<const std::vector<uint8_t>>(
      map_bytes.data(), map_bytes.data() + map_bytes.size());
  std::vector<std::string> dropped;
  {
    std::unique_lock lock(mu_);
    auto it = maps_.find(map.table);
    if (it != maps_.end() && it->second.map.epoch > map.epoch) {
      return Status::InvalidArgument(
          "stale partition map epoch " + std::to_string(map.epoch) +
          " for '" + map.table + "' (installed epoch " +
          std::to_string(it->second.map.epoch) + ")");
    }
    // Retire replicas that left the layout; their cached proofs go too.
    for (auto t = tables_.begin(); t != tables_.end();) {
      std::string base;
      uint32_t shard_id = 0;
      SplitReplicaName(t->first, &base, &shard_id);
      if (base == map.table && map.FindShard(shard_id) == nullptr) {
        dropped.push_back(t->first);
        t = tables_.erase(t);
      } else {
        ++t;
      }
    }
    const std::string table = map.table;
    maps_[table] = InstalledMap{std::move(map), std::move(bytes)};
  }
  for (const std::string& name : dropped) VOCacheFlush(name);
  return Status::OK();
}

Result<std::shared_ptr<const std::vector<uint8_t>>>
EdgeServer::PartitionMapBytes(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = maps_.find(table);
  if (it == maps_.end()) {
    return Status::NotFound("no partition map installed for " + table);
  }
  return it->second.bytes;
}

uint64_t EdgeServer::MapEpoch(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = maps_.find(table);
  return it == maps_.end() ? 0 : it->second.map.epoch;
}

Status EdgeServer::ApplyUpdateBatch(Slice batch_bytes) {
  ByteReader r(batch_bytes);
  auto schema_for = [this](const std::string& table) -> Result<Schema> {
    std::shared_lock lock(mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("no replica of " + table);
    return it->second->schema;
  };
  VBT_ASSIGN_OR_RETURN(UpdateBatch batch,
                       UpdateBatch::Deserialize(&r, schema_for));
  std::shared_ptr<TableReplica> replica;
  {
    std::shared_lock lock(mu_);
    auto it = tables_.find(batch.table);
    if (it == tables_.end()) {
      return Status::NotFound("no replica of " + batch.table);
    }
    replica = it->second;
  }
  // Replay runs OUTSIDE the directory lock: queries keep traversing
  // latch-free while ops commit one at a time (the tree's OLC protocol
  // restarts any reader a commit overlapped). replay_mu only serializes
  // replayers against each other.
  std::lock_guard replay(replica->replay_mu);
  if (replica->tree->version() != batch.from_version) {
    return Status::InvalidArgument(
        "delta version gap: replica at " +
        std::to_string(replica->tree->version()) + ", batch starts at " +
        std::to_string(batch.from_version) + " (request a full snapshot)");
  }
  // Replay mutates the tree from the first op on: flush the VO cache
  // before touching anything, so even a mid-replay failure cannot leave
  // proofs of the pre-delta state behind. (Entries are version-keyed, so
  // a concurrent batch racing this flush still cannot serve a stale
  // proof — the flush is for telemetry and memory, the version key is
  // the correctness mechanism.)
  VOCacheFlush(batch.table);
  for (const UpdateOp& op : batch.ops) {
    std::deque<Signature> feed(op.resigned.begin(), op.resigned.end());
    if (op.kind == UpdateOp::Kind::kInsert) {
      // Store before tree: the tuple must be fetchable by the time the
      // tree publishes the leaf entry pointing at it.
      VBT_RETURN_NOT_OK(replica->store.Put(op.rid, op.tuple));
      VBT_RETURN_NOT_OK(
          replica->tree->ReplayInsert(op.tuple, op.rid, op.material, &feed));
    } else {
      // Tree before store: readers can only reach the doomed tuples
      // through envelopes the delete's commit invalidates.
      VBT_RETURN_NOT_OK(replica->tree->ReplayDeleteRange(op.lo, op.hi, &feed));
      replica->store.RemoveKeyRange(op.lo, op.hi);
    }
    if (!feed.empty()) {
      return Status::Corruption("delta replay diverged: unused signatures");
    }
  }
  if (replica->tree->version() != batch.to_version) {
    return Status::Corruption("delta replay diverged: replica version " +
                              std::to_string(replica->tree->version()) +
                              " != batch to_version " +
                              std::to_string(batch.to_version));
  }
  return Status::OK();
}

uint64_t EdgeServer::TableVersion(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second->tree->version();
}

std::shared_ptr<const EdgeServer::CachedQuery> EdgeServer::MakeCachedQuery(
    QueryOutput out) {
  auto entry = std::make_shared<CachedQuery>();
  entry->out = std::move(out);
  for (const ResultRow& row : entry->out.rows) {
    entry->result_bytes += row.SerializedSize();
  }
  entry->vo_bytes = entry->out.vo.SerializedSize();
  return entry;
}

QueryResponse EdgeServer::ResponseFromCached(const CachedQuery& entry,
                                             uint64_t replica_version) const {
  QueryResponse resp;
  resp.rows = entry.out.rows;
  resp.vo = entry.out.vo.Clone();
  resp.replica_version = replica_version;
  // Tamper modes touch rows only, so the memoized VO size always holds;
  // row bytes are recomputed only when a tamper hook actually ran.
  resp.vo_bytes = entry.vo_bytes;
  if (response_tamper_ == ResponseTamper::kNone ||
      response_tamper_ == ResponseTamper::kDropShardGroup) {
    resp.result_bytes = entry.result_bytes;
  } else {
    ApplyResponseTamper(&resp);
    for (const ResultRow& row : resp.rows) {
      resp.result_bytes += row.SerializedSize();
    }
  }
  return resp;
}

void EdgeServer::VOCacheLookupBatch(
    const std::string& table, const std::vector<std::string>& keys,
    uint64_t version,
    std::vector<std::shared_ptr<const CachedQuery>>* results) const {
  results->assign(keys.size(), nullptr);
  std::lock_guard guard(vo_cache_mu_);
  VOCache& cache = vo_caches_[table];
  if (cache.version != version) {
    cache.misses += keys.size();
    return;
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    auto it = cache.entries.find(keys[i]);
    if (it == cache.entries.end()) {
      cache.misses++;
    } else {
      cache.hits++;
      (*results)[i] = it->second;
    }
  }
}

std::shared_ptr<const EdgeServer::CachedQuery> EdgeServer::VOCacheLookup(
    const std::string& table, const std::string& key, uint64_t version) const {
  std::lock_guard guard(vo_cache_mu_);
  VOCache& cache = vo_caches_[table];
  if (cache.version != version) {
    cache.misses++;
    return nullptr;
  }
  auto it = cache.entries.find(key);
  if (it == cache.entries.end()) {
    cache.misses++;
    return nullptr;
  }
  cache.hits++;
  return it->second;
}

void EdgeServer::VOCacheInsertBatch(
    const std::string& table, uint64_t version,
    std::vector<std::pair<std::string, std::shared_ptr<const CachedQuery>>>
        entries) const {
  if (entries.empty()) return;
  std::lock_guard guard(vo_cache_mu_);
  VOCache& cache = vo_caches_[table];
  if (cache.version != version) {
    // First entries at a new version (or a racing stale insert): the map
    // only ever holds entries of ONE version.
    cache.entries.clear();
    cache.version = version;
  }
  for (auto& [key, entry] : entries) {
    if (cache.entries.size() >= kVOCacheMaxEntries) cache.entries.clear();
    cache.entries.insert_or_assign(key, std::move(entry));
  }
}

void EdgeServer::VOCacheInsert(const std::string& table,
                               const std::string& key, uint64_t version,
                               std::shared_ptr<const CachedQuery> entry) const {
  std::vector<std::pair<std::string, std::shared_ptr<const CachedQuery>>> one;
  one.emplace_back(key, std::move(entry));
  VOCacheInsertBatch(table, version, std::move(one));
}

void EdgeServer::VOCacheFlush(const std::string& table) const {
  std::lock_guard guard(vo_cache_mu_);
  auto it = vo_caches_.find(table);
  if (it == vo_caches_.end()) return;
  it->second.entries.clear();
  it->second.invalidations++;
}

EdgeServer::VOCacheStats EdgeServer::vo_cache_stats(
    const std::string& table) const {
  std::lock_guard guard(vo_cache_mu_);
  auto it = vo_caches_.find(table);
  if (it == vo_caches_.end()) return VOCacheStats{};
  return VOCacheStats{it->second.hits, it->second.misses,
                      it->second.entries.size(), it->second.invalidations};
}

Result<QueryResponse> EdgeServer::HandleQuery(const SelectQuery& query) const {
  std::string resolved = query.table;
  std::shared_ptr<TableReplica> replica;
  {
    std::shared_lock lock(mu_);
    auto it = tables_.find(query.table);
    if (it == tables_.end()) {
      // Route through the table's partition map: a base-table query whose
      // range lies within one shard executes against that shard replica; a
      // spanning range must be scattered by the caller (it needs one VO
      // per shard anyway).
      auto m = maps_.find(query.table);
      if (m == maps_.end()) {
        return Status::NotFound("edge server has no replica of " +
                                query.table);
      }
      std::vector<size_t> owners =
          m->second.map.ShardIndicesForRange(query.range);
      if (owners.empty()) {
        return Status::InvalidArgument("empty key range");
      }
      if (owners.size() > 1) {
        return Status::InvalidArgument(
            "range spans " + std::to_string(owners.size()) + " shards of '" +
            query.table + "'; scatter one query per shard");
      }
      resolved = m->second.map.shard_name(owners[0]);
      it = tables_.find(resolved);
      if (it == tables_.end()) {
        return Status::NotFound("shard replica not installed: " + resolved);
      }
    }
    replica = it->second;
  }
  // Execution runs on the pinned replica outside the directory lock.
  SelectQuery norm = query;
  norm.table = resolved;
  norm.NormalizeProjection();
  const std::string cache_key = VOCacheKey(norm);
  const uint64_t v0 = replica->tree->version();
  std::shared_ptr<const CachedQuery> cached =
      VOCacheLookup(resolved, cache_key, v0);
  uint64_t served_version = v0;
  if (cached == nullptr) {
    VBT_ASSIGN_OR_RETURN(QueryOutput out, replica->tree->ExecuteSelect(
                                              norm, replica->store.Fetcher()));
    // The validated read labels the answer with its exact tree version
    // (== v0 unless replay advanced the tree mid-flight).
    served_version = out.read_version;
    cached = MakeCachedQuery(std::move(out));
    VOCacheInsert(resolved, cache_key, served_version, cached);
  }
  return ResponseFromCached(*cached, served_version);
}

void EdgeServer::ApplyResponseTamper(QueryResponse* resp) const {
  switch (response_tamper_) {
    case ResponseTamper::kNone:
    case ResponseTamper::kDropShardGroup:
      return;
    case ResponseTamper::kModifyValue:
      if (!resp->rows.empty() && resp->rows[0].values.size() > 1) {
        resp->rows[0].values[1] = Value::Str("__tampered__");
      }
      return;
    case ResponseTamper::kInjectRow:
      if (!resp->rows.empty()) {
        ResultRow fake = resp->rows.back();
        fake.key += 1;
        fake.values[0] = Value::Int(fake.key);
        resp->rows.push_back(std::move(fake));
      }
      return;
    case ResponseTamper::kDropRow:
      if (!resp->rows.empty()) resp->rows.pop_back();
      return;
  }
}

Result<QueryBatchResponse> EdgeServer::ExecuteBatchOnReplica(
    const std::string& table, const TableReplica& replica,
    std::span<const SelectQuery> queries, bool bypass_vo_cache) const {
  const auto start = std::chrono::steady_clock::now();

  // VO-cache pass: hot ranges skip BuildVONode entirely. Execution is
  // latch-free, so the replica version CAN move between the lookup and
  // the miss execution; hits taken at v0 are kept only if the misses
  // also answered at v0 — otherwise the whole batch re-executes, so the
  // coalesced response always reflects ONE tree version.
  const size_t n = queries.size();
  const uint64_t v0 = replica.tree->version();
  std::vector<std::string> cache_keys(n);
  std::vector<std::shared_ptr<const CachedQuery>> cached(n, nullptr);
  uint64_t cache_hits = 0;
  std::vector<SelectQuery> miss_queries;
  std::vector<size_t> miss_index;
  if (!bypass_vo_cache) {
    for (size_t i = 0; i < n; ++i) {
      SelectQuery norm = queries[i];
      norm.NormalizeProjection();
      cache_keys[i] = VOCacheKey(norm);
    }
    VOCacheLookupBatch(table, cache_keys, v0, &cached);
  }
  for (size_t i = 0; i < n; ++i) {
    if (cached[i] != nullptr) {
      cache_hits++;
    } else {
      miss_queries.push_back(queries[i]);
      miss_index.push_back(i);
    }
  }

  VBBatchStats tree_stats;
  std::vector<QueryOutput> miss_outs;
  uint64_t label = v0;
  if (!miss_queries.empty()) {
    VBT_ASSIGN_OR_RETURN(
        miss_outs,
        replica.tree->ExecuteSelectBatch(miss_queries, replica.store.Fetcher(),
                                         &tree_stats));
    label = tree_stats.read_version;
    if (cache_hits > 0 && label != v0) {
      // Concurrent replay moved the tree between the cache lookup (v0)
      // and the miss execution (label): the mixed answer would span two
      // versions. Drop the hits and re-execute the full batch at one
      // label — rare (requires a mid-batch commit), and the re-run's
      // work is counted in the stats like any other execution.
      cached.assign(n, nullptr);
      cache_hits = 0;
      miss_queries.assign(queries.begin(), queries.end());
      miss_index.resize(n);
      for (size_t i = 0; i < n; ++i) miss_index[i] = i;
      VBBatchStats rerun_stats;
      VBT_ASSIGN_OR_RETURN(
          miss_outs, replica.tree->ExecuteSelectBatch(
                         miss_queries, replica.store.Fetcher(), &rerun_stats));
      tree_stats.nodes_visited += rerun_stats.nodes_visited;
      tree_stats.tuple_fetches += rerun_stats.tuple_fetches;
      tree_stats.shared_fetch_hits += rerun_stats.shared_fetch_hits;
      tree_stats.olc_restarts += rerun_stats.olc_restarts;
      tree_stats.latch_wait_us += rerun_stats.latch_wait_us;
      label = rerun_stats.read_version;
    }
  }
  std::vector<std::pair<std::string, std::shared_ptr<const CachedQuery>>>
      inserts;
  inserts.reserve(miss_outs.size());
  for (size_t m = 0; m < miss_outs.size(); ++m) {
    // Only honest, successful outputs are worth memoizing; failed slots
    // are cheap to recompute and carry no proof.
    if (miss_outs[m].status.ok()) {
      auto owned = MakeCachedQuery(std::move(miss_outs[m]));
      cached[miss_index[m]] = owned;
      if (!bypass_vo_cache) {
        inserts.emplace_back(cache_keys[miss_index[m]], owned);
      }
    }
  }
  VOCacheInsertBatch(table, label, std::move(inserts));

  QueryBatchResponse resp;
  resp.replica_version = label;
  resp.responses.reserve(n);
  size_t miss_pos = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool is_miss =
        miss_pos < miss_index.size() && miss_index[miss_pos] == i;
    QueryResponse r;
    if (cached[i] != nullptr) {
      r = ResponseFromCached(*cached[i], label);
      resp.stats.total_result_bytes += r.result_bytes;
      resp.stats.total_vo_bytes += r.vo_bytes;
    } else {
      // Successful misses were published to cached[] above, so a still-null
      // slot is a failed query: carry its status, ship no rows/VO.
      r.replica_version = label;
      r.status = miss_outs[miss_pos].status;
    }
    if (is_miss) miss_pos++;
    resp.responses.push_back(std::move(r));
  }
  resp.stats.vo_cache_hits = cache_hits;
  resp.stats.nodes_visited = tree_stats.nodes_visited;
  resp.stats.tuple_fetches = tree_stats.tuple_fetches;
  resp.stats.shared_fetch_hits = tree_stats.shared_fetch_hits;
  resp.stats.olc_restarts = tree_stats.olc_restarts;
  resp.stats.latch_wait_us = tree_stats.latch_wait_us;
  resp.stats.exec_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return resp;
}

Result<QueryBatchResponse> EdgeServer::HandleQueryBatch(
    const QueryBatch& batch, bool bypass_vo_cache) const {
  // The per-query table field is redundant inside a batch (the tree is
  // selected once below, and ExecuteSelectBatch never reads it), so a
  // mismatch check suffices — no per-query copies on this hot path.
  for (const SelectQuery& q : batch.queries) {
    if (!q.table.empty() && q.table != batch.table) {
      return Status::InvalidArgument("batch over '" + batch.table +
                                     "' contains a query on '" + q.table +
                                     "'");
    }
  }

  std::shared_ptr<TableReplica> replica;
  {
    std::shared_lock lock(mu_);
    auto it = tables_.find(batch.table);
    if (it == tables_.end()) {
      return Status::NotFound("edge server has no replica of " + batch.table);
    }
    replica = it->second;
  }
  return ExecuteBatchOnReplica(batch.table, *replica, batch.queries,
                               bypass_vo_cache);
}

Result<ShardedQueryBatchResponse> EdgeServer::HandleQueryBatchSharded(
    const QueryBatch& batch, bool bypass_vo_cache) const {
  for (const SelectQuery& q : batch.queries) {
    if (!q.table.empty() && q.table != batch.table) {
      return Status::InvalidArgument("batch over '" + batch.table +
                                     "' contains a query on '" + q.table +
                                     "'");
    }
  }

  // ONE brief directory-lock acquisition pins the map and every planned
  // shard replica; the groups then execute latch-free. K concurrent
  // batches walk the shard trees simultaneously — the old code held one
  // shared latch across all groups, serializing against every install.
  std::shared_ptr<const std::vector<uint8_t>> map_bytes;
  std::vector<ShardScatter> plan;
  std::vector<std::pair<std::string, std::shared_ptr<TableReplica>>> pinned;
  {
    std::shared_lock lock(mu_);
    auto m = maps_.find(batch.table);
    if (m == maps_.end()) {
      return Status::NotFound("edge server has no partition map for " +
                              batch.table);
    }
    const InstalledMap& installed = m->second;
    map_bytes = installed.bytes;
    plan = BuildScatterPlan(installed.map, batch.queries);
    pinned.reserve(plan.size());
    for (const ShardScatter& group : plan) {
      const std::string shard_name =
          installed.map.shard_name(group.shard_index);
      auto it = tables_.find(shard_name);
      if (it == tables_.end()) {
        return Status::NotFound("shard replica not installed: " + shard_name);
      }
      pinned.emplace_back(shard_name, it->second);
    }
  }

  ShardedQueryBatchResponse out;
  out.map_bytes = std::move(map_bytes);
  out.groups.reserve(plan.size());
  for (size_t gi = 0; gi < plan.size(); ++gi) {
    const ShardScatter& group = plan[gi];
    std::vector<SelectQuery> slice_queries;
    slice_queries.reserve(group.slices.size());
    for (const ShardSlice& slice : group.slices) {
      slice_queries.push_back(slice.query);
    }
    VBT_ASSIGN_OR_RETURN(
        QueryBatchResponse gr,
        ExecuteBatchOnReplica(pinned[gi].first, *pinned[gi].second,
                              slice_queries, bypass_vo_cache));
    out.stats.Accumulate(gr.stats);
    out.groups.push_back(ShardBatchGroup{group.shard_id, std::move(gr)});
  }
  if (response_tamper_ == ResponseTamper::kDropShardGroup &&
      out.groups.size() > 1) {
    out.groups.pop_back();
  }
  return out;
}

Result<std::vector<uint8_t>> EdgeServer::ExecuteBatchToWire(
    const QueryBatch& batch, uint64_t queue_wait_us,
    BatchExecStats* wire_stats) const {
  bool direct;
  {
    std::shared_lock lock(mu_);
    direct = tables_.count(batch.table) != 0;
    if (!direct && maps_.count(batch.table) == 0) {
      return Status::NotFound("edge server has no replica of " + batch.table);
    }
  }
  ByteWriter w(1 << 14);
  if (direct) {
    VBT_ASSIGN_OR_RETURN(QueryBatchResponse resp, HandleQueryBatch(batch));
    resp.stats.queue_wait_us = queue_wait_us;
    SerializeQueryBatchResponse(resp, &w, BatchWire::kV2, wire_stats);
  } else {
    VBT_ASSIGN_OR_RETURN(ShardedQueryBatchResponse resp,
                         HandleQueryBatchSharded(batch));
    for (ShardBatchGroup& g : resp.groups) {
      g.resp.stats.queue_wait_us = queue_wait_us;
    }
    resp.stats.queue_wait_us = queue_wait_us;
    SerializeShardedQueryBatchResponse(resp, &w, wire_stats);
  }
  return w.TakeBuffer();
}

Result<std::vector<uint8_t>> EdgeServer::HandleQueryBatchBytes(
    Slice request) const {
  ByteReader r(request);
  VBT_ASSIGN_OR_RETURN(QueryBatch batch, DeserializeQueryBatch(&r));
  return ExecuteBatchToWire(batch, /*queue_wait_us=*/0, nullptr);
}

Result<std::vector<uint8_t>> EdgeServer::HandleQueryBytes(
    Slice request) const {
  ByteReader r(request);
  VBT_ASSIGN_OR_RETURN(SelectQuery q, DeserializeSelectQuery(&r));
  VBT_ASSIGN_OR_RETURN(QueryResponse resp, HandleQuery(q));
  ByteWriter w(1 << 12);
  SerializeQueryResponse(resp, &w);
  return w.TakeBuffer();
}

Status EdgeServer::TamperValueByKey(const std::string& table, int64_t key,
                                    size_t col, Value v) {
  std::shared_ptr<TableReplica> replica;
  std::string resolved = table;
  {
    std::shared_lock lock(mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) {
      // Route through the map, like queries: the hacker corrupts whichever
      // shard replica owns the key.
      auto m = maps_.find(table);
      if (m != maps_.end()) {
        resolved = m->second.map.ShardName(
            table, m->second.map.ShardForKey(key).shard_id);
        it = tables_.find(resolved);
      }
    }
    if (it == tables_.end()) return Status::NotFound("no replica of " + table);
    replica = it->second;
  }
  // The hook models store corruption on a hacked edge: drop any cached
  // (honest, pre-tamper) outputs so subsequent VOs are rebuilt from the
  // corrupted store — which is what the client-side detection tests prove.
  VOCacheFlush(resolved);
  return replica->store.TamperByKey(key, col, std::move(v));
}

const VBTree* EdgeServer::tree(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second->tree.get();
}

void SerializeQueryResponse(const QueryResponse& resp, ByteWriter* w) {
  w->PutU64(resp.replica_version);
  SerializeResultRows(resp.rows, w);
  resp.vo.Serialize(w);
}

Result<QueryResponse> DeserializeQueryResponse(
    ByteReader* r, const Schema& schema,
    const std::vector<size_t>& projection) {
  QueryResponse resp;
  VBT_ASSIGN_OR_RETURN(resp.replica_version, r->ReadU64());
  size_t start = r->position();
  VBT_ASSIGN_OR_RETURN(resp.rows,
                       DeserializeResultRows(r, schema, projection));
  resp.result_bytes = r->position() - start;
  start = r->position();
  VBT_ASSIGN_OR_RETURN(resp.vo, VerificationObject::Deserialize(r));
  resp.vo_bytes = r->position() - start;
  return resp;
}

void SerializeQueryBatchResponse(const QueryBatchResponse& resp, ByteWriter* w,
                                 BatchWire wire, BatchExecStats* wire_stats) {
  w->PutU8(static_cast<uint8_t>(wire));
  w->PutU64(resp.replica_version);
  w->PutVarint(resp.responses.size());

  uint64_t vo_wire_bytes = 0;
  uint64_t sig_pool_entries = 0;
  if (wire == BatchWire::kV1) {
    // Legacy layout: self-contained VOs, no statuses — a failed slot
    // ships empty rows plus an empty VO, which can never authenticate.
    for (const QueryResponse& qr : resp.responses) {
      SerializeResultRows(qr.rows, w);
      qr.vo.Serialize(w);
    }
  } else {
    // v2: the response bodies are written into a scratch buffer while
    // interning every signature, so the pool — which a one-pass reader
    // needs first — can precede them on the wire.
    SignaturePool pool;
    ByteWriter body(1 << 12);
    for (const QueryResponse& qr : resp.responses) {
      if (!qr.status.ok()) {
        body.PutU8(1);
        SerializeStatus(qr.status, &body);
        continue;
      }
      body.PutU8(0);
      SerializeResultRows(qr.rows, &body);
      const size_t before = body.size();
      qr.vo.SerializePooled(&body, &pool);
      vo_wire_bytes += body.size() - before;
    }
    const size_t pool_start = w->size();
    pool.Serialize(w);
    vo_wire_bytes += w->size() - pool_start;
    sig_pool_entries = pool.size();
    w->PutBytes(Slice(body.buffer()));
  }

  w->PutU64(resp.stats.queue_wait_us);
  w->PutU64(resp.stats.exec_us);
  w->PutVarint(resp.stats.nodes_visited);
  w->PutVarint(resp.stats.tuple_fetches);
  w->PutVarint(resp.stats.shared_fetch_hits);
  if (wire == BatchWire::kV2) {
    // Raw totals cannot be recomputed from pooled bytes client-side, and
    // the wire-cost fields are only known post-serialization: ship them.
    w->PutVarint(resp.stats.total_vo_bytes);
    w->PutVarint(vo_wire_bytes);
    w->PutVarint(sig_pool_entries);
    w->PutVarint(resp.stats.vo_cache_hits);
    w->PutVarint(resp.stats.olc_restarts);
    w->PutVarint(resp.stats.latch_wait_us);
  }
  if (wire_stats != nullptr) {
    *wire_stats = resp.stats;
    wire_stats->vo_wire_bytes = vo_wire_bytes;
    wire_stats->sig_pool_entries = sig_pool_entries;
  }
}

Result<QueryBatchResponse> DeserializeQueryBatchResponse(
    ByteReader* r, const Schema& schema,
    const std::vector<SelectQuery>& queries) {
  VBT_ASSIGN_OR_RETURN(uint8_t version, r->ReadU8());
  if (version != static_cast<uint8_t>(BatchWire::kV1) &&
      version != static_cast<uint8_t>(BatchWire::kV2)) {
    return Status::Corruption("unknown batch response wire version " +
                              std::to_string(version));
  }
  const bool v2 = version == static_cast<uint8_t>(BatchWire::kV2);

  QueryBatchResponse resp;
  VBT_ASSIGN_OR_RETURN(resp.replica_version, r->ReadU64());
  VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
  // Positional indexing downstream (Client::QueryBatched pairs
  // resp.responses[i] with its queries[i]): an untrusted edge answering
  // with a different count must be rejected here, not discovered as an
  // out-of-bounds access or silent truncation later.
  if (n != queries.size()) {
    return Status::Corruption("batch response count " + std::to_string(n) +
                              " != query count " +
                              std::to_string(queries.size()));
  }

  SignaturePool pool;
  uint64_t vo_wire_bytes = 0;
  if (v2) {
    const size_t pool_start = r->position();
    VBT_ASSIGN_OR_RETURN(pool, SignaturePool::Deserialize(r));
    vo_wire_bytes += r->position() - pool_start;
  }

  resp.responses.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    QueryResponse qr;
    qr.replica_version = resp.replica_version;
    if (v2) {
      VBT_ASSIGN_OR_RETURN(uint8_t failed, r->ReadU8());
      if (failed != 0) {
        VBT_RETURN_NOT_OK(DeserializeStatus(r, &qr.status));
        if (qr.status.ok()) {
          return Status::Corruption("batch error slot carries an OK status");
        }
        resp.responses.push_back(std::move(qr));
        continue;
      }
    }
    VBT_ASSIGN_OR_RETURN(
        qr.rows, DeserializeResultRows(r, schema, queries[i].projection));
    // Same accounting rule as the serving edge (sum of row payloads,
    // excluding the row-count framing), so the two ends of the BENCH
    // telemetry agree byte-for-byte.
    for (const ResultRow& row : qr.rows) {
      qr.result_bytes += row.SerializedSize();
    }
    size_t start = r->position();
    if (v2) {
      VBT_ASSIGN_OR_RETURN(qr.vo,
                           VerificationObject::DeserializePooled(r, pool));
    } else {
      VBT_ASSIGN_OR_RETURN(qr.vo, VerificationObject::Deserialize(r));
    }
    // Under v2 this is the pooled (index-referencing) footprint; the raw
    // equivalent arrives in the stats trailer.
    qr.vo_bytes = r->position() - start;
    vo_wire_bytes += qr.vo_bytes;
    resp.stats.total_result_bytes += qr.result_bytes;
    if (!v2) resp.stats.total_vo_bytes += qr.vo_bytes;
    resp.responses.push_back(std::move(qr));
  }

  VBT_ASSIGN_OR_RETURN(resp.stats.queue_wait_us, r->ReadU64());
  VBT_ASSIGN_OR_RETURN(resp.stats.exec_us, r->ReadU64());
  VBT_ASSIGN_OR_RETURN(resp.stats.nodes_visited, r->ReadVarint());
  VBT_ASSIGN_OR_RETURN(resp.stats.tuple_fetches, r->ReadVarint());
  VBT_ASSIGN_OR_RETURN(resp.stats.shared_fetch_hits, r->ReadVarint());
  if (v2) {
    VBT_ASSIGN_OR_RETURN(resp.stats.total_vo_bytes, r->ReadVarint());
    // The trailer's wire-cost and pool-size claims are consumed but the
    // locally measured values win — an edge cannot skew this telemetry.
    VBT_ASSIGN_OR_RETURN(uint64_t claimed_wire, r->ReadVarint());
    (void)claimed_wire;
    resp.stats.vo_wire_bytes = vo_wire_bytes;
    VBT_ASSIGN_OR_RETURN(uint64_t claimed_pool_entries, r->ReadVarint());
    (void)claimed_pool_entries;
    resp.stats.sig_pool_entries = pool.size();
    VBT_ASSIGN_OR_RETURN(resp.stats.vo_cache_hits, r->ReadVarint());
    VBT_ASSIGN_OR_RETURN(resp.stats.olc_restarts, r->ReadVarint());
    VBT_ASSIGN_OR_RETURN(resp.stats.latch_wait_us, r->ReadVarint());
    // Hand the pool to the client so verification can recover each
    // distinct signature once (the VOs above carry its indices).
    resp.sig_pool = std::make_shared<const SignaturePool>(std::move(pool));
  }
  return resp;
}

void SerializeShardedQueryBatchResponse(const ShardedQueryBatchResponse& resp,
                                        ByteWriter* w,
                                        BatchExecStats* wire_stats) {
  w->PutU8(static_cast<uint8_t>(BatchWire::kSharded));
  w->PutLengthPrefixed(resp.map_bytes == nullptr ? Slice()
                                                 : Slice(*resp.map_bytes));
  w->PutVarint(resp.groups.size());
  BatchExecStats agg;
  agg.queue_wait_us = resp.stats.queue_wait_us;
  for (const ShardBatchGroup& g : resp.groups) {
    w->PutU32(g.shard_id);
    BatchExecStats group_wire;
    SerializeQueryBatchResponse(g.resp, w, BatchWire::kV2, &group_wire);
    agg.Accumulate(group_wire);
  }
  if (wire_stats != nullptr) *wire_stats = agg;
}

Result<ShardedBatchDecoded> DeserializeShardedQueryBatchResponse(
    ByteReader* r, const Schema& schema,
    const std::vector<SelectQuery>& queries) {
  VBT_ASSIGN_OR_RETURN(uint8_t version, r->ReadU8());
  if (version != static_cast<uint8_t>(BatchWire::kSharded)) {
    return Status::Corruption("not a sharded batch response (version " +
                              std::to_string(version) + ")");
  }
  ShardedBatchDecoded out;
  VBT_ASSIGN_OR_RETURN(Slice map_bytes, r->ReadLengthPrefixed());
  out.map_bytes.assign(map_bytes.data(), map_bytes.data() + map_bytes.size());
  {
    ByteReader map_reader(map_bytes);
    VBT_ASSIGN_OR_RETURN(out.map, PartitionMap::Deserialize(&map_reader));
  }
  // The plan is a pure function of (map, queries): the client derives its
  // completeness expectations from the SAME map the edge claims to have
  // scattered under. If the map is forged, its signature check fails
  // later; if the groups don't match the plan, the edge omitted or
  // invented shard answers — kCorruption either way.
  out.plan = BuildScatterPlan(out.map, queries);
  VBT_ASSIGN_OR_RETURN(uint64_t n_groups, r->ReadCount());
  if (n_groups != out.plan.size()) {
    return Status::Corruption(
        "sharded batch response has " + std::to_string(n_groups) +
        " shard groups, scatter plan dictates " +
        std::to_string(out.plan.size()));
  }
  out.groups.reserve(out.plan.size());
  for (const ShardScatter& planned : out.plan) {
    ShardBatchGroup group;
    VBT_ASSIGN_OR_RETURN(group.shard_id, r->ReadU32());
    if (group.shard_id != planned.shard_id) {
      return Status::Corruption(
          "sharded batch response group for shard " +
          std::to_string(group.shard_id) + ", scatter plan dictates shard " +
          std::to_string(planned.shard_id));
    }
    std::vector<SelectQuery> slice_queries;
    slice_queries.reserve(planned.slices.size());
    for (const ShardSlice& slice : planned.slices) {
      slice_queries.push_back(slice.query);
    }
    VBT_ASSIGN_OR_RETURN(
        group.resp, DeserializeQueryBatchResponse(r, schema, slice_queries));
    out.groups.push_back(std::move(group));
  }
  return out;
}

}  // namespace vbtree
