#include "edge/edge_server.h"

#include <chrono>

#include "edge/propagation/update_log.h"
#include "query/query_serde.h"

namespace vbtree {

namespace {
constexpr uint32_t kSnapshotMagic = 0x50414E53;  // "SNAP"
}  // namespace

Status EdgeServer::InstallSnapshot(Slice snapshot) {
  ByteReader r(snapshot);
  // Parse fully before taking the exclusive latch.
  VBT_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kSnapshotMagic) return Status::Corruption("bad snapshot magic");
  VBT_ASSIGN_OR_RETURN(std::string table, r.ReadString());
  VBT_ASSIGN_OR_RETURN(Schema schema, Schema::Deserialize(&r));

  TableReplica replica;
  replica.schema = schema;
  VBT_ASSIGN_OR_RETURN(uint64_t n, r.ReadCount());
  for (uint64_t i = 0; i < n; ++i) {
    Rid rid;
    VBT_ASSIGN_OR_RETURN(uint32_t page, r.ReadU32());
    rid.page_id = static_cast<int32_t>(page);
    VBT_ASSIGN_OR_RETURN(rid.slot, r.ReadU16());
    VBT_ASSIGN_OR_RETURN(Tuple t, Tuple::Deserialize(&r, schema));
    VBT_RETURN_NOT_OK(replica.store.Put(rid, std::move(t)));
  }
  // Edge replicas have no signer: updates are rejected locally and must be
  // routed to the central server (§3.4).
  VBT_ASSIGN_OR_RETURN(replica.tree, VBTree::Deserialize(&r, nullptr));
  // The tree carries its replica version end-to-end.
  replica.version = replica.tree->version();
  std::unique_lock lock(mu_);
  tables_[table] = std::move(replica);
  return Status::OK();
}

Status EdgeServer::ApplyUpdateBatch(Slice batch_bytes) {
  std::unique_lock lock(mu_);
  ByteReader r(batch_bytes);
  auto schema_for = [this](const std::string& table) -> Result<Schema> {
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("no replica of " + table);
    return it->second.schema;
  };
  VBT_ASSIGN_OR_RETURN(UpdateBatch batch,
                       UpdateBatch::Deserialize(&r, schema_for));
  auto it = tables_.find(batch.table);
  if (it == tables_.end()) {
    return Status::NotFound("no replica of " + batch.table);
  }
  TableReplica& replica = it->second;
  if (replica.version != batch.from_version) {
    return Status::InvalidArgument(
        "delta version gap: replica at " + std::to_string(replica.version) +
        ", batch starts at " + std::to_string(batch.from_version) +
        " (request a full snapshot)");
  }
  for (const UpdateOp& op : batch.ops) {
    std::deque<Signature> feed(op.resigned.begin(), op.resigned.end());
    if (op.kind == UpdateOp::Kind::kInsert) {
      VBT_RETURN_NOT_OK(replica.store.Put(op.rid, op.tuple));
      VBT_RETURN_NOT_OK(
          replica.tree->ReplayInsert(op.tuple, op.rid, op.material, &feed));
    } else {
      VBT_RETURN_NOT_OK(replica.tree->ReplayDeleteRange(op.lo, op.hi, &feed));
      replica.store.RemoveKeyRange(op.lo, op.hi);
    }
    if (!feed.empty()) {
      return Status::Corruption("delta replay diverged: unused signatures");
    }
  }
  if (replica.tree->version() != batch.to_version) {
    return Status::Corruption("delta replay diverged: replica version " +
                              std::to_string(replica.tree->version()) +
                              " != batch to_version " +
                              std::to_string(batch.to_version));
  }
  replica.version = batch.to_version;
  return Status::OK();
}

uint64_t EdgeServer::TableVersion(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second.version;
}

Result<QueryResponse> EdgeServer::HandleQuery(const SelectQuery& query) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(query.table);
  if (it == tables_.end()) {
    return Status::NotFound("edge server has no replica of " + query.table);
  }
  const TableReplica& replica = it->second;
  VBT_ASSIGN_OR_RETURN(QueryOutput out, replica.tree->ExecuteSelect(
                                            query, replica.store.Fetcher()));
  QueryResponse resp;
  resp.rows = std::move(out.rows);
  resp.vo = std::move(out.vo);
  resp.replica_version = replica.version;
  ApplyResponseTamper(&resp);
  resp.result_bytes = 0;
  for (const ResultRow& row : resp.rows) {
    resp.result_bytes += row.SerializedSize();
  }
  resp.vo_bytes = resp.vo.SerializedSize();
  return resp;
}

void EdgeServer::ApplyResponseTamper(QueryResponse* resp) const {
  switch (response_tamper_) {
    case ResponseTamper::kNone:
      return;
    case ResponseTamper::kModifyValue:
      if (!resp->rows.empty() && resp->rows[0].values.size() > 1) {
        resp->rows[0].values[1] = Value::Str("__tampered__");
      }
      return;
    case ResponseTamper::kInjectRow:
      if (!resp->rows.empty()) {
        ResultRow fake = resp->rows.back();
        fake.key += 1;
        fake.values[0] = Value::Int(fake.key);
        resp->rows.push_back(std::move(fake));
      }
      return;
    case ResponseTamper::kDropRow:
      if (!resp->rows.empty()) resp->rows.pop_back();
      return;
  }
}

Result<QueryBatchResponse> EdgeServer::HandleQueryBatch(
    const QueryBatch& batch) const {
  const auto start = std::chrono::steady_clock::now();
  // The per-query table field is redundant inside a batch (the tree is
  // selected once below, and ExecuteSelectBatch never reads it), so a
  // mismatch check suffices — no per-query copies on this hot path.
  for (const SelectQuery& q : batch.queries) {
    if (!q.table.empty() && q.table != batch.table) {
      return Status::InvalidArgument("batch over '" + batch.table +
                                     "' contains a query on '" + q.table +
                                     "'");
    }
  }

  std::shared_lock lock(mu_);
  auto it = tables_.find(batch.table);
  if (it == tables_.end()) {
    return Status::NotFound("edge server has no replica of " + batch.table);
  }
  const TableReplica& replica = it->second;
  VBBatchStats tree_stats;
  VBT_ASSIGN_OR_RETURN(
      std::vector<QueryOutput> outs,
      replica.tree->ExecuteSelectBatch(batch.queries, replica.store.Fetcher(),
                                       &tree_stats));

  QueryBatchResponse resp;
  resp.replica_version = replica.version;
  resp.responses.reserve(outs.size());
  for (QueryOutput& out : outs) {
    QueryResponse r;
    r.rows = std::move(out.rows);
    r.vo = std::move(out.vo);
    r.replica_version = replica.version;
    ApplyResponseTamper(&r);
    for (const ResultRow& row : r.rows) r.result_bytes += row.SerializedSize();
    r.vo_bytes = r.vo.SerializedSize();
    resp.stats.total_result_bytes += r.result_bytes;
    resp.stats.total_vo_bytes += r.vo_bytes;
    resp.responses.push_back(std::move(r));
  }
  resp.stats.nodes_visited = tree_stats.nodes_visited;
  resp.stats.tuple_fetches = tree_stats.tuple_fetches;
  resp.stats.shared_fetch_hits = tree_stats.shared_fetch_hits;
  resp.stats.exec_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return resp;
}

Result<std::vector<uint8_t>> EdgeServer::HandleQueryBatchBytes(
    Slice request) const {
  ByteReader r(request);
  VBT_ASSIGN_OR_RETURN(QueryBatch batch, DeserializeQueryBatch(&r));
  VBT_ASSIGN_OR_RETURN(QueryBatchResponse resp, HandleQueryBatch(batch));
  ByteWriter w(1 << 14);
  SerializeQueryBatchResponse(resp, &w);
  return w.TakeBuffer();
}

Result<std::vector<uint8_t>> EdgeServer::HandleQueryBytes(
    Slice request) const {
  ByteReader r(request);
  VBT_ASSIGN_OR_RETURN(SelectQuery q, DeserializeSelectQuery(&r));
  VBT_ASSIGN_OR_RETURN(QueryResponse resp, HandleQuery(q));
  ByteWriter w(1 << 12);
  SerializeQueryResponse(resp, &w);
  return w.TakeBuffer();
}

Status EdgeServer::TamperValueByKey(const std::string& table, int64_t key,
                                    size_t col, Value v) {
  std::unique_lock lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no replica of " + table);
  return it->second.store.TamperByKey(key, col, std::move(v));
}

const VBTree* EdgeServer::tree(const std::string& table) const {
  std::shared_lock lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : it->second.tree.get();
}

void SerializeQueryResponse(const QueryResponse& resp, ByteWriter* w) {
  w->PutU64(resp.replica_version);
  SerializeResultRows(resp.rows, w);
  resp.vo.Serialize(w);
}

Result<QueryResponse> DeserializeQueryResponse(
    ByteReader* r, const Schema& schema,
    const std::vector<size_t>& projection) {
  QueryResponse resp;
  VBT_ASSIGN_OR_RETURN(resp.replica_version, r->ReadU64());
  size_t start = r->position();
  VBT_ASSIGN_OR_RETURN(resp.rows,
                       DeserializeResultRows(r, schema, projection));
  resp.result_bytes = r->position() - start;
  start = r->position();
  VBT_ASSIGN_OR_RETURN(resp.vo, VerificationObject::Deserialize(r));
  resp.vo_bytes = r->position() - start;
  return resp;
}

void SerializeQueryBatchResponse(const QueryBatchResponse& resp,
                                 ByteWriter* w) {
  w->PutU64(resp.replica_version);
  w->PutVarint(resp.responses.size());
  for (const QueryResponse& qr : resp.responses) {
    SerializeResultRows(qr.rows, w);
    qr.vo.Serialize(w);
  }
  w->PutU64(resp.stats.queue_wait_us);
  w->PutU64(resp.stats.exec_us);
  w->PutVarint(resp.stats.nodes_visited);
  w->PutVarint(resp.stats.tuple_fetches);
  w->PutVarint(resp.stats.shared_fetch_hits);
}

Result<QueryBatchResponse> DeserializeQueryBatchResponse(
    ByteReader* r, const Schema& schema,
    const std::vector<SelectQuery>& queries) {
  QueryBatchResponse resp;
  VBT_ASSIGN_OR_RETURN(resp.replica_version, r->ReadU64());
  VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
  if (n != queries.size()) {
    return Status::Corruption("batch response count " + std::to_string(n) +
                              " != query count " +
                              std::to_string(queries.size()));
  }
  resp.responses.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    QueryResponse qr;
    qr.replica_version = resp.replica_version;
    VBT_ASSIGN_OR_RETURN(
        qr.rows, DeserializeResultRows(r, schema, queries[i].projection));
    // Same accounting rule as the serving edge (sum of row payloads,
    // excluding the row-count framing), so the two ends of the BENCH
    // telemetry agree byte-for-byte.
    for (const ResultRow& row : qr.rows) {
      qr.result_bytes += row.SerializedSize();
    }
    size_t start = r->position();
    VBT_ASSIGN_OR_RETURN(qr.vo, VerificationObject::Deserialize(r));
    qr.vo_bytes = r->position() - start;
    resp.stats.total_result_bytes += qr.result_bytes;
    resp.stats.total_vo_bytes += qr.vo_bytes;
    resp.responses.push_back(std::move(qr));
  }
  VBT_ASSIGN_OR_RETURN(resp.stats.queue_wait_us, r->ReadU64());
  VBT_ASSIGN_OR_RETURN(resp.stats.exec_us, r->ReadU64());
  VBT_ASSIGN_OR_RETURN(resp.stats.nodes_visited, r->ReadVarint());
  VBT_ASSIGN_OR_RETURN(resp.stats.tuple_fetches, r->ReadVarint());
  VBT_ASSIGN_OR_RETURN(resp.stats.shared_fetch_hits, r->ReadVarint());
  return resp;
}

}  // namespace vbtree
