#ifndef VBTREE_MHT_MERKLE_TREE_H_
#define VBTREE_MHT_MERKLE_TREE_H_

#include <memory>
#include <span>
#include <vector>

#include "catalog/tuple.h"
#include "common/result.h"
#include "crypto/signer.h"
#include "query/predicate.h"

namespace vbtree {

/// A range-query proof from the Merkle-tree baseline: sibling hashes on
/// the paths from the result range to the root, plus the signed root.
/// Unlike the VB-tree's VO, the proof necessarily reaches the root, so it
/// grows with log(table size) — the limitation of Devanbu et al. [5] that
/// §1/§2 of the paper call out and the VB-tree removes by signing every
/// node digest.
struct MhtProof {
  Signature signed_root;
  /// Total number of leaves in the tree; the verifier needs it to rebuild
  /// the implicit binary-tree shape.
  uint64_t leaf_count = 0;
  /// Pre-order walk tags: 0 = opaque (use next hash), 1 = result leaf
  /// (hash the next result tuple), 2 = internal node (recurse).
  std::vector<uint8_t> shape;
  std::vector<Digest> hashes;

  size_t SerializedSize() const;
};

struct MhtQueryOutput {
  std::vector<ResultRow> rows;  // full tuples (MHT cannot project)
  MhtProof proof;
};

/// Binary Merkle hash tree over key-sorted tuples with a single signed
/// root (the Devanbu-style baseline for the VO-scaling ablation).
///
/// Leaf hash = SHA-256(serialized tuple) truncated to 16 bytes; internal
/// hash = SHA-256(left || right); an odd node at the end of a level is
/// promoted unchanged. Projection is impossible (the leaf hash covers the
/// whole tuple), matching the limitation discussed in §2.
class MerkleTree {
 public:
  static Result<std::unique_ptr<MerkleTree>> Build(
      std::span<const Tuple> sorted_rows, Signer* signer);

  size_t size() const { return keys_.size(); }
  const Digest& root_hash() const { return levels_.back()[0]; }

  /// Answers SELECT * WHERE key IN [lo, hi] with a proof to the root.
  Result<MhtQueryOutput> RangeQuery(int64_t lo, int64_t hi) const;

 private:
  MerkleTree() = default;

  void BuildProof(size_t level, size_t idx, size_t result_lo,
                  size_t result_hi, MhtProof* proof) const;

  std::vector<int64_t> keys_;
  std::vector<Tuple> rows_;
  /// levels_[0] = leaf hashes; levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
  Signature signed_root_;
};

/// Client-side verification for the Merkle baseline.
class MhtVerifier {
 public:
  explicit MhtVerifier(Recoverer* recoverer) : recoverer_(recoverer) {}

  Status Verify(const KeyRange& range, const std::vector<ResultRow>& rows,
                const MhtProof& proof);

 private:
  Result<Digest> ComputeNode(size_t level, size_t idx,
                             const std::vector<ResultRow>& rows,
                             const MhtProof& proof, size_t* shape_cursor,
                             size_t* hash_cursor, size_t* row_cursor) const;

  Recoverer* recoverer_;
};

}  // namespace vbtree

#endif  // VBTREE_MHT_MERKLE_TREE_H_
