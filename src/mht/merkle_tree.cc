#include "mht/merkle_tree.h"

#include <algorithm>

#include "common/serde.h"
#include "crypto/hash.h"

namespace vbtree {

namespace {

Digest LeafHash(const Tuple& t) {
  ByteWriter w(64);
  t.Serialize(&w);
  return HashToDigest(HashAlgorithm::kSha256, Slice(w.buffer()));
}

Digest InternalHash(const Digest& l, const Digest& r) {
  ByteWriter w(2 * kDigestLen);
  w.PutBytes(l.AsSlice());
  w.PutBytes(r.AsSlice());
  return HashToDigest(HashAlgorithm::kSha256, Slice(w.buffer()));
}

/// Number of nodes at `level` of a tree with n leaves.
size_t LevelSize(uint64_t n, size_t level) {
  size_t sz = static_cast<size_t>(n);
  for (size_t i = 0; i < level; ++i) sz = (sz + 1) / 2;
  return sz;
}

}  // namespace

size_t MhtProof::SerializedSize() const {
  // signed root + leaf count varint + one byte per shape tag + raw hashes.
  size_t varint = 1;
  for (uint64_t v = leaf_count; v >= 0x80; v >>= 7) varint++;
  return signed_root.size() + varint + shape.size() +
         hashes.size() * kDigestLen;
}

Result<std::unique_ptr<MerkleTree>> MerkleTree::Build(
    std::span<const Tuple> sorted_rows, Signer* signer) {
  if (signer == nullptr) {
    return Status::InvalidArgument("MerkleTree::Build requires a signer");
  }
  if (sorted_rows.empty()) {
    return Status::InvalidArgument("cannot build a Merkle tree over nothing");
  }
  auto tree = std::unique_ptr<MerkleTree>(new MerkleTree());
  tree->rows_.assign(sorted_rows.begin(), sorted_rows.end());
  tree->keys_.reserve(sorted_rows.size());
  std::vector<Digest> level;
  level.reserve(sorted_rows.size());
  for (size_t i = 0; i < sorted_rows.size(); ++i) {
    if (i > 0 && sorted_rows[i - 1].key() >= sorted_rows[i].key()) {
      return Status::InvalidArgument("rows must be key-sorted and unique");
    }
    tree->keys_.push_back(sorted_rows[i].key());
    level.push_back(LeafHash(sorted_rows[i]));
  }
  tree->levels_.push_back(std::move(level));
  while (tree->levels_.back().size() > 1) {
    const std::vector<Digest>& below = tree->levels_.back();
    std::vector<Digest> above;
    above.reserve((below.size() + 1) / 2);
    for (size_t i = 0; i < below.size(); i += 2) {
      if (i + 1 < below.size()) {
        above.push_back(InternalHash(below[i], below[i + 1]));
      } else {
        above.push_back(below[i]);  // odd node promotes unchanged
      }
    }
    tree->levels_.push_back(std::move(above));
  }
  VBT_ASSIGN_OR_RETURN(tree->signed_root_, signer->Sign(tree->root_hash()));
  return tree;
}

void MerkleTree::BuildProof(size_t level, size_t idx, size_t result_lo,
                            size_t result_hi, MhtProof* proof) const {
  // The node covers leaves [idx * 2^level, min((idx+1) * 2^level, n)).
  size_t cover_lo = idx << level;
  size_t cover_hi = std::min(keys_.size(), (idx + 1) << level);
  if (cover_hi <= result_lo || cover_lo >= result_hi) {
    proof->shape.push_back(0);
    proof->hashes.push_back(levels_[level][idx]);
    return;
  }
  if (level == 0) {
    proof->shape.push_back(1);  // verifier hashes the next result tuple
    return;
  }
  proof->shape.push_back(2);
  BuildProof(level - 1, 2 * idx, result_lo, result_hi, proof);
  if (2 * idx + 1 < levels_[level - 1].size()) {
    BuildProof(level - 1, 2 * idx + 1, result_lo, result_hi, proof);
  }
}

Result<MhtQueryOutput> MerkleTree::RangeQuery(int64_t lo, int64_t hi) const {
  MhtQueryOutput out;
  out.proof.signed_root = signed_root_;
  out.proof.leaf_count = keys_.size();
  size_t a = std::lower_bound(keys_.begin(), keys_.end(), lo) - keys_.begin();
  size_t b = std::upper_bound(keys_.begin(), keys_.end(), hi) - keys_.begin();
  for (size_t i = a; i < b; ++i) {
    ResultRow row;
    row.key = rows_[i].key();
    row.values = rows_[i].values();
    out.rows.push_back(std::move(row));
  }
  BuildProof(levels_.size() - 1, 0, a, b, &out.proof);
  return out;
}

Result<Digest> MhtVerifier::ComputeNode(size_t level, size_t idx,
                                        const std::vector<ResultRow>& rows,
                                        const MhtProof& proof,
                                        size_t* shape_cursor,
                                        size_t* hash_cursor,
                                        size_t* row_cursor) const {
  if (*shape_cursor >= proof.shape.size()) {
    return Status::VerificationFailure("truncated proof shape");
  }
  uint8_t tag = proof.shape[(*shape_cursor)++];
  switch (tag) {
    case 0: {
      if (*hash_cursor >= proof.hashes.size()) {
        return Status::VerificationFailure("truncated proof hashes");
      }
      return proof.hashes[(*hash_cursor)++];
    }
    case 1: {
      if (level != 0) {
        return Status::VerificationFailure("result tag at non-leaf level");
      }
      if (*row_cursor >= rows.size()) {
        return Status::VerificationFailure(
            "proof claims more result tuples than returned");
      }
      const ResultRow& row = rows[(*row_cursor)++];
      Tuple t(row.values);
      return LeafHash(t);
    }
    case 2: {
      if (level == 0) {
        return Status::VerificationFailure("internal tag at leaf level");
      }
      VBT_ASSIGN_OR_RETURN(
          Digest l, ComputeNode(level - 1, 2 * idx, rows, proof, shape_cursor,
                                hash_cursor, row_cursor));
      if (2 * idx + 1 < LevelSize(proof.leaf_count, level - 1)) {
        VBT_ASSIGN_OR_RETURN(
            Digest r, ComputeNode(level - 1, 2 * idx + 1, rows, proof,
                                  shape_cursor, hash_cursor, row_cursor));
        return InternalHash(l, r);
      }
      return l;  // odd node promoted unchanged
    }
    default:
      return Status::VerificationFailure("bad proof shape tag");
  }
}

Status MhtVerifier::Verify(const KeyRange& range,
                           const std::vector<ResultRow>& rows,
                           const MhtProof& proof) {
  if (proof.leaf_count == 0) {
    return Status::VerificationFailure("empty proof");
  }
  int64_t prev = 0;
  bool have_prev = false;
  for (const ResultRow& row : rows) {
    if (row.values.empty() || row.values[0].type() != TypeId::kInt64 ||
        row.values[0].AsInt() != row.key) {
      return Status::VerificationFailure("result row key mismatch");
    }
    if (!range.Contains(row.key)) {
      return Status::VerificationFailure("result key outside query range");
    }
    if (have_prev && prev >= row.key) {
      return Status::VerificationFailure("result keys not strictly ascending");
    }
    prev = row.key;
    have_prev = true;
  }

  size_t levels = 0;
  for (size_t sz = proof.leaf_count; sz > 1; sz = (sz + 1) / 2) levels++;
  size_t shape_cursor = 0, hash_cursor = 0, row_cursor = 0;
  VBT_ASSIGN_OR_RETURN(Digest computed,
                       ComputeNode(levels, 0, rows, proof, &shape_cursor,
                                   &hash_cursor, &row_cursor));
  if (row_cursor != rows.size()) {
    return Status::VerificationFailure(
        "returned tuples not all accounted for by the proof");
  }
  if (shape_cursor != proof.shape.size() ||
      hash_cursor != proof.hashes.size()) {
    return Status::VerificationFailure("proof has trailing data");
  }
  VBT_ASSIGN_OR_RETURN(Digest expected, recoverer_->Recover(proof.signed_root));
  if (!(computed == expected)) {
    return Status::VerificationFailure(
        "root hash mismatch: result failed authentication");
  }
  return Status::OK();
}

}  // namespace vbtree
