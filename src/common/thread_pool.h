#ifndef VBTREE_COMMON_THREAD_POOL_H_
#define VBTREE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace vbtree {

/// What Submit does when the bounded task queue is full.
enum class OverflowPolicy {
  /// Block the submitter until a slot frees up (throttles producers).
  kBlock,
  /// Fail fast with kResourceExhausted (load shedding; the caller sees
  /// the rejection and can retry or divert to another server).
  kReject,
};

struct ThreadPoolOptions {
  size_t num_threads = 4;
  /// Maximum tasks waiting in the queue (excludes tasks being executed).
  size_t queue_capacity = 1024;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
};

/// A fixed-size worker pool over a bounded FIFO submission queue — the
/// execution engine behind the edge QueryService. Deliberately minimal:
/// tasks are type-erased void() closures; completion signaling (futures,
/// latency stamps) is layered on by the caller.
///
/// Thread-safe. Shutdown() drains every task already accepted, then joins
/// the workers; Submit after Shutdown is rejected.
class ThreadPool {
 public:
  struct Stats {
    uint64_t submitted = 0;  ///< accepted into the queue
    uint64_t rejected = 0;   ///< refused (queue full under kReject)
    uint64_t executed = 0;   ///< completed by a worker
  };

  explicit ThreadPool(ThreadPoolOptions options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Under kBlock, waits for queue space; under kReject,
  /// returns kResourceExhausted when the queue is at capacity.
  Status Submit(std::function<void()> task);

  /// Stops accepting work, drains the queue, joins all workers.
  /// Idempotent.
  void Shutdown();

  size_t num_threads() const { return options_.num_threads; }
  size_t queue_depth() const;
  Stats stats() const;

 private:
  void WorkerLoop();

  ThreadPoolOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: task or stop
  std::condition_variable space_cv_;  ///< signals blocked submitters
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
  Stats stats_;
};

}  // namespace vbtree

#endif  // VBTREE_COMMON_THREAD_POOL_H_
