#ifndef VBTREE_COMMON_SERDE_H_
#define VBTREE_COMMON_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace vbtree {

/// Append-only little-endian byte sink used for pages, wire messages and
/// digest preimages. All multi-byte integers are written little-endian so
/// byte counts are platform independent.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLE(v, 2); }
  void PutU32(uint32_t v) { PutLE(v, 4); }
  void PutU64(uint64_t v) { PutLE(v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// LEB128 unsigned varint; keeps VO skeleton headers tiny.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  void PutBytes(Slice s) { buf_.insert(buf_.end(), s.data(), s.data() + s.size()); }

  /// Varint length prefix followed by the raw bytes.
  void PutLengthPrefixed(Slice s) {
    PutVarint(s.size());
    PutBytes(s);
  }

  void PutString(const std::string& s) { PutLengthPrefixed(Slice(s)); }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  void PutLE(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

/// Sequential reader over a byte buffer; every accessor checks bounds and
/// reports kCorruption on truncated input.
class ByteReader {
 public:
  explicit ByteReader(Slice s) : data_(s.data()), size_(s.size()) {}

  Result<uint8_t> ReadU8() {
    if (pos_ + 1 > size_) return Truncated("u8");
    return data_[pos_++];
  }
  Result<uint16_t> ReadU16() { return ReadLE<uint16_t>(2); }
  Result<uint32_t> ReadU32() { return ReadLE<uint32_t>(4); }
  Result<uint64_t> ReadU64() { return ReadLE<uint64_t>(8); }
  Result<int64_t> ReadI64() {
    VBT_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    return static_cast<int64_t>(v);
  }
  Result<double> ReadDouble() {
    VBT_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<uint64_t> ReadVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Truncated("varint");
      uint8_t byte = data_[pos_++];
      if (shift >= 63 && byte > 1) {
        return Status::Corruption("varint overflow");
      }
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  /// Reads an element count and sanity-checks it against the remaining
  /// input — every element encodes to at least one byte, so a larger
  /// count is certainly corruption. Prevents attacker-controlled counts
  /// from driving huge allocations before the per-element reads fail.
  Result<uint64_t> ReadCount() {
    VBT_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (n > remaining()) {
      return Status::Corruption("element count exceeds input size");
    }
    return n;
  }

  Result<Slice> ReadBytes(size_t n) {
    if (pos_ + n > size_) return Truncated("bytes");
    Slice out(data_ + pos_, n);
    pos_ += n;
    return out;
  }

  Result<Slice> ReadLengthPrefixed() {
    VBT_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    return ReadBytes(n);
  }

  Result<std::string> ReadString() {
    VBT_ASSIGN_OR_RETURN(Slice s, ReadLengthPrefixed());
    return s.ToString();
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  Result<T> ReadLE(int bytes) {
    if (pos_ + bytes > size_) return Truncated("int");
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += bytes;
    return static_cast<T>(v);
  }

  Status Truncated(const char* what) {
    return Status::Corruption(std::string("truncated input reading ") + what);
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace vbtree

#endif  // VBTREE_COMMON_SERDE_H_
