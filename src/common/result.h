#ifndef VBTREE_COMMON_RESULT_H_
#define VBTREE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace vbtree {

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result. A default-constructed Result is an internal error.
template <typename T>
class Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& ValueOrDie() const {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() {
    assert(ok());
    return *value_;
  }

  /// Moves the value out. Precondition: ok().
  T MoveValueUnsafe() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const { return ValueOrDie(); }
  T& operator*() { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns the error.
#define VBT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = tmp.MoveValueUnsafe()

#define VBT_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define VBT_ASSIGN_OR_RETURN_NAME(a, b) VBT_ASSIGN_OR_RETURN_CONCAT(a, b)
#define VBT_ASSIGN_OR_RETURN(lhs, expr) \
  VBT_ASSIGN_OR_RETURN_IMPL(            \
      VBT_ASSIGN_OR_RETURN_NAME(_vbt_result_, __COUNTER__), lhs, expr)

}  // namespace vbtree

#endif  // VBTREE_COMMON_RESULT_H_
