#ifndef VBTREE_COMMON_SLICE_H_
#define VBTREE_COMMON_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace vbtree {

/// A borrowed, non-owning view of a byte range (RocksDB-style).
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  Slice(const char* data, size_t size)
      : data_(reinterpret_cast<const uint8_t*>(data)), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): cheap view conversions.
  Slice(const std::string& s) : Slice(s.data(), s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(std::string_view s) : Slice(s.data(), s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(const std::vector<uint8_t>& v) : Slice(v.data(), v.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  uint8_t operator[](size_t i) const { return data_[i]; }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(data_), size_);
  }

  bool operator==(const Slice& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }

 private:
  const uint8_t* data_;
  size_t size_;
};

}  // namespace vbtree

#endif  // VBTREE_COMMON_SLICE_H_
