#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstring>

namespace vbtree {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line, const char* fmt, ...) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] ", LogLevelName(level), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace internal
}  // namespace vbtree
