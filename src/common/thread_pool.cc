#include "common/thread_pool.h"

namespace vbtree {

ThreadPool::ThreadPool(ThreadPoolOptions options) : options_(options) {
  if (options_.num_threads == 0) options_.num_threads = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

Status ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock lock(mu_);
    if (options_.overflow == OverflowPolicy::kBlock) {
      space_cv_.wait(lock, [this] {
        return shutdown_ || queue_.size() < options_.queue_capacity;
      });
    } else if (queue_.size() >= options_.queue_capacity && !shutdown_) {
      stats_.rejected++;
      return Status::ResourceExhausted(
          "submission queue full (" + std::to_string(queue_.size()) +
          " tasks queued)");
    }
    if (shutdown_) {
      stats_.rejected++;
      return Status::ResourceExhausted("thread pool is shut down");
    }
    queue_.push_back(std::move(task));
    stats_.submitted++;
  }
  work_cv_.notify_one();
  return Status::OK();
}

void ThreadPool::Shutdown() {
  // Claim the worker handles under the lock so a second caller (e.g. the
  // destructor after an explicit Shutdown) finds nothing left to join.
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_cv_.notify_one();
    task();
    std::lock_guard lock(mu_);
    stats_.executed++;
  }
}

}  // namespace vbtree
