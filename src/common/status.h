#ifndef VBTREE_COMMON_STATUS_H_
#define VBTREE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace vbtree {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kCorruption,
  /// A verification object failed to authenticate a query result.
  kVerificationFailure,
  /// A bounded resource (e.g. a submission queue) is full and the
  /// operation was rejected rather than blocked (backpressure).
  kResourceExhausted,
  kLockTimeout,
  kNotImplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation: a code plus an optional diagnostic message.
///
/// `Status::OK()` is cheap (no allocation). All library entry points that
/// can fail return `Status` or `Result<T>`; exceptions are never thrown
/// across module boundaries.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status VerificationFailure(std::string msg) {
    return Status(StatusCode::kVerificationFailure, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status LockTimeout(std::string msg) {
    return Status(StatusCode::kLockTimeout, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsVerificationFailure() const {
    return code_ == StatusCode::kVerificationFailure;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsLockTimeout() const { return code_ == StatusCode::kLockTimeout; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller.
#define VBT_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::vbtree::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace vbtree

#endif  // VBTREE_COMMON_STATUS_H_
