#ifndef VBTREE_COMMON_CONFIG_H_
#define VBTREE_COMMON_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace vbtree {

/// Disk block / index node size in bytes (paper Table 1: |B| = 4 KB).
inline constexpr size_t kPageSize = 4096;

/// Length of a (signed) digest in bytes (paper Table 1: |s| = 16).
inline constexpr size_t kDigestLen = 16;

/// Length of a node pointer in bytes used by the cost model (|P| = 4).
inline constexpr size_t kPointerLen = 4;

/// Default search-key length in bytes used by the cost model (|K| = 16).
inline constexpr size_t kDefaultKeyLen = 16;

using page_id_t = int32_t;
inline constexpr page_id_t kInvalidPageId = -1;

using txn_id_t = uint64_t;

}  // namespace vbtree

#endif  // VBTREE_COMMON_CONFIG_H_
