#ifndef VBTREE_COMMON_LOGGING_H_
#define VBTREE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace vbtree {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

/// Process-wide minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);
const char* LogLevelName(LogLevel level);

namespace internal {
void LogMessage(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));
}  // namespace internal

#define VBT_LOG(level, ...)                                                  \
  do {                                                                       \
    if (level >= ::vbtree::GetLogLevel()) {                                  \
      ::vbtree::internal::LogMessage(level, __FILE__, __LINE__, __VA_ARGS__); \
    }                                                                        \
  } while (0)

#define VBT_DEBUG(...) VBT_LOG(::vbtree::LogLevel::kDebug, __VA_ARGS__)
#define VBT_INFO(...) VBT_LOG(::vbtree::LogLevel::kInfo, __VA_ARGS__)
#define VBT_WARN(...) VBT_LOG(::vbtree::LogLevel::kWarn, __VA_ARGS__)
#define VBT_ERROR(...) VBT_LOG(::vbtree::LogLevel::kError, __VA_ARGS__)

/// Invariant check that aborts in all build types; reserved for conditions
/// that indicate memory corruption or programmer error, never user input.
#define VBT_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                     __LINE__, #cond);                                      \
      ::std::abort();                                                       \
    }                                                                       \
  } while (0)

}  // namespace vbtree

#endif  // VBTREE_COMMON_LOGGING_H_
