#ifndef VBTREE_COMMON_RANDOM_H_
#define VBTREE_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace vbtree {

/// Deterministic splitmix64/xorshift generator. Used everywhere instead of
/// std::mt19937 so test failures reproduce exactly across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed ? seed : 1) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Random printable ASCII string of length n.
  std::string NextString(size_t n) {
    static const char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string s(n, ' ');
    for (size_t i = 0; i < n; ++i) s[i] = kAlphabet[Uniform(62)];
    return s;
  }

 private:
  uint64_t state_;
};

/// Zipf-distributed generator over [0, n) with exponent `theta`, using the
/// classic rejection-free inverse-CDF approximation (Gray et al.). Used by
/// workload generators to produce skewed access patterns.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = Zeta(n_);
    zeta2_ = Zeta(2);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    double u = rng_.NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  double Zeta(uint64_t n) const {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta_);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace vbtree

#endif  // VBTREE_COMMON_RANDOM_H_
