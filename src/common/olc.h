#ifndef VBTREE_COMMON_OLC_H_
#define VBTREE_COMMON_OLC_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace vbtree {
namespace olc {

// Optimistic-lock-coupling primitives for the VB-tree (vmcache-style
// versioned latches): every node carries a 64-bit version word
//
//     word = (version << 1) | locked
//
// Readers never latch. They read the word (acquire), give up immediately
// if the lock bit is set, read the node's immutable content snapshot, and
// re-check every recorded word after the traversal — any bump or lock
// observed at validation time means a writer overlapped and the attempt
// restarts from the root. Writers (which an external exclusive mutex
// already serializes against each other) set the lock bit on every node
// they touch, publish new content snapshots, and release with a version
// bump, so no reader can ever validate a mixed state.
//
// Node contents are immutable once published: writers clone-on-write and
// retire the old snapshot through the epoch reclaimer below, so a reader
// holding a stale pointer dereferences intact (merely outdated) memory
// and fails validation afterwards — torn reads are impossible by
// construction, which is what makes the scheme sound for variable-length
// C++ payloads (vectors, signatures) rather than fixed PODs.

inline constexpr uint64_t kLockedBit = 1;

inline bool IsLocked(uint64_t word) { return (word & kLockedBit) != 0; }

/// The word a node is born with: version 1, unlocked.
inline constexpr uint64_t kInitialWord = 1ull << 1;

/// Next word after releasing a lock taken on `locked_word`: clear the
/// lock bit, bump the version.
inline uint64_t BumpedUnlocked(uint64_t locked_word) {
  return ((locked_word >> 1) + 1) << 1;
}

/// Epoch-based reclamation for retired node shells / content snapshots.
///
/// Readers pin the global epoch for the duration of one traversal
/// attempt; writers (externally serialized) retire objects tagged with
/// the epoch current at retire time and free an object only once the
/// epoch has advanced twice past its tag — by which point every reader
/// that could have loaded a pointer to it has unpinned.
///
/// The pin protocol closes the classic publication race with a verify
/// loop: the reader stores its epoch (seq_cst) and re-reads the global
/// epoch until it observes the value it pinned. Reading epoch E through
/// a seq_cst load synchronizes with the writer's advance store to E, so
/// every content swap retired with tag <= E-1 happens-before the
/// reader's subsequent pointer loads — the reader cannot even observe a
/// pointer that the writer is already entitled to free.
class EpochReclaimer {
 public:
  /// Hard ceiling on concurrent pins (≈ concurrent reads per tree). A
  /// pin beyond this spins (yield loop) until a slot frees — safe but
  /// slow, and visible in slot_waits(). Worker pools driving one tree
  /// (QueryServiceOptions::num_workers) should stay well below this.
  static constexpr size_t kSlots = 256;

  EpochReclaimer() = default;
  ~EpochReclaimer() { DrainAll(); }

  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

 private:
  struct Slot;

 public:

  /// RAII reader pin. Claims a slot per pin (O(kSlots) relaxed scan,
  /// negligible next to a traversal) so no thread-local registration can
  /// dangle across reclaimer lifetimes.
  class Pin {
   public:
    explicit Pin(EpochReclaimer* r) : r_(r) {
      slot_ = r_->ClaimSlot();
      uint64_t e = r_->global_.load(std::memory_order_seq_cst);
      for (;;) {
        slot_->epoch.store(e, std::memory_order_seq_cst);
        uint64_t now = r_->global_.load(std::memory_order_seq_cst);
        if (now == e) break;
        e = now;
      }
    }
    ~Pin() {
      slot_->epoch.store(0, std::memory_order_release);
      slot_->used.store(false, std::memory_order_release);
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

   private:
    EpochReclaimer* r_;
    Slot* slot_;
  };

  /// Writer side (caller must hold the structure's exclusive writer
  /// mutex): queue `deleter` to run once no pinned reader can still hold
  /// a pointer obtained before the retire.
  void Retire(std::function<void()> deleter) {
    limbo_.emplace_back(global_.load(std::memory_order_relaxed),
                        std::move(deleter));
    limbo_count_.store(limbo_.size(), std::memory_order_relaxed);
  }

  /// Writer side: advance the epoch if every pinned reader has caught
  /// up, then free limbo entries two epochs old. Called at the end of
  /// each write operation.
  void Collect() {
    const uint64_t e = global_.load(std::memory_order_relaxed);
    bool can_advance = true;
    for (size_t i = 0; i < kSlots; ++i) {
      uint64_t p = slots_[i].epoch.load(std::memory_order_seq_cst);
      if (p != 0 && p != e) {
        can_advance = false;
        break;
      }
    }
    if (can_advance) global_.store(e + 1, std::memory_order_seq_cst);
    const uint64_t frontier = global_.load(std::memory_order_relaxed);
    size_t kept = 0;
    for (size_t i = 0; i < limbo_.size(); ++i) {
      // Free once global >= tag + 2: readers pinned at `tag` (the last
      // ones able to load the retired pointer) block the advance past
      // tag + 1, so reaching tag + 2 proves they have all unpinned.
      if (limbo_[i].first + 2 <= frontier) {
        limbo_[i].second();
      } else {
        if (kept != i) limbo_[kept] = std::move(limbo_[i]);
        kept++;
      }
    }
    limbo_.resize(kept);
    limbo_count_.store(kept, std::memory_order_relaxed);
  }

  /// Destructor path: no readers can remain; run everything.
  void DrainAll() {
    for (auto& [tag, fn] : limbo_) fn();
    limbo_.clear();
    limbo_count_.store(0, std::memory_order_relaxed);
  }

  /// Retired-but-not-yet-freed entries. Mirrored through an atomic so
  /// telemetry can sample it without the writer mutex; growth while a
  /// long reader pin is held is bounded by the write rate during the pin.
  size_t limbo_size() const {
    return limbo_count_.load(std::memory_order_relaxed);
  }

  /// Full unsuccessful slot scans across all pins — nonzero means more
  /// than kSlots readers raced for pins and some spun waiting.
  uint64_t slot_waits() const {
    return slot_waits_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};
    std::atomic<bool> used{false};
  };

  Slot* ClaimSlot() {
    const size_t start =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kSlots;
    for (;;) {
      for (size_t i = 0; i < kSlots; ++i) {
        Slot& s = slots_[(start + i) % kSlots];
        bool expected = false;
        if (!s.used.load(std::memory_order_relaxed) &&
            s.used.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
          return &s;
        }
      }
      // All kSlots pins are in flight (> kSlots concurrent reads on one
      // tree): yield until one frees. Counted so oversubscription shows
      // up in diagnostics instead of as silent spinning.
      slot_waits_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }

  /// Starts at 2 so a zero slot always means "unpinned" and freshly
  /// retired objects (tag >= 2) never free at frontier 0/1.
  std::atomic<uint64_t> global_{2};
  Slot slots_[kSlots];
  /// (retire-epoch tag, deleter); writer-mutex-serialized access only.
  std::vector<std::pair<uint64_t, std::function<void()>>> limbo_;
  /// Lock-free mirror of limbo_.size() for cross-thread sampling.
  std::atomic<size_t> limbo_count_{0};
  std::atomic<uint64_t> slot_waits_{0};
};

}  // namespace olc
}  // namespace vbtree

#endif  // VBTREE_COMMON_OLC_H_
