#ifndef VBTREE_CATALOG_TUPLE_H_
#define VBTREE_CATALOG_TUPLE_H_

#include <cstdint>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/result.h"

namespace vbtree {

/// Row identifier inside a TableHeap: (page, slot).
struct Rid {
  int32_t page_id = -1;
  uint16_t slot = 0;

  bool valid() const { return page_id >= 0; }
  bool operator==(const Rid& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
};

/// A materialized row: one Value per schema column. Column 0 is the
/// primary key.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t num_values() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }
  void set_value(size_t i, Value v) { values_[i] = std::move(v); }

  /// Primary key (column 0).
  int64_t key() const { return values_[0].AsInt(); }

  /// Exact serialized byte size under `schema` ordering.
  size_t SerializedSize() const;

  void Serialize(ByteWriter* w) const;
  static Result<Tuple> Deserialize(ByteReader* r, const Schema& schema);

  bool operator==(const Tuple& o) const { return values_ == o.values_; }

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace vbtree

#endif  // VBTREE_CATALOG_TUPLE_H_
