#ifndef VBTREE_CATALOG_VALUE_H_
#define VBTREE_CATALOG_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "common/serde.h"

namespace vbtree {

/// Column data types. Column 0 of every table is the primary search key
/// and must be kInt64 (the VB-tree indexes it).
enum class TypeId : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

std::string_view TypeIdToString(TypeId t);

/// A single attribute value. Small, copyable, order-comparable within the
/// same type.
class Value {
 public:
  Value() : type_(TypeId::kInt64), v_(int64_t{0}) {}

  static Value Int(int64_t v) { return Value(TypeId::kInt64, v); }
  static Value Double(double v) { return Value(TypeId::kDouble, v); }
  static Value Str(std::string v) { return Value(TypeId::kString, std::move(v)); }

  TypeId type() const { return type_; }

  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Three-way comparison; values of different types order by TypeId so
  /// the relation is total (needed by predicate evaluation).
  int Compare(const Value& o) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// Serialized size in bytes (matches Serialize output exactly; used for
  /// communication-cost accounting).
  size_t SerializedSize() const;

  void Serialize(ByteWriter* w) const;
  static Result<Value> Deserialize(ByteReader* r, TypeId type);

  std::string ToString() const;

 private:
  Value(TypeId t, int64_t v) : type_(t), v_(v) {}
  Value(TypeId t, double v) : type_(t), v_(v) {}
  Value(TypeId t, std::string v) : type_(t), v_(std::move(v)) {}

  TypeId type_;
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace vbtree

#endif  // VBTREE_CATALOG_VALUE_H_
