#ifndef VBTREE_CATALOG_SCHEMA_H_
#define VBTREE_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/result.h"

namespace vbtree {

/// One column definition.
struct Column {
  std::string name;
  TypeId type = TypeId::kInt64;

  Column() = default;
  Column(std::string n, TypeId t) : name(std::move(n)), type(t) {}
};

/// Ordered list of columns. Column 0 is the primary key (kInt64).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  /// Index of the column with `name`, or kNotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// True if column 0 exists and is an kInt64 key column.
  bool HasValidKey() const {
    return !cols_.empty() && cols_[0].type == TypeId::kInt64;
  }

  void Serialize(ByteWriter* w) const;
  static Result<Schema> Deserialize(ByteReader* r);

  bool operator==(const Schema& o) const;

 private:
  std::vector<Column> cols_;
};

}  // namespace vbtree

#endif  // VBTREE_CATALOG_SCHEMA_H_
