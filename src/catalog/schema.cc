#include "catalog/schema.h"

namespace vbtree {

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

void Schema::Serialize(ByteWriter* w) const {
  w->PutVarint(cols_.size());
  for (const Column& c : cols_) {
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
  }
}

Result<Schema> Schema::Deserialize(ByteReader* r) {
  VBT_ASSIGN_OR_RETURN(uint64_t n, r->ReadCount());
  std::vector<Column> cols;
  cols.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    VBT_ASSIGN_OR_RETURN(std::string name, r->ReadString());
    VBT_ASSIGN_OR_RETURN(uint8_t t, r->ReadU8());
    if (t > static_cast<uint8_t>(TypeId::kString)) {
      return Status::Corruption("bad TypeId in schema");
    }
    cols.emplace_back(std::move(name), static_cast<TypeId>(t));
  }
  return Schema(std::move(cols));
}

bool Schema::operator==(const Schema& o) const {
  if (cols_.size() != o.cols_.size()) return false;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name != o.cols_[i].name || cols_[i].type != o.cols_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace vbtree
