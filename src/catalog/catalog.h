#ifndef VBTREE_CATALOG_CATALOG_H_
#define VBTREE_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "catalog/schema.h"
#include "common/result.h"

namespace vbtree {

using table_id_t = uint32_t;

/// Metadata for one table. The database and table names participate in
/// every attribute digest preimage (paper formula (1)), which binds a
/// digest to its location and defeats cross-table value substitution.
struct TableInfo {
  table_id_t id = 0;
  std::string name;
  Schema schema;
  /// True for materialized join views (§3.3 Join).
  bool is_view = false;
};

/// Name → table registry for one database.
class Catalog {
 public:
  explicit Catalog(std::string db_name) : db_name_(std::move(db_name)) {}

  const std::string& db_name() const { return db_name_; }

  Result<table_id_t> CreateTable(const std::string& name, Schema schema,
                                 bool is_view = false);
  Result<const TableInfo*> GetTable(const std::string& name) const;
  Result<const TableInfo*> GetTable(table_id_t id) const;

  size_t num_tables() const { return by_id_.size(); }

 private:
  std::string db_name_;
  std::map<std::string, table_id_t> by_name_;
  std::map<table_id_t, std::unique_ptr<TableInfo>> by_id_;
  table_id_t next_id_ = 1;
};

}  // namespace vbtree

#endif  // VBTREE_CATALOG_CATALOG_H_
