#include "catalog/value.h"

#include <cmath>

namespace vbtree {

std::string_view TypeIdToString(TypeId t) {
  switch (t) {
    case TypeId::kInt64:
      return "INT64";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "STRING";
  }
  return "?";
}

int Value::Compare(const Value& o) const {
  if (type_ != o.type_) {
    return static_cast<int>(type_) < static_cast<int>(o.type_) ? -1 : 1;
  }
  switch (type_) {
    case TypeId::kInt64: {
      int64_t a = AsInt(), b = o.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kDouble: {
      double a = AsDouble(), b = o.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kString:
      return AsString().compare(o.AsString()) < 0
                 ? -1
                 : (AsString() == o.AsString() ? 0 : 1);
  }
  return 0;
}

size_t Value::SerializedSize() const {
  switch (type_) {
    case TypeId::kInt64:
    case TypeId::kDouble:
      return 8;
    case TypeId::kString: {
      size_t n = AsString().size();
      size_t varint = 1;
      for (uint64_t v = n; v >= 0x80; v >>= 7) varint++;
      return varint + n;
    }
  }
  return 0;
}

void Value::Serialize(ByteWriter* w) const {
  switch (type_) {
    case TypeId::kInt64:
      w->PutI64(AsInt());
      break;
    case TypeId::kDouble:
      w->PutDouble(AsDouble());
      break;
    case TypeId::kString:
      w->PutString(AsString());
      break;
  }
}

Result<Value> Value::Deserialize(ByteReader* r, TypeId type) {
  switch (type) {
    case TypeId::kInt64: {
      VBT_ASSIGN_OR_RETURN(int64_t v, r->ReadI64());
      return Value::Int(v);
    }
    case TypeId::kDouble: {
      VBT_ASSIGN_OR_RETURN(double v, r->ReadDouble());
      return Value::Double(v);
    }
    case TypeId::kString: {
      VBT_ASSIGN_OR_RETURN(std::string s, r->ReadString());
      return Value::Str(std::move(s));
    }
  }
  return Status::Corruption("unknown TypeId");
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kInt64:
      return std::to_string(AsInt());
    case TypeId::kDouble:
      return std::to_string(AsDouble());
    case TypeId::kString:
      return AsString();
  }
  return "?";
}

}  // namespace vbtree
