#include "catalog/catalog.h"

namespace vbtree {

Result<table_id_t> Catalog::CreateTable(const std::string& name, Schema schema,
                                        bool is_view) {
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  if (!schema.HasValidKey()) {
    return Status::InvalidArgument(
        "column 0 must be an INT64 primary key column");
  }
  table_id_t id = next_id_++;
  auto info = std::make_unique<TableInfo>();
  info->id = id;
  info->name = name;
  info->schema = std::move(schema);
  info->is_view = is_view;
  by_name_[name] = id;
  by_id_[id] = std::move(info);
  return id;
}

Result<const TableInfo*> Catalog::GetTable(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no table named " + name);
  return GetTable(it->second);
}

Result<const TableInfo*> Catalog::GetTable(table_id_t id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return Status::NotFound("no table with that id");
  return it->second.get();
}

}  // namespace vbtree
