#include "catalog/tuple.h"

namespace vbtree {

size_t Tuple::SerializedSize() const {
  size_t n = 0;
  for (const Value& v : values_) n += v.SerializedSize();
  return n;
}

void Tuple::Serialize(ByteWriter* w) const {
  for (const Value& v : values_) v.Serialize(w);
}

Result<Tuple> Tuple::Deserialize(ByteReader* r, const Schema& schema) {
  std::vector<Value> values;
  values.reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    VBT_ASSIGN_OR_RETURN(Value v,
                         Value::Deserialize(r, schema.column(i).type));
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace vbtree
