#include "txn/lock_manager.h"

namespace vbtree {

bool LockManager::CanGrant(const LockState& st, txn_id_t txn,
                           LockMode mode) const {
  if (mode == LockMode::kShared) {
    // Grantable unless another txn holds X.
    return !st.has_exclusive || st.exclusive_holder == txn;
  }
  // Exclusive: no other holder of any kind.
  if (st.has_exclusive) return st.exclusive_holder == txn;
  if (st.shared_holders.empty()) return true;
  return st.shared_holders.size() == 1 && st.shared_holders.count(txn) == 1;
}

void LockManager::GrantLocked(LockState* st, txn_id_t txn, lock_id_t id,
                              LockMode mode) {
  if (mode == LockMode::kShared) {
    if (!st->has_exclusive) st->shared_holders.insert(txn);
    // A txn that already holds X keeps X; S is implied.
  } else {
    st->shared_holders.erase(txn);  // upgrade path
    st->has_exclusive = true;
    st->exclusive_holder = txn;
  }
  held_[txn].insert(id);
}

Status LockManager::Acquire(txn_id_t txn, lock_id_t id, LockMode mode) {
  std::unique_lock<std::mutex> lock(mu_);
  LockState& st = table_[id];
  auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (!CanGrant(st, txn, mode)) {
    if (st.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::LockTimeout("lock wait timed out (possible deadlock)");
    }
  }
  GrantLocked(&st, txn, id, mode);
  return Status::OK();
}

Status LockManager::Release(txn_id_t txn, lock_id_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(id);
  if (it == table_.end()) return Status::NotFound("lock not held");
  LockState& st = it->second;
  bool released = false;
  if (st.has_exclusive && st.exclusive_holder == txn) {
    st.has_exclusive = false;
    st.exclusive_holder = 0;
    released = true;
  }
  if (st.shared_holders.erase(txn) > 0) released = true;
  if (!released) return Status::NotFound("lock not held by txn");
  auto held_it = held_.find(txn);
  if (held_it != held_.end()) held_it->second.erase(id);
  st.cv.notify_all();
  return Status::OK();
}

void LockManager::ReleaseAll(txn_id_t txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto held_it = held_.find(txn);
  if (held_it == held_.end()) return;
  for (lock_id_t id : held_it->second) {
    auto it = table_.find(id);
    if (it == table_.end()) continue;
    LockState& st = it->second;
    if (st.has_exclusive && st.exclusive_holder == txn) {
      st.has_exclusive = false;
      st.exclusive_holder = 0;
    }
    st.shared_holders.erase(txn);
    st.cv.notify_all();
  }
  held_.erase(held_it);
}

bool LockManager::HoldsLock(txn_id_t txn, lock_id_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = held_.find(txn);
  return it != held_.end() && it->second.count(id) > 0;
}

size_t LockManager::NumLockedResources() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, st] : table_) {
    if (st.has_exclusive || !st.shared_holders.empty()) n++;
  }
  return n;
}

}  // namespace vbtree
