#ifndef VBTREE_TXN_LOCK_MANAGER_H_
#define VBTREE_TXN_LOCK_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>

#include "common/config.h"
#include "common/result.h"

namespace vbtree {

/// Lockable resource id. The VB-tree uses one id per node digest, which is
/// the granularity of §3.4: queries S-lock the digests in their enveloping
/// subtree; insert transactions X-lock each digest "in turn only as it is
/// being modified"; delete transactions X-lock the whole root-to-leaf path.
using lock_id_t = uint64_t;

enum class LockMode { kShared, kExclusive };

/// Blocking S/X lock table with timeout-based deadlock resolution
/// (a waiter that exceeds the timeout aborts with kLockTimeout, standing
/// in for a full waits-for-graph detector).
class LockManager {
 public:
  explicit LockManager(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000))
      : timeout_(timeout) {}

  /// Acquires `mode` on `id` for `txn`. Re-acquisition by the same txn is
  /// a no-op unless it is an S→X upgrade, which succeeds only if txn is
  /// the sole holder.
  Status Acquire(txn_id_t txn, lock_id_t id, LockMode mode);

  Status Release(txn_id_t txn, lock_id_t id);

  /// Releases everything `txn` holds (commit/abort).
  void ReleaseAll(txn_id_t txn);

  /// Introspection for tests.
  bool HoldsLock(txn_id_t txn, lock_id_t id) const;
  size_t NumLockedResources() const;

 private:
  struct LockState {
    std::set<txn_id_t> shared_holders;
    txn_id_t exclusive_holder = 0;
    bool has_exclusive = false;
    std::condition_variable cv;
  };

  bool CanGrant(const LockState& st, txn_id_t txn, LockMode mode) const;
  void GrantLocked(LockState* st, txn_id_t txn, lock_id_t id, LockMode mode);

  std::chrono::milliseconds timeout_;
  mutable std::mutex mu_;
  std::map<lock_id_t, LockState> table_;
  std::unordered_map<txn_id_t, std::set<lock_id_t>> held_;
};

/// RAII helper releasing all of a transaction's locks on scope exit.
class TxnLockGuard {
 public:
  TxnLockGuard(LockManager* lm, txn_id_t txn) : lm_(lm), txn_(txn) {}
  ~TxnLockGuard() {
    if (lm_ != nullptr) lm_->ReleaseAll(txn_);
  }
  TxnLockGuard(const TxnLockGuard&) = delete;
  TxnLockGuard& operator=(const TxnLockGuard&) = delete;

 private:
  LockManager* lm_;
  txn_id_t txn_;
};

}  // namespace vbtree

#endif  // VBTREE_TXN_LOCK_MANAGER_H_
