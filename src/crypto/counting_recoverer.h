#ifndef VBTREE_CRYPTO_COUNTING_RECOVERER_H_
#define VBTREE_CRYPTO_COUNTING_RECOVERER_H_

#include "crypto/signer.h"

namespace vbtree {

/// Decorator that forwards to another Recoverer while ticking a separate
/// CryptoCounters sink. Lets each client account its own Cost_s
/// (signature-decrypt) operations even when the underlying public-key
/// object is shared via the KeyDirectory.
class CountingRecoverer : public Recoverer {
 public:
  CountingRecoverer(Recoverer* inner, CryptoCounters* counters)
      : inner_(inner), counters_(counters) {}

  Result<Digest> Recover(const Signature& sig) override {
    if (counters_ != nullptr) CryptoCounters::Tick(counters_->recovers);
    return inner_->Recover(sig);
  }

  size_t signature_length() const override {
    return inner_->signature_length();
  }

 private:
  Recoverer* inner_;
  CryptoCounters* counters_;
};

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_COUNTING_RECOVERER_H_
