#ifndef VBTREE_CRYPTO_COUNTERS_H_
#define VBTREE_CRYPTO_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace vbtree {

/// Operation counts matching the cost parameters of paper Table 1:
///   Cost_h — deriving an attribute digest with the one-way hash h,
///   Cost_k — combining two digests with the commutative hash g,
///   Cost_s — decrypting (recovering) a signature with the public key.
///
/// The analytical figures (Fig. 12, Fig. 13) are expressed in units of
/// Cost_h; `CostUnits` converts measured counts into the same units given
/// the two ratios the paper sweeps.
///
/// Every field is an atomic ticked with relaxed ordering (use the Tick
/// helper, not operator++, on hot paths — the latter is a seq_cst RMW):
/// one counter block may be bumped from many threads at once (the
/// BatchVerifier's pool-recovery phase fans one batch's signature pool
/// across its workers into a single batch-level sink). Relaxed ordering
/// is enough — the counts are telemetry, read only after the work they
/// count has been joined. Copy construction and assignment take a
/// relaxed snapshot per field so the struct keeps its original value
/// semantics (outcomes are returned by value everywhere).
struct CryptoCounters {
  /// Relaxed increment for the per-operation hot paths.
  static void Tick(std::atomic<uint64_t>& c, uint64_t n = 1) {
    c.fetch_add(n, std::memory_order_relaxed);
  }
  std::atomic<uint64_t> attr_hashes{0};  ///< h() evaluations (Cost_h each)
  std::atomic<uint64_t> combine_ops{0};  ///< digests folded by g (Cost_k each)
  std::atomic<uint64_t> signs{0};        ///< signature creations (central server only)
  std::atomic<uint64_t> recovers{0};     ///< signature decrypts (Cost_s each)

  /// Recovered-digest cache traffic (client verification fast path): a
  /// hit is one Cost_s avoided; an eviction is capacity pressure.
  std::atomic<uint64_t> digest_cache_hits{0};
  std::atomic<uint64_t> digest_cache_misses{0};
  std::atomic<uint64_t> digest_cache_evictions{0};

  CryptoCounters() = default;
  CryptoCounters(const CryptoCounters& o) { *this = o; }
  CryptoCounters& operator=(const CryptoCounters& o) {
    CopyField(attr_hashes, o.attr_hashes);
    CopyField(combine_ops, o.combine_ops);
    CopyField(signs, o.signs);
    CopyField(recovers, o.recovers);
    CopyField(digest_cache_hits, o.digest_cache_hits);
    CopyField(digest_cache_misses, o.digest_cache_misses);
    CopyField(digest_cache_evictions, o.digest_cache_evictions);
    return *this;
  }

  void Reset() { *this = CryptoCounters{}; }

  /// Accumulates another counter block into this one.
  void Add(const CryptoCounters& o) {
    Tick(attr_hashes, o.attr_hashes.load(std::memory_order_relaxed));
    Tick(combine_ops, o.combine_ops.load(std::memory_order_relaxed));
    Tick(signs, o.signs.load(std::memory_order_relaxed));
    Tick(recovers, o.recovers.load(std::memory_order_relaxed));
    Tick(digest_cache_hits,
         o.digest_cache_hits.load(std::memory_order_relaxed));
    Tick(digest_cache_misses,
         o.digest_cache_misses.load(std::memory_order_relaxed));
    Tick(digest_cache_evictions,
         o.digest_cache_evictions.load(std::memory_order_relaxed));
  }

  static void CopyField(std::atomic<uint64_t>& dst,
                        const std::atomic<uint64_t>& src) {
    dst.store(src.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }

  CryptoCounters operator-(const CryptoCounters& o) const {
    CryptoCounters r;
    r.attr_hashes = attr_hashes - o.attr_hashes;
    r.combine_ops = combine_ops - o.combine_ops;
    r.signs = signs - o.signs;
    r.recovers = recovers - o.recovers;
    r.digest_cache_hits = digest_cache_hits - o.digest_cache_hits;
    r.digest_cache_misses = digest_cache_misses - o.digest_cache_misses;
    r.digest_cache_evictions =
        digest_cache_evictions - o.digest_cache_evictions;
    return r;
  }

  /// Total cost in Cost_h units.
  /// @param cost_k_ratio Cost_k / Cost_h (paper default 10, Fig. 13a sweeps 0–3).
  /// @param x Cost_s / Cost_h (Fig. 12 uses X in {5, 10, 100}).
  double CostUnits(double cost_k_ratio, double x) const {
    return static_cast<double>(attr_hashes.load(std::memory_order_relaxed)) +
           cost_k_ratio *
               static_cast<double>(combine_ops.load(std::memory_order_relaxed)) +
           x * static_cast<double>(recovers.load(std::memory_order_relaxed));
  }
};

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_COUNTERS_H_
