#ifndef VBTREE_CRYPTO_COUNTERS_H_
#define VBTREE_CRYPTO_COUNTERS_H_

#include <cstdint>

namespace vbtree {

/// Operation counts matching the cost parameters of paper Table 1:
///   Cost_h — deriving an attribute digest with the one-way hash h,
///   Cost_k — combining two digests with the commutative hash g,
///   Cost_s — decrypting (recovering) a signature with the public key.
///
/// The analytical figures (Fig. 12, Fig. 13) are expressed in units of
/// Cost_h; `CostUnits` converts measured counts into the same units given
/// the two ratios the paper sweeps.
struct CryptoCounters {
  uint64_t attr_hashes = 0;  ///< h() evaluations (Cost_h each)
  uint64_t combine_ops = 0;  ///< digests folded by g (Cost_k each)
  uint64_t signs = 0;        ///< signature creations (central server only)
  uint64_t recovers = 0;     ///< signature decrypts (Cost_s each)

  void Reset() { *this = CryptoCounters{}; }

  CryptoCounters operator-(const CryptoCounters& o) const {
    CryptoCounters r;
    r.attr_hashes = attr_hashes - o.attr_hashes;
    r.combine_ops = combine_ops - o.combine_ops;
    r.signs = signs - o.signs;
    r.recovers = recovers - o.recovers;
    return r;
  }

  /// Total cost in Cost_h units.
  /// @param cost_k_ratio Cost_k / Cost_h (paper default 10, Fig. 13a sweeps 0–3).
  /// @param x Cost_s / Cost_h (Fig. 12 uses X in {5, 10, 100}).
  double CostUnits(double cost_k_ratio, double x) const {
    return static_cast<double>(attr_hashes) +
           cost_k_ratio * static_cast<double>(combine_ops) +
           x * static_cast<double>(recovers);
  }
};

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_COUNTERS_H_
