#ifndef VBTREE_CRYPTO_COMMUTATIVE_HASH_H_
#define VBTREE_CRYPTO_COMMUTATIVE_HASH_H_

#include <cstdint>
#include <span>

#include "crypto/counters.h"
#include "crypto/digest.h"

namespace vbtree {

/// The paper's commutative one-way hash g (§3.2):
///
///     g(d1, ..., dm) = G^(d1 * d2 * ... * dm)  mod n,   n = 2^k
///
/// realized incrementally as repeated modular exponentiation,
///
///     acc_0 = G;   acc_i = acc_{i-1} ^ d_i  mod 2^k
///
/// which is order independent because (G^a)^b = (G^b)^a = G^(ab). The
/// modulus n = 2^k is chosen "to optimize the modulo operation" (the
/// paper's own optimization): with k = 128, reduction is free 128-bit
/// wrap-around; exponentiation uses square-and-multiply with reduction
/// after every step, exactly the 4-multiplications example in §3.2.
///
/// Properties relied on elsewhere (and property-tested):
///  * Commutativity / order independence of Combine.
///  * Incremental extension: Extend(Combine(S), d) == Combine(S ∪ {d}),
///    which makes inserts O(height) digest updates (§3.4).
///  * Results are always odd (G odd => units mod 2^k), hence never zero.
///
/// Security note: this mirrors the paper's construction. Discrete log
/// modulo 2^k is not hard in the modern sense; a production deployment
/// would swap in a hash over a group with hard DL. The class isolates
/// that choice behind Combine/Extend so the swap is local.
class CommutativeHash {
 public:
  /// Default generator: odd 128-bit constant (low 64 bits of SHA-256("vbtree-g")
  /// forced odd). Any odd G works; fixed so digests are reproducible.
  static constexpr uint64_t kDefaultGeneratorLo = 0x9E3779B97F4A7C15ULL | 1ULL;

  /// @param modulus_bits k in n = 2^k; must be in [8, 128].
  /// @param counters optional sink for Cost_k accounting (one tick per
  ///   digest folded into an accumulator).
  explicit CommutativeHash(int modulus_bits = 128,
                           CryptoCounters* counters = nullptr)
      : bits_(modulus_bits), counters_(counters) {}

  int modulus_bits() const { return bits_; }
  void set_counters(CryptoCounters* counters) { counters_ = counters; }

  /// g({}) = G: the empty combination is the generator itself.
  Digest Identity() const;

  /// Folds one digest into an accumulated hash value: acc^d mod 2^k.
  Digest Extend(const Digest& acc, const Digest& d) const;

  /// g(d1, ..., dm) for the whole set.
  Digest Combine(std::span<const Digest> digests) const;

  /// Modular exponentiation base^exp mod 2^bits via square-and-multiply
  /// with reduction after every multiplication.
  Uint128 ModExp(Uint128 base, Uint128 exp) const;

  // --- exponent-space operations -----------------------------------------
  //
  // Every combined digest is G^(d1 * d2 * ... * dm) mod 2^k. Because the
  // multiplicative order of G divides 2^(k-2), which divides 2^k, the
  // exponent product can itself be maintained mod 2^k. This enables two
  // algebraically identical but much cheaper server-side strategies:
  //
  //  * CombineViaExponent: one multiplication per digest plus a single
  //    exponentiation, instead of one exponentiation per digest;
  //  * UpdateExponent: O(1) maintenance when one input digest changes —
  //    all combined digests are odd (powers of the odd G), hence
  //    invertible mod 2^k, so e' = e * d_old^{-1} * d_new.
  //
  // The results are bit-identical to the chained Combine/Extend, which is
  // what verifiers (and the paper's client procedure) use; property tests
  // assert the equivalence.

  /// The exponent factor a digest contributes (the all-zero digest maps
  /// to 1, mirroring Extend's totality fix).
  static Uint128 ExponentFactor(const Digest& d) {
    Uint128 e = d.ToUint128();
    return e.IsZero() ? Uint128(1) : e;
  }

  /// Product of the digests' exponent factors, mod 2^bits.
  Uint128 ExponentProduct(std::span<const Digest> digests) const;

  /// G^exponent — materializes a digest from a maintained exponent.
  Digest FromExponent(Uint128 exponent) const;

  /// Equivalent to Combine(digests) via a single exponentiation.
  Digest CombineViaExponent(std::span<const Digest> digests) const;

  /// O(1) exponent maintenance when one combined digest changes from
  /// `d_old` to `d_new`. Both must be odd (true for all tuple/node
  /// digests, which are powers of G).
  Uint128 UpdateExponent(Uint128 exponent, const Digest& d_old,
                         const Digest& d_new) const;

 private:
  int bits_;
  CryptoCounters* counters_;
};

/// Multiplicative inverse of an odd value mod 2^128 by Newton-Hensel
/// lifting (y <- y(2 - xy), doubling precision each step).
Uint128 InverseOdd128(Uint128 x);

/// Order-*dependent* combiner used only by the ablation benchmark: chains
/// SHA-256 over the concatenation. Cheaper per op than modular
/// exponentiation but forfeits the three advantages of §3.2 (arbitrary
/// order, edge-side projection, incremental insert).
class ChainedHash {
 public:
  explicit ChainedHash(CryptoCounters* counters = nullptr)
      : counters_(counters) {}

  Digest Combine(std::span<const Digest> digests) const;

 private:
  CryptoCounters* counters_;
};

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_COMMUTATIVE_HASH_H_
