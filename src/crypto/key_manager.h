#ifndef VBTREE_CRYPTO_KEY_MANAGER_H_
#define VBTREE_CRYPTO_KEY_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/result.h"
#include "crypto/signer.h"

namespace vbtree {

/// Validity metadata for one public-key version.
///
/// §3.4: for delayed broadcast of updates, "the central server can include
/// the timestamp or version number in its public key, and make available to
/// users the validity period of each public key at a well-known location",
/// so edge servers cannot masquerade out-of-date data signed with an old
/// private key.
struct KeyVersionInfo {
  uint32_t version = 0;
  uint64_t valid_from = 0;  ///< inclusive, logical timestamp
  uint64_t valid_to = 0;    ///< inclusive, logical timestamp
};

/// The "well-known location" of §3.4: maps key versions to validity
/// windows and recoverers. Clients consult it to reject results signed
/// with an expired key.
class KeyDirectory {
 public:
  /// Registers (or replaces) a key version.
  void Publish(const KeyVersionInfo& info, std::shared_ptr<Recoverer> recoverer);

  /// Marks `version` as expiring at time `at` (exclusive upper bound
  /// becomes at-1). Called when the central server rotates keys.
  Status Expire(uint32_t version, uint64_t at);

  /// Returns the recoverer for `version` if that version is valid at
  /// `now`; kVerificationFailure for unknown or expired versions — this is
  /// exactly the stale-data masquerade detection of §3.4.
  Result<std::shared_ptr<Recoverer>> RecovererFor(uint32_t version,
                                                  uint64_t now) const;

  Result<KeyVersionInfo> Info(uint32_t version) const;

  /// Highest registered version.
  uint32_t LatestVersion() const;

 private:
  mutable std::mutex mu_;
  struct Entry {
    KeyVersionInfo info;
    std::shared_ptr<Recoverer> recoverer;
  };
  std::map<uint32_t, Entry> entries_;
};

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_KEY_MANAGER_H_
