#include "crypto/recovered_digest_cache.h"

#include <cstring>

namespace vbtree {

namespace {

inline uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer: enough avalanche for ciphertext-like keys.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

size_t SignatureHash::operator()(const Signature& s) const {
  // This runs once per cache probe on the verification hot path, so the
  // common 16-byte signature takes two word loads and one mix instead of
  // a byte-wise FNV walk. The hash is never a trust boundary (equality
  // compares full bytes); it only has to spread ciphertext-like keys.
  if (s.size() == 16) {
    return static_cast<size_t>(
        Mix64(Load64(s.data()) ^ (Load64(s.data() + 8) * 0x9e3779b97f4a7c15ULL)));
  }
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : s) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(Mix64(h));
}

RecoveredDigestCache::RecoveredDigestCache(Options options)
    : options_(options) {
  size_t shards = options_.shards;
  if (shards == 0) shards = 1;
  // Round down to a power of two so ShardFor can mask.
  while ((shards & (shards - 1)) != 0) shards &= shards - 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ = options_.capacity / shards;
  if (options_.capacity > 0 && per_shard_capacity_ == 0) {
    per_shard_capacity_ = 1;
  }
}

RecoveredDigestCache::Shard& RecoveredDigestCache::ShardFor(
    const Signature& sig) {
  return *shards_[SignatureHash{}(sig) & (shards_.size() - 1)];
}

bool RecoveredDigestCache::Lookup(uint64_t domain, const Signature& sig,
                                  Digest* out, CryptoCounters* counters) {
  if (per_shard_capacity_ == 0) {
    if (counters != nullptr) CryptoCounters::Tick(counters->digest_cache_misses);
    return false;
  }
  Shard& shard = ShardFor(sig);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(sig);
  // A resident entry from another key epoch is a miss: recovery is only
  // a pure function of the bytes *under one public key*.
  if (it == shard.map.end() || it->second.domain != domain) {
    shard.misses++;
    if (counters != nullptr) CryptoCounters::Tick(counters->digest_cache_misses);
    return false;
  }
  it->second.last_used = ++shard.clock;
  *out = it->second.digest;
  shard.hits++;
  if (counters != nullptr) CryptoCounters::Tick(counters->digest_cache_hits);
  return true;
}

void RecoveredDigestCache::EvictOne(Shard* shard) {
  // Sample a handful of entries starting at the rotating bucket cursor
  // and drop the one least recently stamped. Approximate, but unbiased
  // over time — and never touches more than a few cache lines, unlike a
  // linked-list LRU whose per-hit splice costs more than a cheap
  // Recover.
  constexpr size_t kSample = 8;
  const size_t buckets = shard->map.bucket_count();
  const Signature* victim = nullptr;
  uint64_t oldest = 0;
  size_t seen = 0;
  for (size_t probe = 0; probe < buckets && seen < kSample; ++probe) {
    size_t b = (shard->sweep + probe) % buckets;
    for (auto it = shard->map.begin(b); it != shard->map.end(b); ++it) {
      if (victim == nullptr || it->second.last_used < oldest) {
        victim = &it->first;
        oldest = it->second.last_used;
      }
      if (++seen >= kSample) break;
    }
  }
  shard->sweep = (shard->sweep + 1) % (buckets == 0 ? 1 : buckets);
  if (victim != nullptr) {
    // Copy first: erasing through a reference into the node being
    // destroyed is a use-after-free waiting to happen.
    Signature victim_key = *victim;
    shard->map.erase(victim_key);
    shard->evictions++;
  }
}

void RecoveredDigestCache::Insert(uint64_t domain, const Signature& sig,
                                  const Digest& digest,
                                  CryptoCounters* counters) {
  if (per_shard_capacity_ == 0) return;
  Shard& shard = ShardFor(sig);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(sig);
  if (it != shard.map.end()) {
    // Refresh: same bytes under a rotated key overwrite the stale epoch.
    it->second.domain = domain;
    it->second.digest = digest;
    it->second.last_used = ++shard.clock;
    return;
  }
  if (shard.map.size() >= per_shard_capacity_) {
    EvictOne(&shard);
    if (counters != nullptr) CryptoCounters::Tick(counters->digest_cache_evictions);
  }
  shard.map.emplace(sig, Entry{domain, digest, ++shard.clock});
}

void RecoveredDigestCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->map.clear();
  }
}

RecoveredDigestCache::Stats RecoveredDigestCache::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.evictions += shard->evictions;
    s.entries += shard->map.size();
  }
  return s;
}

Result<Digest> CachingRecoverer::Recover(const Signature& sig) {
  Digest d;
  if (cache_ != nullptr && cache_->Lookup(domain_, sig, &d, counters_)) {
    return d;
  }
  if (counters_ != nullptr) CryptoCounters::Tick(counters_->recovers);
  VBT_ASSIGN_OR_RETURN(d, inner_->Recover(sig));
  if (cache_ != nullptr) cache_->Insert(domain_, sig, d, counters_);
  return d;
}

}  // namespace vbtree
