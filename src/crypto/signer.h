#ifndef VBTREE_CRYPTO_SIGNER_H_
#define VBTREE_CRYPTO_SIGNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "crypto/counters.h"
#include "crypto/digest.h"

namespace vbtree {

/// A signed digest: s(d) in the paper's notation.
using Signature = std::vector<uint8_t>;

/// Message-*recovering* signature scheme, the primitive the paper assumes:
/// s() encrypts a digest with the private key, p() decrypts it with the
/// public key and returns the original digest (§3.2, formulas (1)–(3)).
///
/// Two implementations:
///  * `SimSigner` — 16-byte signatures matching the paper's |s| = 16
///    parameter (see sim_signer.h for the substitution rationale);
///  * `RsaSigner` — real RSA with OpenSSL's verify-recover operation.
class Signer {
 public:
  virtual ~Signer() = default;

  /// s(d): signs with the private key. Only the central DBMS holds a
  /// Signer that can sign.
  virtual Result<Signature> Sign(const Digest& d) = 0;

  /// Size in bytes of one signature; drives communication-cost accounting.
  virtual size_t signature_length() const = 0;

  virtual std::string name() const = 0;
};

/// The public-key side: p(s) recovers the digest from a signature. Edge
/// servers and clients hold only a Recoverer, never a Signer.
class Recoverer {
 public:
  virtual ~Recoverer() = default;

  /// p(sig): recovers the embedded digest. Fails with
  /// kVerificationFailure if the signature is malformed or was not
  /// produced by the matching private key (detectable for RsaSigner via
  /// padding; SimSigner decrypts unconditionally and relies on the digest
  /// equation check downstream, exactly like the paper's 16-byte model).
  virtual Result<Digest> Recover(const Signature& sig) = 0;

  virtual size_t signature_length() const = 0;
};

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_SIGNER_H_
