#include "crypto/sim_signer.h"

#include <openssl/evp.h>

#include <cstring>

#include "common/logging.h"
#include "crypto/hash.h"

namespace vbtree {

namespace {

/// One-block AES-128-ECB transform (16-byte in, 16-byte out, no padding).
/// ECB over a single block is a plain PRP application, which is all the
/// simulation needs.
bool AesBlock(const std::array<uint8_t, 16>& key, const uint8_t* in,
              uint8_t* out, bool encrypt) {
  EVP_CIPHER_CTX* ctx = EVP_CIPHER_CTX_new();
  if (ctx == nullptr) return false;
  bool ok = EVP_CipherInit_ex(ctx, EVP_aes_128_ecb(), nullptr, key.data(),
                              nullptr, encrypt ? 1 : 0) == 1;
  EVP_CIPHER_CTX_set_padding(ctx, 0);
  int len = 0;
  ok = ok && EVP_CipherUpdate(ctx, out, &len, in, 16) == 1 && len == 16;
  int fin = 0;
  ok = ok && EVP_CipherFinal_ex(ctx, out + len, &fin) == 1;
  EVP_CIPHER_CTX_free(ctx);
  return ok;
}

std::array<uint8_t, 16> DeriveKey(uint64_t seed) {
  uint8_t seed_bytes[8];
  std::memcpy(seed_bytes, &seed, 8);
  auto h = Sha256(Slice(seed_bytes, 8));
  std::array<uint8_t, 16> key;
  std::memcpy(key.data(), h.data(), 16);
  return key;
}

}  // namespace

struct SimSigner::Impl {};
struct SimRecoverer::Impl {};

SimSigner::SimSigner(uint64_t key_seed, CryptoCounters* counters,
                     int work_factor)
    : key_(DeriveKey(key_seed)),
      counters_(counters),
      work_factor_(work_factor < 1 ? 1 : work_factor) {}

SimSigner::~SimSigner() = default;

Result<Signature> SimSigner::Sign(const Digest& d) {
  if (counters_ != nullptr) counters_->signs++;
  Signature sig(kDigestLen);
  uint8_t buf[16];
  std::memcpy(buf, d.bytes.data(), 16);
  // work_factor > 1 chains the PRP to emulate a slower signing primitive.
  for (int i = 0; i < work_factor_; ++i) {
    if (!AesBlock(key_, buf, sig.data(), /*encrypt=*/true)) {
      return Status::Internal("AES encrypt failed");
    }
    std::memcpy(buf, sig.data(), 16);
  }
  return sig;
}

SimRecoverer::SimRecoverer(std::array<uint8_t, 16> key,
                           CryptoCounters* counters, int work_factor)
    : key_(key),
      counters_(counters),
      work_factor_(work_factor < 1 ? 1 : work_factor) {}

SimRecoverer::~SimRecoverer() = default;

Result<Digest> SimRecoverer::Recover(const Signature& sig) {
  if (sig.size() != kDigestLen) {
    return Status::VerificationFailure("bad signature length");
  }
  if (counters_ != nullptr) counters_->recovers++;
  Digest d;
  uint8_t buf[16];
  std::memcpy(buf, sig.data(), 16);
  for (int i = 0; i < work_factor_; ++i) {
    if (!AesBlock(key_, buf, d.bytes.data(), /*encrypt=*/false)) {
      return Status::Internal("AES decrypt failed");
    }
    std::memcpy(buf, d.bytes.data(), 16);
  }
  return d;
}

}  // namespace vbtree
