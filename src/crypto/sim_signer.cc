#include "crypto/sim_signer.h"

#include <openssl/evp.h>

#include <cstring>

#include "common/logging.h"
#include "crypto/hash.h"

namespace vbtree {

namespace {

/// The AES-128-ECB implementation, fetched once per process (the
/// implicitly fetched EVP_aes_128_ecb() re-resolves through the provider
/// machinery on every CipherInit, several times the cost of the block
/// transform itself).
const EVP_CIPHER* Aes128Ecb() {
#if OPENSSL_VERSION_NUMBER >= 0x30000000L
  static const EVP_CIPHER* cipher =
      EVP_CIPHER_fetch(nullptr, "AES-128-ECB", nullptr);
#else
  static const EVP_CIPHER* cipher = EVP_aes_128_ecb();
#endif
  return cipher;
}

/// One-block AES-128-ECB transform (16-byte in, 16-byte out, no padding).
/// ECB over a single block is a plain PRP application, which is all the
/// simulation needs.
///
/// The cipher context is reused per thread instead of allocated per
/// call: Recover() is the client verification hot loop (one call per
/// distinct signature even with all caches warm), and the context
/// allocation + init used to dominate the decrypt by an order of
/// magnitude. Thread-local keeps concurrent Recover() calls from the
/// BatchVerifier's workers safe without locking; re-keying a reused
/// context is cheap and correct (different signers/recoverers may pass
/// different keys on the same thread).
bool AesBlock(const std::array<uint8_t, 16>& key, const uint8_t* in,
              uint8_t* out, bool encrypt) {
  // One keyed context per (thread, direction), re-keyed only when the
  // caller's key changes. ECB carries no state between blocks, so a
  // keyed context can serve any number of independent CipherUpdate
  // calls; with padding off there is nothing for CipherFinal to flush.
  thread_local struct Holder {
    struct Slot {
      EVP_CIPHER_CTX* ctx = nullptr;
      std::array<uint8_t, 16> key{};
      bool keyed = false;
    } slots[2];
    ~Holder() {
      EVP_CIPHER_CTX_free(slots[0].ctx);
      EVP_CIPHER_CTX_free(slots[1].ctx);
    }
  } holder;
  auto& slot = holder.slots[encrypt ? 1 : 0];
  if (slot.ctx == nullptr) {
    slot.ctx = EVP_CIPHER_CTX_new();
    if (slot.ctx == nullptr) return false;
  }
  if (!slot.keyed || slot.key != key) {
    if (EVP_CipherInit_ex(slot.ctx, Aes128Ecb(), nullptr, key.data(), nullptr,
                          encrypt ? 1 : 0) != 1) {
      slot.keyed = false;
      return false;
    }
    EVP_CIPHER_CTX_set_padding(slot.ctx, 0);
    slot.key = key;
    slot.keyed = true;
  }
  int len = 0;
  return EVP_CipherUpdate(slot.ctx, out, &len, in, 16) == 1 && len == 16;
}

std::array<uint8_t, 16> DeriveKey(uint64_t seed) {
  uint8_t seed_bytes[8];
  std::memcpy(seed_bytes, &seed, 8);
  auto h = Sha256(Slice(seed_bytes, 8));
  std::array<uint8_t, 16> key;
  std::memcpy(key.data(), h.data(), 16);
  return key;
}

}  // namespace

struct SimSigner::Impl {};
struct SimRecoverer::Impl {};

SimSigner::SimSigner(uint64_t key_seed, CryptoCounters* counters,
                     int work_factor)
    : key_(DeriveKey(key_seed)),
      counters_(counters),
      work_factor_(work_factor < 1 ? 1 : work_factor) {}

SimSigner::~SimSigner() = default;

Result<Signature> SimSigner::Sign(const Digest& d) {
  if (counters_ != nullptr) CryptoCounters::Tick(counters_->signs);
  Signature sig(kDigestLen);
  uint8_t buf[16];
  std::memcpy(buf, d.bytes.data(), 16);
  // work_factor > 1 chains the PRP to emulate a slower signing primitive.
  for (int i = 0; i < work_factor_; ++i) {
    if (!AesBlock(key_, buf, sig.data(), /*encrypt=*/true)) {
      return Status::Internal("AES encrypt failed");
    }
    std::memcpy(buf, sig.data(), 16);
  }
  return sig;
}

SimRecoverer::SimRecoverer(std::array<uint8_t, 16> key,
                           CryptoCounters* counters, int work_factor)
    : key_(key),
      counters_(counters),
      work_factor_(work_factor < 1 ? 1 : work_factor) {}

SimRecoverer::~SimRecoverer() = default;

Result<Digest> SimRecoverer::Recover(const Signature& sig) {
  if (sig.size() != kDigestLen) {
    return Status::VerificationFailure("bad signature length");
  }
  if (counters_ != nullptr) CryptoCounters::Tick(counters_->recovers);
  Digest d;
  uint8_t buf[16];
  std::memcpy(buf, sig.data(), 16);
  for (int i = 0; i < work_factor_; ++i) {
    if (!AesBlock(key_, buf, d.bytes.data(), /*encrypt=*/false)) {
      return Status::Internal("AES decrypt failed");
    }
    std::memcpy(buf, d.bytes.data(), 16);
  }
  return d;
}

}  // namespace vbtree
