#include "crypto/rsa_signer.h"

#include <openssl/err.h>
#include <openssl/evp.h>
#include <openssl/rsa.h>
#include <openssl/x509.h>

#include <cstring>

namespace vbtree {

namespace {

std::string OpenSslError(const char* what) {
  char buf[256];
  ERR_error_string_n(ERR_get_error(), buf, sizeof(buf));
  return std::string(what) + ": " + buf;
}

struct PkeyDeleter {
  void operator()(EVP_PKEY* p) const { EVP_PKEY_free(p); }
};
using PkeyPtr = std::unique_ptr<EVP_PKEY, PkeyDeleter>;

struct CtxDeleter {
  void operator()(EVP_PKEY_CTX* c) const { EVP_PKEY_CTX_free(c); }
};
using CtxPtr = std::unique_ptr<EVP_PKEY_CTX, CtxDeleter>;

}  // namespace

struct RsaSigner::Impl {
  PkeyPtr pkey;
};

struct RsaRecoverer::Impl {
  PkeyPtr pkey;
};

RsaSigner::RsaSigner(std::unique_ptr<Impl> impl, size_t sig_len,
                     CryptoCounters* counters)
    : impl_(std::move(impl)), sig_len_(sig_len), counters_(counters) {}

RsaSigner::~RsaSigner() = default;

Result<std::unique_ptr<RsaSigner>> RsaSigner::Generate(
    int key_bits, CryptoCounters* counters) {
  CtxPtr ctx(EVP_PKEY_CTX_new_id(EVP_PKEY_RSA, nullptr));
  if (!ctx) return Status::Internal(OpenSslError("RSA ctx"));
  if (EVP_PKEY_keygen_init(ctx.get()) <= 0 ||
      EVP_PKEY_CTX_set_rsa_keygen_bits(ctx.get(), key_bits) <= 0) {
    return Status::Internal(OpenSslError("RSA keygen init"));
  }
  EVP_PKEY* raw = nullptr;
  if (EVP_PKEY_keygen(ctx.get(), &raw) <= 0) {
    return Status::Internal(OpenSslError("RSA keygen"));
  }
  auto impl = std::make_unique<Impl>();
  impl->pkey.reset(raw);
  size_t sig_len = static_cast<size_t>(EVP_PKEY_size(raw));
  return std::unique_ptr<RsaSigner>(
      new RsaSigner(std::move(impl), sig_len, counters));
}

Result<Signature> RsaSigner::Sign(const Digest& d) {
  if (counters_ != nullptr) CryptoCounters::Tick(counters_->signs);
  CtxPtr ctx(EVP_PKEY_CTX_new(impl_->pkey.get(), nullptr));
  if (!ctx) return Status::Internal(OpenSslError("sign ctx"));
  if (EVP_PKEY_sign_init(ctx.get()) <= 0 ||
      EVP_PKEY_CTX_set_rsa_padding(ctx.get(), RSA_PKCS1_PADDING) <= 0) {
    return Status::Internal(OpenSslError("sign init"));
  }
  size_t out_len = 0;
  if (EVP_PKEY_sign(ctx.get(), nullptr, &out_len, d.bytes.data(),
                    d.bytes.size()) <= 0) {
    return Status::Internal(OpenSslError("sign size"));
  }
  Signature sig(out_len);
  if (EVP_PKEY_sign(ctx.get(), sig.data(), &out_len, d.bytes.data(),
                    d.bytes.size()) <= 0) {
    return Status::Internal(OpenSslError("sign"));
  }
  sig.resize(out_len);
  return sig;
}

Result<std::vector<uint8_t>> RsaSigner::ExportPublicKey() const {
  int len = i2d_PUBKEY(impl_->pkey.get(), nullptr);
  if (len <= 0) return Status::Internal(OpenSslError("export pubkey"));
  std::vector<uint8_t> der(static_cast<size_t>(len));
  uint8_t* p = der.data();
  if (i2d_PUBKEY(impl_->pkey.get(), &p) != len) {
    return Status::Internal(OpenSslError("export pubkey encode"));
  }
  return der;
}

Result<std::unique_ptr<RsaRecoverer>> RsaSigner::MakeRecoverer(
    CryptoCounters* counters) const {
  VBT_ASSIGN_OR_RETURN(std::vector<uint8_t> der, ExportPublicKey());
  return RsaRecoverer::FromPublicKeyDer(der, counters);
}

RsaRecoverer::RsaRecoverer(std::unique_ptr<Impl> impl, size_t sig_len,
                           CryptoCounters* counters)
    : impl_(std::move(impl)), sig_len_(sig_len), counters_(counters) {}

RsaRecoverer::~RsaRecoverer() = default;

Result<std::unique_ptr<RsaRecoverer>> RsaRecoverer::FromPublicKeyDer(
    const std::vector<uint8_t>& der, CryptoCounters* counters) {
  const uint8_t* p = der.data();
  EVP_PKEY* raw = d2i_PUBKEY(nullptr, &p, static_cast<long>(der.size()));
  if (raw == nullptr) {
    return Status::InvalidArgument(OpenSslError("import pubkey"));
  }
  auto impl = std::make_unique<Impl>();
  impl->pkey.reset(raw);
  size_t sig_len = static_cast<size_t>(EVP_PKEY_size(raw));
  return std::unique_ptr<RsaRecoverer>(
      new RsaRecoverer(std::move(impl), sig_len, counters));
}

Result<Digest> RsaRecoverer::Recover(const Signature& sig) {
  if (counters_ != nullptr) CryptoCounters::Tick(counters_->recovers);
  CtxPtr ctx(EVP_PKEY_CTX_new(impl_->pkey.get(), nullptr));
  if (!ctx) return Status::Internal(OpenSslError("recover ctx"));
  if (EVP_PKEY_verify_recover_init(ctx.get()) <= 0 ||
      EVP_PKEY_CTX_set_rsa_padding(ctx.get(), RSA_PKCS1_PADDING) <= 0) {
    return Status::Internal(OpenSslError("recover init"));
  }
  size_t out_len = 0;
  if (EVP_PKEY_verify_recover(ctx.get(), nullptr, &out_len, sig.data(),
                              sig.size()) <= 0) {
    return Status::VerificationFailure("signature recover failed");
  }
  std::vector<uint8_t> out(out_len);
  if (EVP_PKEY_verify_recover(ctx.get(), out.data(), &out_len, sig.data(),
                              sig.size()) <= 0) {
    return Status::VerificationFailure("signature recover failed");
  }
  if (out_len != kDigestLen) {
    return Status::VerificationFailure("recovered payload has wrong length");
  }
  Digest d;
  std::memcpy(d.bytes.data(), out.data(), kDigestLen);
  return d;
}

}  // namespace vbtree
