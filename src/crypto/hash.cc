#include "crypto/hash.h"

#include <openssl/evp.h>

#include <cstring>

#include "common/logging.h"

namespace vbtree {

namespace {

/// Explicitly fetched digest implementations, resolved once per process.
/// The convenience one-shot (EVP_Digest with an implicitly fetched MD)
/// re-resolves the algorithm through the provider machinery on every
/// call, which costs more than the SHA-256 of a 60-byte attribute
/// preimage itself — and attribute hashing is the top Cost_h consumer on
/// the client verification path.
const EVP_MD* MdFor(HashAlgorithm algo) {
#if OPENSSL_VERSION_NUMBER >= 0x30000000L
  static const EVP_MD* sha256 = EVP_MD_fetch(nullptr, "SHA-256", nullptr);
  static const EVP_MD* sha1 = EVP_MD_fetch(nullptr, "SHA-1", nullptr);
  static const EVP_MD* md5 = EVP_MD_fetch(nullptr, "MD5", nullptr);
#else
  static const EVP_MD* sha256 = EVP_sha256();
  static const EVP_MD* sha1 = EVP_sha1();
  static const EVP_MD* md5 = EVP_md5();
#endif
  switch (algo) {
    case HashAlgorithm::kSha256:
      return sha256;
    case HashAlgorithm::kSha1:
      return sha1;
    case HashAlgorithm::kMd5:
      return md5;
  }
  return sha256;
}

/// Per-thread reusable digest context: EVP_MD_CTX_new/free per hash is
/// allocator traffic the hot loop doesn't need, and reusing a context
/// across Init/Update/Final cycles is the OpenSSL-sanctioned pattern.
/// Thread-local keeps HashToDigest safe under the BatchVerifier's
/// parallel workers with zero synchronization.
EVP_MD_CTX* ThreadMdCtx() {
  thread_local struct Holder {
    EVP_MD_CTX* ctx = EVP_MD_CTX_new();
    ~Holder() { EVP_MD_CTX_free(ctx); }
  } holder;
  return holder.ctx;
}

}  // namespace

Digest HashToDigest(HashAlgorithm algo, Slice input) {
  unsigned char out[EVP_MAX_MD_SIZE];
  unsigned int out_len = 0;
  EVP_MD_CTX* ctx = ThreadMdCtx();
  int rc = EVP_DigestInit_ex(ctx, MdFor(algo), nullptr) == 1 &&
           EVP_DigestUpdate(ctx, input.data(), input.size()) == 1 &&
           EVP_DigestFinal_ex(ctx, out, &out_len) == 1;
  VBT_CHECK(rc);
  Digest d;
  size_t n = out_len < kDigestLen ? out_len : kDigestLen;
  std::memcpy(d.bytes.data(), out, n);
  return d;
}

std::array<uint8_t, 32> Sha256(Slice input) {
  std::array<uint8_t, 32> out{};
  unsigned int out_len = 0;
  EVP_MD_CTX* ctx = ThreadMdCtx();
  int rc = EVP_DigestInit_ex(ctx, MdFor(HashAlgorithm::kSha256), nullptr) == 1 &&
           EVP_DigestUpdate(ctx, input.data(), input.size()) == 1 &&
           EVP_DigestFinal_ex(ctx, out.data(), &out_len) == 1;
  VBT_CHECK(rc && out_len == 32);
  return out;
}

}  // namespace vbtree
