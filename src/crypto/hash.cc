#include "crypto/hash.h"

#include <openssl/evp.h>

#include <cstring>

#include "common/logging.h"

namespace vbtree {

namespace {

const EVP_MD* MdFor(HashAlgorithm algo) {
  switch (algo) {
    case HashAlgorithm::kSha256:
      return EVP_sha256();
    case HashAlgorithm::kSha1:
      return EVP_sha1();
    case HashAlgorithm::kMd5:
      return EVP_md5();
  }
  return EVP_sha256();
}

}  // namespace

Digest HashToDigest(HashAlgorithm algo, Slice input) {
  unsigned char out[EVP_MAX_MD_SIZE];
  unsigned int out_len = 0;
  int rc = EVP_Digest(input.data(), input.size(), out, &out_len, MdFor(algo),
                      nullptr);
  VBT_CHECK(rc == 1);
  Digest d;
  size_t n = out_len < kDigestLen ? out_len : kDigestLen;
  std::memcpy(d.bytes.data(), out, n);
  return d;
}

std::array<uint8_t, 32> Sha256(Slice input) {
  std::array<uint8_t, 32> out{};
  unsigned int out_len = 0;
  int rc = EVP_Digest(input.data(), input.size(), out.data(), &out_len,
                      EVP_sha256(), nullptr);
  VBT_CHECK(rc == 1 && out_len == 32);
  return out;
}

}  // namespace vbtree
