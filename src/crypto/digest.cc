#include "crypto/digest.h"

namespace vbtree {

std::string Digest::ToHex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace vbtree
