#include "crypto/key_manager.h"

namespace vbtree {

void KeyDirectory::Publish(const KeyVersionInfo& info,
                           std::shared_ptr<Recoverer> recoverer) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[info.version] = Entry{info, std::move(recoverer)};
}

Status KeyDirectory::Expire(uint32_t version, uint64_t at) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(version);
  if (it == entries_.end()) {
    return Status::NotFound("unknown key version");
  }
  if (at == 0) {
    it->second.info.valid_to = 0;
  } else if (it->second.info.valid_to >= at) {
    it->second.info.valid_to = at - 1;
  }
  return Status::OK();
}

Result<std::shared_ptr<Recoverer>> KeyDirectory::RecovererFor(
    uint32_t version, uint64_t now) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(version);
  if (it == entries_.end()) {
    return Status::VerificationFailure("unknown signing key version");
  }
  const KeyVersionInfo& info = it->second.info;
  if (now < info.valid_from || now > info.valid_to) {
    return Status::VerificationFailure(
        "signing key version expired: stale data detected");
  }
  return it->second.recoverer;
}

Result<KeyVersionInfo> KeyDirectory::Info(uint32_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(version);
  if (it == entries_.end()) return Status::NotFound("unknown key version");
  return it->second.info;
}

uint32_t KeyDirectory::LatestVersion() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return 0;
  return entries_.rbegin()->first;
}

}  // namespace vbtree
