#ifndef VBTREE_CRYPTO_DIGEST_H_
#define VBTREE_CRYPTO_DIGEST_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/config.h"
#include "common/slice.h"

namespace vbtree {

/// 128-bit unsigned integer with wrap-around (mod 2^128) arithmetic.
///
/// Digests are interpreted as 128-bit numbers when they act as exponents or
/// accumulator values of the commutative hash g(x) = G^x mod 2^k (§3.2 of
/// the paper). Multiplication wraps naturally, which *is* reduction
/// mod 2^128; smaller moduli mask the top bits.
class Uint128 {
 public:
  constexpr Uint128() : v_(0) {}
  constexpr explicit Uint128(uint64_t lo) : v_(lo) {}
  static constexpr Uint128 FromParts(uint64_t hi, uint64_t lo) {
    Uint128 u;
    u.v_ = (static_cast<unsigned __int128>(hi) << 64) | lo;
    return u;
  }

  uint64_t lo() const { return static_cast<uint64_t>(v_); }
  uint64_t hi() const { return static_cast<uint64_t>(v_ >> 64); }

  bool IsZero() const { return v_ == 0; }
  bool IsOdd() const { return (v_ & 1) != 0; }
  bool Bit(int i) const { return ((v_ >> i) & 1) != 0; }

  Uint128 MulWrap(Uint128 o) const {
    Uint128 r;
    r.v_ = v_ * o.v_;
    return r;
  }

  Uint128 Mask(int bits) const {
    Uint128 r = *this;
    if (bits < 128) {
      unsigned __int128 mask = (static_cast<unsigned __int128>(1) << bits) - 1;
      r.v_ &= mask;
    }
    return r;
  }

  bool operator==(const Uint128& o) const { return v_ == o.v_; }

 private:
  unsigned __int128 v_;
};

/// A fixed 16-byte digest (paper Table 1: |s| = 16 bytes). Stored
/// little-endian relative to its Uint128 interpretation.
struct Digest {
  std::array<uint8_t, kDigestLen> bytes{};

  static Digest FromUint128(Uint128 v) {
    Digest d;
    uint64_t lo = v.lo(), hi = v.hi();
    std::memcpy(d.bytes.data(), &lo, 8);
    std::memcpy(d.bytes.data() + 8, &hi, 8);
    return d;
  }

  Uint128 ToUint128() const {
    uint64_t lo, hi;
    std::memcpy(&lo, bytes.data(), 8);
    std::memcpy(&hi, bytes.data() + 8, 8);
    return Uint128::FromParts(hi, lo);
  }

  Slice AsSlice() const { return Slice(bytes.data(), bytes.size()); }

  bool IsZero() const {
    for (uint8_t b : bytes) {
      if (b != 0) return false;
    }
    return true;
  }

  std::string ToHex() const;

  bool operator==(const Digest& o) const { return bytes == o.bytes; }
  bool operator!=(const Digest& o) const { return !(*this == o); }
};

struct DigestHasher {
  size_t operator()(const Digest& d) const {
    uint64_t v;
    std::memcpy(&v, d.bytes.data(), 8);
    return static_cast<size_t>(v);
  }
};

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_DIGEST_H_
