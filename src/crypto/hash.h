#ifndef VBTREE_CRYPTO_HASH_H_
#define VBTREE_CRYPTO_HASH_H_

#include <array>
#include <cstdint>

#include "common/slice.h"
#include "crypto/digest.h"

namespace vbtree {

/// One-way hash algorithms available for attribute digests (paper §3.2
/// names MD5 and SHA; SHA-256 is the modern default).
enum class HashAlgorithm { kSha256, kSha1, kMd5 };

/// Computes `algo(input)` and truncates/pads to the 16-byte Digest used
/// throughout the VB-tree (paper |s| = 16).
Digest HashToDigest(HashAlgorithm algo, Slice input);

/// Full 32-byte SHA-256, for callers that need an untruncated hash (the
/// MHT baseline uses it for Merkle node hashes).
std::array<uint8_t, 32> Sha256(Slice input);

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_HASH_H_
