#ifndef VBTREE_CRYPTO_RECOVERED_DIGEST_CACHE_H_
#define VBTREE_CRYPTO_RECOVERED_DIGEST_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "crypto/counters.h"
#include "crypto/digest.h"
#include "crypto/signer.h"

namespace vbtree {

/// FNV-1a over a signature's full byte string; shared by the
/// recovered-digest cache's shard tables and the client's signed-top
/// memo. Never a trust boundary — equality always compares full bytes.
struct SignatureHash {
  size_t operator()(const Signature& s) const;
};

/// Bounded, sharded LRU cache memoizing p(sig) — the digest a signature
/// recovers to under one public key. Recovery is a deterministic pure
/// function of the raw signature bytes (given the key), so caching the
/// mapping is plain memoization: a hit returns exactly what Recover()
/// would, one modular exponentiation (or AES decrypt) cheaper.
///
/// Soundness (the argument, in full, lives in DESIGN.md §6): the key is
/// the *entire* raw signature byte string plus a caller-chosen domain
/// (the signing-key version). Any tamper — a single bit flip, a swapped
/// pool index materializing a different pool entry, a replayed signature
/// from another key epoch — changes the lookup key, so a forged
/// signature can never alias a cached honest digest. Equality is over
/// the full bytes, never the hash, so engineered hash collisions only
/// cost a miss. The cache therefore cannot turn a failing verification
/// into a passing one; it can only skip re-deriving a digest that the
/// same bytes already produced.
///
/// Thread-safe: the table is split into shards, each guarded by its own
/// mutex, so the BatchVerifier's pool workers and many client threads
/// can share one instance. Hit/miss/eviction telemetry accrues both in
/// the cache-global stats and, per call, in the caller's CryptoCounters
/// sink (so per-query cost accounting sees its own cache traffic).
///
/// Recency is approximate (sampled LRU, Redis-style): hits stamp a
/// per-shard generation counter instead of maintaining a linked list,
/// and eviction scans a small bucket neighborhood for the oldest stamp.
/// A hit is thus one hash probe and one store — the cache must stay
/// worthwhile even when the underlying Recover is a 30 ns AES block, not
/// just when it is a multi-microsecond RSA exponentiation.
class RecoveredDigestCache {
 public:
  struct Options {
    /// Maximum resident entries across all shards (0 disables caching:
    /// every Lookup misses and Insert is a no-op).
    size_t capacity = 1 << 16;
    /// Power-of-two shard count; sized for low contention at the
    /// BatchVerifier's default worker counts.
    size_t shards = 8;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
  };

  RecoveredDigestCache() : RecoveredDigestCache(Options{}) {}
  explicit RecoveredDigestCache(Options options);

  RecoveredDigestCache(const RecoveredDigestCache&) = delete;
  RecoveredDigestCache& operator=(const RecoveredDigestCache&) = delete;

  /// Looks up `sig` under `domain` (the signing-key version). On hit,
  /// stores the digest in `*out`, refreshes recency, and ticks the hit
  /// counters; on miss ticks the miss counters. `counters` may be null.
  bool Lookup(uint64_t domain, const Signature& sig, Digest* out,
              CryptoCounters* counters = nullptr);

  /// Inserts (or refreshes) sig -> digest under `domain`, evicting the
  /// least-recently-used entry of the shard when at capacity.
  void Insert(uint64_t domain, const Signature& sig, const Digest& digest,
              CryptoCounters* counters = nullptr);

  /// Drops every entry (all shards). Telemetry counters are kept.
  void Clear();

  Stats stats() const;
  size_t capacity() const { return options_.capacity; }

 private:
  struct Entry {
    uint64_t domain = 0;
    Digest digest;
    /// Shard-generation stamp of the last hit/insert (recency, sampled).
    uint64_t last_used = 0;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<Signature, Entry, SignatureHash> map;
    uint64_t clock = 0;  ///< bumped on every hit/insert
    /// Rotating bucket cursor for the eviction scan.
    size_t sweep = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// Evicts the entry with the oldest stamp among a small sample of
  /// `shard`'s buckets (the shard mutex must be held).
  static void EvictOne(Shard* shard);

  Shard& ShardFor(const Signature& sig);

  Options options_;
  size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Recoverer decorator that consults a RecoveredDigestCache before
/// falling through to the wrapped Recoverer, inserting on miss. Gives
/// single-query call sites (Client::Query, the naive scheme, tools) the
/// same cross-call memoization the BatchVerifier's pool phase uses,
/// without changing their Verifier wiring.
class CachingRecoverer : public Recoverer {
 public:
  /// @param domain the signing-key version the signatures resolve under.
  CachingRecoverer(Recoverer* inner, RecoveredDigestCache* cache,
                   uint64_t domain, CryptoCounters* counters = nullptr)
      : inner_(inner), cache_(cache), domain_(domain), counters_(counters) {}

  Result<Digest> Recover(const Signature& sig) override;

  size_t signature_length() const override {
    return inner_->signature_length();
  }

 private:
  Recoverer* inner_;
  RecoveredDigestCache* cache_;  ///< may be null (pass-through)
  uint64_t domain_;
  CryptoCounters* counters_;
};

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_RECOVERED_DIGEST_CACHE_H_
