#ifndef VBTREE_CRYPTO_SIM_SIGNER_H_
#define VBTREE_CRYPTO_SIM_SIGNER_H_

#include <array>
#include <cstdint>
#include <memory>

#include "crypto/signer.h"

namespace vbtree {

/// Simulated recoverable signature with 16-byte signatures.
///
/// Substitution note (documented in DESIGN.md): the paper's cost analysis
/// assumes signed digests of |s| = 16 bytes (Table 1), which no real
/// public-key scheme provides — RSA signatures are >= 128 bytes. To
/// reproduce the paper's byte counts and cost ratios exactly, SimSigner
/// "signs" by encrypting the 16-byte digest with AES-128 under a secret
/// key, and "recovers" by decrypting. Holders of a SimRecoverer share the
/// AES key, standing in for the public key; the forgery-resistance
/// argument is out of scope for the cost study (use RsaSigner for real
/// security).
///
/// The optional `work_factor` parameter inserts calibrated extra AES
/// rounds into Recover() so that Cost_s / Cost_h matches a chosen X when
/// measuring wall-clock time (Fig. 12 sweeps X in {5, 10, 100}).
class SimSigner : public Signer {
 public:
  /// @param key_seed deterministic seed for the AES key.
  /// @param counters optional Cost accounting sink.
  /// @param work_factor extra decrypt work multiplier (>= 1).
  explicit SimSigner(uint64_t key_seed, CryptoCounters* counters = nullptr,
                     int work_factor = 1);
  ~SimSigner() override;

  Result<Signature> Sign(const Digest& d) override;
  size_t signature_length() const override { return kDigestLen; }
  std::string name() const override { return "sim-aes128"; }

  /// Raw key material; handed to SimRecoverer (the "public key" of the
  /// simulation).
  std::array<uint8_t, 16> key_material() const { return key_; }

 private:
  std::array<uint8_t, 16> key_;
  CryptoCounters* counters_;
  int work_factor_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Public-key side of SimSigner.
class SimRecoverer : public Recoverer {
 public:
  explicit SimRecoverer(std::array<uint8_t, 16> key,
                        CryptoCounters* counters = nullptr,
                        int work_factor = 1);
  ~SimRecoverer() override;

  Result<Digest> Recover(const Signature& sig) override;
  size_t signature_length() const override { return kDigestLen; }

  void set_counters(CryptoCounters* counters) { counters_ = counters; }

 private:
  std::array<uint8_t, 16> key_;
  CryptoCounters* counters_;
  int work_factor_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_SIM_SIGNER_H_
