#include "crypto/commutative_hash.h"

#include <vector>

#include "common/logging.h"
#include "common/serde.h"
#include "crypto/hash.h"

namespace vbtree {

Digest CommutativeHash::Identity() const {
  // G must be odd (a unit mod 2^k) so every combined digest stays a unit.
  Uint128 g = Uint128::FromParts(0x6A09E667F3BCC908ULL, kDefaultGeneratorLo);
  return Digest::FromUint128(g.Mask(bits_));
}

Uint128 CommutativeHash::ModExp(Uint128 base, Uint128 exp) const {
  // Square-and-multiply, reducing (masking) after every multiplication —
  // the "4 multiplications and 4 modulo reductions" scheme of §3.2.
  Uint128 result(1);
  Uint128 b = base.Mask(bits_);
  for (int i = 0; i < bits_; ++i) {
    if (exp.Bit(i)) {
      result = result.MulWrap(b).Mask(bits_);
    }
    b = b.MulWrap(b).Mask(bits_);
  }
  return result;
}

Digest CommutativeHash::Extend(const Digest& acc, const Digest& d) const {
  if (counters_ != nullptr) CryptoCounters::Tick(counters_->combine_ops);
  // Exponent 0 would collapse the accumulator to 1 for every input; a
  // 16-byte hash output is zero with probability 2^-128, but map it to 1
  // deterministically so the function is total.
  Uint128 e = d.ToUint128();
  if (e.IsZero()) e = Uint128(1);
  return Digest::FromUint128(ModExp(acc.ToUint128(), e));
}

Digest CommutativeHash::Combine(std::span<const Digest> digests) const {
  // Fold the exponent product first (one 128-bit multiply per digest),
  // then pay a single exponentiation: G^(d1·...·dm) directly, instead of
  // the chained ((G^d1)^d2)... which costs one full square-and-multiply
  // per digest. Bit-identical by (G^a)^b = G^(ab) — the same algebra the
  // server's kRecomputeProduct strategy uses, and property-tested against
  // the chained form. This is the client-verification recombination hot
  // path: every VO node digest is one Combine over its parts.
  if (counters_ != nullptr) CryptoCounters::Tick(counters_->combine_ops, digests.size());
  return FromExponent(ExponentProduct(digests));
}

Uint128 InverseOdd128(Uint128 x) {
  VBT_CHECK(x.IsOdd());
  // y = x is a correct inverse mod 2^3 for odd x; each Newton-Hensel step
  // y <- y(2 - xy) doubles the valid low bits: 3 -> 6 -> ... -> 192 > 128.
  Uint128 y = x;
  for (int i = 0; i < 6; ++i) {
    Uint128 xy = x.MulWrap(y);
    unsigned __int128 raw =
        static_cast<unsigned __int128>(2) -
        ((static_cast<unsigned __int128>(xy.hi()) << 64) | xy.lo());
    Uint128 two_minus_xy = Uint128::FromParts(
        static_cast<uint64_t>(raw >> 64), static_cast<uint64_t>(raw));
    y = y.MulWrap(two_minus_xy);
  }
  VBT_CHECK(x.MulWrap(y) == Uint128(1));
  return y;
}

Uint128 CommutativeHash::ExponentProduct(
    std::span<const Digest> digests) const {
  Uint128 e(1);
  for (const Digest& d : digests) {
    e = e.MulWrap(ExponentFactor(d)).Mask(bits_);
  }
  return e;
}

Digest CommutativeHash::FromExponent(Uint128 exponent) const {
  Uint128 g = Identity().ToUint128();
  return Digest::FromUint128(ModExp(g, exponent));
}

Digest CommutativeHash::CombineViaExponent(
    std::span<const Digest> digests) const {
  // Combine itself folds the exponent product now; kept as a named alias
  // for call sites written against the strategy split.
  return Combine(digests);
}

Uint128 CommutativeHash::UpdateExponent(Uint128 exponent, const Digest& d_old,
                                        const Digest& d_new) const {
  if (counters_ != nullptr) CryptoCounters::Tick(counters_->combine_ops);
  Uint128 inv = InverseOdd128(ExponentFactor(d_old));
  return exponent.MulWrap(inv).MulWrap(ExponentFactor(d_new)).Mask(bits_);
}

Digest ChainedHash::Combine(std::span<const Digest> digests) const {
  ByteWriter w(digests.size() * kDigestLen);
  for (const Digest& d : digests) {
    w.PutBytes(d.AsSlice());
    if (counters_ != nullptr) CryptoCounters::Tick(counters_->combine_ops);
  }
  return HashToDigest(HashAlgorithm::kSha256, Slice(w.buffer()));
}

}  // namespace vbtree
