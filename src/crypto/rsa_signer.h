#ifndef VBTREE_CRYPTO_RSA_SIGNER_H_
#define VBTREE_CRYPTO_RSA_SIGNER_H_

#include <memory>
#include <vector>

#include "crypto/signer.h"

namespace vbtree {

class RsaRecoverer;

/// Real message-recovering RSA signatures via OpenSSL EVP
/// (RSA + PKCS#1 v1.5 "private encrypt"; the verifier uses
/// EVP_PKEY_verify_recover to extract the signed digest, which is exactly
/// the p(s(d)) = d operation of the paper).
class RsaSigner : public Signer {
 public:
  /// Generates a fresh key pair. 1024-bit keys keep tests fast; use 2048+
  /// in production.
  static Result<std::unique_ptr<RsaSigner>> Generate(
      int key_bits = 1024, CryptoCounters* counters = nullptr);

  ~RsaSigner() override;

  Result<Signature> Sign(const Digest& d) override;
  size_t signature_length() const override { return sig_len_; }
  std::string name() const override { return "rsa-pkcs1"; }

  /// DER-encoded public key, distributable to clients over an
  /// authenticated channel (paper §3.2 assumes a PKI).
  Result<std::vector<uint8_t>> ExportPublicKey() const;

  /// Builds the matching verifier directly (avoids DER round-trip).
  Result<std::unique_ptr<RsaRecoverer>> MakeRecoverer(
      CryptoCounters* counters = nullptr) const;

 private:
  struct Impl;
  RsaSigner(std::unique_ptr<Impl> impl, size_t sig_len,
            CryptoCounters* counters);

  std::unique_ptr<Impl> impl_;
  size_t sig_len_;
  CryptoCounters* counters_;
};

/// Public-key side of RsaSigner.
class RsaRecoverer : public Recoverer {
 public:
  /// Imports a DER-encoded public key produced by ExportPublicKey().
  static Result<std::unique_ptr<RsaRecoverer>> FromPublicKeyDer(
      const std::vector<uint8_t>& der, CryptoCounters* counters = nullptr);

  ~RsaRecoverer() override;

  Result<Digest> Recover(const Signature& sig) override;
  size_t signature_length() const override { return sig_len_; }

 private:
  friend class RsaSigner;
  struct Impl;
  RsaRecoverer(std::unique_ptr<Impl> impl, size_t sig_len,
               CryptoCounters* counters);

  std::unique_ptr<Impl> impl_;
  size_t sig_len_;
  CryptoCounters* counters_;
};

}  // namespace vbtree

#endif  // VBTREE_CRYPTO_RSA_SIGNER_H_
