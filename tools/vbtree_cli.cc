// vbtree_cli — interactive walkthrough of the authenticated-query stack.
//
// Drives a central server, one edge server and one client from a small
// command language (stdin or a script file):
//
//   load <n>                  create + load a demo table with n rows
//   insert <key> <text>       insert a row at the central server
//   delete <lo> <hi>          range-delete at the central server
//   split <key>               incremental shard split at <key>
//   publish                   ship a full snapshot to the edge
//   sync                      ship the pending update delta to the edge
//   tamper <key> <text>       corrupt one value in the edge's replica
//   query <lo> <hi>           authenticated range query via the edge
//   audit                     edge-side signature self-audit
//   rotate <now>              rotate the signing key at logical time <now>
//   stats                     table / tree / network statistics
//   help | quit
//
// Example:  ./build/tools/vbtree_cli <<'EOF'
//   load 1000
//   publish
//   query 10 20
//   tamper 15 boo
//   query 10 20
//   publish
//   query 10 20
//   quit
// EOF
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/random.h"
#include "edge/central_server.h"
#include "edge/client.h"
#include "edge/edge_server.h"
#include "edge/propagation/distribution_hub.h"

using namespace vbtree;

namespace {

constexpr const char* kTable = "demo";

struct CliState {
  // Declaration order matters: the hub (declared last, destroyed first)
  // holds raw pointers to the central server, edge and transport.
  std::unique_ptr<CentralServer> central;
  std::unique_ptr<EdgeServer> edge;
  std::unique_ptr<Client> client;
  SimulatedNetwork net;
  /// Propagation hub in manual mode: `publish` / `sync` drive flushes so
  /// the walkthrough stays step-by-step.
  std::unique_ptr<DistributionHub> hub;
  Schema schema;
  /// Key-range shards for the demo table (--shards N; 1 = monolith).
  size_t shards = 1;
  /// Contention-driven auto-split policy (--auto-split [knobs]); applied
  /// to the central server created by the next `load`.
  bool auto_split = false;
  size_t split_min_ops = 64;
  double split_skew = 1.5;
  size_t split_max_shards = 16;
  bool loaded = false;
  uint64_t now = 1;
};

void PrintHelp() {
  std::printf(
      "commands: load <n> | insert <key> <text> | delete <lo> <hi> |\n"
      "          split <key> | publish | sync | tamper <key> <text> |\n"
      "          query <lo> <hi> | audit | rotate <now> | stats | help | "
      "quit\n");
}

bool RequireLoaded(const CliState& st) {
  if (!st.loaded) std::printf("error: run `load <n>` first\n");
  return st.loaded;
}

void DoLoad(CliState* st, size_t n) {
  // Re-loading replaces the central server: drop the hub (which points
  // at it) and the dependent pieces first.
  st->hub.reset();
  st->client.reset();
  st->edge.reset();
  st->loaded = false;
  CentralServer::Options options;
  options.db_name = "clidb";
  if (st->auto_split) {
    options.auto_split = true;
    options.auto_split_min_ops = st->split_min_ops;
    options.auto_split_skew = st->split_skew;
    options.auto_split_max_shards = st->split_max_shards;
  }
  auto central = CentralServer::Create(options);
  if (!central.ok()) {
    std::printf("error: %s\n", central.status().ToString().c_str());
    return;
  }
  st->central = central.MoveValueUnsafe();
  st->schema = Schema({{"id", TypeId::kInt64},
                       {"payload", TypeId::kString},
                       {"tag", TypeId::kString}});
  // --shards N pre-splits the demo table evenly over the loaded keys:
  // every shard is its own signed VB-tree, stitched by the signed
  // PartitionMap the client authenticates before scattering queries.
  auto created = st->central->CreateTable(
      kTable, st->schema, EvenSplitPoints(n, st->shards));
  if (!created.ok()) {
    std::printf("error: %s\n", created.status().ToString().c_str());
    return;
  }
  Rng rng(7);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Tuple({Value::Int(static_cast<int64_t>(i)),
                          Value::Str(rng.NextString(16)),
                          Value::Str(i % 2 == 0 ? "even" : "odd")}));
  }
  Status s = st->central->LoadTable(kTable, std::move(rows));
  if (!s.ok()) {
    std::printf("error: %s\n", s.ToString().c_str());
    return;
  }
  st->edge = std::make_unique<EdgeServer>("edge-1");
  PropagationOptions popts;
  popts.auto_start = false;  // `publish` / `sync` flush explicitly
  st->hub = std::make_unique<DistributionHub>(st->central.get(), &st->net,
                                              popts);
  if (!st->hub->Subscribe(st->edge.get()).ok()) return;
  st->client =
      std::make_unique<Client>(st->central->db_name(),
                               st->central->key_directory());
  // Auto-split can shard the table later, so the client must speak the
  // partition-map protocol whenever the policy is live.
  if (st->shards > 1 || st->auto_split) {
    st->client->RegisterShardedTable(kTable, st->schema);
    std::printf("loaded %zu rows across %zu shards (map epoch %llu)\n", n,
                st->central->ShardCount(kTable).ValueOrDie(),
                static_cast<unsigned long long>(
                    st->central->TablePartitionMap(kTable)
                        .ValueOrDie()
                        .epoch));
  } else {
    st->client->RegisterTable(kTable, st->schema);
    std::printf("loaded %zu rows; root digest %s...\n", n,
                st->central->tree(kTable)->root_digest().ToHex().substr(0, 16)
                    .c_str());
  }
  st->loaded = true;
}

void DoQuery(CliState* st, int64_t lo, int64_t hi) {
  if (!st->edge->HasTable(kTable) && st->edge->MapEpoch(kTable) == 0) {
    std::printf("error: edge has no replica; run `publish`\n");
    return;
  }
  SelectQuery q;
  q.table = kTable;
  q.range = KeyRange{lo, hi};
  auto r = st->client->Query(st->edge.get(), q, st->now, &st->net);
  if (!r.ok()) {
    std::printf("error: %s\n", r.status().ToString().c_str());
    return;
  }
  std::printf("%zu rows | result %zu B + VO %zu B (%zu digests) | %s\n",
              r->rows.size(), r->result_bytes, r->vo_bytes, r->vo_digests,
              r->verification.ok()
                  ? "VERIFIED"
                  : r->verification.ToString().c_str());
  size_t shown = 0;
  for (const ResultRow& row : r->rows) {
    if (shown++ == 5) {
      std::printf("  ... (%zu more)\n", r->rows.size() - 5);
      break;
    }
    std::printf("  %lld | %s | %s\n", static_cast<long long>(row.key),
                row.values[1].AsString().c_str(),
                row.values[2].AsString().c_str());
  }
}

void Dispatch(CliState* st, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return;

  if (cmd == "help") {
    PrintHelp();
  } else if (cmd == "load") {
    size_t n = 1000;
    in >> n;
    DoLoad(st, n);
  } else if (cmd == "insert") {
    if (!RequireLoaded(*st)) return;
    int64_t key;
    std::string text;
    if (!(in >> key >> text)) {
      std::printf("usage: insert <key> <text>\n");
      return;
    }
    Status s = st->central->InsertTuple(
        kTable, Tuple({Value::Int(key), Value::Str(text),
                       Value::Str(key % 2 == 0 ? "even" : "odd")}));
    std::printf("%s\n", s.ok() ? "inserted (run `sync` or `publish` to "
                                 "propagate)"
                               : s.ToString().c_str());
  } else if (cmd == "delete") {
    if (!RequireLoaded(*st)) return;
    int64_t lo, hi;
    if (!(in >> lo >> hi)) {
      std::printf("usage: delete <lo> <hi>\n");
      return;
    }
    auto removed = st->central->DeleteRange(kTable, lo, hi);
    if (removed.ok()) {
      std::printf("deleted %zu rows\n", *removed);
    } else {
      std::printf("error: %s\n", removed.status().ToString().c_str());
    }
  } else if (cmd == "split") {
    if (!RequireLoaded(*st)) return;
    int64_t key;
    if (!(in >> key)) {
      std::printf("usage: split <key>\n");
      return;
    }
    Status s = st->central->SplitShard(kTable, key);
    if (s.ok()) {
      // The table is sharded from here on: the client must authenticate
      // the partition map and scatter per shard.
      st->client->RegisterShardedTable(kTable, st->schema);
      std::printf("split at %lld: now %zu shard(s), map epoch %llu "
                  "(run `sync` to propagate)\n",
                  static_cast<long long>(key),
                  st->central->ShardCount(kTable).ValueOrDie(),
                  static_cast<unsigned long long>(
                      st->central->TablePartitionMap(kTable)
                          .ValueOrDie()
                          .epoch));
    } else {
      std::printf("error: %s\n", s.ToString().c_str());
    }
  } else if (cmd == "publish") {
    if (!RequireLoaded(*st)) return;
    // Force a full snapshot re-ship (also heals a tampered replica).
    Status s = st->hub->ForceSnapshot(st->edge->name());
    if (s.ok()) s = st->hub->SyncAll();
    std::printf("%s\n", s.ok() ? "snapshot published" : s.ToString().c_str());
  } else if (cmd == "sync") {
    if (!RequireLoaded(*st)) return;
    Status s = st->hub->SyncAll();
    if (s.ok()) {
      if (st->central->ShardCount(kTable).ValueOrDie() > 1) {
        std::printf("hub flushed; edge at map epoch %llu\n",
                    static_cast<unsigned long long>(
                        st->edge->MapEpoch(kTable)));
      } else {
        std::printf("hub flushed; edge at version %llu\n",
                    static_cast<unsigned long long>(
                        st->edge->TableVersion(kTable)));
      }
    } else {
      std::printf("error: %s\n", s.ToString().c_str());
    }
  } else if (cmd == "tamper") {
    if (!RequireLoaded(*st)) return;
    int64_t key;
    std::string text;
    if (!(in >> key >> text)) {
      std::printf("usage: tamper <key> <text>\n");
      return;
    }
    Status s =
        st->edge->TamperValueByKey(kTable, key, 1, Value::Str(text));
    std::printf("%s\n", s.ok() ? "edge replica corrupted (silently...)"
                               : s.ToString().c_str());
  } else if (cmd == "query") {
    if (!RequireLoaded(*st)) return;
    int64_t lo, hi;
    if (!(in >> lo >> hi)) {
      std::printf("usage: query <lo> <hi>\n");
      return;
    }
    DoQuery(st, lo, hi);
  } else if (cmd == "audit") {
    if (!RequireLoaded(*st)) return;
    // Audits every shard replica (one shard, the plain name, when the
    // table is unsharded).
    auto map = st->central->TablePartitionMap(kTable);
    if (!map.ok()) {
      std::printf("error: %s\n", map.status().ToString().c_str());
      return;
    }
    size_t total = 0;
    for (size_t i = 0; i < map->shards.size(); ++i) {
      const std::string shard = map->shard_name(i);
      const VBTree* tree = st->edge->tree(shard);
      if (tree == nullptr) {
        std::printf("error: edge has no replica of %s; run `publish`\n",
                    shard.c_str());
        return;
      }
      auto rec = st->central->key_directory()->RecovererFor(
          tree->key_version(), st->now);
      if (!rec.ok()) {
        std::printf("audit failed: %s\n", rec.status().ToString().c_str());
        return;
      }
      auto audited = tree->AuditSignatures(rec->get());
      if (!audited.ok()) {
        std::printf("audit FAILED (%s): %s\n", shard.c_str(),
                    audited.status().ToString().c_str());
        return;
      }
      total += *audited;
    }
    std::printf("audit OK: %zu signatures verified across %zu shard(s)\n",
                total, map->shards.size());
  } else if (cmd == "rotate") {
    if (!RequireLoaded(*st)) return;
    uint64_t now = st->now;
    in >> now;
    st->now = now;
    Status s = st->central->RotateKey(now);
    std::printf("%s (key version now %u; stale edges will be rejected "
                "after expiry)\n",
                s.ok() ? "rotated" : s.ToString().c_str(),
                st->central->current_key_version());
  } else if (cmd == "stats") {
    if (!RequireLoaded(*st)) return;
    auto map = st->central->TablePartitionMap(kTable);
    if (!map.ok()) {
      std::printf("error: %s\n", map.status().ToString().c_str());
      return;
    }
    std::printf("central: key v%u, %zu shard(s), map epoch %llu\n",
                st->central->current_key_version(), map->shards.size(),
                static_cast<unsigned long long>(map->epoch));
    for (size_t i = 0; i < map->shards.size(); ++i) {
      const std::string shard = map->shard_name(i);
      VBTree* tree = st->central->tree(shard);
      if (tree == nullptr) continue;
      std::printf(
          "  %s: %zu rows, height %d, %llu nodes, v%llu | edge %s v%llu\n",
          shard.c_str(), tree->size(), tree->height(),
          static_cast<unsigned long long>(tree->node_count()),
          static_cast<unsigned long long>(tree->version()),
          st->edge->HasTable(shard) ? "installed" : "absent",
          static_cast<unsigned long long>(st->edge->TableVersion(shard)));
    }
    // Per-shard write domains: each shard's DML queue + signer worker.
    auto domains = st->central->TableDomainStats(kTable);
    if (domains.ok()) {
      for (const auto& d : *domains) {
        std::printf("  domain %s: ops %llu/%llu (enq/applied), queue "
                    "depth %zu (peak %zu, p99 %zu), %llu sign calls\n",
                    d.dist_name.c_str(),
                    static_cast<unsigned long long>(d.ops_enqueued),
                    static_cast<unsigned long long>(d.ops_applied),
                    d.queue_depth, d.queue_depth_peak, d.queue_depth_p99,
                    static_cast<unsigned long long>(d.sign_calls));
      }
    }
    std::printf("splits triggered by auto-split policy: %llu\n",
                static_cast<unsigned long long>(
                    st->central->splits_triggered()));
    std::printf("network: %llu bytes total\n",
                static_cast<unsigned long long>(st->net.total_bytes()));
    auto hub_stats = st->hub->stats();
    std::printf("propagation: %llu flushes, %llu deltas, %llu snapshots "
                "(%llu catch-up)\n",
                static_cast<unsigned long long>(hub_stats.flushes),
                static_cast<unsigned long long>(hub_stats.deltas_shipped),
                static_cast<unsigned long long>(hub_stats.snapshots_shipped),
                static_cast<unsigned long long>(hub_stats.catch_up_snapshots));
  } else if (cmd == "quit" || cmd == "exit") {
    std::exit(0);
  } else {
    std::printf("unknown command '%s' (try `help`)\n", cmd.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliState st;
  const char* script_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      long n = std::atol(argv[++i]);
      st.shards = n > 0 ? static_cast<size_t>(n) : 1;
    } else if (arg == "--auto-split") {
      st.auto_split = true;
    } else if (arg == "--split-min-ops" && i + 1 < argc) {
      st.split_min_ops = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--split-skew" && i + 1 < argc) {
      st.split_skew = std::atof(argv[++i]);
    } else if (arg == "--max-shards" && i + 1 < argc) {
      st.split_max_shards = static_cast<size_t>(std::atol(argv[++i]));
    } else if (script_path == nullptr) {
      script_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: vbtree_cli [--shards N] [--auto-split]"
                   " [--split-min-ops N] [--split-skew X] [--max-shards N]"
                   " [script]\n");
      return 2;
    }
  }
  std::printf("vbtree_cli — authenticated query processing demo (try `help`)\n");

  if (script_path != nullptr) {
    std::ifstream script(script_path);
    if (!script) {
      std::fprintf(stderr, "cannot open script %s\n", script_path);
      return 1;
    }
    std::string line;
    while (std::getline(script, line)) {
      std::printf("> %s\n", line.c_str());
      Dispatch(&st, line);
    }
    return 0;
  }

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    Dispatch(&st, line);
    std::printf("> ");
    std::fflush(stdout);
  }
  return 0;
}
