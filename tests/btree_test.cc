#include <gtest/gtest.h>

#include <map>

#include "btree/bplus_tree.h"
#include "common/random.h"

namespace vbtree {
namespace {

Rid MakeRid(int64_t k) {
  return Rid{static_cast<int32_t>(k / 100), static_cast<uint16_t>(k % 100)};
}

TEST(BTreeConfigTest, FanOutFormulas) {
  // Defaults of Table 1: |B|=4096, |K|=16, |P|=4, |s|=16.
  EXPECT_EQ(BTreeConfig::BTreeFanOut(16, 4, 4096), 205);
  EXPECT_EQ(BTreeConfig::VBTreeFanOut(16, 4, 16, 4096), 114);
  // VB-tree fan-out is never larger.
  for (size_t klen = 1; klen <= 256; klen *= 2) {
    EXPECT_LE(BTreeConfig::VBTreeFanOut(klen, 4, 16, 4096),
              BTreeConfig::BTreeFanOut(klen, 4, 4096));
  }
}

TEST(BTreeConfigTest, FanOutGapShrinksWithKeyLength) {
  double prev_ratio = 1e9;
  for (size_t klen = 1; klen <= 256; klen *= 2) {
    double ratio =
        static_cast<double>(BTreeConfig::BTreeFanOut(klen, 4, 4096)) /
        BTreeConfig::VBTreeFanOut(klen, 4, 16, 4096);
    EXPECT_LE(ratio, prev_ratio + 0.05);
    prev_ratio = ratio;
  }
  // Long keys dominate the entry size; the structures converge (Fig. 8).
  EXPECT_LT(prev_ratio, 1.2);
}

TEST(BTreeConfigTest, PackedHeight) {
  EXPECT_EQ(BTreeConfig::PackedHeight(1, 100), 1);
  EXPECT_EQ(BTreeConfig::PackedHeight(100, 100), 1);
  EXPECT_EQ(BTreeConfig::PackedHeight(101, 100), 2);
  EXPECT_EQ(BTreeConfig::PackedHeight(10000, 100), 2);
  EXPECT_EQ(BTreeConfig::PackedHeight(10001, 100), 3);
}

TEST(BPlusTreeTest, EmptyTreeBehaviour) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Lookup(1).status().IsNotFound());
  EXPECT_TRUE(tree.Remove(1).IsNotFound());
  EXPECT_TRUE(tree.Scan(0, 100).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, InsertLookupSmall) {
  BPlusTree tree;
  for (int64_t k : {5, 1, 9, 3, 7}) {
    ASSERT_TRUE(tree.Insert(k, MakeRid(k)).ok());
  }
  EXPECT_EQ(tree.size(), 5u);
  for (int64_t k : {1, 3, 5, 7, 9}) {
    auto rid = tree.Lookup(k);
    ASSERT_TRUE(rid.ok());
    EXPECT_EQ(*rid, MakeRid(k));
  }
  EXPECT_TRUE(tree.Lookup(2).status().IsNotFound());
}

TEST(BPlusTreeTest, DuplicateInsertRejected) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(1, MakeRid(1)).ok());
  EXPECT_EQ(tree.Insert(1, MakeRid(1)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BTreeConfig config;
  config.max_internal = 4;
  config.max_leaf = 4;
  BPlusTree tree(config);
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Insert(k, MakeRid(k)).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << k;
  }
  EXPECT_GE(tree.height(), 3);
  for (int64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(tree.Lookup(k).ok()) << k;
  }
}

TEST(BPlusTreeTest, ScanReturnsSortedRange) {
  BTreeConfig config;
  config.max_internal = 4;
  config.max_leaf = 4;
  BPlusTree tree(config);
  Rng rng(7);
  std::set<int64_t> keys;
  while (keys.size() < 200) {
    int64_t k = static_cast<int64_t>(rng.Uniform(10000));
    if (keys.insert(k).second) {
      ASSERT_TRUE(tree.Insert(k, MakeRid(k)).ok());
    }
  }
  auto hits = tree.Scan(2500, 7500);
  std::vector<int64_t> expect;
  for (int64_t k : keys) {
    if (k >= 2500 && k <= 7500) expect.push_back(k);
  }
  ASSERT_EQ(hits.size(), expect.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].first, expect[i]);
    EXPECT_EQ(hits[i].second, MakeRid(expect[i]));
  }
}

TEST(BPlusTreeTest, ScanEmptyAndInvertedRanges) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(10, MakeRid(10)).ok());
  EXPECT_TRUE(tree.Scan(20, 30).empty());
  EXPECT_TRUE(tree.Scan(30, 20).empty());
  EXPECT_EQ(tree.Scan(10, 10).size(), 1u);
}

TEST(BPlusTreeTest, RemoveToEmptyAndReuse) {
  BTreeConfig config;
  config.max_internal = 4;
  config.max_leaf = 4;
  BPlusTree tree(config);
  for (int64_t k = 0; k < 50; ++k) ASSERT_TRUE(tree.Insert(k, MakeRid(k)).ok());
  for (int64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(tree.Remove(k).ok()) << k;
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after remove " << k;
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  // The tree remains usable after total erasure.
  ASSERT_TRUE(tree.Insert(5, MakeRid(5)).ok());
  EXPECT_TRUE(tree.Lookup(5).ok());
}

TEST(BPlusTreeTest, RemoveCollapsesRoot) {
  BTreeConfig config;
  config.max_internal = 4;
  config.max_leaf = 4;
  BPlusTree tree(config);
  for (int64_t k = 0; k < 100; ++k) ASSERT_TRUE(tree.Insert(k, MakeRid(k)).ok());
  int full_height = tree.height();
  for (int64_t k = 0; k < 95; ++k) ASSERT_TRUE(tree.Remove(k).ok());
  EXPECT_LT(tree.height(), full_height);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

/// Randomized differential test against std::map across seeds.
class BTreeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BTreeFuzz, MatchesReferenceUnderRandomOps) {
  BTreeConfig config;
  config.max_internal = 6;
  config.max_leaf = 6;
  BPlusTree tree(config);
  std::map<int64_t, Rid> reference;
  Rng rng(1000 + GetParam());

  for (int op = 0; op < 3000; ++op) {
    int64_t k = static_cast<int64_t>(rng.Uniform(500));
    switch (rng.Uniform(3)) {
      case 0: {  // insert
        bool in_ref = reference.count(k) > 0;
        Status s = tree.Insert(k, MakeRid(k));
        EXPECT_EQ(s.ok(), !in_ref);
        if (s.ok()) reference[k] = MakeRid(k);
        break;
      }
      case 1: {  // remove
        bool in_ref = reference.erase(k) > 0;
        EXPECT_EQ(tree.Remove(k).ok(), in_ref);
        break;
      }
      case 2: {  // lookup
        auto rid = tree.Lookup(k);
        EXPECT_EQ(rid.ok(), reference.count(k) > 0);
        break;
      }
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.size(), reference.size());

  auto all = tree.Scan(std::numeric_limits<int64_t>::min(),
                       std::numeric_limits<int64_t>::max());
  ASSERT_EQ(all.size(), reference.size());
  auto it = reference.begin();
  for (const auto& [k, rid] : all) {
    EXPECT_EQ(k, it->first);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace vbtree
