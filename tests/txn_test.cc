#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tests/testutil.h"
#include "txn/lock_manager.h"

namespace vbtree {
namespace {

using namespace std::chrono_literals;

TEST(LockManagerTest, SharedLocksCompatible) {
  LockManager lm(100ms);
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.HoldsLock(1, 10));
  EXPECT_TRUE(lm.HoldsLock(2, 10));
}

TEST(LockManagerTest, ExclusiveConflictsWithShared) {
  LockManager lm(100ms);
  ASSERT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kExclusive).IsLockTimeout());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, ExclusiveConflictsWithExclusive) {
  LockManager lm(100ms);
  ASSERT_TRUE(lm.Acquire(1, 10, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kExclusive).IsLockTimeout());
  EXPECT_TRUE(lm.Acquire(2, 11, LockMode::kExclusive).ok());  // disjoint
}

TEST(LockManagerTest, ReacquisitionIsNoop) {
  LockManager lm(100ms);
  ASSERT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(1, 11, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, 11, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, 11, LockMode::kShared).ok());  // X implies S
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm(100ms);
  ASSERT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kExclusive).ok());
  // Now txn 2 cannot get S.
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kShared).IsLockTimeout());
}

TEST(LockManagerTest, UpgradeBlockedByOtherReader) {
  LockManager lm(100ms);
  ASSERT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(2, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kExclusive).IsLockTimeout());
}

TEST(LockManagerTest, ReleaseWakesWaiters) {
  LockManager lm(2000ms);
  ASSERT_TRUE(lm.Acquire(1, 10, LockMode::kExclusive).ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    Status s = lm.Acquire(2, 10, LockMode::kShared);
    acquired = s.ok();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(LockManagerTest, ReleaseAllClearsEverything) {
  LockManager lm(100ms);
  ASSERT_TRUE(lm.Acquire(1, 10, LockMode::kExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, 11, LockMode::kShared).ok());
  EXPECT_EQ(lm.NumLockedResources(), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.NumLockedResources(), 0u);
  EXPECT_FALSE(lm.HoldsLock(1, 10));
}

TEST(LockManagerTest, ReleaseOfUnheldLockFails) {
  LockManager lm(100ms);
  EXPECT_TRUE(lm.Release(1, 99).IsNotFound());
  ASSERT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Release(2, 10).IsNotFound());
  EXPECT_TRUE(lm.Release(1, 10).ok());
}

// ---------------------------------------------------------------------------
// VB-tree + digest-lock protocol (§3.4).
// ---------------------------------------------------------------------------

/// TestDb wired to a LockManager.
struct LockedDb {
  std::unique_ptr<testutil::TestDb> db;
  LockManager lm{std::chrono::milliseconds(300)};
  std::unique_ptr<VBTree> tree;

  static std::unique_ptr<LockedDb> Make(size_t n) {
    auto out = std::make_unique<LockedDb>();
    out->db = testutil::MakeTestDb(n, 4, 8);
    if (out->db == nullptr) return nullptr;
    // Rebuild the tree with the lock manager attached.
    ByteWriter w;
    out->db->tree->SerializeTo(&w);
    ByteReader r(Slice(w.buffer()));
    auto t = VBTree::Deserialize(&r, out->db->signer.get(), &out->lm);
    if (!t.ok()) return nullptr;
    out->tree = t.MoveValueUnsafe();
    return out;
  }
};

TEST(VBTreeLockingTest, QueriesOnDisjointSubtreesProceedDuringDelete) {
  auto ldb = LockedDb::Make(2000);
  ASSERT_NE(ldb, nullptr);

  // Txn 1: delete [0, 50] and keep its X locks (2PL growing phase).
  auto removed = ldb->tree->DeleteRange(0, 50, /*txn=*/1);
  ASSERT_TRUE(removed.ok());

  // Txn 2: query far away, inside a single subtree whose path does not
  // touch the delete's locked nodes — must succeed while txn 1 holds
  // locks. (A query whose enveloping subtree is the *root* would rightly
  // conflict: the delete X-locks the root digest per §3.4.)
  SelectQuery q;
  q.table = "t";
  q.range = KeyRange{1100, 1300};
  auto out = ldb->tree->ExecuteSelect(q, ldb->db->Fetcher(), /*txn=*/2);
  EXPECT_TRUE(out.ok());
  ldb->lm.ReleaseAll(2);

  // Txn 3: query overlapping the deleted range — blocked until release.
  SelectQuery q2;
  q2.table = "t";
  q2.range = KeyRange{40, 60};
  auto blocked = ldb->tree->ExecuteSelect(q2, ldb->db->Fetcher(), /*txn=*/3);
  EXPECT_TRUE(blocked.status().IsLockTimeout());

  ldb->lm.ReleaseAll(1);
  auto after = ldb->tree->ExecuteSelect(q2, ldb->db->Fetcher(), /*txn=*/3);
  EXPECT_TRUE(after.ok());
  ldb->lm.ReleaseAll(3);
}

TEST(VBTreeLockingTest, QueryLocksBlockOverlappingDelete) {
  auto ldb = LockedDb::Make(2000);
  ASSERT_NE(ldb, nullptr);

  SelectQuery q;
  q.table = "t";
  q.range = KeyRange{100, 200};
  auto out = ldb->tree->ExecuteSelect(q, ldb->db->Fetcher(), /*txn=*/1);
  ASSERT_TRUE(out.ok());  // txn 1 holds S locks on its subtree

  auto removed = ldb->tree->DeleteRange(150, 160, /*txn=*/2);
  EXPECT_TRUE(removed.status().IsLockTimeout());

  ldb->lm.ReleaseAll(1);
  auto after = ldb->tree->DeleteRange(150, 160, /*txn=*/2);
  EXPECT_TRUE(after.ok());
  ldb->lm.ReleaseAll(2);
}

TEST(VBTreeLockingTest, ConcurrentInsertsAndQueriesStayConsistent) {
  auto ldb = LockedDb::Make(1000);
  ASSERT_NE(ldb, nullptr);
  // The replica tree has no heap of its own; inserts need tuples in the
  // fetch path only for queries, so reuse the TestDb heap.
  auto* db = ldb->db.get();
  VBTree* tree = ldb->tree.get();

  std::atomic<int> failures{0};
  std::atomic<int64_t> next_key{10000};

  std::thread writer([&] {
    Rng rng(21);
    for (int i = 0; i < 100; ++i) {
      int64_t k = next_key.fetch_add(1);
      Tuple t = testutil::MakeTuple(db->schema, k, &rng);
      auto rid = db->heap->Insert(t);
      if (!rid.ok() || !tree->Insert(t, *rid).ok()) failures++;
    }
  });
  std::thread reader([&] {
    Rng rng(22);
    Verifier v = db->MakeVerifier();
    for (int i = 0; i < 50; ++i) {
      SelectQuery q;
      q.table = "t";
      int64_t lo = static_cast<int64_t>(rng.Uniform(900));
      q.range = KeyRange{lo, lo + 50};
      auto out = tree->ExecuteSelect(q, db->Fetcher());
      if (!out.ok() ||
          !v.VerifySelect(q, out->rows, out->vo).ok()) {
        failures++;
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(tree->CheckDigestConsistency().ok());
  EXPECT_TRUE(tree->CheckStructure().ok());
  EXPECT_EQ(tree->size(), 1100u);
}

TEST(VBTreeLockingTest, ConcurrentDisjointDeletes) {
  auto ldb = LockedDb::Make(4000);
  ASSERT_NE(ldb, nullptr);
  VBTree* tree = ldb->tree.get();
  std::atomic<int> failures{0};
  std::thread t1([&] {
    for (int i = 0; i < 10; ++i) {
      if (!tree->DeleteRange(i * 20, i * 20 + 9).ok()) failures++;
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 10; ++i) {
      if (!tree->DeleteRange(3000 + i * 20, 3000 + i * 20 + 9).ok()) {
        failures++;
      }
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(tree->size(), 4000u - 200u);
  EXPECT_TRUE(tree->CheckDigestConsistency().ok());
}

}  // namespace
}  // namespace vbtree
