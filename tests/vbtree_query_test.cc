#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "tests/testutil.h"

namespace vbtree {
namespace {

using testutil::MakeTestDb;
using testutil::TestDb;

SelectQuery RangeQuery(const TestDb& db, int64_t lo, int64_t hi) {
  SelectQuery q;
  q.table = db.table_name;
  q.range = KeyRange{lo, hi};
  return q;
}

TEST(VBTreeQueryTest, FullRangeVerifies) {
  auto db = MakeTestDb(200, 10, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 0, 199);
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 200u);
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, SingleTupleVerifies) {
  auto db = MakeTestDb(200, 10, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 57, 57);
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 1u);
  EXPECT_EQ(out->rows[0].key, 57);
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, EmptyResultVerifies) {
  auto db = MakeTestDb(100, 10, 8);
  ASSERT_NE(db, nullptr);
  // Range between existing keys: stride puts nothing at 1000+.
  SelectQuery q = RangeQuery(*db, 1000, 2000);
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->rows.empty());
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, EmptyTreeQueryVerifies) {
  auto db = MakeTestDb(0);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 0, 100);
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->rows.empty());
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, ProjectionVerifies) {
  auto db = MakeTestDb(100, 10, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 20, 40);
  q.projection = {0, 2, 5};  // key + two attributes
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 21u);
  EXPECT_EQ(out->rows[0].values.size(), 3u);
  // D_P carries (10-3) signatures per row.
  EXPECT_EQ(out->vo.projected_attr_sigs.size(), 21u * 7u);
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, ProjectionWithoutExplicitKeyGetsKeyAdded) {
  auto db = MakeTestDb(50, 6, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 5, 9);
  q.projection = {3, 1};  // unsorted, no key: NormalizeProjection fixes it
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 5u);
  EXPECT_EQ(out->rows[0].values.size(), 3u);  // {0,1,3}
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, NonKeyConditionCreatesGapsAndVerifies) {
  auto db = MakeTestDb(200, 4, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 50, 150);
  // String comparison partitions rows roughly in half.
  q.conditions.push_back(
      ColumnCondition{1, CompareOp::kGe, Value::Str("Q")});
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->rows.size(), 10u);
  EXPECT_LT(out->rows.size(), 95u);  // some rows filtered => gaps exist
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, ConditionPlusProjectionVerifies) {
  auto db = MakeTestDb(300, 8, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 0, 299);
  q.conditions.push_back(
      ColumnCondition{2, CompareOp::kLt, Value::Str("m")});
  q.projection = {0, 2, 7};
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, ConditionOnProjectedAwayColumnVerifies) {
  auto db = MakeTestDb(100, 6, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 0, 99);
  q.conditions.push_back(
      ColumnCondition{4, CompareOp::kGe, Value::Str("5")});
  q.projection = {0, 1};  // condition column 4 not returned
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, RangeWiderThanTableVerifies) {
  auto db = MakeTestDb(100, 10, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, -1000, 1000);
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows.size(), 100u);
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, InvalidQueriesRejected) {
  auto db = MakeTestDb(10, 4, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 5, 2);  // empty range
  EXPECT_FALSE(db->tree->ExecuteSelect(q, db->Fetcher()).ok());
  q = RangeQuery(*db, 0, 5);
  q.conditions.push_back(ColumnCondition{99, CompareOp::kEq, Value::Int(0)});
  EXPECT_FALSE(db->tree->ExecuteSelect(q, db->Fetcher()).ok());
  q = RangeQuery(*db, 0, 5);
  q.projection = {0, 99};
  EXPECT_FALSE(db->tree->ExecuteSelect(q, db->Fetcher()).ok());
}

TEST(VBTreeQueryTest, VOSizeIndependentOfTableSize) {
  // The paper's headline claim: for a fixed result size, the VO does not
  // grow with the table (§3.3). Compare a 2k-row and a 64k-row table.
  auto small = MakeTestDb(2000, 4, 16);
  auto large = MakeTestDb(64000, 4, 16);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(large, nullptr);

  SelectQuery qs = RangeQuery(*small, 500, 599);
  SelectQuery ql = RangeQuery(*large, 500, 599);
  auto out_s = small->tree->ExecuteSelect(qs, small->Fetcher());
  auto out_l = large->tree->ExecuteSelect(ql, large->Fetcher());
  ASSERT_TRUE(out_s.ok() && out_l.ok());
  ASSERT_EQ(out_s->rows.size(), 100u);
  ASSERT_EQ(out_l->rows.size(), 100u);

  size_t s_bytes = out_s->vo.SerializedSize();
  size_t l_bytes = out_l->vo.SerializedSize();
  // Allow one extra boundary node of slack, not a log-factor growth.
  EXPECT_LT(l_bytes, s_bytes + 20 * kDigestLen)
      << "small=" << s_bytes << " large=" << l_bytes;
}

TEST(VBTreeQueryTest, VOGrowsLinearlyWithResult) {
  auto db = MakeTestDb(10000, 4, 16);
  ASSERT_NE(db, nullptr);
  SelectQuery q10 = RangeQuery(*db, 0, 9);
  SelectQuery q1000 = RangeQuery(*db, 0, 999);
  auto o10 = db->tree->ExecuteSelect(q10, db->Fetcher());
  auto o1000 = db->tree->ExecuteSelect(q1000, db->Fetcher());
  ASSERT_TRUE(o10.ok() && o1000.ok());
  // Bigger result, bigger VO — but still tiny relative to result bytes.
  EXPECT_GE(o1000->vo.SerializedSize(), o10->vo.SerializedSize());
}

TEST(VBTreeQueryTest, ShuffledVOStillVerifies) {
  // Commutativity means digest order within a VO node is irrelevant
  // (§3.3: "the VO does not need to preserve the order in which the
  // digests are merged").
  auto db = MakeTestDb(500, 6, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 100, 300);
  q.projection = {0, 1, 2};
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());

  VerificationObject vo = out->vo.Clone();
  std::mt19937 rng(7);
  // Shuffle filtered-tuple digests within each leaf skeleton node.
  std::vector<VONode*> stack{vo.skeleton.get()};
  while (!stack.empty()) {
    VONode* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      std::shuffle(n->filtered_tuple_sigs.begin(),
                   n->filtered_tuple_sigs.end(), rng);
    } else {
      for (auto& item : n->items) {
        if (item.is_covered()) stack.push_back(item.covered.get());
      }
    }
  }
  // Shuffle each row's projected-attribute digests among themselves.
  size_t nf = vo.num_filtered_cols;
  for (size_t row = 0; row * nf < vo.projected_attr_sigs.size(); ++row) {
    std::shuffle(vo.projected_attr_sigs.begin() + row * nf,
                 vo.projected_attr_sigs.begin() + (row + 1) * nf, rng);
  }
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, vo).ok());
}

TEST(VBTreeQueryTest, VOSerializationRoundTrip) {
  auto db = MakeTestDb(300, 6, 8);
  ASSERT_NE(db, nullptr);
  SelectQuery q = RangeQuery(*db, 50, 250);
  q.projection = {0, 3};
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  ByteWriter w;
  out->vo.Serialize(&w);
  EXPECT_EQ(w.size(), out->vo.SerializedSize());
  ByteReader r(Slice(w.buffer()));
  auto back = VerificationObject::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(r.AtEnd());
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, *back).ok());
}

TEST(VBTreeQueryTest, QueryAfterUpdatesVerifies) {
  auto db = MakeTestDb(200, 5, 8);
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->tree->DeleteRange(50, 80).ok());
  Rng rng(11);
  for (int64_t k = 1000; k < 1020; ++k) {
    Tuple t = testutil::MakeTuple(db->schema, k, &rng);
    auto rid = db->heap->Insert(t);
    ASSERT_TRUE(rid.ok());
    ASSERT_TRUE(db->tree->Insert(t, *rid).ok());
  }
  SelectQuery q = RangeQuery(*db, 40, 1010);
  auto out = db->tree->ExecuteSelect(q, db->Fetcher());
  ASSERT_TRUE(out.ok());
  Verifier v = db->MakeVerifier();
  EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok());
}

TEST(VBTreeQueryTest, StatsReportSubtree) {
  auto db = MakeTestDb(4096, 4, 8);
  ASSERT_NE(db, nullptr);
  // A narrow query should use a short enveloping subtree, far from root.
  SelectQuery narrow = RangeQuery(*db, 100, 101);
  auto out = db->tree->ExecuteSelect(narrow, db->Fetcher());
  ASSERT_TRUE(out.ok());
  EXPECT_LT(out->stats.subtree_height, db->tree->height());
  EXPECT_LE(out->stats.nodes_visited, 4u);
}

/// Property sweep: random ranges, conditions and projections all verify.
class HonestQuerySweep : public ::testing::TestWithParam<int> {};

TEST_P(HonestQuerySweep, AlwaysVerifies) {
  static std::unique_ptr<TestDb> db = MakeTestDb(3000, 6, 12);
  ASSERT_NE(db, nullptr);
  Rng rng(5000 + GetParam());
  Verifier v = db->MakeVerifier();
  for (int trial = 0; trial < 10; ++trial) {
    int64_t lo = static_cast<int64_t>(rng.Uniform(3200)) - 100;
    int64_t hi = lo + static_cast<int64_t>(rng.Uniform(800));
    SelectQuery q = RangeQuery(*db, lo, hi);
    if (rng.OneIn(2)) {
      q.conditions.push_back(ColumnCondition{
          1 + rng.Uniform(5), CompareOp::kGe,
          Value::Str(std::string(1, static_cast<char>('A' + rng.Uniform(50))))});
    }
    if (rng.OneIn(2)) {
      q.projection = {0, 1 + rng.Uniform(5)};
    }
    auto out = db->tree->ExecuteSelect(q, db->Fetcher());
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(v.VerifySelect(q, out->rows, out->vo).ok())
        << "lo=" << lo << " hi=" << hi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HonestQuerySweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace vbtree
