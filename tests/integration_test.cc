#include <gtest/gtest.h>

#include "costmodel/cost_model.h"
#include "edge/central_server.h"
#include "edge/client.h"
#include "edge/edge_server.h"
#include "naive/naive_scheme.h"
#include "tests/testutil.h"

namespace vbtree {
namespace {

/// Larger-scale end-to-end scenario exercising most of the stack at once.
TEST(IntegrationTest, LifecycleAtScale) {
  CentralServer::Options opts;
  opts.tree_opts.config.max_internal = 32;
  opts.tree_opts.config.max_leaf = 32;
  auto central_or = CentralServer::Create(opts);
  ASSERT_TRUE(central_or.ok());
  CentralServer& central = **central_or;

  Schema schema = testutil::MakeWideSchema(10);
  ASSERT_TRUE(central.CreateTable("t", schema).ok());
  Rng rng(42);
  ASSERT_TRUE(central.LoadTable("t", testutil::MakeRows(schema, 20000, &rng))
                  .ok());

  SimulatedNetwork net;
  EdgeServer edge("edge-1");
  ASSERT_TRUE(testutil::Publish(&central, "t", &edge, &net).ok());
  Client client(central.db_name(), central.key_directory());
  client.RegisterTable("t", schema);

  // 1. A batch of random honest queries all verify.
  Rng qrng(9);
  for (int i = 0; i < 25; ++i) {
    SelectQuery q;
    q.table = "t";
    int64_t lo = static_cast<int64_t>(qrng.Uniform(19000));
    q.range = KeyRange{lo, lo + static_cast<int64_t>(qrng.Uniform(2000))};
    if (qrng.OneIn(2)) q.projection = {0, 1 + qrng.Uniform(9)};
    if (qrng.OneIn(3)) {
      q.conditions.push_back(
          ColumnCondition{1 + qrng.Uniform(9), CompareOp::kGe,
                          Value::Str("T")});
    }
    auto r = client.Query(&edge, q, 10, &net);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->verification.ok())
        << i << ": " << r->verification.ToString();
  }

  // 2. Updates at the central server, republish, re-verify.
  for (int64_t k = 100000; k < 100200; ++k) {
    ASSERT_TRUE(
        central.InsertTuple("t", testutil::MakeTuple(schema, k, &rng)).ok());
  }
  ASSERT_TRUE(central.DeleteRange("t", 5000, 5999).ok());
  ASSERT_TRUE(central.tree("t")->CheckDigestConsistency().ok());
  ASSERT_TRUE(testutil::Publish(&central, "t", &edge, &net).ok());

  SelectQuery wide;
  wide.table = "t";
  wide.range = KeyRange{4000, 101000};
  auto r = client.Query(&edge, wide, 10, &net);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->verification.ok()) << r->verification.ToString();
  EXPECT_EQ(r->rows.size(), 20000u - 1000u - 4000u + 200u);

  // 3. Tamper one value: exactly queries covering it fail.
  ASSERT_TRUE(edge.TamperValueByKey("t", 15000, 4, Value::Str("EVIL")).ok());
  SelectQuery hit;
  hit.table = "t";
  hit.range = KeyRange{14950, 15050};
  auto bad = client.Query(&edge, hit, 10, &net);
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(bad->verification.IsVerificationFailure());
  SelectQuery miss;
  miss.table = "t";
  miss.range = KeyRange{1000, 1100};
  auto good = client.Query(&edge, miss, 10, &net);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->verification.ok());
}

TEST(IntegrationTest, MeasuredVsModelCommunicationShape) {
  // The measured byte counts should reproduce the *shape* of Fig. 10:
  // Naive > VB at every selectivity, with a growing gap.
  const size_t kTuples = 4000;
  auto db = testutil::MakeTestDb(kTuples, 10, 114);
  ASSERT_NE(db, nullptr);
  NaiveStore naive(db->MakeDigestSchema(), db->signer.get());
  for (auto it = db->heap->Begin(); it.Valid(); it.Next()) {
    auto t = it.Get();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(naive.Load(*t).ok());
  }

  double prev_gap = -1;
  for (double sel : {0.2, 0.5, 0.8}) {
    SelectQuery q;
    q.table = db->table_name;
    q.range = KeyRange{0, static_cast<int64_t>(sel * kTuples) - 1};
    q.projection = {0, 1, 2, 3, 4};  // Q_c = 5

    auto vb = db->tree->ExecuteSelect(q, db->Fetcher());
    auto nv = naive.ExecuteSelect(q);
    ASSERT_TRUE(vb.ok() && nv.ok());
    ASSERT_EQ(vb->rows.size(), nv->rows.size());

    size_t vb_total = vb->ResultBytes() + vb->vo.SerializedSize();
    size_t nv_total = nv->ResultBytes() + nv->AuthBytes();
    EXPECT_LT(vb_total, nv_total) << "sel=" << sel;
    double gap = static_cast<double>(nv_total) - vb_total;
    EXPECT_GT(gap, prev_gap);
    prev_gap = gap;
  }
}

TEST(IntegrationTest, MeasuredVsModelComputationShape) {
  // Fig. 12 shape on real counters: Naive decrypts per row; VB-tree's
  // decrypt count is bounded by the enveloping subtree, so in Cost_h
  // units Naive >> VB for large X.
  const size_t kTuples = 4000;
  auto db = testutil::MakeTestDb(kTuples, 10, 114);
  ASSERT_NE(db, nullptr);
  NaiveStore naive(db->MakeDigestSchema(), db->signer.get());
  for (auto it = db->heap->Begin(); it.Valid(); it.Next()) {
    auto t = it.Get();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(naive.Load(*t).ok());
  }

  SelectQuery q;
  q.table = db->table_name;
  q.range = KeyRange{0, 1999};  // 50% selectivity

  auto vb = db->tree->ExecuteSelect(q, db->Fetcher());
  auto nv = naive.ExecuteSelect(q);
  ASSERT_TRUE(vb.ok() && nv.ok());

  // VB verification counters.
  CryptoCounters vb_counters;
  SimRecoverer vb_rec(db->signer->key_material(), &vb_counters);
  Verifier v(db->MakeDigestSchema(), &vb_rec);
  v.set_counters(&vb_counters);
  ASSERT_TRUE(v.VerifySelect(q, vb->rows, vb->vo).ok());

  // Naive verification counters.
  CryptoCounters nv_counters;
  SimRecoverer nv_rec(db->signer->key_material(), &nv_counters);
  NaiveVerifier nverif(db->MakeDigestSchema(), &nv_rec);
  nverif.set_counters(&nv_counters);
  ASSERT_TRUE(nverif.VerifySelect(q, nv->rows, nv->auth).ok());

  // Same hashing work; drastically fewer signature decrypts for VB (the
  // paper's core Fig. 12 claim: Naive pays one decrypt per result row).
  EXPECT_EQ(vb_counters.attr_hashes, nv_counters.attr_hashes);
  EXPECT_EQ(nv_counters.recovers, 2000u);
  EXPECT_LT(vb_counters.recovers, 300u);

  // In measured Cost_h units the VB-tree also pays per-leaf digest folds
  // that the paper's model elides, so its win is guaranteed once X
  // dominates; assert it at the paper's X = 100 (and at 10 the two are
  // within the fold overhead of each other).
  EXPECT_LT(vb_counters.CostUnits(10, 100), nv_counters.CostUnits(10, 100));
  EXPECT_LT(vb_counters.CostUnits(10, 10),
            1.1 * nv_counters.CostUnits(10, 10));
}

TEST(IntegrationTest, MeasuredVoDigestsTrackModelBound) {
  // |D_S| measured stays below the analytical maximum (2h_Q+1)(f-1).
  const size_t kTuples = 16000;
  const int kFanout = 16;
  auto db = testutil::MakeTestDb(kTuples, 4, kFanout);
  ASSERT_NE(db, nullptr);
  for (size_t result : {10u, 100u, 1000u}) {
    SelectQuery q;
    q.table = db->table_name;
    q.range = KeyRange{0, static_cast<int64_t>(result) - 1};
    auto out = db->tree->ExecuteSelect(q, db->Fetcher());
    ASSERT_TRUE(out.ok());
    costmodel::CostParams p;
    p.num_tuples = kTuples;
    p.result_tuples = static_cast<double>(result);
    // Model with the test fan-out rather than the 4KB-derived one.
    double h_q = costmodel::PackedHeight(p.result_tuples, kFanout);
    double bound = (2 * h_q + 1) * (kFanout - 1) + 1;
    EXPECT_LE(out->vo.DigestCount(), bound) << "result=" << result;
  }
}

TEST(IntegrationTest, SnapshotRoundTripPreservesEverything) {
  auto db = testutil::MakeTestDb(5000, 10, 64);
  ASSERT_NE(db, nullptr);
  ByteWriter w;
  db->tree->SerializeTo(&w);
  size_t serialized = w.size();
  ByteReader r(Slice(w.buffer()));
  auto replica = VBTree::Deserialize(&r);
  ASSERT_TRUE(replica.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ((*replica)->root_digest(), db->tree->root_digest());
  EXPECT_TRUE((*replica)->CheckDigestConsistency().ok());
  // Sanity: serialization cost ~ tuples * (tuple sig + attr sigs + keys).
  EXPECT_GT(serialized, 5000u * 11u * kDigestLen);
}

}  // namespace
}  // namespace vbtree
