// The incremental-split pipeline end to end: o(rows) re-signing
// (counter-gated on the trees' own signer-invocation counts), the
// contention-driven auto-split policy converging under a Zipf write
// storm, and the adversarial case the shard binding signature exists
// for — a sibling tree from the same lineage digest domain substituted
// for a shard must fail client verification, not authenticate.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "edge/central_server.h"
#include "edge/client.h"
#include "edge/edge_server.h"
#include "edge/propagation/distribution_hub.h"
#include "edge/shard_write_domain.h"
#include "tests/testutil.h"

namespace vbtree {
namespace {

constexpr size_t kRows = 800;

Tuple KeyedTuple(const Schema& schema, int64_t key) {
  Rng rng(static_cast<uint64_t>(key) * 2654435761u + 7);
  return testutil::MakeTuple(schema, key, &rng);
}

std::unique_ptr<CentralServer> MakeCentral(
    std::function<void(CentralServer::Options*)> tweak = nullptr) {
  CentralServer::Options opts;
  opts.tree_opts.config.max_internal = 16;
  opts.tree_opts.config.max_leaf = 16;
  if (tweak) tweak(&opts);
  auto central = CentralServer::Create(opts);
  return central.ok() ? central.MoveValueUnsafe() : nullptr;
}

// The property the whole refactor exists for, proven without a clock:
// with one write domain per shard, a shard whose signer is wedged cannot
// stall any other shard's pipeline. Under the old global dml_mu_ every
// op below would queue behind the blocked one; here the sibling domain
// applies a full op stream to completion while the first is provably
// still inside its op. Deterministic on any host — including the 1-vCPU
// bench box where wall-clock scaling cannot show the parallelism.
TEST(ShardWriteDomainTest, SiblingDomainProgressesWhileOneIsBlocked) {
  ShardWriteDomain hot("t#1");
  ShardWriteDomain cold("t#2");

  std::promise<void> entered;
  std::promise<void> release;
  auto entered_f = entered.get_future();
  auto blocked = hot.Enqueue([&] {
    entered.set_value();
    release.get_future().wait();
    return Status::OK();
  });
  ASSERT_TRUE(blocked.ok());
  entered_f.wait();  // hot's worker is now mid-op and will not return

  // A second hot-domain op queued behind the blocked one must NOT run —
  // per-domain FIFO order — while the cold domain drains everything.
  std::atomic<bool> second_ran{false};
  auto queued = hot.Enqueue([&] {
    second_ran.store(true);
    return Status::OK();
  });
  ASSERT_TRUE(queued.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(cold.Execute([] { return Status::OK(); }).ok());
  }
  EXPECT_EQ(cold.stats().ops_applied, 100u);
  EXPECT_EQ(hot.ops_applied(), 0u);
  EXPECT_FALSE(second_ran.load());

  release.set_value();
  EXPECT_TRUE(blocked->get().ok());
  EXPECT_TRUE(queued->get().ok());
  EXPECT_TRUE(second_ran.load());
  EXPECT_EQ(hot.ops_applied(), 2u);
}

TEST(SplitPipelineTest, IncrementalSplitSignsSubLinearly) {
  auto central = MakeCentral();
  ASSERT_NE(central, nullptr);
  Schema schema = testutil::MakeWideSchema(5);
  ASSERT_TRUE(central->CreateTable("t", schema, {}).ok());
  Rng rng(4242);
  ASSERT_TRUE(
      central->LoadTable("t", testutil::MakeRows(schema, kRows, &rng)).ok());

  ASSERT_TRUE(central->SplitShard("t", kRows / 2).ok());

  auto stats = central->TableDomainStats("t");
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->size(), 2u);
  // The children are fresh trees whose signer counters start at zero, so
  // their sum is exactly what the split itself signed: the boundary
  // resigns of the two CloneRange trims plus one binding signature each.
  // O(tree height), nowhere near the O(rows) a naive rebuild pays.
  uint64_t split_signs = 0;
  size_t rows_total = 0;
  for (const auto& d : *stats) {
    split_signs += d.sign_calls;
    rows_total += d.rows;
  }
  EXPECT_EQ(rows_total, kRows);
  EXPECT_GT(split_signs, 0u);
  EXPECT_LT(split_signs, kRows / 4)
      << "incremental split re-signed O(rows), not O(boundary)";
}

TEST(SplitPipelineTest, AutoSplitConvergesUnderSkewedWrites) {
  // Long windows + a low absolute floor keep the policy live on
  // sanitizer-slowed hosts where writers manage only tens of inserts
  // per second; the skew bar, not the floor, is what the test exercises.
  auto central = MakeCentral([](CentralServer::Options* opts) {
    opts->auto_split = true;
    opts->auto_split_interval_ms = 250;
    opts->auto_split_min_ops = 8;
    opts->auto_split_skew = 1.5;
    opts->auto_split_min_rows = 32;
    opts->auto_split_max_shards = 8;
    opts->auto_split_cooldown_ms = 50;
  });
  ASSERT_NE(central, nullptr);
  Schema schema = testutil::MakeWideSchema(3);
  // Four uniform shards whose boundaries deliberately mismatch the
  // traffic: the whole hot range lives inside shard 0. A median split
  // equalizes a stationary workload by construction, so iterative
  // convergence (split, re-measure, split again) only shows up when the
  // halves of the hot shard still clear the skew bar against the
  // table mean — which 2x45% does against a 4+-shard layout.
  const int64_t kHot = int64_t{1} << 20;
  ASSERT_TRUE(
      central->CreateTable("t", schema, {kHot, 2 * kHot, 3 * kHot}).ok());
  Rng seed_rng(7);
  ASSERT_TRUE(
      central->LoadTable("t", testutil::MakeRows(schema, 64, &seed_rng)).ok());
  const uint64_t epoch_before = [&] {
    auto map = central->TablePartitionMap("t");
    return map.ok() ? map->epoch : 0;
  }();

  // 90% of inserts land uniformly inside shard 0's range; the rest
  // spread across the three cold shards.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const bool hot = rng.Uniform(10) < 9;
        const int64_t key =
            hot ? static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(kHot)))
                : kHot + static_cast<int64_t>(
                             rng.Uniform(static_cast<uint64_t>(3 * kHot)));
        Status s = central->InsertTuple("t", KeyedTuple(schema, key));
        ASSERT_TRUE(s.ok() || s.code() == StatusCode::kAlreadyExists)
            << s.ToString();
      }
    });
  }
  // Two policy windows suffice on a fast host; the generous deadline is
  // for sanitizer builds, where the loop still exits as soon as the
  // second split lands.
  for (int spins = 0; spins < 12000 && central->splits_triggered() < 2;
       ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& th : writers) th.join();

  EXPECT_GE(central->splits_triggered(), 2u);
  auto shards = central->ShardCount("t");
  ASSERT_TRUE(shards.ok());
  EXPECT_GE(*shards, 6u);
  auto map = central->TablePartitionMap("t");
  ASSERT_TRUE(map.ok());
  EXPECT_GT(map->epoch, epoch_before);
  size_t lineage_shards = 0;
  for (const auto& s : map->shards) {
    if (!s.lineage.empty()) lineage_shards++;
  }
  EXPECT_GE(lineage_shards, 2u);

  // The split layout serves verified reads: ship everything to an edge
  // and authenticate ranges crossing the new shard boundaries.
  SimulatedNetwork net;
  EdgeServer edge("edge");
  PropagationOptions popts;
  popts.auto_start = false;
  DistributionHub hub(central.get(), &net, popts);
  ASSERT_TRUE(hub.Subscribe(&edge).ok());
  ASSERT_TRUE(hub.SyncAll().ok());
  Client client(central->db_name(), central->key_directory());
  client.RegisterShardedTable("t", schema);
  for (const auto& s : map->shards) {
    SelectQuery q;
    q.table = "t";
    // Straddle this shard's upper boundary (clamped at the domain edge).
    const int64_t hi = s.hi < (int64_t{1} << 60) ? s.hi : (int64_t{1} << 60);
    q.range = KeyRange{hi - 20, hi + 20};
    auto r = client.Query(&edge, q, 10, &net);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->verification.ok()) << r->verification.ToString();
  }
}

// The PR 5 residual: a multi-statement read spanning sharded tables must
// observe one partition-map generation per table, not whatever mix of
// pre- and post-split layouts a concurrent SplitShard happens to serve.
// Each answer authenticates individually; only the pin makes the *pair*
// a consistent cut.
TEST(SplitPipelineTest, PinnedReadRejectsEpochMixAcrossTables) {
  auto central = MakeCentral();
  ASSERT_NE(central, nullptr);
  Schema schema = testutil::MakeWideSchema(3);
  Rng rng(99);
  for (const char* table : {"t", "u"}) {
    ASSERT_TRUE(central
                    ->CreateTable(table, schema,
                                  {static_cast<int64_t>(kRows / 2)})
                    .ok());
    ASSERT_TRUE(
        central->LoadTable(table, testutil::MakeRows(schema, kRows, &rng))
            .ok());
  }

  SimulatedNetwork net;
  EdgeServer edge("edge");
  PropagationOptions popts;
  popts.auto_start = false;
  DistributionHub hub(central.get(), &net, popts);
  ASSERT_TRUE(hub.Subscribe(&edge).ok());
  ASSERT_TRUE(hub.SyncAll().ok());
  Client client(central->db_name(), central->key_directory());
  client.RegisterShardedTable("t", schema);
  client.RegisterShardedTable("u", schema);

  SelectQuery qt;
  qt.table = "t";
  qt.range = KeyRange{10, 60};
  SelectQuery qu = qt;
  qu.table = "u";

  client.BeginPinnedRead();
  auto first_t = client.Query(&edge, qt, 10, &net);
  ASSERT_TRUE(first_t.ok());
  ASSERT_TRUE(first_t->verification.ok()) << first_t->verification.ToString();
  auto first_u = client.Query(&edge, qu, 10, &net);
  ASSERT_TRUE(first_u.ok());
  ASSERT_TRUE(first_u->verification.ok()) << first_u->verification.ToString();

  // A split lands on "u" mid-read and the edge converges on the new
  // layout. "u" is now a different generation than this read pinned.
  ASSERT_TRUE(central->SplitShard("u", static_cast<int64_t>(kRows / 4)).ok());
  ASSERT_TRUE(hub.SyncAll().ok());

  auto mixed = client.Query(&edge, qu, 10, &net);
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_FALSE(mixed->verification.ok())
      << "post-split map accepted inside a pinned read";
  EXPECT_NE(mixed->verification.ToString().find("pinned"), std::string::npos)
      << mixed->verification.ToString();
  // The untouched table still reads fine under its pinned epoch.
  auto still_t = client.Query(&edge, qt, 10, &net);
  ASSERT_TRUE(still_t.ok());
  EXPECT_TRUE(still_t->verification.ok()) << still_t->verification.ToString();
  client.EndPinnedRead();

  // A fresh pinned read adopts the post-split generation.
  client.BeginPinnedRead();
  auto fresh = client.Query(&edge, qu, 10, &net);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->verification.ok()) << fresh->verification.ToString();
  client.EndPinnedRead();
}

TEST(SplitPipelineTest, SiblingSubstitutionFailsVerification) {
  auto central = MakeCentral();
  ASSERT_NE(central, nullptr);
  Schema schema = testutil::MakeWideSchema(5);
  ASSERT_TRUE(central->CreateTable("t", schema, {}).ok());
  Rng rng(4242);
  ASSERT_TRUE(
      central->LoadTable("t", testutil::MakeRows(schema, kRows, &rng)).ok());
  ASSERT_TRUE(central->SplitShard("t", kRows / 2).ok());
  auto map = central->TablePartitionMap("t");
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->shards.size(), 2u);
  const std::string left_name = map->shard_name(0);
  const std::string right_name = map->shard_name(1);

  SimulatedNetwork net;
  EdgeServer edge("edge");
  PropagationOptions popts;
  popts.auto_start = false;
  DistributionHub hub(central.get(), &net, popts);
  ASSERT_TRUE(hub.Subscribe(&edge).ok());
  ASSERT_TRUE(hub.SyncAll().ok());
  Client client(central->db_name(), central->key_directory());
  client.RegisterShardedTable("t", schema);

  SelectQuery right_q;
  right_q.table = "t";
  right_q.range = KeyRange{static_cast<int64_t>(kRows / 2 + 10),
                           static_cast<int64_t>(kRows / 2 + 60)};
  {
    auto r = client.Query(&edge, right_q, 10, &net);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(r->verification.ok()) << r->verification.ToString();
    ASSERT_EQ(r->rows.size(), 51u);
  }

  // Forge: both children live in the ancestor's digest domain ("t"), so
  // every per-row and interior signature of the left tree is *valid* for
  // a verifier running the right shard's digest schema. Splice the left
  // sibling's snapshot body under the right shard's snapshot header and
  // install it — a compromised edge serving the left tree for the right
  // shard's range, silently hiding every row of the right half.
  auto left_snap = central->ExportTableSnapshot(left_name);
  auto right_snap = central->ExportTableSnapshot(right_name);
  ASSERT_TRUE(left_snap.ok());
  ASSERT_TRUE(right_snap.ok());
  auto body_offset = [](const std::vector<uint8_t>& snap) {
    ByteReader r{Slice(snap)};
    EXPECT_TRUE(r.ReadU32().ok());
    EXPECT_TRUE(r.ReadString().ok());
    return r.position();
  };
  const size_t left_body = body_offset(*left_snap);
  const size_t right_body = body_offset(*right_snap);
  std::vector<uint8_t> forged(right_snap->begin(),
                              right_snap->begin() + right_body);
  forged.insert(forged.end(), left_snap->begin() + left_body,
                left_snap->end());
  ASSERT_TRUE(edge.InstallSnapshot(Slice(forged)).ok());

  // The forged answer carries internally consistent signatures from the
  // shared domain; only the binding signature — root digest tied to the
  // shard's own name and signed range — tells the siblings apart. The
  // client must reject.
  auto r = client.Query(&edge, right_q, 10, &net);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->verification.ok())
      << "sibling-substituted replica authenticated";
}

}  // namespace
}  // namespace vbtree
